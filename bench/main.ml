(* Benchmark harness.

   Running `dune exec bench/main.exe` does two things:

   1. regenerates every evaluation table/figure from DESIGN.md §4
      (T1-T6, F1-F5) via Hs_experiments — these are the paper-shaped
      results recorded in EXPERIMENTS.md;
   2. times the hot paths with Bechamel (exact vs float simplex, the full
      pipeline, the schedulers, branch and bound, and the bignum
      substrate).

   `dune exec bench/main.exe -- quick` shrinks the sweeps.
   `dune exec bench/main.exe -- experiments` / `-- timings` run one half. *)

open Bechamel
open Hs_model
module T = Hs_laminar.Topology

(* ---------------- Bechamel micro-benchmarks --------------------------- *)

let pipeline_instance ~n ~m =
  let rng = Hs_workloads.Rng.create (900 + n) in
  Hs_workloads.Generators.hierarchical rng ~lam:(T.semi_partitioned m) ~n
    ~base:(2, 15) ~heterogeneity:1.7 ~overhead:0.2 ()

let scheduler_case ~n ~m =
  let rng = Hs_workloads.Rng.create (1700 + n) in
  let inst =
    Hs_workloads.Generators.hierarchical rng
      ~lam:(T.smp_cmp ~nodes:2 ~chips_per_node:2 ~cores_per_chip:(Stdlib.max 1 (m / 4)))
      ~n ~base:(2, 15) ~heterogeneity:1.5 ~overhead:0.2 ()
  in
  let lam = Instance.laminar inst in
  let a = Array.init n (fun j -> j * 7 mod Hs_laminar.Laminar.size lam) in
  let t = Assignment.min_makespan inst a in
  (inst, a, t)

let tests =
  let exact_lp ~n ~m =
    let inst = pipeline_instance ~n ~m in
    Test.make
      ~name:(Printf.sprintf "pipeline/exact n=%d m=%d" n m)
      (Staged.stage (fun () -> ignore (Hs_core.Approx.Exact.solve inst)))
  in
  let float_lp ~n ~m =
    let inst = pipeline_instance ~n ~m in
    Test.make
      ~name:(Printf.sprintf "pipeline/float n=%d m=%d" n m)
      (Staged.stage (fun () -> ignore (Hs_core.Approx.Fast.solve inst)))
  in
  let scheduler ~n ~m =
    let inst, a, t = scheduler_case ~n ~m in
    Test.make
      ~name:(Printf.sprintf "alg2+3 n=%d m=%d" n m)
      (Staged.stage (fun () -> ignore (Hs_core.Hierarchical.schedule inst a ~tmax:t)))
  in
  let bnb =
    let inst = pipeline_instance ~n:9 ~m:4 in
    Test.make ~name:"branch&bound n=9 m=4"
      (Staged.stage (fun () -> ignore (Hs_core.Exact.optimal inst)))
  in
  let bigmul =
    let a = Hs_numeric.Bigint.of_string (String.make 120 '7') in
    let b = Hs_numeric.Bigint.of_string (String.make 97 '3') in
    Test.make ~name:"bigint mul 120x97 digits"
      (Staged.stage (fun () -> ignore (Hs_numeric.Bigint.mul a b)))
  in
  let mcnaughton =
    let lengths = Array.init 500 (fun i -> 1 + (i * 37 mod 90)) in
    Test.make ~name:"mcnaughton n=500 m=16"
      (Staged.stage (fun () -> ignore (Hs_baselines.Mcnaughton.schedule ~m:16 ~lengths)))
  in
  Test.make_grouped ~name:"hsched"
    [
      exact_lp ~n:8 ~m:4;
      float_lp ~n:8 ~m:4;
      exact_lp ~n:16 ~m:4;
      float_lp ~n:16 ~m:4;
      scheduler ~n:30 ~m:8;
      bnb;
      bigmul;
      mcnaughton;
    ]

(* Per-solve counter profile of the representative cases: reset the
   registry, run the case once, keep the non-zero counters.  The solves
   are deterministic, so these are exact per-run rates. *)
let counter_profiles () =
  let case name f =
    Hs_obs.Metrics.reset ();
    f ();
    let snap = Hs_obs.Metrics.snapshot () in
    let nonzero =
      List.filter (fun (_, v) -> v <> 0) snap.Hs_obs.Metrics.counters
    in
    (name, Hs_obs.Json.Obj (List.map (fun (k, v) -> (k, Hs_obs.Json.Int v)) nonzero))
  in
  [
    case "pipeline/exact n=8 m=4" (fun () ->
        ignore (Hs_core.Approx.Exact.solve (pipeline_instance ~n:8 ~m:4)));
    case "pipeline/float n=16 m=4" (fun () ->
        ignore (Hs_core.Approx.Fast.solve (pipeline_instance ~n:16 ~m:4)));
    case "branch&bound n=9 m=4" (fun () ->
        ignore (Hs_core.Exact.optimal (pipeline_instance ~n:9 ~m:4)));
  ]

let write_report rows =
  let doc =
    Hs_obs.Json.Obj
      [
        ("schema", Hs_obs.Json.String "hsched.bench/1");
        ( "ns_per_run",
          Hs_obs.Json.Obj (List.map (fun (name, est) -> (name, Hs_obs.Json.Float est)) rows)
        );
        ("counters_per_solve", Hs_obs.Json.Obj (counter_profiles ()));
      ]
  in
  let oc = open_out "BENCH_pipeline.json" in
  output_string oc (Hs_obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_pipeline.json"

let run_timings () =
  print_endline "\n== Bechamel timings (monotonic clock) ==";
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name v ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  let rows = List.sort compare !rows in
  List.iter
    (fun (name, est) ->
      let value, unit_ =
        if est > 1e9 then (est /. 1e9, "s")
        else if est > 1e6 then (est /. 1e6, "ms")
        else if est > 1e3 then (est /. 1e3, "us")
        else (est, "ns")
      in
      Printf.printf "%-32s %10.2f %s/run\n" name value unit_)
    rows;
  write_report rows

(* ---------------- Parallel sweep: determinism + speedup --------------- *)

(* Run T1 (the heaviest sweep: LP pipeline + proven branch and bound per
   trial) at several job counts, byte-compare the captured tables and
   merged metric snapshots against the sequential run, and record the
   speedup curve in BENCH_parallel.json.  Exits non-zero if any parallel
   run diverges from the sequential one — this is the acceptance check
   for the Hs_exec determinism contract (DESIGN.md section 10). *)
let run_parallel ~quick () =
  print_endline "\n== Parallel T1 sweep: determinism + speedup (Hs_exec) ==";
  let run jobs =
    let buf = Buffer.create 8192 in
    Hs_experiments.Table.redirect (Some buf);
    Hs_obs.Metrics.reset ();
    let t0 = Unix.gettimeofday () in
    Hs_experiments.Experiments.t1 ~quick ~jobs ();
    let dt = Unix.gettimeofday () -. t0 in
    Hs_experiments.Table.redirect None;
    let metrics =
      Hs_obs.Json.to_string (Hs_obs.Metrics.to_json (Hs_obs.Metrics.snapshot ()))
    in
    (Buffer.contents buf, metrics, dt)
  in
  let results = List.map (fun j -> (j, run j)) [ 1; 2; 4; 8 ] in
  let _, (ref_table, ref_metrics, t_seq) = List.hd results in
  print_string ref_table;
  Printf.printf "%-6s %10s %9s %10s %10s\n" "jobs" "wall (s)" "speedup" "tables" "metrics";
  let rows =
    List.map
      (fun (j, (tbl, met, dt)) ->
        let tables_ok = String.equal tbl ref_table in
        let metrics_ok = String.equal met ref_metrics in
        Printf.printf "%-6d %10.3f %9.2f %10s %10s\n" j dt
          (t_seq /. Float.max 1e-9 dt)
          (if tables_ok then "identical" else "DIFFER")
          (if metrics_ok then "identical" else "DIFFER");
        (j, dt, tables_ok, metrics_ok))
      results
  in
  let doc =
    Hs_obs.Json.Obj
      [
        ("schema", Hs_obs.Json.String "hsched.bench.parallel/1");
        ("experiment", Hs_obs.Json.String "t1");
        ("quick", Hs_obs.Json.Bool quick);
        ("recommended_domains", Hs_obs.Json.Int (Hs_exec.recommended_jobs ()));
        ( "runs",
          Hs_obs.Json.List
            (List.map
               (fun (j, dt, tables_ok, metrics_ok) ->
                 Hs_obs.Json.Obj
                   [
                     ("jobs", Hs_obs.Json.Int j);
                     ("wall_s", Hs_obs.Json.Float dt);
                     ("speedup", Hs_obs.Json.Float (t_seq /. Float.max 1e-9 dt));
                     ("tables_identical", Hs_obs.Json.Bool tables_ok);
                     ("metrics_identical", Hs_obs.Json.Bool metrics_ok);
                   ])
               rows) );
      ]
  in
  let oc = open_out "BENCH_parallel.json" in
  output_string oc (Hs_obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_parallel.json";
  if not (List.for_all (fun (_, _, t, m) -> t && m) rows) then begin
    prerr_endline "parallel determinism check FAILED: output diverged from jobs=1";
    exit 1
  end

(* ---------------- Service throughput bench ----------------------------- *)

(* Saturation sweep: drive a fresh in-process daemon (its own domain,
   its own socket, so its domain-local counters start at zero) with a
   deliberately small admission queue at c ∈ {1,4,16,64} client domains,
   each looping solve calls over a shared 8-instance pool.  Beyond the
   admission bound every extra request is shed with the typed overloaded
   response; clients honour its retry_after_ms hint through the
   deterministic client backoff until accepted.  Two latency series are
   kept per request: the accepted attempt alone (p50/p95/p99 — the
   overload contract is that accepted latency stays bounded while the
   excess is shed, not queued) and the total including shed round-trips
   and backoff sleeps (p99_total — the cost a retrying caller actually
   pays).  The daemon's own per-phase histograms (queue-wait, solve) are
   pulled over the out-of-band introspect verb before shutdown.  Results
   land in BENCH_service.json. *)
let run_service ~quick ~jobs () =
  print_endline
    "\n== Solver service: saturation sweep (admission control, Hs_service) ==";
  let pool =
    Array.init 8 (fun i ->
        let rng = Hs_workloads.Rng.create (4200 + i) in
        let inst =
          Hs_workloads.Generators.hierarchical rng ~lam:(T.semi_partitioned 4) ~n:6
            ~base:(2, 9) ~overhead:0.2 ()
        in
        Instance_io.to_string inst)
  in
  let total = if quick then 64 else 320 in
  let max_queue = 16 in
  let counters_of client =
    match Hs_service.Client.call client Hs_service.Protocol.Stats with
    | Ok r when r.Hs_service.Protocol.status = 0 ->
        List.filter_map
          (fun line ->
            match String.split_on_char '=' line with
            | [ k; v ] -> Some (String.trim k, int_of_string (String.trim v))
            | _ -> None)
          (String.split_on_char '\n' r.Hs_service.Protocol.body)
    | Ok r -> failwith ("service bench: stats failed: " ^ r.Hs_service.Protocol.error)
    | Error e -> failwith ("service bench: stats failed: " ^ e)
  in
  (* Daemon-side per-phase latency, over the out-of-band introspect verb:
     the smallest histogram bucket bound covering quantile [q], as a
     string (">max" when the overflow bucket is hit). *)
  let hist_quantile (h : Hs_obs.Metrics.hist_snapshot) q =
    if h.observations = 0 then "-"
    else
      let want =
        int_of_float (ceil (q *. float_of_int h.observations))
        |> Stdlib.max 1 |> Stdlib.min h.observations
      in
      let rec go i cum = function
        | [] -> ">" ^ string_of_int (List.fold_left Stdlib.max 0 h.buckets)
        | b :: rest ->
            let cum = cum + h.counts.(i) in
            if cum >= want then string_of_int b else go (i + 1) cum rest
      in
      go 0 0 h.buckets
  in
  let phases_of client =
    match
      Hs_service.Client.call client (Hs_service.Protocol.Introspect { recent = false })
    with
    | Ok r when r.Hs_service.Protocol.status = 0 -> (
        match Hs_obs.Json.parse r.Hs_service.Protocol.body with
        | Error e -> failwith ("service bench: introspect body: " ^ e)
        | Ok doc -> (
            match Hs_obs.Json.member "metrics" doc with
            | None -> failwith "service bench: introspect body lacks metrics"
            | Some m -> (
                match Hs_obs.Metrics.of_json m with
                | Error e -> failwith ("service bench: introspect metrics: " ^ e)
                | Ok snap ->
                    List.filter_map
                      (fun (label, name) ->
                        match Hs_obs.Metrics.find_histogram snap name with
                        | None -> None
                        | Some h ->
                            Some
                              ( label,
                                Hs_obs.Json.Obj
                                  [
                                    ("p50_le_ms", Hs_obs.Json.String (hist_quantile h 0.50));
                                    ("p99_le_ms", Hs_obs.Json.String (hist_quantile h 0.99));
                                    ("observations", Hs_obs.Json.Int h.observations);
                                  ] ))
                      [
                        ("queue", "service.phase.queue_ms");
                        ("solve", "service.phase.solve_ms");
                        ("render", "service.phase.render_ms");
                        ("write", "service.phase.write_ms");
                      ])))
    | Ok r -> failwith ("service bench: introspect failed: " ^ r.Hs_service.Protocol.error)
    | Error e -> failwith ("service bench: introspect failed: " ^ e)
  in
  let level c =
    let path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "hsb-%d-%d.sock" (Unix.getpid ()) c)
    in
    let cfg =
      { (Hs_service.Daemon.default_config ~socket_path:path) with jobs; max_queue }
    in
    let daemon = Domain.spawn (fun () -> Hs_service.Daemon.run cfg) in
    let rec wait k =
      if not (Sys.file_exists path) then
        if k = 0 then failwith "service bench: daemon socket never appeared"
        else begin
          ignore (Unix.select [] [] [] 0.05);
          wait (k - 1)
        end
    in
    wait 100;
    let per = Stdlib.max 1 (total / c) in
    let t0 = Unix.gettimeofday () in
    let workers =
      List.init c (fun w ->
          Domain.spawn (fun () ->
              match Hs_service.Client.connect path with
              | Error e -> failwith ("service bench: " ^ e)
              | Ok client ->
                  let lat = Array.make per 0.0 in
                  let tot = Array.make per 0.0 in
                  let my_retries = ref 0 in
                  for i = 0 to per - 1 do
                    let text = pool.((w + i) mod Array.length pool) in
                    (* Retry shed requests, honouring the daemon's
                       retry_after_ms hint through the deterministic
                       client backoff.  [lat] is the accepted attempt
                       alone; [tot] additionally carries every shed
                       round-trip and backoff sleep, so retry cost shows
                       up in p99_total instead of silently inflating the
                       accepted-latency percentiles. *)
                    let first = Unix.gettimeofday () in
                    let rec attempt tries =
                      let s0 = Unix.gettimeofday () in
                      match
                        Hs_service.Client.call client
                          (Hs_service.Protocol.Solve
                             { instance_text = text; budget = None; deadline_ms = None; trace_id = None })
                      with
                      | Ok r when r.Hs_service.Protocol.status = 0 ->
                          let now = Unix.gettimeofday () in
                          lat.(i) <- (now -. s0) *. 1000.;
                          tot.(i) <- (now -. first) *. 1000.
                      | Ok r when r.Hs_service.Protocol.status = 5 ->
                          if tries >= 200 then
                            failwith "service bench: shed 200 times in a row"
                          else begin
                            incr my_retries;
                            let wait =
                              Hs_service.Client.backoff_ms ~base_ms:1 ~cap_ms:100
                                ~attempt:tries
                                ~retry_after_ms:r.Hs_service.Protocol.retry_after_ms
                                ~salt:((w * 7919) + i) ()
                            in
                            ignore (Unix.select [] [] [] (float_of_int wait /. 1000.));
                            attempt (tries + 1)
                          end
                      | Ok r -> failwith ("service bench: solve: " ^ r.Hs_service.Protocol.error)
                      | Error e -> failwith ("service bench: solve: " ^ e)
                    in
                    attempt 0
                  done;
                  Hs_service.Client.close client;
                  (lat, tot, !my_retries)))
    in
    let joined = List.map Domain.join workers in
    let lats = List.concat_map (fun (l, _, _) -> Array.to_list l) joined in
    let tots = List.concat_map (fun (_, t, _) -> Array.to_list t) joined in
    let retries = List.fold_left (fun acc (_, _, r) -> acc + r) 0 joined in
    let wall = Unix.gettimeofday () -. t0 in
    let counters, phases =
      match Hs_service.Client.connect path with
      | Error e -> failwith ("service bench: " ^ e)
      | Ok client ->
          let cs = counters_of client in
          let ph = phases_of client in
          ignore (Hs_service.Client.call client Hs_service.Protocol.Shutdown);
          Hs_service.Client.close client;
          (cs, ph)
    in
    (match Domain.join daemon with
    | Ok () -> ()
    | Error e -> failwith ("service bench: daemon: " ^ e));
    let v k = Option.value ~default:0 (List.assoc_opt k counters) in
    let shed = v "service.shed" in
    let hits = v "service.cache.hit" and misses = v "service.cache.miss" in
    let ratio =
      if hits + misses = 0 then 0.0
      else float_of_int hits /. float_of_int (hits + misses)
    in
    let pct_of xs p =
      let sorted = Array.of_list xs in
      Array.sort compare sorted;
      let n = Array.length sorted in
      sorted.(Stdlib.min (n - 1) (int_of_float ((float_of_int (n - 1) *. p /. 100.) +. 0.5)))
    in
    let pct = pct_of lats in
    let pct_tot = pct_of tots in
    let n_req = List.length lats in
    let rps = float_of_int n_req /. Float.max 1e-9 wall in
    Printf.printf
      "c=%-3d accepted=%-4d shed=%-5d retries=%-5d wall=%6.3fs rps=%8.1f p50=%6.2fms \
       p95=%6.2fms p99=%6.2fms p99_total=%6.2fms hit-ratio=%.3f\n\
       %!"
      c n_req shed retries wall rps (pct 50.) (pct 95.) (pct 99.) (pct_tot 99.) ratio;
    Hs_obs.Json.Obj
      [
        ("concurrency", Hs_obs.Json.Int c);
        ("accepted", Hs_obs.Json.Int n_req);
        ("shed", Hs_obs.Json.Int shed);
        ("retries", Hs_obs.Json.Int retries);
        ("wall_s", Hs_obs.Json.Float wall);
        ("rps", Hs_obs.Json.Float rps);
        ("p50_ms", Hs_obs.Json.Float (pct 50.));
        ("p95_ms", Hs_obs.Json.Float (pct 95.));
        ("p99_ms", Hs_obs.Json.Float (pct 99.));
        ("p50_total_ms", Hs_obs.Json.Float (pct_tot 50.));
        ("p99_total_ms", Hs_obs.Json.Float (pct_tot 99.));
        ("daemon_phase_ms", Hs_obs.Json.Obj phases);
        ("cache_hits", Hs_obs.Json.Int hits);
        ("cache_misses", Hs_obs.Json.Int misses);
        ("cache_hit_ratio", Hs_obs.Json.Float ratio);
      ]
  in
  let rows = List.map level [ 1; 4; 16; 64 ] in
  let doc =
    Hs_obs.Json.Obj
      [
        ("schema", Hs_obs.Json.String "hsched.bench.service/3");
        ("pool_size", Hs_obs.Json.Int (Array.length pool));
        ("daemon_jobs", Hs_obs.Json.Int jobs);
        ("max_queue", Hs_obs.Json.Int max_queue);
        ("quick", Hs_obs.Json.Bool quick);
        ("levels", Hs_obs.Json.List rows);
      ]
  in
  let oc = open_out "BENCH_service.json" in
  output_string oc (Hs_obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_service.json"

(* ---------------- Online replay bench ---------------------------------- *)

(* Competitive-ratio harness (DESIGN.md §15): replay three seeded trace
   families through the online scheduler at β ∈ {0, 1/2, ∞}, every
   intermediate schedule certified.  The β=∞ replay doubles as the
   clairvoyant comparator for vs_baseline.  Throughput and the
   online.event_ms histogram (shared ms bucket ladder) land in
   BENCH_online.json; the run exits non-zero if any certified step fails
   or an unlimited-budget replay leaves the proven factor-2 envelope. *)
let run_online ~quick ~jobs () =
  print_endline "\n== Online replay: competitive ratio vs migration budget (Hs_online) ==";
  let module Replay = Hs_online.Replay in
  let module Q = Hs_numeric.Q in
  let nevents = if quick then 120 else 500 in
  let families =
    [
      (* steady churn: arrivals balanced by departures on a flat family *)
      ( "steady",
        Hs_workloads.Generators.trace ~seed:1201 ~lam:(T.semi_partitioned 8)
          ~events:nevents ~base:(1, 9) ~heterogeneity:1.5 ~overhead:0.15
          ~departures:0.45 ~max_live:8 () );
      (* growth to saturation: arrivals only until the live cap bites *)
      ( "growth",
        Hs_workloads.Generators.trace ~seed:1301
          ~lam:(T.smp_cmp ~nodes:2 ~chips_per_node:2 ~cores_per_chip:2)
          ~events:nevents ~base:(1, 9) ~heterogeneity:1.3 ~overhead:0.2
          ~departures:0.0 ~max_live:12 () );
      (* drain-heavy: three machines retire mid-trace, forcing re-seats *)
      ( "drain",
        Hs_workloads.Generators.trace ~seed:1401
          ~lam:(T.smp_cmp ~nodes:2 ~chips_per_node:2 ~cores_per_chip:2)
          ~events:nevents ~base:(1, 9) ~heterogeneity:1.5 ~overhead:0.15
          ~departures:0.35 ~drains:3 ~max_live:8 () );
    ]
  in
  let betas = [ ("inf", None); ("1/2", Some (Q.of_ints 1 2)); ("0", Some (Q.of_ints 0 1)) ] in
  let qjson = function
    | None -> Hs_obs.Json.Null
    | Some q -> Hs_obs.Json.String (Replay.decimal q)
  in
  let hist_json () =
    match
      Hs_obs.Metrics.find_histogram (Hs_obs.Metrics.snapshot ()) "online.event_ms"
    with
    | None -> Hs_obs.Json.Null
    | Some h ->
        Hs_obs.Json.Obj
          [
            ( "le_ms",
              Hs_obs.Json.List (List.map (fun b -> Hs_obs.Json.Int b) h.buckets) );
            ( "counts",
              Hs_obs.Json.List
                (List.map (fun c -> Hs_obs.Json.Int c) (Array.to_list h.counts)) );
            ("observations", Hs_obs.Json.Int h.observations);
          ]
  in
  let failed = ref false in
  let bench_family (name, tr) =
    (* β=∞ first: it is the clairvoyant baseline for the budgeted runs. *)
    let replay beta =
      Hs_obs.Metrics.reset ();
      let t0 = Unix.gettimeofday () in
      match Replay.run ?beta ~check:true ~jobs tr with
      | Error e -> failwith (Printf.sprintf "bench online: %s: %s" name e)
      | Ok o -> (o, Unix.gettimeofday () -. t0, hist_json ())
    in
    let baseline, _, _ = replay None in
    let rows =
      List.map
        (fun (label, beta) ->
          let o, wall, hist = replay beta in
          let s = o.Replay.summary in
          let vmax, vmean = Replay.vs_baseline o ~baseline in
          if s.Replay.check_failures > 0 then begin
            Printf.eprintf "bench online: %s beta=%s: %d step(s) failed certification\n"
              name label s.Replay.check_failures;
            failed := true
          end;
          (match (beta, s.Replay.max_ratio) with
          | None, Some r when Q.compare r (Q.of_int 2) > 0 ->
              Printf.eprintf
                "bench online: %s beta=inf: max ratio %s leaves the factor-2 envelope\n"
                name (Replay.decimal r);
              failed := true
          | _ -> ());
          let eps = float_of_int s.Replay.events /. Float.max 1e-9 wall in
          Printf.printf
            "%-7s beta=%-4s events=%-4d ev/s=%8.1f adopted=%-3d blocked=%-3d \
             migrated=%-5d forced=%-4d ratio(T*) max=%s mean=%s vs-inf max=%s \
             certified=%d/%d\n\
             %!"
            name label s.Replay.events eps s.Replay.adoptions s.Replay.budget_blocked
            s.Replay.migrated_volume s.Replay.forced_volume
            (match s.Replay.max_ratio with None -> "-" | Some r -> Replay.decimal r)
            (match s.Replay.mean_ratio with None -> "-" | Some r -> Replay.decimal r)
            (match vmax with None -> "-" | Some r -> Replay.decimal r)
            s.Replay.certified s.Replay.events;
          Hs_obs.Json.Obj
            [
              ("beta", Hs_obs.Json.String label);
              ("events", Hs_obs.Json.Int s.Replay.events);
              ("wall_s", Hs_obs.Json.Float wall);
              ("events_per_s", Hs_obs.Json.Float eps);
              ("resolves", Hs_obs.Json.Int s.Replay.resolves);
              ("adoptions", Hs_obs.Json.Int s.Replay.adoptions);
              ("budget_blocked", Hs_obs.Json.Int s.Replay.budget_blocked);
              ("arrived_volume", Hs_obs.Json.Int s.Replay.arrived_volume);
              ("migrated_volume", Hs_obs.Json.Int s.Replay.migrated_volume);
              ("forced_volume", Hs_obs.Json.Int s.Replay.forced_volume);
              ("final_makespan", Hs_obs.Json.Int s.Replay.final_makespan);
              ("max_ratio_vs_lp", qjson s.Replay.max_ratio);
              ("mean_ratio_vs_lp", qjson s.Replay.mean_ratio);
              ("max_ratio_vs_clairvoyant", qjson vmax);
              ("mean_ratio_vs_clairvoyant", qjson vmean);
              ("certified", Hs_obs.Json.Int s.Replay.certified);
              ("check_failures", Hs_obs.Json.Int s.Replay.check_failures);
              ("event_ms", hist);
            ])
        betas
    in
    (name, Hs_obs.Json.Obj [ ("runs", Hs_obs.Json.List rows) ])
  in
  let fams = List.map bench_family families in
  let doc =
    Hs_obs.Json.Obj
      [
        ("schema", Hs_obs.Json.String "hsched.bench.online/1");
        ("events", Hs_obs.Json.Int nevents);
        ("jobs", Hs_obs.Json.Int jobs);
        ("quick", Hs_obs.Json.Bool quick);
        ("families", Hs_obs.Json.Obj fams);
      ]
  in
  let oc = open_out "BENCH_online.json" in
  output_string oc (Hs_obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_online.json";
  if !failed then begin
    prerr_endline "online bench FAILED: certification or envelope violation";
    exit 1
  end

(* ---------------- LP engine bench --------------------------------------- *)

(* Solver-scaling study of the two simplex engines (DESIGN.md §16): a
   size ladder of single LP-feasibility solves timed under the dense
   tableau, the sparse revised engine, and the sparse engine with the
   float pre-solve; cold-vs-warm pivot counts for the Theorem V.2
   binary search (one warm store shared by its probes); and the
   growth-family online replay solved cold and warm-started.  The dense
   tableau and exact arithmetic are capped to the sizes they can carry —
   the top of the ladder (10k jobs / 1k machines in the full run) is
   float-field sparse only, with a pivot allowance so the run always
   terminates.  Writes BENCH_lp.json; exits non-zero if the warm growth
   replay fails to use strictly fewer pivots than the cold one or
   diverges from it. *)
let run_lp ~quick () =
  print_endline "\n== LP engines: dense vs sparse revised, cold vs warm (Hs_lp) ==";
  let module I = Hs_core.Ilp.Make (Hs_lp.Field.Exact) in
  let module IF = Hs_core.Ilp.Make (Hs_lp.Field.Float) in
  let module E = Hs_lp.Engine in
  let counter snap name =
    Option.value ~default:0 (List.assoc_opt name snap.Hs_obs.Metrics.counters)
  in
  (* Each measurement resets the registry, so counter values are exact
     per-solve rates, and wall time is a single monotonic interval. *)
  let measure f =
    Hs_obs.Metrics.reset ();
    let t0 = Unix.gettimeofday () in
    let outcome = f () in
    let wall = Unix.gettimeofday () -. t0 in
    (outcome, wall, Hs_obs.Metrics.snapshot ())
  in
  let instance ~n ~m =
    let rng = Hs_workloads.Rng.create (7100 + n + m) in
    Hs_workloads.Generators.hierarchical rng ~lam:(T.semi_partitioned m) ~n
      ~base:(2, 15) ~heterogeneity:1.6 ~overhead:0.2 ()
  in
  (* -- section 1: one feasibility solve per engine across the ladder -- *)
  let allowance = 2_000_000 in
  (* (n, m, pivot allowance).  The 10k/1k row exists to measure how far
     a bounded pivot allowance gets at that scale — a full float solve
     there runs for hours, so its row is expected (and recorded) as
     budget_exhausted rather than left open-ended. *)
  let ladder =
    if quick then [ (12, 4, allowance); (30, 8, allowance); (60, 16, allowance) ]
    else
      [
        (30, 8, allowance);
        (100, 32, allowance);
        (300, 64, allowance);
        (1000, 128, allowance);
        (3000, 512, allowance);
        (10000, 1000, 1_500);
      ]
  in
  let dense_cap = if quick then 60 else 300 in
  let exact_cap = if quick then 60 else 1000 in
  let feasibility_case name f =
    match measure f with
    | ok, wall, snap ->
        ( name,
          Hs_obs.Json.Obj
            [
              ("feasible", Hs_obs.Json.Bool ok);
              ("wall_s", Hs_obs.Json.Float wall);
              ("pivots", Hs_obs.Json.Int (counter snap "simplex.pivots"));
              ("budget_exhausted", Hs_obs.Json.Bool false);
            ] )
    | exception Hs_core.Hs_error.Error (Hs_core.Hs_error.Budget_exhausted _) ->
        (name, Hs_obs.Json.Obj [ ("budget_exhausted", Hs_obs.Json.Bool true) ])
  in
  let scaling_row (n, m, row_allowance) =
    let inst = instance ~n ~m in
    match I.t_bounds inst with
    | None -> None
    | Some (_, hi) ->
        (* Solve at the certified upper bound: always feasible, so every
           engine does the same full phase-1 work. *)
        let exact engine () =
          E.with_engine engine (fun () ->
              I.lp_feasible_x ~pivots:(Hs_lp.Simplex.budget row_allowance) inst
                ~tmax:hi
              <> None)
        in
        let cases =
          [ feasibility_case "sparse_float"
              (fun () ->
                E.with_engine E.Sparse (fun () ->
                    IF.lp_feasible_x ~pivots:(Hs_lp.Simplex.budget row_allowance)
                      inst ~tmax:hi
                    <> None)) ]
          @ (if n <= exact_cap then
               [ feasibility_case "sparse_exact" (exact E.Sparse);
                 feasibility_case "sparse_exact_presolve"
                   (fun () ->
                     E.set_presolve true;
                     Fun.protect
                       ~finally:(fun () -> E.set_presolve false)
                       (exact E.Sparse)) ]
             else [])
          @
          if n <= dense_cap then [ feasibility_case "dense_exact" (exact E.Dense) ]
          else []
        in
        let wall_of name =
          match List.assoc_opt name cases with
          | Some (Hs_obs.Json.Obj fields) -> (
              match List.assoc_opt "wall_s" fields with
              | Some (Hs_obs.Json.Float w) -> Printf.sprintf "%8.3fs" w
              | _ -> "  budget!")
          | _ -> "       -"
        in
        Printf.printf "n=%-6d m=%-5d tmax=%-6d float=%s exact=%s presolve=%s dense=%s\n%!"
          n m hi (wall_of "sparse_float") (wall_of "sparse_exact")
          (wall_of "sparse_exact_presolve") (wall_of "dense_exact");
        Some
          (Hs_obs.Json.Obj
             [
               ("n", Hs_obs.Json.Int n);
               ("m", Hs_obs.Json.Int m);
               ("tmax", Hs_obs.Json.Int hi);
               ("allowance", Hs_obs.Json.Int row_allowance);
               ("engines", Hs_obs.Json.Obj cases);
             ])
  in
  let scaling = List.filter_map scaling_row ladder in
  (* -- section 2: the binary search, cold vs warm-started probes -- *)
  let search_sizes = if quick then [ (12, 4); (24, 8) ] else [ (30, 8); (100, 32) ] in
  let search_row (n, m) =
    let inst = instance ~n ~m in
    let solve warm () =
      match
        (if warm then
           Hs_core.Approx.Exact.solve_checked
             ~warm:(Hs_core.Approx.Exact.I.warm_store ())
             inst
         else Hs_core.Approx.Exact.solve_checked inst)
      with
      | Ok o -> o.Hs_core.Approx.Exact.t_lp
      | Error e -> failwith ("bench lp: " ^ Hs_core.Hs_error.to_string e)
    in
    let t_cold, wall_cold, snap_cold = measure (solve false) in
    let t_warm, wall_warm, snap_warm = measure (solve true) in
    if t_cold <> t_warm then
      failwith
        (Printf.sprintf "bench lp: warm binary search changed T* (%d vs %d)" t_cold
           t_warm);
    let pc = counter snap_cold "simplex.pivots"
    and pw = counter snap_warm "simplex.pivots" in
    Printf.printf
      "search n=%-4d m=%-3d T*=%-4d pivots cold=%-6d warm=%-6d hits=%d repairs=%d\n%!"
      n m t_cold pc pw
      (counter snap_warm "lp.warm_start.hits")
      (counter snap_warm "lp.warm_start.repairs");
    Hs_obs.Json.Obj
      [
        ("n", Hs_obs.Json.Int n);
        ("m", Hs_obs.Json.Int m);
        ("t_lp", Hs_obs.Json.Int t_cold);
        ( "cold",
          Hs_obs.Json.Obj
            [ ("pivots", Hs_obs.Json.Int pc); ("wall_s", Hs_obs.Json.Float wall_cold) ]
        );
        ( "warm",
          Hs_obs.Json.Obj
            [
              ("pivots", Hs_obs.Json.Int pw);
              ("wall_s", Hs_obs.Json.Float wall_warm);
              ("hits", Hs_obs.Json.Int (counter snap_warm "lp.warm_start.hits"));
              ("misses", Hs_obs.Json.Int (counter snap_warm "lp.warm_start.misses"));
              ("repairs", Hs_obs.Json.Int (counter snap_warm "lp.warm_start.repairs"));
            ] );
      ]
  in
  let searches = List.map search_row search_sizes in
  (* -- section 3: the growth family replayed cold and warm-started -- *)
  let nevents = if quick then 60 else 500 in
  let tr =
    Hs_workloads.Generators.trace ~seed:1301
      ~lam:(T.smp_cmp ~nodes:2 ~chips_per_node:2 ~cores_per_chip:2) ~events:nevents
      ~base:(1, 9) ~heterogeneity:1.3 ~overhead:0.2 ~departures:0.0 ~max_live:12 ()
  in
  let module Replay = Hs_online.Replay in
  let replay warm_start () =
    match Replay.run ~warm_start tr with
    | Error e -> failwith ("bench lp: growth replay: " ^ e)
    | Ok o -> o
  in
  let ocold, wall_cold, snap_cold = measure (replay false) in
  let owarm, wall_warm, snap_warm = measure (replay true) in
  let pc = counter snap_cold "simplex.pivots"
  and pw = counter snap_warm "simplex.pivots" in
  let identical =
    List.length ocold.Replay.steps = List.length owarm.Replay.steps
    && List.for_all2
         (fun (a : Replay.step) (b : Replay.step) -> a.makespan = b.makespan)
         ocold.Replay.steps owarm.Replay.steps
  in
  Printf.printf
    "growth  events=%-4d pivots cold=%-7d warm=%-7d saved=%4.1f%% hits=%d \
     misses=%d repairs=%d schedules=%s\n\
     %!"
    nevents pc pw
    (100. *. float_of_int (pc - pw) /. Float.max 1. (float_of_int pc))
    (counter snap_warm "lp.warm_start.hits")
    (counter snap_warm "lp.warm_start.misses")
    (counter snap_warm "lp.warm_start.repairs")
    (if identical then "identical" else "DIFFER");
  let online =
    Hs_obs.Json.Obj
      [
        ("events", Hs_obs.Json.Int nevents);
        ( "cold",
          Hs_obs.Json.Obj
            [ ("pivots", Hs_obs.Json.Int pc); ("wall_s", Hs_obs.Json.Float wall_cold) ]
        );
        ( "warm",
          Hs_obs.Json.Obj
            [
              ("pivots", Hs_obs.Json.Int pw);
              ("wall_s", Hs_obs.Json.Float wall_warm);
              ("hits", Hs_obs.Json.Int (counter snap_warm "lp.warm_start.hits"));
              ("misses", Hs_obs.Json.Int (counter snap_warm "lp.warm_start.misses"));
              ("repairs", Hs_obs.Json.Int (counter snap_warm "lp.warm_start.repairs"));
            ] );
        ("schedules_identical", Hs_obs.Json.Bool identical);
        ( "pivots_saved_pct",
          Hs_obs.Json.Float
            (100. *. float_of_int (pc - pw) /. Float.max 1. (float_of_int pc)) );
      ]
  in
  let doc =
    Hs_obs.Json.Obj
      [
        ("schema", Hs_obs.Json.String "hsched.bench.lp/1");
        ("quick", Hs_obs.Json.Bool quick);
        ("pivot_allowance", Hs_obs.Json.Int allowance);
        ("scaling", Hs_obs.Json.List scaling);
        ("warm_binary_search", Hs_obs.Json.List searches);
        ("online_growth", online);
      ]
  in
  let oc = open_out "BENCH_lp.json" in
  output_string oc (Hs_obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_lp.json";
  if not identical then begin
    prerr_endline "lp bench FAILED: warm growth replay diverged from the cold one";
    exit 1
  end;
  if pw >= pc then begin
    Printf.eprintf
      "lp bench FAILED: warm growth replay used %d pivots, cold used %d — warm \
       must be strictly cheaper\n"
      pw pc;
    exit 1
  end

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "quick" args in
  let jobs =
    let rec find = function
      | "--jobs" :: v :: _ -> (
          match int_of_string_opt v with
          | Some j -> Hs_exec.resolve_jobs j
          | None -> failwith "bench: --jobs expects an integer")
      | _ :: rest -> find rest
      | [] -> 1
    in
    find args
  in
  let which =
    if List.mem "experiments" args then `Experiments
    else if List.mem "timings" args then `Timings
    else if List.mem "parallel" args then `Parallel
    else if List.mem "service" args then `Service
    else if List.mem "online" args then `Online
    else if List.mem "lp" args then `Lp
    else `Both
  in
  (match which with
  | `Experiments | `Both ->
      print_endline "== Evaluation suite (DESIGN.md section 4; see EXPERIMENTS.md) ==";
      Hs_experiments.Experiments.all ~quick ~jobs ()
  | `Timings | `Parallel | `Service | `Online | `Lp -> ());
  (match which with
  | `Parallel -> run_parallel ~quick ()
  | `Service -> run_service ~quick ~jobs ()
  | `Online -> run_online ~quick ~jobs ()
  | `Lp -> run_lp ~quick ()
  | _ -> ());
  match which with
  | `Timings | `Both -> run_timings ()
  | `Experiments | `Parallel | `Service | `Online | `Lp -> ()
