(* Processor affinity masks beyond the laminar case (Section II's
   8-approximation), plus the instance-file round trip used to exchange
   workloads with other tools.

     dune exec examples/affinity_masks.exe *)

open Hs_model

let () =
  (* A non-laminar affinity family: sliding windows over 4 machines plus
     singletons — windows overlap, so the hierarchical machinery does
     not apply and the reduction to unrelated machines is used. *)
  let sets = [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ] in
  let fin = Ptime.fin in
  let p =
    [|
      (* window times, then singleton times (monotone within chains) *)
      [| fin 6; fin 6; fin 8; fin 4; fin 5; fin 6; fin 8 |];
      [| fin 9; fin 7; fin 7; fin 8; fin 6; fin 5; fin 7 |];
      [| fin 5; fin 6; fin 6; fin 4; fin 5; fin 5; fin 6 |];
      [| fin 7; fin 7; fin 9; fin 6; fin 6; fin 7; fin 9 |];
    |]
  in
  let g = General_instance.make_exn ~m:4 ~sets ~p in
  (match Hs_core.Approx.solve_general g with
  | Error e -> failwith e
  | Ok o ->
      Printf.printf "general masks: LP lower bound %d, achieved makespan %d (<= 8x)\n"
        o.lower_bound o.makespan;
      Array.iteri
        (fun j k ->
          Printf.printf "  job %d -> machine %d via admissible set #%d {%s}\n" j
            o.machine_assignment.(j) k
            (String.concat "," (List.map string_of_int (List.nth sets k))))
        o.set_assignment);

  (* Instance-file round trip on a laminar instance. *)
  let rng = Hs_workloads.Rng.create 5 in
  let lam = Hs_laminar.Topology.clustered ~m:4 ~clusters:2 in
  let inst =
    Hs_workloads.Generators.hierarchical rng ~lam ~n:5 ~base:(1, 8) ~overhead:0.2 ()
  in
  let text = Instance_io.to_string inst in
  print_endline "\ninstance file:";
  print_string text;
  match Instance_io.of_string text with
  | Error e -> failwith e
  | Ok inst' ->
      assert (Instance_io.to_string inst' = text);
      print_endline "round trip OK";
      print_endline "affinity_masks OK"
