(* An SMP-CMP cluster (the paper's motivating architecture): 2 nodes x
   2 chips x 2 cores, with three communication levels (intra-CMP,
   inter-CMP, inter-node).

   We generate a heterogeneous workload whose processing-time functions
   fold per-level migration overheads in (the paper's model), solve it
   with the 2-approximation, then replay the schedule in the execution
   simulator under explicit migration latencies to confirm the folding
   was conservative.

     dune exec examples/smp_cmp_cluster.exe *)

open Hs_model
module L = Hs_laminar.Laminar

let () =
  let lam = Hs_laminar.Topology.smp_cmp ~nodes:2 ~chips_per_node:2 ~cores_per_chip:2 in
  Printf.printf "topology: %d machines, %d admissible sets, %d levels\n"
    (L.m lam) (L.size lam) (L.nlevels lam);

  let rng = Hs_workloads.Rng.create 2024 in
  let inst =
    Hs_workloads.Generators.hierarchical rng ~lam ~n:14 ~base:(3, 10)
      ~heterogeneity:1.7 ~overhead:0.25 ()
  in

  match Hs_core.Approx.Exact.solve inst with
  | Error e -> failwith e
  | Ok o ->
      Printf.printf "LP bound %d, achieved makespan %d (<= %d guaranteed)\n" o.t_lp
        o.makespan (2 * o.t_lp);

      (* Make some jobs deliberately migratory (cluster-level masks) to
         show the hierarchy at work, then schedule with Algorithms 2-3. *)
      let lamc = Instance.laminar o.instance in
      let root = List.hd (L.roots lamc) in
      let chip0 = Option.get (L.find lamc [ 0; 1 ]) in
      let node0 = Option.get (L.find lamc [ 0; 1; 2; 3 ]) in
      let a = Array.copy o.assignment in
      a.(0) <- root;
      a.(1) <- node0;
      a.(2) <- chip0;
      let t = Assignment.min_makespan o.instance a in
      (match Hs_core.Hierarchical.schedule_stats o.instance a ~tmax:t with
      | Error e -> failwith e
      | Ok (sched, stats) ->
          assert (Schedule.is_valid o.instance a sched);
          Printf.printf
            "hierarchical schedule: horizon %d, tape migrations %d, preemptions %d\n" t
            stats.Hs_core.Tape.migrations stats.Hs_core.Tape.preemptions;

          (* Replay under the three communication levels: intra-CMP
             cheap, inter-CMP pricier, inter-node expensive. *)
          print_endline "\nlatency sweep (intra-CMP, inter-CMP, inter-node):";
          List.iter
            (fun (l1, l2, l3) ->
              let latency =
                Hs_sim.Simulator.latency_of_levels lamc [| 0; l1; l2; l3 |]
              in
              let r = Hs_sim.Simulator.run ~lam:lamc sched ~latency in
              Printf.printf
                "  (%2d,%2d,%2d): model %d -> realised %d (stall %d, migrations by level %s)\n"
                l1 l2 l3 r.model_makespan r.realised_makespan r.total_stall
                (String.concat ","
                   (List.map
                      (fun (h, c) -> Printf.sprintf "h%d:%d" h c)
                      r.migrations_by_level)))
            [ (0, 0, 0); (1, 2, 4); (2, 4, 8); (4, 8, 16) ];
          print_endline "\nsmp_cmp_cluster OK")
