(* The capacity loss of pure partitioning, and how semi-partitioned
   scheduling recovers it (the paper's Example V.1 family).

   Job j (j < n-1) is pinned to machine j with length n-2; the last job
   can run anywhere with length n-1.  Partitioned scheduling must stack
   the last job onto some machine (makespan 2n-3); semi-partitioned
   scheduling migrates it through the idle slots (makespan n-1).  The
   ratio approaches 2 as n grows.

     dune exec examples/capacity_loss.exe *)

open Hs_model

let () =
  print_endline "n    hierarchical OPT   unrelated OPT   gap";
  List.iter
    (fun n ->
      let inst = Hs_workloads.Families.example_v1 n in
      (* closed-form optima, cross-checked exactly for small n *)
      let hier = Hs_workloads.Families.example_v1_hierarchical_opt n in
      let unrel = Hs_workloads.Families.example_v1_unrelated_opt n in
      if n <= 8 then begin
        (match Hs_core.Exact.optimal inst with
        | Some (_, o, _) -> assert (o = hier)
        | None -> assert false);
        match Hs_baselines.Unrelated_reduction.optimal_reduced inst with
        | Some o -> assert (o = unrel)
        | None -> assert false
      end;
      Printf.printf "%-4d %-18d %-15d %.3f\n" n hier unrel
        (float_of_int unrel /. float_of_int hier))
    [ 3; 4; 5; 6; 8; 12; 20; 40; 100 ];

  (* And the witnessing schedule for n = 6: job 5 sweeps through the
     m = 5 machines' idle unit slots. *)
  let n = 6 in
  let inst = Hs_workloads.Families.example_v1 n in
  let lam = Instance.laminar inst in
  let full = Option.get (Hs_laminar.Laminar.full_set lam) in
  let a =
    Array.init n (fun j ->
        if j = n - 1 then full else Option.get (Hs_laminar.Laminar.singleton lam j))
  in
  let t = Assignment.min_makespan inst a in
  match Hs_core.Semi_partitioned.schedule_stats inst a ~tmax:t with
  | Error e -> failwith e
  | Ok (sched, stats) ->
      assert (Schedule.is_valid inst a sched);
      Printf.printf
        "\nn=6 witness: horizon %d with %d migrations (bound m-1 = %d)\n" t
        stats.Hs_core.Tape.migrations
        (n - 2);
      Format.printf "%a@\n" Schedule.pp sched;
      print_endline "capacity_loss OK"
