examples/realtime_dpfair.mli:
