examples/smp_cmp_cluster.mli:
