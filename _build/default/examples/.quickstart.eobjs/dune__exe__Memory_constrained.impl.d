examples/memory_constrained.ml: Array Hs_core Hs_laminar Hs_model Hs_numeric Hs_workloads Instance List Printf Schedule
