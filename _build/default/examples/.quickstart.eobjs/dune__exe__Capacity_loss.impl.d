examples/capacity_loss.ml: Array Assignment Format Hs_baselines Hs_core Hs_laminar Hs_model Hs_workloads Instance List Option Printf Schedule
