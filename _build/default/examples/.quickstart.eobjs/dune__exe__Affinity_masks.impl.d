examples/affinity_masks.ml: Array General_instance Hs_core Hs_laminar Hs_model Hs_workloads Instance_io List Printf Ptime String
