examples/quickstart.mli:
