examples/clustered_comparison.ml: Hs_core Hs_laminar Hs_model Hs_workloads List Printf Schedule
