examples/realtime_dpfair.ml: Array Dpfair Gantt Hs_laminar Hs_model Hs_numeric Hs_realtime List Printf Schedule String Task
