examples/smp_cmp_cluster.ml: Array Assignment Hs_core Hs_laminar Hs_model Hs_sim Hs_workloads Instance List Option Printf Schedule String
