examples/quickstart.ml: Assignment Format Hs_core Hs_laminar Hs_model Instance Option Printf Ptime Schedule
