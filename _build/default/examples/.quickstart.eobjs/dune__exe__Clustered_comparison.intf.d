examples/clustered_comparison.mli:
