examples/affinity_masks.mli:
