(* Quickstart: build a small semi-partitioned instance by hand, run the
   Theorem V.2 pipeline, and inspect the schedule.

   This is Example II.1 / III.1 from the paper: two machines, two pinned
   jobs and one job that migrates.  Run with:

     dune exec examples/quickstart.exe *)

open Hs_model
module L = Hs_laminar.Laminar

let () =
  (* Processing times: job 0 runs only on machine 0 (1 unit), job 1 only
     on machine 1 (1 unit), job 2 takes 2 units anywhere — even globally
     (i.e. migrating freely between the machines). *)
  let inst =
    Instance.semi_partitioned
      ~global:[| Ptime.Inf; Ptime.Inf; Ptime.fin 2 |]
      ~local:
        [|
          [| Ptime.fin 1; Ptime.Inf |];
          [| Ptime.Inf; Ptime.fin 1 |];
          [| Ptime.fin 2; Ptime.fin 2 |];
        |]
  in
  print_endline "Instance (Example II.1 of the paper):";
  Format.printf "%a@\n@\n" Instance.pp inst;

  (* The 2-approximation pipeline: LP binary search, Lemma V.1 transfer,
     Lenstra-Shmoys-Tardos rounding, Algorithms 2-3 scheduling. *)
  (match Hs_core.Approx.Exact.solve inst with
  | Error e -> failwith e
  | Ok o ->
      Printf.printf "LP lower bound:    %d\n" o.t_lp;
      Printf.printf "achieved makespan: %d (paper guarantee: <= %d)\n\n" o.makespan
        (2 * o.t_lp);
      Format.printf "%a@\n@\n" Schedule.pp o.schedule;
      assert (Schedule.is_valid o.instance o.assignment o.schedule));

  (* The optimal integral solution assigns job 2 globally: makespan 2,
     scheduled by Algorithm 1 with a single migration.  A pure
     partitioned (unrelated-machines) solution needs makespan 3. *)
  let lam = Instance.laminar inst in
  let full = Option.get (L.full_set lam) in
  let s i = Option.get (L.singleton lam i) in
  let assignment = [| s 0; s 1; full |] in
  let t = Assignment.min_makespan inst assignment in
  Printf.printf "optimal semi-partitioned makespan: %d\n" t;
  match Hs_core.Semi_partitioned.schedule_stats inst assignment ~tmax:t with
  | Error e -> failwith e
  | Ok (sched, stats) ->
      Format.printf "%a@\n" Schedule.pp sched;
      Printf.printf "migrations: %d (Proposition III.2 bound: %d)\n"
        stats.Hs_core.Tape.migrations
        (L.m lam - 1);
      assert (Schedule.is_valid inst assignment sched);
      print_endline "quickstart OK"
