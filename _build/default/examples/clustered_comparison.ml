(* Comparing the scheduling regimes the model subsumes (Section II) on
   one workload: global (P|pmtn|Cmax), partitioned (R||Cmax), clustered,
   and semi-partitioned — all through the same pipeline, by swapping the
   admissible family.

     dune exec examples/clustered_comparison.exe *)

open Hs_model
module L = Hs_laminar.Laminar
module T = Hs_laminar.Topology

(* One shared workload over 8 machines: base lengths, machine speeds and
   per-level overheads fixed by the seed; each family reuse the same
   generator stream so the comparison is apples-to-apples. *)
let instance_for lam =
  let rng = Hs_workloads.Rng.create 1234 in
  Hs_workloads.Generators.hierarchical rng ~lam ~n:16 ~base:(2, 9)
    ~heterogeneity:1.6 ~overhead:0.2 ()

let () =
  Printf.printf "%-18s %8s %10s %12s\n" "family" "LP T*" "makespan" "ratio vs LP";
  List.iter
    (fun (name, lam) ->
      let inst = instance_for lam in
      match Hs_core.Approx.Exact.solve inst with
      | Error e -> Printf.printf "%-18s failed: %s\n" name e
      | Ok o ->
          assert (Schedule.is_valid o.instance o.assignment o.schedule);
          Printf.printf "%-18s %8d %10d %12.3f\n" name o.t_lp o.makespan
            (float_of_int o.makespan /. float_of_int o.t_lp))
    [
      ("global {M}", T.global 8);
      ("partitioned", T.singletons 8);
      ("clustered 2x4", T.clustered ~m:8 ~clusters:2);
      ("clustered 4x2", T.clustered ~m:8 ~clusters:4);
      ("semi-partitioned", T.semi_partitioned 8);
      ("SMP-CMP 2x2x2", T.smp_cmp ~nodes:2 ~chips_per_node:2 ~cores_per_chip:2);
    ];
  print_endline "\n(the LP bounds differ across families because larger masks carry";
  print_endline " migration overheads in their processing times — the paper's model)";
  print_endline "clustered_comparison OK"
