(* Section VI: scheduling under memory capacities.

   Model 1: each machine has a budget B_i and jobs charge s_ij against
   every machine of their mask; iterative rounding gives a schedule with
   makespan <= 3T and memory <= 3 B_i (Theorem VI.1).

   Model 2: a tree of caches scaling as mu^height with job sizes s_j <= 1;
   the Lemma VI.2 rounding gives sigma = 2 + H_k on both criteria
   (Theorem VI.3).

     dune exec examples/memory_constrained.exe *)

open Hs_model
module Q = Hs_numeric.Q

let () =
  (* ---- Model 1 on a 3-machine semi-partitioned system -------------- *)
  let rng = Hs_workloads.Rng.create 77 in
  let inst =
    Hs_workloads.Generators.semi_partitioned_load rng ~m:3 ~load:0.6 ~pmin:2 ~pmax:7 ()
  in
  let payload = Hs_workloads.Generators.model1_payload rng inst ~smax:4 ~slack:1.3 in
  Printf.printf "Model 1: %d jobs on 3 machines, budget %d each\n"
    (Instance.njobs inst) payload.budgets.(0);
  (match Hs_core.Memory.solve_model1 inst payload with
  | Error e -> failwith e
  | Ok r ->
      assert (Schedule.is_valid inst r.assignment r.schedule);
      Printf.printf "  reference T = %d, achieved makespan = %d (factor %s <= 3)\n"
        r.t_reference r.makespan (Q.to_string r.makespan_factor);
      Printf.printf "  worst memory factor = %s (<= 3)\n"
        (Q.to_string r.max_capacity_factor);
      List.iter
        (fun (name, f) ->
          if Q.sign f > 0 then Printf.printf "    %s: usage/bound = %s\n" name (Q.to_string f))
        r.capacity_factors);

  (* ---- Model 2 on a 2x2x2 cache tree -------------------------------- *)
  let lam = Hs_laminar.Topology.smp_cmp ~nodes:2 ~chips_per_node:2 ~cores_per_chip:2 in
  let rng = Hs_workloads.Rng.create 78 in
  let inst =
    Hs_workloads.Generators.hierarchical rng ~lam ~n:8 ~base:(2, 6) ~overhead:0.2 ()
  in
  let payload = Hs_workloads.Generators.model2_payload rng inst ~mu:(Q.of_int 2) in
  let k = Hs_laminar.Laminar.nlevels lam in
  Printf.printf "\nModel 2: k = %d levels, mu = 2, sigma bound = %s\n" k
    (Q.to_string (Hs_core.Memory.sigma_bound ~k));
  match Hs_core.Memory.solve_model2 inst payload with
  | Error e -> failwith e
  | Ok r ->
      assert (Schedule.is_valid inst r.assignment r.schedule);
      Printf.printf "  reference T = %d, makespan = %d (factor %s)\n" r.t_reference
        r.makespan (Q.to_string r.makespan_factor);
      Printf.printf "  worst capacity factor = %s, rounding rounds = %d, fallbacks = %d\n"
        (Q.to_string r.max_capacity_factor) r.rounds r.fallback_drops;
      print_endline "memory_constrained OK"
