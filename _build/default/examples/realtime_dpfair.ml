(* Real-time application: boundary-aligned (DP-Fair style) scheduling of
   implicit-deadline periodic tasks with hierarchical processor
   affinities — the workload class the semi-partitioned literature the
   paper builds on actually targets.

   The gcd of the periods becomes the slice; per-slice demands form a
   hierarchical scheduling instance; the paper's machinery decides
   schedulability and builds the repeating template.

     dune exec examples/realtime_dpfair.exe *)

open Hs_model
open Hs_realtime
module L = Hs_laminar.Laminar

let () =
  let lam = Hs_laminar.Topology.clustered ~m:4 ~clusters:2 in

  (* Six periodic tasks; WCETs inflate by 25% overhead per level. *)
  let task name period base =
    Task.of_base ~lam ~name ~period ~base ~overhead:0.25 ()
  in
  let tasks =
    [|
      task "video" 10 6;
      task "audio" 20 9;
      task "net" 20 7;
      task "ctrl" 10 5;
      task "log" 40 11;
      task "ui" 40 8;
    |]
  in
  Printf.printf "slice D = %d, hyperperiod = %d, total min utilization = %s of %d cores\n"
    (Task.slice_length tasks) (Task.hyperperiod tasks)
    (Hs_numeric.Q.to_string (Task.total_min_utilization tasks))
    (L.m lam);

  (match Dpfair.analyze lam tasks with
  | Dpfair.Schedulable s ->
      Printf.printf "SCHEDULABLE: template of length %d\n" s.slice;
      Array.iteri
        (fun j set ->
          Printf.printf "  %-6s -> {%s}\n" tasks.(j).Task.name
            (String.concat ","
               (List.map string_of_int (Array.to_list (L.members lam set)))))
        s.assignment;
      print_newline ();
      Gantt.print s.template;
      assert (Schedule.is_valid s.instance s.assignment s.template);
      assert (Dpfair.supply_ok tasks (Dpfair.Schedulable s));
      (* Unroll one hyperperiod to see the repetition. *)
      let k = Task.hyperperiod tasks / s.slice in
      let unrolled = Dpfair.unroll s.template ~slice:s.slice ~k in
      Printf.printf "\nunrolled hyperperiod (%d slices):\n" k;
      Gantt.print ~max_width:80 unrolled
  | Dpfair.Infeasible why -> Printf.printf "INFEASIBLE: %s\n" why
  | Dpfair.Unknown why -> Printf.printf "UNKNOWN: %s\n" why);

  (* Push the utilization over the edge: must be reported infeasible. *)
  let overloaded = Array.append tasks [| task "bulk1" 10 9; task "bulk2" 10 9; task "bulk3" 10 9 |] in
  (match Dpfair.analyze lam overloaded with
  | Dpfair.Infeasible why -> Printf.printf "\noverloaded set correctly rejected: %s\n" why
  | Dpfair.Schedulable _ -> failwith "overloaded set accepted!"
  | Dpfair.Unknown why -> Printf.printf "\noverloaded set: unknown (%s)\n" why);
  print_endline "realtime_dpfair OK"
