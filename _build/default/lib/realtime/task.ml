(** Implicit-deadline periodic tasks with affinity-mask-dependent WCETs.

    The semi-partitioned scheduling line the paper builds on (Bastoni,
    Brandenburg & Anderson) is about {e real-time} workloads; this module
    provides the task model used by {!Dpfair} to turn the paper's
    makespan machinery into a schedulability test + template scheduler.

    A task releases a job of worst-case execution time [wcet(α)] every
    [period] time units (deadline = period).  As in the paper, the WCET
    depends monotonically on the affinity mask: migrating within a larger
    machine set folds in larger overheads. *)

open Hs_model
module Q = Hs_numeric.Q

type t = {
  name : string;
  period : int;  (** also the relative deadline *)
  wcet : Ptime.t array;  (** per set of the laminar family, monotone *)
}

let make ?(name = "") ~period ~wcet () =
  if period <= 0 then invalid_arg "Task.make: period must be positive";
  (match
     Array.fold_left
       (fun acc w -> match (acc, Ptime.value w) with
         | Some b, Some v -> Some (Stdlib.max b v)
         | acc, None -> acc
         | None, Some v -> Some v)
       None wcet
   with
  | Some _ -> ()
  | None -> invalid_arg "Task.make: no finite WCET on any mask");
  { name; period; wcet }

(** Utilization of the task on a given mask; [None] when inadmissible. *)
let utilization t ~set =
  match Ptime.value t.wcet.(set) with
  | Some c -> Some (Q.of_ints c t.period)
  | None -> None

(** Best-case (minimum) utilization over all masks. *)
let min_utilization t =
  Array.fold_left
    (fun acc w ->
      match Ptime.value w with
      | Some c -> (
          let u = Q.of_ints c t.period in
          match acc with Some b -> Some (Q.min b u) | None -> Some u)
      | None -> acc)
    None t.wcet
  |> Option.get

(** Convenience constructor mirroring the workload generators: a base
    WCET on each singleton, inflated by [overhead] per level climbed
    (monotone by construction). *)
let of_base ~lam ?name ~period ~base ~overhead () =
  let module L = Hs_laminar.Laminar in
  if base <= 0 then invalid_arg "Task.of_base: base WCET must be positive";
  let wcet = Array.make (L.size lam) Ptime.Inf in
  let ov = Stdlib.max 1 (int_of_float (ceil (overhead *. float_of_int base))) in
  let rec fill set =
    let v =
      match L.children lam set with
      | [] -> base
      | children -> List.fold_left (fun acc c -> Stdlib.max acc (fill c)) 0 children + ov
    in
    wcet.(set) <- Ptime.fin v;
    v
  in
  List.iter (fun r -> ignore (fill r)) (L.roots lam);
  make ?name ~period ~wcet ()

(* ---- task sets ------------------------------------------------------- *)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

(** Greatest common divisor of the periods: the DP-Fair slice length. *)
let slice_length tasks =
  if Array.length tasks = 0 then invalid_arg "Task.slice_length: empty task set";
  Array.fold_left (fun acc t -> gcd acc t.period) tasks.(0).period tasks

(** Least common multiple of the periods (the hyperperiod). *)
let hyperperiod tasks =
  if Array.length tasks = 0 then invalid_arg "Task.hyperperiod: empty task set";
  Array.fold_left (fun acc t -> lcm acc t.period) tasks.(0).period tasks

(** Sum of minimum utilizations — a lower bound on the capacity needed. *)
let total_min_utilization tasks =
  Array.fold_left (fun acc t -> Q.add acc (min_utilization t)) Q.zero tasks
