(** Boundary-aligned (DP-Fair style) scheduling of periodic tasks with
    hierarchical processor affinities.

    With [D] the gcd of the periods, per-slice demands
    [⌈wcet(α)·D / period⌉] form a hierarchical scheduling instance; a
    schedule of makespan ≤ D, repeated every [D] units, supplies every
    task at least its WCET in each period window, meeting all implicit
    deadlines.  The ceiling makes the test conservative (sufficient);
    the exact LP relaxation provides the matching necessary side. *)

open Hs_model

type verdict =
  | Schedulable of {
      slice : int;  (** template length D *)
      instance : Instance.t;  (** the slice instance *)
      assignment : Assignment.t;  (** chosen affinity mask per task *)
      template : Schedule.t;  (** repeat every [slice] units *)
    }
  | Infeasible of string
      (** certified: utilization, the fractional relaxation, or the
          proven integral optimum exceeds the slice *)
  | Unknown of string
      (** the 2-approximation exceeded the slice but the relaxation fits *)

val slice_instance : Hs_laminar.Laminar.t -> Task.t array -> Instance.t * int
(** The per-slice demand instance and the slice length [D]. *)

val analyze : ?node_limit:int -> Hs_laminar.Laminar.t -> Task.t array -> verdict
(** Full analysis: utilization check → exact LP necessary test → branch
    and bound (within [node_limit]) → 2-approximation fallback. *)

val unroll : Schedule.t -> slice:int -> k:int -> Schedule.t
(** Repeat the template over [k] slices. *)

val supply_ok : Task.t array -> verdict -> bool
(** For a [Schedulable] verdict: every task receives at least its WCET in
    every period window of the hyperperiod (test hook). *)
