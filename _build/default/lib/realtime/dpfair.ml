(** Boundary-aligned (DP-Fair style) scheduling of periodic tasks with
    hierarchical processor affinities.

    Reduction: let [D] be the gcd of the periods.  Give every task a
    per-slice demand of [⌈wcet(α)·D / period⌉] on each admissible mask
    [α] and ask for a schedule of makespan at most [D] — exactly the
    paper's hierarchical scheduling problem.  Repeating the resulting
    template every [D] units supplies each task [demand ≥ C·D/T] units
    per slice, hence at least [C] units in every period window (periods
    are multiples of [D] and releases are boundary-aligned), so all
    implicit deadlines are met.  The ceiling makes the test conservative
    (sufficient); the LP relaxation gives the matching necessary side.

    Verdicts:
    - [Schedulable]: an explicit template schedule was constructed
      (certified — the schedule validates against the slice instance);
    - [Infeasible]: even the fractional relaxation of the slice instance
      needs more than [D] time, or the integral optimum provably does;
    - [Unknown]: the 2-approximation exceeded [D] but the relaxation fits
      (the gap zone of the ceiling and the rounding). *)

open Hs_model
module L = Hs_laminar.Laminar
module I = Hs_core.Ilp.Make (Hs_lp.Field.Exact)

type verdict =
  | Schedulable of {
      slice : int;  (** template length D *)
      instance : Instance.t;  (** the slice instance *)
      assignment : Assignment.t;  (** chosen affinity mask per task *)
      template : Schedule.t;  (** repeat every [slice] units *)
    }
  | Infeasible of string
  | Unknown of string

(** The slice instance: one "job" per task with per-mask demand
    [⌈wcet·D/period⌉]. *)
let slice_instance lam tasks =
  let d = Task.slice_length tasks in
  let p =
    Array.map
      (fun (t : Task.t) ->
        Array.map
          (function
            | Ptime.Fin c -> Ptime.fin (((c * d) + t.Task.period - 1) / t.Task.period)
            | Ptime.Inf -> Ptime.Inf)
          t.Task.wcet)
      tasks
  in
  (Instance.make_exn lam p, d)

let analyze ?(node_limit = 2_000_000) lam tasks =
  if Array.length tasks = 0 then
    Schedulable
      {
        slice = 1;
        instance = Instance.make_exn lam [||];
        assignment = [||];
        template = { Schedule.horizon = 1; segments = [] };
      }
  else begin
    let inst, d = slice_instance lam tasks in
    (* Quick necessary check: total minimum utilization vs capacity. *)
    let m = L.m lam in
    if Hs_numeric.Q.gt (Task.total_min_utilization tasks) (Hs_numeric.Q.of_int m) then
      Infeasible "total utilization exceeds the machine count"
    else if I.lp_feasible inst ~tmax:d = None then
      Infeasible "the fractional slice relaxation needs more than one slice"
    else begin
      let finish assignment =
        match Hs_core.Hierarchical.schedule inst assignment ~tmax:d with
        | Ok template -> Schedulable { slice = d; instance = inst; assignment; template }
        | Error e -> Unknown ("scheduler failed: " ^ e)
      in
      (* Exact decision when the search closes within the budget. *)
      match Hs_core.Exact.optimal ~node_limit inst with
      | Some (a, span, stats) when stats.proven ->
          if span <= d then finish a
          else Infeasible "the integral slice optimum exceeds the slice"
      | Some (a, span, _) when span <= d -> finish a
      | _ -> (
          (* Fall back to the 2-approximation as a sufficient test. *)
          match Hs_core.Approx.Exact.solve inst with
          | Ok o when o.makespan <= d ->
              (* The approximation works on the singleton-closed instance;
                 translate the assignment back through minimal supersets. *)
              let lam_c = Instance.laminar o.instance in
              let a =
                Array.map
                  (fun s ->
                    match o.translate s with
                    | Some orig -> orig
                    | None ->
                        let machine = (L.members lam_c s).(0) in
                        Option.get (L.minimal_containing lam machine))
                  o.assignment
              in
              if Assignment.feasible inst a ~tmax:d then finish a
              else Unknown "translated assignment exceeds the slice"
          | Ok _ -> Unknown "2-approximation exceeds the slice"
          | Error e -> Unknown ("pipeline failed: " ^ e))
    end
  end

(** Unroll the template over [k] slices (e.g. a hyperperiod for
    inspection or simulation). *)
let unroll template ~slice ~k =
  let segments =
    List.concat
      (List.init k (fun r ->
           List.map
             (fun (s : Schedule.segment) ->
               { s with start = s.start + (r * slice); stop = s.stop + (r * slice) })
             (Schedule.segments template)))
  in
  { Schedule.horizon = slice * k; segments }

(** Per-period supply check used by the tests: in the unrolled schedule,
    every task receives at least its WCET (on its assigned mask) in every
    one of its period windows within the hyperperiod. *)
let supply_ok tasks (verdict : verdict) =
  match verdict with
  | Schedulable { slice; template; assignment; instance } ->
      let hp = Task.hyperperiod tasks in
      let k = hp / slice in
      let sched = unroll template ~slice ~k in
      let ok = ref true in
      Array.iteri
        (fun j (t : Task.t) ->
          ignore instance;
          let windows = hp / t.Task.period in
          for w = 0 to windows - 1 do
            let lo = w * t.Task.period and hi = (w + 1) * t.Task.period in
            let got =
              List.fold_left
                (fun acc (s : Schedule.segment) ->
                  if s.job = j then acc + Stdlib.max 0 (Stdlib.min hi s.stop - Stdlib.max lo s.start)
                  else acc)
                0 (Schedule.segments sched)
            in
            let wcet =
              match Ptime.value t.Task.wcet.(assignment.(j)) with
              | Some c -> c
              | None -> Stdlib.max_int
            in
            if got < wcet then ok := false
          done)
        tasks;
      !ok
  | Infeasible _ | Unknown _ -> false
