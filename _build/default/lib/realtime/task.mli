(** Implicit-deadline periodic tasks with affinity-mask-dependent WCETs —
    the workload class of the semi-partitioned real-time literature the
    paper builds on; consumed by {!Dpfair}. *)

open Hs_model
module Q = Hs_numeric.Q

type t = {
  name : string;
  period : int;  (** also the relative deadline *)
  wcet : Ptime.t array;  (** per set of the laminar family, monotone *)
}

val make : ?name:string -> period:int -> wcet:Ptime.t array -> unit -> t
(** Validates a positive period and at least one finite WCET. *)

val utilization : t -> set:int -> Q.t option
(** [wcet(set)/period]; [None] on an inadmissible mask. *)

val min_utilization : t -> Q.t

val of_base :
  lam:Hs_laminar.Laminar.t ->
  ?name:string ->
  period:int ->
  base:int ->
  overhead:float ->
  unit ->
  t
(** Base WCET on singletons, inflated by [⌈overhead·base⌉] per level —
    monotone by construction. *)

val slice_length : t array -> int
(** Gcd of the periods — the DP-Fair slice. *)

val hyperperiod : t array -> int
(** Lcm of the periods. *)

val total_min_utilization : t array -> Q.t
