lib/realtime/task.ml: Array Hs_laminar Hs_model Hs_numeric List Option Ptime Stdlib
