lib/realtime/dpfair.ml: Array Assignment Hs_core Hs_laminar Hs_lp Hs_model Hs_numeric Instance List Option Ptime Schedule Stdlib Task
