lib/realtime/dpfair.mli: Assignment Hs_laminar Hs_model Instance Schedule Task
