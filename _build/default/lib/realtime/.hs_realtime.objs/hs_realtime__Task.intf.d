lib/realtime/task.mli: Hs_laminar Hs_model Hs_numeric Ptime
