lib/experiments/table.ml: Hs_numeric List Printf Stdlib String
