(** Deterministic builders for the machine-set families used throughout
    the paper: the four special cases of Section II plus the multi-level
    SMP-CMP shape from the introduction.  Random families live in
    [Hs_workloads.Generators]. *)

let range lo hi = List.init (hi - lo) (fun k -> lo + k)

(** Unrelated machines: the m singletons. *)
let singletons m = Laminar.of_sets_exn ~m (List.map (fun i -> [ i ]) (range 0 m))

(** Identical machines with free migration: the single set [M]. *)
let global m = Laminar.of_sets_exn ~m [ range 0 m ]

(* All builders deduplicate: for degenerate parameters (m = 1, q = 1, a
   single cluster) the special sets coincide with [M] or the singletons,
   and the paper assumes the family members are distinct. *)
let dedup sets = List.sort_uniq compare (List.map (List.sort compare) sets)

(** Semi-partitioned (§III): [M] plus all singletons. *)
let semi_partitioned m =
  Laminar.of_sets_exn ~m
    (dedup (range 0 m :: List.map (fun i -> [ i ]) (range 0 m)))

(** Clustered (§II): [M], the k clusters of q consecutive machines, and all
    singletons. Requires [m = clusters * q] with [q = m / clusters]. *)
let clustered ~m ~clusters =
  if clusters <= 0 || m mod clusters <> 0 then
    invalid_arg "Topology.clustered: clusters must divide m";
  let q = m / clusters in
  let cluster c = range (c * q) ((c + 1) * q) in
  Laminar.of_sets_exn ~m
    (dedup
       ((range 0 m :: List.map cluster (range 0 clusters))
       @ List.map (fun i -> [ i ]) (range 0 m)))

(** Balanced multi-level tree described by per-level fanouts, e.g.
    [balanced [2; 2; 2]] is an 8-machine SMP-CMP cluster: 2 nodes ×
    2 chips × 2 cores.  The family contains the root [M], every internal
    group and every singleton. *)
let balanced fanouts =
  if fanouts = [] || List.exists (fun f -> f <= 0) fanouts then
    invalid_arg "Topology.balanced: fanouts must be positive";
  let m = List.fold_left ( * ) 1 fanouts in
  let rec groups lo width = function
    | [] -> []
    | f :: rest ->
        let child_width = width / f in
        let here =
          List.map (fun c -> range (lo + (c * child_width)) (lo + ((c + 1) * child_width)))
            (range 0 f)
        in
        here
        @ List.concat_map
            (fun c -> groups (lo + (c * child_width)) child_width rest)
            (range 0 f)
  in
  let all = range 0 m :: groups 0 m fanouts in
  (* The innermost fanout layer produces the singletons when the last
     fanout granularity is 1 machine; otherwise add singletons. *)
  let with_singletons =
    let have_singletons = List.exists (fun s -> List.length s = 1) all in
    if have_singletons then all else all @ List.map (fun i -> [ i ]) (range 0 m)
  in
  Laminar.of_sets_exn ~m (dedup with_singletons)

(** The paper's motivating 3-communication-level architecture:
    inter-node / inter-CMP / intra-CMP. *)
let smp_cmp ~nodes ~chips_per_node ~cores_per_chip =
  balanced [ nodes; chips_per_node; cores_per_chip ]
