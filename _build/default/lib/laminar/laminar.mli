(** Laminar (hierarchical) families of machine sets.

    A family [A ⊆ 2^M] is laminar when any two members are nested or
    disjoint.  The containment order then forms a forest, which this
    module materialises: each set knows its parent (minimal proper
    superset), children, {e level} (the number of family members
    containing it, itself included — the paper's definition, so roots
    have level 1) and {e height} (distance to the deepest descendant,
    leaves have height 0).

    Machine indices range over [0 .. m-1]; set identifiers are dense
    [0 .. size-1] handles into the family. *)

type t

(** {1 Construction} *)

(** [of_sets ~m sets] validates and indexes a family over machines
    [0..m-1].  Fails (with a message) when a set is empty, out of range,
    duplicated, or when two sets properly overlap. *)
val of_sets : m:int -> int list list -> (t, string) result

(** Like {!of_sets} but raises [Invalid_argument]. *)
val of_sets_exn : m:int -> int list list -> t

(** [add_singletons t] returns the family extended with every missing
    singleton [{i}], together with a function mapping new set ids to the
    id of the {e minimal original superset} ([None] for singletons whose
    machine appeared in no original set). Existing sets keep no relation
    to their old ids; use {!find} to translate. *)
val add_singletons : t -> t * (int -> int option)

(** {1 Basic accessors} *)

val m : t -> int
(** Number of machines. *)

val size : t -> int
(** Number of sets in the family. *)

val members : t -> int -> int array
(** Sorted machine indices of a set. *)

val card : t -> int -> int
(** Cardinality of a set. *)

val mem : t -> int -> int -> bool
(** [mem t set machine]. *)

val parent : t -> int -> int option
val children : t -> int -> int list
val roots : t -> int list

val level : t -> int -> int
(** Paper level: number of family members containing the set, inclusive. *)

val height : t -> int -> int

val nlevels : t -> int
(** Level of the instance = maximum level over the family. *)

val is_singleton : t -> int -> bool

val singleton : t -> int -> int option
(** [singleton t i] is the id of [{i}] if present. *)

val sets : t -> int list list
(** The family as machine lists (sorted), in id order. *)

val find : t -> int list -> int option
(** Exact-membership lookup of a set by its machine list. *)

(** {1 Order and containment} *)

val subset : t -> int -> int -> bool
(** [subset t a b] iff set [a] ⊆ set [b] (forest reachability). *)

val descendants : t -> int -> int list
(** All sets β ⊆ α (including α itself); by laminarity these are exactly
    the forest descendants. *)

val ancestors : t -> int -> int list
(** All sets β ⊇ α (including α itself), innermost first. *)

val bottom_up : t -> int list
(** Every set after all its subsets — the order of Algorithm 2. *)

val top_down : t -> int list
(** Every set before all its subsets — the order of Algorithm 3. *)

val minimal_superset : t -> int list -> int option
(** Minimal family member containing all the given machines. *)

val minimal_containing : t -> int -> int option
(** Minimal family member containing a given machine. *)

val lca_level : t -> int -> int -> int option
(** [lca_level t i i'] is the height of the minimal set containing both
    machines, used by the migration-latency simulator; [None] when no set
    contains both. For [i = i'] this is the height of the minimal set
    containing [i]. *)

(** {1 Shape predicates} *)

val is_singletons_only : t -> bool
(** Unrelated-machines shape: exactly the m singletons. *)

val has_full_set : t -> bool

val full_set : t -> int option
(** Id of the set [M] if present. *)

val is_semi_partitioned : t -> bool
(** [{M}] plus all singletons and nothing else (the §III shape). *)

val is_tree : t -> bool
(** Single root. *)

val uniform_leaf_level : t -> bool
(** Every leaf of the forest has the same level (Model 2 assumption). *)

val pp : Format.formatter -> t -> unit

val to_dot : t -> string
(** GraphViz rendering of the containment forest (one node per set,
    labelled with its machine list, level and height). *)
