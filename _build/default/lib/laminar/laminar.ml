(* Containment forest of a laminar family.

   Construction sorts the sets by decreasing cardinality and attaches each
   set to the smallest already-placed superset; laminarity makes that
   parent unique.  All queries are then forest walks. *)

type node = {
  members : int array; (* sorted *)
  mutable parent : int option;
  mutable children : int list; (* in id order after construction *)
  mutable level : int;
  mutable height : int;
}

type t = {
  m : int;
  nodes : node array;
  roots : int list;
  singleton_of : int option array; (* machine -> id of {machine} *)
  by_members : (int list, int) Hashtbl.t;
  bottom_up_order : int list;
}

let m t = t.m
let size t = Array.length t.nodes
let members t id = t.nodes.(id).members
let card t id = Array.length t.nodes.(id).members

let mem t id machine =
  let a = t.nodes.(id).members in
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = machine then true
      else if a.(mid) < machine then go (mid + 1) hi
      else go lo mid
  in
  go 0 (Array.length a)

let parent t id = t.nodes.(id).parent
let children t id = t.nodes.(id).children
let roots t = t.roots
let level t id = t.nodes.(id).level
let height t id = t.nodes.(id).height
let is_singleton t id = Array.length t.nodes.(id).members = 1
let singleton t machine = t.singleton_of.(machine)
let find t machines = Hashtbl.find_opt t.by_members (List.sort_uniq compare machines)
let sets t = Array.to_list (Array.map (fun n -> Array.to_list n.members) t.nodes)

let nlevels t =
  Array.fold_left (fun acc n -> Stdlib.max acc n.level) 0 t.nodes

(* Sorted-array subset and disjointness tests. *)
let subset_arr a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i j =
    if i >= la then true
    else if j >= lb then false
    else if a.(i) = b.(j) then go (i + 1) (j + 1)
    else if a.(i) > b.(j) then go i (j + 1)
    else false
  in
  go 0 0

let disjoint_arr a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i j =
    if i >= la || j >= lb then true
    else if a.(i) = b.(j) then false
    else if a.(i) < b.(j) then go (i + 1) j
    else go i (j + 1)
  in
  go 0 0

let subset t a b =
  let rec climb id = id = b || match t.nodes.(id).parent with None -> false | Some p -> climb p in
  climb a

let descendants t id =
  let rec go acc id = List.fold_left go (id :: acc) t.nodes.(id).children in
  List.rev (go [] id)

let ancestors t id =
  let rec go acc id =
    match t.nodes.(id).parent with None -> List.rev (id :: acc) | Some p -> go (id :: acc) p
  in
  go [] id

let bottom_up t = t.bottom_up_order
let top_down t = List.rev t.bottom_up_order

let minimal_containing t machine = t.singleton_of.(machine) |> function
  | Some id -> Some id
  | None ->
      (* Smallest set whose members include the machine. *)
      let best = ref None in
      Array.iteri
        (fun id n ->
          if mem t id machine then
            match !best with
            | None -> best := Some id
            | Some b -> if Array.length n.members < Array.length t.nodes.(b).members then best := Some id)
        t.nodes;
      !best

let minimal_superset t machines =
  match machines with
  | [] -> None
  | first :: rest -> (
      match minimal_containing t first with
      | None -> None
      | Some id ->
          let rec climb id =
            if List.for_all (fun mch -> mem t id mch) rest then Some id
            else match t.nodes.(id).parent with None -> None | Some p -> climb p
          in
          climb id)

let lca_level t i i' =
  Option.map (fun id -> t.nodes.(id).height) (minimal_superset t [ i; i' ])

let is_singletons_only t =
  size t = t.m && Array.for_all (fun n -> Array.length n.members = 1) t.nodes

let full_set t =
  let rec go id = if id >= size t then None else if card t id = t.m then Some id else go (id + 1) in
  go 0

let has_full_set t = full_set t <> None

let is_semi_partitioned t =
  (* For m = 1 the full set IS the singleton, so the family has one set. *)
  size t = (if t.m = 1 then 1 else t.m + 1)
  && has_full_set t
  && Array.for_all (fun s -> s <> None) t.singleton_of

let is_tree t = match t.roots with [ _ ] -> true | _ -> false

let uniform_leaf_level t =
  let leaf_levels =
    Array.to_list t.nodes
    |> List.mapi (fun id n -> (id, n))
    |> List.filter (fun (_, n) -> n.children = [])
    |> List.map (fun (_, n) -> n.level)
  in
  match leaf_levels with [] -> true | l :: rest -> List.for_all (( = ) l) rest

let pp fmt t =
  Format.fprintf fmt "@[<v>laminar family over %d machines:" t.m;
  Array.iteri
    (fun id n ->
      Format.fprintf fmt "@,  #%d {%s} level=%d height=%d%s" id
        (String.concat "," (List.map string_of_int (Array.to_list n.members)))
        n.level n.height
        (match n.parent with None -> " (root)" | Some p -> Printf.sprintf " parent=#%d" p))
    t.nodes;
  Format.fprintf fmt "@]"

let of_sets ~m sets =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if m <= 0 then err "laminar: need at least one machine"
  else begin
    let canon = List.map (fun s -> List.sort_uniq compare s) sets in
    let arrays = List.map Array.of_list canon in
    let exception Bad of string in
    try
      List.iteri
        (fun i s ->
          match s with
          | [] -> raise (Bad (Printf.sprintf "laminar: set %d is empty" i))
          | _ ->
              List.iter
                (fun x ->
                  if x < 0 || x >= m then
                    raise (Bad (Printf.sprintf "laminar: machine %d out of range in set %d" x i)))
                s)
        canon;
      let tbl = Hashtbl.create 16 in
      List.iteri
        (fun i s ->
          if Hashtbl.mem tbl s then raise (Bad (Printf.sprintf "laminar: duplicate set %d" i));
          Hashtbl.add tbl s i)
        canon;
      (* Pairwise laminarity. *)
      let arr = Array.of_list arrays in
      let k = Array.length arr in
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          let a = arr.(i) and b = arr.(j) in
          if not (subset_arr a b || subset_arr b a || disjoint_arr a b) then
            raise
              (Bad (Printf.sprintf "laminar: sets %d and %d properly overlap" i j))
        done
      done;
      (* Attach each set (in decreasing size) to its minimal placed superset. *)
      let order = List.init k (fun i -> i) in
      let order =
        List.sort (fun a b -> compare (Array.length arr.(b)) (Array.length arr.(a))) order
      in
      let nodes =
        Array.map (fun mbrs -> { members = mbrs; parent = None; children = []; level = 0; height = 0 }) arr
      in
      let placed = ref [] in
      List.iter
        (fun id ->
          let best = ref None in
          List.iter
            (fun pid ->
              if subset_arr arr.(id) arr.(pid) then
                match !best with
                | None -> best := Some pid
                | Some b ->
                    if Array.length arr.(pid) < Array.length arr.(b) then best := Some pid)
            !placed;
          (match !best with
          | Some p ->
              nodes.(id).parent <- Some p;
              nodes.(p).children <- id :: nodes.(p).children
          | None -> ());
          placed := id :: !placed)
        order;
      Array.iter (fun n -> n.children <- List.sort compare n.children) nodes;
      let roots =
        List.filter (fun id -> nodes.(id).parent = None) (List.init k (fun i -> i))
      in
      (* Levels top-down, heights bottom-up. *)
      let rec set_levels lvl id =
        nodes.(id).level <- lvl;
        List.iter (set_levels (lvl + 1)) nodes.(id).children
      in
      List.iter (set_levels 1) roots;
      let rec set_heights id =
        let h =
          List.fold_left (fun acc c -> Stdlib.max acc (set_heights c + 1)) 0 nodes.(id).children
        in
        nodes.(id).height <- h;
        h
      in
      List.iter (fun r -> ignore (set_heights r)) roots;
      let singleton_of = Array.make m None in
      Array.iteri
        (fun id n -> if Array.length n.members = 1 then singleton_of.(n.members.(0)) <- Some id)
        nodes;
      (* Bottom-up traversal order: post-order over the forest. *)
      let bottom_up_order =
        let acc = ref [] in
        let rec post id =
          List.iter post nodes.(id).children;
          acc := id :: !acc
        in
        List.iter post roots;
        List.rev !acc
      in
      Ok { m; nodes; roots; singleton_of; by_members = tbl; bottom_up_order }
    with Bad msg -> Error msg
  end

let of_sets_exn ~m sets =
  match of_sets ~m sets with Ok t -> t | Error e -> invalid_arg e

let add_singletons t =
  let existing = sets t in
  let missing =
    List.init t.m (fun i -> i)
    |> List.filter (fun i -> t.singleton_of.(i) = None)
    |> List.map (fun i -> [ i ])
  in
  let t' = of_sets_exn ~m:t.m (existing @ missing) in
  let origin id' =
    let mbrs = Array.to_list (members t' id') in
    match find t mbrs with
    | Some id -> Some id
    | None -> (
        (* A freshly added singleton: minimal original superset. *)
        match mbrs with [ i ] -> minimal_containing t i | _ -> None)
  in
  (t', origin)

let to_dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph laminar {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n";
  Array.iteri
    (fun id n ->
      Buffer.add_string buf
        (Printf.sprintf "  s%d [label=\"{%s}\\nlevel %d, height %d\"];\n" id
           (String.concat "," (List.map string_of_int (Array.to_list n.members)))
           n.level n.height))
    t.nodes;
  Array.iteri
    (fun id n ->
      match n.parent with
      | Some p -> Buffer.add_string buf (Printf.sprintf "  s%d -> s%d;\n" p id)
      | None -> ())
    t.nodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
