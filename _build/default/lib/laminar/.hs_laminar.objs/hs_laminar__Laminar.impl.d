lib/laminar/laminar.ml: Array Buffer Format Hashtbl List Option Printf Stdlib String
