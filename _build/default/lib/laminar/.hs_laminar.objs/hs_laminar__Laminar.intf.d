lib/laminar/laminar.mli: Format
