lib/laminar/topology.ml: Laminar List
