(** Synthetic workload generators for the experiment suite.

    The paper has no empirical section, so these generators define the
    evaluation workloads (DESIGN.md §4): random unrelated matrices,
    hierarchical instances whose processing-time functions are built
    bottom-up from per-machine speeds plus per-level migration overheads
    (monotone by construction), random laminar topologies, and the
    memory payloads of Section VI. *)

open Hs_model
open Hs_laminar
module Q = Hs_numeric.Q

(** Random unrelated-machines instance. [correlation] interpolates
    between machine-independent uniform times (0.0) and strongly
    machine-correlated times (1.0), the two standard regimes of the
    R||Cmax literature. *)
let unrelated rng ~n ~m ~pmin ~pmax ?(correlation = 0.0) () =
  if n <= 0 || m <= 0 || pmin < 0 || pmax < pmin then invalid_arg "Generators.unrelated";
  let speed = Array.init m (fun _ -> 0.5 +. Rng.float rng) in
  let times =
    Array.init n (fun _ ->
        let base = Rng.int_range rng pmin pmax in
        Array.init m (fun i ->
            let uncorrelated = Rng.int_range rng pmin pmax in
            let correlated =
              Stdlib.max pmin
                (Stdlib.min pmax (int_of_float (float_of_int base *. speed.(i))))
            in
            let v =
              int_of_float
                ((correlation *. float_of_int correlated)
                +. ((1. -. correlation) *. float_of_int uncorrelated))
            in
            Ptime.fin (Stdlib.max 1 v)))
  in
  Instance.unrelated times

(** Hierarchical instance over an arbitrary singleton-complete laminar
    topology.  Per job: a base length in [base]; per machine a speed in
    [[1, heterogeneity]]; singleton times are [⌈base·speed⌉]; a set's
    time is the max over its children plus a migration overhead of
    [⌈overhead·base⌉] per level climbed.  Monotone by construction. *)
let hierarchical rng ~lam ~n ~base:(blo, bhi) ?(heterogeneity = 1.0) ?(overhead = 0.1) () =
  if n <= 0 || blo <= 0 || bhi < blo then invalid_arg "Generators.hierarchical";
  if heterogeneity < 1.0 || overhead < 0.0 then invalid_arg "Generators.hierarchical";
  let m = Laminar.m lam in
  let speed =
    Array.init m (fun _ -> 1.0 +. (Rng.float rng *. (heterogeneity -. 1.0)))
  in
  let nsets = Laminar.size lam in
  let p =
    Array.init n (fun _ ->
        let b = Rng.int_range rng blo bhi in
        let row = Array.make nsets Ptime.Inf in
        let ov = Stdlib.max 1 (int_of_float (ceil (overhead *. float_of_int b))) in
        let rec fill set =
          let v =
            match Laminar.children lam set with
            | [] ->
                (* leaf: must be a singleton in a closed family *)
                let i = (Laminar.members lam set).(0) in
                int_of_float (ceil (float_of_int b *. speed.(i)))
            | children -> List.fold_left (fun acc c -> Stdlib.max acc (fill c)) 0 children + ov
          in
          row.(set) <- Ptime.fin v;
          v
        in
        List.iter (fun r -> ignore (fill r)) (Laminar.roots lam);
        row)
  in
  Instance.make_exn lam p

(** Random laminar topology: recursively partition [0..m) into 2..arity
    contiguous groups until singletons; includes the root and all
    intermediate groups. *)
let random_laminar rng ~m ?(arity = 3) () =
  if m <= 0 || arity < 2 then invalid_arg "Generators.random_laminar";
  let sets = ref [] in
  let rec go lo hi =
    (* [lo, hi) *)
    let width = hi - lo in
    sets := List.init width (fun k -> lo + k) :: !sets;
    if width > 1 then begin
      let parts = Stdlib.min width (2 + Rng.int rng (arity - 1)) in
      (* choose parts-1 distinct cut points *)
      let cuts = Array.init (width - 1) (fun k -> lo + 1 + k) in
      Rng.shuffle rng cuts;
      let chosen = Array.sub cuts 0 (parts - 1) in
      Array.sort compare chosen;
      let bounds = Array.concat [ [| lo |]; chosen; [| hi |] ] in
      for k = 0 to Array.length bounds - 2 do
        go bounds.(k) bounds.(k + 1)
      done
    end
  in
  go 0 m;
  Laminar.of_sets_exn ~m (List.sort_uniq compare !sets)

(** Semi-partitioned instance controlled by a target load factor
    [load = (Σ_j mean local time) / (m · pmax)]: local times are uniform
    in [[pmin, pmax]], global times add a migration premium of
    [premium] (≥ 0) percent.  Used by experiment F2. *)
let semi_partitioned_load rng ~m ~load ~pmin ~pmax ?(premium = 0.2) () =
  if m <= 0 || load <= 0.0 || pmin <= 0 || pmax < pmin then
    invalid_arg "Generators.semi_partitioned_load";
  let mean = float_of_int (pmin + pmax) /. 2.0 in
  let n = Stdlib.max 1 (int_of_float (load *. float_of_int m *. float_of_int pmax /. mean)) in
  let local =
    Array.init n (fun _ ->
        Array.init m (fun _ -> Ptime.fin (Rng.int_range rng pmin pmax)))
  in
  let global =
    Array.init n (fun j ->
        let worst =
          Array.fold_left
            (fun acc pt -> Stdlib.max acc (Option.get (Ptime.value pt)))
            0 local.(j)
        in
        Ptime.fin (int_of_float (ceil (float_of_int worst *. (1.0 +. premium)))))
  in
  Instance.semi_partitioned ~global ~local

(** Memory payload for Model 1: per-machine budgets and per-(job,machine)
    space requirements with a feasibility [slack] factor (> 1 loosens the
    budgets). *)
let model1_payload rng inst ~smax ~slack =
  if smax <= 0 || slack <= 0.0 then invalid_arg "Generators.model1_payload";
  let n = Instance.njobs inst in
  let m = Instance.nmachines inst in
  let space = Array.init n (fun _ -> Array.init m (fun _ -> Rng.int_range rng 1 smax)) in
  let total = Array.fold_left (fun acc row -> acc + Array.fold_left Stdlib.max 0 row) 0 space in
  let budget =
    Stdlib.max smax (int_of_float (ceil (slack *. float_of_int total /. float_of_int m)))
  in
  { Hs_core.Memory.budgets = Array.make m budget; space }

(** Memory payload for Model 2: job sizes are rationals in (0, 1]. *)
let model2_payload rng inst ~mu =
  let n = Instance.njobs inst in
  let sizes = Array.init n (fun _ -> Q.of_ints (1 + Rng.int rng 16) 16) in
  { Hs_core.Memory.mu; sizes }
