(** Deterministic pseudo-random numbers (SplitMix64).

    Implemented from scratch so that every experiment in the benchmark
    harness is exactly reproducible from its printed seed, independent of
    the OCaml runtime's [Random] implementation. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

(* Steele, Lea & Flood 2014. *)
let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform integer in [[0, bound)]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

(** Uniform integer in [[lo, hi]] inclusive. *)
let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range: empty range";
  lo + int t (hi - lo + 1)

(** Uniform float in [[0, 1)]. *)
let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  v /. 9007199254740992. (* 2^53 *)

let bool t p = float t < p

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

(** In-place Fisher–Yates shuffle. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** Independent stream derived from this one (for parallel workloads). *)
let split t = { state = next_int64 t }
