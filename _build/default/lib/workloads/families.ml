(** The paper's worked examples, as constructable instance families.

    These pin the implementation to the text: Example II.1/III.1 (the
    3-job, 2-machine instance separating semi-partitioned from unrelated
    scheduling) and Example V.1 (the family whose integral gap between
    the reduced unrelated instance and the hierarchical instance tends
    to 2). *)

open Hs_model

(** Example II.1 / III.1: two machines, three jobs;
    job 0 only fits machine 0 (p=1), job 1 only machine 1 (p=1), job 2
    costs 2 anywhere.  Semi-partitioned optimum 2, unrelated optimum 3. *)
let example_ii1 () =
  Instance.semi_partitioned
    ~global:[| Ptime.Inf; Ptime.Inf; Ptime.fin 2 |]
    ~local:
      [|
        [| Ptime.fin 1; Ptime.Inf |];
        [| Ptime.Inf; Ptime.fin 1 |];
        [| Ptime.fin 2; Ptime.fin 2 |];
      |]

let example_ii1_semi_partitioned_opt = 2
let example_ii1_unrelated_opt = 3

(** Example V.1 with parameter [n ≥ 3]: [m = n-1] machines; job [j]
    ([j < n-1]) runs only on machine [j] with time [n-2]; job [n-1] runs
    anywhere (globally or locally) with time [n-1].  Hierarchical optimum
    [n-1]; unrelated (no-migration) optimum [2n-3]. *)
let example_v1 n =
  if n < 3 then invalid_arg "Families.example_v1: need n >= 3";
  let m = n - 1 in
  let global =
    Array.init n (fun j -> if j = n - 1 then Ptime.fin (n - 1) else Ptime.Inf)
  in
  let local =
    Array.init n (fun j ->
        Array.init m (fun i ->
            if j = n - 1 then Ptime.fin (n - 1)
            else if i = j then Ptime.fin (n - 2)
            else Ptime.Inf))
  in
  Instance.semi_partitioned ~global ~local

let example_v1_hierarchical_opt n = n - 1
let example_v1_unrelated_opt n = (2 * n) - 3
