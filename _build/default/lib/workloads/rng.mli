(** Deterministic pseudo-random numbers (SplitMix64, Steele–Lea–Flood
    2014), implemented from scratch so every experiment is exactly
    reproducible from its printed seed, independent of the OCaml
    runtime's [Random]. *)

type t

val create : int -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** Uniform in [[0, bound)].  Raises [Invalid_argument] for
    [bound ≤ 0]. *)

val int_range : t -> int -> int -> int
(** Uniform in [[lo, hi]] inclusive. *)

val float : t -> float
(** Uniform in [[0, 1)]. *)

val bool : t -> float -> bool
(** True with the given probability. *)

val choose : t -> 'a array -> 'a
val shuffle : t -> 'a array -> unit

val split : t -> t
(** An independent derived stream. *)
