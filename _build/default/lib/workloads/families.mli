(** The paper's worked examples as constructable instance families. *)

open Hs_model

val example_ii1 : unit -> Instance.t
(** Example II.1 / III.1: two machines, three jobs; job 0 only fits
    machine 0 (p=1), job 1 only machine 1 (p=1), job 2 costs 2 anywhere.
    Semi-partitioned optimum 2, unrelated optimum 3. *)

val example_ii1_semi_partitioned_opt : int
val example_ii1_unrelated_opt : int

val example_v1 : int -> Instance.t
(** Example V.1 with parameter [n ≥ 3]: [m = n-1] machines; job [j < n-1]
    runs only on machine [j] (time n-2), job [n-1] runs anywhere (time
    n-1).  The unrelated/hierarchical gap [(2n-3)/(n-1)] approaches 2. *)

val example_v1_hierarchical_opt : int -> int
val example_v1_unrelated_opt : int -> int
