lib/workloads/families.ml: Array Hs_model Instance Ptime
