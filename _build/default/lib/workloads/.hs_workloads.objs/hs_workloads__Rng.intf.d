lib/workloads/rng.mli:
