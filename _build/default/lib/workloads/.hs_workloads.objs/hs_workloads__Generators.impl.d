lib/workloads/generators.ml: Array Hs_core Hs_laminar Hs_model Hs_numeric Instance Laminar List Option Ptime Rng Stdlib
