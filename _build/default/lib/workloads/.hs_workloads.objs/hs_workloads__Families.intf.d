lib/workloads/families.mli: Hs_model Instance
