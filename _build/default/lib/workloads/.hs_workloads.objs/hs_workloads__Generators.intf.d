lib/workloads/generators.mli: Hs_core Hs_laminar Hs_model Hs_numeric Instance Laminar Rng
