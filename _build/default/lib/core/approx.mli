(** Theorem V.2: the polynomial-time 2-approximation for hierarchical
    scheduling, plus the Section II 8-approximation for general
    (non-laminar) families.

    Pipeline: singleton closure → binary search of the minimal
    LP-feasible horizon [T*] (a certified lower bound on OPT) → re-solve
    the unrelated-machines restriction at [T*] to a basic solution
    (feasible by Lemma V.1) → Lenstra–Shmoys–Tardos rounding →
    Algorithms 2–3.  The achieved makespan is at most [2·T* ≤ 2·OPT]. *)

open Hs_model

module Make (F : Hs_lp.Field.S) : sig
  module I : sig
    type frac = F.t array array

    val lp_feasible : Instance.t -> tmax:int -> frac option
    val t_bounds : Instance.t -> (int * int) option
    val min_feasible_t : Instance.t -> (int * frac) option
  end

  module R : sig
    type stats = { fractional_jobs : int; matched : int }
  end

  val unrelated_restriction : Instance.t -> Instance.t
  (** The instance [I_u] of Section V: only the singleton masks of a
      singleton-closed instance. *)

  type outcome = {
    instance : Instance.t;  (** the singleton-closed instance solved *)
    translate : int -> int option;
        (** closed set id → original set id ([None] for added singletons) *)
    assignment : Assignment.t;  (** over the closed instance *)
    t_lp : int;  (** minimal LP-feasible horizon — lower bound on OPT *)
    makespan : int;  (** achieved integral makespan, ≤ 2·t_lp *)
    schedule : Schedule.t;
    rounding : R.stats;
  }

  val solve : Instance.t -> (outcome, string) result
end

module Exact : module type of Make (Hs_lp.Field.Exact)
(** Certified pipeline: every bound is exact. *)

module Fast : module type of Make (Hs_lp.Field.Float)
(** Floating-point LP path — faster, used only for benchmarks. *)

(** {1 General (non-laminar) masks — §II} *)

type general_outcome = {
  machine_assignment : int array;  (** job → machine *)
  set_assignment : int array;  (** job → family index, via witness sets *)
  makespan : int;  (** of the lifted partitioned schedule *)
  lower_bound : int;  (** LP preemptive lower bound of the reduced instance *)
}

val solve_general : General_instance.t -> (general_outcome, string) result
(** The reduction-based algorithm whose makespan is within a factor 8 of
    the optimum (via the preemptive/non-preemptive chain of §II). *)
