(** Section VI: makespan minimisation under memory capacities.

    {b Model 1} — each machine [i] has budget [B_i]; a job assigned to
    mask [α] charges [s_ij] against every machine [i ∈ α].  Iterative
    rounding with the support-size rule gives a bicriteria guarantee of
    (3T, 3·B_i) (Theorem VI.1).

    {b Model 2} — the family is a tree whose leaves share a level; a
    node at height [h ≠ root] has capacity [µ^h] and job [j] has a
    machine-independent size [s_j ≤ 1].  The modified iterative rounding
    of Lemma VI.2 with [ρ = 1 + H_k] yields σ = 2 + H_k
    (σ = 3 + 1/m when k = 2) for both the makespan and every capacity
    (Theorem VI.3). *)

open Hs_model
open Hs_laminar
module Q = Hs_numeric.Q
module LPQ = Hs_lp.Lp_problem
module Solver = Hs_lp.Simplex.Make (Hs_lp.Field.Exact)

type report = {
  assignment : Assignment.t;
  t_reference : int;  (** minimal LP-feasible horizon of the revised ILP *)
  makespan : int;  (** achieved makespan of the rounded assignment *)
  makespan_factor : Q.t;  (** makespan / t_reference *)
  capacity_factors : (string * Q.t) list;  (** usage / bound per capacity row *)
  max_capacity_factor : Q.t;
  schedule : Schedule.t;
  rounds : int;
  fallback_drops : int;
}

(* Shared driver: binary-search the minimal horizon at which the revised
   LP is feasible, then round and schedule. *)
let run inst ~capacity_rows ~policy ~lo ~hi =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let lam = Instance.laminar inst in
  let n = Instance.njobs inst in
  let nsets = Laminar.size lam in
  (* Build the iterative-rounding problem at horizon [t]:
     variables (job, set) with p ≤ t; packing rows = the (3a) capacity
     rows of every set plus the caller's memory rows. *)
  let build t =
    let makespan_rows =
      List.init nsets (fun s -> s)
      |> List.map (fun s ->
             ( Printf.sprintf "cap(a=%d)" s,
               Q.of_int (Laminar.card lam s * t),
               `Makespan s ))
    in
    let memory_rows =
      List.map (fun (name, bound, chk) -> (name, bound, `Memory chk)) capacity_rows
    in
    let rows = Array.of_list (makespan_rows @ memory_rows) in
    let names = Array.map (fun (nm, _, _) -> nm) rows in
    let bounds = Array.map (fun (_, b, _) -> b) rows in
    let coeff l ~job ~set =
      match rows.(l) with
      | _, _, `Makespan alpha ->
          if Laminar.subset lam set alpha then
            Q.of_int (Ptime.value_exn (Instance.ptime inst ~job ~set))
          else Q.zero
      | _, _, `Memory chk -> chk ~job ~set
    in
    let vars =
      List.concat_map
        (fun j ->
          List.filter_map
            (fun s ->
              if Ptime.fits (Instance.ptime inst ~job:j ~set:s) ~tmax:t then
                let col =
                  List.filter_map
                    (fun l ->
                      let a = coeff l ~job:j ~set:s in
                      if Q.sign a > 0 then Some (l, a) else None)
                    (List.init (Array.length rows) (fun l -> l))
                in
                Some { Iterative_rounding.job = j; opt = s; col }
              else None)
            (List.init nsets (fun s -> s)))
        (List.init n (fun j -> j))
    in
    { Iterative_rounding.njobs = n; vars; bounds; names }
  in
  let lp_feasible t =
    let p = build t in
    let arr = Array.of_list p.Iterative_rounding.vars in
    let nv = Array.length arr in
    let covered = Array.make n false in
    Array.iter (fun v -> covered.(v.Iterative_rounding.job) <- true) arr;
    if not (Array.for_all (fun c -> c) covered) then false
    else begin
      let assign =
        List.init n (fun j ->
            let terms = ref [] in
            Array.iteri
              (fun idx v -> if v.Iterative_rounding.job = j then terms := (idx, Q.one) :: !terms)
              arr;
            LPQ.constr ~name:(Printf.sprintf "assign(%d)" j) !terms LPQ.Eq Q.one)
      in
      let packs =
        List.init (Array.length p.Iterative_rounding.bounds) (fun l ->
            let terms = ref [] in
            Array.iteri
              (fun idx v ->
                match List.assoc_opt l v.Iterative_rounding.col with
                | Some a -> terms := (idx, a) :: !terms
                | None -> ())
              arr;
            LPQ.constr ~name:p.Iterative_rounding.names.(l) !terms LPQ.Le
              p.Iterative_rounding.bounds.(l))
      in
      Solver.feasible (LPQ.make ~nvars:nv (assign @ packs)) <> None
    end
  in
  let rec search lo hi best =
    if lo > hi then best
    else
      let mid = (lo + hi) / 2 in
      if lp_feasible mid then search lo (mid - 1) (Some mid)
      else search (mid + 1) hi best
  in
  match search lo hi None with
  | None -> err "memory: the revised LP is infeasible at every horizon up to %d" hi
  | Some t -> (
      let p = build t in
      match Iterative_rounding.solve p (policy ~t) with
      | Error e -> Error e
      | Ok o -> (
          let assignment = Array.copy o.choice in
          let makespan = Assignment.min_makespan inst assignment in
          match Hierarchical.schedule inst assignment ~tmax:makespan with
          | Error e -> err "memory: scheduler failed: %s" e
          | Ok schedule ->
              let capacity_factors =
                List.init (Array.length p.Iterative_rounding.bounds) (fun l ->
                    ( p.Iterative_rounding.names.(l),
                      Q.div o.usage.(l) p.Iterative_rounding.bounds.(l) ))
              in
              let max_capacity_factor =
                List.fold_left (fun acc (_, f) -> Q.max acc f) Q.zero capacity_factors
              in
              Ok
                {
                  assignment;
                  t_reference = t;
                  makespan;
                  makespan_factor = Q.div (Q.of_int makespan) (Q.of_int (Stdlib.max t 1));
                  capacity_factors;
                  max_capacity_factor;
                  schedule;
                  rounds = o.rounds;
                  fallback_drops = o.fallback_drops;
                }))

(* Horizon search bounds under memory constraints.  Unlike the pure
   makespan problem, memory may force jobs away from their fastest masks,
   so the upper bound must admit every finite mask: hi = Σ_j max finite
   p.  At that horizon R is maximal, hence the LP is feasible iff it is
   feasible at any horizon. *)
let wide_bounds inst =
  let n = Instance.njobs inst in
  let lam = Instance.laminar inst in
  let rec go j lo hi =
    if j >= n then Some (lo, hi)
    else
      let finite =
        List.filter_map
          (fun s -> Ptime.value (Instance.ptime inst ~job:j ~set:s))
          (List.init (Laminar.size lam) (fun s -> s))
      in
      match finite with
      | [] -> None
      | _ ->
          let mn = List.fold_left Stdlib.min Stdlib.max_int finite in
          let mx = List.fold_left Stdlib.max 0 finite in
          go (j + 1) (Stdlib.max lo mn) (hi + mx)
  in
  go 0 0 0

(** {1 Model 1} *)

type model1 = {
  budgets : int array;  (** B_i per machine *)
  space : int array array;  (** s.(j).(i) = memory of job j on machine i *)
}

(** Solve Model 1: bicriteria target (3T, 3·B_i) via support-2 dropping. *)
let solve_model1 inst (m1 : model1) =
  let lam = Instance.laminar inst in
  let m = Laminar.m lam in
  let rows =
    List.init m (fun i ->
        ( Printf.sprintf "mem(i=%d)" i,
          Q.of_int m1.budgets.(i),
          fun ~job ~set ->
            if Laminar.mem lam set i then Q.of_int m1.space.(job).(i) else Q.zero ))
  in
  match wide_bounds inst with
  | None -> Error "memory: some job has no finite mask"
  | Some (lo, hi) ->
      run inst ~capacity_rows:rows ~policy:(fun ~t:_ -> Iterative_rounding.Support_at_most 2) ~lo ~hi

(** {1 Model 2} *)

type model2 = {
  mu : Q.t;  (** capacity scaling µ > 1 *)
  sizes : Q.t array;  (** s_j ≤ 1 per job *)
}

let qpow q k =
  let rec go acc k = if k = 0 then acc else go (Q.mul acc q) (k - 1) in
  go Q.one k

let harmonic k =
  let rec go acc i = if i > k then acc else go (Q.add acc (Q.of_ints 1 i)) (i + 1) in
  go Q.zero 1

(** The ρ of Lemma VI.2 computed from the actual coefficient matrix:
    [max_q Σ_l a_lq / b_l]; the paper bounds it by [1 + H_k]. *)
let rho_of_matrix (p : Iterative_rounding.problem) =
  List.fold_left
    (fun acc v ->
      let w =
        List.fold_left
          (fun a (l, c) -> Q.add a (Q.div c p.Iterative_rounding.bounds.(l)))
          Q.zero v.Iterative_rounding.col
      in
      Q.max acc w)
    Q.zero p.Iterative_rounding.vars

(** Solve Model 2: Lemma VI.2 rounding with ρ = 1 + H_k, giving
    σ = 2 + H_k for both makespan and every per-level capacity. *)
let solve_model2 inst (m2 : model2) =
  let lam = Instance.laminar inst in
  if not (Laminar.is_tree lam) then Error "memory model 2: family must be a tree"
  else if not (Laminar.uniform_leaf_level lam) then
    Error "memory model 2: leaves must share a level"
  else if Q.leq m2.mu Q.one then Error "memory model 2: µ must exceed 1"
  else begin
    let k = Laminar.nlevels lam in
    let rho = Q.add Q.one (harmonic k) in
    let root = match Laminar.roots lam with [ r ] -> r | _ -> assert false in
    let rows =
      List.init (Laminar.size lam) (fun s -> s)
      |> List.filter (fun s -> s <> root)
      |> List.map (fun s ->
             ( Printf.sprintf "mu-cap(a=%d)" s,
               qpow m2.mu (Laminar.height lam s),
               fun ~job ~set -> if set = s then m2.sizes.(job) else Q.zero ))
    in
    match wide_bounds inst with
    | None -> Error "memory: some job has no finite mask"
    | Some (lo, hi) ->
        run inst ~capacity_rows:rows
          ~policy:(fun ~t:_ -> Iterative_rounding.Weight_at_most rho)
          ~lo ~hi
  end

(** Paper bound σ = 2 + H_k for a k-level instance. *)
let sigma_bound ~k = Q.add (Q.of_int 2) (harmonic k)
