(** Wrap-around "tape" shared by Algorithms 1 and 3.

    Both schedulers place a bag of jobs on a sequence of machine blocks
    that are contiguous in wall-clock time modulo the horizon [T]; laying
    the jobs consecutively along that tape maps tape position [τ] to
    wall-clock instant [(τ₀ + τ) mod T], so a job of length at most [T]
    never overlaps itself — McNaughton's wrap-around argument.

    The layer also counts Proposition III.2's events in {e tape order}
    (the accounting under which the paper's bounds hold): crossing a
    block boundary onto another machine is a migration; a genuine cut at
    the horizon inside a block is a preemption. *)

type block = { machine : int; start : int; len : int }
(** [len ≤ T] units on [machine] from wall-clock [start ∈ [0,T)];
    wraps around the horizon when [start + len > T]. *)

type stats = {
  migrations : int;  (** tape-order block-boundary crossings *)
  preemptions : int;  (** wrap cuts and same-machine resumptions *)
}

val no_stats : stats
val merge_stats : stats -> stats -> stats
val stops : stats -> int

type laid = { segments : Hs_model.Schedule.segment list; stats : stats }

val lay :
  horizon:int -> blocks:block list -> jobs:(int * int) list -> laid
(** [lay ~horizon ~blocks ~jobs] lays [(job, length)] pairs in order
    along the blocks, cutting at block boundaries and at the horizon.
    Raises [Invalid_argument] if the jobs exceed the block capacity. *)

val complement :
  horizon:int -> machine:int -> start:int -> len:int -> block list
(** Free intervals of a machine whose only occupied part is one
    (possibly wrapping) block: the complement of
    [[start, start+len) mod T] in [[0, T)], as non-wrapping blocks. *)
