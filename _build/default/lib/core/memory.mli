(** Section VI: makespan minimisation under memory capacities.

    {b Model 1} — each machine [i] has budget [B_i]; a job on mask [α]
    charges [s_{ij}] against every [i ∈ α].  Support-2 iterative rounding
    gives the bicriteria guarantee (3T, 3·B_i) of Theorem VI.1.

    {b Model 2} — the family is a tree with uniform leaf level; a node at
    height [h] (except the root) has capacity [µ^h], jobs have sizes
    [s_j ≤ 1].  The Lemma VI.2 rounding with [ρ = 1 + H_k] yields
    σ = 2 + H_k on both criteria (Theorem VI.3; σ = 3 + 1/m for k = 2). *)

open Hs_model
module Q = Hs_numeric.Q

type report = {
  assignment : Assignment.t;
  t_reference : int;  (** minimal LP-feasible horizon of the revised ILP *)
  makespan : int;  (** achieved makespan of the rounded assignment *)
  makespan_factor : Q.t;  (** makespan / t_reference *)
  capacity_factors : (string * Q.t) list;  (** usage / bound per row *)
  max_capacity_factor : Q.t;
  schedule : Schedule.t;
  rounds : int;
  fallback_drops : int;
}

type model1 = {
  budgets : int array;  (** B_i per machine *)
  space : int array array;  (** [space.(job).(machine)] *)
}

val solve_model1 : Instance.t -> model1 -> (report, string) result
(** Binary-search the minimal horizon at which the revised LP (IP-3 +
    constraints (7)) is feasible, round, schedule.  Errors when even the
    widest horizon is memory-infeasible. *)

type model2 = {
  mu : Q.t;  (** capacity scaling µ > 1 *)
  sizes : Q.t array;  (** s_j ≤ 1 per job *)
}

val solve_model2 : Instance.t -> model2 -> (report, string) result
(** Requires a tree family with uniform leaf level and µ > 1. *)

val sigma_bound : k:int -> Q.t
(** The paper's bound σ = 2 + H_k for a k-level instance. *)

val harmonic : int -> Q.t
(** The k-th harmonic number H_k. *)

val rho_of_matrix : Iterative_rounding.problem -> Q.t
(** Lemma VI.2's ρ computed exactly from a coefficient matrix
    ([max_q Σ_l a_lq / b_l]); the paper bounds it by 1 + H_k for
    Model 2.  Diagnostic. *)
