(** Algorithm 1: the scheduler for semi-partitioned assignments (§III).

    Given an integral solution of (IP-1) — an assignment over the
    two-level family [{M} ∪ singletons] feasible at horizon [tmax] — it
    wraps the global volume around the machines and packs each machine's
    local jobs into its remaining free time.  Theorem III.1: the result
    is a valid schedule in [[0, tmax]].  Proposition III.2 bounds the
    tape-order events: migrations ≤ m-1, migrations+preemptions ≤ 2m-2. *)

open Hs_model

val schedule_stats :
  Instance.t -> Assignment.t -> tmax:int -> (Schedule.t * Tape.stats, string) result
(** The schedule together with the Proposition III.2 event counts.
    Fails when the family is not semi-partitioned, the assignment is
    ill-formed, or the horizon violates (1b)–(1d). *)

val schedule : Instance.t -> Assignment.t -> tmax:int -> (Schedule.t, string) result
(** {!schedule_stats} without the counts. *)
