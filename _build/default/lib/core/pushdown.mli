(** Lemma V.1: pushing fractional weight down to the singletons.

    Given a feasible fractional solution of the (IP-3) relaxation on a
    {e singleton-closed} family, every non-singleton set's weight is
    redistributed over its (disjoint, covering) maximal proper subsets
    proportionally to their slack; a top-down sweep leaves weight only on
    singletons while preserving feasibility.  This is the feasibility
    bridge from the hierarchical LP to the unrelated-machines LP used by
    Theorem V.2.  (The transformed solution is {e not} generally a
    vertex — the pipeline re-solves before rounding.) *)

open Hs_model

module Make (F : Hs_lp.Field.S) : sig
  val slack : Instance.t -> F.t array array -> tmax:int -> int -> F.t
  (** [slack inst x ~tmax set] = |α|·T − Σ_j Σ_{β⊆α} p_{βj} x_{βj}. *)

  val push_one : Instance.t -> F.t array array -> tmax:int -> int -> unit
  (** One application of the lemma to a non-singleton set, in place. *)

  val push_down : Instance.t -> tmax:int -> F.t array array -> F.t array array
  (** Full top-down sweep on a copy of the input. *)

  val singletons_only : Instance.t -> F.t array array -> bool
  (** Test hook: all weight sits on singleton sets. *)

  val feasible : Instance.t -> tmax:int -> F.t array array -> bool
  (** Test hook: the (IP-3) relaxation constraints hold. *)
end
