(** Wrap-around "tape" used by Algorithms 1 and 3.

    Both schedulers place a bag of jobs on a sequence of machine blocks
    that are contiguous in wall-clock time modulo the horizon [T]: block
    [k+1] starts exactly where block [k] ends (mod T).  Laying the jobs
    consecutively along that tape therefore maps tape position [τ] to
    wall-clock instant [(τ0 + τ) mod T]; a job of length at most [T]
    occupies an injective wall-clock image, which is exactly McNaughton's
    wrap-around argument and the reason no job ever runs in parallel with
    itself.

    The layer also counts the Proposition III.2 events in {e tape order},
    which is the accounting under which the paper's bounds hold: crossing
    a block boundary onto another machine is a {e migration}; the cut a
    block's wrap makes at the horizon is a {e preemption} (the job resumes
    on the same machine at time 0).  Wall-clock (chronological) counting
    would label a wrapped job's resumption as a migration back to the
    machine, which is why {!Hs_model.Metrics.of_schedule} can report a
    different migration/preemption split (the total number of stops is
    identical). *)

type block = { machine : int; start : int; len : int }
(** A block of [len ≤ T] units on [machine] beginning at wall-clock
    [start ∈ [0,T)]; it wraps around the horizon when [start+len > T]. *)

type stats = {
  migrations : int;  (** tape-order block-boundary crossings *)
  preemptions : int;  (** tape-order wrap cuts and same-machine resumptions *)
}

let no_stats = { migrations = 0; preemptions = 0 }

let merge_stats a b =
  { migrations = a.migrations + b.migrations; preemptions = a.preemptions + b.preemptions }

let stops s = s.migrations + s.preemptions

type laid = { segments : Hs_model.Schedule.segment list; stats : stats }

(** [lay ~horizon ~blocks ~jobs] lays [jobs = (job, length) list] in
    order along the blocks, cutting segments at block boundaries and at
    the horizon wrap.  Total job length must not exceed total block
    length. *)
let lay ~horizon ~blocks ~jobs =
  let segments = ref [] in
  let migrations = ref 0 and preemptions = ref 0 in
  let blocks = ref (List.filter (fun b -> b.len > 0) blocks) in
  let used_in_block = ref 0 in
  let place job len =
    let remaining = ref len in
    let last_machine = ref None in
    while !remaining > 0 do
      match !blocks with
      | [] -> invalid_arg "Tape.lay: jobs exceed block capacity"
      | b :: rest ->
          let avail = b.len - !used_in_block in
          if avail = 0 then begin
            blocks := rest;
            used_in_block := 0
          end
          else begin
            let take = Stdlib.min avail !remaining in
            let pos = (b.start + !used_in_block) mod horizon in
            let pieces =
              Hs_model.Schedule.wrap_segments ~horizon ~job ~machine:b.machine ~pos
                ~len:take
            in
            (* A two-piece result is a wrap cut inside this block — except
               when the chunk spans the whole horizon, where the two
               pieces are wall-clock adjacent and execution is seamless. *)
            if List.length pieces = 2 && take < horizon then incr preemptions;
            (match !last_machine with
            | Some m when m <> b.machine -> incr migrations
            | Some _ -> incr preemptions (* same machine, new block *)
            | None -> ());
            last_machine := Some b.machine;
            segments := pieces @ !segments;
            used_in_block := !used_in_block + take;
            remaining := !remaining - take
          end
    done
  in
  List.iter (fun (job, len) -> place job len) jobs;
  {
    segments = !segments;
    stats = { migrations = !migrations; preemptions = !preemptions };
  }

(** Free wall-clock intervals of a machine whose only occupied part is a
    single (possibly wrapping) block: the complement of
    [[start, start+len) mod T] in [[0, T)], as non-wrapping blocks. *)
let complement ~horizon ~machine ~start ~len =
  if len = 0 then [ { machine; start = 0; len = horizon } ]
  else if len >= horizon then []
  else if start + len <= horizon then
    List.filter
      (fun b -> b.len > 0)
      [
        { machine; start = 0; len = start };
        { machine; start = start + len; len = horizon - start - len };
      ]
  else
    (* The block wraps: free time is the middle interval. *)
    [ { machine; start = (start + len) mod horizon; len = horizon - len } ]
