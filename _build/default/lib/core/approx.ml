(** Theorem V.2: the polynomial-time 2-approximation for hierarchical
    scheduling, plus the Section II 8-approximation for general
    (non-laminar) families.

    Pipeline (laminar case):
    + close the family under singletons (processing time of the minimal
      original superset — the convention of Section V),
    + binary-search the minimal integer horizon [T*] at which the (IP-3)
      relaxation is feasible ([T* ≤ OPT]),
    + by Lemma V.1 ({!Pushdown}) the {e unrelated-machines} relaxation
      [I_u] is then feasible at [T*] as well, so re-solve that restricted
      LP to a {e basic} (vertex) solution — the rounding theorem needs a
      vertex, which the push-down transformation itself does not
      preserve,
    + round with Lenstra–Shmoys–Tardos ({!Lst_rounding}),
    + realise the integral assignment with Algorithms 2–3.

    The resulting makespan is at most [2·T* ≤ 2·OPT]. *)

open Hs_model

module Make (F : Hs_lp.Field.S) = struct
  module I = Ilp.Make (F)
  module R = Lst_rounding.Make (F)

  (** The unrelated-machines restriction [I_u] of a singleton-closed
      instance: keep only the singleton masks (Section V). *)
  let unrelated_restriction closed =
    let lam = Instance.laminar closed in
    let m = Hs_laminar.Laminar.m lam in
    let times =
      Array.init (Instance.njobs closed) (fun j ->
          Array.init m (fun i ->
              match Hs_laminar.Laminar.singleton lam i with
              | Some s -> Instance.ptime closed ~job:j ~set:s
              | None -> Ptime.Inf))
    in
    Instance.unrelated times

  type outcome = {
    instance : Instance.t;  (** the singleton-closed instance solved *)
    translate : int -> int option;
        (** closed set id → original set id ([None] for added singletons) *)
    assignment : Assignment.t;  (** over the closed instance *)
    t_lp : int;  (** minimal LP-feasible horizon — a lower bound on OPT *)
    makespan : int;  (** achieved integral makespan, ≤ 2·t_lp *)
    schedule : Schedule.t;
    rounding : R.stats;
  }

  let solve inst : (outcome, string) result =
    let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
    let closed, translate = Instance.with_singletons inst in
    match I.min_feasible_t closed with
    | None -> err "approx: no feasible horizon (some job has no finite mask)"
    | Some (t_lp, _frac) -> (
        let iu = unrelated_restriction closed in
        match I.lp_feasible iu ~tmax:t_lp with
        | None ->
            (* Contradicts Lemma V.1: the hierarchical LP was feasible. *)
            err "approx: internal error, Lemma V.1 feasibility transfer failed at T=%d" t_lp
        | Some frac_u -> (
        match R.round iu frac_u with
        | Error e -> Error e
        | Ok (assignment_u, rounding) -> (
            (* Lift machines back onto the closed family's singletons. *)
            let lam_u = Instance.laminar iu in
            let lam_c = Instance.laminar closed in
            let assignment =
              Array.map
                (fun s ->
                  let machine = (Hs_laminar.Laminar.members lam_u s).(0) in
                  Option.get (Hs_laminar.Laminar.singleton lam_c machine))
                assignment_u
            in
            let makespan = Assignment.min_makespan closed assignment in
            match Hierarchical.schedule closed assignment ~tmax:makespan with
            | Error e -> err "approx: scheduler failed: %s" e
            | Ok schedule ->
                Ok
                  { instance = closed; translate; assignment; t_lp; makespan; schedule; rounding })))
end

module Exact = Make (Hs_lp.Field.Exact)
module Fast = Make (Hs_lp.Field.Float)

(** The Section II algorithm for arbitrary admissible families: reduce to
    unrelated machines (taking, for each machine, the cheapest admissible
    set containing it), 2-approximate the reduced instance, and lift the
    partitioned solution back via witness sets.  The reduced LP horizon
    lower-bounds the original preemptive optimum, and the paper's chain
    of inequalities bounds the overall factor by 8. *)
type general_outcome = {
  machine_assignment : int array;  (** job → machine *)
  set_assignment : int array;  (** job → index into the family, via witnesses *)
  makespan : int;  (** of the lifted (partitioned) schedule *)
  lower_bound : int;  (** LP preemptive lower bound of the reduced instance *)
}

let solve_general (g : General_instance.t) : (general_outcome, string) result =
  let module A = Make (Hs_lp.Field.Exact) in
  let iu = General_instance.to_unrelated g in
  match A.solve iu with
  | Error e -> Error e
  | Ok o ->
      let lam = Instance.laminar o.instance in
      let n = General_instance.njobs g in
      let machine_assignment =
        Array.init n (fun j -> (Hs_laminar.Laminar.members lam o.assignment.(j)).(0))
      in
      let set_assignment =
        Array.init n (fun j ->
            match General_instance.witness_set g ~job:j ~machine:machine_assignment.(j) with
            | Some k -> k
            | None -> -1)
      in
      Ok { machine_assignment; set_assignment; makespan = o.makespan; lower_bound = o.t_lp }
