(** Lenstra–Shmoys–Tardos rounding of a fractional unrelated-machines
    assignment — the rounding step inside Theorem V.2.

    The input must be supported on singleton sets and should be a
    {e basic} feasible solution (as produced by the simplex): then the
    bipartite graph of fractional variables is a pseudoforest per
    component and the fractional jobs admit a perfect matching into
    machines, each machine receiving at most one extra job of processing
    time ≤ T — the factor-2 argument. *)

open Hs_model

module Make (F : Hs_lp.Field.S) : sig
  type stats = {
    fractional_jobs : int;
    matched : int;
        (** matched by augmenting paths; any rest falls back greedily to
            the heaviest machine and is logged (only possible on
            non-basic inputs) *)
  }

  val round :
    Instance.t -> F.t array array -> (Assignment.t * stats, string) result
  (** Rounds [x.(set).(job)] to an integral assignment over singleton
      masks.  Fails when weight sits on a non-singleton set. *)
end
