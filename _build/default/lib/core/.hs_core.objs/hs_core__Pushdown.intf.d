lib/core/pushdown.mli: Hs_lp Hs_model Instance
