lib/core/iterative_rounding.ml: Array Hashtbl Hs_lp Hs_numeric List Option Printf
