lib/core/approx.ml: Array Assignment General_instance Hierarchical Hs_laminar Hs_lp Hs_model Ilp Instance Lst_rounding Option Printf Ptime Schedule
