lib/core/exact.mli: Assignment Hs_model Instance
