lib/core/lst_rounding.ml: Array Assignment Hs_laminar Hs_lp Hs_model Instance Laminar List Logs Printf
