lib/core/ilp.mli: Assignment Hs_lp Hs_model Instance
