lib/core/ilp.ml: Array Assignment Hs_laminar Hs_lp Hs_model Instance Laminar List Printf Ptime Stdlib
