lib/core/exact.ml: Array Assignment Hs_laminar Hs_model Instance Laminar List Option Ptime Stdlib
