lib/core/semi_partitioned.mli: Assignment Hs_model Instance Schedule Tape
