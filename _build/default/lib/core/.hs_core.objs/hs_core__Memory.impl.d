lib/core/memory.ml: Array Assignment Hierarchical Hs_laminar Hs_lp Hs_model Hs_numeric Instance Iterative_rounding Laminar List Printf Ptime Schedule Stdlib
