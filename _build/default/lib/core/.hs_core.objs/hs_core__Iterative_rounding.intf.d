lib/core/iterative_rounding.mli: Hs_numeric
