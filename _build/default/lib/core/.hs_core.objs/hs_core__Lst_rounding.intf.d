lib/core/lst_rounding.mli: Assignment Hs_lp Hs_model Instance
