lib/core/semi_partitioned.ml: Array Assignment Hierarchical Hs_laminar Hs_model Instance Laminar List Option Printf Ptime Result Schedule Stdlib Tape
