lib/core/tape.ml: Hs_model List Stdlib
