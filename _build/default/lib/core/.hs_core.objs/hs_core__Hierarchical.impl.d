lib/core/hierarchical.ml: Array Assignment Hs_laminar Hs_model Instance Laminar List Option Printf Ptime Result Schedule Stdlib Tape
