lib/core/memory.mli: Assignment Hs_model Hs_numeric Instance Iterative_rounding Schedule
