lib/core/pushdown.ml: Array Hs_laminar Hs_lp Hs_model Instance Laminar List Ptime
