lib/core/hierarchical.mli: Assignment Hs_laminar Hs_model Instance Laminar Schedule Tape
