lib/core/approx.mli: Assignment General_instance Hs_lp Hs_model Instance Schedule
