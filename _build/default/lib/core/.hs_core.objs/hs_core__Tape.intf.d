lib/core/tape.mli: Hs_model
