(** The reduction from hierarchical to unrelated machines used throughout
    the paper's analysis (Section II, Example V.1, Theorem V.2): keep,
    for each job and machine, the processing time of the {e minimal}
    admissible set containing the machine. *)

open Hs_model

val reduce : Instance.t -> Instance.t
(** The unrelated instance [I_u]; machines in no admissible set get ∞. *)

val optimal_reduced : ?node_limit:int -> Instance.t -> int option
(** Exact optimum of [I_u] on small inputs (experiment F1's gap curve). *)
