(** The reduction from hierarchical to unrelated machines used throughout
    the paper's analysis (Section II, Example V.1 and Theorem V.2): keep,
    for each job and machine, the processing time of the {e minimal}
    admissible set containing the machine — by monotonicity this is the
    cheapest admissible choice.

    Example V.1 shows the integral optimum of the reduced instance can
    drift towards a factor 2 above the hierarchical optimum; experiment
    F1 reproduces that gap curve. *)

open Hs_model
open Hs_laminar

(** [reduce inst] is the unrelated instance [I_u]; machines contained in
    no admissible set get ∞ everywhere. *)
let reduce inst =
  let lam = Instance.laminar inst in
  let m = Laminar.m lam in
  let n = Instance.njobs inst in
  let times =
    Array.init n (fun j ->
        Array.init m (fun i ->
            match Laminar.minimal_containing lam i with
            | Some s -> Instance.ptime inst ~job:j ~set:s
            | None -> Ptime.Inf))
  in
  Instance.unrelated times

(** Optimal makespan of the reduced instance on small inputs; [None] when
    infeasible. *)
let optimal_reduced ?node_limit inst =
  Hs_core.Exact.optimal_makespan ?node_limit (reduce inst)
