(** Pure partitioned baselines: every job pinned to one machine — the
    comparison points whose capacity loss the paper's model is designed
    to recover (experiment F2). *)

open Hs_model

val greedy_unrelated : Ptime.t array array -> (int array * int) option
(** Earliest-completion list scheduling on unrelated machines, jobs in
    decreasing order of minimum time.  [times.(job).(machine)]; returns
    [(job → machine, makespan)], or [None] if some job fits nowhere. *)

val lpt_identical : m:int -> lengths:int array -> int array * int
(** Longest-processing-time list scheduling on identical machines (the
    classic 4/3-approximation). *)

val to_assignment : Instance.t -> int array -> Assignment.t option
(** Lift a machine placement to singleton masks; [None] if a machine
    lacks a singleton set. *)
