(** McNaughton's wrap-around rule for [P|pmtn|Cmax] (the special case
    [A = {M}] of the model; McNaughton 1959).

    The optimal preemptive makespan on identical machines is the classic
    [max(max_j p_j, ⌈Σ_j p_j / m⌉)] (rounded up because our schedules
    preempt at integer points), attained by wrapping the jobs around the
    machines.  This serves as the {e global scheduling} baseline and as
    the generic lower bound in experiment F2. *)

open Hs_model

let optimal_t ~m ~lengths =
  if m <= 0 then invalid_arg "mcnaughton: no machines";
  let total = Array.fold_left ( + ) 0 lengths in
  let longest = Array.fold_left Stdlib.max 0 lengths in
  Stdlib.max longest ((total + m - 1) / m)

(** The wrap-around schedule itself, valid with horizon {!optimal_t}. *)
let schedule ~m ~lengths =
  let t = optimal_t ~m ~lengths in
  let segments = ref [] in
  let machine = ref 0 and pos = ref 0 in
  Array.iteri
    (fun j len ->
      let remaining = ref len in
      while !remaining > 0 do
        let take = Stdlib.min !remaining (t - !pos) in
        segments :=
          { Schedule.job = j; machine = !machine; start = !pos; stop = !pos + take }
          :: !segments;
        remaining := !remaining - take;
        pos := !pos + take;
        if !pos = t then begin
          pos := 0;
          incr machine
        end
      done)
    lengths;
  { Schedule.horizon = t; segments = !segments }
