(** McNaughton's wrap-around rule for [P|pmtn|Cmax] (McNaughton 1959) —
    the special case [A = {M}] of the model, used as the global-scheduling
    baseline and generic lower bound. *)

open Hs_model

val optimal_t : m:int -> lengths:int array -> int
(** The optimal preemptive makespan
    [max (max_j p_j, ⌈Σ_j p_j / m⌉)]. *)

val schedule : m:int -> lengths:int array -> Schedule.t
(** The wrap-around schedule, valid with horizon {!optimal_t}. *)
