(** Pure partitioned baselines: every job is pinned to one machine.

    These are the comparison points of experiment F2 — the approach the
    paper's semi-partitioned and hierarchical models are designed to
    beat whenever single-machine capacity is the bottleneck. *)

open Hs_model

(** Greedy earliest-completion list scheduling for unrelated machines:
    jobs in decreasing order of their minimum processing time, each
    placed on the machine where it finishes earliest.  Returns
    [(job → machine, makespan)], or [None] if some job fits nowhere. *)
let greedy_unrelated (times : Ptime.t array array) =
  let n = Array.length times in
  if n = 0 then Some ([||], 0)
  else begin
    let m = Array.length times.(0) in
    let minp j = Array.fold_left Ptime.min Ptime.Inf times.(j) in
    if List.exists (fun j -> not (Ptime.is_fin (minp j))) (List.init n (fun j -> j)) then None
    else begin
      let order =
        List.init n (fun j -> j)
        |> List.sort (fun a b -> Ptime.compare (minp b) (minp a))
      in
      let load = Array.make m 0 in
      let place = Array.make n (-1) in
      List.iter
        (fun j ->
          let best = ref None in
          for i = 0 to m - 1 do
            match times.(j).(i) with
            | Ptime.Inf -> ()
            | Ptime.Fin p -> (
                let finish = load.(i) + p in
                match !best with
                | None -> best := Some (i, finish)
                | Some (_, bf) -> if finish < bf then best := Some (i, finish))
          done;
          match !best with
          | Some (i, finish) ->
              place.(j) <- i;
              load.(i) <- finish
          | None -> assert false)
        order;
      Some (place, Array.fold_left Stdlib.max 0 load)
    end
  end

(** Longest-processing-time list scheduling on identical machines (the
    classic 4/3-approximation), for completeness of the baseline set. *)
let lpt_identical ~m ~lengths =
  if m <= 0 then invalid_arg "lpt: no machines";
  let order =
    Array.to_list (Array.mapi (fun j p -> (j, p)) lengths)
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let load = Array.make m 0 in
  let place = Array.make (Array.length lengths) (-1) in
  List.iter
    (fun (j, p) ->
      let best = ref 0 in
      for i = 1 to m - 1 do
        if load.(i) < load.(!best) then best := i
      done;
      place.(j) <- !best;
      load.(!best) <- load.(!best) + p)
    order;
  (place, Array.fold_left Stdlib.max 0 load)

(** Lift a partitioned placement on a hierarchical instance to an
    {!Assignment.t} over singleton masks; [None] if a machine lacks a
    singleton set. *)
let to_assignment inst (place : int array) =
  let lam = Instance.laminar inst in
  let a = Array.make (Array.length place) (-1) in
  let ok = ref true in
  Array.iteri
    (fun j i ->
      match Hs_laminar.Laminar.singleton lam i with
      | Some s -> a.(j) <- s
      | None -> ok := false)
    place;
  if !ok then Some a else None
