lib/baselines/mcnaughton.ml: Array Hs_model Schedule Stdlib
