lib/baselines/mcnaughton.mli: Hs_model Schedule
