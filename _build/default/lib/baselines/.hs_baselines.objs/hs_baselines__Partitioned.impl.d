lib/baselines/partitioned.ml: Array Hs_laminar Hs_model Instance List Ptime Stdlib
