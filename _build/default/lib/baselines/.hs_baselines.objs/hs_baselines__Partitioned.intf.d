lib/baselines/partitioned.mli: Assignment Hs_model Instance Ptime
