lib/baselines/unrelated_reduction.mli: Hs_model Instance
