lib/baselines/unrelated_reduction.ml: Array Hs_core Hs_laminar Hs_model Instance Laminar Ptime
