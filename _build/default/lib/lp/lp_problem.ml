(** Linear-program descriptions, polymorphic in the coefficient field.

    A problem has [nvars] decision variables indexed [0 .. nvars-1], all
    implicitly constrained to be non-negative (which matches every LP in
    the paper: assignment variables live in [0, 1] with the upper bound
    implied by the per-job equality constraints).  Constraints carry an
    optional name used in diagnostics and in the iterative-rounding
    engine's violation reports. *)

type relation = Le | Ge | Eq

type 'f constr = {
  cname : string;  (** diagnostic label, e.g. ["cap(alpha=3)"] *)
  terms : (int * 'f) list;  (** sparse row: (variable, coefficient) *)
  rel : relation;
  rhs : 'f;
}

type 'f t = {
  nvars : int;
  constrs : 'f constr list;  (** in declaration order *)
  objective : (int * 'f) list;  (** sparse cost vector; minimised *)
}

let make ~nvars ?(objective = []) constrs =
  if nvars < 0 then invalid_arg "Lp_problem.make: negative nvars";
  let check_terms terms =
    List.iter
      (fun (v, _) ->
        if v < 0 || v >= nvars then
          invalid_arg
            (Printf.sprintf "Lp_problem.make: variable %d out of range" v))
      terms
  in
  List.iter (fun c -> check_terms c.terms) constrs;
  check_terms objective;
  { nvars; constrs; objective }

let constr ?(name = "") terms rel rhs = { cname = name; terms; rel; rhs }

let nconstrs p = List.length p.constrs

let pp_relation fmt = function
  | Le -> Format.pp_print_string fmt "<="
  | Ge -> Format.pp_print_string fmt ">="
  | Eq -> Format.pp_print_string fmt "="

let pp pp_f fmt p =
  Format.fprintf fmt "@[<v>min";
  List.iter (fun (v, c) -> Format.fprintf fmt " + %a x%d" pp_f c v) p.objective;
  List.iter
    (fun c ->
      Format.fprintf fmt "@,%s:" c.cname;
      List.iter (fun (v, k) -> Format.fprintf fmt " + %a x%d" pp_f k v) c.terms;
      Format.fprintf fmt " %a %a" pp_relation c.rel pp_f c.rhs)
    p.constrs;
  Format.fprintf fmt "@]"
