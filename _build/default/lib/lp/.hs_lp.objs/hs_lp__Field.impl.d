lib/lp/field.ml: Float Hs_numeric
