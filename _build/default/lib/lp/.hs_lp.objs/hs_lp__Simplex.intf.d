lib/lp/simplex.mli: Field Lp_problem
