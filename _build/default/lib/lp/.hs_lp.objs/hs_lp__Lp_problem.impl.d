lib/lp/lp_problem.ml: Format List Printf
