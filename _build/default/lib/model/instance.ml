(** Problem instances of the hierarchical scheduling problem.

    An instance bundles a laminar family [A] over machines [M] with, for
    each job [j] and set [α ∈ A], the processing time [P_j(α)] the job
    requires when its affinity mask is [α].  Construction validates the
    paper's monotonicity requirement: [α ⊆ β ⇒ P_j(α) ≤ P_j(β)] (with
    {!Ptime.Inf} as the top element). *)

open Hs_laminar

type t = {
  laminar : Laminar.t;
  n : int;  (** number of jobs *)
  p : Ptime.t array array;  (** [p.(j).(set)] = P_j(set) *)
}

let laminar t = t.laminar
let njobs t = t.n
let nmachines t = Laminar.m t.laminar
let ptime t ~job ~set = t.p.(job).(set)

let make laminar p =
  let nsets = Laminar.size laminar in
  let n = Array.length p in
  let bad fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let exception Bad of string in
  try
    Array.iteri
      (fun j row ->
        if Array.length row <> nsets then
          raise
            (Bad
               (Printf.sprintf "instance: job %d has %d processing times, expected %d" j
                  (Array.length row) nsets));
        (* Monotonicity: each set's time is at most its parent's. *)
        Array.iteri
          (fun s pt ->
            match Laminar.parent laminar s with
            | None -> ()
            | Some par ->
                if not (Ptime.leq pt row.(par)) then
                  raise
                    (Bad
                       (Printf.sprintf
                          "instance: job %d violates monotonicity: P(set %d)=%s > P(set %d)=%s"
                          j s (Ptime.to_string pt) par (Ptime.to_string row.(par)))))
          row)
      p;
    Ok { laminar; n; p }
  with Bad msg -> bad "%s" msg

let make_exn laminar p =
  match make laminar p with Ok t -> t | Error e -> invalid_arg e

(** Unrelated-machines instance ([R||Cmax]): family of singletons,
    [times.(j).(i)] = processing time of job [j] on machine [i]. *)
let unrelated times =
  let n = Array.length times in
  if n = 0 then invalid_arg "Instance.unrelated: no jobs";
  let m = Array.length times.(0) in
  let lam = Topology.singletons m in
  (* Singleton of machine i need not be set id i; translate. *)
  let p =
    Array.map
      (fun row ->
        if Array.length row <> m then invalid_arg "Instance.unrelated: ragged matrix";
        let out = Array.make (Laminar.size lam) Ptime.Inf in
        Array.iteri
          (fun i pt ->
            match Laminar.singleton lam i with
            | Some s -> out.(s) <- pt
            | None -> assert false)
          row;
        out)
      times
  in
  make_exn lam p

(** Semi-partitioned instance (§III): [global.(j)] is [P_j(M)],
    [local.(j).(i)] is [P_j({i})]. *)
let semi_partitioned ~global ~local =
  let n = Array.length global in
  if Array.length local <> n then invalid_arg "Instance.semi_partitioned: length mismatch";
  if n = 0 then invalid_arg "Instance.semi_partitioned: no jobs";
  let m = Array.length local.(0) in
  let lam = Topology.semi_partitioned m in
  let full =
    match Laminar.full_set lam with Some f -> f | None -> assert false
  in
  let p =
    Array.init n (fun j ->
        let out = Array.make (Laminar.size lam) Ptime.Inf in
        out.(full) <- global.(j);
        (* For m = 1 the full set and the singleton coincide; running
           "globally" on one machine is just running locally, so the
           cheaper time wins. *)
        Array.iteri
          (fun i pt ->
            match Laminar.singleton lam i with
            | Some s -> out.(s) <- Ptime.min pt out.(s)
            | None -> assert false)
          local.(j);
        out)
  in
  make_exn lam p

(** Identical parallel machines with free migration ([P|pmtn|Cmax]):
    one set [M] with the given job lengths. *)
let identical ~m ~lengths =
  let lam = Topology.global m in
  let p = Array.map (fun len -> [| Ptime.fin len |]) lengths in
  make_exn lam p

(** Singleton closure used by Section V: extends the family with every
    missing singleton [{i}], giving it the processing time of the minimal
    original set containing [i] (or ∞ when no set contains [i]).  Also
    returns the translation from new set ids to original ones ([None] for
    freshly created singletons). *)
let with_singletons t =
  let lam', origin = Laminar.add_singletons t.laminar in
  let translate id' =
    match Laminar.find t.laminar (Array.to_list (Laminar.members lam' id')) with
    | Some id -> Some id
    | None -> None
  in
  let p' =
    Array.map
      (fun row ->
        Array.init (Laminar.size lam') (fun s' ->
            match translate s' with
            | Some s -> row.(s)
            | None -> ( (* new singleton: inherit from the minimal original superset *)
                match origin s' with Some s -> row.(s) | None -> Ptime.Inf)))
      t.p
  in
  (make_exn lam' p', translate)

(** Minimum finite processing time of a job over the whole family. *)
let min_ptime t job = Array.fold_left Ptime.min Ptime.Inf t.p.(job)

(** [Some] of the total minimum volume [Σ_j min_α P_j(α)], or [None] if
    some job has no finite mask at all (the instance is then infeasible). *)
let total_min_volume t =
  let rec go j acc =
    if j >= t.n then Some acc
    else
      match Ptime.value (min_ptime t j) with
      | None -> None
      | Some v -> go (j + 1) (acc + v)
  in
  go 0 0

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@,%d jobs:" Laminar.pp t.laminar t.n;
  Array.iteri
    (fun j row ->
      Format.fprintf fmt "@,  job %d:" j;
      Array.iteri (fun s pt -> Format.fprintf fmt " p(#%d)=%a" s Ptime.pp pt) row)
    t.p;
  Format.fprintf fmt "@]"
