(** Problem instances of the hierarchical scheduling problem (Section II).

    An instance bundles a laminar family [A] over machines [M] with, for
    each job [j] and set [α ∈ A], the processing time [P_j(α)] the job
    requires when its affinity mask is [α].  Construction validates the
    paper's monotonicity requirement ([α ⊆ β ⇒ P_j(α) ≤ P_j(β)], with
    {!Ptime.Inf} as the top element). *)

open Hs_laminar

type t

(** {1 Accessors} *)

val laminar : t -> Laminar.t
val njobs : t -> int
val nmachines : t -> int
val ptime : t -> job:int -> set:int -> Ptime.t

(** {1 Construction} *)

val make : Laminar.t -> Ptime.t array array -> (t, string) result
(** [make lam p] with [p.(job).(set)]; validates arity and monotonicity. *)

val make_exn : Laminar.t -> Ptime.t array array -> t

val unrelated : Ptime.t array array -> t
(** Unrelated machines ([R||Cmax]): [times.(job).(machine)] over the
    family of singletons. *)

val semi_partitioned : global:Ptime.t array -> local:Ptime.t array array -> t
(** Semi-partitioned (§III): [global.(j)] is [P_j(M)],
    [local.(j).(i)] is [P_j({i})].  For [m = 1] the two coincide and the
    cheaper time wins. *)

val identical : m:int -> lengths:int array -> t
(** Identical machines with free migration ([P|pmtn|Cmax]). *)

(** {1 Transformations} *)

val with_singletons : t -> t * (int -> int option)
(** Singleton closure of Section V: adds every missing singleton [{i}]
    with the processing time of the minimal original set containing [i]
    (∞ when none).  Also returns the map from new set ids back to
    original ones ([None] for freshly added singletons). *)

(** {1 Aggregates} *)

val min_ptime : t -> int -> Ptime.t
(** Minimum processing time of a job over the whole family. *)

val total_min_volume : t -> int option
(** [Σ_j min_α P_j(α)], or [None] when some job has no finite mask. *)

val pp : Format.formatter -> t -> unit
