(** Processing times with an explicit top element.

    The paper writes "∞ represents a sufficiently large constant" for
    job/mask pairs that must never be used; this module models that with
    a dedicated constructor so monotonicity checks and the Section V
    pruning ([p_{αj} > T ⇒ x_{αj} = 0]) stay honest. *)

type t = Fin of int | Inf

val fin : int -> t
(** [fin v] is a finite processing time.  Raises [Invalid_argument] on a
    negative value. *)

val inf : t
(** The inadmissible marker (the paper's ∞). *)

val is_fin : t -> bool

val value : t -> int option
(** [Some v] for finite times, [None] for ∞. *)

val value_exn : t -> int
(** Raises [Failure] on ∞. *)

val compare : t -> t -> int
(** Total order with [Inf] as the greatest element. *)

val equal : t -> t -> bool
val leq : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val fits : t -> tmax:int -> bool
(** The membership test [(α,j) ∈ R] of Section V: finite and at most
    [tmax]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
