(** Preemption and migration accounting from a concrete schedule.

    For each job, execution is sorted into maximal contiguous runs (same
    machine, time-adjacent); every boundary between consecutive runs is a
    {e stop}: a {e migration} when the next run is on a different
    machine, otherwise a {e preemption}.

    Proposition III.2's [m-1] migration bound counts along the
    wrap-around {e tape}, where a block crossing the horizon is
    contiguous and its cut is a preemption; chronological counting (this
    module) is a rotation of tape order for wrapped jobs, so individual
    labels can shift between the buckets while the {e total} stop count
    is identical.  The tape-order split is reported by the schedulers
    themselves ([Hs_core.Tape.stats]). *)

type per_job = { runs : int; migrations : int; preemptions : int }

type t = {
  per_job : per_job array;
  migrations : int;  (** schedule-wide total *)
  preemptions : int;  (** schedule-wide total *)
  stops : int;  (** migrations + preemptions *)
}

val of_schedule : ?njobs:int -> Schedule.t -> t
(** [njobs] forces the length of [per_job] when trailing jobs have no
    segments. *)

val pp : Format.formatter -> t -> unit
