(** Assignments of jobs to affinity masks, and the feasibility algebra of
    (IP-2) for {e integral} assignments.

    An assignment is the combinatorial object the paper's first
    subproblem produces: a map job → set.  Theorem IV.3 says the
    constraints (2a)–(2c) are sufficient as well as necessary, so the
    minimum makespan of an integral assignment is computable in closed
    form ({!min_makespan}); the scheduling algorithms then realise it. *)

open Hs_laminar

type t = int array
(** [a.(j)] is the set id of job [j]'s affinity mask. *)

(** All assigned masks exist and have finite processing time. *)
let well_formed inst a =
  Array.length a = Instance.njobs inst
  && Array.for_all (fun s -> s >= 0 && s < Laminar.size (Instance.laminar inst)) a
  &&
  let ok = ref true in
  Array.iteri
    (fun j s -> if not (Ptime.is_fin (Instance.ptime inst ~job:j ~set:s)) then ok := false)
    a;
  !ok

(** Direct volume of a set: [Σ_{j : a(j) = set} P_j(set)]. *)
let volume inst a ~set =
  let v = ref 0 in
  Array.iteri
    (fun j s -> if s = set then v := !v + Ptime.value_exn (Instance.ptime inst ~job:j ~set:s))
    a;
  !v

(** Subtree volume of constraint (2b): [Σ_j Σ_{β ⊆ α} p_βj x_βj]. *)
let subtree_volume inst a ~set =
  let lam = Instance.laminar inst in
  List.fold_left (fun acc b -> acc + volume inst a ~set:b) 0 (Laminar.descendants lam set)

(** Maximum single processing time used by the assignment (constraint 2c). *)
let max_ptime inst a =
  let best = ref 0 in
  Array.iteri
    (fun j s ->
      let v = Ptime.value_exn (Instance.ptime inst ~job:j ~set:s) in
      if v > !best then best := v)
    a;
  !best

(** Minimum feasible makespan of the assignment: by Theorem IV.3,
    [max (max_j p_{a(j)j}, max_α ⌈S_α / |α|⌉)] where [S_α] is the subtree
    volume.  Raises if the assignment is not {!well_formed}. *)
let min_makespan inst a =
  if not (well_formed inst a) then invalid_arg "Assignment.min_makespan: ill-formed";
  let lam = Instance.laminar inst in
  let best = ref (max_ptime inst a) in
  List.iter
    (fun set ->
      let s = subtree_volume inst a ~set in
      let k = Laminar.card lam set in
      let need = (s + k - 1) / k in
      if need > !best then best := need)
    (Laminar.bottom_up lam);
  !best

(** The (IP-2) feasibility test for a given horizon. *)
let feasible inst a ~tmax = well_formed inst a && min_makespan inst a <= tmax

let pp fmt a =
  Format.fprintf fmt "@[<h>[%s]@]"
    (String.concat "; "
       (Array.to_list (Array.mapi (fun j s -> Printf.sprintf "%d->#%d" j s) a)))
