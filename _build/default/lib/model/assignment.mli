(** Assignments of jobs to affinity masks, and the feasibility algebra of
    (IP-2) for integral assignments.

    Theorem IV.3 makes the constraints (2a)–(2c) sufficient as well as
    necessary, so the minimum makespan of an integral assignment is the
    closed form computed by {!min_makespan}; the schedulers then realise
    exactly that horizon. *)

type t = int array
(** [a.(job)] is the set id of the job's affinity mask. *)

val well_formed : Instance.t -> t -> bool
(** Right length, masks in range, and every assigned mask finite. *)

val volume : Instance.t -> t -> set:int -> int
(** Direct volume: [Σ_{j : a(j) = set} P_j(set)]. *)

val subtree_volume : Instance.t -> t -> set:int -> int
(** Constraint (2b)'s left-hand side: [Σ_j Σ_{β ⊆ α} p_{βj} x_{βj}]. *)

val max_ptime : Instance.t -> t -> int
(** Largest single processing time used (constraint (2c)). *)

val min_makespan : Instance.t -> t -> int
(** [max (max_j p_{a(j)j}, max_α ⌈subtree α / |α|⌉)] — the minimum
    horizon admitting a valid schedule for this assignment
    (Theorem IV.3).  Raises [Invalid_argument] if not {!well_formed}. *)

val feasible : Instance.t -> t -> tmax:int -> bool
(** The (IP-2) feasibility test at a given horizon. *)

val pp : Format.formatter -> t -> unit
