lib/model/schedule.ml: Array Format Hs_laminar Instance Laminar List Printf Ptime Result Stdlib
