lib/model/ptime.mli: Format
