lib/model/assignment.ml: Array Format Hs_laminar Instance Laminar List Printf Ptime String
