lib/model/general_instance.mli: Instance Ptime
