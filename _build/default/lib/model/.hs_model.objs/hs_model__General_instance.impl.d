lib/model/general_instance.ml: Array Instance List Printf Ptime
