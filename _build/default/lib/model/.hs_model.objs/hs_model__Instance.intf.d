lib/model/instance.mli: Format Hs_laminar Laminar Ptime
