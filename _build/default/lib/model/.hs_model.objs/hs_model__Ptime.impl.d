lib/model/ptime.ml: Format Stdlib
