lib/model/gantt.ml: Array Buffer Char List Printf Schedule Stdlib
