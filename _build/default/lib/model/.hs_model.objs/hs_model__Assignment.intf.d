lib/model/assignment.mli: Format Instance
