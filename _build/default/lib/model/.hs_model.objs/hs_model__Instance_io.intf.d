lib/model/instance_io.mli: Instance
