lib/model/instance_io.ml: Array Buffer Hs_laminar In_channel Instance Laminar List Out_channel Printf Ptime String
