lib/model/schedule.mli: Assignment Format Instance
