lib/model/gantt.mli: Schedule
