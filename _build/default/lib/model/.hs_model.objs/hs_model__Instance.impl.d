lib/model/instance.ml: Array Format Hs_laminar Laminar Printf Ptime Topology
