(** Instances with {e arbitrary} (possibly non-laminar) admissible
    families, used only by the Section II 8-approximation (experiment T6).
    The hierarchical machinery does not apply here; what the paper gives
    us is the reduction to unrelated machines, which {!to_unrelated}
    implements:  [p'_ij = min { P_j(α) : i ∈ α ∈ A }]. *)

type t = {
  m : int;
  sets : int array array;  (** each sorted; need not be laminar *)
  p : Ptime.t array array;  (** [p.(j).(k)] = P_j(sets.(k)) *)
}

let make ~m ~sets ~p =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let sets = Array.of_list (List.map (fun s -> Array.of_list (List.sort_uniq compare s)) sets) in
  let bad = ref None in
  Array.iteri
    (fun k s ->
      if Array.length s = 0 then bad := Some (Printf.sprintf "set %d empty" k);
      Array.iter (fun i -> if i < 0 || i >= m then bad := Some (Printf.sprintf "set %d out of range" k)) s)
    sets;
  (* Monotonicity across all subset pairs. *)
  let subset a b = Array.for_all (fun x -> Array.exists (( = ) x) b) a in
  Array.iteri
    (fun j row ->
      if Array.length row <> Array.length sets then
        bad := Some (Printf.sprintf "job %d: wrong arity" j)
      else
        Array.iteri
          (fun k1 p1 ->
            Array.iteri
              (fun k2 p2 ->
                if k1 <> k2 && subset sets.(k1) sets.(k2) && not (Ptime.leq p1 p2) then
                  bad := Some (Printf.sprintf "job %d not monotone on sets %d ⊆ %d" j k1 k2))
              row)
          row)
    p;
  match !bad with Some msg -> err "general instance: %s" msg | None -> Ok { m; sets; p }

let make_exn ~m ~sets ~p =
  match make ~m ~sets ~p with Ok t -> t | Error e -> invalid_arg e

let njobs t = Array.length t.p
let nmachines t = t.m

(** The reduction of Section II: an unrelated-machines instance whose
    optimal {e preemptive} makespan lower-bounds the optimum of the
    original instance. *)
let to_unrelated t =
  let n = njobs t in
  let times =
    Array.init n (fun j ->
        Array.init t.m (fun i ->
            let best = ref Ptime.Inf in
            Array.iteri
              (fun k s ->
                if Array.exists (( = ) i) s then best := Ptime.min !best t.p.(j).(k))
              t.sets;
            !best))
  in
  Instance.unrelated times

(** Minimal admissible set (by cardinality) containing machine [i] that
    attains the reduced processing time of job [j]; used to lift a
    partitioned solution of the reduced instance back to the original
    family. *)
let witness_set t ~job ~machine =
  let best = ref None in
  Array.iteri
    (fun k s ->
      if Array.exists (( = ) machine) s then
        match !best with
        | None -> best := Some k
        | Some b ->
            let better =
              Ptime.compare t.p.(job).(k) t.p.(job).(b) < 0
              || Ptime.equal t.p.(job).(k) t.p.(job).(b)
                 && Array.length s < Array.length t.sets.(b)
            in
            if better then best := Some k)
    t.sets;
  !best
