(** ASCII Gantt charts for schedules.

    One row per machine, one column per time unit (rescaled when the
    horizon exceeds [max_width]); each cell shows the job occupying the
    machine at that instant, [.] for idle.  Jobs are labelled 0-9 then
    a-z then A-Z, cycling with a [*] marker beyond 62 jobs. *)

let job_label j =
  if j < 10 then Char.chr (Char.code '0' + j)
  else if j < 36 then Char.chr (Char.code 'a' + j - 10)
  else if j < 62 then Char.chr (Char.code 'A' + j - 36)
  else '*'

let render ?(max_width = 100) (sched : Schedule.t) =
  let horizon = Stdlib.max 1 (Schedule.horizon sched) in
  let machines =
    List.fold_left
      (fun acc (s : Schedule.segment) -> Stdlib.max acc (s.machine + 1))
      1 (Schedule.segments sched)
  in
  (* scale: each column covers [scale] time units *)
  let scale = (horizon + max_width - 1) / max_width in
  let width = (horizon + scale - 1) / scale in
  let grid = Array.make_matrix machines width '.' in
  List.iter
    (fun (s : Schedule.segment) ->
      for c = s.start / scale to (s.stop - 1) / scale do
        if c < width then
          grid.(s.machine).(c) <-
            (if grid.(s.machine).(c) = '.' || grid.(s.machine).(c) = job_label s.job then
               job_label s.job
             else '#' (* two jobs share a rescaled cell *))
      done)
    (Schedule.segments sched);
  let buf = Buffer.create ((machines + 2) * (width + 16)) in
  Buffer.add_string buf
    (Printf.sprintf "time 0..%d%s\n" horizon
       (if scale > 1 then Printf.sprintf " (1 char = %d units)" scale else ""));
  Array.iteri
    (fun i row ->
      Buffer.add_string buf (Printf.sprintf "m%-3d |" i);
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_string buf "|\n")
    grid;
  Buffer.contents buf

let print ?max_width sched = print_string (render ?max_width sched)
