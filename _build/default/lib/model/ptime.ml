(** Processing times with an explicit top element.

    The paper writes "∞ represents a sufficiently large constant" for
    job/mask pairs that must never be used; we model it exactly with a
    dedicated constructor instead of a magic number so that monotonicity
    checks and the pruning of Section V ([pαj > T ⇒ xαj = 0]) stay
    honest. *)

type t = Fin of int | Inf

let fin v =
  if v < 0 then invalid_arg "Ptime.fin: negative processing time";
  Fin v

let inf = Inf
let is_fin = function Fin _ -> true | Inf -> false

let value = function Fin v -> Some v | Inf -> None

let value_exn = function
  | Fin v -> v
  | Inf -> failwith "Ptime.value_exn: infinite processing time"

let compare a b =
  match (a, b) with
  | Fin x, Fin y -> Stdlib.compare x y
  | Fin _, Inf -> -1
  | Inf, Fin _ -> 1
  | Inf, Inf -> 0

let equal a b = compare a b = 0
let leq a b = compare a b <= 0

let min a b = if leq a b then a else b
let max a b = if leq a b then b else a

(** [fits t ~tmax] is the Section V membership test [(α,j) ∈ R]:
    the processing time is finite and at most [tmax]. *)
let fits t ~tmax = match t with Fin v -> v <= tmax | Inf -> false

let to_string = function Fin v -> string_of_int v | Inf -> "inf"
let pp fmt t = Format.pp_print_string fmt (to_string t)
