(** Preemption and migration accounting from a concrete schedule.

    For each job, execution is sorted into maximal contiguous runs (same
    machine, time-adjacent); every boundary between consecutive runs is a
    {e stop}: a {e migration} when the next run is on a different
    machine, otherwise a {e preemption}.

    Note on Proposition III.2: the paper's [m-1] migration bound counts
    along the wrap-around {e tape}, where a block crossing the horizon is
    contiguous and its cut is a preemption.  Chronological counting (this
    module) is a rotation of tape order for wrapped jobs, so individual
    labels can shift between the migration and preemption buckets — the
    {e total} number of stops is identical under both accountings, and
    the tape-order split is reported by the schedulers themselves
    ([Hs_core.Tape.laid]). *)

type per_job = { runs : int; migrations : int; preemptions : int }

type t = {
  per_job : per_job array;
  migrations : int;  (** schedule-wide total *)
  preemptions : int;  (** schedule-wide total *)
  stops : int;  (** migrations + preemptions *)
}

let of_schedule ?(njobs = 0) (sched : Schedule.t) =
  let sched = Schedule.coalesce sched in
  let n =
    List.fold_left (fun acc (s : Schedule.segment) -> Stdlib.max acc (s.job + 1)) njobs
      (Schedule.segments sched)
  in
  let per_job =
    Array.init n (fun j ->
        let runs =
          List.filter (fun (s : Schedule.segment) -> s.job = j) (Schedule.segments sched)
          |> List.sort (fun (a : Schedule.segment) b -> compare a.start b.start)
        in
        let rec walk migr preempt = function
          | (a : Schedule.segment) :: (b :: _ as rest) ->
              if a.machine <> b.machine then walk (migr + 1) preempt rest
              else walk migr (preempt + 1) rest
          | [ _ ] | [] -> (migr, preempt)
        in
        let migrations, preemptions = walk 0 0 runs in
        { runs = List.length runs; migrations; preemptions })
  in
  let migrations = Array.fold_left (fun acc (pj : per_job) -> acc + pj.migrations) 0 per_job in
  let preemptions = Array.fold_left (fun acc (pj : per_job) -> acc + pj.preemptions) 0 per_job in
  { per_job; migrations; preemptions; stops = migrations + preemptions }

let pp fmt t =
  Format.fprintf fmt "migrations=%d preemptions=%d stops=%d" t.migrations t.preemptions
    t.stops
