(** ASCII Gantt charts for schedules.

    One row per machine, one column per time unit (rescaled when the
    horizon exceeds [max_width]); each cell shows the job occupying the
    machine, [.] for idle, [#] when rescaling makes two jobs share a
    cell. *)

val job_label : int -> char
(** [0-9], then [a-z], then [A-Z], then [*]. *)

val render : ?max_width:int -> Schedule.t -> string

val print : ?max_width:int -> Schedule.t -> unit
(** [render] to standard output. *)
