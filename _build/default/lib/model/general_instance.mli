(** Instances with arbitrary (possibly non-laminar) admissible families.

    The hierarchical machinery of Sections III–V does not apply here;
    what the paper gives for this case (Section II) is the reduction to
    unrelated machines behind the 8-approximation, which {!to_unrelated}
    implements. *)

type t

val make :
  m:int -> sets:int list list -> p:Ptime.t array array -> (t, string) result
(** [p.(job).(set_index)]; validates ranges and monotonicity across all
    subset pairs of the (arbitrary) family. *)

val make_exn : m:int -> sets:int list list -> p:Ptime.t array array -> t
val njobs : t -> int
val nmachines : t -> int

val to_unrelated : t -> Instance.t
(** The Section II reduction: [p'_{ij} = min { P_j(α) : i ∈ α ∈ A }].
    Its optimal preemptive makespan lower-bounds the original optimum. *)

val witness_set : t -> job:int -> machine:int -> int option
(** Cheapest (then smallest) admissible set containing [machine] for
    [job] — used to lift a partitioned solution of the reduced instance
    back to the original family. *)
