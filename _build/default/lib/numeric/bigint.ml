(* Sign-magnitude arbitrary-precision integers.

   Magnitudes are little-endian arrays of limbs in base 2^24.  The base is
   chosen so that a two-limb window (used by the division routine) and a
   limb product plus carries fit in a 63-bit native int.  Invariants:
   - no trailing (most-significant) zero limb,
   - [sign = 0] iff the magnitude is empty, otherwise [sign] is [1]/[-1]. *)

type t = { sign : int; mag : int array }

let base_bits = 24
let base = 1 lsl base_bits
let base_mask = base - 1

let zero = { sign = 0; mag = [||] }
let one = { sign = 1; mag = [| 1 |] }
let minus_one = { sign = -1; mag = [| 1 |] }

let check_invariant x =
  let n = Array.length x.mag in
  let trimmed = n = 0 || x.mag.(n - 1) <> 0 in
  let in_range = Array.for_all (fun l -> l >= 0 && l < base) x.mag in
  let sign_ok =
    if n = 0 then x.sign = 0 else x.sign = 1 || x.sign = -1
  in
  trimmed && in_range && sign_ok

(* Drop most-significant zero limbs and fix the sign of a raw magnitude. *)
let normalize sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do decr n done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

let sign x = x.sign
let is_zero x = x.sign = 0

let of_int k =
  if k = 0 then zero
  else
    let s = if k > 0 then 1 else -1 in
    (* Work on the non-positive value to avoid [abs min_int] overflow:
       for k <= 0, |k| = sum of (-(k mod base)) * base^i with k := k / base. *)
    let rec limbs k = if k = 0 then [] else - (k mod base) :: limbs (k / base) in
    let l = limbs (if k > 0 then -k else k) in
    { sign = s; mag = Array.of_list l }

let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let compare x y =
  if x.sign <> y.sign then Stdlib.compare x.sign y.sign
  else
    match x.sign with
    | 0 -> 0
    | 1 -> compare_mag x.mag y.mag
    | _ -> compare_mag y.mag x.mag

let equal x y = compare x y = 0
let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y

let to_int x =
  (* Accumulate towards negative to cover min_int. *)
  let n = Array.length x.mag in
  let rec go i acc =
    if i < 0 then Some acc
    else if acc < (Stdlib.min_int + x.mag.(i)) / base then None
    else go (i - 1) ((acc * base) - x.mag.(i))
  in
  match go (n - 1) 0 with
  | None -> None
  | Some neg ->
      if x.sign >= 0 then if neg = Stdlib.min_int then None else Some (-neg)
      else Some neg

let to_int_exn x =
  match to_int x with
  | Some k -> k
  | None -> failwith "Bigint.to_int_exn: out of native range"

(* Magnitude addition: |a| + |b|. *)
let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r

(* Magnitude subtraction: |a| - |b|, requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then normalize x.sign (add_mag x.mag y.mag)
  else
    let c = compare_mag x.mag y.mag in
    if c = 0 then zero
    else if c > 0 then normalize x.sign (sub_mag x.mag y.mag)
    else normalize y.sign (sub_mag y.mag x.mag)

let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let sub x y = add x (neg y)
let abs x = if x.sign < 0 then neg x else x

let mul_mag_school a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let t = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- t land base_mask;
          carry := t lsr base_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let t = r.(!k) + !carry in
          r.(!k) <- t land base_mask;
          carry := t lsr base_bits;
          incr k
        done
      end
    done;
    r
  end

(* Trim most-significant zero limbs of a raw magnitude. *)
let trim_mag m =
  let n = ref (Array.length m) in
  while !n > 0 && m.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length m then m else Array.sub m 0 !n

(* Karatsuba multiplication above this limb count (tuned; exact LP
   pivoting produces operands of hundreds of limbs where the O(n^1.585)
   split pays off). *)
let karatsuba_threshold = 24

let rec mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else if Stdlib.min la lb < karatsuba_threshold then mul_mag_school a b
  else begin
    (* split at half the larger operand: x = x1·B^k + x0 *)
    let k = (Stdlib.max la lb + 1) / 2 in
    let lo m = trim_mag (Array.sub m 0 (Stdlib.min k (Array.length m))) in
    let hi m =
      if Array.length m <= k then [||] else Array.sub m k (Array.length m - k)
    in
    let a0 = lo a and a1 = hi a and b0 = lo b and b1 = hi b in
    let z0 = mul_mag a0 b0 in
    let z2 = mul_mag a1 b1 in
    let s1 = add_mag a0 a1 and s2 = add_mag b0 b1 in
    let z1 = sub_mag (trim_mag (mul_mag (trim_mag s1) (trim_mag s2))) (trim_mag (add_mag z0 z2)) in
    (* r = z0 + z1·B^k + z2·B^2k *)
    let r = Array.make (la + lb + 1) 0 in
    let add_at off m =
      let carry = ref 0 in
      let lm = Array.length m in
      let i = ref 0 in
      while !i < lm || !carry <> 0 do
        let t = r.(off + !i) + (if !i < lm then m.(!i) else 0) + !carry in
        r.(off + !i) <- t land base_mask;
        carry := t lsr base_bits;
        incr i
      done
    in
    add_at 0 z0;
    add_at k (trim_mag z1);
    add_at (2 * k) z2;
    r
  end

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else normalize (x.sign * y.sign) (mul_mag x.mag y.mag)

let mul_int x k = mul x (of_int k)
let add_int x k = add x (of_int k)

(* Shift a magnitude left by [s] bits (0 <= s < base_bits). *)
let shift_left_bits mag s =
  let n = Array.length mag in
  if s = 0 then Array.append mag [| 0 |]
  else begin
    let r = Array.make (n + 1) 0 in
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let t = (mag.(i) lsl s) lor !carry in
      r.(i) <- t land base_mask;
      carry := t lsr base_bits
    done;
    r.(n) <- !carry;
    r
  end

(* Shift a magnitude right by [s] bits (0 <= s < base_bits). *)
let shift_right_bits mag s =
  let n = Array.length mag in
  if s = 0 then Array.copy mag
  else begin
    let r = Array.make n 0 in
    for i = 0 to n - 1 do
      let lo = mag.(i) lsr s in
      let hi = if i + 1 < n then (mag.(i + 1) lsl (base_bits - s)) land base_mask else 0 in
      r.(i) <- lo lor hi
    done;
    r
  end

(* Short division of a magnitude by a single limb 0 < d < base. *)
let divmod_mag_small u d =
  let n = Array.length u in
  let q = Array.make n 0 in
  let rem = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor u.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (q, !rem)

(* Knuth's Algorithm D on magnitudes; requires |u| >= |v|, length v >= 2. *)
let divmod_mag_long u v =
  let n = Array.length v in
  let mlen = Array.length u - n in
  (* Normalisation shift: make the top limb of v >= base/2. *)
  let s =
    let top = v.(n - 1) in
    let rec go s = if top lsl s >= base / 2 then s else go (s + 1) in
    go 0
  in
  let vn = Array.sub (shift_left_bits v s) 0 n in
  let un = shift_left_bits u s in
  (* [un] has length (Array.length u) + 1 = mlen + n + 1. *)
  let q = Array.make (mlen + 1) 0 in
  for j = mlen downto 0 do
    (* Estimate the quotient limb from the top two limbs. *)
    let num = (un.(j + n) lsl base_bits) lor un.(j + n - 1) in
    let qhat = ref (num / vn.(n - 1)) in
    let rhat = ref (num mod vn.(n - 1)) in
    let continue_correcting = ref true in
    while !continue_correcting do
      if
        !qhat >= base
        || !qhat * vn.(n - 2) > (!rhat lsl base_bits) lor un.(j + n - 2)
      then begin
        decr qhat;
        rhat := !rhat + vn.(n - 1);
        if !rhat >= base then continue_correcting := false
      end
      else continue_correcting := false
    done;
    (* Multiply and subtract qhat * vn from un[j .. j+n]. *)
    let borrow = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * vn.(i)) + !borrow in
      let sb = un.(j + i) - (p land base_mask) in
      if sb < 0 then begin
        un.(j + i) <- sb + base;
        borrow := (p lsr base_bits) + 1
      end
      else begin
        un.(j + i) <- sb;
        borrow := p lsr base_bits
      end
    done;
    let top = un.(j + n) - !borrow in
    if top < 0 then begin
      (* qhat was one too large: add vn back. *)
      un.(j + n) <- top + base;
      decr qhat;
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let t = un.(j + i) + vn.(i) + !carry in
        un.(j + i) <- t land base_mask;
        carry := t lsr base_bits
      done;
      un.(j + n) <- (un.(j + n) + !carry) land base_mask
    end
    else un.(j + n) <- top;
    q.(j) <- !qhat
  done;
  let r = shift_right_bits (Array.sub un 0 n) s in
  (q, r)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else if compare_mag a.mag b.mag < 0 then (zero, a)
  else begin
    let qmag, rmag =
      if Array.length b.mag = 1 then begin
        let q, r = divmod_mag_small a.mag b.mag.(0) in
        (q, if r = 0 then [||] else [| r |])
      end
      else divmod_mag_long a.mag b.mag
    in
    (normalize (a.sign * b.sign) qmag, normalize a.sign rmag)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let fdiv a b =
  let q, r = divmod a b in
  if is_zero r || sign r = sign b then q else sub q one

let cdiv a b =
  let q, r = divmod a b in
  if is_zero r || sign r <> sign b then q else add q one

let rec gcd_aux a b = if is_zero b then a else gcd_aux b (rem a b)
let gcd a b = gcd_aux (abs a) (abs b)

let pow x k =
  if k < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b k =
    if k = 0 then acc
    else
      let acc = if k land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (k lsr 1)
  in
  go one x k

(* Decimal chunking constant: the largest power of ten below the base,
   so short division/multiplication by it stays single-limb. *)
let dec_chunk = 10_000_000
let dec_digits = 7

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go mag acc =
      if Array.length mag = 0 then acc
      else
        let q, r = divmod_mag_small mag dec_chunk in
        let q = (normalize 1 q).mag in
        go q (r :: acc)
    in
    match go x.mag [] with
    | [] -> "0"
    | first :: rest ->
        if x.sign < 0 then Buffer.add_char buf '-';
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%07d" c)) rest;
        Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let negative, start =
    match s.[0] with '-' -> (true, 1) | '+' -> (false, 1) | _ -> (false, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let chunk = ref 0 and chunk_len = ref 0 in
  for i = start to len - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string: invalid digit";
    chunk := (!chunk * 10) + (Char.code c - Char.code '0');
    incr chunk_len;
    if !chunk_len = dec_digits then begin
      acc := add_int (mul_int !acc dec_chunk) !chunk;
      chunk := 0;
      chunk_len := 0
    end
  done;
  if !chunk_len > 0 then begin
    let scale = int_of_float (10. ** float_of_int !chunk_len) in
    acc := add_int (mul_int !acc scale) !chunk
  end;
  if negative then neg !acc else !acc

let to_float x =
  let n = Array.length x.mag in
  let rec go i acc = if i < 0 then acc else go (i - 1) ((acc *. float_of_int base) +. float_of_int x.mag.(i)) in
  let m = go (n - 1) 0. in
  if x.sign < 0 then -.m else m

let pp fmt x = Format.pp_print_string fmt (to_string x)
