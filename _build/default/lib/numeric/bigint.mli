(** Arbitrary-precision signed integers.

    Built from scratch because [zarith] is not available in this
    environment.  The representation is sign-magnitude with little-endian
    limbs in base [2^24], so every intermediate product of two limbs fits
    comfortably in OCaml's 63-bit native [int].

    The module provides exactly the operations required by the exact
    rational field {!Q} and the simplex solver built on top of it:
    ring arithmetic, Euclidean division, gcd, comparisons and (decimal)
    conversions. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val minus_one : t

(** {1 Conversions} *)

(** [of_int k] converts a native integer (including [min_int]). *)
val of_int : int -> t

(** [to_int x] is [Some k] when [x] fits in a native [int]. *)
val to_int : t -> int option

(** [to_int_exn x] raises [Failure] when [x] does not fit in an [int]. *)
val to_int_exn : t -> int

(** [of_string s] parses an optionally signed decimal literal.
    Raises [Invalid_argument] on malformed input. *)
val of_string : string -> t

(** [to_string x] is the decimal representation of [x]. *)
val to_string : t -> string

(** [to_float x] is a double-precision approximation of [x]. *)
val to_float : t -> float

(** {1 Predicates and comparisons} *)

(** [sign x] is [-1], [0] or [1]. *)
val sign : t -> int

val is_zero : t -> bool
val equal : t -> t -> bool

(** Total order compatible with the integer order. *)
val compare : t -> t -> int

val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [divmod a b] is [(q, r)] with [a = q*b + r], [q] truncated towards
    zero and [sign r = sign a] (or [r = 0]); i.e. C-style division.
    Raises [Division_by_zero] when [b] is zero. *)
val divmod : t -> t -> t * t

(** Truncating quotient, as in {!divmod}. *)
val div : t -> t -> t

(** Remainder, as in {!divmod}. *)
val rem : t -> t -> t

(** [fdiv a b] is the quotient rounded towards negative infinity. *)
val fdiv : t -> t -> t

(** [cdiv a b] is the quotient rounded towards positive infinity. *)
val cdiv : t -> t -> t

(** [gcd a b] is the non-negative greatest common divisor; [gcd 0 0 = 0]. *)
val gcd : t -> t -> t

(** [mul_int x k] multiplies by a native integer. *)
val mul_int : t -> int -> t

(** [add_int x k] adds a native integer. *)
val add_int : t -> int -> t

(** [pow x k] raises to a non-negative native power.
    Raises [Invalid_argument] when [k < 0]. *)
val pow : t -> int -> t

(** {1 Pretty-printing} *)

val pp : Format.formatter -> t -> unit

(** {1 Internal consistency} *)

(** [check_invariant x] verifies the sign/magnitude representation
    invariants; used by the test-suite. *)
val check_invariant : t -> bool
