lib/numeric/q.ml: Bigint Format Stdlib String
