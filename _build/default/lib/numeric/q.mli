(** Exact rational numbers over {!Bigint}.

    Values are kept in canonical form: the denominator is positive and
    coprime with the numerator, and zero is represented as [0/1].  This is
    the coefficient field used by the exact simplex solver, so LP
    feasibility answers (and therefore the binary search of Theorem V.2)
    are certified rather than subject to floating-point tolerances. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val minus_one : t

(** {1 Constructors} *)

(** [make num den] is the normalised rational [num/den].
    Raises [Division_by_zero] when [den] is zero. *)
val make : Bigint.t -> Bigint.t -> t

val of_bigint : Bigint.t -> t
val of_int : int -> t

(** [of_ints a b] is [a/b]. Raises [Division_by_zero] when [b = 0]. *)
val of_ints : int -> int -> t

(** Parses ["a"], ["a/b"] or a decimal such as ["1.25"] exactly. *)
val of_string : string -> t

(** {1 Accessors} *)

val num : t -> Bigint.t
val den : t -> Bigint.t

(** {1 Predicates and comparisons} *)

val sign : t -> int
val is_zero : t -> bool

(** [is_integer x] holds when the denominator is one. *)
val is_integer : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t
val leq : t -> t -> bool
val lt : t -> t -> bool
val geq : t -> t -> bool
val gt : t -> t -> bool

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Raises [Division_by_zero] when the divisor is zero. *)
val div : t -> t -> t

(** Multiplicative inverse. Raises [Division_by_zero] on zero. *)
val inv : t -> t

val mul_int : t -> int -> t
val div_int : t -> int -> t

(** {1 Rounding} *)

(** Largest integer below or equal. *)
val floor : t -> Bigint.t

(** Smallest integer above or equal. *)
val ceil : t -> Bigint.t

(** [floor_int]/[ceil_int] additionally convert to a native [int];
    they raise [Failure] when out of range. *)
val floor_int : t -> int

val ceil_int : t -> int

(** {1 Conversions} *)

val to_float : t -> float
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Operators}

    A local-open-friendly operator module: [Q.Infix.(a + b * c)]. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
