(* Canonical rationals: positive denominator, coprime components. *)

module B = Bigint

type t = { n : B.t; d : B.t }

let zero = { n = B.zero; d = B.one }
let one = { n = B.one; d = B.one }
let minus_one = { n = B.minus_one; d = B.one }

let make num den =
  if B.is_zero den then raise Division_by_zero;
  if B.is_zero num then zero
  else begin
    let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
    let g = B.gcd num den in
    if B.equal g B.one then { n = num; d = den }
    else { n = B.div num g; d = B.div den g }
  end

let of_bigint n = { n; d = B.one }
let of_int k = of_bigint (B.of_int k)
let of_ints a b = make (B.of_int a) (B.of_int b)

let num x = x.n
let den x = x.d
let sign x = B.sign x.n
let is_zero x = B.is_zero x.n
let is_integer x = B.equal x.d B.one

let compare x y =
  (* Cheap same-denominator and sign short-cuts before cross-multiplying. *)
  let sx = sign x and sy = sign y in
  if sx <> sy then Stdlib.compare sx sy
  else if B.equal x.d y.d then B.compare x.n y.n
  else B.compare (B.mul x.n y.d) (B.mul y.n x.d)

let equal x y = compare x y = 0
let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y
let leq x y = compare x y <= 0
let lt x y = compare x y < 0
let geq x y = compare x y >= 0
let gt x y = compare x y > 0

let neg x = { x with n = B.neg x.n }
let abs x = { x with n = B.abs x.n }

let add x y =
  if is_zero x then y
  else if is_zero y then x
  else if B.equal x.d y.d then make (B.add x.n y.n) x.d
  else make (B.add (B.mul x.n y.d) (B.mul y.n x.d)) (B.mul x.d y.d)

let sub x y = add x (neg y)

let mul x y =
  if is_zero x || is_zero y then zero
  else begin
    (* Cross-reduce before multiplying to keep intermediates small. *)
    let g1 = B.gcd x.n y.d and g2 = B.gcd y.n x.d in
    let n = B.mul (B.div x.n g1) (B.div y.n g2) in
    let d = B.mul (B.div x.d g2) (B.div y.d g1) in
    { n; d }
  end

let inv x =
  if is_zero x then raise Division_by_zero;
  if B.sign x.n < 0 then { n = B.neg x.d; d = B.neg x.n } else { n = x.d; d = x.n }

let div x y = mul x (inv y)
let mul_int x k = mul x (of_int k)
let div_int x k = div x (of_int k)

let floor x = B.fdiv x.n x.d
let ceil x = B.cdiv x.n x.d
let floor_int x = B.to_int_exn (floor x)
let ceil_int x = B.to_int_exn (ceil x)

let to_float x = B.to_float x.n /. B.to_float x.d

let to_string x =
  if is_integer x then B.to_string x.n
  else B.to_string x.n ^ "/" ^ B.to_string x.d

let pp fmt x = Format.pp_print_string fmt (to_string x)

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
      let a = B.of_string (String.sub s 0 i) in
      let b = B.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      make a b
  | None -> (
      match String.index_opt s '.' with
      | None -> of_bigint (B.of_string s)
      | Some i ->
          let int_part = String.sub s 0 i in
          let frac = String.sub s (i + 1) (String.length s - i - 1) in
          if frac = "" then of_bigint (B.of_string int_part)
          else begin
            let scale = B.pow (B.of_int 10) (String.length frac) in
            let negative = String.length int_part > 0 && int_part.[0] = '-' in
            let whole =
              if int_part = "" || int_part = "-" || int_part = "+" then B.zero
              else B.of_string int_part
            in
            let fr = B.of_string frac in
            let mag = B.add (B.mul (B.abs whole) scale) fr in
            make (if negative then B.neg mag else mag) scale
          end)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) = lt
  let ( <= ) = leq
  let ( > ) = gt
  let ( >= ) = geq
end
