lib/sim/simulator.mli: Hs_laminar Hs_model Schedule
