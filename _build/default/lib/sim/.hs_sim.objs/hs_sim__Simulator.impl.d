lib/sim/simulator.ml: Array Hashtbl Hs_laminar Hs_model List Option Schedule Stdlib
