(* Cross-engine consistency: the float pipeline against the certified
   one, simulator ordering guarantees, and reference constants. *)

open Hs_model
open Hs_core
open Hs_workloads

let prop_float_t_lp_close_to_exact =
  (* The float LP binary search may drift by rounding, but on small
     well-conditioned instances it should land within one unit of the
     certified horizon and never certify below it by more than 1. *)
  QCheck.Test.make ~name:"float t_lp within 1 of certified t_lp" ~count:40
    Test_util.seed_arb (fun seed ->
      let inst = Test_util.random_instance ~max_m:4 ~max_n:6 seed in
      match (Approx.Exact.solve inst, Approx.Fast.solve inst) with
      | Ok e, Ok f -> abs (e.t_lp - f.t_lp) <= 1
      | Error _, Error _ -> true
      | _ -> false)

let prop_simulator_preserves_volume =
  (* Charged stalls never lose or duplicate work: per-job processing in
     the realised timeline equals the model's. *)
  QCheck.Test.make ~name:"simulator: stall is additive, never lost work" ~count:40
    Test_util.seed_arb (fun seed ->
      let inst, a = Test_util.random_assigned seed in
      let t = Assignment.min_makespan inst a in
      match Hierarchical.schedule inst a ~tmax:t with
      | Error _ -> false
      | Ok sched ->
          let lam = Instance.laminar inst in
          let latency = Hs_sim.Simulator.latency_of_levels lam [| 0; 2; 5; 9 |] in
          let r = Hs_sim.Simulator.run ~lam sched ~latency in
          r.realised_makespan >= Schedule.makespan sched
          && r.realised_makespan <= Schedule.makespan sched + r.total_stall)

let test_reference_constants () =
  (* Paper constants pinned down once more, via the exported values. *)
  Alcotest.(check int) "II.1 semi opt" 2 Families.example_ii1_semi_partitioned_opt;
  Alcotest.(check int) "II.1 unrelated opt" 3 Families.example_ii1_unrelated_opt;
  Alcotest.(check int) "V.1 hier opt at 10" 9 (Families.example_v1_hierarchical_opt 10);
  Alcotest.(check int) "V.1 unrelated opt at 10" 17 (Families.example_v1_unrelated_opt 10)

let prop_schedule_stats_consistent_between_schedulers =
  (* On semi-partitioned inputs the two schedulers may place jobs
     differently but both must respect the Prop. III.2 budget. *)
  QCheck.Test.make ~name:"both schedulers respect the stop budget" ~count:100
    Test_util.seed_arb (fun seed ->
      let inst, a = Test_util.random_semi_assigned seed in
      let m = Instance.nmachines inst in
      let t = Assignment.min_makespan inst a in
      match
        (Semi_partitioned.schedule_stats inst a ~tmax:t, Hierarchical.schedule_stats inst a ~tmax:t)
      with
      | Ok (_, s1), Ok (_, s2) ->
          Tape.stops s1 <= Stdlib.max 0 ((2 * m) - 2)
          && Tape.stops s2 <= Stdlib.max 0 ((2 * m) - 2)
      | _ -> false)

let prop_certified_infeasible_monotone =
  (* Certification must agree with plain feasibility on both sides of
     the boundary. *)
  QCheck.Test.make ~name:"certified_infeasible consistent with lp_feasible" ~count:40
    Test_util.seed_arb (fun seed ->
      let module I = Ilp.Make (Hs_lp.Field.Exact) in
      let inst, _ = Instance.with_singletons (Test_util.random_instance ~max_m:4 ~max_n:5 seed) in
      match I.min_feasible_t inst with
      | None -> false
      | Some (t, _) ->
          (not (I.certified_infeasible inst ~tmax:t))
          && (t = 0 || I.certified_infeasible inst ~tmax:(t - 1)))

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  let qt t = QCheck_alcotest.to_alcotest t in
  ( "consistency",
    [
      u "paper reference constants" test_reference_constants;
      qt prop_float_t_lp_close_to_exact;
      qt prop_simulator_preserves_volume;
      qt prop_schedule_stats_consistent_between_schedulers;
      qt prop_certified_infeasible_monotone;
    ] )
