(* Tests for the two-phase simplex over both field instances. *)

open Hs_lp
module Q = Hs_numeric.Q
module SQ = Simplex.Make (Field.Exact)
module SF = Simplex.Make (Field.Float)

let q = Q.of_int
let qq = Q.of_ints
let c ?name terms rel rhs = Lp_problem.constr ?name terms rel rhs

let expect_optimal = function
  | SQ.Optimal s -> s
  | SQ.Infeasible -> Alcotest.fail "unexpected infeasible"
  | SQ.Unbounded -> Alcotest.fail "unexpected unbounded"

let check_q msg expected actual =
  Alcotest.(check string) msg (Q.to_string expected) (Q.to_string actual)

let test_textbook_max () =
  (* max 3x+5y st x<=4, 2y<=12, 3x+2y<=18: opt 36 at (2,6). *)
  let p =
    Lp_problem.make ~nvars:2
      ~objective:[ (0, q 3); (1, q 5) ]
      [
        c [ (0, q 1) ] Le (q 4);
        c [ (1, q 2) ] Le (q 12);
        c [ (0, q 3); (1, q 2) ] Le (q 18);
      ]
  in
  let s = expect_optimal (SQ.solve ~maximize:true p) in
  check_q "objective" (q 36) s.objective;
  check_q "x" (q 2) s.x.(0);
  check_q "y" (q 6) s.x.(1)

let test_min_with_ge () =
  (* min 2x+3y st x+y>=4, x>=1: opt at (4,0) value 8. *)
  let p =
    Lp_problem.make ~nvars:2
      ~objective:[ (0, q 2); (1, q 3) ]
      [ c [ (0, q 1); (1, q 1) ] Ge (q 4); c [ (0, q 1) ] Ge (q 1) ]
  in
  let s = expect_optimal (SQ.solve p) in
  check_q "objective" (q 8) s.objective

let test_infeasible () =
  let p =
    Lp_problem.make ~nvars:2
      [ c [ (0, q 1); (1, q 1) ] Le (q 1); c [ (0, q 1); (1, q 1) ] Ge (q 3) ]
  in
  (match SQ.solve p with
  | SQ.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible");
  Alcotest.(check bool) "feasible = None" true (SQ.feasible p = None)

let test_unbounded () =
  let p =
    Lp_problem.make ~nvars:1 ~objective:[ (0, q 1) ] [ c [ (0, q 1) ] Ge (q 1) ]
  in
  match SQ.solve ~maximize:true p with
  | SQ.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_fractional_vertex () =
  let p =
    Lp_problem.make ~nvars:2 ~objective:[ (0, q 1) ]
      [ c [ (0, q 1); (1, q 1) ] Eq (q 1); c [ (0, q 2); (1, q 1) ] Le (qq 3 2) ]
  in
  let s = expect_optimal (SQ.solve ~maximize:true p) in
  check_q "x = 1/2" (qq 1 2) s.x.(0);
  check_q "y = 1/2" (qq 1 2) s.x.(1)

let test_negative_rhs_normalisation () =
  (* -x <= -2 is x >= 2. *)
  let p =
    Lp_problem.make ~nvars:1 ~objective:[ (0, q 1) ]
      [ c [ (0, q (-1)) ] Le (q (-2)); c [ (0, q 1) ] Le (q 5) ]
  in
  let s = expect_optimal (SQ.solve p) in
  check_q "x = 2" (q 2) s.x.(0)

let test_redundant_equalities () =
  let p =
    Lp_problem.make ~nvars:2
      [
        c [ (0, q 1); (1, q 1) ] Eq (q 2);
        c [ (0, q 2); (1, q 2) ] Eq (q 4);
        c [ (0, q 1) ] Le (q 2);
      ]
  in
  match SQ.feasible p with
  | Some s -> check_q "sum = 2" (q 2) (Q.add s.x.(0) s.x.(1))
  | None -> Alcotest.fail "expected feasible"

let test_duplicate_terms () =
  (* x + x <= 4 must read as 2x <= 4. *)
  let p =
    Lp_problem.make ~nvars:1 ~objective:[ (0, q 1) ]
      [ c [ (0, q 1); (0, q 1) ] Le (q 4) ]
  in
  let s = expect_optimal (SQ.solve ~maximize:true p) in
  check_q "x = 2" (q 2) s.x.(0)

let test_degenerate_cycling_guard () =
  (* A classically degenerate LP (Beale-like); Bland's rule must terminate. *)
  let p =
    Lp_problem.make ~nvars:4
      ~objective:
        [ (0, qq (-3) 4); (1, q 150); (2, qq (-1) 50); (3, q 6) ]
      [
        c [ (0, qq 1 4); (1, q (-60)); (2, qq (-1) 25); (3, q 9) ] Le (q 0);
        c [ (0, qq 1 2); (1, q (-90)); (2, qq (-1) 50); (3, q 3) ] Le (q 0);
        c [ (2, q 1) ] Le (q 1);
      ]
  in
  let s = expect_optimal (SQ.solve p) in
  check_q "objective" (qq (-1) 20) s.objective

let test_zero_variable_problem () =
  let p = Lp_problem.make ~nvars:1 [ c [] Le (q 3) ] in
  match SQ.feasible p with
  | Some _ -> ()
  | None -> Alcotest.fail "trivial problem must be feasible"

let test_var_out_of_range () =
  Alcotest.check_raises "range check"
    (Invalid_argument "Lp_problem.make: variable 3 out of range") (fun () ->
      ignore (Lp_problem.make ~nvars:2 [ c [ (3, q 1) ] Le (q 1) ]))

let test_float_instance_agrees () =
  let pf =
    Lp_problem.make ~nvars:2
      ~objective:[ (0, 3.); (1, 5.) ]
      [
        c [ (0, 1.) ] Le 4.;
        c [ (1, 2.) ] Le 12.;
        c [ (0, 3.); (1, 2.) ] Le 18.;
      ]
  in
  match SF.solve ~maximize:true pf with
  | SF.Optimal s -> Alcotest.(check (float 1e-6)) "objective" 36. s.objective
  | _ -> Alcotest.fail "float instance failed"

(* Property: solutions of randomly generated feasible systems actually
   satisfy the constraints, and systems infeasible by construction are
   reported as such. *)

let random_lp =
  let gen =
    QCheck.Gen.(
      let* nvars = int_range 1 6 in
      let* nrows = int_range 1 6 in
      let* x0 = list_size (return nvars) (int_range 0 10) in
      let* rows =
        list_size (return nrows) (list_size (return nvars) (int_range (-4) 6))
      in
      let* slacks = list_size (return nrows) (int_range 0 5) in
      return (nvars, x0, rows, slacks))
  in
  QCheck.make
    ~print:(fun (nv, x0, rows, _) ->
      Printf.sprintf "nvars=%d x0=[%s] rows=%d" nv
        (String.concat ";" (List.map string_of_int x0))
        (List.length rows))
    gen

let prop_feasible_by_construction =
  QCheck.Test.make ~name:"constructed-feasible systems solved" ~count:200 random_lp
    (fun (nvars, x0, rows, slacks) ->
      (* b := A x0 + slack ensures feasibility of { A x <= b, x >= 0 }. *)
      let constrs =
        List.map2
          (fun row slack ->
            let b = List.fold_left2 (fun acc a x -> acc + (a * x)) slack row x0 in
            c (List.mapi (fun i a -> (i, q a)) row) Le (q b))
          rows slacks
      in
      match SQ.feasible (Lp_problem.make ~nvars constrs) with
      | None -> false
      | Some s ->
          (* Verify the solution satisfies every constraint. *)
          List.for_all2
            (fun row slack ->
              let b = List.fold_left2 (fun acc a x -> acc + (a * x)) slack row x0 in
              let lhs =
                List.fold_left
                  (fun acc (i, a) -> Q.add acc (Q.mul (q a) s.x.(i)))
                  Q.zero
                  (List.mapi (fun i a -> (i, a)) row)
              in
              Q.leq lhs (q b) && Array.for_all (fun v -> Q.sign v >= 0) s.x)
            rows slacks)

let prop_infeasible_by_construction =
  QCheck.Test.make ~name:"constructed-infeasible systems rejected" ~count:200
    (QCheck.pair (QCheck.int_range 1 5) (QCheck.int_range 1 20))
    (fun (nvars, gap) ->
      (* sum x <= k and sum x >= k + gap is infeasible. *)
      let terms = List.init nvars (fun i -> (i, q 1)) in
      let p =
        Lp_problem.make ~nvars [ c terms Le (q 7); c terms Ge (q (7 + gap)) ]
      in
      SQ.feasible p = None)

let test_farkas_certificate () =
  let p =
    Lp_problem.make ~nvars:2
      [ c [ (0, q 1); (1, q 1) ] Le (q 1); c [ (0, q 1); (1, q 1) ] Ge (q 3) ]
  in
  match SQ.feasible_certified p with
  | SQ.Feasible _ -> Alcotest.fail "expected infeasible"
  | SQ.Infeasible_certificate y ->
      Alcotest.(check bool) "certificate validates" true (SQ.check_farkas p y);
      (* tampering must break it *)
      let bad = Array.map (fun v -> Q.neg v) y in
      Alcotest.(check bool) "tampered certificate rejected" false (SQ.check_farkas p bad)

let test_farkas_on_feasible () =
  let p = Lp_problem.make ~nvars:1 [ c [ (0, q 1) ] Le (q 5) ] in
  match SQ.feasible_certified p with
  | SQ.Feasible s -> Alcotest.(check bool) "x within bound" true (Q.leq s.x.(0) (q 5))
  | SQ.Infeasible_certificate _ -> Alcotest.fail "expected feasible"

let prop_infeasible_always_certified =
  QCheck.Test.make ~name:"infeasible systems carry a valid Farkas witness" ~count:200
    (QCheck.pair (QCheck.int_range 1 5) (QCheck.int_range 1 20))
    (fun (nvars, gap) ->
      let terms = List.init nvars (fun i -> (i, q 1)) in
      let p =
        Lp_problem.make ~nvars [ c terms Le (q 7); c terms Ge (q (7 + gap)) ]
      in
      match SQ.feasible_certified p with
      | SQ.Feasible _ -> false
      | SQ.Infeasible_certificate y -> SQ.check_farkas p y)

let prop_certified_agrees_with_feasible =
  QCheck.Test.make ~name:"feasible_certified agrees with feasible" ~count:150
    random_lp (fun (nvars, x0, rows, slacks) ->
      let constrs =
        List.map2
          (fun row slack ->
            let b = List.fold_left2 (fun acc a x -> acc + (a * x)) slack row x0 in
            c (List.mapi (fun i a -> (i, q a)) row) Le (q b))
          rows slacks
      in
      (* Mix in a >= row that may or may not be satisfiable. *)
      let extra = c (List.init nvars (fun i -> (i, q 1))) Ge (q (List.fold_left ( + ) 0 x0)) in
      let p = Lp_problem.make ~nvars (extra :: constrs) in
      match (SQ.feasible p, SQ.feasible_certified p) with
      | Some _, SQ.Feasible _ -> true
      | None, SQ.Infeasible_certificate y -> SQ.check_farkas p y
      | _ -> false)

let prop_optimal_beats_feasible_points =
  QCheck.Test.make ~name:"optimum dominates random feasible points" ~count:100
    random_lp (fun (nvars, x0, rows, slacks) ->
      let constrs =
        List.map2
          (fun row slack ->
            let b = List.fold_left2 (fun acc a x -> acc + (a * x)) slack row x0 in
            c (List.mapi (fun i a -> (i, q a)) row) Le (q b))
          rows slacks
      in
      (* Bound the feasible region so minimisation cannot be unbounded;
         minimise sum of variables. *)
      let box = List.init nvars (fun i -> c [ (i, q 1) ] Le (q 1000)) in
      let objective = List.init nvars (fun i -> (i, q 1)) in
      match SQ.solve (Lp_problem.make ~nvars ~objective (constrs @ box)) with
      | SQ.Optimal s ->
          let value_at pt =
            List.fold_left (fun acc x -> Q.add acc (q x)) Q.zero pt
          in
          Q.leq s.objective (value_at x0)
      | SQ.Unbounded -> false
      | SQ.Infeasible -> List.exists (fun x -> x > 1000) x0)

let test_optimality_certificate () =
  (* min 2x+3y st x+y>=4, x>=1: optimum 8 at (4,0); duals must certify. *)
  let p =
    Lp_problem.make ~nvars:2
      ~objective:[ (0, q 2); (1, q 3) ]
      [ c [ (0, q 1); (1, q 1) ] Ge (q 4); c [ (0, q 1) ] Ge (q 1) ]
  in
  match SQ.solve_certified p with
  | SQ.Certified_optimal cert ->
      check_q "objective" (q 8) cert.primal.objective;
      Alcotest.(check bool) "certificate verifies" true (SQ.check_optimal p cert);
      (* corrupting the duals must break verification *)
      let bad = { cert with SQ.duals = Array.map (fun v -> Q.add v Q.one) cert.SQ.duals } in
      Alcotest.(check bool) "tampered duals rejected" false (SQ.check_optimal p bad)
  | _ -> Alcotest.fail "expected certified optimum"

let prop_certified_optimum =
  QCheck.Test.make ~name:"optimality certificates verify" ~count:150 random_lp
    (fun (nvars, x0, rows, slacks) ->
      let constrs =
        List.map2
          (fun row slack ->
            let b = List.fold_left2 (fun acc a x -> acc + (a * x)) slack row x0 in
            c (List.mapi (fun i a -> (i, q a)) row) Le (q b))
          rows slacks
      in
      (* minimise a non-negative cost over the (nonempty) region *)
      let p =
        Lp_problem.make ~nvars
          ~objective:(List.init nvars (fun i -> (i, q (1 + (i mod 3)))))
          constrs
      in
      match SQ.solve_certified p with
      | SQ.Certified_optimal cert -> SQ.check_optimal p cert
      | SQ.Certified_infeasible _ -> false (* feasible by construction *)
      | SQ.Certified_unbounded -> false (* cost bounded below by 0 *))

let prop_pricing_rules_agree =
  (* Bland and Dantzig must reach the same optimal value (possibly via
     different vertices). *)
  QCheck.Test.make ~name:"Bland and Dantzig agree on the optimum" ~count:150 random_lp
    (fun (nvars, x0, rows, slacks) ->
      let constrs =
        List.map2
          (fun row slack ->
            let b = List.fold_left2 (fun acc a x -> acc + (a * x)) slack row x0 in
            c (List.mapi (fun i a -> (i, q a)) row) Le (q b))
          rows slacks
      in
      let box = List.init nvars (fun i -> c [ (i, q 1) ] Le (q 100)) in
      let p =
        Lp_problem.make ~nvars
          ~objective:(List.init nvars (fun i -> (i, q 1)))
          (constrs @ box)
      in
      match (SQ.solve ~pricing:SQ.Bland ~maximize:true p, SQ.solve ~pricing:SQ.Dantzig ~maximize:true p) with
      | SQ.Optimal a, SQ.Optimal b -> Q.equal a.objective b.objective
      | SQ.Infeasible, SQ.Infeasible -> true
      | _ -> false)

let prop_float_matches_exact_objective =
  (* The float instantiation must land near the certified optimum on
     well-conditioned random instances. *)
  QCheck.Test.make ~name:"float objective tracks exact objective" ~count:100 random_lp
    (fun (nvars, x0, rows, slacks) ->
      let build conv mk_c =
        let constrs =
          List.map2
            (fun row slack ->
              let b = List.fold_left2 (fun acc a x -> acc + (a * x)) slack row x0 in
              mk_c (List.mapi (fun i a -> (i, conv a)) row) (conv b))
            rows slacks
        in
        let box = List.init nvars (fun i -> mk_c [ (i, conv 1) ] (conv 50)) in
        Lp_problem.make ~nvars
          ~objective:(List.init nvars (fun i -> (i, conv 1)))
          (constrs @ box)
      in
      let pq = build q (fun terms rhs -> c terms Le rhs) in
      let pf = build float_of_int (fun terms rhs -> c terms Le rhs) in
      match (SQ.solve ~maximize:true pq, SF.solve ~maximize:true pf) with
      | SQ.Optimal sq, SF.Optimal sf -> Float.abs (Q.to_float sq.objective -. sf.objective) < 1e-6
      | SQ.Infeasible, SF.Infeasible -> true
      | _ -> false)

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  let qt t = QCheck_alcotest.to_alcotest t in
  ( "simplex",
    [
      u "textbook max" test_textbook_max;
      u "min with >=" test_min_with_ge;
      u "infeasible" test_infeasible;
      u "unbounded" test_unbounded;
      u "fractional vertex" test_fractional_vertex;
      u "negative rhs" test_negative_rhs_normalisation;
      u "redundant equalities" test_redundant_equalities;
      u "duplicate terms" test_duplicate_terms;
      u "degenerate (anti-cycling)" test_degenerate_cycling_guard;
      u "zero-variable row" test_zero_variable_problem;
      u "variable range check" test_var_out_of_range;
      u "float instance" test_float_instance_agrees;
      u "Farkas certificate" test_farkas_certificate;
      u "Farkas on feasible" test_farkas_on_feasible;
      qt prop_infeasible_always_certified;
      qt prop_certified_agrees_with_feasible;
      u "optimality certificate" test_optimality_certificate;
      qt prop_certified_optimum;
      qt prop_pricing_rules_agree;
      qt prop_float_matches_exact_objective;
      qt prop_feasible_by_construction;
      qt prop_infeasible_by_construction;
      qt prop_optimal_beats_feasible_points;
    ] )
