  $ ../../bin/hsched.exe solve --m 3 --jobs 6 --seed 1
  $ ../../bin/hsched.exe solve --m 3 --jobs 6 --seed 1 --gantt | tail -4
  $ ../../bin/hsched.exe exact --m 3 --jobs 6 --seed 1 | head -1
  $ ../../bin/hsched.exe generate --topology clustered --m 4 --jobs 3 --seed 5 -o inst.txt
  $ cat inst.txt
  $ ../../bin/hsched.exe solve --file inst.txt | head -2
  $ ../../bin/hsched.exe topology --topology smp-cmp --m 8 | head -4
  $ ../../bin/hsched.exe simulate --m 4 --jobs 6 --seed 2 --latencies 0,2,5 | head -3
  $ ../../bin/hsched.exe realtime --m 4 --topology clustered --tasks 10:6,20:9,10:5
  $ ../../bin/hsched.exe experiment bogus
