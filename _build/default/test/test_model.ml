(* Tests for processing times, instances, assignments and schedules. *)

open Hs_model
open Hs_laminar

let fin = Ptime.fin

let test_ptime () =
  Alcotest.(check int) "compare" (-1) (Ptime.compare (fin 3) (fin 5));
  Alcotest.(check bool) "fin <= inf" true (Ptime.leq (fin 1000) Ptime.Inf);
  Alcotest.(check bool) "inf <= fin" false (Ptime.leq Ptime.Inf (fin 1000));
  Alcotest.(check bool) "inf = inf" true (Ptime.equal Ptime.Inf Ptime.Inf);
  Alcotest.(check bool) "fits" true (Ptime.fits (fin 5) ~tmax:5);
  Alcotest.(check bool) "fits strict" false (Ptime.fits (fin 6) ~tmax:5);
  Alcotest.(check bool) "inf never fits" false (Ptime.fits Ptime.Inf ~tmax:1000000);
  Alcotest.(check (option int)) "value" (Some 5) (Ptime.value (fin 5));
  Alcotest.check_raises "negative" (Invalid_argument "Ptime.fin: negative processing time")
    (fun () -> ignore (fin (-1)))

let test_monotonicity_validation () =
  let lam = Topology.semi_partitioned 2 in
  let full = Option.get (Laminar.full_set lam) in
  let s0 = Option.get (Laminar.singleton lam 0) in
  let s1 = Option.get (Laminar.singleton lam 1) in
  (* singletons cheaper than global: fine *)
  let row = Array.make 3 Ptime.Inf in
  row.(full) <- fin 5;
  row.(s0) <- fin 3;
  row.(s1) <- fin 5;
  (match Instance.make lam [| row |] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid instance rejected: %s" e);
  (* singleton more expensive than global: monotonicity violation *)
  let row = Array.make 3 Ptime.Inf in
  row.(full) <- fin 3;
  row.(s0) <- fin 5;
  (match Instance.make lam [| row |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-monotone instance accepted");
  (* Inf below Fin is also a violation *)
  let row = Array.make 3 (fin 3) in
  row.(s0) <- Ptime.Inf;
  (match Instance.make lam [| row |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "Inf-below-Fin accepted");
  (* arity check *)
  match Instance.make lam [| [| fin 1 |] |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ragged matrix accepted"

let test_constructors () =
  let u = Instance.unrelated [| [| fin 2; fin 3 |]; [| fin 1; Ptime.Inf |] |] in
  Alcotest.(check int) "unrelated jobs" 2 (Instance.njobs u);
  Alcotest.(check bool) "unrelated shape" true
    (Laminar.is_singletons_only (Instance.laminar u));
  let sp =
    Instance.semi_partitioned ~global:[| fin 4 |] ~local:[| [| fin 2; fin 3 |] |]
  in
  Alcotest.(check bool) "semi-partitioned shape" true
    (Laminar.is_semi_partitioned (Instance.laminar sp));
  let id = Instance.identical ~m:3 ~lengths:[| 4; 5 |] in
  Alcotest.(check int) "identical sets" 1 (Laminar.size (Instance.laminar id))

let test_with_singletons () =
  let lam = Laminar.of_sets_exn ~m:3 [ [ 0; 1; 2 ]; [ 0; 1 ] ] in
  let inst = Instance.make_exn lam [| [| fin 10; fin 6 |] |] in
  let closed, translate = Instance.with_singletons inst in
  let lam' = Instance.laminar closed in
  Alcotest.(check int) "5 sets" 5 (Laminar.size lam');
  (* {0} and {1} inherit from {0,1} (p=6); {2} inherits from M (p=10). *)
  let p_of i =
    Instance.ptime closed ~job:0 ~set:(Option.get (Laminar.singleton lam' i))
  in
  Alcotest.(check string) "p({0})" "6" (Ptime.to_string (p_of 0));
  Alcotest.(check string) "p({1})" "6" (Ptime.to_string (p_of 1));
  Alcotest.(check string) "p({2})" "10" (Ptime.to_string (p_of 2));
  (* translation maps surviving sets back *)
  let full' = Option.get (Laminar.full_set lam') in
  Alcotest.(check bool) "translate full" true (translate full' <> None)

let test_min_volume () =
  let inst = Instance.unrelated [| [| fin 2; fin 3 |]; [| fin 5; fin 1 |] |] in
  Alcotest.(check (option int)) "total min volume" (Some 3) (Instance.total_min_volume inst);
  let inst2 = Instance.unrelated [| [| Ptime.Inf; Ptime.Inf |] |] in
  Alcotest.(check (option int)) "infeasible job" None (Instance.total_min_volume inst2)

let test_assignment_makespan () =
  (* Example III.1: optimal assignment has makespan 2. *)
  let inst = Hs_workloads.Families.example_ii1 () in
  let lam = Instance.laminar inst in
  let full = Option.get (Laminar.full_set lam) in
  let s i = Option.get (Laminar.singleton lam i) in
  let a = [| s 0; s 1; full |] in
  Alcotest.(check int) "makespan 2" 2 (Assignment.min_makespan inst a);
  Alcotest.(check bool) "feasible at 2" true (Assignment.feasible inst a ~tmax:2);
  Alcotest.(check bool) "infeasible at 1" false (Assignment.feasible inst a ~tmax:1);
  (* assigning job 2 to machine 0 serialises with job 0: makespan 3 *)
  let a' = [| s 0; s 1; s 0 |] in
  Alcotest.(check int) "partitioned makespan 3" 3 (Assignment.min_makespan inst a');
  (* ill-formed: job on an Inf mask *)
  let bad = [| s 1; s 1; full |] in
  Alcotest.(check bool) "ill-formed" false (Assignment.well_formed inst bad)

let test_schedule_validation () =
  let inst = Instance.unrelated [| [| fin 2; Ptime.Inf |]; [| Ptime.Inf; fin 3 |] |] in
  let lam = Instance.laminar inst in
  let s i = Option.get (Laminar.singleton lam i) in
  let a = [| s 0; s 1 |] in
  let seg job machine start stop = { Schedule.job; machine; start; stop } in
  let ok = { Schedule.horizon = 3; segments = [ seg 0 0 0 2; seg 1 1 0 3 ] } in
  Alcotest.(check bool) "valid" true (Schedule.is_valid inst a ok);
  (* wrong total *)
  let bad1 = { Schedule.horizon = 3; segments = [ seg 0 0 0 1; seg 1 1 0 3 ] } in
  Alcotest.(check bool) "wrong volume" false (Schedule.is_valid inst a bad1);
  (* machine conflict *)
  let bad2 =
    { Schedule.horizon = 5; segments = [ seg 0 0 0 2; seg 1 0 1 4 ] }
  in
  Alcotest.(check bool) "machine overlap" false (Schedule.is_valid inst a bad2);
  (* outside affinity mask *)
  let bad3 = { Schedule.horizon = 5; segments = [ seg 0 1 0 2; seg 1 1 2 5 ] } in
  Alcotest.(check bool) "mask violated" false (Schedule.is_valid inst a bad3);
  (* outside horizon *)
  let bad4 = { Schedule.horizon = 2; segments = [ seg 0 0 0 2; seg 1 1 0 3 ] } in
  Alcotest.(check bool) "horizon violated" false (Schedule.is_valid inst a bad4)

let test_self_parallelism_rejected () =
  let inst = Instance.identical ~m:2 ~lengths:[| 4 |] in
  let a = [| 0 |] in
  let seg machine start stop = { Schedule.job = 0; machine; start; stop } in
  let bad = { Schedule.horizon = 2; segments = [ seg 0 0 2; seg 1 0 2 ] } in
  Alcotest.(check bool) "self-parallel rejected" false (Schedule.is_valid inst a bad);
  let good = { Schedule.horizon = 4; segments = [ seg 0 0 2; seg 1 2 4 ] } in
  Alcotest.(check bool) "migration fine" true (Schedule.is_valid inst a good)

let test_wrap_segments () =
  let w = Schedule.wrap_segments ~horizon:10 ~job:0 ~machine:1 ~pos:7 ~len:5 in
  Alcotest.(check int) "two pieces" 2 (List.length w);
  let total = List.fold_left (fun acc (s : Schedule.segment) -> acc + s.stop - s.start) 0 w in
  Alcotest.(check int) "length preserved" 5 total;
  let w2 = Schedule.wrap_segments ~horizon:10 ~job:0 ~machine:1 ~pos:2 ~len:5 in
  Alcotest.(check int) "one piece" 1 (List.length w2);
  Alcotest.(check int) "empty" 0
    (List.length (Schedule.wrap_segments ~horizon:10 ~job:0 ~machine:1 ~pos:3 ~len:0))

let test_coalesce_and_metrics () =
  let seg job machine start stop = { Schedule.job; machine; start; stop } in
  let sched =
    {
      Schedule.horizon = 10;
      segments = [ seg 0 0 0 2; seg 0 0 2 4; seg 0 1 5 7; seg 0 0 8 9 ];
    }
  in
  let c = Schedule.coalesce sched in
  Alcotest.(check int) "coalesced to 3" 3 (List.length (Schedule.segments c));
  let m = Metrics.of_schedule ~njobs:1 sched in
  (* runs: [0,4)@0, [5,7)@1, [8,9)@0 → 2 transitions, both migrations *)
  Alcotest.(check int) "migrations" 2 m.migrations;
  Alcotest.(check int) "preemptions" 0 m.preemptions;
  Alcotest.(check int) "stops" 2 m.stops;
  let same_machine =
    { Schedule.horizon = 10; segments = [ seg 0 0 0 2; seg 0 0 5 7 ] }
  in
  let m2 = Metrics.of_schedule ~njobs:1 same_machine in
  Alcotest.(check int) "preemption only" 1 m2.preemptions;
  Alcotest.(check int) "no migration" 0 m2.migrations

let test_general_instance () =
  (* A genuinely non-laminar family. *)
  let g =
    General_instance.make_exn ~m:3
      ~sets:[ [ 0; 1 ]; [ 1; 2 ]; [ 0 ] ]
      ~p:[| [| fin 4; fin 6; fin 2 |] |]
  in
  let u = General_instance.to_unrelated g in
  let lam = Instance.laminar u in
  let p_of i = Instance.ptime u ~job:0 ~set:(Option.get (Laminar.singleton lam i)) in
  Alcotest.(check string) "machine 0 best" "2" (Ptime.to_string (p_of 0));
  Alcotest.(check string) "machine 1 best" "4" (Ptime.to_string (p_of 1));
  Alcotest.(check string) "machine 2 best" "6" (Ptime.to_string (p_of 2));
  Alcotest.(check (option int)) "witness machine 0" (Some 2)
    (General_instance.witness_set g ~job:0 ~machine:0);
  (* monotonicity check across subset pairs *)
  match
    General_instance.make ~m:3
      ~sets:[ [ 0; 1 ]; [ 0 ] ]
      ~p:[| [| fin 2; fin 5 |] |]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-monotone general instance accepted"

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  ( "model",
    [
      u "ptime" test_ptime;
      u "monotonicity validation" test_monotonicity_validation;
      u "constructors" test_constructors;
      u "singleton closure" test_with_singletons;
      u "min volume" test_min_volume;
      u "assignment makespan" test_assignment_makespan;
      u "schedule validation" test_schedule_validation;
      u "self-parallelism" test_self_parallelism_rejected;
      u "wrap segments" test_wrap_segments;
      u "coalesce & metrics" test_coalesce_and_metrics;
      u "general instance" test_general_instance;
    ] )
