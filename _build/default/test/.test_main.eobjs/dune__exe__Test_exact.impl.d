test/test_exact.ml: Alcotest Assignment Exact Families Generators Hs_core Hs_laminar Hs_model Hs_workloads Instance Ptime QCheck QCheck_alcotest Rng Test_util
