test/test_realtime.ml: Alcotest Array Dpfair Gantt Hs_laminar Hs_model Hs_numeric Hs_realtime Hs_workloads List Option Ptime QCheck QCheck_alcotest Schedule String Task Test_util
