test/test_workloads.ml: Alcotest Array Families Generators Hs_laminar Hs_model Hs_numeric Hs_workloads Instance List Option Ptime QCheck QCheck_alcotest Rng Test_util
