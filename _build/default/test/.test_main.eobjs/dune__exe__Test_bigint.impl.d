test/test_bigint.ml: Alcotest Char Hs_numeric List Printf QCheck QCheck_alcotest String
