test/test_model.ml: Alcotest Array Assignment General_instance Hs_laminar Hs_model Hs_workloads Instance Laminar List Metrics Option Ptime Schedule Topology
