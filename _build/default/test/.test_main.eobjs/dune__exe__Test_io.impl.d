test/test_io.ml: Alcotest Filename Gen Hs_core Hs_laminar Hs_model Instance Instance_io List Ptime QCheck QCheck_alcotest Schedule Stdlib String Sys Tape Test_util
