test/test_laminar.ml: Alcotest Array Format Hashtbl Hs_laminar Hs_workloads Laminar List Option QCheck QCheck_alcotest Topology
