test/test_memory.ml: Alcotest Array Generators Hs_core Hs_laminar Hs_model Hs_numeric Hs_workloads Instance Iterative_rounding Memory Ptime QCheck QCheck_alcotest Rng Schedule Test_util
