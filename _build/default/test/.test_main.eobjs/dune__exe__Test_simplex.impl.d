test/test_simplex.ml: Alcotest Array Field Float Hs_lp Hs_numeric List Lp_problem Printf QCheck QCheck_alcotest Simplex String
