test/test_util.ml: Array Generators Hs_laminar Hs_model Hs_workloads Instance List Ptime QCheck Rng Stdlib
