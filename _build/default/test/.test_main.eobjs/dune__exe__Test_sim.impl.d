test/test_sim.ml: Alcotest Families Generators Hs_core Hs_laminar Hs_model Hs_sim Hs_workloads Instance Option QCheck QCheck_alcotest Rng Schedule Simulator Test_util
