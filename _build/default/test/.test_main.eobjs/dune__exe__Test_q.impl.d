test/test_q.ml: Alcotest Float Hs_numeric QCheck QCheck_alcotest
