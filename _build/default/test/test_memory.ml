(* Tests for the iterative-rounding engine and the Section VI memory
   models (Theorems VI.1 and VI.3). *)

open Hs_model
open Hs_core
open Hs_workloads
module Q = Hs_numeric.Q
module IR = Iterative_rounding

let qi = Q.of_int

(* -- the generic engine on hand-crafted problems ----------------------- *)

let test_engine_trivial () =
  (* Two jobs, one option each: engine must fix both and report usage. *)
  let vars =
    [
      { IR.job = 0; opt = 7; col = [ (0, qi 2) ] };
      { IR.job = 1; opt = 9; col = [ (0, qi 3) ] };
    ]
  in
  let p = { IR.njobs = 2; vars; bounds = [| qi 10 |]; names = [| "row" |] } in
  match IR.solve p (IR.Support_at_most 2) with
  | Error e -> Alcotest.failf "engine failed: %s" e
  | Ok o ->
      Alcotest.(check (array int)) "choices" [| 7; 9 |] o.choice;
      Alcotest.(check string) "usage" "5" (Q.to_string o.usage.(0));
      Alcotest.(check int) "no fallback" 0 o.fallback_drops

let test_engine_integral_lp () =
  (* Capacity forces each job to its own row; LP is already integral. *)
  let vars =
    [
      { IR.job = 0; opt = 0; col = [ (0, qi 1) ] };
      { IR.job = 0; opt = 1; col = [ (1, qi 1) ] };
      { IR.job = 1; opt = 0; col = [ (0, qi 1) ] };
      { IR.job = 1; opt = 1; col = [ (1, qi 1) ] };
    ]
  in
  let p = { IR.njobs = 2; vars; bounds = [| qi 1; qi 1 |]; names = [| "a"; "b" |] } in
  match IR.solve p (IR.Support_at_most 2) with
  | Error e -> Alcotest.failf "engine failed: %s" e
  | Ok o ->
      Alcotest.(check bool) "valid assignment" true
        (o.choice.(0) <> o.choice.(1));
      Alcotest.(check bool) "no violation" true
        (Array.for_all (fun u -> Q.leq u (qi 1)) o.usage)

let test_engine_needs_drop () =
  (* One row shared by two jobs with capacity 1 but both jobs need 1:
     the LP is fractional-infeasible unless the other options are used;
     remove them to force a drop. *)
  let vars =
    [
      { IR.job = 0; opt = 0; col = [ (0, qi 1) ] };
      { IR.job = 0; opt = 1; col = [ (1, qi 1) ] };
      { IR.job = 1; opt = 0; col = [ (0, qi 1) ] };
      { IR.job = 1; opt = 1; col = [ (1, qi 1) ] };
    ]
  in
  (* capacity 3/2 on both rows: fractional solution 1/2 everywhere is a
     vertex region; rounding must finish with bounded violation. *)
  let p =
    { IR.njobs = 2; vars; bounds = [| Q.of_ints 3 2; Q.of_ints 3 2 |]; names = [| "a"; "b" |] }
  in
  match IR.solve p (IR.Support_at_most 2) with
  | Error e -> Alcotest.failf "engine failed: %s" e
  | Ok o ->
      Alcotest.(check bool) "all jobs assigned" true
        (Array.for_all (fun c -> c >= 0) o.choice);
      (* violation bounded by bound + 2 * max coefficient = 3/2 + 2 *)
      Alcotest.(check bool) "bounded violation" true
        (Array.for_all (fun u -> Q.leq u (Q.of_ints 7 2)) o.usage)

let test_engine_rejects_bad_bounds () =
  let p = { IR.njobs = 1; vars = [ { IR.job = 0; opt = 0; col = [] } ]; bounds = [| Q.zero |]; names = [| "z" |] } in
  match IR.solve p (IR.Support_at_most 2) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-positive bound accepted"

let test_engine_infeasible () =
  (* job with no options at all *)
  let p = { IR.njobs = 1; vars = []; bounds = [| qi 1 |]; names = [| "r" |] } in
  match IR.solve p (IR.Support_at_most 2) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "jobless problem accepted"

(* -- Model 1 ----------------------------------------------------------- *)

let model1_case seed =
  let rng = Rng.create seed in
  let m = 2 + Rng.int rng 3 in
  let inst = Generators.semi_partitioned_load rng ~m ~load:0.4 ~pmin:1 ~pmax:6 () in
  let payload = Generators.model1_payload rng inst ~smax:4 ~slack:1.4 in
  (inst, payload)

let prop_model1_bicriteria =
  QCheck.Test.make ~name:"Model 1: Theorem VI.1 bicriteria (3T, 3B)" ~count:40
    Test_util.seed_arb (fun seed ->
      let inst, payload = model1_case seed in
      match Memory.solve_model1 inst payload with
      | Error _ -> QCheck.assume_fail () (* payload made the LP infeasible *)
      | Ok r ->
          Schedule.is_valid inst r.assignment r.schedule
          && Q.leq r.makespan_factor (qi 3)
          && Q.leq r.max_capacity_factor (qi 3))

let test_model1_memory_actually_binds () =
  (* A tight-budget instance where ignoring memory overloads a machine:
     two jobs, each needs the whole budget of the (only fast) machine. *)
  let inst =
    Instance.semi_partitioned
      ~global:[| Ptime.fin 10; Ptime.fin 10 |]
      ~local:[| [| Ptime.fin 1; Ptime.fin 9 |]; [| Ptime.fin 1; Ptime.fin 9 |] |]
  in
  let payload =
    { Memory.budgets = [| 1; 1 |]; space = [| [| 1; 1 |]; [| 1; 1 |] |] }
  in
  match Memory.solve_model1 inst payload with
  | Error e -> Alcotest.failf "model1 failed: %s" e
  | Ok r ->
      (* Each machine can hold triple budget = 3 jobs; but memory spreads
         the two jobs rather than stacking both on machine 0. *)
      Alcotest.(check bool) "memory factor <= 3" true (Q.leq r.max_capacity_factor (qi 3));
      Alcotest.(check bool) "valid" true (Schedule.is_valid inst r.assignment r.schedule)

let test_model1_infeasible_budget () =
  let inst =
    Instance.semi_partitioned ~global:[| Ptime.fin 2 |] ~local:[| [| Ptime.fin 1 |] |]
  in
  let payload = { Memory.budgets = [| 0 |]; space = [| [| 1 |] |] } in
  match Memory.solve_model1 inst payload with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero budget accepted"

(* -- Model 2 ----------------------------------------------------------- *)

let model2_case seed =
  let rng = Rng.create seed in
  let fanouts =
    match Rng.int rng 3 with
    | 0 -> [ 2; 2 ]
    | 1 -> [ 2; 2; 2 ]
    | _ -> [ 3; 2 ]
  in
  let lam = Hs_laminar.Topology.balanced fanouts in
  let n = 3 + Rng.int rng 5 in
  let inst = Generators.hierarchical rng ~lam ~n ~base:(1, 5) ~overhead:0.2 () in
  let payload = Generators.model2_payload rng inst ~mu:(Q.of_ints 2 1) in
  (inst, payload, Hs_laminar.Laminar.nlevels lam)

let prop_model2_sigma =
  QCheck.Test.make ~name:"Model 2: Theorem VI.3 sigma = 2 + H_k" ~count:30
    Test_util.seed_arb (fun seed ->
      let inst, payload, k = model2_case seed in
      match Memory.solve_model2 inst payload with
      | Error _ -> QCheck.assume_fail ()
      | Ok r ->
          let sigma = Memory.sigma_bound ~k in
          Schedule.is_valid inst r.assignment r.schedule
          && Q.leq r.makespan_factor sigma
          && Q.leq r.max_capacity_factor sigma
          && r.fallback_drops = 0)

let test_model2_requires_tree () =
  let inst = Instance.unrelated [| [| Ptime.fin 1; Ptime.fin 1 |] |] in
  let payload = { Memory.mu = qi 2; sizes = [| Q.one |] } in
  match Memory.solve_model2 inst payload with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "forest accepted by Model 2"

let test_model2_requires_mu_gt_one () =
  let lam = Hs_laminar.Topology.balanced [ 2; 2 ] in
  let rng = Rng.create 3 in
  let inst = Generators.hierarchical rng ~lam ~n:3 ~base:(1, 3) () in
  let payload = { Memory.mu = Q.one; sizes = Array.make 3 Q.one } in
  match Memory.solve_model2 inst payload with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mu = 1 accepted"

let test_sigma_bound_k2 () =
  (* k = 2: the paper's sharper bound is 3 + 1/m; the generic bound we
     check against is 2 + H_2 = 7/2 >= 3 + 1/m for m >= 2. *)
  Alcotest.(check string) "sigma(2)" "7/2" (Q.to_string (Memory.sigma_bound ~k:2));
  Alcotest.(check string) "sigma(3)" "23/6" (Q.to_string (Memory.sigma_bound ~k:3))

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  let qt t = QCheck_alcotest.to_alcotest t in
  ( "memory",
    [
      u "engine: trivial" test_engine_trivial;
      u "engine: integral LP" test_engine_integral_lp;
      u "engine: fractional with drops" test_engine_needs_drop;
      u "engine: rejects bad bounds" test_engine_rejects_bad_bounds;
      u "engine: infeasible" test_engine_infeasible;
      u "Model 1: memory binds" test_model1_memory_actually_binds;
      u "Model 1: infeasible budget" test_model1_infeasible_budget;
      u "Model 2: requires tree" test_model2_requires_tree;
      u "Model 2: requires mu > 1" test_model2_requires_mu_gt_one;
      u "sigma bound values" test_sigma_bound_k2;
      qt prop_model1_bicriteria;
      qt prop_model2_sigma;
    ] )
