(* Unit and property tests for the exact rational field. *)

module Q = Hs_numeric.Q
module B = Hs_numeric.Bigint

let qi = Q.of_int
let qq = Q.of_ints

let check_q msg expected actual =
  Alcotest.(check string) msg (Q.to_string expected) (Q.to_string actual)

let test_normalisation () =
  check_q "2/4 = 1/2" (qq 1 2) (qq 2 4);
  check_q "-2/-4 = 1/2" (qq 1 2) (qq (-2) (-4));
  check_q "2/-4 = -1/2" (qq (-1) 2) (qq 2 (-4));
  check_q "0/7 = 0" Q.zero (qq 0 7);
  Alcotest.(check string) "den positive" "2" (B.to_string (Q.den (qq 3 (-2))));
  Alcotest.check_raises "zero denominator" Division_by_zero (fun () -> ignore (qq 1 0))

let test_arithmetic () =
  check_q "1/3 + 1/6" (qq 1 2) (Q.add (qq 1 3) (qq 1 6));
  check_q "1/2 - 1/3" (qq 1 6) (Q.sub (qq 1 2) (qq 1 3));
  check_q "2/3 * 3/4" (qq 1 2) (Q.mul (qq 2 3) (qq 3 4));
  check_q "(1/2) / (3/4)" (qq 2 3) (Q.div (qq 1 2) (qq 3 4));
  check_q "inv(-2/3)" (qq (-3) 2) (Q.inv (qq (-2) 3));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Q.div Q.one Q.zero));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Q.inv Q.zero))

let test_rounding () =
  let fl x = B.to_int_exn (Q.floor x) and ce x = B.to_int_exn (Q.ceil x) in
  Alcotest.(check int) "floor 7/2" 3 (fl (qq 7 2));
  Alcotest.(check int) "ceil 7/2" 4 (ce (qq 7 2));
  Alcotest.(check int) "floor -7/2" (-4) (fl (qq (-7) 2));
  Alcotest.(check int) "ceil -7/2" (-3) (ce (qq (-7) 2));
  Alcotest.(check int) "floor 3" 3 (fl (qi 3));
  Alcotest.(check int) "ceil 3" 3 (ce (qi 3));
  Alcotest.(check int) "floor_int" 1 (Q.floor_int (qq 5 3));
  Alcotest.(check int) "ceil_int" 2 (Q.ceil_int (qq 5 3))

let test_of_string () =
  check_q "int" (qi 42) (Q.of_string "42");
  check_q "ratio" (qq 2 3) (Q.of_string "4/6");
  check_q "decimal" (qq 5 4) (Q.of_string "1.25");
  check_q "neg decimal" (qq (-5) 4) (Q.of_string "-1.25");
  check_q "leading dot" (qq 1 4) (Q.of_string "0.25")

let test_ordering () =
  Alcotest.(check bool) "1/3 < 1/2" true (Q.lt (qq 1 3) (qq 1 2));
  Alcotest.(check bool) "-1/2 < 1/3" true (Q.lt (qq (-1) 2) (qq 1 3));
  Alcotest.(check bool) "leq refl" true (Q.leq (qq 2 4) (qq 1 2));
  check_q "min" (qq 1 3) (Q.min (qq 1 3) (qq 1 2));
  check_q "max" (qq 1 2) (Q.max (qq 1 3) (qq 1 2))

let test_infix () =
  let open Q.Infix in
  Alcotest.(check bool) "infix expr" true (qq 1 2 + qq 1 3 = qq 5 6);
  Alcotest.(check bool) "infix order" true (qq 1 2 * qq 1 2 < qq 1 2)

let rational =
  let gen =
    QCheck.Gen.(
      map2
        (fun n d -> Q.of_ints n (if d = 0 then 1 else d))
        (int_range (-10000) 10000) (int_range (-100) 100))
  in
  QCheck.make ~print:Q.to_string gen

let triple = QCheck.triple rational rational rational

let prop_field_axioms =
  QCheck.Test.make ~name:"field axioms" ~count:1000 triple (fun (a, b, c) ->
      Q.equal (Q.add a (Q.add b c)) (Q.add (Q.add a b) c)
      && Q.equal (Q.mul a (Q.mul b c)) (Q.mul (Q.mul a b) c)
      && Q.equal (Q.add a b) (Q.add b a)
      && Q.equal (Q.mul a b) (Q.mul b a)
      && Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c))
      && Q.equal (Q.add a (Q.neg a)) Q.zero
      && (Q.is_zero a || Q.equal (Q.mul a (Q.inv a)) Q.one))

let prop_canonical =
  QCheck.Test.make ~name:"canonical form" ~count:1000 rational (fun a ->
      B.sign (Q.den a) > 0 && B.equal (B.gcd (Q.num a) (Q.den a)) B.one
      || (Q.is_zero a && B.equal (Q.den a) B.one))

let prop_order_compatible =
  QCheck.Test.make ~name:"order compatible with add" ~count:1000 triple
    (fun (a, b, c) -> not (Q.lt a b) || Q.lt (Q.add a c) (Q.add b c))

let prop_floor_ceil =
  QCheck.Test.make ~name:"floor/ceil bracket" ~count:1000 rational (fun a ->
      let f = Q.of_bigint (Q.floor a) and c = Q.of_bigint (Q.ceil a) in
      Q.leq f a && Q.leq a c
      && Q.lt a (Q.add f Q.one)
      && Q.lt (Q.sub c Q.one) a)

let prop_to_float_close =
  QCheck.Test.make ~name:"to_float approximates" ~count:500 rational (fun a ->
      Float.abs (Q.to_float a -. (B.to_float (Q.num a) /. B.to_float (Q.den a))) < 1e-9)

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  let q t = QCheck_alcotest.to_alcotest t in
  ( "q",
    [
      u "normalisation" test_normalisation;
      u "arithmetic" test_arithmetic;
      u "rounding" test_rounding;
      u "of_string" test_of_string;
      u "ordering" test_ordering;
      u "infix" test_infix;
      q prop_field_axioms;
      q prop_canonical;
      q prop_order_compatible;
      q prop_floor_ceil;
      q prop_to_float_close;
    ] )
