(* Tests for the Section V pipeline: the (IP-3) relaxation and its binary
   search, the Lemma V.1 push-down, the LST rounding and the end-to-end
   2-approximation of Theorem V.2. *)

open Hs_model
open Hs_core
open Hs_workloads
module F = Hs_lp.Field.Exact
module I = Ilp.Make (F)
module P = Pushdown.Make (F)
module R = Lst_rounding.Make (F)
module Q = Hs_numeric.Q

let closed_of seed =
  let inst = Test_util.random_instance seed in
  fst (Instance.with_singletons inst)

let test_example_ii1_lp () =
  let inst, _ = Instance.with_singletons (Families.example_ii1 ()) in
  (* T=2 feasible, T=1 not (job 2 has no mask of time <= 1). *)
  Alcotest.(check bool) "feasible at 2" true (I.lp_feasible inst ~tmax:2 <> None);
  Alcotest.(check bool) "infeasible at 1" true (I.lp_feasible inst ~tmax:1 = None);
  match I.min_feasible_t inst with
  | Some (t, _) -> Alcotest.(check int) "t_lp = 2" 2 t
  | None -> Alcotest.fail "no feasible horizon"

let test_t_bounds () =
  let inst = Families.example_ii1 () in
  (match I.t_bounds inst with
  | Some (lo, hi) ->
      Alcotest.(check int) "lo = max min p" 2 lo;
      Alcotest.(check int) "hi = total min volume" 4 hi
  | None -> Alcotest.fail "bounds expected");
  let dead = Instance.unrelated [| [| Ptime.Inf |] |] in
  Alcotest.(check bool) "unschedulable job detected" true (I.t_bounds dead = None);
  Alcotest.(check bool) "min_feasible_t rejects" true (I.min_feasible_t dead = None)

let prop_lp_relaxes_integral =
  (* The LP horizon never exceeds any integral assignment's makespan. *)
  QCheck.Test.make ~name:"t_lp lower-bounds integral makespans" ~count:150
    Test_util.seed_arb (fun seed ->
      let inst, a = Test_util.random_assigned seed in
      let closed, _ = Instance.with_singletons inst in
      match I.min_feasible_t closed with
      | None -> false
      | Some (t, _) -> t <= Assignment.min_makespan inst a)

let prop_lp_monotone_in_t =
  QCheck.Test.make ~name:"LP feasibility monotone in T" ~count:80 Test_util.seed_arb
    (fun seed ->
      let inst = closed_of seed in
      match I.min_feasible_t inst with
      | None -> false
      | Some (t, _) ->
          I.lp_feasible inst ~tmax:(t + 1) <> None
          && I.lp_feasible inst ~tmax:(t + 7) <> None
          && (t = 0 || I.lp_feasible inst ~tmax:(t - 1) = None))

let prop_lower_bound_certified =
  (* The binary search's lower side carries a Farkas proof: at t_lp - 1
     the relaxation is certifiably infeasible. *)
  QCheck.Test.make ~name:"t_lp - 1 infeasibility is certified" ~count:60
    Test_util.seed_arb (fun seed ->
      let inst = closed_of seed in
      match I.min_feasible_t inst with
      | None -> false
      | Some (t, _) -> t = 0 || I.certified_infeasible inst ~tmax:(t - 1))

let prop_lp_solution_feasible =
  QCheck.Test.make ~name:"LP solutions satisfy (IP-3)" ~count:100 Test_util.seed_arb
    (fun seed ->
      let inst = closed_of seed in
      match I.min_feasible_t inst with
      | None -> false
      | Some (t, x) -> P.feasible inst ~tmax:t x)

let prop_pushdown =
  QCheck.Test.make
    ~name:"Lemma V.1: push-down preserves feasibility, lands on singletons" ~count:100
    Test_util.seed_arb (fun seed ->
      let inst = closed_of seed in
      match I.min_feasible_t inst with
      | None -> false
      | Some (t, x) ->
          let x' = P.push_down inst ~tmax:t x in
          P.feasible inst ~tmax:t x' && P.singletons_only inst x')

let prop_lst_rounds_all_jobs =
  (* The rounding theorem requires a vertex: re-solving the unrelated
     restriction (as Approx does) must always yield a perfect matching
     on the fractional jobs.  (Rounding the pushed-down solution instead
     would not be sound — push-down does not preserve basicness.) *)
  QCheck.Test.make ~name:"LST: perfect matching on basic solutions" ~count:100
    Test_util.seed_arb (fun seed ->
      let inst = closed_of seed in
      match I.min_feasible_t inst with
      | None -> false
      | Some (t, _) -> (
          let iu = Approx.Exact.unrelated_restriction inst in
          match I.lp_feasible iu ~tmax:t with
          | None -> QCheck.Test.fail_reportf "Lemma V.1 transfer failed"
          | Some xu -> (
              match R.round iu xu with
              | Error e -> QCheck.Test.fail_reportf "rounding failed: %s" e
              | Ok (a, stats) ->
                  Assignment.well_formed iu a
                  && stats.matched = stats.fractional_jobs)))

let prop_theorem_v2_bound =
  QCheck.Test.make ~name:"Theorem V.2: makespan <= 2 t_lp, schedule valid" ~count:100
    Test_util.seed_arb (fun seed ->
      let inst = Test_util.random_instance seed in
      match Approx.Exact.solve inst with
      | Error e -> QCheck.Test.fail_reportf "approx failed: %s" e
      | Ok o ->
          o.makespan <= 2 * o.t_lp
          && Schedule.is_valid o.instance o.assignment o.schedule
          && Schedule.makespan o.schedule <= o.makespan)

let prop_ratio_vs_optimum =
  QCheck.Test.make ~name:"measured ratio ALG/OPT within [1, 2]" ~count:40
    Test_util.seed_arb (fun seed ->
      let inst = Test_util.random_instance ~max_m:4 ~max_n:6 seed in
      match Approx.Exact.solve inst with
      | Error e -> QCheck.Test.fail_reportf "approx failed: %s" e
      | Ok o -> (
          match Exact.optimal inst with
          | None -> false
          | Some (_, opt, stats) ->
              (* The closed instance cannot beat the original optimum:
                 added singletons inherit minimal-superset times. *)
              stats.proven && opt <= o.makespan && o.makespan <= 2 * opt))

let test_example_ii1_end_to_end () =
  match Approx.Exact.solve (Families.example_ii1 ()) with
  | Error e -> Alcotest.failf "approx failed: %s" e
  | Ok o ->
      Alcotest.(check int) "t_lp = 2" 2 o.t_lp;
      Alcotest.(check bool) "within factor 2" true (o.makespan <= 4);
      Alcotest.(check bool) "valid" true
        (Schedule.is_valid o.instance o.assignment o.schedule)

let test_example_v1_gap () =
  (* The reduced unrelated instance loses a factor ~2 (Example V.1). *)
  let n = 7 in
  let inst = Families.example_v1 n in
  (match Exact.optimal inst with
  | Some (_, opt, _) ->
      Alcotest.(check int) "hierarchical opt" (Families.example_v1_hierarchical_opt n) opt
  | None -> Alcotest.fail "infeasible");
  match Hs_baselines.Unrelated_reduction.optimal_reduced inst with
  | Some r -> Alcotest.(check int) "unrelated opt" (Families.example_v1_unrelated_opt n) r
  | None -> Alcotest.fail "reduced infeasible"

let test_general_masks () =
  (* Non-laminar family: {0,1}, {1,2}, {0}; the §II reduction must produce
     a schedule within factor 8 of the LP lower bound. *)
  let g =
    General_instance.make_exn ~m:3
      ~sets:[ [ 0; 1 ]; [ 1; 2 ]; [ 0 ] ]
      ~p:
        [|
          [| Ptime.fin 4; Ptime.fin 6; Ptime.fin 2 |];
          [| Ptime.fin 5; Ptime.fin 5; Ptime.fin 5 |];
          [| Ptime.fin 3; Ptime.fin 4; Ptime.fin 2 |];
        |]
  in
  match Approx.solve_general g with
  | Error e -> Alcotest.failf "general masks failed: %s" e
  | Ok o ->
      Alcotest.(check bool) "lower bound positive" true (o.lower_bound >= 1);
      Alcotest.(check bool) "within factor 8" true (o.makespan <= 8 * o.lower_bound);
      Alcotest.(check bool) "witness sets defined" true
        (Array.for_all (fun k -> k >= 0) o.set_assignment)

let prop_float_pipeline_close_to_exact =
  (* The float LP path is a heuristic; on small instances it should land
     within a small factor of the exact pipeline (and stay valid). *)
  QCheck.Test.make ~name:"float pipeline: valid schedules" ~count:40 Test_util.seed_arb
    (fun seed ->
      let inst = Test_util.random_instance ~max_m:4 ~max_n:6 seed in
      match Approx.Fast.solve inst with
      | Error e -> QCheck.Test.fail_reportf "float pipeline failed: %s" e
      | Ok o -> Schedule.is_valid o.instance o.assignment o.schedule)

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  let qt t = QCheck_alcotest.to_alcotest t in
  ( "pipeline",
    [
      u "Example II.1 LP horizon" test_example_ii1_lp;
      u "search bounds" test_t_bounds;
      u "Example II.1 end-to-end" test_example_ii1_end_to_end;
      u "Example V.1 gap" test_example_v1_gap;
      u "general masks (8-approx)" test_general_masks;
      qt prop_lp_relaxes_integral;
      qt prop_lp_monotone_in_t;
      qt prop_lower_bound_certified;
      qt prop_lp_solution_feasible;
      qt prop_pushdown;
      qt prop_lst_rounds_all_jobs;
      qt prop_theorem_v2_bound;
      qt prop_ratio_vs_optimum;
      qt prop_float_pipeline_close_to_exact;
    ] )
