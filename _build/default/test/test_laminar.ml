(* Tests for the laminar-family engine and the topology builders. *)

open Hs_laminar

let lam_exn = Laminar.of_sets_exn

let test_rejects_overlap () =
  match Laminar.of_sets ~m:4 [ [ 0; 1; 2 ]; [ 2; 3 ] ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "proper overlap accepted"

let test_rejects_empty_and_range () =
  (match Laminar.of_sets ~m:2 [ [] ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty set accepted");
  (match Laminar.of_sets ~m:2 [ [ 0; 5 ] ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range accepted");
  match Laminar.of_sets ~m:2 [ [ 0 ]; [ 0 ] ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate accepted"

let test_structure_semi_partitioned () =
  let t = Topology.semi_partitioned 3 in
  Alcotest.(check int) "size" 4 (Laminar.size t);
  Alcotest.(check bool) "is semi-partitioned" true (Laminar.is_semi_partitioned t);
  let full = Option.get (Laminar.full_set t) in
  Alcotest.(check int) "full level" 1 (Laminar.level t full);
  Alcotest.(check int) "full height" 1 (Laminar.height t full);
  Alcotest.(check int) "nlevels" 2 (Laminar.nlevels t);
  List.iter
    (fun i ->
      let s = Option.get (Laminar.singleton t i) in
      Alcotest.(check (option int)) "parent is full" (Some full) (Laminar.parent t s);
      Alcotest.(check int) "singleton level" 2 (Laminar.level t s);
      Alcotest.(check int) "singleton height" 0 (Laminar.height t s))
    [ 0; 1; 2 ]

let test_structure_clustered () =
  let t = Topology.clustered ~m:6 ~clusters:2 in
  Alcotest.(check int) "size" (1 + 2 + 6) (Laminar.size t);
  Alcotest.(check int) "nlevels" 3 (Laminar.nlevels t);
  let c = Option.get (Laminar.find t [ 0; 1; 2 ]) in
  Alcotest.(check int) "cluster card" 3 (Laminar.card t c);
  let full = Option.get (Laminar.full_set t) in
  Alcotest.(check (option int)) "cluster parent" (Some full) (Laminar.parent t c);
  Alcotest.(check bool) "not semi-partitioned" false (Laminar.is_semi_partitioned t);
  Alcotest.check_raises "bad clustering"
    (Invalid_argument "Topology.clustered: clusters must divide m") (fun () ->
      ignore (Topology.clustered ~m:7 ~clusters:2))

let test_structure_smp_cmp () =
  let t = Topology.smp_cmp ~nodes:2 ~chips_per_node:2 ~cores_per_chip:2 in
  Alcotest.(check int) "m" 8 (Laminar.m t);
  (* root + 2 nodes + 4 chips + 8 singletons *)
  Alcotest.(check int) "size" 15 (Laminar.size t);
  Alcotest.(check int) "nlevels" 4 (Laminar.nlevels t);
  Alcotest.(check bool) "tree" true (Laminar.is_tree t);
  Alcotest.(check bool) "uniform leaves" true (Laminar.uniform_leaf_level t);
  (* LCA heights encode the three communication levels of the paper. *)
  Alcotest.(check (option int)) "intra-chip" (Some 1) (Laminar.lca_level t 0 1);
  Alcotest.(check (option int)) "inter-chip" (Some 2) (Laminar.lca_level t 0 2);
  Alcotest.(check (option int)) "inter-node" (Some 3) (Laminar.lca_level t 0 7);
  Alcotest.(check (option int)) "same core" (Some 0) (Laminar.lca_level t 3 3)

let test_subset_descendants () =
  let t = Topology.clustered ~m:4 ~clusters:2 in
  let full = Option.get (Laminar.full_set t) in
  let c0 = Option.get (Laminar.find t [ 0; 1 ]) in
  let s0 = Option.get (Laminar.singleton t 0) in
  Alcotest.(check bool) "s0 ⊆ c0" true (Laminar.subset t s0 c0);
  Alcotest.(check bool) "c0 ⊆ full" true (Laminar.subset t c0 full);
  Alcotest.(check bool) "full ⊄ c0" false (Laminar.subset t full c0);
  Alcotest.(check int) "descendants of c0" 3 (List.length (Laminar.descendants t c0));
  Alcotest.(check int) "ancestors of s0" 3 (List.length (Laminar.ancestors t s0));
  Alcotest.(check (list int)) "ancestors innermost-first" [ s0; c0; full ]
    (Laminar.ancestors t s0)

let test_minimal_superset () =
  let t = Topology.clustered ~m:4 ~clusters:2 in
  let c0 = Option.get (Laminar.find t [ 0; 1 ]) in
  let full = Option.get (Laminar.full_set t) in
  Alcotest.(check (option int)) "within cluster" (Some c0)
    (Laminar.minimal_superset t [ 0; 1 ]);
  Alcotest.(check (option int)) "across clusters" (Some full)
    (Laminar.minimal_superset t [ 0; 2 ]);
  Alcotest.(check (option int)) "single machine" (Laminar.singleton t 1)
    (Laminar.minimal_superset t [ 1 ])

let test_traversal_orders () =
  let t = Topology.smp_cmp ~nodes:2 ~chips_per_node:2 ~cores_per_chip:2 in
  let position order =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun k id -> Hashtbl.replace tbl id k) order;
    Hashtbl.find tbl
  in
  let bu = position (Laminar.bottom_up t) and td = position (Laminar.top_down t) in
  List.iter
    (fun id ->
      match Laminar.parent t id with
      | None -> ()
      | Some p ->
          Alcotest.(check bool) "bottom-up: child first" true (bu id < bu p);
          Alcotest.(check bool) "top-down: parent first" true (td p < td id))
    (Laminar.bottom_up t)

let test_add_singletons () =
  let t = lam_exn ~m:4 [ [ 0; 1; 2; 3 ]; [ 0; 1 ]; [ 0 ] ] in
  let t', origin = Laminar.add_singletons t in
  Alcotest.(check int) "all singletons added" 6 (Laminar.size t');
  List.iter
    (fun i -> Alcotest.(check bool) "has singleton" true (Laminar.singleton t' i <> None))
    [ 0; 1; 2; 3 ];
  (* New singleton {1}'s minimal original superset is {0,1}. *)
  let s1 = Option.get (Laminar.singleton t' 1) in
  let orig01 = Laminar.find t [ 0; 1 ] in
  Alcotest.(check (option int)) "origin of {1}" orig01 (origin s1);
  (* New singleton {3}'s minimal original superset is M. *)
  let s3 = Option.get (Laminar.singleton t' 3) in
  Alcotest.(check (option int)) "origin of {3}" (Laminar.find t [ 0; 1; 2; 3 ]) (origin s3)

let test_singletons_only () =
  let t = Topology.singletons 3 in
  Alcotest.(check bool) "is singletons" true (Laminar.is_singletons_only t);
  Alcotest.(check bool) "no full set" false (Laminar.has_full_set t);
  Alcotest.(check int) "three roots" 3 (List.length (Laminar.roots t))

let test_balanced_dedup () =
  (* fanout [1] would duplicate the root; builder must deduplicate. *)
  let t = Topology.balanced [ 2 ] in
  Alcotest.(check int) "m" 2 (Laminar.m t);
  Alcotest.(check int) "size" 3 (Laminar.size t)

(* Properties over random laminar families. *)

let random_family =
  let gen =
    QCheck.Gen.(
      map2
        (fun seed m ->
          let rng = Hs_workloads.Rng.create seed in
          Hs_workloads.Generators.random_laminar rng ~m ())
        (int_range 0 100000) (int_range 1 16))
  in
  QCheck.make ~print:(fun t -> Format.asprintf "%a" Laminar.pp t) gen

let prop_random_laminar_valid =
  QCheck.Test.make ~name:"random family validates" ~count:200 random_family (fun t ->
      match Laminar.of_sets ~m:(Laminar.m t) (Laminar.sets t) with
      | Ok _ -> true
      | Error _ -> false)

let prop_levels_consistent =
  QCheck.Test.make ~name:"level = 1 + parent level; heights consistent" ~count:200
    random_family (fun t ->
      List.for_all
        (fun id ->
          (match Laminar.parent t id with
          | None -> Laminar.level t id = 1
          | Some p -> Laminar.level t id = Laminar.level t p + 1)
          &&
          match Laminar.children t id with
          | [] -> Laminar.height t id = 0
          | cs ->
              Laminar.height t id
              = 1 + List.fold_left (fun acc c -> max acc (Laminar.height t c)) 0 cs)
        (Laminar.bottom_up t))

let prop_children_partition_parent =
  QCheck.Test.make ~name:"children partition their parent (closed family)" ~count:200
    random_family (fun t ->
      List.for_all
        (fun id ->
          match Laminar.children t id with
          | [] -> Laminar.card t id = 1
          | cs ->
              List.fold_left (fun acc c -> acc + Laminar.card t c) 0 cs
              = Laminar.card t id)
        (Laminar.bottom_up t))

let prop_level_count_matches_definition =
  QCheck.Test.make ~name:"paper level = #supersets" ~count:100 random_family (fun t ->
      List.for_all
        (fun id ->
          let mbrs = Array.to_list (Laminar.members t id) in
          let count =
            List.length
              (List.filter
                 (fun other ->
                   List.for_all (fun x -> Laminar.mem t other x) mbrs)
                 (Laminar.bottom_up t))
          in
          count = Laminar.level t id)
        (Laminar.bottom_up t))

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  let qt t = QCheck_alcotest.to_alcotest t in
  ( "laminar",
    [
      u "rejects overlap" test_rejects_overlap;
      u "rejects empty/range/dup" test_rejects_empty_and_range;
      u "semi-partitioned shape" test_structure_semi_partitioned;
      u "clustered shape" test_structure_clustered;
      u "smp-cmp shape" test_structure_smp_cmp;
      u "subset/descendants" test_subset_descendants;
      u "minimal superset" test_minimal_superset;
      u "traversal orders" test_traversal_orders;
      u "add singletons" test_add_singletons;
      u "singletons only" test_singletons_only;
      u "balanced dedup" test_balanced_dedup;
      qt prop_random_laminar_valid;
      qt prop_levels_consistent;
      qt prop_children_partition_parent;
      qt prop_level_count_matches_definition;
    ] )
