(* Tests for the baseline schedulers and the unrelated-machines
   reduction. *)

open Hs_model
open Hs_baselines
open Hs_workloads

let test_mcnaughton_optimality () =
  Alcotest.(check int) "volume-bound" 5 (Mcnaughton.optimal_t ~m:3 ~lengths:[| 5; 4; 3; 2; 1 |]);
  Alcotest.(check int) "longest-job-bound" 9 (Mcnaughton.optimal_t ~m:3 ~lengths:[| 9; 1; 1 |]);
  Alcotest.(check int) "single machine" 6 (Mcnaughton.optimal_t ~m:1 ~lengths:[| 1; 2; 3 |])

let prop_mcnaughton_valid =
  QCheck.Test.make ~name:"McNaughton schedules are valid and tight" ~count:200
    QCheck.(pair (int_range 1 6) (list_of_size (Gen.int_range 0 10) (int_range 0 12)))
    (fun (m, lengths) ->
      let lengths = Array.of_list lengths in
      let t = Mcnaughton.optimal_t ~m ~lengths in
      let sched = Mcnaughton.schedule ~m ~lengths in
      let inst = Instance.identical ~m ~lengths in
      let a = Array.make (Array.length lengths) 0 in
      Schedule.horizon sched = t
      && (Array.length lengths = 0 || Schedule.is_valid inst a sched)
      && Schedule.makespan sched <= t)

let test_lpt () =
  (* The classic LPT suboptimality: OPT = 6 (3+3 | 2+2+2) but LPT packs
     3|3, 2|2, then ties onto machine 0 for 7. *)
  let place, span = Partitioned.lpt_identical ~m:2 ~lengths:[| 3; 3; 2; 2; 2 |] in
  Alcotest.(check int) "LPT span" 7 span;
  Alcotest.(check int) "all placed" 5 (Array.length place);
  Alcotest.(check bool) "machines in range" true (Array.for_all (fun i -> i = 0 || i = 1) place)

let prop_lpt_within_4_3 =
  QCheck.Test.make ~name:"LPT within 4/3 + eps of the preemptive bound" ~count:200
    QCheck.(pair (int_range 1 5) (list_of_size (Gen.int_range 1 12) (int_range 1 20)))
    (fun (m, lengths) ->
      let lengths = Array.of_list lengths in
      let _, span = Partitioned.lpt_identical ~m ~lengths in
      let lb = Mcnaughton.optimal_t ~m ~lengths in
      (* LPT <= 4/3 OPT; OPT(non-preemptive) can exceed the preemptive
         bound by at most the largest job. *)
      3 * span <= (4 * lb) + (4 * Array.fold_left max 0 lengths))

let test_greedy_unrelated () =
  let times =
    [|
      [| Ptime.fin 2; Ptime.Inf |];
      [| Ptime.Inf; Ptime.fin 3 |];
      [| Ptime.fin 4; Ptime.fin 4 |];
    |]
  in
  match Partitioned.greedy_unrelated times with
  | None -> Alcotest.fail "greedy failed"
  | Some (place, span) ->
      Alcotest.(check int) "job 0 pinned" 0 place.(0);
      Alcotest.(check int) "job 1 pinned" 1 place.(1);
      Alcotest.(check bool) "span sane" true (span >= 6 && span <= 7)

let test_greedy_unschedulable () =
  Alcotest.(check bool) "all-Inf job" true
    (Partitioned.greedy_unrelated [| [| Ptime.Inf |] |] = None)

let prop_greedy_valid_partition =
  QCheck.Test.make ~name:"greedy: placement load equals reported span" ~count:150
    Test_util.seed_arb (fun seed ->
      let inst = Test_util.random_instance seed in
      let u = Unrelated_reduction.reduce inst in
      let lam = Instance.laminar u in
      let m = Hs_laminar.Laminar.m lam in
      let times =
        Array.init (Instance.njobs u) (fun j ->
            Array.init m (fun i ->
                Instance.ptime u ~job:j
                  ~set:(Option.get (Hs_laminar.Laminar.singleton lam i))))
      in
      match Partitioned.greedy_unrelated times with
      | None -> false (* generator instances always have finite rows *)
      | Some (place, span) ->
          let load = Array.make m 0 in
          Array.iteri
            (fun j i -> load.(i) <- load.(i) + Ptime.value_exn times.(j).(i))
            place;
          Array.fold_left Stdlib.max 0 load = span)

let test_reduction_examples () =
  (* Example II.1: reduction loses the semi-partitioned advantage. *)
  let inst = Families.example_ii1 () in
  (match Unrelated_reduction.optimal_reduced inst with
  | Some r -> Alcotest.(check int) "reduced opt 3" 3 r
  | None -> Alcotest.fail "reduction infeasible");
  (* Reduced processing times are the minimal containing set's times. *)
  let u = Unrelated_reduction.reduce inst in
  let lam = Instance.laminar u in
  let p_of j i =
    Instance.ptime u ~job:j ~set:(Option.get (Hs_laminar.Laminar.singleton lam i))
  in
  Alcotest.(check string) "job0 m0" "1" (Ptime.to_string (p_of 0 0));
  Alcotest.(check string) "job2 m1" "2" (Ptime.to_string (p_of 2 1))

let prop_reduction_lower_bounds =
  QCheck.Test.make
    ~name:"reduced preemptive LP lower-bounds the hierarchical optimum" ~count:40
    Test_util.seed_arb (fun seed ->
      let inst = Test_util.random_instance ~max_m:4 ~max_n:5 seed in
      let module I = Hs_core.Ilp.Make (Hs_lp.Field.Exact) in
      let closed_u, _ = Instance.with_singletons (Unrelated_reduction.reduce inst) in
      match (I.min_feasible_t closed_u, Hs_core.Exact.optimal inst) with
      | Some (t_lp, _), Some (_, opt, _) -> t_lp <= opt
      | None, None -> true
      | None, Some _ -> false
      | Some _, None -> true)

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  let qt t = QCheck_alcotest.to_alcotest t in
  ( "baselines",
    [
      u "McNaughton bound" test_mcnaughton_optimality;
      u "LPT" test_lpt;
      u "greedy unrelated" test_greedy_unrelated;
      u "greedy unschedulable" test_greedy_unschedulable;
      u "reduction on Example II.1" test_reduction_examples;
      qt prop_mcnaughton_valid;
      qt prop_lpt_within_4_3;
      qt prop_greedy_valid_partition;
      qt prop_reduction_lower_bounds;
    ] )
