(* Tests for the periodic-task layer (DP-Fair with affinities) and the
   Gantt renderer. *)

open Hs_model
open Hs_realtime
module L = Hs_laminar.Laminar

let lam4 () = Hs_laminar.Topology.clustered ~m:4 ~clusters:2

let task lam name period base = Task.of_base ~lam ~name ~period ~base ~overhead:0.25 ()

let test_task_model () =
  let lam = lam4 () in
  let t = task lam "t" 20 8 in
  Alcotest.(check int) "period" 20 t.Task.period;
  (* singleton WCET = base; root WCET strictly larger *)
  let s0 = Option.get (L.singleton lam 0) in
  let root = List.hd (L.roots lam) in
  Alcotest.(check string) "singleton wcet" "8" (Ptime.to_string t.Task.wcet.(s0));
  Alcotest.(check bool) "root wcet inflated" true
    (Ptime.compare t.Task.wcet.(s0) t.Task.wcet.(root) < 0);
  Alcotest.(check string) "min utilization" "2/5"
    (Hs_numeric.Q.to_string (Task.min_utilization t));
  Alcotest.check_raises "bad period" (Invalid_argument "Task.make: period must be positive")
    (fun () -> ignore (Task.make ~period:0 ~wcet:[| Ptime.fin 1 |] ()))

let test_slice_and_hyperperiod () =
  let lam = lam4 () in
  let tasks = [| task lam "a" 10 2; task lam "b" 15 2; task lam "c" 20 2 |] in
  Alcotest.(check int) "slice = gcd" 5 (Task.slice_length tasks);
  Alcotest.(check int) "hyperperiod = lcm" 60 (Task.hyperperiod tasks)

let test_schedulable_set () =
  let lam = lam4 () in
  let tasks =
    [| task lam "a" 10 6; task lam "b" 20 9; task lam "c" 10 5; task lam "d" 40 8 |]
  in
  match Dpfair.analyze lam tasks with
  | Dpfair.Schedulable s ->
      Alcotest.(check bool) "template valid" true
        (Schedule.is_valid s.instance s.assignment s.template);
      Alcotest.(check bool) "horizon = slice" true (Schedule.horizon s.template = s.slice);
      Alcotest.(check bool) "periodic supply" true
        (Dpfair.supply_ok tasks (Dpfair.Schedulable s))
  | Dpfair.Infeasible why | Dpfair.Unknown why -> Alcotest.failf "unexpected: %s" why

let test_overload_rejected () =
  let lam = lam4 () in
  let tasks = Array.init 6 (fun i -> task lam (string_of_int i) 10 9) in
  match Dpfair.analyze lam tasks with
  | Dpfair.Infeasible _ -> ()
  | Dpfair.Schedulable _ -> Alcotest.fail "overloaded set accepted"
  | Dpfair.Unknown why -> Alcotest.failf "expected infeasible, got unknown: %s" why

let test_empty_task_set () =
  match Dpfair.analyze (lam4 ()) [||] with
  | Dpfair.Schedulable s -> Alcotest.(check int) "trivial slice" 1 s.slice
  | _ -> Alcotest.fail "empty set must be schedulable"

let test_unroll () =
  let lam = lam4 () in
  let tasks = [| task lam "a" 10 4 |] in
  match Dpfair.analyze lam tasks with
  | Dpfair.Schedulable s ->
      let u = Dpfair.unroll s.template ~slice:s.slice ~k:3 in
      Alcotest.(check int) "unrolled horizon" (3 * s.slice) (Schedule.horizon u);
      Alcotest.(check int) "unrolled volume" (3 * Schedule.job_time s.template 0)
        (Schedule.job_time u 0)
  | _ -> Alcotest.fail "single task must be schedulable"

let prop_random_tasksets =
  (* Verdicts must be internally consistent: Schedulable verdicts carry a
     valid template with per-window supply; Infeasible only when the LP
     (or utilization) bound says so. *)
  QCheck.Test.make ~name:"random task sets: verdict consistency" ~count:60
    Test_util.seed_arb (fun seed ->
      let rng = Hs_workloads.Rng.create seed in
      let m = 2 + Hs_workloads.Rng.int rng 4 in
      let lam = Hs_laminar.Topology.semi_partitioned m in
      let periods = [| 10; 20; 40 |] in
      let ntasks = 1 + Hs_workloads.Rng.int rng (2 * m) in
      let tasks =
        Array.init ntasks (fun i ->
            Task.of_base ~lam ~name:(string_of_int i)
              ~period:(Hs_workloads.Rng.choose rng periods)
              ~base:(1 + Hs_workloads.Rng.int rng 8)
              ~overhead:(Hs_workloads.Rng.float rng *. 0.4) ())
      in
      match Dpfair.analyze lam tasks with
      | Dpfair.Schedulable s ->
          Schedule.is_valid s.instance s.assignment s.template
          && Dpfair.supply_ok tasks (Dpfair.Schedulable s)
      | Dpfair.Infeasible _ -> true
      | Dpfair.Unknown _ -> true)

(* ---- Gantt ----------------------------------------------------------- *)

let test_gantt_render () =
  let seg job machine start stop = { Schedule.job; machine; start; stop } in
  let sched =
    { Schedule.horizon = 10; segments = [ seg 0 0 0 4; seg 1 0 4 10; seg 2 1 2 5 ] }
  in
  let g = Gantt.render sched in
  let lines = String.split_on_char '\n' g in
  Alcotest.(check int) "header + 2 machines + trailing" 4 (List.length lines);
  Alcotest.(check string) "machine 0 row" "m0   |0000111111|" (List.nth lines 1);
  Alcotest.(check string) "machine 1 row" "m1   |..222.....|" (List.nth lines 2)

let test_gantt_rescale () =
  let seg job machine start stop = { Schedule.job; machine; start; stop } in
  let sched = { Schedule.horizon = 1000; segments = [ seg 0 0 0 1000 ] } in
  let g = Gantt.render ~max_width:50 sched in
  Alcotest.(check bool) "mentions scale" true
    (String.length g > 0 && String.sub g 0 9 = "time 0..1");
  let lines = String.split_on_char '\n' g in
  let row = List.nth lines 1 in
  Alcotest.(check bool) "rescaled row bounded" true (String.length row <= 58)

let test_gantt_labels () =
  Alcotest.(check char) "digit" '7' (Gantt.job_label 7);
  Alcotest.(check char) "lower" 'a' (Gantt.job_label 10);
  Alcotest.(check char) "upper" 'A' (Gantt.job_label 36);
  Alcotest.(check char) "overflow" '*' (Gantt.job_label 99)

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  let qt t = QCheck_alcotest.to_alcotest t in
  ( "realtime+gantt",
    [
      u "task model" test_task_model;
      u "slice & hyperperiod" test_slice_and_hyperperiod;
      u "schedulable set" test_schedulable_set;
      u "overload rejected" test_overload_rejected;
      u "empty task set" test_empty_task_set;
      u "unroll" test_unroll;
      u "gantt render" test_gantt_render;
      u "gantt rescale" test_gantt_rescale;
      u "gantt labels" test_gantt_labels;
      qt prop_random_tasksets;
    ] )
