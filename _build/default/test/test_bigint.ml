(* Unit and property tests for the arbitrary-precision integers. *)

module B = Hs_numeric.Bigint

let bi = B.of_int
let bs = B.of_string

let check_b msg expected actual =
  Alcotest.(check string) msg (B.to_string expected) (B.to_string actual)

let test_constants () =
  Alcotest.(check string) "zero" "0" (B.to_string B.zero);
  Alcotest.(check string) "one" "1" (B.to_string B.one);
  Alcotest.(check string) "minus_one" "-1" (B.to_string B.minus_one);
  Alcotest.(check int) "sign zero" 0 (B.sign B.zero);
  Alcotest.(check bool) "is_zero" true (B.is_zero B.zero);
  Alcotest.(check bool) "invariants" true
    (List.for_all B.check_invariant [ B.zero; B.one; B.minus_one ])

let test_of_int_roundtrip () =
  List.iter
    (fun k ->
      Alcotest.(check (option int)) (string_of_int k) (Some k) (B.to_int (bi k)))
    [ 0; 1; -1; 42; -42; max_int; min_int; max_int - 1; min_int + 1; 1 lsl 40 ]

let test_min_int_magnitude () =
  (* |min_int| is not representable as an int; the bigint must carry it. *)
  check_b "neg min_int" (B.neg (bi min_int)) (bs "4611686018427387904");
  Alcotest.(check (option int)) "overflow detected" None (B.to_int (B.neg (bi min_int)))

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (B.to_string (bs s)))
    [
      "0";
      "7";
      "-7";
      "123456789";
      "10000000000000000000000000000000001";
      "-99999999999999999999999999999999999999999999";
    ]

let test_of_string_invalid () =
  List.iter
    (fun s ->
      Alcotest.check_raises s (Invalid_argument "Bigint.of_string: invalid digit")
        (fun () -> ignore (bs s)))
    [ "12a"; "1.5"; "--2" ];
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty string")
    (fun () -> ignore (bs ""))

let test_factorial () =
  let rec fact n = if n = 0 then B.one else B.mul (bi n) (fact (n - 1)) in
  check_b "25!" (fact 25) (bs "15511210043330985984000000");
  check_b "50!" (fact 50)
    (bs "30414093201713378043612608166064768844377641568960512000000000000")

let test_division_cases () =
  (* 10^21 = 10^9 * 999999999999 + 10^9 *)
  let q, r = B.divmod (bs "1000000000000000000000") (bs "999999999999") in
  check_b "quot" (bs "1000000000") q;
  check_b "rem" (bs "1000000000") r;
  (* truncation towards zero with signs *)
  let q, r = B.divmod (bi (-7)) (bi 2) in
  Alcotest.(check int) "q(-7/2)" (-3) (B.to_int_exn q);
  Alcotest.(check int) "r(-7/2)" (-1) (B.to_int_exn r);
  Alcotest.(check int) "fdiv(-7,2)" (-4) (B.to_int_exn (B.fdiv (bi (-7)) (bi 2)));
  Alcotest.(check int) "cdiv(-7,2)" (-3) (B.to_int_exn (B.cdiv (bi (-7)) (bi 2)));
  Alcotest.(check int) "fdiv(7,2)" 3 (B.to_int_exn (B.fdiv (bi 7) (bi 2)));
  Alcotest.(check int) "cdiv(7,2)" 4 (B.to_int_exn (B.cdiv (bi 7) (bi 2)));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_gcd () =
  Alcotest.(check int) "gcd(12,18)" 6 (B.to_int_exn (B.gcd (bi 12) (bi 18)));
  Alcotest.(check int) "gcd(-12,18)" 6 (B.to_int_exn (B.gcd (bi (-12)) (bi 18)));
  Alcotest.(check int) "gcd(0,5)" 5 (B.to_int_exn (B.gcd B.zero (bi 5)));
  Alcotest.(check int) "gcd(0,0)" 0 (B.to_int_exn (B.gcd B.zero B.zero))

let test_pow () =
  check_b "2^100" (B.pow (bi 2) 100) (bs "1267650600228229401496703205376");
  check_b "x^0" (B.pow (bi 12345) 0) B.one;
  Alcotest.check_raises "neg exponent" (Invalid_argument "Bigint.pow: negative exponent")
    (fun () -> ignore (B.pow (bi 2) (-1)))

let test_to_float () =
  Alcotest.(check (float 1e-6)) "to_float" 1e20 (B.to_float (bs "100000000000000000000"))

(* Properties *)

let small_int = QCheck.int_range (-1_000_000_000) 1_000_000_000

let big_pair =
  (* Pairs of multi-limb integers built from strings of random digits. *)
  let gen =
    QCheck.Gen.(
      let digits = map (fun l -> List.map (fun d -> Char.chr (d + Char.code '0')) l)
          (list_size (int_range 1 40) (int_range 0 9)) in
      let bigint =
        map2
          (fun neg ds ->
            let s = String.init (List.length ds) (List.nth ds) in
            let s = if s = "" then "0" else s in
            B.of_string (if neg then "-" ^ s else s))
          bool digits
      in
      pair bigint bigint)
  in
  QCheck.make ~print:(fun (a, b) -> B.to_string a ^ ", " ^ B.to_string b) gen

let prop_add_matches_int =
  QCheck.Test.make ~name:"add matches int" ~count:2000
    (QCheck.pair small_int small_int) (fun (a, b) ->
      B.to_int_exn (B.add (bi a) (bi b)) = a + b)

let prop_mul_matches_int =
  QCheck.Test.make ~name:"mul matches int" ~count:2000
    (QCheck.pair small_int small_int) (fun (a, b) ->
      B.to_int_exn (B.mul (bi a) (bi b)) = a * b)

let prop_divmod_matches_int =
  QCheck.Test.make ~name:"divmod matches int" ~count:2000
    (QCheck.pair small_int small_int) (fun (a, b) ->
      QCheck.assume (b <> 0);
      let q, r = B.divmod (bi a) (bi b) in
      B.to_int_exn q = a / b && B.to_int_exn r = a mod b)

let prop_divmod_invariant =
  QCheck.Test.make ~name:"big divmod invariant" ~count:500 big_pair (fun (a, b) ->
      QCheck.assume (not (B.is_zero b));
      let q, r = B.divmod a b in
      B.check_invariant q && B.check_invariant r
      && B.equal a (B.add (B.mul q b) r)
      && B.compare (B.abs r) (B.abs b) < 0
      && (B.is_zero r || B.sign r = B.sign a))

let prop_mul_div_cancel =
  QCheck.Test.make ~name:"(a*b)/b = a" ~count:500 big_pair (fun (a, b) ->
      QCheck.assume (not (B.is_zero b));
      let q, r = B.divmod (B.mul a b) b in
      B.equal q a && B.is_zero r)

let huge_triple =
  (* Operands of ~300-700 decimal digits: deep in Karatsuba territory
     (the schoolbook/Karatsuba switch is at 24 limbs ≈ 170 digits). *)
  let gen =
    QCheck.Gen.(
      let digits n = map (fun l -> String.concat "" (List.map string_of_int l))
          (list_size (return n) (int_range 0 9)) in
      let* n1 = int_range 300 700 in
      let* n2 = int_range 300 700 in
      let* n3 = int_range 1 400 in
      let* s1 = digits n1 and* s2 = digits n2 and* s3 = digits n3 in
      let* neg1 = bool and* neg2 = bool in
      let mk neg s = B.of_string ((if neg then "-" else "") ^ "1" ^ s) in
      return (mk neg1 s1, mk neg2 s2, mk false s3))
  in
  QCheck.make ~print:(fun (a, b, c) ->
      Printf.sprintf "%d/%d/%d digits" (String.length (B.to_string a))
        (String.length (B.to_string b)) (String.length (B.to_string c)))
    gen

let prop_karatsuba_vs_division =
  QCheck.Test.make ~name:"huge mul consistent with division" ~count:50 huge_triple
    (fun (a, b, _) ->
      let p = B.mul a b in
      let q1, r1 = B.divmod p a in
      let q2, r2 = B.divmod p b in
      B.check_invariant p
      && B.equal q1 b && B.is_zero r1
      && B.equal q2 a && B.is_zero r2)

let prop_karatsuba_distributive =
  QCheck.Test.make ~name:"huge mul distributes over add" ~count:50 huge_triple
    (fun (a, b, c) ->
      B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c))
      && B.equal (B.mul (B.add b c) a) (B.mul a (B.add b c)))

let prop_karatsuba_square_identity =
  QCheck.Test.make ~name:"(a+b)(a-b) = a^2 - b^2 on huge operands" ~count:50
    huge_triple (fun (a, b, _) ->
      B.equal
        (B.mul (B.add a b) (B.sub a b))
        (B.sub (B.mul a a) (B.mul b b)))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"string roundtrip" ~count:500 big_pair (fun (a, _) ->
      B.equal a (B.of_string (B.to_string a)))

let prop_compare_total_order =
  QCheck.Test.make ~name:"compare consistent with sub" ~count:500 big_pair
    (fun (a, b) -> compare (B.compare a b) 0 = compare (B.sign (B.sub a b)) 0)

let prop_gcd_divides =
  QCheck.Test.make ~name:"gcd divides both" ~count:300 big_pair (fun (a, b) ->
      QCheck.assume (not (B.is_zero a) || not (B.is_zero b));
      let g = B.gcd a b in
      B.sign g > 0 && B.is_zero (B.rem a g) && B.is_zero (B.rem b g))

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  let q t = QCheck_alcotest.to_alcotest t in
  ( "bigint",
    [
      u "constants" test_constants;
      u "of_int roundtrip" test_of_int_roundtrip;
      u "min_int magnitude" test_min_int_magnitude;
      u "string roundtrip" test_string_roundtrip;
      u "of_string invalid" test_of_string_invalid;
      u "factorial" test_factorial;
      u "division cases" test_division_cases;
      u "gcd" test_gcd;
      u "pow" test_pow;
      u "to_float" test_to_float;
      q prop_add_matches_int;
      q prop_mul_matches_int;
      q prop_divmod_matches_int;
      q prop_divmod_invariant;
      q prop_mul_div_cancel;
      q prop_karatsuba_vs_division;
      q prop_karatsuba_distributive;
      q prop_karatsuba_square_identity;
      q prop_string_roundtrip;
      q prop_compare_total_order;
      q prop_gcd_divides;
    ] )
