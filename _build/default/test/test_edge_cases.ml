(* Cross-module edge cases: singleton-free families through the closure
   pipeline, cluster-mixed assignments, degenerate memory workloads,
   DOT/Gantt rendering details. *)

open Hs_model
open Hs_core
module L = Hs_laminar.Laminar

let test_closure_pipeline_without_singletons () =
  (* A = {M, {0,1}} over 4 machines: no singleton exists, so the Section V
     closure must create all four, inheriting minimal-superset times. *)
  let lam = L.of_sets_exn ~m:4 [ [ 0; 1; 2; 3 ]; [ 0; 1 ] ] in
  let inst =
    Instance.make_exn lam
      [|
        [| Ptime.fin 8; Ptime.fin 5 |];
        [| Ptime.fin 8; Ptime.fin 5 |];
        [| Ptime.fin 6; Ptime.fin 6 |];
        [| Ptime.fin 9; Ptime.fin 4 |];
      |]
  in
  match Approx.Exact.solve inst with
  | Error e -> Alcotest.failf "pipeline failed: %s" e
  | Ok o ->
      Alcotest.(check int) "closed family has 6 sets" 6
        (L.size (Instance.laminar o.instance));
      Alcotest.(check bool) "valid" true
        (Schedule.is_valid o.instance o.assignment o.schedule);
      Alcotest.(check bool) "factor two" true (o.makespan <= 2 * o.t_lp);
      (* added singletons have no original counterpart *)
      let lam_c = Instance.laminar o.instance in
      let s2 = Option.get (L.singleton lam_c 2) in
      Alcotest.(check (option int)) "translate new singleton" None (o.translate s2)

let test_cluster_local_global_mix () =
  (* Clustered family: one job per regime — global, cluster, pinned. *)
  let lam = Hs_laminar.Topology.clustered ~m:4 ~clusters:2 in
  let full = Option.get (L.full_set lam) in
  let c0 = Option.get (L.find lam [ 0; 1 ]) in
  let s3 = Option.get (L.singleton lam 3) in
  let nsets = L.size lam in
  let row v = Array.make nsets (Ptime.fin v) in
  let inst = Instance.make_exn lam [| row 6; row 4; row 3 |] in
  let a = [| full; c0; s3 |] in
  let t = Assignment.min_makespan inst a in
  match Hierarchical.schedule_stats inst a ~tmax:t with
  | Error e -> Alcotest.failf "scheduler failed: %s" e
  | Ok (sched, stats) ->
      Alcotest.(check bool) "valid" true (Schedule.is_valid inst a sched);
      Alcotest.(check bool) "bounded events" true (Tape.stops stats <= 6)

let test_all_jobs_forced_global () =
  (* Local capacity zero everywhere except the full set. *)
  let inst =
    Instance.semi_partitioned
      ~global:[| Ptime.fin 3; Ptime.fin 3; Ptime.fin 3 |]
      ~local:
        [|
          [| Ptime.fin 3; Ptime.fin 3 |];
          [| Ptime.fin 3; Ptime.fin 3 |];
          [| Ptime.fin 3; Ptime.fin 3 |];
        |]
  in
  let lam = Instance.laminar inst in
  let full = Option.get (L.full_set lam) in
  let a = Array.make 3 full in
  let t = Assignment.min_makespan inst a in
  Alcotest.(check int) "T = ceil(9/2)" 5 t;
  match Semi_partitioned.schedule_stats inst a ~tmax:t with
  | Error e -> Alcotest.failf "failed: %s" e
  | Ok (sched, stats) ->
      Alcotest.(check bool) "valid" true (Schedule.is_valid inst a sched);
      Alcotest.(check bool) "one migration at most" true (stats.Tape.migrations <= 1)

let test_memory_forces_global () =
  (* Two jobs, tiny budgets on machine 0 only: memory must spread them
     even though machine 0 is much faster. *)
  let inst =
    Instance.semi_partitioned
      ~global:[| Ptime.fin 4; Ptime.fin 4 |]
      ~local:[| [| Ptime.fin 1; Ptime.fin 4 |]; [| Ptime.fin 1; Ptime.fin 4 |] |]
  in
  let payload =
    { Memory.budgets = [| 1; 9 |]; space = [| [| 1; 1 |]; [| 1; 1 |] |] }
  in
  match Memory.solve_model1 inst payload with
  | Error e -> Alcotest.failf "model1 failed: %s" e
  | Ok r ->
      Alcotest.(check bool) "valid" true (Schedule.is_valid inst r.assignment r.schedule);
      Alcotest.(check bool) "budget factor bounded" true
        (Hs_numeric.Q.leq r.max_capacity_factor (Hs_numeric.Q.of_int 3))

let test_dot_rendering () =
  let lam = Hs_laminar.Topology.clustered ~m:4 ~clusters:2 in
  let dot = L.to_dot lam in
  Alcotest.(check bool) "digraph" true (String.length dot > 20);
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec go i = i + n <= h && (String.sub dot i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has root label" true (contains "{0,1,2,3}");
  Alcotest.(check bool) "has cluster label" true (contains "{0,1}");
  Alcotest.(check bool) "has edges" true (contains "->")

let test_gantt_cell_sharing () =
  (* Rescaled cells covered by two different jobs must render '#'. *)
  let seg job machine start stop = { Schedule.job; machine; start; stop } in
  let sched =
    { Schedule.horizon = 200; segments = [ seg 0 0 0 99; seg 1 0 99 200 ] }
  in
  let g = Gantt.render ~max_width:10 sched in
  let has_hash = String.exists (fun ch -> ch = '#') g in
  Alcotest.(check bool) "shared cell marked" true has_hash

let test_instance_pp_smoke () =
  let inst = Hs_workloads.Families.example_ii1 () in
  let s = Format.asprintf "%a" Instance.pp inst in
  Alcotest.(check bool) "pp mentions jobs" true (String.length s > 50)

let test_q_parse_errors () =
  List.iter
    (fun s ->
      match Hs_numeric.Q.of_string s with
      | exception _ -> ()
      | _ -> Alcotest.failf "accepted %S" s)
    [ ""; "a"; "1/"; "1/0" ]

let test_empty_schedule_metrics () =
  let sched = { Schedule.horizon = 5; segments = [] } in
  let m = Metrics.of_schedule ~njobs:3 sched in
  Alcotest.(check int) "no stops" 0 m.stops;
  Alcotest.(check int) "per-job array sized" 3 (Array.length m.per_job);
  Alcotest.(check int) "makespan" 0 (Schedule.makespan sched)

let test_approx_infeasible_instance () =
  let inst = Instance.unrelated [| [| Ptime.Inf; Ptime.Inf |] |] in
  match Approx.Exact.solve inst with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unschedulable instance accepted"

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  ( "edge-cases",
    [
      u "closure pipeline without singletons" test_closure_pipeline_without_singletons;
      u "cluster local/global mix" test_cluster_local_global_mix;
      u "all jobs global" test_all_jobs_forced_global;
      u "memory forces spreading" test_memory_forces_global;
      u "dot rendering" test_dot_rendering;
      u "gantt cell sharing" test_gantt_cell_sharing;
      u "instance pp" test_instance_pp_smoke;
      u "Q parse errors" test_q_parse_errors;
      u "empty schedule metrics" test_empty_schedule_metrics;
      u "approx rejects unschedulable" test_approx_infeasible_instance;
    ] )
