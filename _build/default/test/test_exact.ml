(* Tests for the exact branch-and-bound solver. *)

open Hs_model
open Hs_core
open Hs_workloads

let test_examples () =
  (match Exact.optimal (Families.example_ii1 ()) with
  | Some (a, span, stats) ->
      Alcotest.(check int) "Example II.1 opt" 2 span;
      Alcotest.(check bool) "proven" true stats.proven;
      Alcotest.(check bool) "assignment feasible at opt" true
        (Assignment.feasible (Families.example_ii1 ()) a ~tmax:span)
  | None -> Alcotest.fail "Example II.1 infeasible");
  match Exact.optimal (Families.example_v1 5) with
  | Some (_, span, _) -> Alcotest.(check int) "Example V.1 opt" 4 span
  | None -> Alcotest.fail "Example V.1 infeasible"

let test_infeasible_instance () =
  let inst = Instance.unrelated [| [| Ptime.Inf; Ptime.Inf |] |] in
  Alcotest.(check bool) "no assignment" true (Exact.optimal inst = None);
  Alcotest.(check bool) "brute force agrees" true (Exact.brute_force inst = None)

let test_node_limit_returns_heuristic () =
  (* With a zero node budget the very first search node trips the limit,
     so the result is the (feasible) warm start, flagged unproven. *)
  let rng = Rng.create 12345 in
  let lam = Hs_laminar.Topology.semi_partitioned 4 in
  let inst = Generators.hierarchical rng ~lam ~n:8 ~base:(1, 8) ~overhead:0.2 () in
  match Exact.optimal ~node_limit:0 inst with
  | Some (a, span, stats) ->
      Alcotest.(check bool) "not proven" false stats.proven;
      Alcotest.(check bool) "still feasible" true (Assignment.feasible inst a ~tmax:span)
  | None -> Alcotest.fail "warm start must provide a solution"

let test_empty_instance () =
  (* Zero jobs: optimum 0. *)
  let lam = Hs_laminar.Topology.semi_partitioned 2 in
  let inst = Instance.make_exn lam [||] in
  match Exact.optimal inst with
  | Some (_, span, stats) ->
      Alcotest.(check int) "zero makespan" 0 span;
      Alcotest.(check bool) "proven" true stats.proven
  | None -> Alcotest.fail "empty instance must be trivially solvable"

let prop_bnb_matches_brute_force =
  QCheck.Test.make ~name:"B&B = brute force on tiny instances" ~count:150
    Test_util.seed_arb (fun seed ->
      let inst = Test_util.random_instance ~max_m:3 ~max_n:4 seed in
      match (Exact.optimal inst, Exact.brute_force inst) with
      | Some (_, a, stats), Some (_, b) -> stats.proven && a = b
      | None, None -> true
      | _ -> false)

let prop_warm_start_respected =
  QCheck.Test.make ~name:"initial bound only improves" ~count:60 Test_util.seed_arb
    (fun seed ->
      let inst = Test_util.random_instance ~max_m:3 ~max_n:5 seed in
      match Exact.optimal inst with
      | None -> false
      | Some (a, span, _) -> (
          match Exact.optimal ~initial:(a, span) inst with
          | Some (_, span', stats') -> stats'.proven && span' = span
          | None -> false))

let prop_optimum_feasible_and_minimal =
  QCheck.Test.make ~name:"optimum is feasible; random assignments never beat it"
    ~count:100 Test_util.seed_arb (fun seed ->
      let inst, a = Test_util.random_assigned ~max_m:4 ~max_n:5 seed in
      match Exact.optimal inst with
      | None -> false
      | Some (best, span, _) ->
          Assignment.feasible inst best ~tmax:span
          && Assignment.min_makespan inst a >= span)

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  let qt t = QCheck_alcotest.to_alcotest t in
  ( "exact",
    [
      u "paper examples" test_examples;
      u "infeasible instance" test_infeasible_instance;
      u "node limit" test_node_limit_returns_heuristic;
      u "empty instance" test_empty_instance;
      qt prop_bnb_matches_brute_force;
      qt prop_warm_start_respected;
      qt prop_optimum_feasible_and_minimal;
    ] )
