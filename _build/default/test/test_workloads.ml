(* Tests for the PRNG and the workload generators. *)

open Hs_model
open Hs_workloads

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let seq r = List.init 100 (fun _ -> Rng.int r 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (seq a) (seq b);
  let c = Rng.create 43 in
  Alcotest.(check bool) "different seed, different stream" true (seq (Rng.create 42) <> seq c)

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v;
    let w = Rng.int_range r 5 9 in
    if w < 5 || w > 9 then Alcotest.failf "range violated: %d" w;
    let f = Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_rng_distribution_sanity () =
  let r = Rng.create 11 in
  let counts = Array.make 4 0 in
  for _ = 1 to 40_000 do
    let v = Rng.int r 4 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c -> if c < 9_000 || c > 11_000 then Alcotest.failf "skewed bucket: %d" c)
    counts

let test_rng_errors () =
  let r = Rng.create 1 in
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0));
  Alcotest.check_raises "bad range" (Invalid_argument "Rng.int_range: empty range")
    (fun () -> ignore (Rng.int_range r 5 4))

let test_shuffle_permutes () =
  let r = Rng.create 3 in
  let a = Array.init 20 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 (fun i -> i)) sorted

let prop_generators_validate =
  (* Every generator must produce instances accepted by the monotonicity
     validator (they are built through Instance.make_exn, so the property
     is that generation never raises). *)
  QCheck.Test.make ~name:"generators never produce invalid instances" ~count:150
    Test_util.seed_arb (fun seed ->
      let rng = Rng.create seed in
      let m = 1 + Rng.int rng 8 in
      let u = Generators.unrelated rng ~n:5 ~m ~pmin:1 ~pmax:9 ~correlation:(Rng.float rng) () in
      let lam = Generators.random_laminar rng ~m () in
      let h =
        Generators.hierarchical rng ~lam ~n:5 ~base:(1, 9)
          ~heterogeneity:(1.0 +. Rng.float rng) ~overhead:(Rng.float rng) ()
      in
      let sp = Generators.semi_partitioned_load rng ~m ~load:0.7 ~pmin:1 ~pmax:9 () in
      Instance.njobs u = 5 && Instance.njobs h = 5 && Instance.njobs sp > 0)

let prop_hierarchical_strictly_monotone_with_overhead =
  QCheck.Test.make ~name:"overhead makes parents strictly costlier" ~count:80
    Test_util.seed_arb (fun seed ->
      let rng = Rng.create seed in
      let lam = Hs_laminar.Topology.smp_cmp ~nodes:2 ~chips_per_node:2 ~cores_per_chip:2 in
      let inst = Generators.hierarchical rng ~lam ~n:4 ~base:(2, 8) ~overhead:0.3 () in
      let ok = ref true in
      for j = 0 to 3 do
        List.iter
          (fun s ->
            match Hs_laminar.Laminar.parent lam s with
            | None -> ()
            | Some p ->
                let ps = Instance.ptime inst ~job:j ~set:s in
                let pp = Instance.ptime inst ~job:j ~set:p in
                if not (Ptime.compare ps pp < 0) then ok := false)
          (Hs_laminar.Laminar.bottom_up lam)
      done;
      !ok)

let test_families_shapes () =
  let e = Families.example_ii1 () in
  Alcotest.(check int) "II.1 jobs" 3 (Instance.njobs e);
  Alcotest.(check int) "II.1 machines" 2 (Instance.nmachines e);
  let v = Families.example_v1 6 in
  Alcotest.(check int) "V.1 jobs" 6 (Instance.njobs v);
  Alcotest.(check int) "V.1 machines" 5 (Instance.nmachines v);
  Alcotest.check_raises "V.1 needs n >= 3"
    (Invalid_argument "Families.example_v1: need n >= 3") (fun () ->
      ignore (Families.example_v1 2))

let test_semi_partitioned_load_shape () =
  let rng = Rng.create 5 in
  let inst = Generators.semi_partitioned_load rng ~m:4 ~load:1.0 ~pmin:2 ~pmax:6 () in
  Alcotest.(check bool) "semi-partitioned family" true
    (Hs_laminar.Laminar.is_semi_partitioned (Instance.laminar inst));
  (* global >= local (migration premium keeps monotonicity) *)
  let lam = Instance.laminar inst in
  let full = Option.get (Hs_laminar.Laminar.full_set lam) in
  for j = 0 to Instance.njobs inst - 1 do
    for i = 0 to 3 do
      let s = Option.get (Hs_laminar.Laminar.singleton lam i) in
      if
        not
          (Ptime.leq (Instance.ptime inst ~job:j ~set:s) (Instance.ptime inst ~job:j ~set:full))
      then Alcotest.fail "premium violated monotonicity"
    done
  done

let test_payload_shapes () =
  let rng = Rng.create 9 in
  let inst = Generators.semi_partitioned_load rng ~m:3 ~load:0.5 ~pmin:1 ~pmax:4 () in
  let p1 = Generators.model1_payload rng inst ~smax:5 ~slack:1.5 in
  Alcotest.(check int) "budget per machine" 3 (Array.length p1.budgets);
  Alcotest.(check bool) "spaces in range" true
    (Array.for_all (Array.for_all (fun s -> s >= 1 && s <= 5)) p1.space);
  let p2 = Generators.model2_payload rng inst ~mu:(Hs_numeric.Q.of_int 2) in
  Alcotest.(check bool) "sizes in (0,1]" true
    (Array.for_all
       (fun s -> Hs_numeric.Q.sign s > 0 && Hs_numeric.Q.leq s Hs_numeric.Q.one)
       p2.sizes)

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  let qt t = QCheck_alcotest.to_alcotest t in
  ( "workloads",
    [
      u "rng determinism" test_rng_determinism;
      u "rng bounds" test_rng_bounds;
      u "rng distribution" test_rng_distribution_sanity;
      u "rng errors" test_rng_errors;
      u "shuffle permutes" test_shuffle_permutes;
      u "paper families" test_families_shapes;
      u "semi-partitioned load shape" test_semi_partitioned_load_shape;
      u "memory payload shapes" test_payload_shapes;
      qt prop_generators_validate;
      qt prop_hierarchical_strictly_monotone_with_overhead;
    ] )
