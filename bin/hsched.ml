(* hsched — command-line front end for the hierarchical scheduling library.

   Sub-commands:
     solve       run the Theorem V.2 pipeline on a file or generated instance
     exact       branch-and-bound optimum (small instances)
     generate    emit an instance file from the workload generators
     experiment  run one of the DESIGN.md evaluation experiments (T1..F5)
     sweep       batch-solve instance files on a worker-domain pool
     simulate    replay the solved schedule under migration latencies *)

open Cmdliner
open Hs_model
module L = Hs_laminar.Laminar
module T = Hs_laminar.Topology

(* ---------- shared argument bundles ---------------------------------- *)

let file_arg =
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE" ~doc:"Instance file (see Instance_io format).")

let topology_arg =
  Arg.(
    value
    & opt (enum [ ("semi", `Semi); ("clustered", `Clustered); ("smp-cmp", `Smp); ("random", `Random); ("singletons", `Singletons) ]) `Semi
    & info [ "topology" ] ~docv:"KIND" ~doc:"Generated machine family: semi, clustered, smp-cmp, random, singletons.")

let m_arg = Arg.(value & opt int 4 & info [ "m"; "machines" ] ~docv:"M" ~doc:"Machine count.")
let n_arg = Arg.(value & opt int 8 & info [ "n"; "jobs" ] ~docv:"N" ~doc:"Job count.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic workload seed.")

let overhead_arg =
  Arg.(value & opt float 0.2 & info [ "overhead" ] ~docv:"F" ~doc:"Per-level migration overhead fraction.")

let het_arg =
  Arg.(value & opt float 1.5 & info [ "heterogeneity" ] ~docv:"F" ~doc:"Per-machine speed spread (>= 1).")

let build_topology kind ~m =
  match kind with
  | `Semi -> T.semi_partitioned m
  | `Clustered ->
      let clusters = if m mod 2 = 0 then 2 else 1 in
      T.clustered ~m ~clusters
  | `Smp ->
      (* nearest 2 x 2 x c decomposition *)
      let c = Stdlib.max 1 (m / 4) in
      T.smp_cmp ~nodes:2 ~chips_per_node:2 ~cores_per_chip:c
  | `Random -> Hs_workloads.Generators.random_laminar (Hs_workloads.Rng.create 7) ~m ()
  | `Singletons -> T.singletons m

let load_or_generate file topology m n seed overhead het =
  match file with
  | Some path -> Instance_io.load path
  | None ->
      let rng = Hs_workloads.Rng.create seed in
      let lam = build_topology topology ~m in
      Ok
        (Hs_workloads.Generators.hierarchical rng ~lam ~n ~base:(1, 9)
           ~heterogeneity:het ~overhead ())

(* ---------- observability --------------------------------------------- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON timeline of the solve to FILE (loadable in \
           chrome://tracing or Perfetto).")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Print the solver metrics (counters, gauges, histograms) to stderr.")

let stats_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:"Write the solver metrics registry as JSON to FILE.")

(* ---------- LP engine selection ---------------------------------------- *)

let lp_engine_arg =
  Arg.(
    value
    & opt
        (enum [ ("dense", Hs_lp.Engine.Dense); ("sparse", Hs_lp.Engine.Sparse) ])
        Hs_lp.Engine.Sparse
    & info [ "lp-engine" ] ~docv:"ENGINE"
        ~doc:
          "LP solver engine: 'sparse' (default) is the revised simplex over sparse \
           rows with warm-started bases; 'dense' is the two-phase tableau kept as the \
           differential oracle. Both follow identical pivot trajectories in exact \
           arithmetic, so results, budgets and exit codes are engine-independent.")

let lp_presolve_arg =
  Arg.(
    value & flag
    & info [ "lp-presolve" ]
        ~doc:
          "Guess the optimal basis with a floating-point pre-solve and promote it to \
           exact arithmetic only for certification (sparse engine only). Every guess \
           is re-verified exactly, so verdicts and bounds are unaffected.")

(* Evaluated by cmdliner before any run function body, so the engine is
   pinned for the whole process including at_exit stat dumps. *)
let setup_lp_term =
  let setup engine presolve =
    Hs_lp.Engine.set engine;
    Hs_lp.Engine.set_presolve presolve
  in
  Term.(const setup $ lp_engine_arg $ lp_presolve_arg)

(* The writers run from [at_exit] so that a run cut short by budget
   exhaustion (exit 4) still flushes a well-formed, merely truncated,
   trace and its metrics. *)
let setup_obs trace stats stats_json =
  if trace <> None then begin
    Hs_obs.Tracer.set_clock (fun () -> Int64.of_float (Unix.gettimeofday () *. 1e9));
    Hs_obs.Tracer.enable ()
  end;
  if trace <> None || stats || stats_json <> None then
    at_exit (fun () ->
        (match trace with
        | Some path -> (
            match Hs_obs.Tracer.write_chrome path with
            | Ok () -> ()
            | Error e -> prerr_endline ("hsched: cannot write trace: " ^ e))
        | None -> ());
        let snap = Hs_obs.Metrics.snapshot () in
        (match stats_json with
        | Some path -> (
            let doc = Hs_obs.Json.to_string (Hs_obs.Metrics.to_json snap) in
            try
              let oc = open_out path in
              Fun.protect
                ~finally:(fun () -> close_out_noerr oc)
                (fun () -> output_string oc doc)
            with Sys_error e -> prerr_endline ("hsched: cannot write stats: " ^ e))
        | None -> ());
        if stats then Format.eprintf "%a@?" Hs_obs.Metrics.pp_summary snap)

(* Exit-code contract (documented in README.md): 0 success, 1 internal
   failure, 2 unusable input, 3 infeasible instance, 4 budget
   exhausted. *)
let exit_with code msg =
  prerr_endline ("hsched: " ^ msg);
  exit code

let exit_err msg = exit_with 1 msg
let exit_usage msg = exit_with 2 msg

let exit_typed e =
  exit_with (Hs_core.Hs_error.exit_code e) (Hs_core.Hs_error.to_string e)

(* ---------- solve ----------------------------------------------------- *)

(* The report bodies live in Hs_service.Render: the daemon answers a
   solve request with the exact bytes these commands print, and
   test/service.t pins the identity. *)
let print_outcome ~show_schedule (o : Hs_core.Approx.Exact.outcome) =
  print_string (Hs_service.Render.exact_outcome o);
  if show_schedule then Format.printf "%a@." Schedule.pp o.schedule

let print_robust ~show_schedule ~(budget : Hs_core.Budget.t)
    (r : Hs_core.Approx.robust_outcome) =
  print_string (Hs_service.Render.robust_outcome ~budget r);
  if show_schedule then Format.printf "%a@." Schedule.pp r.r_schedule

(* --check: re-verify the produced artifact with the independent
   certificate checker (lib/check).  Strictly additive: without the flag
   every byte of output is unchanged. *)
let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Re-verify the result with the independent certificate checker: paper \
           invariants (IP-2/IP-3, Lemmas IV.1/IV.2/V.1, Prop. III.2), Section II \
           schedule validity, and the Theorem V.2 bound against a recomputed LP lower \
           bound. A violated invariant exits with code 1.")

let print_verdict v = print_string (Hs_check.Verdict.to_string v)

let enforce_verdict v =
  print_verdict v;
  match Hs_check.Verdict.to_error v with Some e -> exit_typed e | None -> ()

let budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget" ] ~docv:"K"
        ~doc:
          "Deterministic resource budget: K simplex pivots and K branch-and-bound nodes. \
           With a budget, the exact solver is tried first and the pipeline degrades to \
           the certified LP-rounding 2-approximation when the budget runs out.")

let on_exhausted_arg =
  Arg.(
    value
    & opt (enum [ ("fail", `Fail); ("fallback", `Fallback) ]) `Fallback
    & info [ "on-budget-exhausted" ] ~docv:"MODE"
        ~doc:
          "What to do when a budget runs out: 'fallback' (default) degrades to the next \
           solver path, 'fail' exits with code 4.")

let solve_cmd =
  let show_schedule =
    Arg.(value & flag & info [ "print-schedule" ] ~doc:"Print every execution segment.")
  in
  let show_gantt =
    Arg.(value & flag & info [ "gantt" ] ~doc:"Print an ASCII Gantt chart of the schedule.")
  in
  let use_float =
    Arg.(value & flag & info [ "float-lp" ] ~doc:"Use the floating-point LP (faster, uncertified).")
  in
  let run () file topology m n seed overhead het show_schedule show_gantt use_float budget
      on_exhausted check trace stats stats_json =
    setup_obs trace stats stats_json;
    if check && use_float then
      exit_usage "--check certifies the exact pipeline; drop --float-lp";
    match load_or_generate file topology m n seed overhead het with
    | Error e -> exit_usage e
    | Ok inst -> (
        match budget with
        | Some k -> (
            (* Resilient path: budgets, graceful degradation, typed
               errors with distinct exit codes. *)
            let budget = Hs_core.Budget.of_units k in
            match Hs_core.Approx.solve_robust ~budget ~on_exhausted inst with
            | Error e -> exit_typed e
            | Ok r ->
                print_robust ~show_schedule ~budget r;
                if show_gantt then Gantt.print r.r_schedule;
                if check then enforce_verdict (Hs_check.Certify.robust r))
        | None -> (
            if use_float then
              match Hs_core.Approx.Fast.solve inst with
              | Error e -> exit_err e
              | Ok o ->
                  Printf.printf "(float LP path)\n";
                  Printf.printf "LP lower bound T* = %d\nachieved makespan = %d\n" o.t_lp o.makespan
            else
              match Hs_core.Approx.Exact.solve_checked inst with
              | Error e -> exit_typed e
              | Ok o ->
                  print_outcome ~show_schedule o;
                  if show_gantt then Gantt.print o.schedule;
                  if check then enforce_verdict (Hs_check.Certify.outcome o)))
  in
  Cmd.v (Cmd.info "solve" ~doc:"Run the 2-approximation pipeline (Theorem V.2).")
    Term.(const run $ setup_lp_term $ file_arg $ topology_arg $ m_arg $ n_arg $ seed_arg $ overhead_arg $ het_arg $ show_schedule $ show_gantt $ use_float $ budget_arg $ on_exhausted_arg $ check_arg $ trace_arg $ stats_arg $ stats_json_arg)

(* ---------- exact ------------------------------------------------------ *)

let exact_cmd =
  let limit =
    Arg.(value & opt int 20_000_000 & info [ "node-limit" ] ~docv:"K" ~doc:"Branch-and-bound node budget.")
  in
  let run () file topology m n seed overhead het limit on_exhausted trace stats stats_json =
    setup_obs trace stats stats_json;
    match load_or_generate file topology m n seed overhead het with
    | Error e -> exit_usage e
    | Ok inst -> (
        match Hs_core.Exact.optimal ~node_limit:limit inst with
        | None ->
            exit_typed
              (Hs_core.Hs_error.Infeasible
                 { reason = "some job has no admissible mask"; certified = false })
        | Some (_, _, stats) when (not stats.proven) && on_exhausted = `Fail ->
            exit_typed
              (Hs_core.Hs_error.Budget_exhausted
                 {
                   stage = Hs_core.Hs_error.Bb;
                   detail =
                     Printf.sprintf "node budget ran out (used %d of %d nodes)"
                       (Stdlib.min stats.nodes limit) limit;
                 })
        | Some (a, span, stats) ->
            Printf.printf "optimal makespan = %d%s (nodes=%d pruned=%d)\n" span
              (if stats.proven then "" else " (NOT proven: node limit hit)")
              stats.nodes stats.pruned;
            Array.iteri (fun j s -> Printf.printf "  job %d -> set #%d\n" j s) a)
  in
  Cmd.v (Cmd.info "exact" ~doc:"Compute the optimal makespan by branch and bound.")
    Term.(const run $ setup_lp_term $ file_arg $ topology_arg $ m_arg $ n_arg $ seed_arg $ overhead_arg $ het_arg $ limit $ on_exhausted_arg $ trace_arg $ stats_arg $ stats_json_arg)

(* ---------- generate --------------------------------------------------- *)

let generate_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")
  in
  let run topology m n seed overhead het out =
    match load_or_generate None topology m n seed overhead het with
    | Error e -> exit_err e
    | Ok inst -> (
        match out with
        | None -> print_string (Instance_io.to_string inst)
        | Some path -> (
            match Instance_io.save path inst with
            | Ok () -> Printf.printf "wrote %s\n" path
            | Error e -> exit_usage ("cannot write instance: " ^ e)))
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a synthetic instance file.")
    Term.(const run $ topology_arg $ m_arg $ n_arg $ seed_arg $ overhead_arg $ het_arg $ out)

(* ---------- experiment -------------------------------------------------- *)

(* Worker-domain count for the sweep subcommands.  [solve]/[exact] keep
   "--jobs" as the job (task) count of a generated instance; here it
   means parallelism, matching `dune -j` and `make -j`. *)
let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the sweep (default 1 = sequential, 0 = all cores). Results \
           are byte-identical at any value; see DESIGN.md section 10.")

let resolve_jobs_or_exit jobs =
  match Hs_exec.resolve_jobs jobs with
  | j -> j
  | exception Invalid_argument m -> exit_usage m

let experiment_cmd =
  let exp_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"T1..T6, F1..F5, or 'all'.")
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sweeps.") in
  let run () exp_name quick jobs trace stats stats_json =
    setup_obs trace stats stats_json;
    let jobs = resolve_jobs_or_exit jobs in
    Hs_experiments.Experiments.by_name exp_name ~quick ~jobs ()
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate one of the evaluation tables/figures from DESIGN.md.")
    Term.(const run $ setup_lp_term $ exp_name $ quick $ jobs_arg $ trace_arg $ stats_arg $ stats_json_arg)

(* ---------- sweep ------------------------------------------------------- *)

let sweep_cmd =
  let files_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE" ~doc:"Instance files (Instance_io format) to solve in batch.")
  in
  let run () files jobs budget on_exhausted check trace stats stats_json =
    setup_obs trace stats stats_json;
    let jobs = resolve_jobs_or_exit jobs in
    (* Each file is one deterministic work item; [parmap] returns the
       outcomes in argument order, so the report (and the exit code:
       that of the first failing file) is independent of [jobs]. *)
    let certify verdict report =
      match Hs_check.Verdict.to_error verdict with
      | Some e -> Error e
      | None ->
          Ok
            (Printf.sprintf "%s\ncertified: %d invariants re-verified" report
               (List.length (Hs_check.Verdict.items verdict)))
    in
    let solve_one path =
      match Instance_io.load path with
      | Error e -> Error (Hs_core.Hs_error.Parse_error e)
      | Ok inst -> (
          match budget with
          | Some k -> (
              let budget = Hs_core.Budget.of_units k in
              match Hs_core.Approx.solve_robust ~budget ~on_exhausted inst with
              | Error e -> Error e
              | Ok r ->
                  let report =
                    Printf.sprintf "lower bound = %d\nachieved makespan = %d  (path: %s)"
                      r.r_lower_bound r.r_makespan
                      (Hs_core.Approx.provenance_to_string r.r_provenance)
                  in
                  if check then certify (Hs_check.Certify.robust r) report
                  else Ok report)
          | None -> (
              match Hs_core.Approx.Exact.solve_checked inst with
              | Error e -> Error e
              | Ok o ->
                  let report =
                    Printf.sprintf
                      "LP lower bound T* = %d\nachieved makespan = %d  (guarantee: <= %d)"
                      o.t_lp o.makespan (2 * o.t_lp)
                  in
                  if check then certify (Hs_check.Certify.outcome o) report
                  else Ok report))
    in
    let outcomes = Hs_exec.parmap ~jobs solve_one files in
    let first_err = ref None in
    List.iter2
      (fun path outcome ->
        Printf.printf "== %s ==\n" path;
        match outcome with
        | Ok report -> print_endline report
        | Error e ->
            Printf.printf "ERROR: %s\n" (Hs_core.Hs_error.to_string e);
            if !first_err = None then first_err := Some e)
      files outcomes;
    match !first_err with
    | None -> ()
    | Some e -> exit (Hs_core.Hs_error.exit_code e)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Batch-solve instance files on a worker-domain pool. Output order and exit code \
          match a sequential run at any --jobs.")
    Term.(const run $ setup_lp_term $ files_arg $ jobs_arg $ budget_arg $ on_exhausted_arg $ check_arg $ trace_arg $ stats_arg $ stats_json_arg)

(* ---------- check ------------------------------------------------------- *)

let check_cmd =
  let files_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE" ~doc:"Instance files (Instance_io format) to certify.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit each certificate as a JSON object.")
  in
  let assignment_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "assignment" ] ~docv:"CSV"
          ~doc:
            "Check this externally produced assignment (comma-separated set ids, one \
             per job) against each FILE instead of running the pipeline. Requires \
             $(b,--tmax).")
  in
  let tmax_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "tmax" ] ~docv:"T" ~doc:"Horizon for $(b,--assignment) certification.")
  in
  let no_lp_arg =
    Arg.(
      value & flag
      & info [ "no-lp" ]
          ~doc:
            "Skip the LP lower-bound recomputation (the exact-simplex re-derivation of \
             T* and the Farkas check at T*-1); the remaining invariants still run.")
  in
  let run () files json assignment tmax budget jobs no_lp trace stats stats_json =
    setup_obs trace stats stats_json;
    let jobs = resolve_jobs_or_exit jobs in
    let lp = not no_lp in
    let artifact =
      match (assignment, tmax) with
      | None, _ -> `Pipeline
      | Some csv, Some tmax -> (
          let cells = String.split_on_char ',' (String.trim csv) in
          match List.map int_of_string_opt cells with
          | ids when List.for_all Option.is_some ids ->
              `Assignment (Array.of_list (List.map Option.get ids), tmax)
          | _ -> exit_usage ("invalid --assignment: " ^ csv))
      | Some _, None -> exit_usage "--assignment requires --tmax"
    in
    (* One deterministic work item per file, as in sweep: report order
       and exit code are independent of --jobs. *)
    let check_one path =
      match Instance_io.load path with
      | Error e -> Error (Hs_core.Hs_error.Parse_error e)
      | Ok inst -> (
          match artifact with
          | `Assignment (a, tmax) ->
              if Array.length a <> Instance.njobs inst then
                Error
                  (Hs_core.Hs_error.Invalid_instance
                     (Printf.sprintf "--assignment lists %d jobs, %s has %d"
                        (Array.length a) path (Instance.njobs inst)))
              else Ok (Hs_check.Certify.assignment inst a ~tmax)
          | `Pipeline -> (
              match budget with
              | None -> (
                  match Hs_core.Approx.Exact.solve_checked inst with
                  | Error e -> Error e
                  | Ok o -> Ok (Hs_check.Certify.outcome ~lp o))
              | Some k -> (
                  let budget = Hs_core.Budget.of_units k in
                  match
                    Hs_core.Approx.solve_robust ~budget ~on_exhausted:`Fallback inst
                  with
                  | Error e -> Error e
                  | Ok r -> Ok (Hs_check.Certify.robust ~lp r))))
    in
    let outcomes = Hs_exec.parmap ~jobs check_one files in
    let headers = List.length files > 1 in
    let first_err = ref None in
    List.iter2
      (fun path outcome ->
        if headers then Printf.printf "== %s ==\n" path;
        match outcome with
        | Error e ->
            Printf.printf "ERROR: %s\n" (Hs_core.Hs_error.to_string e);
            if !first_err = None then first_err := Some e
        | Ok verdict ->
            if json then
              print_endline (Hs_obs.Json.to_string (Hs_check.Verdict.to_json verdict))
            else print_verdict verdict;
            if !first_err = None then first_err := Hs_check.Verdict.to_error verdict)
      files outcomes;
    match !first_err with
    | None -> ()
    | Some e -> exit (Hs_core.Hs_error.exit_code e)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Independently certify solver artifacts: solve each FILE and re-verify every \
          paper invariant (laminarity, monotonicity, IP-2, Section II schedule \
          validity, the recomputed LP lower bound and the Theorem V.2 factor-2 bound), \
          or certify an externally produced --assignment at a given --tmax. Exit 0 \
          only when every certificate passes.")
    Term.(const run $ setup_lp_term $ files_arg $ json_arg $ assignment_arg $ tmax_arg $ budget_arg $ jobs_arg $ no_lp_arg $ trace_arg $ stats_arg $ stats_json_arg)

(* ---------- service: serve / request / shutdown -------------------------- *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path of the solver daemon.")

let serve_cmd =
  let cache_arg =
    Arg.(value & opt int 128 & info [ "cache" ] ~docv:"K" ~doc:"LRU result-cache capacity (entries).")
  in
  let batch_arg =
    Arg.(
      value & opt int 64
      & info [ "max-batch" ] ~docv:"B"
          ~doc:"Maximum solve requests admitted per domain-pool batch.")
  in
  let quiet_arg = Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the server log on stderr.") in
  let queue_arg =
    Arg.(
      value & opt int 256
      & info [ "max-queue" ] ~docv:"Q"
          ~doc:
            "Admission bound: solve requests beyond Q queued are shed with the typed \
             overloaded response (status 5) and a deterministic retry_after_ms hint. 0 \
             sheds every solve.")
  in
  let retry_hint_arg =
    Arg.(
      value & opt int 50
      & info [ "retry-hint-ms" ] ~docv:"MS"
          ~doc:"Slope of the deterministic retry_after_ms ladder on shed requests.")
  in
  let deadline_units_arg =
    Arg.(
      value
      & opt int Hs_service.Solver.default_deadline_units_per_ms
      & info [ "deadline-units" ] ~docv:"U"
          ~doc:
            "Deadline-to-budget exchange rate: a request deadline of D ms caps its \
             solver budget at D*U units, deterministically.")
  in
  let io_timeout_arg =
    Arg.(
      value & opt float 10.0
      & info [ "io-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-connection IO deadline: clients sitting on a partial frame (or not \
             reading their responses) this long are cut off.")
  in
  let snapshot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Cache snapshot file: restored on startup (each entry must re-prove its \
             fingerprint; tampered entries are rejected) and written back after the \
             drain on shutdown.")
  in
  let chaos_arg =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Fault-injection mode (tests only): a solve whose budget is the reserved \
             chaos sentinel crashes its worker domain, exercising the typed \
             worker-crash answer path.")
  in
  let recorder_arg =
    Arg.(
      value & opt int 256
      & info [ "recorder" ] ~docv:"N"
          ~doc:
            "Flight-recorder capacity: the last N request outcomes (status, queue \
             wait, solve time, shed reason) are kept for $(b,hsched stats --recent) \
             and dumped to the log on drain.")
  in
  let sessions_arg =
    Arg.(
      value & opt int 16
      & info [ "max-sessions" ] ~docv:"S"
          ~doc:
            "Bound on concurrently open online-scheduling sessions; an $(b,online \
             open) beyond it is shed with the typed overloaded response (status 5).")
  in
  let run () socket jobs cache batch queue retry_hint deadline_units io_timeout snapshot
      chaos recorder sessions budget check quiet trace stats stats_json =
    setup_obs trace stats stats_json;
    let jobs = resolve_jobs_or_exit jobs in
    if cache < 1 then exit_usage "cache capacity must be >= 1";
    if batch < 1 then exit_usage "max-batch must be >= 1";
    if queue < 0 then exit_usage "max-queue must be >= 0";
    if retry_hint < 1 then exit_usage "retry-hint-ms must be >= 1";
    if deadline_units < 1 then exit_usage "deadline-units must be >= 1";
    if io_timeout <= 0.0 then exit_usage "io-timeout must be > 0";
    if recorder < 1 then exit_usage "recorder capacity must be >= 1";
    if sessions < 1 then exit_usage "max-sessions must be >= 1";
    if chaos then Hs_service.Engine.install_chaos_sentinel ();
    let log = if quiet then ignore else fun m -> prerr_endline ("hsched-serve: " ^ m) in
    let cfg =
      {
        Hs_service.Daemon.socket_path = socket;
        jobs;
        cache_capacity = cache;
        default_budget = budget;
        max_batch = batch;
        max_queue = queue;
        retry_hint_ms = retry_hint;
        deadline_units_per_ms = deadline_units;
        io_timeout_s = io_timeout;
        snapshot_path = snapshot;
        verify = check;
        recorder_capacity = recorder;
        max_sessions = sessions;
        log;
      }
    in
    match Hs_service.Daemon.run cfg with Ok () -> () | Error e -> exit_usage e
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent solver daemon: a Unix-domain socket speaking the framed \
          JSON protocol of DESIGN.md section 11, with request batching, bounded \
          admission (overload shedding), per-request deadlines, a canonical-hash \
          result cache and optional crash-recovery snapshots.")
    Term.(
      const run $ setup_lp_term $ socket_arg $ jobs_arg $ cache_arg $ batch_arg $ queue_arg
      $ retry_hint_arg $ deadline_units_arg $ io_timeout_arg $ snapshot_arg $ chaos_arg
      $ recorder_arg $ sessions_arg $ budget_arg $ check_arg $ quiet_arg $ trace_arg
      $ stats_arg $ stats_json_arg)

let request_cmd =
  let files_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE" ~doc:"Instance files (Instance_io format) to solve through the daemon.")
  in
  let stats_q_arg =
    Arg.(value & flag & info [ "server-stats" ] ~doc:"Query the daemon's service counters.")
  in
  let ping_arg = Arg.(value & flag & info [ "ping" ] ~doc:"Liveness check.") in
  let shutdown_arg =
    Arg.(
      value & flag
      & info [ "shutdown" ]
          ~doc:
            "Append a shutdown request after the solves; the daemon answers every \
             pipelined solve before acknowledging (graceful drain).")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry a solve shed by the daemon (status 5: overloaded) up to N times, \
             backing off exponentially with deterministic jitter and honouring the \
             daemon's retry_after_ms hint. Retried solves are sent sequentially, not \
             pipelined.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-request deadline: expires in the daemon's admission queue (status 6) \
             and deterministically caps the solver budget at the daemon's \
             deadline-units exchange rate.")
  in
  let req_trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Trace the request end to end: mint a deterministic trace id (digest of \
             the instance texts), carry it on every solve, absorb the server-side \
             spans from the responses and write one merged Chrome trace_event \
             timeline — client connect/send/await next to the daemon's queue-wait, \
             batch, solve and render spans — to FILE.")
  in
  let run socket budget retries deadline_ms files stats_q ping shutdown trace =
    if retries < 0 then exit_usage "retries must be >= 0";
    (match deadline_ms with
    | Some d when d < 0 -> exit_usage "deadline-ms must be >= 0"
    | _ -> ());
    setup_obs trace false None;
    let read_file path =
      match In_channel.with_open_text path In_channel.input_all with
      | text -> text
      | exception Sys_error e -> exit_usage e
    in
    let file_texts = List.map (fun path -> (path, read_file path)) files in
    (* The trace id is deterministic — the digest of what is being asked
       — so a re-run of the same request joins the same trace. *)
    let trace_id =
      match trace with
      | None -> None
      | Some _ ->
          Some
            (Digest.to_hex
               (Digest.string (String.concat "\x00" (List.map snd file_texts))))
    in
    Hs_obs.Tracer.set_trace_id trace_id;
    let reqs =
      List.map
        (fun (path, instance_text) ->
          ( `File path,
            Hs_service.Protocol.Solve { instance_text; budget; deadline_ms; trace_id }
          ))
        file_texts
      @ (if ping then [ (`Other, Hs_service.Protocol.Ping) ] else [])
      @ (if stats_q then [ (`Other, Hs_service.Protocol.Stats) ] else [])
      @ if shutdown then [ (`Other, Hs_service.Protocol.Shutdown) ] else []
    in
    if reqs = [] then exit_usage "nothing to request: give instance FILEs or a flag";
    (* A single solve prints its body alone, byte-identical to the
       offline `hsched solve`; anything else gets per-file headers in
       request order (the sweep subcommand's format). *)
    let headers = List.length reqs > 1 in
    match Hs_service.Client.connect socket with
    | Error e -> exit_typed (Hs_core.Hs_error.Unavailable e)
    | Ok client -> (
        let result =
          if retries = 0 then Hs_service.Client.call_many client (List.map snd reqs)
          else
            (* Sequential so each shed answer's backoff hint is honoured
               before the next attempt hits the admission queue. *)
            let rec each acc = function
              | [] -> Ok (List.rev acc)
              | (_, req) :: rest -> (
                  match Hs_service.Client.call_with_retry ~retries client req with
                  | Error _ as e -> e
                  | Ok r -> each (r :: acc) rest)
            in
            each [] reqs
        in
        Hs_service.Client.close client;
        match result with
        | Error e -> exit_err e
        | Ok resps ->
            (* Stitch the server side in: decode the spans each traced
               response carried back and absorb them into this process's
               sink as remote (the Chrome exporter gives them their own
               process track).  One batch serves many requests, so the
               same span can ride back on several responses — dedup on
               the wire form.  A span that fails to decode degrades the
               trace, never the request. *)
            (if trace <> None then begin
               let seen = Hashtbl.create 64 in
               List.iter
                 (fun (r : Hs_service.Protocol.response) ->
                   r.spans
                   |> List.filter (fun j ->
                          let s = Hs_obs.Json.to_string j in
                          if Hashtbl.mem seen s then false
                          else begin
                            Hashtbl.add seen s ();
                            true
                          end)
                   |> List.filter_map (fun j ->
                          Result.to_option (Hs_obs.Tracer.span_of_json j))
                   |> Hs_obs.Tracer.absorb_remote)
                 resps
             end);
            let first_err = ref 0 in
            List.iter2
              (fun (label, _) (r : Hs_service.Protocol.response) ->
                (match label with
                | `File path when headers -> Printf.printf "== %s ==\n" path
                | _ -> ());
                if r.status = 0 then begin
                  print_string r.body;
                  if r.body = "" || r.body.[String.length r.body - 1] <> '\n' then
                    print_newline ()
                end
                else begin
                  Printf.printf "ERROR: %s\n" r.error;
                  if !first_err = 0 then first_err := r.status
                end)
              reqs resps;
            if !first_err <> 0 then exit !first_err)
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Solve instance files through a running daemon. All requests are pipelined on \
          one connection, so they land in the daemon's admission queue as a batch; \
          output order and exit code match the offline sweep. With --retries, shed \
          requests are retried with deterministic backoff. With --trace, the \
          server-side spans ride back on the responses and the run writes one merged \
          client/server Chrome trace.")
    Term.(
      const run $ socket_arg $ budget_arg $ retries_arg $ deadline_arg $ files_arg
      $ stats_q_arg $ ping_arg $ shutdown_arg $ req_trace_arg)

(* ---------- stats: live daemon introspection --------------------------- *)

(* Smallest bucket bound covering quantile [q] of a histogram snapshot —
   the honest "p99 <= X ms" a fixed-bucket histogram can give. *)
let hist_quantile (h : Hs_obs.Metrics.hist_snapshot) q =
  let target =
    Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int h.observations)))
  in
  let rec go i cum = function
    | [] -> Printf.sprintf ">%d" (List.fold_left Stdlib.max 0 h.buckets)
    | b :: rest ->
        let cum = cum + h.counts.(i) in
        if cum >= target then string_of_int b else go (i + 1) cum rest
  in
  go 0 0 h.buckets

let print_stats_prom doc =
  let module J = Hs_obs.Json in
  match J.member "metrics" doc with
  | None -> exit_err "introspection body has no \"metrics\""
  | Some m -> (
      match Hs_obs.Metrics.of_json m with
      | Error e -> exit_err ("undecodable metrics: " ^ e)
      | Ok snap ->
          print_string (Hs_obs.Metrics.to_prometheus snap);
          (* Loop-local state that has no registry cell: uptime and the
             instantaneous (not high-water) queue depth. *)
          (match J.member "uptime_s" doc with
          | Some (J.Float u) ->
              Printf.printf "# TYPE hsched_uptime_seconds gauge\nhsched_uptime_seconds %g\n" u
          | Some (J.Int u) ->
              Printf.printf "# TYPE hsched_uptime_seconds gauge\nhsched_uptime_seconds %d\n" u
          | _ -> ());
          match J.member "queue_depth" doc with
          | Some (J.Int q) ->
              Printf.printf "# TYPE hsched_queue_now gauge\nhsched_queue_now %d\n" q
          | _ -> ())

let print_stats_text ~recent doc =
  let module J = Hs_obs.Json in
  let int k = match J.member k doc with Some (J.Int i) -> i | _ -> 0 in
  let bool_ k = match J.member k doc with Some (J.Bool b) -> b | _ -> false in
  let uptime =
    match J.member "uptime_s" doc with
    | Some (J.Float u) -> u
    | Some (J.Int u) -> float_of_int u
    | _ -> 0.0
  in
  match J.member "metrics" doc with
  | None -> exit_err "introspection body has no \"metrics\""
  | Some m -> (
      match Hs_obs.Metrics.of_json m with
      | Error e -> exit_err ("undecodable metrics: " ^ e)
      | Ok snap ->
          let c name = Option.value ~default:0 (Hs_obs.Metrics.find_counter snap name) in
          let g name = Option.value ~default:0 (Hs_obs.Metrics.find_gauge snap name) in
          Printf.printf "uptime: %.1fs\n" uptime;
          Printf.printf "queue depth: %d (high water %d)\n" (int "queue_depth")
            (g "service.queue.depth");
          Printf.printf "connections: %d\n" (int "connections");
          Printf.printf "draining: %b\n" (bool_ "draining");
          Printf.printf "cache entries: %d\n" (int "cache_entries");
          Printf.printf "requests: %d (shed %d, deadline missed %d)\n"
            (c "service.requests") (c "service.shed") (c "service.deadline_miss");
          let hits = c "service.cache.hit" and misses = c "service.cache.miss" in
          Printf.printf "cache: %d hit(s) / %d miss(es)%s\n" hits misses
            (if hits + misses = 0 then ""
             else
               Printf.sprintf " (hit ratio %.1f%%)"
                 (100.0 *. float_of_int hits /. float_of_int (hits + misses)));
          Printf.printf "frames: %d in / %d out (%d / %d bytes)\n" (c "frame.decoded")
            (c "frame.encoded") (c "frame.bytes.in") (c "frame.bytes.out");
          print_endline "phase latency (ms):";
          List.iter
            (fun (label, name) ->
              match Hs_obs.Metrics.find_histogram snap name with
              | Some h when h.Hs_obs.Metrics.observations > 0 ->
                  Printf.printf "  %-6s n=%d p50<=%s p99<=%s\n" label
                    h.Hs_obs.Metrics.observations (hist_quantile h 0.5)
                    (hist_quantile h 0.99)
              | _ -> Printf.printf "  %-6s n=0\n" label)
            [
              ("queue", "service.phase.queue_ms");
              ("solve", "service.phase.solve_ms");
              ("render", "service.phase.render_ms");
              ("write", "service.phase.write_ms");
            ];
          (match J.member "recorder" doc with
          | Some r ->
              let ri k = match J.member k r with Some (J.Int i) -> i | _ -> 0 in
              Printf.printf
                "flight recorder: %d outcome(s) recorded, last %d held (capacity %d)\n"
                (ri "recorded")
                (Stdlib.min (ri "recorded") (ri "capacity"))
                (ri "capacity")
          | None -> ());
          if recent then
            match J.member "recent" doc with
            | Some (J.List entries) ->
                print_endline "recent outcomes (oldest first):";
                List.iter
                  (fun j ->
                    match Hs_service.Recorder.entry_of_json j with
                    | Ok e -> print_endline ("  " ^ Hs_service.Recorder.entry_to_line e)
                    | Error _ -> ())
                  entries
            | _ -> ())

let stats_cmd =
  let socket_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SOCKET" ~doc:"Unix-domain socket path of the solver daemon.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the raw hsched.introspect/1 JSON document.")
  in
  let prom_arg =
    Arg.(
      value & flag
      & info [ "prom" ]
          ~doc:
            "Print the metrics in Prometheus text exposition format (hsched_ \
             namespace, cumulative histogram buckets).")
  in
  let recent_arg =
    Arg.(
      value & flag
      & info [ "recent" ]
          ~doc:
            "Include the flight recorder: the last N request outcomes (status, queue \
             wait, solve time, shed reason, retry hint), oldest first.")
  in
  let run socket json prom recent =
    if json && prom then exit_usage "--json and --prom are mutually exclusive";
    match Hs_service.Client.connect ~retries:0 socket with
    | Error e -> exit_typed (Hs_core.Hs_error.Unavailable e)
    | Ok client -> (
        let result =
          Hs_service.Client.call client (Hs_service.Protocol.Introspect { recent })
        in
        Hs_service.Client.close client;
        match result with
        | Error e -> exit_err e
        | Ok r when r.status <> 0 -> exit_with r.status ("stats failed: " ^ r.error)
        | Ok r ->
            if json then print_endline r.body
            else (
              match Hs_obs.Json.parse r.body with
              | Error e -> exit_err ("undecodable introspection body: " ^ e)
              | Ok doc ->
                  if prom then print_stats_prom doc else print_stats_text ~recent doc))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Live daemon introspection, answered out of band (never through the \
          admission queue, so it works during overload): uptime, queue depth, \
          shed/deadline counters, cache hit ratio and per-phase latency histograms, \
          as text, --json, or --prom; --recent adds the flight recorder.")
    Term.(const run $ socket_pos $ json_arg $ prom_arg $ recent_arg)

let shutdown_cmd =
  let run socket =
    match Hs_service.Client.connect ~retries:0 socket with
    | Error e -> exit_typed (Hs_core.Hs_error.Unavailable e)
    | Ok client -> (
        let result = Hs_service.Client.call client Hs_service.Protocol.Shutdown in
        Hs_service.Client.close client;
        match result with
        | Error e -> exit_err e
        | Ok r ->
            if r.status = 0 then print_endline "server shut down"
            else exit_with r.status ("shutdown failed: " ^ r.error))
  in
  Cmd.v
    (Cmd.info "shutdown"
       ~doc:"Gracefully stop a running daemon: drain in-flight work, then exit.")
    Term.(const run $ socket_arg)

(* ---------- realtime ------------------------------------------------------ *)

let realtime_cmd =
  let tasks_arg =
    Arg.(
      value
      & opt (list ~sep:',' (pair ~sep:':' int int)) [ (10, 6); (20, 9); (10, 5); (40, 8) ]
      & info [ "tasks" ] ~docv:"P:C,P:C,.."
          ~doc:"Periodic tasks as period:wcet pairs (base WCET on a single core).")
  in
  let run topology m seed overhead tasks =
    ignore seed;
    let lam = build_topology topology ~m in
    let taskset =
      Array.of_list
        (List.mapi
           (fun i (period, base) ->
             Hs_realtime.Task.of_base ~lam ~name:(Printf.sprintf "t%d" i) ~period ~base
               ~overhead ())
           tasks)
    in
    Printf.printf "slice D = %d, hyperperiod = %d, total min utilization = %s / %d cores\n"
      (Hs_realtime.Task.slice_length taskset)
      (Hs_realtime.Task.hyperperiod taskset)
      (Hs_numeric.Q.to_string (Hs_realtime.Task.total_min_utilization taskset))
      (L.m lam);
    match Hs_realtime.Dpfair.analyze lam taskset with
    | Hs_realtime.Dpfair.Schedulable s ->
        Printf.printf "SCHEDULABLE with template of length %d:\n" s.slice;
        Array.iteri
          (fun j set ->
            Printf.printf "  %-4s -> {%s}\n" taskset.(j).Hs_realtime.Task.name
              (String.concat ","
                 (List.map string_of_int (Array.to_list (L.members lam set)))))
          s.assignment;
        Gantt.print s.template
    | Hs_realtime.Dpfair.Infeasible why -> Printf.printf "INFEASIBLE: %s\n" why
    | Hs_realtime.Dpfair.Unknown why -> Printf.printf "UNKNOWN: %s\n" why
  in
  Cmd.v
    (Cmd.info "realtime"
       ~doc:"DP-Fair style schedulability analysis of periodic tasks with affinities.")
    Term.(const run $ topology_arg $ m_arg $ seed_arg $ overhead_arg $ tasks_arg)

(* ---------- topology ----------------------------------------------------- *)

let topology_cmd =
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit GraphViz DOT instead of text.") in
  let run topology m dot =
    let lam = build_topology topology ~m in
    if dot then print_string (L.to_dot lam) else Format.printf "%a@." L.pp lam
  in
  Cmd.v
    (Cmd.info "topology" ~doc:"Show a machine family (text or GraphViz DOT).")
    Term.(const run $ topology_arg $ m_arg $ dot)

(* ---------- simulate ----------------------------------------------------- *)

let simulate_cmd =
  let latencies =
    Arg.(
      value
      & opt (list int) [ 0; 1; 2; 4 ]
      & info [ "latencies" ] ~docv:"L0,L1,.."
          ~doc:"Migration latency per LCA height (clamped at the last entry).")
  in
  let run file topology m n seed overhead het latencies =
    match load_or_generate file topology m n seed overhead het with
    | Error e -> exit_err e
    | Ok inst -> (
        match Hs_core.Approx.Exact.solve inst with
        | Error e -> exit_err e
        | Ok o ->
            let lam = Instance.laminar o.instance in
            let latency =
              Hs_sim.Simulator.latency_of_levels lam (Array.of_list latencies)
            in
            let r = Hs_sim.Simulator.run ~lam o.schedule ~latency in
            Printf.printf "model makespan    = %d\n" r.model_makespan;
            Printf.printf "realised makespan = %d\n" r.realised_makespan;
            Printf.printf "total stall       = %d\n" r.total_stall;
            List.iter
              (fun (h, c) -> Printf.printf "migrations at LCA height %d: %d\n" h c)
              r.migrations_by_level)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Replay the solved schedule under explicit migration latencies.")
    Term.(const run $ file_arg $ topology_arg $ m_arg $ n_arg $ seed_arg $ overhead_arg $ het_arg $ latencies)

(* ---------- online -------------------------------------------------------- *)

module Replay = Hs_online.Replay
module Trace_io = Hs_online.Trace_io

let online_cmd =
  let trace_pos =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"TRACE"
          ~doc:
            "Trace file (Trace_io format). When omitted, a trace is generated from \
             $(b,--seed)/$(b,--events)/$(b,--topology) and friends.")
  in
  let events_arg =
    Arg.(value & opt int 40 & info [ "events" ] ~docv:"E" ~doc:"Generated trace length.")
  in
  let departures_arg =
    Arg.(
      value & opt float 0.3
      & info [ "departures" ] ~docv:"F"
          ~doc:"Probability a generated event departs a live job.")
  in
  let drains_arg =
    Arg.(
      value & opt int 0
      & info [ "drains" ] ~docv:"D"
          ~doc:"Distinct machines drained at evenly spaced positions of the generated trace.")
  in
  let max_live_arg =
    Arg.(
      value & opt int 8
      & info [ "max-live" ] ~docv:"K"
          ~doc:"Cap on concurrently live jobs in the generated trace (0 = unlimited).")
  in
  let beta_arg =
    Arg.(
      value & opt string "inf"
      & info [ "migration-budget" ] ~docv:"BETA"
          ~doc:
            "Migration budget coefficient: the cumulative voluntarily migrated volume \
             stays within BETA times the arrived volume (exact rationals). An integer, \
             fraction (\"1/2\"), decimal (\"0.5\"), or \"inf\" (unlimited, the \
             clairvoyant comparator).")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Write the (loaded or generated) trace to FILE.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Certify every intermediate schedule with the independent checker: \
             Theorem IV.3 makespan tightness, the fresh LP lower bound, \
             migration-budget accounting and the conditional factor-2 envelope. Any \
             violated invariant exits with code 1.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the hsched.online/1 JSON document instead of the table.")
  in
  let latencies_arg =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "latencies" ] ~docv:"L0,L1,.."
          ~doc:
            "Charge each migration a stall from this per-level table (the height of \
             the smallest family set spanning the move, clamped at the last entry) \
             and report totals — the latency model of $(b,hsched simulate).")
  in
  let socket_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Stream the replay through a running daemon instead of replaying locally: \
             open an online session, send one event per request, close for the \
             summary. Output is identical to the local replay.")
  in
  let report ~json ~beta ~latencies (outcome : Replay.outcome) =
    if json then
      print_endline (Hs_obs.Json.to_string (Replay.outcome_to_json outcome))
    else begin
      let buf = Buffer.create 1024 in
      Replay.render_table buf outcome.Replay.steps;
      Buffer.add_char buf '\n';
      Replay.render_summary buf ?beta outcome.Replay.summary;
      (match latencies with
      | None -> ()
      | Some table ->
          let levels =
            List.concat_map (fun (s : Replay.step) -> s.Replay.move_levels)
              outcome.Replay.steps
          in
          let table = Array.of_list table in
          Buffer.add_string buf
            (Printf.sprintf "migration stall %d over %d move(s)\n"
               (Hs_sim.Simulator.stall_of_levels ~table levels)
               (List.length levels));
          List.iter
            (fun (h, c) ->
              Buffer.add_string buf (Printf.sprintf "  moves at level %d: %d\n" h c))
            (Hs_sim.Simulator.count_by_level levels));
      print_string (Buffer.contents buf)
    end;
    if outcome.Replay.summary.Replay.check_failures > 0 then
      exit_err
        (Printf.sprintf "%d online step(s) failed certification"
           outcome.Replay.summary.Replay.check_failures)
  in
  let run () trace_pos socket beta_s check jobs json save events m topology seed overhead
      het departures drains max_live latencies otrace stats stats_json =
    setup_obs otrace stats stats_json;
    let jobs = resolve_jobs_or_exit jobs in
    let beta =
      match beta_s with
      | "inf" -> None
      | s -> (
          match Hs_numeric.Q.of_string s with
          | q when Hs_numeric.Q.sign q >= 0 -> Some q
          | _ -> exit_usage (Printf.sprintf "migration budget %S is negative" s)
          | exception _ -> exit_usage (Printf.sprintf "unparsable migration budget %S" s))
    in
    let tr =
      match trace_pos with
      | Some path -> (
          match Trace_io.load path with Ok t -> t | Error e -> exit_usage e)
      | None -> (
          let lam = build_topology topology ~m in
          let max_live = if max_live = 0 then None else Some max_live in
          match
            Hs_workloads.Generators.trace ~seed ~lam ~events ~base:(1, 9)
              ~heterogeneity:het ~overhead ~departures ~drains ?max_live ()
          with
          | t -> t
          | exception Invalid_argument e -> exit_usage e)
    in
    (match save with
    | None -> ()
    | Some path -> (
        match Trace_io.save path tr with
        | Ok () -> ()
        | Error e -> exit_usage ("cannot write trace: " ^ e)));
    match socket with
    | None -> (
        match Replay.run ?beta ~check ~jobs tr with
        | Error e -> exit_usage e
        | Ok outcome -> report ~json ~beta ~latencies outcome)
    | Some sock -> (
        (* Streaming replay: open with the family alone, then one event
           per request.  Steps come back as JSON and re-render the same
           table; a certification failure is a status-1 response whose
           body still carries the step, so the stream continues and the
           exit code is enforced at the end (same as the local path). *)
        match Hs_service.Client.connect sock with
        | Error e -> exit_typed (Hs_core.Hs_error.Unavailable e)
        | Ok client ->
            let fail (r : Hs_service.Protocol.response) =
              Hs_service.Client.close client;
              exit_with r.status ("online failed: " ^ r.error)
            in
            let call req =
              match Hs_service.Client.call client req with
              | Error e ->
                  Hs_service.Client.close client;
                  exit_err e
              | Ok r -> r
            in
            let header =
              Trace_io.to_string (Hs_online.Trace.make_exn (Hs_online.Trace.laminar tr) [])
            in
            let beta_text = Option.map Hs_numeric.Q.to_string beta in
            let ropen =
              call
                (Hs_service.Protocol.Online
                   (Hs_service.Protocol.Online_open
                      { trace_text = header; beta = beta_text; check }))
            in
            if ropen.status <> 0 then fail ropen;
            let sid =
              match Hs_obs.Json.parse ropen.body with
              | Ok j -> (
                  match Hs_obs.Json.member "session" j with
                  | Some (Hs_obs.Json.Int sid) -> sid
                  | _ -> exit_err "open answer has no session id")
              | Error e -> exit_err ("undecodable open answer: " ^ e)
            in
            let steps =
              List.map
                (fun ev ->
                  let r =
                    call
                      (Hs_service.Protocol.Online
                         (Hs_service.Protocol.Online_event
                            { session = sid; event_text = Trace_io.event_to_line ev }))
                  in
                  if r.status <> 0 && r.body = "" then fail r;
                  match Hs_obs.Json.parse r.body with
                  | Error e -> exit_err ("undecodable step: " ^ e)
                  | Ok j -> (
                      match Replay.step_of_json j with
                      | Error e -> exit_err e
                      | Ok s -> s))
                (Hs_online.Trace.events tr)
            in
            let rclose =
              call
                (Hs_service.Protocol.Online
                   (Hs_service.Protocol.Online_close { session = sid }))
            in
            Hs_service.Client.close client;
            if rclose.status <> 0 then fail rclose;
            let summary =
              match Hs_obs.Json.parse rclose.body with
              | Error e -> exit_err ("undecodable summary: " ^ e)
              | Ok j -> (
                  match Replay.summary_of_json j with
                  | Error e -> exit_err e
                  | Ok s -> s)
            in
            report ~json ~beta ~latencies { Replay.steps; summary })
  in
  Cmd.v
    (Cmd.info "online"
       ~doc:
         "Replay an arrival/departure/drain trace through the online scheduler: a \
          certified assignment is maintained across events, re-solving with the \
          Theorem V.2 pipeline whenever the migration budget admits it. Replays a \
          trace file or a seeded generated trace, locally (byte-identical at any \
          --jobs) or streamed through a daemon with --socket.")
    Term.(
      const run $ setup_lp_term $ trace_pos $ socket_opt_arg $ beta_arg $ check_arg $ jobs_arg
      $ json_arg $ save_arg $ events_arg $ m_arg $ topology_arg $ seed_arg
      $ overhead_arg $ het_arg $ departures_arg $ drains_arg $ max_live_arg
      $ latencies_arg $ trace_arg $ stats_arg $ stats_json_arg)

let () =
  let doc = "hierarchical and semi-partitioned parallel scheduling (IPDPS'17 reproduction)" in
  let info = Cmd.info "hsched" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            solve_cmd;
            exact_cmd;
            generate_cmd;
            experiment_cmd;
            sweep_cmd;
            check_cmd;
            simulate_cmd;
            online_cmd;
            topology_cmd;
            realtime_cmd;
            serve_cmd;
            request_cmd;
            stats_cmd;
            shutdown_cmd;
          ]))
