Deterministic CLI walkthrough (all seeds fixed; outputs promoted from a
verified run and guarded against regressions).

Solve a generated semi-partitioned instance with the certified pipeline:

  $ ../../bin/hsched.exe solve --m 3 --jobs 6 --seed 1
  LP lower bound T* = 14
  achieved makespan = 18  (guarantee: <= 28)
  fractional jobs rounded: 2 (matched 2)
    job 0 -> {0} (p=4)
    job 1 -> {1} (p=9)
    job 2 -> {2} (p=14)
    job 3 -> {0} (p=4)
    job 4 -> {1} (p=9)
    job 5 -> {0} (p=2)
  schedule: VALID, horizon 18

Gantt view of the same schedule:

  $ ../../bin/hsched.exe solve --m 3 --jobs 6 --seed 1 --gantt | tail -4
  time 0..18
  m0   |0000333355........|
  m1   |111111111444444444|
  m2   |22222222222222....|

Branch-and-bound optimum of the same instance:

  $ ../../bin/hsched.exe exact --m 3 --jobs 6 --seed 1 | head -1
  optimal makespan = 14 (nodes=10 pruned=27)

Instance file round trip:

  $ ../../bin/hsched.exe generate --topology clustered --m 4 --jobs 3 --seed 5 -o inst.txt
  wrote inst.txt
  $ cat inst.txt
  machines 4
  sets 7
  0
  0 1
  0 1 2 3
  1
  2
  2 3
  3
  jobs 3
  5 7 8 6 5 6 5
  3 4 5 3 3 4 3
  4 6 7 5 4 5 4
  $ ../../bin/hsched.exe solve --file inst.txt | head -2
  LP lower bound T* = 5
  achieved makespan = 8  (guarantee: <= 10)

Topologies:

  $ ../../bin/hsched.exe topology --topology smp-cmp --m 8 | head -4
  laminar family over 8 machines:
    #0 {0} level=4 height=0 parent=#1
    #1 {0,1} level=3 height=1 parent=#2
    #2 {0,1,2,3} level=2 height=2 parent=#3

Migration-latency simulation:

  $ ../../bin/hsched.exe simulate --m 4 --jobs 6 --seed 2 --latencies 0,2,5 | head -3
  model makespan    = 10
  realised makespan = 10
  total stall       = 0

Real-time schedulability (DP-Fair with affinities):

  $ ../../bin/hsched.exe realtime --m 4 --topology clustered --tasks 10:6,20:9,10:5
  slice D = 10, hyperperiod = 20, total min utilization = 31/20 / 4 cores
  SCHEDULABLE with template of length 10:
    t0   -> {0}
    t1   -> {2}
    t2   -> {3}
  time 0..10
  m0   |000000....|
  m1   |..........|
  m2   |11111.....|
  m3   |22222.....|

Unknown experiment name is reported:

  $ ../../bin/hsched.exe experiment bogus
  unknown experiment bogus (T1-T6, F1-F5, A1-A3, all)

Resource budgets and graceful degradation.  A node budget too small to
prove optimality makes the exact attempt exhaust; the solver degrades to
the LP + LST 2-approximation and reports the re-certified result:

  $ ../../bin/hsched.exe solve --m 8 --jobs 16 --topology clustered --seed 2 --budget 20000
  path: lp-rounding 2-approximation (dantzig pricing)
  degraded: budget exhausted [branch-and-bound]: node budget ran out (used 20000 of 20000 nodes); incumbent makespan 14 unproven
  budget: used 281 of 20000 pivots
  lower bound = 13
  achieved makespan = 22  (guarantee: <= 26)
  schedule: VALID (re-certified), horizon 22

With --on-budget-exhausted=fail the same exhaustion is fatal (exit 4):

  $ ../../bin/hsched.exe exact --m 8 --jobs 16 --topology clustered --seed 2 --node-limit 20000 --on-budget-exhausted=fail
  hsched: budget exhausted [branch-and-bound]: node budget ran out (used 20000 of 20000 nodes)
  [4]

A pivot budget too small for any LP attempt exhausts the whole fallback
chain (exit 4):

  $ ../../bin/hsched.exe solve --m 3 --jobs 6 --seed 1 --budget 5
  hsched: budget exhausted [lp]: simplex pivot budget ran out at T=25 (used 5 of 5 pivots)
  [4]

An instance where some job admits no finite mask is infeasible (exit 3):

  $ cat > infeasible.txt <<'INST'
  > machines 2
  > sets 3
  > 0 1
  > 0
  > 1
  > jobs 2
  > 4 2 3
  > inf inf inf
  > INST
  $ ../../bin/hsched.exe solve --file infeasible.txt --budget 1000
  hsched: infeasible: some job has no admissible mask
  [3]

Malformed input is a usage error (exit 2), as is a missing file or an
unwritable output path:

  $ cat > nonlaminar.txt <<'INST'
  > machines 2
  > sets 2
  > 0 1
  > 0 2
  > jobs 1
  > 3 2
  > INST
  $ ../../bin/hsched.exe solve --file nonlaminar.txt
  hsched: laminar: machine 2 out of range in set 1
  [2]
  $ ../../bin/hsched.exe solve --file does-not-exist.txt
  hsched: does-not-exist.txt: No such file or directory
  [2]
  $ ../../bin/hsched.exe generate --m 2 --jobs 2 --seed 1 -o /nonexistent/dir/x.txt
  hsched: cannot write instance: /nonexistent/dir/x.txt: No such file or directory
  [2]
