(* The independent certificate checker (lib/check) and the
   property-based oracle harness: certificates pass on honest pipeline
   output, fail with pinpointing witnesses on corrupted artifacts, and
   the shrinker deterministically reduces failures to minimal
   counterexamples. *)

open Hs_model
open Hs_check
module Oracle = Hs_workloads.Oracle
module Shrink = Hs_workloads.Shrink
module Families = Hs_workloads.Families

(* {1 Certificates on honest output} *)

let test_outcome_certified () =
  List.iter
    (fun seed ->
      let inst = Oracle.instance_of_seed ~max_m:4 ~max_n:6 seed in
      match Oracle.certify_solve inst with
      | Oracle.Certified -> ()
      | Oracle.Infeasible -> Alcotest.failf "seed %d: unexpected infeasible" seed
      | Oracle.Violated v ->
          Alcotest.failf "seed %d: [%s] %s" seed v.invariant v.witness)
    [ 1; 2; 3; 4; 5 ]

let test_examples_certified () =
  List.iter
    (fun inst ->
      match Hs_core.Approx.Exact.solve_checked inst with
      | Error e -> Alcotest.failf "solve: %s" (Hs_core.Hs_error.to_string e)
      | Ok o ->
          let v = Certify.outcome o in
          if not (Verdict.ok v) then Alcotest.fail (Verdict.to_string v))
    [ Families.example_ii1 (); Families.example_v1 4; Families.example_v1 6 ]

let test_robust_certified () =
  let inst = Oracle.instance_of_seed 7 in
  match Hs_core.Approx.solve_robust ~budget:(Hs_core.Budget.of_units 200) inst with
  | Error e -> Alcotest.failf "solve_robust: %s" (Hs_core.Hs_error.to_string e)
  | Ok r ->
      let v = Certify.robust r in
      if not (Verdict.ok v) then Alcotest.fail (Verdict.to_string v)

(* {1 Corrupted artifacts fail with the right invariant} *)

let first_bad v =
  match Verdict.first_failure v with
  | Some i -> i.Verdict.invariant
  | None -> Alcotest.fail "verdict unexpectedly passed"

let solved inst =
  match Hs_core.Approx.Exact.solve_checked inst with
  | Ok o -> o
  | Error e -> Alcotest.failf "solve: %s" (Hs_core.Hs_error.to_string e)

let test_corrupt_assignment () =
  let o = solved (Families.example_v1 5) in
  let inst = o.Hs_core.Approx.Exact.instance in
  (* Squeeze the horizon: the same assignment cannot fit tmax = 0. *)
  let v = Certify.assignment inst o.assignment ~tmax:0 in
  Alcotest.(check bool) "fails at tmax=0" false (Verdict.ok v);
  let bad = first_bad v in
  Alcotest.(check bool) "an ip2 invariant is blamed" true
    (String.length bad >= 3 && String.sub bad 0 3 = "ip2");
  (* Out-of-range mask. *)
  let a = Array.copy o.assignment in
  a.(0) <- 9999;
  let v = Certify.assignment inst a ~tmax:o.makespan in
  Alcotest.(check string) "well-formedness is blamed" "ip2.well-formed" (first_bad v)

let test_corrupt_schedule () =
  let o = solved (Families.example_ii1 ()) in
  let inst = o.Hs_core.Approx.Exact.instance in
  let sched = o.schedule in
  (* Drop a segment: some job no longer receives its full time. *)
  (match Schedule.segments sched with
  | seg :: rest ->
      let cut = { sched with Schedule.segments = rest } in
      ignore seg;
      let v = Certify.schedule inst o.assignment cut in
      Alcotest.(check string) "work conservation is blamed" "sched.work-conserved"
        (first_bad v)
  | [] -> Alcotest.fail "empty schedule");
  (* Double-book a machine: overlay every segment onto machine of seg0
     at the same instants. *)
  match Schedule.segments sched with
  | ({ Schedule.machine; start; stop; _ } as s0) :: _ ->
      let clash = { s0 with Schedule.job = 1 - s0.Schedule.job } in
      ignore (machine, start, stop);
      let bad =
        { sched with Schedule.segments = clash :: Schedule.segments sched }
      in
      let v = Certify.schedule inst o.assignment bad in
      Alcotest.(check bool) "double booking detected" false (Verdict.ok v)
  | [] -> Alcotest.fail "empty schedule"

let test_tape_bounds () =
  let ok = Check.tape_bounds ~m:3 { Hs_core.Tape.migrations = 2; preemptions = 2 } in
  Alcotest.(check bool) "within Prop III.2" true (List.for_all (fun i -> i.Verdict.ok) ok);
  let bad = Check.tape_bounds ~m:3 { Hs_core.Tape.migrations = 3; preemptions = 0 } in
  Alcotest.(check bool) "m migrations rejected" true
    (List.exists (fun i -> not i.Verdict.ok) bad)

let test_verdict_surface () =
  let v =
    Verdict.make ~subject:"demo"
      [ Verdict.pass ~invariant:"a" "fine"; Verdict.fail ~invariant:"b" "job %d" 3 ]
  in
  Alcotest.(check bool) "not ok" false (Verdict.ok v);
  (match Verdict.to_error v with
  | Some (Hs_core.Hs_error.Verification { invariant; witness }) ->
      Alcotest.(check string) "invariant" "b" invariant;
      Alcotest.(check string) "witness" "job 3" witness
  | _ -> Alcotest.fail "expected Verification error");
  let json = Hs_obs.Json.to_string (Verdict.to_json v) in
  match Hs_obs.Json.parse json with
  | Error e -> Alcotest.failf "verdict JSON does not parse: %s" e
  | Ok j -> (
      match Hs_obs.Json.member "ok" j with
      | Some (Hs_obs.Json.Bool false) -> ()
      | _ -> Alcotest.fail "verdict JSON lacks ok=false")

(* {1 Shrinking} *)

let test_shrink_strictly_smaller () =
  let inst = Oracle.instance_of_seed 11 in
  List.iter
    (fun c ->
      Alcotest.(check bool) "candidate strictly smaller" true
        (Shrink.size c < Shrink.size inst))
    (Shrink.candidates inst)

let test_shrink_minimal_and_deterministic () =
  (* A synthetic "failure": instances with at least 2 jobs and total
     volume at least 6.  The minimizer must reach a local minimum that
     still satisfies the predicate, deterministically. *)
  let still_failing i =
    let _, _, vol = Shrink.measure i in
    Instance.njobs i >= 2 && vol >= 6
  in
  let inst = Oracle.instance_of_seed ~max_m:4 ~max_n:6 23 in
  Alcotest.(check bool) "seed instance fails the predicate" true (still_failing inst);
  let a = Shrink.minimize ~still_failing inst in
  let b = Shrink.minimize ~still_failing inst in
  Alcotest.(check bool) "shrunk still failing" true (still_failing a);
  Alcotest.(check bool) "no smaller candidate still fails" true
    (not (List.exists still_failing (Shrink.candidates a)));
  Alcotest.(check string) "deterministic witness" (Instance_io.to_string a)
    (Instance_io.to_string b);
  Alcotest.(check bool) "not larger than the original" true
    (Shrink.size a <= Shrink.size inst)

let test_oracle_jobs_independent () =
  let run jobs = Oracle.run ~lp:false ~max_m:3 ~max_n:4 ~iters:12 ~jobs ~seed:2017 () in
  let a = run 1 and b = run 4 in
  Alcotest.(check int) "iterations" a.Oracle.iterations b.Oracle.iterations;
  Alcotest.(check int) "certified" a.Oracle.certified b.Oracle.certified;
  Alcotest.(check int) "infeasible" a.Oracle.infeasible b.Oracle.infeasible;
  Alcotest.(check (list int)) "failing seeds"
    (List.map (fun f -> f.Oracle.seed) a.Oracle.failures)
    (List.map (fun f -> f.Oracle.seed) b.Oracle.failures);
  Alcotest.(check int) "healthy pipeline certifies everything"
    a.Oracle.iterations
    (a.Oracle.certified + a.Oracle.infeasible)

let suite =
  ( "check",
    [
      Alcotest.test_case "outcomes certified" `Quick test_outcome_certified;
      Alcotest.test_case "worked examples certified" `Quick test_examples_certified;
      Alcotest.test_case "robust outcome certified" `Quick test_robust_certified;
      Alcotest.test_case "corrupt assignment blamed" `Quick test_corrupt_assignment;
      Alcotest.test_case "corrupt schedule blamed" `Quick test_corrupt_schedule;
      Alcotest.test_case "tape bounds" `Quick test_tape_bounds;
      Alcotest.test_case "verdict JSON and typed error" `Quick test_verdict_surface;
      Alcotest.test_case "shrink candidates smaller" `Quick test_shrink_strictly_smaller;
      Alcotest.test_case "shrink minimal + deterministic" `Quick
        test_shrink_minimal_and_deterministic;
      Alcotest.test_case "oracle independent of --jobs" `Quick
        test_oracle_jobs_independent;
    ] )
