(* Tests for the plain-text instance format and the Tape layer. *)

open Hs_model
open Hs_core

let sample_text =
  "# demo\n\
   machines 4\n\
   sets 6\n\
   0 1 2 3\n\
   0 1\n\
   2 3\n\
   0\n\
   1\n\
   2\n\
   jobs 2\n\
   9 7 7 4 5 6\n\
   6 6 6 3 3 5\n"

let test_parse_sample () =
  match Instance_io.of_string sample_text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok inst ->
      Alcotest.(check int) "jobs" 2 (Instance.njobs inst);
      Alcotest.(check int) "machines" 4 (Instance.nmachines inst);
      Alcotest.(check int) "sets" 6 (Hs_laminar.Laminar.size (Instance.laminar inst));
      (* set order in the file is preserved by id *)
      Alcotest.(check string) "p(job1, set3)" "3"
        (Ptime.to_string (Instance.ptime inst ~job:1 ~set:3))

let test_roundtrip_sample () =
  match Instance_io.of_string sample_text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok inst -> (
      let text = Instance_io.to_string inst in
      match Instance_io.of_string text with
      | Error e -> Alcotest.failf "reparse failed: %s" e
      | Ok inst' -> Alcotest.(check string) "fixed point" text (Instance_io.to_string inst'))

let test_parse_errors () =
  let expect_error text =
    match Instance_io.of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted bad input: %s" (String.escaped text)
  in
  expect_error "";
  expect_error "machines x\n";
  expect_error "machines 2\nsets 1\n0 5\njobs 0\n";
  (* wrong arity *)
  expect_error "machines 2\nsets 2\n0\n1\njobs 1\n3\n";
  (* bad time *)
  expect_error "machines 2\nsets 2\n0\n1\njobs 1\n3 -4\n";
  (* monotonicity violated: singleton above full set *)
  expect_error "machines 2\nsets 3\n0 1\n0\n1\njobs 1\n3 9 1\n";
  (* trailing garbage *)
  expect_error "machines 1\nsets 1\n0\njobs 1\n3\nextra\n"

let test_duplicate_ids_rejected () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (* Regression: a set line listing the same machine twice used to be
     silently canonicalised to the deduplicated set by Laminar.of_sets;
     it must be a parse error (the file and the model would disagree). *)
  let dup_machine = "machines 2\nsets 2\n0 0 1\n0\njobs 1\n4 2\n" in
  (match Instance_io.of_string dup_machine with
  | Error e ->
      Alcotest.(check bool) "error names the duplicate" true
        (contains e "more than once")
  | Ok _ -> Alcotest.fail "duplicate machine id in a set line accepted");
  (* Two lines describing the same set: rejected at parse level too. *)
  let dup_set = "machines 2\nsets 3\n0 1\n0\n0\njobs 1\n5 2 2\n" in
  (match Instance_io.of_string dup_set with
  | Error e ->
      Alcotest.(check bool) "error names the duplicated set" true
        (contains e "duplicates set")
  | Ok _ -> Alcotest.fail "duplicated set line accepted");
  (* The same rejection is typed at the service boundary. *)
  match
    Hs_service.Solver.prepare ~default_budget:None
      { Hs_service.Protocol.instance_text = dup_machine; budget = None; deadline_ms = None; trace_id = None }
  with
  | Error (Hs_error.Parse_error _) -> ()
  | Error e -> Alcotest.failf "expected Parse_error, got %s" (Hs_error.to_string e)
  | Ok _ -> Alcotest.fail "service accepted the duplicate-id text"

let prop_generator_roundtrip =
  QCheck.Test.make ~name:"generated instances round-trip" ~count:100 Test_util.seed_arb
    (fun seed ->
      let inst = Test_util.random_instance seed in
      let text = Instance_io.to_string inst in
      match Instance_io.of_string text with
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e
      | Ok inst' -> Instance_io.to_string inst' = text)

let test_file_io () =
  let inst = Test_util.random_instance 99 in
  let path = Filename.temp_file "hsched" ".inst" in
  (match Instance_io.save path inst with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save failed: %s" e);
  (match Instance_io.load path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok inst' ->
      Alcotest.(check string) "file round-trip" (Instance_io.to_string inst)
        (Instance_io.to_string inst'));
  Sys.remove path;
  (match Instance_io.load "/nonexistent/definitely/missing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted");
  match Instance_io.save "/nonexistent/definitely/missing/x.inst" inst with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unwritable path accepted"

(* ---- canonical form and digest -------------------------------------- *)

(* The same instance as [sample_text], with the sets listed in a
   different order (and the job columns permuted to match), plus noise
   the parser normalises away: comments, blank lines, extra spaces. *)
let sample_text_scrambled =
  "# same instance, different presentation\n\n\
   machines   4\n\
   sets 6\n\
   2\n\
   0   1\n\
   1\n\
   2 3\n\
   0 1 2 3\n\
   0\n\n\
   jobs 2\n\
   6   7 5 7 9   4\n\
   5 6 3 6 6 3\n"

let parse_exn text =
  match Instance_io.of_string text with
  | Ok inst -> inst
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_canonical_equal_digests () =
  let a = parse_exn sample_text and b = parse_exn sample_text_scrambled in
  (* The raw serialisations differ (set order is preserved by id) ... *)
  Alcotest.(check bool) "raw texts differ" true
    (Instance_io.to_string a <> Instance_io.to_string b);
  (* ... but the canonical forms and digests agree. *)
  Alcotest.(check string) "canonical forms equal" (Instance_io.canonicalize a)
    (Instance_io.canonicalize b);
  Alcotest.(check string) "digests equal" (Instance_io.digest a) (Instance_io.digest b)

let test_canonical_distinguishes () =
  let a = parse_exn sample_text in
  let changed =
    parse_exn
      "machines 4\nsets 6\n0 1 2 3\n0 1\n2 3\n0\n1\n2\njobs 2\n\
       9 7 7 4 5 6\n6 6 6 3 3 4\n"
  in
  Alcotest.(check bool) "different instances, different digests" true
    (Instance_io.digest a <> Instance_io.digest changed)

let test_canonical_roundtrip () =
  let a = parse_exn sample_text_scrambled in
  let c = Instance_io.canonicalize a in
  let b = parse_exn c in
  Alcotest.(check string) "canonicalize is a fixed point" c (Instance_io.canonicalize b);
  Alcotest.(check string) "digest stable across the round-trip" (Instance_io.digest a)
    (Instance_io.digest b)

let prop_canonical_roundtrip =
  QCheck.Test.make ~name:"canonical form round-trips with a stable digest" ~count:100
    Test_util.seed_arb (fun seed ->
      let inst = Test_util.random_instance seed in
      match Instance_io.of_string (Instance_io.canonicalize inst) with
      | Error e -> QCheck.Test.fail_reportf "canonical reparse failed: %s" e
      | Ok inst' -> Instance_io.digest inst = Instance_io.digest inst')

(* ---- Tape ----------------------------------------------------------- *)

let seg_total segs =
  List.fold_left (fun acc (s : Schedule.segment) -> acc + s.stop - s.start) 0 segs

let test_tape_lay_basic () =
  let blocks =
    [ { Tape.machine = 0; start = 0; len = 5 }; { Tape.machine = 1; start = 5; len = 5 } ]
  in
  let laid = Tape.lay ~horizon:10 ~blocks ~jobs:[ (0, 4); (1, 6) ] in
  Alcotest.(check int) "volume placed" 10 (seg_total laid.segments);
  (* job 1 crosses the block boundary once *)
  Alcotest.(check int) "migrations" 1 laid.stats.migrations;
  Alcotest.(check int) "preemptions" 0 laid.stats.preemptions

let test_tape_wrap_preemption () =
  (* One block that wraps the horizon: laying a job across the wrap point
     counts one preemption, no migration. *)
  let blocks = [ { Tape.machine = 2; start = 7; len = 6 } ] in
  let laid = Tape.lay ~horizon:10 ~blocks ~jobs:[ (0, 6) ] in
  Alcotest.(check int) "volume" 6 (seg_total laid.segments);
  Alcotest.(check int) "migrations" 0 laid.stats.migrations;
  Alcotest.(check int) "preemptions" 1 laid.stats.preemptions;
  (* pieces [7,10) and [0,3) *)
  Alcotest.(check int) "two segments" 2 (List.length laid.segments)

let test_tape_overflow_rejected () =
  let blocks = [ { Tape.machine = 0; start = 0; len = 3 } ] in
  Alcotest.check_raises "capacity" (Invalid_argument "Tape.lay: jobs exceed block capacity")
    (fun () -> ignore (Tape.lay ~horizon:10 ~blocks ~jobs:[ (0, 4) ]))

let test_tape_complement () =
  let free = Tape.complement ~horizon:10 ~machine:3 ~start:2 ~len:5 in
  Alcotest.(check int) "two intervals" 2 (List.length free);
  Alcotest.(check int) "free volume" 5
    (List.fold_left (fun acc (b : Tape.block) -> acc + b.len) 0 free);
  (* wrapping block leaves a single middle interval *)
  let free = Tape.complement ~horizon:10 ~machine:3 ~start:7 ~len:6 in
  (match free with
  | [ b ] ->
      Alcotest.(check int) "starts after wrap" 3 b.Tape.start;
      Alcotest.(check int) "middle length" 4 b.Tape.len
  | _ -> Alcotest.fail "expected one interval");
  (* full block leaves nothing; empty block leaves everything *)
  Alcotest.(check int) "full" 0 (List.length (Tape.complement ~horizon:10 ~machine:0 ~start:0 ~len:10));
  Alcotest.(check int) "empty" 1 (List.length (Tape.complement ~horizon:10 ~machine:0 ~start:0 ~len:0))

let prop_tape_conserves_volume =
  QCheck.Test.make ~name:"tape conserves volume and fits blocks" ~count:200
    QCheck.(pair (int_range 1 20) (list_of_size (Gen.int_range 1 6) (int_range 0 8)))
    (fun (horizon, lens) ->
      (* blocks chained contiguously from 0, each <= horizon *)
      let lens = List.map (fun l -> Stdlib.min l horizon) lens in
      let t = ref 0 in
      let blocks =
        List.mapi
          (fun i len ->
            let b = { Tape.machine = i; start = !t; len } in
            t := (!t + len) mod horizon;
            b)
          lens
      in
      let capacity = List.fold_left (fun a l -> a + l) 0 lens in
      (* jobs exactly filling the capacity, each at most horizon *)
      let rec mk_jobs j remaining =
        if remaining = 0 then []
        else
          let take = Stdlib.min remaining (1 + (j mod Stdlib.max 1 horizon)) in
          (j, take) :: mk_jobs (j + 1) (remaining - take)
      in
      let jobs = mk_jobs 0 capacity in
      let laid = Tape.lay ~horizon ~blocks ~jobs in
      seg_total laid.segments = capacity
      && List.for_all
           (fun (s : Schedule.segment) -> s.start >= 0 && s.stop <= horizon && s.start < s.stop)
           laid.segments)

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  let qt t = QCheck_alcotest.to_alcotest t in
  ( "io+tape",
    [
      u "parse sample" test_parse_sample;
      u "round-trip sample" test_roundtrip_sample;
      u "parse errors" test_parse_errors;
      u "duplicate ids rejected" test_duplicate_ids_rejected;
      u "file io" test_file_io;
      u "canonical: scrambled file hashes equal" test_canonical_equal_digests;
      u "canonical: different instances differ" test_canonical_distinguishes;
      u "canonical: round-trip" test_canonical_roundtrip;
      u "tape: lay basic" test_tape_lay_basic;
      u "tape: wrap preemption" test_tape_wrap_preemption;
      u "tape: overflow rejected" test_tape_overflow_rejected;
      u "tape: complement" test_tape_complement;
      qt prop_generator_roundtrip;
      qt prop_canonical_roundtrip;
      qt prop_tape_conserves_volume;
    ] )
