(* Chaos harness for the solver service (`@chaos` alias; CI runs a
   larger sweep).  Usage: chaos_main [ITERS] [CLIENTS] [SEED] [INTROSPECT.json].

   One verifying daemon (its engine certifies every fresh answer with
   the independent lib/check certifier and fingerprints every cache
   replay) is driven by CLIENTS concurrent client domains, each mixing a
   seeded stream of fault actions with real work:

   - plain solves, retried through the deterministic backoff when the
     small admission queue sheds them; every accepted body must be
     byte-identical to the offline [Solver.execute] answer;
   - worker-crash injection (the chaos sentinel budget crashes the
     worker domain mid-batch; the answer must be the typed status-1
     worker error, never a daemon death);
   - zero deadlines (must expire in the admission queue as status 6);
   - malformed-frame corpus entries on throwaway connections;
   - half-written frames abandoned on open connections (the daemon's
     read deadline must cut them off);
   - mid-write connection resets.

   Exit 0 iff every client observed only typed, correct behaviour AND
   the daemon survived to answer a final ping and drain a graceful
   shutdown — zero daemon deaths, by construction of the exit code.

   With a fourth argument, the post-storm introspection document
   (hsched.introspect/1, flight recorder included) is written to that
   path so CI can validate the observability surface after chaos. *)

module P = Hs_service.Protocol
module C = Hs_service.Client
module Rng = Hs_workloads.Rng

let usage () =
  prerr_endline "usage: chaos_main [ITERS] [CLIENTS] [SEED] [INTROSPECT.json]";
  exit 2

let arg i default =
  if Array.length Sys.argv > i then
    match int_of_string_opt Sys.argv.(i) with
    | Some v when v > 0 -> v
    | _ -> usage ()
  else default

let () =
  let iters = arg 1 120 in
  let clients = arg 2 8 in
  let seed = arg 3 7 in
  let introspect_out = if Array.length Sys.argv > 4 then Some Sys.argv.(4) else None in
  (* The sentinel must be armed in the daemon's process — which is this
     process: the daemon runs in a spawned domain. *)
  Hs_service.Engine.install_chaos_sentinel ();
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hschaos-%d.sock" (Unix.getpid ()))
  in
  let cfg =
    {
      (Hs_service.Daemon.default_config ~socket_path:path) with
      jobs = 2;
      max_queue = 8;
      io_timeout_s = 1.0;
      verify = true;
    }
  in
  let daemon = Domain.spawn (fun () -> Hs_service.Daemon.run cfg) in
  let rec wait k =
    if not (Sys.file_exists path) then
      if k = 0 then failwith "chaos: daemon socket never appeared"
      else begin
        ignore (Unix.select [] [] [] 0.05);
        wait (k - 1)
      end
  in
  wait 100;
  (* Offline ground truth per pool instance: the daemon's status-0
     answers must reproduce these bytes exactly. *)
  let pool =
    Array.init 6 (fun i ->
        let rng = Rng.create (4200 + i) in
        let inst =
          Hs_workloads.Generators.hierarchical rng
            ~lam:(Hs_laminar.Topology.semi_partitioned 4) ~n:6 ~base:(2, 9)
            ~overhead:0.2 ()
        in
        Hs_model.Instance_io.to_string inst)
  in
  let offline =
    Array.map
      (fun text ->
        match
          Hs_service.Solver.prepare ~default_budget:None
            { P.instance_text = text; budget = None; deadline_ms = None; trace_id = None }
        with
        | Error e -> failwith ("chaos: prepare: " ^ Hs_core.Hs_error.to_string e)
        | Ok prep -> (
            match Hs_service.Solver.execute ~verify:true prep with
            | Ok body -> body
            | Error e -> failwith ("chaos: execute: " ^ Hs_core.Hs_error.to_string e)))
      pool
  in
  let corpus = Array.of_list Hs_workloads.Mutators.malformed_frames in
  let per = Stdlib.max 1 (iters / clients) in
  let worker w =
    Domain.spawn (fun () ->
        let rng = Rng.create (seed + (w * 101)) in
        let errs = ref [] in
        let fail fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
        let conn = ref None in
        let get_conn () =
          match !conn with
          | Some c -> Ok c
          | None -> (
              match C.connect path with
              | Ok c ->
                  conn := Some c;
                  Ok c
              | Error e -> Error e)
        in
        let drop_conn () =
          match !conn with
          | Some c ->
              C.close c;
              conn := None
          | None -> ()
        in
        let solve ?budget ?deadline_ms k =
          match get_conn () with
          | Error e ->
              fail "client %d: connect: %s" w e;
              None
          | Ok c -> (
              match
                C.call ~timeout_s:60.0 c
                  (P.Solve { instance_text = pool.(k); budget; deadline_ms; trace_id = None })
              with
              | Ok r -> Some r
              | Error e ->
                  (* A daemon-side hangup mid-call (e.g. our own previous
                     faults) is tolerated once: reconnect next time. *)
                  drop_conn ();
                  fail "client %d: call failed: %s" w e;
                  None)
        in
        for i = 0 to per - 1 do
          match Rng.int rng 8 with
          | 0 | 1 | 2 ->
              (* plain solve: retry sheds, demand byte-identity *)
              let k = Rng.int rng (Array.length pool) in
              let rec attempt tries =
                match solve k with
                | None -> ()
                | Some r when r.P.status = 0 ->
                    if not (String.equal r.P.body offline.(k)) then
                      fail "client %d iter %d: body diverged from offline solve" w i
                | Some r when r.P.status = 5 ->
                    if tries >= 100 then fail "client %d: shed 100 times in a row" w
                    else begin
                      let wait_ms =
                        C.backoff_ms ~base_ms:1 ~cap_ms:50 ~attempt:tries
                          ~retry_after_ms:r.P.retry_after_ms
                          ~salt:((w * 997) + i) ()
                      in
                      ignore (Unix.select [] [] [] (float_of_int wait_ms /. 1000.));
                      attempt (tries + 1)
                    end
                | Some r ->
                    fail "client %d iter %d: unexpected status %d: %s" w i r.P.status
                      r.P.error
              in
              attempt 0
          | 3 -> (
              (* worker-crash injection: typed status-1 answer, never a
                 daemon death (shed is also legal under load) *)
              match solve ~budget:Hs_service.Engine.chaos_budget (Rng.int rng 6) with
              | None -> ()
              | Some r when r.P.status = 1 || r.P.status = 5 -> ()
              | Some r ->
                  fail "client %d: crash injection answered status %d" w r.P.status)
          | 4 -> (
              (* zero deadline: expires in the admission queue *)
              match solve ~deadline_ms:0 (Rng.int rng 6) with
              | None -> ()
              | Some r when r.P.status = 6 || r.P.status = 5 -> ()
              | Some r ->
                  fail "client %d: zero deadline answered status %d" w r.P.status)
          | 5 -> (
              (* malformed corpus entry on a throwaway connection *)
              match C.connect path with
              | Error e -> fail "client %d: raw connect: %s" w e
              | Ok raw ->
                  ignore (C.send_raw raw corpus.(Rng.int rng (Array.length corpus)));
                  C.close raw)
          | 6 -> (
              (* half a frame, then abandon the open connection: the
                 daemon's read deadline must reap it *)
              match C.connect path with
              | Error e -> fail "client %d: raw connect: %s" w e
              | Ok raw ->
                  let f = Hs_service.Frame.encode "{\"hsched.rpc\":1,\"id\":0,\"verb\":\"ping\"}" in
                  ignore (C.send_raw raw (String.sub f 0 (String.length f / 2)))
                  (* deliberately not closed: leaked until process exit *))
          | _ -> (
              (* mid-write reset on the working connection *)
              match get_conn () with
              | Error e -> fail "client %d: connect: %s" w e
              | Ok c ->
                  let f = Hs_service.Frame.encode "{\"hsched.rpc\":1,\"id\":9,\"verb\":\"stats\"}" in
                  ignore (C.send_raw c (String.sub f 0 (String.length f - 3)));
                  drop_conn ())
        done;
        drop_conn ();
        List.rev !errs)
  in
  let workers = List.init clients worker in
  let errs = List.concat_map Domain.join workers in
  List.iter prerr_endline errs;
  (* The daemon must still be there, answer, and drain cleanly. *)
  let final_errs = ref (List.length errs) in
  (match C.connect path with
  | Error e ->
      incr final_errs;
      prerr_endline ("chaos: daemon unreachable after the storm: " ^ e)
  | Ok c ->
      (match C.call ~timeout_s:30.0 c P.Ping with
      | Ok { P.status = 0; body = "pong"; _ } -> ()
      | Ok r ->
          incr final_errs;
          Printf.eprintf "chaos: final ping answered %d %S\n" r.P.status r.P.body
      | Error e ->
          incr final_errs;
          prerr_endline ("chaos: final ping failed: " ^ e));
      (match C.call ~timeout_s:30.0 c P.Stats with
      | Ok { P.status = 0; body; _ } -> print_endline body
      | Ok r ->
          incr final_errs;
          Printf.eprintf "chaos: stats answered %d\n" r.P.status
      | Error e ->
          incr final_errs;
          prerr_endline ("chaos: stats failed: " ^ e));
      (* The post-storm introspection document (flight recorder included)
         must still be answerable and well-formed; optionally keep it for
         CI validation. *)
      (match C.call ~timeout_s:30.0 c (P.Introspect { recent = true }) with
      | Ok { P.status = 0; body; _ } -> (
          (match Hs_obs.Json.parse body with
          | Ok _ -> ()
          | Error e ->
              incr final_errs;
              prerr_endline ("chaos: introspect body unparsable: " ^ e));
          match introspect_out with
          | None -> ()
          | Some out ->
              let oc = open_out out in
              output_string oc body;
              output_char oc '\n';
              close_out oc)
      | Ok r ->
          incr final_errs;
          Printf.eprintf "chaos: introspect answered %d\n" r.P.status
      | Error e ->
          incr final_errs;
          prerr_endline ("chaos: introspect failed: " ^ e));
      (match C.call ~timeout_s:30.0 c P.Shutdown with
      | Ok { P.status = 0; body = "bye"; _ } -> ()
      | Ok r ->
          incr final_errs;
          Printf.eprintf "chaos: shutdown answered %d %S\n" r.P.status r.P.body
      | Error e ->
          incr final_errs;
          prerr_endline ("chaos: graceful shutdown failed: " ^ e));
      C.close c);
  (match Domain.join daemon with
  | Ok () -> ()
  | Error e ->
      incr final_errs;
      prerr_endline ("chaos: daemon died: " ^ e));
  if !final_errs = 0 then begin
    Printf.printf "chaos: %d clients x %d actions: all typed, zero daemon deaths\n"
      clients per;
    exit 0
  end
  else begin
    Printf.eprintf "chaos: %d failure(s)\n" !final_errs;
    exit 1
  end
