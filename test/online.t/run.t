Online scheduling end to end (DESIGN.md §15): a seeded trace replayed
through the migration-budgeted online scheduler, every intermediate
schedule certified, byte-identical locally at any --jobs and streamed
through a daemon session.

A generated 12-event trace, certified (--check) and saved for reuse.
Each event re-solves with the Theorem V.2 pipeline; the candidate is
adopted only when it strictly improves and the budget admits it:

  $ ../../bin/hsched.exe online --events 12 --seed 5 --check --save t.trace
  event             live  makespan    T*    ratio resolve   moved forced  check
  0 arrive             1        10    10    1.000 kept          0      0  ok
  1 depart 0           0         0     0        - -             0      0  ok
  2 arrive             1         7     7    1.000 kept          0      0  ok
  3 depart 2           0         0     0        - -             0      0  ok
  4 arrive             1        10    10    1.000 kept          0      0  ok
  5 arrive             2        10    10    1.000 kept          0      0  ok
  6 arrive             3        10    10    1.000 kept          0      0  ok
  7 depart 6           2        10    10    1.000 kept          0      0  ok
  8 arrive             3        10    10    1.000 kept          0      0  ok
  9 arrive             4        10    10    1.000 kept          0      0  ok
  10 arrive            5        13    11    1.181 adopted       8      0  ok
  11 depart 4          4        10    10    1.000 adopted       8      0  ok
  
  events 12 (arrivals 8, departures 4, drains 0)
  re-solves 10: adopted 2, budget-blocked 0 (unlimited budget)
  volume: arrived 61, migrated 16, drain-forced 0
  final makespan 10
  ratio vs fresh T*: max 1.181, mean 1.018
  certified 12/12 steps


The saved trace replays identically from disk, and the replay is
byte-identical at any job count (only the per-step certification fans
out; the schedule path is sequential):

  $ ../../bin/hsched.exe online t.trace --check > j1.out
  $ ../../bin/hsched.exe online t.trace --check --jobs 4 > j4.out
  $ cmp j1.out j4.out && echo byte-identical
  byte-identical

β = 0 blocks every voluntary migration: the two previously adopted
re-solves are refused, the makespan degrades, and the checker still
certifies every step (the factor-2 envelope is only promised where the
budget admits the re-solve):

  $ ../../bin/hsched.exe online t.trace --migration-budget 0 --check | tail -8
  11 depart 4          4        19    10    1.900 budget        0      0  ok
  
  events 12 (arrivals 8, departures 4, drains 0)
  re-solves 10: adopted 0, budget-blocked 2 (beta = 0)
  volume: arrived 61, migrated 0, drain-forced 0
  final makespan 19
  ratio vs fresh T*: max 1.900, mean 1.162
  certified 12/12 steps


A drain force-migrates the stranded jobs outside the budget (the
"forced" column); --latencies charges each voluntary or forced move the
per-level stall of `hsched simulate`:

  $ ../../bin/hsched.exe online --events 10 --seed 7 --drains 1 \
  >   --migration-budget 1/2 --check --latencies 0,2,5
  event             live  makespan    T*    ratio resolve   moved forced  check
  0 arrive             1         6     6    1.000 kept          0      0  ok
  1 arrive             2        10    10    1.000 kept          0      0  ok
  2 arrive             3        10    10    1.000 kept          0      0  ok
  3 arrive             4        12    12    1.000 kept          0      0  ok
  4 arrive             5        12    12    1.000 kept          0      0  ok
  5 drain 0            5        12    12    1.000 kept          0     11  ok
  6 arrive             6        17    14    1.214 kept          0      0  ok
  7 arrive             7        17    15    1.133 kept          0      0  ok
  8 arrive             8        19    18    1.055 kept          0      0  ok
  9 depart 6           7        17    16    1.062 kept          0      0  ok
  
  events 10 (arrivals 8, departures 1, drains 1)
  re-solves 10: adopted 0, budget-blocked 0 (beta = 1/2)
  volume: arrived 50, migrated 0, drain-forced 11
  final makespan 17
  ratio vs fresh T*: max 1.214, mean 1.046
  certified 10/10 steps
  migration stall 2 over 1 move(s)
    moves at level 1: 1


The machine-readable surfaces carry their stable schemas:

  $ ../../bin/hsched.exe online t.trace --stats-json s.json > /dev/null
  $ ../json_check.exe s.json schema counters gauges histograms
  s.json: valid JSON; keys ok
  $ ../../bin/hsched.exe online t.trace --json > o.json
  $ ../json_check.exe o.json schema steps summary
  o.json: valid JSON; keys ok

Usage errors are typed (exit 2):

  $ ../../bin/hsched.exe online t.trace --migration-budget 2x
  hsched: unparsable migration budget "2x"
  [2]
  $ ../../bin/hsched.exe online nosuch.trace
  hsched: nosuch.trace: No such file or directory
  [2]
  $ ../../bin/hsched.exe serve --socket unused.sock --max-sessions 0
  hsched: max-sessions must be >= 1
  [2]

Streaming through a daemon: --socket opens an online session, sends one
event per request and closes for the summary.  The rendered output is
byte-identical to the local replay, and introspection exposes the
session table:

  $ ../../bin/hsched.exe serve --socket d.sock > /dev/null 2> server.log &
  $ for i in $(seq 1 100); do [ -S d.sock ] && break; sleep 0.1; done
  $ ../../bin/hsched.exe online t.trace --check --socket d.sock > streamed.out
  $ cmp j1.out streamed.out && echo byte-identical
  byte-identical
  $ ../../bin/hsched.exe stats d.sock --json > intro.json
  $ ../json_check.exe intro.json schema online_sessions metrics
  intro.json: valid JSON; keys ok
  $ ../../bin/hsched.exe shutdown --socket d.sock
  server shut down
