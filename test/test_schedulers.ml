(* Tests for Algorithm 1 (semi-partitioned) and Algorithms 2–3
   (hierarchical): Theorems III.1 and IV.3, Lemmas IV.1/IV.2 and
   Proposition III.2, both on the paper's worked examples and on random
   feasible assignments. *)

open Hs_model
open Hs_laminar
open Hs_core
open Hs_workloads

let example_iii1_assignment () =
  let inst = Families.example_ii1 () in
  let lam = Instance.laminar inst in
  let full = Option.get (Laminar.full_set lam) in
  let s i = Option.get (Laminar.singleton lam i) in
  (inst, [| s 0; s 1; full |])

let test_example_iii1 () =
  (* The optimal integral solution of Example III.1: T = 2, jobs 0/1
     local, job 2 global, migrating once. *)
  let inst, a = example_iii1_assignment () in
  match Semi_partitioned.schedule inst a ~tmax:2 with
  | Error e -> Alcotest.failf "Algorithm 1 failed: %s" e
  | Ok sched ->
      Alcotest.(check bool) "valid" true (Schedule.is_valid inst a sched);
      Alcotest.(check int) "horizon 2" 2 (Schedule.horizon sched);
      let m = Metrics.of_schedule ~njobs:3 sched in
      Alcotest.(check int) "job 2 migrates once" 1 m.migrations

let test_example_iii1_too_tight () =
  let inst, a = example_iii1_assignment () in
  match Semi_partitioned.schedule inst a ~tmax:1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "T=1 must be rejected"

let test_alg1_rejects_wrong_family () =
  let inst = Instance.identical ~m:2 ~lengths:[| 3 |] in
  match Semi_partitioned.schedule inst [| 0 |] ~tmax:3 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-semi-partitioned family accepted"

let test_alg1_pure_global_is_mcnaughton () =
  (* All jobs global: Algorithm 1 degenerates to the wrap-around rule. *)
  let m = 3 in
  let lengths = [| 5; 4; 3; 2; 1 |] in
  let inst =
    Instance.semi_partitioned
      ~global:(Array.map Ptime.fin lengths)
      ~local:(Array.map (fun l -> Array.make m (Ptime.fin l)) lengths)
  in
  let lam = Instance.laminar inst in
  let full = Option.get (Laminar.full_set lam) in
  let a = Array.make 5 full in
  let t = Assignment.min_makespan inst a in
  Alcotest.(check int) "T = ceil(15/3)" 5 t;
  match Semi_partitioned.schedule inst a ~tmax:t with
  | Error e -> Alcotest.failf "failed: %s" e
  | Ok sched ->
      Alcotest.(check bool) "valid" true (Schedule.is_valid inst a sched);
      (* every machine completely full *)
      List.iter
        (fun i -> Alcotest.(check int) "full machine" t (Schedule.machine_load sched i))
        [ 0; 1; 2 ]

let test_alg1_empty_and_degenerate () =
  (* No global jobs at all. *)
  let inst =
    Instance.semi_partitioned
      ~global:[| Ptime.fin 9; Ptime.fin 9 |]
      ~local:[| [| Ptime.fin 2; Ptime.fin 3 |]; [| Ptime.fin 3; Ptime.fin 2 |] |]
  in
  let lam = Instance.laminar inst in
  let s i = Option.get (Laminar.singleton lam i) in
  let a = [| s 0; s 1 |] in
  (match Semi_partitioned.schedule inst a ~tmax:2 with
  | Ok sched -> Alcotest.(check bool) "valid" true (Schedule.is_valid inst a sched)
  | Error e -> Alcotest.failf "failed: %s" e);
  (* Zero-length jobs are legal and produce no segments. *)
  let inst0 =
    Instance.semi_partitioned ~global:[| Ptime.fin 0 |] ~local:[| [| Ptime.fin 0 |] |]
  in
  let full = Option.get (Laminar.full_set (Instance.laminar inst0)) in
  match Semi_partitioned.schedule inst0 [| full |] ~tmax:0 with
  | Ok sched -> Alcotest.(check int) "no segments" 0 (List.length (Schedule.segments sched))
  | Error e -> Alcotest.failf "zero-volume failed: %s" e

let prop_alg1_valid_and_bounded =
  QCheck.Test.make ~name:"Alg 1: valid schedule + Prop III.2 bounds" ~count:300
    Test_util.seed_arb (fun seed ->
      let inst, a = Test_util.random_semi_assigned seed in
      let m = Instance.nmachines inst in
      let t = Assignment.min_makespan inst a in
      match Semi_partitioned.schedule_stats inst a ~tmax:t with
      | Error e -> QCheck.Test.fail_reportf "Algorithm 1 failed: %s" e
      | Ok (sched, stats) ->
          let chrono = Schedule.stats ~njobs:(Instance.njobs inst) sched in
          Schedule.is_valid inst a sched
          && stats.Tape.migrations <= Stdlib.max 0 (m - 1)
          && Tape.stops stats <= Stdlib.max 0 ((2 * m) - 2)
          (* tape accounting is conservative: chronological coalescing can
             only remove stops (e.g. a job spanning a full wrapped block) *)
          && chrono.Schedule.stops <= Tape.stops stats
          (* stop totals are accounting-independent, so the 2m-2 bound
             also holds chronologically *)
          && chrono.Schedule.stops <= Stdlib.max 0 ((2 * m) - 2)
          (* Metrics.of_schedule is a re-labelling of Schedule.stats *)
          && (Metrics.of_schedule ~njobs:(Instance.njobs inst) sched).stops
             = chrono.Schedule.stops)

let prop_alg1_slack_horizon =
  QCheck.Test.make ~name:"Alg 1: still valid with slack horizon" ~count:100
    Test_util.seed_arb (fun seed ->
      let inst, a = Test_util.random_semi_assigned seed in
      let t = Assignment.min_makespan inst a + 3 in
      match Semi_partitioned.schedule inst a ~tmax:t with
      | Error e -> QCheck.Test.fail_reportf "Algorithm 1 failed: %s" e
      | Ok sched -> Schedule.is_valid inst a sched)

let prop_alg23_valid =
  QCheck.Test.make ~name:"Alg 2+3: Theorem IV.3 validity" ~count:300
    Test_util.seed_arb (fun seed ->
      let inst, a = Test_util.random_assigned seed in
      let t = Assignment.min_makespan inst a in
      match Hierarchical.schedule inst a ~tmax:t with
      | Error e -> QCheck.Test.fail_reportf "Algorithms 2-3 failed: %s" e
      | Ok sched -> Schedule.is_valid inst a sched)

let prop_alg2_invariants =
  QCheck.Test.make ~name:"Alg 2: Lemmas IV.1 and IV.2" ~count:300 Test_util.seed_arb
    (fun seed ->
      let inst, a = Test_util.random_assigned seed in
      let lam = Instance.laminar inst in
      let t = Assignment.min_makespan inst a in
      match Hierarchical.allocate inst a ~tmax:t with
      | Error e -> QCheck.Test.fail_reportf "Algorithm 2 failed: %s" e
      | Ok alloc ->
          Hierarchical.lemma_iv1_holds lam alloc ~tmax:t
          && Hierarchical.lemma_iv2_holds lam alloc)

let prop_alg2_volume_conservation =
  QCheck.Test.make ~name:"Alg 2: loads cover exactly the assigned volume" ~count:200
    Test_util.seed_arb (fun seed ->
      let inst, a = Test_util.random_assigned seed in
      let lam = Instance.laminar inst in
      let t = Assignment.min_makespan inst a in
      match Hierarchical.allocate inst a ~tmax:t with
      | Error e -> QCheck.Test.fail_reportf "Algorithm 2 failed: %s" e
      | Ok alloc ->
          List.for_all
            (fun set ->
              let vol = Assignment.volume inst a ~set in
              let loads =
                Array.fold_left
                  (fun acc i -> acc + alloc.load.(set).(i))
                  0 (Laminar.members lam set)
              in
              vol = loads)
            (Laminar.bottom_up lam))

let prop_alg23_agrees_with_alg1 =
  QCheck.Test.make ~name:"Alg 2+3 subsumes Alg 1 on semi-partitioned input" ~count:200
    Test_util.seed_arb (fun seed ->
      let inst, a = Test_util.random_semi_assigned seed in
      let t = Assignment.min_makespan inst a in
      match (Semi_partitioned.schedule inst a ~tmax:t, Hierarchical.schedule inst a ~tmax:t) with
      | Ok s1, Ok s2 ->
          Schedule.is_valid inst a s1 && Schedule.is_valid inst a s2
          && Schedule.makespan s1 <= t
          && Schedule.makespan s2 <= t
      | Error e, _ | _, Error e -> QCheck.Test.fail_reportf "scheduler failed: %s" e)

let prop_alg23_rejects_below_makespan =
  QCheck.Test.make ~name:"Alg 2+3 rejects an infeasible horizon" ~count:100
    Test_util.seed_arb (fun seed ->
      let inst, a = Test_util.random_assigned seed in
      let t = Assignment.min_makespan inst a in
      QCheck.assume (t > 0);
      match Hierarchical.schedule inst a ~tmax:(t - 1) with
      | Error _ -> true
      | Ok sched ->
          (* A smaller horizon may still admit a valid schedule only if
             the binding constraint was a ceiling artefact; validity then
             still has to hold. *)
          Schedule.is_valid inst a sched)

let prop_checker_agrees_with_validate =
  (* Differential: the event-sweep checker of Hs_check re-derives the
     Section II conditions without Schedule.validate's sort-and-compare;
     both must certify the honest schedule and reject a schedule with a
     segment removed (work conservation). *)
  QCheck.Test.make ~name:"independent checker agrees with Schedule.validate" ~count:200
    Test_util.seed_arb (fun seed ->
      let inst, a = Test_util.random_assigned seed in
      let t = Assignment.min_makespan inst a in
      match Hierarchical.schedule inst a ~tmax:t with
      | Error e -> QCheck.Test.fail_reportf "Algorithms 2-3 failed: %s" e
      | Ok sched ->
          let checker_ok s =
            List.for_all
              (fun i -> i.Hs_check.Verdict.ok)
              (Hs_check.Check.schedule inst a s)
          in
          let honest = Schedule.is_valid inst a sched && checker_ok sched in
          let tampered_agree =
            match Schedule.segments sched with
            | seg :: rest when seg.Schedule.stop > seg.Schedule.start ->
                let cut = { sched with Schedule.segments = rest } in
                (not (Schedule.is_valid inst a cut)) && not (checker_ok cut)
            | _ -> true
          in
          honest && tampered_agree)

let prop_checker_agrees_with_lemma_predicates =
  (* Differential for Algorithm 2: Hs_check recomputes the chain sums
     and volume balance from raw member arrays; it must agree with
     lemma_iv1_holds/lemma_iv2_holds and the volume fold, including on a
     load table corrupted by one unit. *)
  QCheck.Test.make ~name:"independent checker agrees with the Lemma IV predicates" ~count:200
    Test_util.seed_arb (fun seed ->
      let inst, a = Test_util.random_assigned seed in
      let lam = Instance.laminar inst in
      let t = Assignment.min_makespan inst a in
      match Hierarchical.allocate inst a ~tmax:t with
      | Error e -> QCheck.Test.fail_reportf "Algorithm 2 failed: %s" e
      | Ok alloc ->
          let checker_ok al =
            List.for_all
              (fun i -> i.Hs_check.Verdict.ok)
              (Hs_check.Check.allocation inst a al ~tmax:t)
          in
          let volume_ok al =
            List.for_all
              (fun set ->
                Assignment.volume inst a ~set
                = Array.fold_left
                    (fun acc i -> acc + al.Hierarchical.load.(set).(i))
                    0 (Laminar.members lam set))
              (Laminar.bottom_up lam)
          in
          let producer_ok al =
            Hierarchical.lemma_iv1_holds lam al ~tmax:t
            && Hierarchical.lemma_iv2_holds lam al
            && volume_ok al
          in
          if not (producer_ok alloc) then
            QCheck.Test.fail_report "producer predicates reject an honest allocation"
          else if not (checker_ok alloc) then
            let bad =
              List.find
                (fun i -> not i.Hs_check.Verdict.ok)
                (Hs_check.Check.allocation inst a alloc ~tmax:t)
            in
            QCheck.Test.fail_reportf "checker rejects an honest allocation: [%s] %s"
              bad.Hs_check.Verdict.invariant bad.Hs_check.Verdict.detail
          else
            let found = ref None in
            Array.iteri
              (fun s row ->
                Array.iteri
                  (fun i v -> if !found = None && v > 0 then found := Some (s, i, v))
                  row)
              alloc.Hierarchical.load;
            match !found with
            | None -> true (* zero-volume instance: nothing to corrupt *)
            | Some (s, i, v) ->
                let load = Array.map Array.copy alloc.Hierarchical.load in
                load.(s).(i) <- v + 1;
                let bad = { alloc with Hierarchical.load } in
                if producer_ok bad then
                  QCheck.Test.fail_reportf "producers accept load.(%d).(%d) bumped to %d" s i
                    (v + 1)
                else if checker_ok bad then
                  QCheck.Test.fail_reportf "checker accepts load.(%d).(%d) bumped to %d" s i
                    (v + 1)
                else true)

let test_alg23_identical_machines () =
  (* Pure P|pmtn|Cmax through the hierarchical scheduler. *)
  let inst = Instance.identical ~m:3 ~lengths:[| 5; 4; 3; 2; 1 |] in
  let a = Array.make 5 0 in
  let t = Assignment.min_makespan inst a in
  Alcotest.(check int) "T = 5" 5 t;
  match Hierarchical.schedule inst a ~tmax:t with
  | Error e -> Alcotest.failf "failed: %s" e
  | Ok sched -> Alcotest.(check bool) "valid" true (Schedule.is_valid inst a sched)

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  let qt t = QCheck_alcotest.to_alcotest t in
  ( "schedulers",
    [
      u "Example III.1" test_example_iii1;
      u "Example III.1, T too small" test_example_iii1_too_tight;
      u "Alg 1 family check" test_alg1_rejects_wrong_family;
      u "Alg 1 = McNaughton when all global" test_alg1_pure_global_is_mcnaughton;
      u "Alg 1 degenerate inputs" test_alg1_empty_and_degenerate;
      u "Alg 2+3 on identical machines" test_alg23_identical_machines;
      qt prop_alg1_valid_and_bounded;
      qt prop_alg1_slack_horizon;
      qt prop_alg23_valid;
      qt prop_alg2_invariants;
      qt prop_alg2_volume_conservation;
      qt prop_alg23_agrees_with_alg1;
      qt prop_alg23_rejects_below_makespan;
      qt prop_checker_agrees_with_validate;
      qt prop_checker_agrees_with_lemma_predicates;
    ] )
