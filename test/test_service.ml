(* The service stack (DESIGN.md section 11): frame codec, protocol
   codec, LRU result cache, and a live daemon under wire-level fault
   injection — every corrupted byte stream must come back as a typed
   protocol error on the wire; the daemon never crashes and never
   hangs. *)

module Frame = Hs_service.Frame
module Protocol = Hs_service.Protocol
module Cache = Hs_service.Cache
module Client = Hs_service.Client
module Daemon = Hs_service.Daemon
module Solver = Hs_service.Solver
module Json = Hs_obs.Json

let sample_text =
  "machines 4\n\
   sets 6\n\
   0 1 2 3\n\
   0 1\n\
   2 3\n\
   0\n\
   1\n\
   2\n\
   jobs 2\n\
   9 7 7 4 5 6\n\
   6 6 6 3 3 5\n"

(* ---- frame codec ------------------------------------------------------ *)

let decode_all feed_sizes encoded =
  let dec = Frame.create () in
  let pos = ref 0 and sizes = ref feed_sizes and out = ref [] in
  let rec drain () =
    match Frame.next dec with
    | Ok (Some p) ->
        out := p :: !out;
        drain ()
    | Ok None -> ()
    | Error e -> Alcotest.failf "decode error: %s" (Frame.error_to_string e)
  in
  while !pos < String.length encoded do
    let k =
      match !sizes with
      | [] -> String.length encoded - !pos
      | k :: rest ->
          sizes := rest;
          Stdlib.min k (String.length encoded - !pos)
    in
    Frame.feed dec (String.sub encoded !pos k);
    pos := !pos + k;
    drain ()
  done;
  (match Frame.at_eof dec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "partial frame at EOF: %s" (Frame.error_to_string e));
  List.rev !out

let test_frame_roundtrip () =
  let payloads = [ ""; "x"; "{\"a\":1}"; String.make 100_000 'q'; sample_text ] in
  let encoded = String.concat "" (List.map Frame.encode payloads) in
  (* whole-stream, byte-at-a-time, and ragged chunk feeds all agree *)
  List.iter
    (fun sizes ->
      Alcotest.(check (list string)) "payloads survive framing" payloads
        (decode_all sizes encoded))
    [ []; List.init (String.length encoded) (fun _ -> 1); [ 3; 7; 1; 11; 50_000 ] ]

let test_frame_errors () =
  let feed_and_next s =
    let dec = Frame.create () in
    Frame.feed dec s;
    Frame.next dec
  in
  (match feed_and_next "zzzzzzzz\n" with
  | Error (Frame.Bad_header _) -> ()
  | _ -> Alcotest.fail "non-hex header must be Bad_header");
  (match feed_and_next "00000002X{}" with
  | Error (Frame.Bad_header _) -> ()
  | _ -> Alcotest.fail "missing newline must be Bad_header");
  (match feed_and_next "ffffffff\n" with
  | Error (Frame.Oversized _) -> ()
  | _ -> Alcotest.fail "16 MiB cap must be Oversized");
  let dec = Frame.create () in
  Frame.feed dec "0000";
  (match Frame.at_eof dec with
  | Error (Frame.Truncated _) -> ()
  | _ -> Alcotest.fail "EOF inside the header must be Truncated");
  let dec = Frame.create () in
  Frame.feed dec "00000010\n{\"hsched.rp";
  (match Frame.next dec with
  | Ok None -> ()
  | _ -> Alcotest.fail "incomplete payload is not a frame yet");
  match Frame.at_eof dec with
  | Error (Frame.Truncated _) -> ()
  | _ -> Alcotest.fail "EOF inside the payload must be Truncated"

(* ---- protocol codec --------------------------------------------------- *)

let test_protocol_roundtrip () =
  let reqs =
    [
      Protocol.Solve { instance_text = sample_text; budget = None; deadline_ms = None; trace_id = None };
      Protocol.Solve { instance_text = "machines 1\n"; budget = Some 7; deadline_ms = None; trace_id = None };
      Protocol.Solve { instance_text = "machines 1\n"; budget = Some 7; deadline_ms = Some 250; trace_id = None };
      Protocol.Solve { instance_text = ""; budget = None; deadline_ms = Some 0; trace_id = None };
      Protocol.Solve
        {
          instance_text = sample_text;
          budget = Some 9;
          deadline_ms = Some 50;
          trace_id = Some "0123456789abcdef";
        };
      Protocol.Introspect { recent = false };
      Protocol.Introspect { recent = true };
      Protocol.Stats;
      Protocol.Ping;
      Protocol.Shutdown;
    ]
  in
  List.iteri
    (fun id req ->
      let wire = Json.to_string (Protocol.request_to_json ~id req) in
      match Json.parse wire with
      | Error e -> Alcotest.failf "request JSON unparsable: %s" e
      | Ok json -> (
          match Protocol.request_of_json json with
          | Error (_, e) -> Alcotest.failf "request rejected: %s" e
          | Ok (id', req') ->
              Alcotest.(check int) "id" id id';
              Alcotest.(check bool) "request" true (req = req')))
    reqs;
  List.iter
    (fun (r : Protocol.response) ->
      let wire = Json.to_string (Protocol.response_to_json r) in
      match Json.parse wire with
      | Error e -> Alcotest.failf "response JSON unparsable: %s" e
      | Ok json -> (
          match Protocol.response_of_json json with
          | Error e -> Alcotest.failf "response rejected: %s" e
          | Ok r' -> Alcotest.(check bool) "response" true (r = r')))
    [
      Protocol.ok ~rid:3 "body\nwith \"quotes\"";
      Protocol.ok ~rid:0 ~cached:true "";
      Protocol.err ~rid:(-1) ~status:2 "protocol error: bad JSON";
      Protocol.err ~rid:9 ~status:4 "budget exhausted";
      Protocol.overloaded ~rid:4 ~retry_after_ms:150;
      Protocol.err ~rid:5 ~status:6 "deadline exceeded [10 ms]: expired";
      Protocol.ok ~rid:7
        ~spans:
          [
            Json.Obj
              [
                ("name", Json.String "service.solve");
                ("start_ns", Json.Int 10);
                ("dur_ns", Json.Int 20);
              ];
          ]
        "traced body";
      Protocol.err ~rid:8 ~status:4
        ~spans:[ Json.Obj [ ("name", Json.String "service.batch") ] ]
        "budget exhausted";
    ]

let test_protocol_rejects () =
  List.iter
    (fun wire ->
      match Json.parse wire with
      | Error _ -> ()
      | Ok json -> (
          match Protocol.request_of_json json with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "accepted bad request: %s" wire))
    [
      "{}";
      "[1]";
      "\"solve\"";
      "{\"hsched.rpc\":2,\"id\":0,\"verb\":\"ping\"}";
      "{\"hsched.rpc\":1,\"id\":0,\"verb\":\"frobnicate\"}";
      "{\"hsched.rpc\":1,\"id\":0,\"verb\":\"solve\"}";
      "{\"hsched.rpc\":1,\"id\":0,\"verb\":\"solve\",\"instance\":7}";
      "{\"hsched.rpc\":1,\"verb\":\"ping\"}";
    ]

(* ---- LRU cache -------------------------------------------------------- *)

let test_cache_lru () =
  let c = Cache.create ~capacity:2 in
  Alcotest.(check (option string)) "miss on empty" None (Cache.find c "a");
  Cache.add c "a" "A";
  Cache.add c "b" "B";
  Alcotest.(check (option string)) "hit a" (Some "A") (Cache.find c "a");
  (* b is now least-recent; inserting c evicts it *)
  Cache.add c "c" "C";
  Alcotest.(check (option string)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option string)) "a kept" (Some "A") (Cache.find c "a");
  Alcotest.(check (option string)) "c kept" (Some "C") (Cache.find c "c");
  (* re-adding an existing key refreshes, never duplicates *)
  Cache.add c "a" "A2";
  Cache.add c "d" "D";
  Alcotest.(check (option string)) "c evicted after refresh" None (Cache.find c "c");
  Alcotest.(check (option string)) "a updated" (Some "A2") (Cache.find c "a");
  Alcotest.(check (option string)) "d kept" (Some "D") (Cache.find c "d")

(* ---- live daemon ------------------------------------------------------ *)

let socket_counter = ref 0

let with_daemon ?(jobs = 1) ?(tweak = fun (c : Daemon.config) -> c) f =
  incr socket_counter;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hsvc-%d-%d.sock" (Unix.getpid ()) !socket_counter)
  in
  let cfg = tweak { (Daemon.default_config ~socket_path:path) with jobs } in
  let daemon = Domain.spawn (fun () -> Daemon.run cfg) in
  (* Wait out the bind race: the socket file appears at bind time, and
     Client.connect retries through the bind-to-listen window. *)
  let rec wait k =
    if not (Sys.file_exists path) then
      if k = 0 then Alcotest.fail "daemon socket never appeared"
      else begin
        ignore (Unix.select [] [] [] 0.05);
        wait (k - 1)
      end
  in
  wait 100;
  let finish () =
    (match Client.connect path with
    | Error _ -> ()
    | Ok c ->
        ignore (Client.call ~timeout_s:10.0 c Protocol.Shutdown);
        Client.close c);
    match Domain.join daemon with
    | Ok () -> ()
    | Error e -> Alcotest.failf "daemon failed: %s" e
  in
  Fun.protect ~finally:finish (fun () -> f path)

(* Write raw bytes, half-close, then read every response frame until the
   daemon hangs up.  The deadline doubles as the never-hangs assertion. *)
let raw_roundtrip path bytes =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX path);
  let n = String.length bytes in
  let pos = ref 0 in
  (try
     while !pos < n do
       pos := !pos + Unix.write_substring fd bytes !pos (n - !pos)
     done
   with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
     (* The daemon may reject mid-stream (e.g. oversized header) and
        close before we finish writing; that is a valid typed outcome. *)
     ());
  (try Unix.shutdown fd Unix.SHUTDOWN_SEND
   with Unix.Unix_error _ -> ());
  let deadline = Unix.gettimeofday () +. 10.0 in
  let dec = Frame.create () in
  let buf = Bytes.create 65536 in
  let out = ref [] in
  let rec drain () =
    match Frame.next dec with
    | Ok (Some payload) ->
        (match Json.parse payload with
        | Error e -> Alcotest.failf "daemon sent non-JSON: %s" e
        | Ok json -> (
            match Protocol.response_of_json json with
            | Error e -> Alcotest.failf "daemon sent a non-response: %s" e
            | Ok r -> out := r :: !out));
        drain ()
    | Ok None -> ()
    | Error e -> Alcotest.failf "daemon sent a bad frame: %s" (Frame.error_to_string e)
  in
  let rec read_loop () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then Alcotest.fail "daemon hung (no EOF within deadline)";
    match Unix.select [ fd ] [] [] remaining with
    | [], _, _ -> Alcotest.fail "daemon hung (no EOF within deadline)"
    | _ -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> drain ()
        | k ->
            Frame.feed dec (Bytes.sub_string buf 0 k);
            drain ();
            read_loop ()
        | exception Unix.Unix_error (EINTR, _, _) -> read_loop ()
        | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> drain ())
    | exception Unix.Unix_error (EINTR, _, _) -> read_loop ()
  in
  read_loop ();
  List.rev !out

let assert_alive path =
  match Client.connect path with
  | Error e -> Alcotest.failf "daemon unreachable after faults: %s" e
  | Ok c -> (
      let r = Client.call ~timeout_s:10.0 c Protocol.Ping in
      Client.close c;
      match r with
      | Ok { Protocol.status = 0; body = "pong"; _ } -> ()
      | Ok r -> Alcotest.failf "ping answered %d %S" r.Protocol.status r.Protocol.body
      | Error e -> Alcotest.failf "ping failed: %s" e)

let test_daemon_fault_corpus () =
  with_daemon @@ fun path ->
  List.iter
    (fun bytes ->
      let resps = raw_roundtrip path bytes in
      List.iter
        (fun (r : Protocol.response) ->
          if r.status = 0 then
            Alcotest.failf "corrupted frame %S answered status 0" bytes;
          Alcotest.(check bool)
            (Printf.sprintf "typed diagnostic for %S" bytes)
            true (r.error <> ""))
        resps;
      assert_alive path)
    Hs_workloads.Mutators.malformed_frames

let test_daemon_fault_fuzz () =
  with_daemon @@ fun path ->
  let rng = Hs_workloads.Rng.create 7 in
  let base =
    [|
      Frame.encode
        (Json.to_string
           (Protocol.request_to_json ~id:0
              (Protocol.Solve { instance_text = sample_text; budget = None; deadline_ms = None; trace_id = None })));
      Frame.encode
        (Json.to_string (Protocol.request_to_json ~id:1 Protocol.Ping));
    |]
  in
  for _ = 1 to 60 do
    let bytes =
      Hs_workloads.Mutators.corrupt_frame rng (Hs_workloads.Rng.choose rng base)
    in
    let resps = raw_roundtrip path bytes in
    (* A mutation can leave the frame intact (payload byte flips may even
       leave valid JSON): then a real answer is fine.  What is never fine
       is a crash, a hang, or an untyped failure — all caught above. *)
    ignore resps
  done;
  assert_alive path

let test_daemon_solve_and_cache () =
  with_daemon @@ fun path ->
  let offline =
    match
      Solver.prepare ~default_budget:None
        { Protocol.instance_text = sample_text; budget = None; deadline_ms = None; trace_id = None }
    with
    | Error e -> Alcotest.failf "prepare failed: %s" (Hs_core.Hs_error.to_string e)
    | Ok prep -> (
        match Solver.execute prep with
        | Ok body -> body
        | Error e -> Alcotest.failf "execute failed: %s" (Hs_core.Hs_error.to_string e))
  in
  match Client.connect path with
  | Error e -> Alcotest.failf "connect failed: %s" e
  | Ok c ->
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let solve () =
        match
          Client.call ~timeout_s:30.0 c
            (Protocol.Solve { instance_text = sample_text; budget = None; deadline_ms = None; trace_id = None })
        with
        | Error e -> Alcotest.failf "solve call failed: %s" e
        | Ok r -> r
      in
      let r1 = solve () in
      Alcotest.(check int) "status" 0 r1.Protocol.status;
      Alcotest.(check bool) "first solve not cached" false r1.Protocol.cached;
      Alcotest.(check string) "daemon body = offline body" offline r1.Protocol.body;
      let r2 = solve () in
      Alcotest.(check bool) "second solve cached" true r2.Protocol.cached;
      Alcotest.(check string) "cached body identical" r1.Protocol.body r2.Protocol.body;
      (* semantically identical text, different bytes: same cache entry *)
      let scrambled = "# comment\nmachines   4\n" ^ String.concat "\n" (List.tl (String.split_on_char '\n' sample_text)) in
      (match
         Client.call ~timeout_s:30.0 c
           (Protocol.Solve { instance_text = scrambled; budget = None; deadline_ms = None; trace_id = None })
       with
      | Error e -> Alcotest.failf "scrambled solve failed: %s" e
      | Ok r3 ->
          Alcotest.(check bool) "canonical key: scrambled text hits" true
            r3.Protocol.cached;
          Alcotest.(check string) "same body" r1.Protocol.body r3.Protocol.body);
      (* a different budget is a different cache key *)
      (match
         Client.call ~timeout_s:30.0 c
           (Protocol.Solve { instance_text = sample_text; budget = Some 100; deadline_ms = None; trace_id = None })
       with
      | Error e -> Alcotest.failf "budgeted solve failed: %s" e
      | Ok r4 -> Alcotest.(check bool) "budget keys apart" false r4.Protocol.cached);
      (* an unparsable instance is a typed status-2 error, not a crash *)
      (match
         Client.call ~timeout_s:30.0 c
           (Protocol.Solve { instance_text = "machines x\n"; budget = None; deadline_ms = None; trace_id = None })
       with
      | Error e -> Alcotest.failf "bad-instance call failed: %s" e
      | Ok r5 ->
          Alcotest.(check int) "unusable input is status 2" 2 r5.Protocol.status;
          Alcotest.(check bool) "typed diagnostic" true (r5.Protocol.error <> ""))

(* ---- verification engine ---------------------------------------------- *)

module Engine = Hs_service.Engine

let engine_solve_one engine params =
  match Engine.solve_batch engine [ params ] with
  | [ a ] -> a
  | l -> Alcotest.failf "expected 1 answer, got %d" (List.length l)

let test_engine_cache_poisoning () =
  (* The daemon's batch pipeline, driven directly (the live daemon's
     cache sits in another domain and is deliberately unreachable): a
     cached entry mutated behind the engine's back must be detected by a
     verifying engine and answered with the typed verification error,
     never replayed. *)
  let params = { Protocol.instance_text = sample_text; budget = None; deadline_ms = None; trace_id = None } in
  let key =
    match Solver.prepare ~default_budget:None params with
    | Ok prep -> prep.Solver.key
    | Error e -> Alcotest.failf "prepare failed: %s" (Hs_core.Hs_error.to_string e)
  in
  let verifying =
    Engine.create ~verify:true ~jobs:1 ~cache_capacity:8 ~default_budget:None ()
  in
  let fresh = engine_solve_one verifying params in
  Alcotest.(check int) "verified fresh solve succeeds" 0 fresh.Engine.status;
  Alcotest.(check bool) "fresh solve not cached" false fresh.Engine.cached;
  (* Verification must not change the rendered body. *)
  let plain =
    Engine.create ~jobs:1 ~cache_capacity:8 ~default_budget:None ()
  in
  let unverified = engine_solve_one plain params in
  Alcotest.(check string) "verified body byte-identical" unverified.Engine.body
    fresh.Engine.body;
  let hit = engine_solve_one verifying params in
  Alcotest.(check bool) "intact entry replays" true hit.Engine.cached;
  Alcotest.(check string) "replayed body identical" fresh.Engine.body hit.Engine.body;
  (* Poison the cached body (test hook keeps the fingerprint). *)
  Alcotest.(check bool) "poison hook finds the entry" true
    (Engine.poison_cache verifying ~key);
  let tampered = engine_solve_one verifying params in
  Alcotest.(check int) "tampered hit is a typed error" 1 tampered.Engine.status;
  Alcotest.(check bool) "verification error names cache.integrity" true
    (let e = tampered.Engine.error in
     let needle = "verification failed [cache.integrity]" in
     String.length e >= String.length needle
     && String.sub e 0 (String.length needle) = needle);
  Alcotest.(check string) "tampered body never replayed" "" tampered.Engine.body;
  (* A non-verifying engine replays the poison blindly — the detection
     really is the verification layer, not the cache. *)
  Alcotest.(check bool) "poison the plain engine" true
    (Engine.poison_cache plain ~key);
  let blind = engine_solve_one plain params in
  Alcotest.(check int) "unverified engine replays poison" 0 blind.Engine.status;
  Alcotest.(check bool) "poisoned body differs from the truth" true
    (blind.Engine.body <> unverified.Engine.body)

let test_engine_verified_batch () =
  (* Coalescing and admission order survive verification; a batch mixing
     duplicates, a parse error and a miss answers in order. *)
  let engine =
    Engine.create ~verify:true ~jobs:2 ~cache_capacity:8 ~default_budget:None ()
  in
  let good = { Protocol.instance_text = sample_text; budget = None; deadline_ms = None; trace_id = None } in
  let bad = { Protocol.instance_text = "machines x\n"; budget = None; deadline_ms = None; trace_id = None } in
  match Engine.solve_batch engine [ good; bad; good ] with
  | [ a1; a2; a3 ] ->
      Alcotest.(check int) "leader solves" 0 a1.Engine.status;
      Alcotest.(check bool) "leader not cached" false a1.Engine.cached;
      Alcotest.(check int) "parse error is status 2" 2 a2.Engine.status;
      Alcotest.(check int) "follower shares the answer" 0 a3.Engine.status;
      Alcotest.(check bool) "follower counts as cached" true a3.Engine.cached;
      Alcotest.(check string) "same body" a1.Engine.body a3.Engine.body
  | l -> Alcotest.failf "expected 3 answers, got %d" (List.length l)

let test_daemon_drain () =
  with_daemon @@ fun path ->
  match Client.connect path with
  | Error e -> Alcotest.failf "connect failed: %s" e
  | Ok c -> (
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      (* Pipelined solve+shutdown: the daemon must answer the solve
         before acknowledging the shutdown (graceful drain). *)
      match
        Client.call_many ~timeout_s:30.0 c
          [
            Protocol.Solve { instance_text = sample_text; budget = None; deadline_ms = None; trace_id = None };
            Protocol.Shutdown;
          ]
      with
      | Error e -> Alcotest.failf "drain round-trip failed: %s" e
      | Ok [ solve; bye ] ->
          Alcotest.(check int) "in-flight solve answered" 0 solve.Protocol.status;
          Alcotest.(check bool) "with a real body" true (solve.Protocol.body <> "");
          Alcotest.(check int) "shutdown acknowledged" 0 bye.Protocol.status;
          Alcotest.(check string) "ack body" "bye" bye.Protocol.body
      | Ok _ -> Alcotest.fail "expected exactly two responses")

(* ---- overload robustness (DESIGN.md section 13) ----------------------- *)

let test_frame_overrun () =
  (* A peer streaming bytes that never complete a frame is cut off at
     the buffer bound, not buffered forever. *)
  Alcotest.(check int) "default bound covers one max frame"
    (Frame.max_payload + 9) Frame.max_buffer;
  (match Frame.create ~max_buffer:3 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "a bound below the header width must be rejected");
  let dec = Frame.create ~max_buffer:16 () in
  Frame.feed dec "00000040\n";
  (match Frame.next dec with
  | Ok None -> ()
  | _ -> Alcotest.fail "incomplete payload is not a frame yet");
  Frame.feed dec (String.make 20 'x');
  (match Frame.next dec with
  | Error (Frame.Overrun _) -> ()
  | _ -> Alcotest.fail "feeding past the bound must be Overrun");
  (* sticky, and further input is dropped rather than buffered *)
  Frame.feed dec (String.make 1000 'y');
  (match Frame.next dec with
  | Error (Frame.Overrun _) -> ()
  | _ -> Alcotest.fail "Overrun must be sticky");
  Alcotest.(check bool) "failed decoder stops buffering" true (Frame.buffered dec <= 16)

let test_deadline_budget_mapping () =
  let prep ?budget ?deadline_ms () =
    match
      Solver.prepare ~default_budget:None
        { Protocol.instance_text = sample_text; budget; deadline_ms; trace_id = None }
    with
    | Ok p -> p
    | Error e -> Alcotest.failf "prepare failed: %s" (Hs_core.Hs_error.to_string e)
  in
  (* 1 ms buys exactly deadline_units_per_ms budget units. *)
  let p = prep ~deadline_ms:1 () in
  Alcotest.(check (option int)) "deadline-derived budget"
    (Some Solver.default_deadline_units_per_ms) p.Solver.budget;
  Alcotest.(check bool) "deadline supplied the cap" true p.Solver.deadline_capped;
  (* The cache key must keep deadline-capped solves apart from
     plain-budget solves at equal effective units. *)
  let q = prep ~budget:Solver.default_deadline_units_per_ms () in
  Alcotest.(check (option int)) "same effective units" p.Solver.budget q.Solver.budget;
  Alcotest.(check bool) "distinct cache keys" true (p.Solver.key <> q.Solver.key);
  (* The tighter cap wins. *)
  let r = prep ~budget:50 ~deadline_ms:1 () in
  Alcotest.(check (option int)) "requested budget tighter" (Some 50) r.Solver.budget;
  Alcotest.(check bool) "not deadline-capped" false r.Solver.deadline_capped;
  let s = prep ~budget:500 ~deadline_ms:1 () in
  Alcotest.(check (option int)) "deadline tighter" (Some 100) s.Solver.budget;
  Alcotest.(check bool) "deadline-capped" true s.Solver.deadline_capped;
  (* Exhaustion of a deadline-derived budget is the typed deadline
     error, not a budget one. *)
  match Solver.execute (prep ~deadline_ms:0 ()) with
  | Error (Hs_core.Hs_error.Deadline_exceeded { deadline_ms = 0; _ }) -> ()
  | Error e ->
      Alcotest.failf "expected Deadline_exceeded, got %s" (Hs_core.Hs_error.to_string e)
  | Ok _ -> Alcotest.fail "a zero deadline cannot afford a solve"

let test_daemon_sheds_beyond_queue () =
  (* Queue bound 2, five pipelined solves in one write: the first two are
     admitted (leader + coalesced follower), the rest shed with the
     deterministic retry_after_ms ladder. *)
  with_daemon ~tweak:(fun c -> { c with Daemon.max_queue = 2 }) @@ fun path ->
  match Client.connect path with
  | Error e -> Alcotest.failf "connect failed: %s" e
  | Ok c -> (
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let solve =
        Protocol.Solve { instance_text = sample_text; budget = None; deadline_ms = None; trace_id = None }
      in
      match Client.call_many ~timeout_s:30.0 c [ solve; solve; solve; solve; solve ] with
      | Error e -> Alcotest.failf "pipelined batch failed: %s" e
      | Ok resps ->
          Alcotest.(check (list int)) "admit 2, shed 3" [ 0; 0; 5; 5; 5 ]
            (List.map (fun (r : Protocol.response) -> r.Protocol.status) resps);
          Alcotest.(check (list int)) "deterministic backoff ladder" [ 0; 0; 50; 100; 150 ]
            (List.map (fun (r : Protocol.response) -> r.Protocol.retry_after_ms) resps);
          List.iter
            (fun (r : Protocol.response) ->
              if r.Protocol.status = 5 then
                Alcotest.(check bool) "typed overloaded diagnostic" true
                  (r.Protocol.error <> ""))
            resps)

let test_daemon_deadline_expires_in_queue () =
  with_daemon @@ fun path ->
  match Client.connect path with
  | Error e -> Alcotest.failf "connect failed: %s" e
  | Ok c -> (
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      match
        Client.call ~timeout_s:30.0 c
          (Protocol.Solve
             { instance_text = sample_text; budget = None; deadline_ms = Some 0; trace_id = None })
      with
      | Error e -> Alcotest.failf "deadline call failed: %s" e
      | Ok r ->
          Alcotest.(check int) "expired in the queue is status 6" 6 r.Protocol.status;
          Alcotest.(check bool) "typed deadline diagnostic" true
            (let needle = "deadline exceeded [0 ms]" in
             String.length r.Protocol.error >= String.length needle
             && String.sub r.Protocol.error 0 (String.length needle) = needle))

let test_client_backoff_and_retry () =
  (* The backoff is a pure function: deterministic, monotone in the
     attempt, floored by the server hint. *)
  let b0 = Client.backoff_ms ~attempt:0 ~retry_after_ms:0 ~salt:3 () in
  Alcotest.(check int) "deterministic" b0
    (Client.backoff_ms ~attempt:0 ~retry_after_ms:0 ~salt:3 ());
  Alcotest.(check bool) "hint is a floor" true
    (Client.backoff_ms ~attempt:0 ~retry_after_ms:500 ~salt:3 () >= 500);
  Alcotest.(check bool) "exponential growth" true
    (Client.backoff_ms ~attempt:6 ~retry_after_ms:0 ~salt:3 ()
    > Client.backoff_ms ~attempt:0 ~retry_after_ms:0 ~salt:3 ());
  Alcotest.(check bool) "cap holds" true
    (Client.backoff_ms ~cap_ms:100 ~attempt:60 ~retry_after_ms:0 ~salt:3 () <= 125);
  (* Against an always-overloaded daemon (max_queue = 0) the client
     retries, honouring each response's hint, and finally surfaces the
     typed overloaded answer. *)
  with_daemon ~tweak:(fun c -> { c with Daemon.max_queue = 0 }) @@ fun path ->
  match Client.connect path with
  | Error e -> Alcotest.failf "connect failed: %s" e
  | Ok c ->
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let waits = ref [] in
      let sleep ms = waits := ms :: !waits in
      (match
         Client.call_with_retry ~timeout_s:30.0 ~retries:2 ~sleep c
           (Protocol.Solve
              { instance_text = sample_text; budget = None; deadline_ms = None; trace_id = None })
       with
      | Error e -> Alcotest.failf "retry loop failed: %s" e
      | Ok r ->
          Alcotest.(check int) "still overloaded after retries" 5 r.Protocol.status;
          Alcotest.(check int) "final hint climbs the ladder" 150 r.Protocol.retry_after_ms);
      match List.rev !waits with
      | [ w1; w2 ] ->
          Alcotest.(check bool) "first wait honours the 50 ms hint" true (w1 >= 50);
          Alcotest.(check bool) "second wait honours the 100 ms hint" true (w2 >= 100)
      | l -> Alcotest.failf "expected 2 waits, got %d" (List.length l)

let test_snapshot_roundtrip () =
  let params = { Protocol.instance_text = sample_text; budget = None; deadline_ms = None; trace_id = None } in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hsvc-snap-%d.json" (Unix.getpid ()))
  in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let a = Engine.create ~jobs:1 ~cache_capacity:8 ~default_budget:None () in
  let fresh = engine_solve_one a params in
  Alcotest.(check int) "solve ok" 0 fresh.Engine.status;
  (match Engine.save_snapshot a path with
  | Ok n -> Alcotest.(check int) "one entry saved" 1 n
  | Error e -> Alcotest.failf "save failed: %s" e);
  (* Restore into a fresh engine: the answer replays byte-identically. *)
  let b = Engine.create ~verify:true ~jobs:1 ~cache_capacity:8 ~default_budget:None () in
  (match Engine.load_snapshot b path with
  | Ok (1, 0) -> ()
  | Ok (l, r) -> Alcotest.failf "expected (1,0), got (%d,%d)" l r
  | Error e -> Alcotest.failf "load failed: %s" e);
  let restored = engine_solve_one b params in
  Alcotest.(check bool) "restored entry replays as a hit" true restored.Engine.cached;
  Alcotest.(check string) "byte-identical answer" fresh.Engine.body restored.Engine.body;
  (* Tamper with the snapshot on disk — flip one byte inside the stored
     body, keeping the JSON well-formed: the restore must reject the
     entry, because a snapshot is data, not an answer. *)
  let text = In_channel.with_open_text path In_channel.input_all in
  let needle = "makespan" in
  let idx =
    let n = String.length text and k = String.length needle in
    let rec go i =
      if i + k > n then Alcotest.fail "snapshot lacks the expected body text"
      else if String.sub text i k = needle then i
      else go (i + 1)
    in
    go 0
  in
  let tampered = Bytes.of_string text in
  Bytes.set tampered idx 'n';
  Out_channel.with_open_text path (fun oc -> Out_channel.output_bytes oc tampered);
  let c = Engine.create ~jobs:1 ~cache_capacity:8 ~default_budget:None () in
  match Engine.load_snapshot c path with
  | Ok (0, 1) ->
      Alcotest.(check int) "tampered entry never lands in the cache" 0
        (Engine.cache_length c)
  | Ok (l, r) -> Alcotest.failf "tampered snapshot accepted: (%d,%d)" l r
  | Error e -> Alcotest.failf "tampered load errored instead of rejecting: %s" e

let test_daemon_snapshot_restart () =
  let snap =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hsvc-restart-%d.json" (Unix.getpid ()))
  in
  Fun.protect ~finally:(fun () -> try Sys.remove snap with Sys_error _ -> ())
  @@ fun () ->
  let solve c =
    match
      Client.call ~timeout_s:30.0 c
        (Protocol.Solve { instance_text = sample_text; budget = None; deadline_ms = None; trace_id = None })
    with
    | Error e -> Alcotest.failf "solve failed: %s" e
    | Ok r ->
        Alcotest.(check int) "solve ok" 0 r.Protocol.status;
        r
  in
  let first =
    with_daemon ~tweak:(fun c -> { c with Daemon.snapshot_path = Some snap })
    @@ fun path ->
    match Client.connect path with
    | Error e -> Alcotest.failf "connect failed: %s" e
    | Ok c ->
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        let r = solve c in
        Alcotest.(check bool) "first daemon solves fresh" false r.Protocol.cached;
        r.Protocol.body
  in
  Alcotest.(check bool) "snapshot written on shutdown" true (Sys.file_exists snap);
  (* Same socket dance, fresh daemon process state: the first request
     after restart must already hit. *)
  with_daemon ~tweak:(fun c -> { c with Daemon.snapshot_path = Some snap })
  @@ fun path ->
  match Client.connect path with
  | Error e -> Alcotest.failf "connect failed: %s" e
  | Ok c ->
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let r = solve c in
      Alcotest.(check bool) "restored cache answers the restart" true r.Protocol.cached;
      Alcotest.(check string) "byte-identical across the restart" first r.Protocol.body

(* ---- observability: flight recorder, introspect, trace spans ---------- *)

module Recorder = Hs_service.Recorder
module Metrics = Hs_obs.Metrics
module Tracer = Hs_obs.Tracer

let test_recorder_ring () =
  (try
     ignore (Recorder.create ~capacity:0);
     Alcotest.fail "capacity 0 must be rejected"
   with Invalid_argument _ -> ());
  let r = Recorder.create ~capacity:3 in
  Alcotest.(check int) "empty" 0 (Recorder.length r);
  for i = 1 to 5 do
    Recorder.record r ~cached:(i mod 2 = 0) ~queue_ms:i ~solve_ms:(10 * i)
      ~digest:(Printf.sprintf "d%d" i) ~status:0 ()
  done;
  Alcotest.(check int) "recorded counts past capacity" 5 (Recorder.recorded r);
  Alcotest.(check int) "ring holds capacity" 3 (Recorder.length r);
  let seqs = List.map (fun (e : Recorder.entry) -> e.seq) (Recorder.entries r) in
  Alcotest.(check (list int)) "oldest first, oldest overwritten" [ 3; 4; 5 ] seqs;
  (* line format is the drain-dump/post-mortem contract *)
  Recorder.record r ~trace_id:"abc123" ~shed_reason:"queue_full" ~retry_after_ms:100
    ~digest:"" ~status:5 ();
  let last = List.nth (Recorder.entries r) 2 in
  Alcotest.(check string) "shed line"
    "#6 status=5 cached=false digest=- queue_ms=0 solve_ms=0 trace=abc123 \
     shed=queue_full retry_after_ms=100"
    (Recorder.entry_to_line last);
  (match List.hd (Recorder.entries r) with
  | e ->
      Alcotest.(check string) "completed line"
        "#4 status=0 cached=true digest=d4 queue_ms=4 solve_ms=40 trace=- shed=-"
        (Recorder.entry_to_line e));
  (* wire round trip for every held entry *)
  List.iter
    (fun (e : Recorder.entry) ->
      match Recorder.entry_of_json (Recorder.entry_to_json e) with
      | Ok e' -> Alcotest.(check bool) "entry round trips" true (e = e')
      | Error err -> Alcotest.failf "entry_of_json: %s" err)
    (Recorder.entries r)

let introspect_doc c ~recent =
  match Client.call ~timeout_s:30.0 c (Protocol.Introspect { recent }) with
  | Error e -> Alcotest.failf "introspect failed: %s" e
  | Ok r ->
      Alcotest.(check int) "introspect is status 0" 0 r.Protocol.status;
      (match Json.parse r.Protocol.body with
      | Error e -> Alcotest.failf "introspect body unparsable: %s" e
      | Ok doc ->
          Alcotest.(check bool) "introspect schema" true
            (Json.member "schema" doc = Some (Json.String "hsched.introspect/1"));
          doc)

let test_daemon_introspect () =
  with_daemon @@ fun path ->
  match Client.connect path with
  | Error e -> Alcotest.failf "connect failed: %s" e
  | Ok c ->
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let solve () =
        match
          Client.call ~timeout_s:30.0 c
            (Protocol.Solve
               { instance_text = sample_text; budget = None; deadline_ms = None; trace_id = None })
        with
        | Ok r when r.Protocol.status = 0 -> r
        | Ok r -> Alcotest.failf "solve failed: %s" r.Protocol.error
        | Error e -> Alcotest.failf "solve failed: %s" e
      in
      let fresh = solve () and hit = solve () in
      Alcotest.(check bool) "second solve hits" true
        (not fresh.Protocol.cached && hit.Protocol.cached);
      let doc = introspect_doc c ~recent:true in
      Alcotest.(check bool) "queue drained" true
        (Json.member "queue_depth" doc = Some (Json.Int 0));
      Alcotest.(check bool) "not draining" true
        (Json.member "draining" doc = Some (Json.Bool false));
      (* the embedded metrics snapshot reconstructs client-side *)
      let snap =
        match Json.member "metrics" doc with
        | None -> Alcotest.fail "introspect body lacks metrics"
        | Some m -> (
            match Metrics.of_json m with
            | Ok s -> s
            | Error e -> Alcotest.failf "metrics snapshot rejected: %s" e)
      in
      (match Metrics.find_histogram snap "service.phase.solve_ms" with
      | Some h -> Alcotest.(check int) "one fresh solve observed" 1 h.Metrics.observations
      | None -> Alcotest.fail "solve_ms histogram not published");
      (match Metrics.find_histogram snap "service.phase.queue_ms" with
      | Some h ->
          Alcotest.(check bool) "queue waits observed" true (h.Metrics.observations >= 2)
      | None -> Alcotest.fail "queue_ms histogram not published");
      (* flight recorder: one fresh entry, one cached hit *)
      (match Json.member "recent" doc with
      | Some (Json.List entries) -> (
          let parsed =
            List.map
              (fun j ->
                match Recorder.entry_of_json j with
                | Ok e -> e
                | Error e -> Alcotest.failf "recent entry rejected: %s" e)
              entries
          in
          match parsed with
          | [ e1; e2 ] ->
              Alcotest.(check bool) "fresh then hit" true
                ((not e1.Recorder.cached) && e2.Recorder.cached);
              Alcotest.(check bool) "both carry the cache key" true
                (e1.Recorder.digest <> "" && e1.Recorder.digest = e2.Recorder.digest);
              Alcotest.(check int) "hits do not re-solve" 0 e2.Recorder.solve_ms
          | es -> Alcotest.failf "expected 2 recent entries, got %d" (List.length es))
      | _ -> Alcotest.fail "recent=true must include the flight recorder");
      (* recent is opt-in *)
      let doc2 = introspect_doc c ~recent:false in
      Alcotest.(check bool) "no recent by default" true (Json.member "recent" doc2 = None)

let test_introspect_during_overload () =
  (* max_queue = 0 sheds every solve, yet introspection stays answerable
     (out-of-band) and the recorder replays the shed with its hint. *)
  with_daemon ~tweak:(fun c -> { c with Daemon.max_queue = 0; recorder_capacity = 4 })
  @@ fun path ->
  match Client.connect path with
  | Error e -> Alcotest.failf "connect failed: %s" e
  | Ok c -> (
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      (match
         Client.call ~timeout_s:30.0 c
           (Protocol.Solve
              {
                instance_text = sample_text;
                budget = None;
                deadline_ms = None;
                trace_id = Some "feedface00000000";
              })
       with
      | Ok r ->
          Alcotest.(check int) "shed" 5 r.Protocol.status;
          Alcotest.(check int) "first shed hint" 50 r.Protocol.retry_after_ms
      | Error e -> Alcotest.failf "solve failed: %s" e);
      let doc = introspect_doc c ~recent:true in
      match Json.member "recent" doc with
      | Some (Json.List [ j ]) -> (
          match Recorder.entry_of_json j with
          | Error e -> Alcotest.failf "recent entry rejected: %s" e
          | Ok e ->
              Alcotest.(check int) "status" 5 e.Recorder.status;
              Alcotest.(check string) "reason" "queue_full" e.Recorder.shed_reason;
              Alcotest.(check int) "hint replayed" 50 e.Recorder.retry_after_ms;
              Alcotest.(check string) "shed before parsing has no digest" ""
                e.Recorder.digest;
              Alcotest.(check string) "trace id kept" "feedface00000000"
                e.Recorder.trace_id)
      | _ -> Alcotest.fail "expected exactly the shed in the recorder")

let test_traced_solve_returns_spans () =
  with_daemon @@ fun path ->
  match Client.connect path with
  | Error e -> Alcotest.failf "connect failed: %s" e
  | Ok c -> (
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let solve trace_id =
        match
          Client.call ~timeout_s:30.0 c
            (Protocol.Solve
               { instance_text = sample_text; budget = None; deadline_ms = None; trace_id })
        with
        | Ok r when r.Protocol.status = 0 -> r
        | Ok r -> Alcotest.failf "solve failed: %s" r.Protocol.error
        | Error e -> Alcotest.failf "solve failed: %s" e
      in
      let tid = "cafe0123cafe0123" in
      let traced = solve (Some tid) in
      Alcotest.(check bool) "server spans ride the traced response" true
        (traced.Protocol.spans <> []);
      let spans =
        List.map
          (fun j ->
            match Tracer.span_of_json j with
            | Ok s -> s
            | Error e -> Alcotest.failf "span rejected: %s" e)
          traced.Protocol.spans
      in
      let names = List.map (fun (s : Tracer.span) -> s.name) spans in
      List.iter
        (fun want ->
          if not (List.mem want names) then
            Alcotest.failf "missing server span %s (got: %s)" want
              (String.concat ", " names))
        [ "service.queue.wait"; "service.batch"; "service.solve" ];
      List.iter
        (fun (s : Tracer.span) ->
          match List.assoc_opt "trace_id" s.args with
          | Some (Tracer.Str t) when t = tid -> ()
          | _ -> Alcotest.failf "span %s not tagged with the trace id" s.name)
        spans;
      (* spans absorb into a local sink as remote (pid 2 in Chrome) *)
      Tracer.clear ();
      Tracer.absorb_remote spans;
      Alcotest.(check int) "absorbed server-side spans" (List.length spans)
        (List.length (Tracer.spans ()));
      Tracer.clear ();
      (* untraced requests stay span-free on the wire *)
      let untraced = solve None in
      match untraced.Protocol.spans with
      | [] -> ()
      | _ -> Alcotest.fail "untraced response must not carry spans")

let suite =
  ( "service",
    [
      Alcotest.test_case "frame round-trip under ragged feeds" `Quick test_frame_roundtrip;
      Alcotest.test_case "frame decoder typed errors" `Quick test_frame_errors;
      Alcotest.test_case "protocol codec round-trip" `Quick test_protocol_roundtrip;
      Alcotest.test_case "protocol rejects malformed requests" `Quick test_protocol_rejects;
      Alcotest.test_case "LRU cache eviction order" `Quick test_cache_lru;
      Alcotest.test_case "daemon survives the malformed-frame corpus" `Quick
        test_daemon_fault_corpus;
      Alcotest.test_case "daemon survives corrupt_frame fuzzing" `Quick
        test_daemon_fault_fuzz;
      Alcotest.test_case "solve body, cache keys, typed solve errors" `Quick
        test_daemon_solve_and_cache;
      Alcotest.test_case "verifying engine detects cache poisoning" `Quick
        test_engine_cache_poisoning;
      Alcotest.test_case "verified batch keeps coalescing and order" `Quick
        test_engine_verified_batch;
      Alcotest.test_case "shutdown drains in-flight work" `Quick test_daemon_drain;
      Alcotest.test_case "frame decoder bounds its buffer" `Quick test_frame_overrun;
      Alcotest.test_case "deadline folds into the budget and the key" `Quick
        test_deadline_budget_mapping;
      Alcotest.test_case "admission queue sheds with a deterministic ladder" `Quick
        test_daemon_sheds_beyond_queue;
      Alcotest.test_case "queued deadline expires at dispatch" `Quick
        test_daemon_deadline_expires_in_queue;
      Alcotest.test_case "client backoff is deterministic and honors hints" `Quick
        test_client_backoff_and_retry;
      Alcotest.test_case "snapshot round-trips and rejects tampering" `Quick
        test_snapshot_roundtrip;
      Alcotest.test_case "daemon restores its cache across restarts" `Quick
        test_daemon_snapshot_restart;
      Alcotest.test_case "flight recorder ring semantics" `Quick test_recorder_ring;
      Alcotest.test_case "introspect reports live daemon state" `Quick
        test_daemon_introspect;
      Alcotest.test_case "introspect answers during overload" `Quick
        test_introspect_during_overload;
      Alcotest.test_case "traced solve returns tagged server spans" `Quick
        test_traced_solve_returns_spans;
    ] )
