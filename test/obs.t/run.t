Telemetry flags end to end (DESIGN.md section 9).

--stats-json writes the metrics registry with its stable schema:

  $ ../../bin/hsched.exe solve --m 4 --jobs 8 --seed 3 --stats-json stats.json > /dev/null
  $ ../json_check.exe stats.json schema counters gauges histograms
  stats.json: valid JSON; keys ok

--trace writes a Chrome trace_event timeline of the same solve:

  $ ../../bin/hsched.exe solve --m 4 --jobs 8 --seed 3 --trace trace.json > /dev/null
  $ ../json_check.exe trace.json traceEvents displayTimeUnit otherData
  trace.json: valid JSON; keys ok

A budget-exhausted run exits 4 but still flushes a well-formed (merely
truncated) trace through the at_exit hook:

  $ ../../bin/hsched.exe solve --m 3 --jobs 6 --seed 1 --budget 5 --trace bust.json
  hsched: budget exhausted [lp]: simplex pivot budget ran out at T=25 (used 5 of 5 pivots)
  [4]
  $ ../json_check.exe bust.json traceEvents otherData
  bust.json: valid JSON; keys ok

--stats prints the counter table to stderr; the solve output itself
stays on stdout:

  $ ../../bin/hsched.exe solve --m 4 --jobs 8 --seed 3 --stats 2>&1 >/dev/null | head -4
  counters:
    bb.incumbents                    0
    bb.nodes                         0
    bb.pruned                        0
