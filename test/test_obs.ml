(* Tests for the Hs_obs telemetry layer: span nesting, the disabled
   tracer's no-op guarantee, deterministic metrics snapshots across
   identical seeded solves, the Chrome-JSON round trip, and the
   simplex.pivots == budget-consumed invariant. *)

open Hs_obs
module T = Hs_laminar.Topology

(* Every test runs against the process-global tracer, so save/restore
   its state (and a deterministic tick clock) around the body. *)
let with_tracer f =
  Tracer.clear ();
  let tick = ref 0L in
  Tracer.set_clock (fun () ->
      tick := Int64.add !tick 1L;
      !tick);
  Tracer.enable ();
  Fun.protect
    ~finally:(fun () ->
      Tracer.disable ();
      Tracer.clear ())
    f

let span_by_name name =
  match List.find_opt (fun (s : Tracer.span) -> s.name = name) (Tracer.spans ()) with
  | Some s -> s
  | None -> Alcotest.failf "span %s not recorded" name

let test_span_nesting () =
  with_tracer (fun () ->
      Tracer.with_span ~cat:"a" "outer" (fun () ->
          Tracer.with_span ~cat:"b" "inner" (fun () -> ());
          Tracer.with_span ~cat:"b" "inner2" (fun () ->
              Tracer.add_args [ ("k", Tracer.Int 7) ]));
      let outer = span_by_name "outer" in
      let inner = span_by_name "inner" in
      let inner2 = span_by_name "inner2" in
      Alcotest.(check int) "outer at depth 0" 0 outer.depth;
      Alcotest.(check int) "inner at depth 1" 1 inner.depth;
      Alcotest.(check int) "inner2 at depth 1" 1 inner2.depth;
      Alcotest.(check bool) "open order" true (outer.seq < inner.seq && inner.seq < inner2.seq);
      (* children complete before their parent *)
      let order = List.map (fun (s : Tracer.span) -> s.name) (Tracer.spans ()) in
      Alcotest.(check (list string)) "completion order" [ "inner"; "inner2"; "outer" ] order;
      (* interval containment under the tick clock *)
      let ends (s : Tracer.span) = Int64.add s.start_ns s.dur_ns in
      Alcotest.(check bool) "outer contains inner" true
        (outer.start_ns <= inner.start_ns && ends inner <= ends outer);
      Alcotest.(check bool) "mid-span args attached" true
        (List.mem_assoc "k" inner2.args))

let test_span_closed_on_raise () =
  with_tracer (fun () ->
      (try
         Tracer.with_span "doomed" (fun () ->
             Tracer.with_span "child" (fun () -> failwith "boom"))
       with Failure _ -> ());
      let names = List.map (fun (s : Tracer.span) -> s.name) (Tracer.spans ()) in
      Alcotest.(check (list string)) "both spans recorded" [ "child"; "doomed" ] names)

let test_disabled_records_nothing () =
  Tracer.clear ();
  Alcotest.(check bool) "disabled by default here" false (Tracer.enabled ());
  let r = Tracer.with_span "ghost" (fun () -> 42) in
  Alcotest.(check int) "thunk result passes through" 42 r;
  Tracer.add_args [ ("k", Tracer.Int 1) ];
  Alcotest.(check int) "no spans recorded" 0 (List.length (Tracer.spans ()));
  (* with_disabled restores the previous state *)
  Tracer.enable ();
  Tracer.with_disabled (fun () ->
      Alcotest.(check bool) "forced off" false (Tracer.enabled ()));
  Alcotest.(check bool) "restored" true (Tracer.enabled ());
  Tracer.disable ();
  Tracer.clear ()

let solve_once () =
  let rng = Hs_workloads.Rng.create 1234 in
  let inst =
    Hs_workloads.Generators.hierarchical rng ~lam:(T.semi_partitioned 4) ~n:8
      ~base:(1, 9) ~heterogeneity:1.5 ~overhead:0.2 ()
  in
  match Hs_core.Approx.Exact.solve inst with
  | Ok o -> o
  | Error e -> Alcotest.failf "pipeline failed: %s" e

let test_deterministic_snapshots () =
  Metrics.reset ();
  ignore (solve_once ());
  let s1 = Metrics.snapshot () in
  Metrics.reset ();
  ignore (solve_once ());
  let s2 = Metrics.snapshot () in
  (match Metrics.find_counter s1 "simplex.pivots" with
  | Some v -> Alcotest.(check bool) "pivots counted" true (v > 0)
  | None -> Alcotest.fail "simplex.pivots not registered");
  (match Metrics.find_counter s1 "search.probes" with
  | Some v -> Alcotest.(check bool) "probes counted" true (v > 0)
  | None -> Alcotest.fail "search.probes not registered");
  Alcotest.(check bool) "identical seeded solves, identical snapshots" true (s1 = s2)

let test_chrome_round_trip () =
  with_tracer (fun () ->
      ignore (solve_once ());
      let nspans = List.length (Tracer.spans ()) in
      Alcotest.(check bool) "pipeline produced spans" true (nspans > 0);
      let doc = Json.to_string (Tracer.to_chrome ()) in
      match Json.parse doc with
      | Error e -> Alcotest.failf "exported trace does not parse: %s" e
      | Ok j -> (
          match Json.member "traceEvents" j with
          | Some (Json.List evs) ->
              Alcotest.(check int) "one event per span" nspans (List.length evs);
              List.iter
                (fun ev ->
                  List.iter
                    (fun k ->
                      if Json.member k ev = None then
                        Alcotest.failf "event missing %s field" k)
                    [ "name"; "cat"; "ph"; "ts"; "dur"; "args" ])
                evs
          | _ -> Alcotest.fail "no traceEvents list"))

let test_pivots_match_budget_meter () =
  Metrics.reset ();
  let rng = Hs_workloads.Rng.create 77 in
  let inst =
    Hs_workloads.Generators.hierarchical rng ~lam:(T.semi_partitioned 4) ~n:8
      ~base:(1, 9) ~heterogeneity:1.5 ~overhead:0.2 ()
  in
  let budget = Hs_core.Budget.v ~lp_pivots:1_000_000 () in
  match Hs_core.Approx.solve_robust ~budget inst with
  | Error e -> Alcotest.failf "solve_robust failed: %s" (Hs_core.Hs_error.to_string e)
  | Ok r -> (
      let snap = Metrics.snapshot () in
      match
        (Metrics.find_counter snap "simplex.pivots", r.r_consumed.Hs_core.Budget.lp_pivots)
      with
      | Some counted, Some consumed ->
          Alcotest.(check bool) "pivots spent" true (counted > 0);
          Alcotest.(check int) "counter equals budget meter" consumed counted;
          (match Metrics.find_gauge snap "budget.pivots.consumed" with
          | Some g -> Alcotest.(check int) "gauge equals meter" consumed g
          | None -> Alcotest.fail "budget.pivots.consumed gauge not published")
      | _ -> Alcotest.fail "pivot counter or meter missing")

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  ( "obs",
    [
      u "span nesting well-formed" test_span_nesting;
      u "spans survive exceptions" test_span_closed_on_raise;
      u "disabled tracer records nothing" test_disabled_records_nothing;
      u "deterministic metrics snapshots" test_deterministic_snapshots;
      u "Chrome JSON round trip" test_chrome_round_trip;
      u "simplex.pivots == budget consumed" test_pivots_match_budget_meter;
    ] )
