(* Tests for the Hs_obs telemetry layer: span nesting, the disabled
   tracer's no-op guarantee, deterministic metrics snapshots across
   identical seeded solves, the Chrome-JSON round trip, and the
   simplex.pivots == budget-consumed invariant. *)

open Hs_obs
module T = Hs_laminar.Topology

(* Every test runs against the process-global tracer, so save/restore
   its state (and a deterministic tick clock) around the body. *)
let with_tracer f =
  Tracer.clear ();
  let tick = ref 0L in
  Tracer.set_clock (fun () ->
      tick := Int64.add !tick 1L;
      !tick);
  Tracer.enable ();
  Fun.protect
    ~finally:(fun () ->
      Tracer.disable ();
      Tracer.clear ())
    f

let span_by_name name =
  match List.find_opt (fun (s : Tracer.span) -> s.name = name) (Tracer.spans ()) with
  | Some s -> s
  | None -> Alcotest.failf "span %s not recorded" name

let test_span_nesting () =
  with_tracer (fun () ->
      Tracer.with_span ~cat:"a" "outer" (fun () ->
          Tracer.with_span ~cat:"b" "inner" (fun () -> ());
          Tracer.with_span ~cat:"b" "inner2" (fun () ->
              Tracer.add_args [ ("k", Tracer.Int 7) ]));
      let outer = span_by_name "outer" in
      let inner = span_by_name "inner" in
      let inner2 = span_by_name "inner2" in
      Alcotest.(check int) "outer at depth 0" 0 outer.depth;
      Alcotest.(check int) "inner at depth 1" 1 inner.depth;
      Alcotest.(check int) "inner2 at depth 1" 1 inner2.depth;
      Alcotest.(check bool) "open order" true (outer.seq < inner.seq && inner.seq < inner2.seq);
      (* children complete before their parent *)
      let order = List.map (fun (s : Tracer.span) -> s.name) (Tracer.spans ()) in
      Alcotest.(check (list string)) "completion order" [ "inner"; "inner2"; "outer" ] order;
      (* interval containment under the tick clock *)
      let ends (s : Tracer.span) = Int64.add s.start_ns s.dur_ns in
      Alcotest.(check bool) "outer contains inner" true
        (outer.start_ns <= inner.start_ns && ends inner <= ends outer);
      Alcotest.(check bool) "mid-span args attached" true
        (List.mem_assoc "k" inner2.args))

let test_span_closed_on_raise () =
  with_tracer (fun () ->
      (try
         Tracer.with_span "doomed" (fun () ->
             Tracer.with_span "child" (fun () -> failwith "boom"))
       with Failure _ -> ());
      let names = List.map (fun (s : Tracer.span) -> s.name) (Tracer.spans ()) in
      Alcotest.(check (list string)) "both spans recorded" [ "child"; "doomed" ] names)

let test_disabled_records_nothing () =
  Tracer.clear ();
  Alcotest.(check bool) "disabled by default here" false (Tracer.enabled ());
  let r = Tracer.with_span "ghost" (fun () -> 42) in
  Alcotest.(check int) "thunk result passes through" 42 r;
  Tracer.add_args [ ("k", Tracer.Int 1) ];
  Alcotest.(check int) "no spans recorded" 0 (List.length (Tracer.spans ()));
  (* with_disabled restores the previous state *)
  Tracer.enable ();
  Tracer.with_disabled (fun () ->
      Alcotest.(check bool) "forced off" false (Tracer.enabled ()));
  Alcotest.(check bool) "restored" true (Tracer.enabled ());
  Tracer.disable ();
  Tracer.clear ()

let solve_once () =
  let rng = Hs_workloads.Rng.create 1234 in
  let inst =
    Hs_workloads.Generators.hierarchical rng ~lam:(T.semi_partitioned 4) ~n:8
      ~base:(1, 9) ~heterogeneity:1.5 ~overhead:0.2 ()
  in
  match Hs_core.Approx.Exact.solve inst with
  | Ok o -> o
  | Error e -> Alcotest.failf "pipeline failed: %s" e

let test_deterministic_snapshots () =
  Metrics.reset ();
  ignore (solve_once ());
  let s1 = Metrics.snapshot () in
  Metrics.reset ();
  ignore (solve_once ());
  let s2 = Metrics.snapshot () in
  (match Metrics.find_counter s1 "simplex.pivots" with
  | Some v -> Alcotest.(check bool) "pivots counted" true (v > 0)
  | None -> Alcotest.fail "simplex.pivots not registered");
  (match Metrics.find_counter s1 "search.probes" with
  | Some v -> Alcotest.(check bool) "probes counted" true (v > 0)
  | None -> Alcotest.fail "search.probes not registered");
  Alcotest.(check bool) "identical seeded solves, identical snapshots" true (s1 = s2)

let test_chrome_round_trip () =
  with_tracer (fun () ->
      ignore (solve_once ());
      let nspans = List.length (Tracer.spans ()) in
      Alcotest.(check bool) "pipeline produced spans" true (nspans > 0);
      let doc = Json.to_string (Tracer.to_chrome ()) in
      match Json.parse doc with
      | Error e -> Alcotest.failf "exported trace does not parse: %s" e
      | Ok j -> (
          match Json.member "traceEvents" j with
          | Some (Json.List evs) ->
              Alcotest.(check int) "one event per span" nspans (List.length evs);
              List.iter
                (fun ev ->
                  List.iter
                    (fun k ->
                      if Json.member k ev = None then
                        Alcotest.failf "event missing %s field" k)
                    [ "name"; "cat"; "ph"; "ts"; "dur"; "args" ])
                evs
          | _ -> Alcotest.fail "no traceEvents list"))

let test_pivots_match_budget_meter () =
  Metrics.reset ();
  let rng = Hs_workloads.Rng.create 77 in
  let inst =
    Hs_workloads.Generators.hierarchical rng ~lam:(T.semi_partitioned 4) ~n:8
      ~base:(1, 9) ~heterogeneity:1.5 ~overhead:0.2 ()
  in
  let budget = Hs_core.Budget.v ~lp_pivots:1_000_000 () in
  match Hs_core.Approx.solve_robust ~budget inst with
  | Error e -> Alcotest.failf "solve_robust failed: %s" (Hs_core.Hs_error.to_string e)
  | Ok r -> (
      let snap = Metrics.snapshot () in
      match
        (Metrics.find_counter snap "simplex.pivots", r.r_consumed.Hs_core.Budget.lp_pivots)
      with
      | Some counted, Some consumed ->
          Alcotest.(check bool) "pivots spent" true (counted > 0);
          Alcotest.(check int) "counter equals budget meter" consumed counted;
          (match Metrics.find_gauge snap "budget.pivots.consumed" with
          | Some g -> Alcotest.(check int) "gauge equals meter" consumed g
          | None -> Alcotest.fail "budget.pivots.consumed gauge not published")
      | _ -> Alcotest.fail "pivot counter or meter missing")

(* JSON string escapes must survive emit -> parse exactly: the wire
   protocol carries instance texts (embedded newlines/tabs), error
   messages (quotes, backslashes) and span payloads through this
   codec. *)
let test_json_escape_round_trip () =
  let cases =
    [
      "plain";
      "quote \" backslash \\ slash /";
      "newline\ntab\tcr\rbackspace\bformfeed\012";
      "nul \000 and unit separator \031";
      "control run \001\002\003\030";
      "high bytes survive: caf\xc3\xa9 \xe2\x82\xac";
      "";
    ]
  in
  List.iter
    (fun s ->
      let doc = Json.Obj [ ("k", Json.String s) ] in
      match Json.parse (Json.to_string doc) with
      | Error e -> Alcotest.failf "reparse of %S failed: %s" s e
      | Ok j -> (
          match Json.member "k" j with
          | Some (Json.String s') ->
              Alcotest.(check string) (Printf.sprintf "round trip of %S" s) s s'
          | _ -> Alcotest.failf "member lost for %S" s))
    cases;
  (* \uXXXX escapes parse (emitter writes them for control chars). *)
  (match Json.parse "{\"k\":\"\\u0041\\u000a\"}" with
  | Ok j ->
      Alcotest.(check bool) "unicode escapes decode" true
        (Json.member "k" j = Some (Json.String "A\n"))
  | Error e -> Alcotest.failf "unicode escape parse failed: %s" e);
  (* span args ride the same codec: a span whose name needs escaping *)
  with_tracer (fun () ->
      Tracer.with_span ~args:[ ("msg", Tracer.Str "line1\nline2\"q\"") ] "odd\tname"
        (fun () -> ());
      match Tracer.spans () with
      | [ s ] -> (
          match Tracer.span_of_json (Tracer.span_to_json s) with
          | Ok s' -> Alcotest.(check bool) "span wire round trip" true (s = s')
          | Error e -> Alcotest.failf "span_of_json: %s" e)
      | _ -> Alcotest.fail "expected exactly one span")

(* The retention cap applies to absorb just like direct recording, and
   every span lost to it is counted in [dropped] — workers record
   concurrently into their own sinks, then the parent absorbs each
   worker's spans under a deliberately small cap. *)
let test_dropped_accounting_multi_domain () =
  with_tracer (fun () ->
      Tracer.set_max_spans 10;
      Fun.protect
        ~finally:(fun () -> Tracer.set_max_spans (1 lsl 20))
        (fun () ->
          let cfg = Tracer.config () in
          let per_worker = 4 in
          let workers =
            List.init 4 (fun w ->
                Domain.spawn (fun () ->
                    Tracer.set_config cfg;
                    for i = 0 to per_worker - 1 do
                      Tracer.with_span (Printf.sprintf "w%d.s%d" w i) (fun () -> ())
                    done;
                    (Domain.self () :> int), Tracer.spans ()))
          in
          let results = List.map Domain.join workers in
          List.iter
            (fun (d, spans) ->
              Alcotest.(check int)
                (Printf.sprintf "worker %d recorded all its spans" d)
                per_worker (List.length spans))
            results;
          List.iter (fun (d, spans) -> Tracer.absorb ~domain:d spans) results;
          let kept = List.length (Tracer.spans ()) in
          Alcotest.(check int) "sink capped" 10 kept;
          Alcotest.(check int) "every excess span counted"
            ((4 * per_worker) - 10) (Tracer.dropped ());
          (* absorbed spans carry their worker's domain.id tag *)
          List.iter
            (fun (s : Tracer.span) ->
              if not (List.mem_assoc "domain.id" s.args) then
                Alcotest.failf "span %s lost its domain tag" s.name)
            (Tracer.spans ());
          (* seq stays strictly increasing across the merged sink *)
          let seqs =
            List.map (fun (s : Tracer.span) -> s.seq) (Tracer.spans ())
            |> List.sort compare
          in
          let distinct = List.sort_uniq compare seqs in
          Alcotest.(check int) "absorbed seqs distinct" kept (List.length distinct)))

let test_find_histogram () =
  Metrics.reset ();
  let h = Metrics.histogram ~buckets:[ 10; 100 ] "test.obs.lookup_ms" in
  Metrics.observe h 5;
  Metrics.observe h 50;
  Metrics.observe h 500;
  let snap = Metrics.snapshot () in
  (match Metrics.find_histogram snap "test.obs.lookup_ms" with
  | None -> Alcotest.fail "find_histogram missed a registered histogram"
  | Some hs ->
      Alcotest.(check (list int)) "bounds" [ 10; 100 ] hs.Metrics.buckets;
      Alcotest.(check (list int)) "counts" [ 1; 1; 1 ]
        (Array.to_list hs.Metrics.counts);
      Alcotest.(check int) "sum" 555 hs.Metrics.sum;
      Alcotest.(check int) "observations" 3 hs.Metrics.observations);
  Alcotest.(check bool) "absent name is None" true
    (Metrics.find_histogram snap "no.such.histogram" = None)

let test_metrics_json_round_trip () =
  Metrics.reset ();
  ignore (solve_once ());
  let h = Metrics.histogram ~buckets:[ 1; 2; 5 ] "test.obs.rt_ms" in
  Metrics.observe h 1;
  Metrics.observe h 3;
  Metrics.observe h 9;
  let snap = Metrics.snapshot () in
  (match Metrics.of_json (Metrics.to_json snap) with
  | Error e -> Alcotest.failf "of_json rejected to_json output: %s" e
  | Ok snap' ->
      Alcotest.(check bool) "snapshot round trips" true (snap = snap'));
  (* typed rejection, not exceptions, on malformed documents *)
  List.iter
    (fun doc ->
      match Metrics.of_json doc with
      | Ok _ -> Alcotest.fail "malformed metrics document accepted"
      | Error _ -> ())
    [
      Json.Obj [];
      Json.Obj [ ("schema", Json.String "hsched.metrics/999") ];
      Json.Obj
        [
          ("schema", Json.String "hsched.metrics/1");
          ("counters", Json.Obj [ ("x", Json.String "nope") ]);
          ("gauges", Json.Obj []);
          ("histograms", Json.Obj []);
        ];
    ]

let test_prometheus_exposition () =
  Metrics.reset ();
  let c = Metrics.counter "test.prom.requests" in
  Metrics.incr c;
  Metrics.incr c;
  let h = Metrics.histogram ~buckets:[ 10; 100 ] "test.prom.wait_ms" in
  Metrics.observe h 5;
  Metrics.observe h 50;
  Metrics.observe h 500;
  let text = Metrics.to_prometheus (Metrics.snapshot ()) in
  let has line =
    List.mem line (String.split_on_char '\n' text)
    || Alcotest.failf "missing exposition line %S in:\n%s" line text
  in
  List.iter
    (fun line -> ignore (has line))
    [
      "# TYPE hsched_test_prom_requests counter";
      "hsched_test_prom_requests 2";
      "# TYPE hsched_test_prom_wait_ms histogram";
      "hsched_test_prom_wait_ms_bucket{le=\"10\"} 1";
      "hsched_test_prom_wait_ms_bucket{le=\"100\"} 2";
      "hsched_test_prom_wait_ms_bucket{le=\"+Inf\"} 3";
      "hsched_test_prom_wait_ms_sum 555";
      "hsched_test_prom_wait_ms_count 3";
    ];
  (* names are mangled to the [a-zA-Z0-9_] alphabet *)
  Alcotest.(check string) "name mangling" "hsched_a_b_c_1"
    (Metrics.prometheus_name "a.b-c/1")

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  ( "obs",
    [
      u "span nesting well-formed" test_span_nesting;
      u "spans survive exceptions" test_span_closed_on_raise;
      u "disabled tracer records nothing" test_disabled_records_nothing;
      u "deterministic metrics snapshots" test_deterministic_snapshots;
      u "Chrome JSON round trip" test_chrome_round_trip;
      u "simplex.pivots == budget consumed" test_pivots_match_budget_meter;
      u "JSON escape round trips" test_json_escape_round_trip;
      u "dropped accounting across domains" test_dropped_accounting_multi_domain;
      u "find_histogram lookup" test_find_histogram;
      u "metrics JSON round trip" test_metrics_json_round_trip;
      u "Prometheus exposition format" test_prometheus_exposition;
    ] )
