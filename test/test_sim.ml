(* Tests for the migration-latency execution simulator. *)

open Hs_model
open Hs_sim
open Hs_workloads

let smp () = Hs_laminar.Topology.smp_cmp ~nodes:2 ~chips_per_node:2 ~cores_per_chip:2

let sample_schedule seed =
  let rng = Rng.create seed in
  let lam = smp () in
  let inst = Generators.hierarchical rng ~lam ~n:10 ~base:(2, 6) ~overhead:0.2 () in
  match Hs_core.Approx.Exact.solve inst with
  | Ok o -> (o.instance, o.assignment, o.schedule)
  | Error e -> Alcotest.failf "pipeline failed: %s" e

let test_zero_latency_identity () =
  let _, _, sched = sample_schedule 1 in
  let r = Simulator.run sched ~latency:(fun _ _ -> 0) in
  Alcotest.(check int) "same makespan" r.model_makespan r.realised_makespan;
  Alcotest.(check int) "no stall" 0 r.total_stall

let test_latency_monotone () =
  let inst = Families.example_ii1 () in
  let lam = Instance.laminar inst in
  let full = Option.get (Hs_laminar.Laminar.full_set lam) in
  let s i = Option.get (Hs_laminar.Laminar.singleton lam i) in
  let a = [| s 0; s 1; full |] in
  match Hs_core.Semi_partitioned.schedule inst a ~tmax:2 with
  | Error e -> Alcotest.failf "scheduler failed: %s" e
  | Ok sched ->
      let at l = (Simulator.run sched ~latency:(fun x y -> if x = y then 0 else l)).realised_makespan in
      Alcotest.(check int) "latency 0" 2 (at 0);
      (* job 2 migrates once; each unit of latency delays it *)
      Alcotest.(check int) "latency 1" 3 (at 1);
      Alcotest.(check int) "latency 4" 6 (at 4);
      Alcotest.(check bool) "monotone" true (at 1 <= at 2 && at 2 <= at 5)

let test_per_level_accounting () =
  let lam = smp () in
  (* Job 0 visits cores 0 -> 1 (intra-chip) -> 2 (inter-chip) -> 4
     (inter-node); counts must land on heights 1, 2, 3. *)
  let seg machine start stop = { Schedule.job = 0; machine; start; stop } in
  let sched =
    { Schedule.horizon = 8; segments = [ seg 0 0 1; seg 1 1 2; seg 2 2 3; seg 4 3 4 ] }
  in
  let latency = Simulator.latency_of_levels lam [| 0; 1; 2; 4 |] in
  let r = Simulator.run ~lam sched ~latency in
  Alcotest.(check (list (pair int int))) "per-level counts" [ (1, 1); (2, 1); (3, 1) ]
    r.migrations_by_level;
  Alcotest.(check int) "stall = 1+2+4" 7 r.total_stall

let test_latency_table_clamps () =
  let lam = smp () in
  let latency = Simulator.latency_of_levels lam [| 0; 5 |] in
  Alcotest.(check int) "same machine free" 0 (latency 3 3);
  Alcotest.(check int) "intra-chip" 5 (latency 0 1);
  Alcotest.(check int) "clamped beyond table" 5 (latency 0 7);
  (* edge tables: a singleton clamps everything to its one entry, an
     empty table means free migration — but never a crash *)
  let flat = Simulator.latency_of_levels lam [| 3 |] in
  Alcotest.(check int) "singleton table, intra-chip" 3 (flat 0 1);
  Alcotest.(check int) "singleton table, inter-node" 3 (flat 0 7);
  Alcotest.(check int) "singleton table, same machine" 0 (flat 5 5);
  let free = Simulator.latency_of_levels lam [||] in
  Alcotest.(check int) "empty table, inter-node" 0 (free 0 7);
  Alcotest.(check int) "empty table, same machine" 0 (free 2 2)

let prop_zero_latency_identity =
  QCheck.Test.make ~name:"zero-latency replay is the identity" ~count:30 Test_util.seed_arb
    (fun seed ->
      let _, _, sched = sample_schedule seed in
      let r = Simulator.run ~lam:(smp ()) sched ~latency:(fun _ _ -> 0) in
      r.realised_makespan = r.model_makespan && r.total_stall = 0)

let prop_stall_nonnegative =
  QCheck.Test.make ~name:"stall accounting is non-negative" ~count:30 Test_util.seed_arb
    (fun seed ->
      let _, _, sched = sample_schedule seed in
      let lam = smp () in
      (* seed-derived latency table, including all-zero and flat shapes *)
      let rng = Rng.create (seed * 31 + 5) in
      let table = Array.init (1 + Rng.int rng 4) (fun _ -> Rng.int rng 7) in
      let r = Simulator.run ~lam sched ~latency:(Simulator.latency_of_levels lam table) in
      r.total_stall >= 0
      && r.realised_makespan >= r.model_makespan
      && List.for_all (fun (h, c) -> h >= 0 && c > 0) r.migrations_by_level)

let prop_realised_bounded_by_total_stall =
  QCheck.Test.make ~name:"realised <= model + total stall" ~count:30 Test_util.seed_arb
    (fun seed ->
      let _, _, sched = sample_schedule seed in
      let lam = smp () in
      let latency = Simulator.latency_of_levels lam [| 0; 1; 3; 9 |] in
      let r = Simulator.run ~lam sched ~latency in
      r.realised_makespan >= r.model_makespan
      && r.realised_makespan <= r.model_makespan + r.total_stall)

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  let qt t = QCheck_alcotest.to_alcotest t in
  ( "simulator",
    [
      u "zero latency identity" test_zero_latency_identity;
      u "latency monotone" test_latency_monotone;
      u "per-level accounting" test_per_level_accounting;
      u "latency table clamps" test_latency_table_clamps;
      qt prop_zero_latency_identity;
      qt prop_stall_nonnegative;
      qt prop_realised_bounded_by_total_stall;
    ] )
