(* Tests for the online scheduling subsystem (DESIGN.md §15): trace
   validation and IO, the migration-budgeted replay, per-step
   certification, JSON round trips, the daemon session table and the
   trace shrinker. *)

open Hs_online
module Q = Hs_numeric.Q
module T = Hs_laminar.Topology

let gen_trace ?(seed = 11) ?(events = 40) ?(departures = 0.4) ?(drains = 0)
    ?(max_live = 6) () =
  Hs_workloads.Generators.trace ~seed ~lam:(T.semi_partitioned 6) ~events
    ~base:(1, 9) ~heterogeneity:1.4 ~overhead:0.2 ~departures ~drains ~max_live
    ()

let run_exn ?beta ?(check = false) ?(jobs = 1) tr =
  match Replay.run ?beta ~check ~jobs tr with
  | Ok o -> o
  | Error e -> Alcotest.failf "replay failed: %s" e

(* ---------------- trace construction ---------------------------------- *)

let test_trace_static_validation () =
  let lam = T.semi_partitioned 2 in
  let nsets = Hs_laminar.Laminar.size lam in
  let row v = Array.make nsets (Hs_model.Ptime.fin v) in
  let ok = Trace.make lam [ (0, Trace.Arrive { ptimes = row 3 }); (1, Trace.Depart { job = 0 }) ] in
  Alcotest.(check bool) "valid trace accepted" true (Result.is_ok ok);
  let bad l = Alcotest.(check bool) "rejected" true (Result.is_error (Trace.make lam l)) in
  bad [ (0, Trace.Arrive { ptimes = row 3 }); (0, Trace.Depart { job = 0 }) ];
  (* duplicate id *)
  bad [ (0, Trace.Depart { job = 7 }) ];
  (* unknown job *)
  bad [ (0, Trace.Drain { machine = 0 }); (1, Trace.Drain { machine = 1 }) ];
  (* last machine drained *)
  bad [ (0, Trace.Arrive { ptimes = Array.make nsets Hs_model.Ptime.Inf }) ]
(* no finite entry *)

let test_trace_io_roundtrip () =
  let tr = gen_trace ~drains:1 () in
  let text = Trace_io.to_string tr in
  match Trace_io.of_string text with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok tr' ->
      Alcotest.(check string) "round trip" text (Trace_io.to_string tr');
      Alcotest.(check string) "digest stable" (Trace_io.digest tr) (Trace_io.digest tr')

let test_trace_io_rejects_duplicates () =
  let tr = gen_trace ~events:4 ~departures:0.0 () in
  let text = Trace_io.to_string tr in
  (* duplicate the first event line verbatim *)
  let lines = String.split_on_char '\n' text in
  let dup =
    List.concat_map
      (fun l ->
        if String.length l > 6 && String.sub l 0 6 = "events" then
          (* bump the count so arity still matches *)
          [ Printf.sprintf "events %d" (Trace.length tr + 1) ]
        else if
          String.length l > 2 && (String.sub l 0 2 = "0 " || String.sub l 0 2 = "0\t")
        then [ l; l ]
        else [ l ])
      lines
  in
  match Trace_io.of_string (String.concat "\n" dup) with
  | Ok _ -> Alcotest.fail "duplicate event id accepted"
  | Error e ->
      Alcotest.(check bool) "mentions the id" true
        (String.length e > 0)

(* ---------------- replay: budget, determinism, certification ----------- *)

let test_budget_accounting_exact () =
  let tr = gen_trace ~seed:23 ~events:60 ~drains:1 () in
  let beta = Q.of_ints 1 2 in
  let o = run_exn ~beta tr in
  List.iter
    (fun (s : Replay.step) ->
      let bound = Q.mul beta (Q.of_int s.arrived_total) in
      Alcotest.(check bool)
        (Printf.sprintf "event %d: migrated %d within beta*arrived %d" s.event_id
           s.migrated_total s.arrived_total)
        true
        (Q.leq (Q.of_int s.migrated_total) bound))
    o.steps;
  (* beta = 0 admits nothing voluntary, ever *)
  let o0 = run_exn ~beta:(Q.of_ints 0 1) tr in
  Alcotest.(check int) "beta=0 migrates nothing" 0 o0.summary.migrated_volume;
  List.iter
    (fun (s : Replay.step) -> Alcotest.(check bool) "never adopted" false s.adopted)
    o0.steps

let test_jobs_determinism () =
  let tr = gen_trace ~seed:31 ~events:50 ~drains:2 () in
  let render o =
    let buf = Buffer.create 4096 in
    Replay.render_table buf o.Replay.steps;
    Replay.render_summary buf o.Replay.summary;
    Buffer.contents buf ^ Hs_obs.Json.to_string (Replay.outcome_to_json o)
  in
  let ref_out = render (run_exn ~check:true ~jobs:1 tr) in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d identical" jobs)
        ref_out
        (render (run_exn ~check:true ~jobs tr)))
    [ 2; 4 ]

let test_every_step_certified () =
  List.iter
    (fun (seed, drains) ->
      let tr = gen_trace ~seed ~events:50 ~drains () in
      let o = run_exn ~beta:(Q.of_ints 1 3) ~check:true tr in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: all steps certified" seed)
        o.summary.events o.summary.certified;
      Alcotest.(check int) "no failures" 0 o.summary.check_failures;
      List.iter
        (fun (s : Replay.step) ->
          match s.verdict with
          | Some v when Hs_check.Verdict.ok v -> ()
          | Some v ->
              Alcotest.failf "event %d: %s" s.event_id
                (Format.asprintf "%a" Hs_check.Verdict.pp v)
          | None -> Alcotest.failf "event %d: no verdict" s.event_id)
        o.steps)
    [ (41, 0); (42, 1); (43, 2) ]

let test_competitive_ratio_bounds () =
  List.iter
    (fun seed ->
      let tr = gen_trace ~seed ~events:40 () in
      let o = run_exn tr in
      (* unlimited budget: every step within the proven factor-2 envelope *)
      List.iter
        (fun (s : Replay.step) ->
          match s.ratio with
          | None -> ()
          | Some r ->
              Alcotest.(check bool)
                (Printf.sprintf "event %d: 1 <= ratio <= 2" s.event_id)
                true
                (Q.geq r Q.one && Q.leq r (Q.of_int 2)))
        o.steps;
      (* any budget: ratio never drops below 1 (T* is a lower bound) *)
      let o0 = run_exn ~beta:(Q.of_ints 0 1) tr in
      List.iter
        (fun (s : Replay.step) ->
          match s.ratio with
          | None -> ()
          | Some r -> Alcotest.(check bool) "ratio >= 1" true (Q.geq r Q.one))
        o0.steps;
      (* the clairvoyant comparator never beats itself *)
      let vmax, _ = Replay.vs_baseline o ~baseline:o in
      match vmax with
      | None -> ()
      | Some r -> Alcotest.(check bool) "self ratio = 1" true (Q.equal r Q.one))
    [ 51; 52; 53 ]

let test_drain_exempt_from_budget () =
  (* a drain must re-seat stranded jobs even at beta = 0 *)
  let tr = gen_trace ~seed:61 ~events:50 ~departures:0.2 ~drains:2 () in
  let o = run_exn ~beta:(Q.of_ints 0 1) ~check:true tr in
  Alcotest.(check int) "voluntary stays zero" 0 o.summary.migrated_volume;
  Alcotest.(check int) "all certified" o.summary.events o.summary.certified

(* ---------------- sessions: dynamic validation ------------------------- *)

let test_session_rejects_and_survives () =
  let lam = T.semi_partitioned 3 in
  let nsets = Hs_laminar.Laminar.size lam in
  let row v = Array.make nsets (Hs_model.Ptime.fin v) in
  match Replay.Session.create ~check:true lam with
  | Error e -> Alcotest.failf "session: %s" e
  | Ok s ->
      let ok ev = Alcotest.(check bool) "accepted" true (Result.is_ok (Replay.Session.step s ev)) in
      let bad ev = Alcotest.(check bool) "rejected" true (Result.is_error (Replay.Session.step s ev)) in
      ok (0, Trace.Arrive { ptimes = row 4 });
      bad (0, Trace.Arrive { ptimes = row 2 });
      (* duplicate id *)
      bad (1, Trace.Depart { job = 99 });
      (* unknown job *)
      bad (1, Trace.Drain { machine = 17 });
      (* no such machine *)
      ok (1, Trace.Depart { job = 0 });
      (* the rejections left the session consistent *)
      let sum = Replay.Session.summary s in
      Alcotest.(check int) "two applied events" 2 sum.events;
      Alcotest.(check int) "both certified" 2 sum.certified

let test_sessions_table () =
  let lam = T.semi_partitioned 2 in
  let mk () =
    match Replay.Session.create lam with
    | Ok s -> s
    | Error e -> Alcotest.failf "session: %s" e
  in
  let t = Hs_service.Sessions.create ~capacity:2 in
  let sid x =
    match Hs_service.Sessions.open_ t ~digest:"d" x with
    | Some id -> id
    | None -> Alcotest.fail "table full too early"
  in
  let a = sid (mk ()) and b = sid (mk ()) in
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Alcotest.(check bool) "full table refuses" true
    (Hs_service.Sessions.open_ t ~digest:"d" (mk ()) = None);
  Alcotest.(check bool) "close returns entry" true
    (Hs_service.Sessions.close t a <> None);
  Alcotest.(check bool) "double close is None" true
    (Hs_service.Sessions.close t a = None);
  let c = sid (mk ()) in
  Alcotest.(check bool) "ids never reused" true (c > b);
  Alcotest.(check int) "opened counts all" 3 (Hs_service.Sessions.opened t)

(* ---------------- wire codecs ------------------------------------------ *)

let test_protocol_online_roundtrip () =
  let reqs =
    [
      Hs_service.Protocol.Online
        (Hs_service.Protocol.Online_open
           { trace_text = "hsched-trace 1\n"; beta = Some "1/2"; check = true });
      Hs_service.Protocol.Online
        (Hs_service.Protocol.Online_open
           { trace_text = "x"; beta = None; check = false });
      Hs_service.Protocol.Online
        (Hs_service.Protocol.Online_event { session = 3; event_text = "7 arrive 1 2" });
      Hs_service.Protocol.Online (Hs_service.Protocol.Online_close { session = 0 });
    ]
  in
  List.iteri
    (fun i req ->
      let j = Hs_service.Protocol.request_to_json ~id:i req in
      match Hs_service.Protocol.request_of_json j with
      | Error (_, e) -> Alcotest.failf "request %d: %s" i e
      | Ok (id, req') ->
          Alcotest.(check int) "id" i id;
          Alcotest.(check bool) "request round trips" true (req = req'))
    reqs

let test_step_json_render_faithful () =
  let tr = gen_trace ~seed:71 ~events:30 ~drains:1 () in
  let o = run_exn ~beta:(Q.of_ints 1 2) ~check:true tr in
  let steps' =
    List.map
      (fun s ->
        match Replay.step_of_json (Replay.step_to_json s) with
        | Ok s' -> s'
        | Error e -> Alcotest.failf "step decode: %s" e)
      o.steps
  in
  let render steps =
    let buf = Buffer.create 2048 in
    Replay.render_table buf steps;
    Buffer.contents buf
  in
  Alcotest.(check string) "decoded steps render identically" (render o.steps)
    (render steps');
  match Replay.summary_of_json (Replay.summary_to_json o.summary) with
  | Error e -> Alcotest.failf "summary decode: %s" e
  | Ok sum' ->
      let render_sum sum =
        let buf = Buffer.create 512 in
        Replay.render_summary buf ~beta:(Q.of_ints 1 2) sum;
        Buffer.contents buf
      in
      Alcotest.(check string) "decoded summary renders identically"
        (render_sum o.summary) (render_sum sum')

(* ---------------- generator + shrinker --------------------------------- *)

let test_generator_respects_caps () =
  let tr = gen_trace ~seed:81 ~events:80 ~max_live:4 ~drains:2 () in
  Alcotest.(check int) "drains as requested" 2 (Trace.drains tr);
  (* replay the liveness bookkeeping: the cap holds at every prefix *)
  let live = ref 0 and peak = ref 0 in
  List.iter
    (fun (_, ev) ->
      (match ev with
      | Trace.Arrive _ -> incr live
      | Trace.Depart _ -> decr live
      | Trace.Drain _ -> ());
      peak := Stdlib.max !peak !live)
    (Trace.events tr);
  Alcotest.(check bool) "live cap holds" true (!peak <= 4)

let test_shrinker_minimizes () =
  let tr = gen_trace ~seed:91 ~events:40 ~drains:1 () in
  (* predicate: the trace still contains a drain event *)
  let has_drain t =
    List.exists (fun (_, e) -> match e with Trace.Drain _ -> true | _ -> false)
      (Trace.events t)
  in
  let small = Hs_workloads.Shrink.minimize_trace ~still_failing:has_drain tr in
  Alcotest.(check bool) "still fails" true (has_drain small);
  let e0, v0 = Hs_workloads.Shrink.trace_measure tr in
  let e1, v1 = Hs_workloads.Shrink.trace_measure small in
  Alcotest.(check bool) "did not grow" true (e1 <= e0 && v1 <= v0);
  (* a drain alone needs no arrivals at all *)
  Alcotest.(check int) "one event suffices" 1 (Trace.length small);
  (* every candidate of any trace is still statically valid *)
  List.iter
    (fun c ->
      Alcotest.(check bool) "candidate valid" true
        (Result.is_ok (Trace.make (Trace.laminar c) (Trace.events c))))
    (Hs_workloads.Shrink.trace_candidates tr)

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  ( "online",
    [
      u "trace static validation" test_trace_static_validation;
      u "trace io round trip" test_trace_io_roundtrip;
      u "trace io rejects duplicate ids" test_trace_io_rejects_duplicates;
      u "budget accounting exact" test_budget_accounting_exact;
      u "byte-identical at any jobs" test_jobs_determinism;
      u "every step certified" test_every_step_certified;
      u "competitive ratio bounds" test_competitive_ratio_bounds;
      u "drains exempt from budget" test_drain_exempt_from_budget;
      u "session rejects bad events, survives" test_session_rejects_and_survives;
      u "sessions table bounds and ids" test_sessions_table;
      u "protocol online codec round trip" test_protocol_online_roundtrip;
      u "step/summary json render-faithful" test_step_json_render_faithful;
      u "generator respects caps" test_generator_respects_caps;
      u "shrinker minimizes traces" test_shrinker_minimizes;
    ] )
