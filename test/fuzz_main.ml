(* Standalone fuzz driver for the `@fuzz` alias: a larger-iteration run
   of the mutator harness than the deterministic slice in the default
   test suite.  Usage: fuzz_main [ITERS] [JOBS] (defaults 5000 and 1;
   JOBS = 0 means all cores).

   The sweep is decomposed into a {e fixed} number of shards, each with
   its own seed derived from the shard index — the decomposition never
   depends on JOBS, so the aggregate report (and the exit status) is
   byte-identical at any parallelism.  Shards run on an {!Hs_exec} pool
   and their reports are folded in shard order.

   A third phase runs the certified-solve oracle ({!Hs_workloads.Oracle})
   on a tenth of the iteration budget: every generated instance is solved
   by the exact Theorem V.2 pipeline and its outcome re-validated by the
   independent {!Hs_check} certifier; any violation is shrunk to a
   locally minimal witness before being reported.

   Exit status 0 when the parser never raised, the validators caught
   every structural mutation and every solve was certified; 1 otherwise,
   with the offending inputs (or shrunk counterexamples) printed. *)

open Hs_model
open Hs_workloads

let nshards = 10

let () =
  let pos_int k = match int_of_string_opt k with Some v when v > 0 -> Some v | _ -> None in
  let usage () =
    prerr_endline "usage: fuzz_main [ITERS] [JOBS]";
    exit 2
  in
  let iters =
    if Array.length Sys.argv > 1 then
      match pos_int Sys.argv.(1) with Some k -> k | None -> usage ()
    else 5000
  in
  let jobs =
    if Array.length Sys.argv > 2 then
      match int_of_string_opt Sys.argv.(2) with
      | Some k when k >= 0 -> Hs_exec.resolve_jobs k
      | _ -> usage ()
    else 1
  in
  (* Base corpus: one serialised instance per topology family and size. *)
  let bases =
    List.init 16 (fun i ->
        let seed = 1000 + (i * 37) in
        let m = 1 + (i mod 8) in
        let n = 1 + (i mod 12) in
        let gen = Rng.create seed in
        let lam =
          match i mod 4 with
          | 0 -> Hs_laminar.Topology.semi_partitioned m
          | 1 -> Hs_laminar.Topology.singletons m
          | 2 ->
              let clusters =
                let rec div d = if m mod d = 0 then d else div (d - 1) in
                div (Stdlib.max 1 (Stdlib.min 3 m))
              in
              Hs_laminar.Topology.clustered ~m ~clusters
          | _ -> Generators.random_laminar gen ~m ()
        in
        Generators.hierarchical gen ~lam ~n ~base:(1, 9) ~heterogeneity:1.6 ~overhead:0.4 ())
  in
  let base_texts = List.map Instance_io.to_string bases in
  (* Fixed shard decomposition: shard s owns its share of the iteration
     budget and a seed derived only from s. *)
  let shard_iters s = (iters / nshards) + if s < iters mod nshards then 1 else 0 in
  let reports =
    Hs_exec.parmap ~jobs
      (fun s ->
        let it = shard_iters s in
        let rng = Rng.create (0xf022ed + (7919 * s)) in
        let parser_report = Mutators.fuzz_of_string rng ~iters:it ~base:base_texts in
        let validator_report = Mutators.fuzz_validators rng ~iters:(it / 2) bases in
        (parser_report, validator_report))
      (List.init nshards (fun s -> s))
  in
  let fold get =
    List.fold_left
      (fun acc (p, v) ->
        let r : Mutators.fuzz_report = get (p, v) in
        Mutators.
          {
            total = acc.total + r.total;
            rejected = acc.rejected + r.rejected;
            accepted = acc.accepted + r.accepted;
            escaped = acc.escaped @ r.escaped;
          })
      Mutators.{ total = 0; rejected = 0; accepted = 0; escaped = [] }
      reports
  in
  let parser_report = fold fst in
  let validator_report = fold snd in
  Printf.printf "parser fuzz:    %d inputs, %d rejected, %d parsed, %d escaped exceptions\n"
    parser_report.Mutators.total parser_report.Mutators.rejected parser_report.Mutators.accepted
    (List.length parser_report.Mutators.escaped);
  Printf.printf "validator fuzz: %d mutations, %d caught, %d missed, %d escaped exceptions\n"
    validator_report.Mutators.total validator_report.Mutators.rejected
    validator_report.Mutators.accepted
    (List.length validator_report.Mutators.escaped);
  let fail = ref false in
  List.iter
    (fun (input, exn) ->
      fail := true;
      Printf.printf "PARSER RAISED %s on: %s\n" exn (String.escaped input))
    parser_report.Mutators.escaped;
  List.iter
    (fun (label, exn) ->
      fail := true;
      Printf.printf "VALIDATOR RAISED %s on %s mutation\n" exn label)
    validator_report.Mutators.escaped;
  if validator_report.Mutators.accepted > 0 then begin
    fail := true;
    Printf.printf "VALIDATOR MISSED %d structural violations\n" validator_report.Mutators.accepted
  end;
  let oracle =
    Oracle.run ~iters:(Stdlib.max 1 (iters / 10)) ~jobs ~seed:0x5eed5 ()
  in
  Printf.printf "oracle fuzz:    %d solves, %d certified, %d infeasible, %d violations\n"
    oracle.Oracle.iterations oracle.Oracle.certified oracle.Oracle.infeasible
    (List.length oracle.Oracle.failures);
  List.iter
    (fun f ->
      fail := true;
      Format.printf "%a@." Oracle.pp_failure f)
    oracle.Oracle.failures;
  if !fail then exit 1;
  print_endline "fuzz: OK"
