The LP engine is process-wide and CLI-selectable (DESIGN.md section 16):
--lp-engine sparse (the default) is the revised simplex over sparse rows
with warm-started bases; --lp-engine dense is the two-phase tableau kept
as the differential oracle.  With exact arithmetic both walk identical
pivot trajectories, so the solve verb must be byte-identical across
engines -- stdout AND the metrics registry, pivot for pivot:

  $ ../../bin/hsched.exe generate --seed 7 -n 8 -m 4 -o inst.txt
  wrote inst.txt
  $ ../../bin/hsched.exe solve -f inst.txt --lp-engine dense --stats-json dense.json > dense.out
  $ ../../bin/hsched.exe solve -f inst.txt --lp-engine sparse --stats-json sparse.json > sparse.out
  $ cmp dense.out sparse.out && echo "solve output identical"
  solve output identical
  $ cmp dense.json sparse.json && echo "solve metrics identical"
  solve metrics identical
  $ cat sparse.out
  LP lower bound T* = 16
  achieved makespan = 24  (guarantee: <= 32)
  fractional jobs rounded: 3 (matched 3)
    job 0 -> {3} (p=12)
    job 1 -> {1} (p=7)
    job 2 -> {3} (p=12)
    job 3 -> {2} (p=12)
    job 4 -> {1} (p=6)
    job 5 -> {0} (p=3)
    job 6 -> {0} (p=6)
    job 7 -> {0} (p=6)
  schedule: VALID, horizon 24

The sweep verb batch-solves at any --jobs; engine choice must not leak
into outcomes or metrics either:

  $ ../../bin/hsched.exe generate --seed 8 -n 6 -m 3 -o b.txt
  wrote b.txt
  $ ../../bin/hsched.exe sweep inst.txt b.txt --lp-engine dense --stats-json sd.json > sd.out
  $ ../../bin/hsched.exe sweep inst.txt b.txt --jobs 4 --lp-engine sparse --stats-json ss.json > ss.out
  $ cmp sd.out ss.out && cmp sd.json ss.json && echo "sweep identical across engines and --jobs"
  sweep identical across engines and --jobs

The online replay warm-starts each per-event re-solve from the previous
optimal basis under the sparse engine.  The event table is still
byte-identical to the dense oracle's (warm starts change pivot counts,
never schedules):

  $ ../../bin/hsched.exe online --seed 11 --events 12 --lp-engine dense --stats-json od.json > od.out
  $ ../../bin/hsched.exe online --seed 11 --events 12 --lp-engine sparse --stats-json os.json > os.out
  $ cmp od.out os.out && echo "online table identical"
  online table identical

The dense oracle never consults the basis store; the sparse replay does,
and pays strictly fewer pivots for it:

  $ tr ',' '\n' < od.json | grep -o '"lp.warm_start.[a-z]*":0' | sort
  "lp.warm_start.hits":0
  "lp.warm_start.misses":0
  "lp.warm_start.repairs":0
  $ hits=$(tr ',' '\n' < os.json | sed -n 's/.*"lp.warm_start.hits":\([0-9]*\).*/\1/p')
  $ test "$hits" -gt 0 && echo "sparse replay recorded warm hits"
  sparse replay recorded warm hits
  $ pd=$(tr ',' '\n' < od.json | sed -n 's/.*"simplex.pivots":\([0-9]*\).*/\1/p')
  $ ps=$(tr ',' '\n' < os.json | sed -n 's/.*"simplex.pivots":\([0-9]*\).*/\1/p')
  $ test "$ps" -lt "$pd" && echo "warm replay pivots strictly below cold"
  warm replay pivots strictly below cold

--lp-presolve guesses the basis with a float pre-solve and certifies it
exactly.  The certified bounds and validity are unaffected (the rounded
assignment may legitimately pick a different optimal vertex):

  $ ../../bin/hsched.exe solve -f inst.txt --lp-presolve --stats-json pre.json > pre.out
  $ grep -E "T\* =|makespan|schedule:" pre.out
  LP lower bound T* = 16
  achieved makespan = 24  (guarantee: <= 32)
  schedule: VALID, horizon 24
  $ g=$(tr ',' '\n' < pre.json | sed -n 's/.*"lp.presolve.guesses":\([0-9]*\).*/\1/p')
  $ test "$g" -gt 0 && echo "presolve guessed bases"
  presolve guessed bases

Both JSON files are well-formed metrics documents:

  $ ../json_check.exe dense.json schema counters gauges histograms
  dense.json: valid JSON; keys ok
  $ ../json_check.exe os.json schema counters gauges histograms
  os.json: valid JSON; keys ok
