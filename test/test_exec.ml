(* Properties of the Hs_exec domain pool (DESIGN.md section 10): parmap
   agrees with List.map at every job count — on pure functions, on real
   seeded solver sweeps, when items raise mid-sweep (the same exception
   surfaces), and when items exhaust a resource budget (the same typed
   Hs_error comes back) — and worker metrics merge into a snapshot
   byte-identical to the sequential run's. *)

module T = Hs_laminar.Topology

let job_counts = [ 1; 2; 4; 7 ]

let solve_makespan seed =
  let rng = Hs_workloads.Rng.create seed in
  let inst =
    Hs_workloads.Generators.hierarchical rng ~lam:(T.semi_partitioned 3) ~n:5
      ~base:(1, 9) ~heterogeneity:1.6 ~overhead:0.25 ()
  in
  match Hs_core.Approx.Exact.solve inst with
  | Ok o -> (o.t_lp, o.makespan)
  | Error e -> Alcotest.failf "solve failed on seed %d: %s" seed e

let test_parmap_pure () =
  List.iter
    (fun n ->
      let items = List.init n (fun i -> i) in
      let f i = (i * 31) mod 17 in
      let expect = List.map f items in
      List.iter
        (fun jobs ->
          List.iter
            (fun chunk ->
              Alcotest.(check (list int))
                (Printf.sprintf "n=%d jobs=%d chunk=%d" n jobs chunk)
                expect
                (Hs_exec.parmap ~chunk ~jobs f items))
            [ 1; 3; 16 ])
        job_counts)
    [ 0; 1; 5; 23 ]

let test_parmap_solver_sweep () =
  let seeds = List.init 12 (fun i -> 4000 + (17 * i)) in
  let expect = List.map solve_makespan seeds in
  List.iter
    (fun jobs ->
      let got = Hs_exec.parmap ~jobs solve_makespan seeds in
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "solver sweep at jobs=%d" jobs)
        expect got)
    job_counts

exception Boom of int

let test_parmap_raises_lowest_index () =
  (* f raises on two items; the sequential map dies on the lower index,
     and so must every parallel run — regardless of which worker hit
     which failure first. *)
  let items = List.init 20 (fun i -> i) in
  let f i = if i = 13 || i = 7 then raise (Boom i) else i * i in
  let observed jobs =
    match Hs_exec.parmap ~jobs f items with
    | _ -> Alcotest.failf "jobs=%d: expected an exception" jobs
    | exception e -> e
  in
  List.iter
    (fun jobs ->
      match observed jobs with
      | Boom i -> Alcotest.(check int) (Printf.sprintf "jobs=%d raises index 7" jobs) 7 i
      | e -> Alcotest.failf "jobs=%d: unexpected exception %s" jobs (Printexc.to_string e))
    job_counts

let test_parmap_budget_exhaustion () =
  (* Items that run out of budget raise the same typed error at any job
     count: solve_robust with a starvation budget and ~on_exhausted:`Fail
     returns Budget_exhausted, which the item turns into a raise. *)
  let f seed =
    let rng = Hs_workloads.Rng.create seed in
    let inst =
      Hs_workloads.Generators.hierarchical rng ~lam:(T.semi_partitioned 3) ~n:5
        ~base:(1, 9) ~heterogeneity:1.6 ~overhead:0.25 ()
    in
    let budget = Hs_core.Budget.of_units 1 in
    match Hs_core.Approx.solve_robust ~budget ~on_exhausted:`Fail inst with
    | Ok _ -> Alcotest.fail "a 1-unit budget should not suffice"
    | Error e -> Hs_core.Hs_error.raise_ e
  in
  let seeds = List.init 6 (fun i -> 300 + i) in
  let classify jobs =
    match Hs_exec.parmap ~jobs f seeds with
    | _ -> Alcotest.failf "jobs=%d: expected Hs_error.Error" jobs
    | exception Hs_core.Hs_error.Error e -> Hs_core.Hs_error.to_string e
    | exception e -> Alcotest.failf "jobs=%d: unexpected %s" jobs (Printexc.to_string e)
  in
  let expect = classify 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "same Hs_error at jobs=%d" jobs)
        expect (classify jobs))
    job_counts

let test_try_parmap_provenance () =
  let items = List.init 9 (fun i -> i) in
  let f i = if i mod 4 = 2 then failwith (Printf.sprintf "item %d" i) else 10 * i in
  List.iter
    (fun jobs ->
      let out = Hs_exec.try_parmap ~jobs f items in
      Alcotest.(check int) "one outcome per item" (List.length items) (List.length out);
      List.iteri
        (fun i r ->
          match r with
          | Ok v -> Alcotest.(check int) "ok value" (10 * i) v
          | Error (e : Hs_exec.worker_error) ->
              Alcotest.(check bool) "failures exactly at i mod 4 = 2" true (i mod 4 = 2);
              Alcotest.(check int) "provenance index" i e.index;
              Alcotest.(check bool) "worker slot in range" true (e.worker >= 0 && e.worker <= jobs);
              (match e.exn with
              | Failure m -> Alcotest.(check string) "message" (Printf.sprintf "item %d" i) m
              | _ -> Alcotest.fail "wrong exception"))
        out)
    job_counts

let test_metrics_merge_identical () =
  (* The merged registry after a parallel sweep is byte-identical to the
     sequential one: counters count algorithmic events of deterministic
     seeded solves, and merging sums them commutatively. *)
  let seeds = List.init 8 (fun i -> 9000 + (13 * i)) in
  let snapshot_of jobs =
    Hs_obs.Metrics.reset ();
    ignore (Hs_exec.parmap ~jobs solve_makespan seeds);
    Hs_obs.Json.to_string (Hs_obs.Metrics.to_json (Hs_obs.Metrics.snapshot ()))
  in
  let expect = snapshot_of 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "merged snapshot at jobs=%d" jobs)
        expect (snapshot_of jobs))
    job_counts

let test_resolve_jobs () =
  Alcotest.(check bool) "0 resolves to >= 1" true (Hs_exec.resolve_jobs 0 >= 1);
  Alcotest.(check int) "positive passes through" 5 (Hs_exec.resolve_jobs 5);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Hs_exec.resolve_jobs: negative job count -2") (fun () ->
      ignore (Hs_exec.resolve_jobs (-2)))

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  ( "exec",
    [
      u "parmap = List.map (pure)" test_parmap_pure;
      u "parmap = List.map (solver sweep)" test_parmap_solver_sweep;
      u "lowest-index exception surfaces" test_parmap_raises_lowest_index;
      u "budget exhaustion identical across jobs" test_parmap_budget_exhaustion;
      u "try_parmap keeps provenance" test_try_parmap_provenance;
      u "metrics merge byte-identical" test_metrics_merge_identical;
      u "resolve_jobs semantics" test_resolve_jobs;
    ] )
