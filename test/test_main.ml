(* Aggregated alcotest runner for the whole repository. *)

let () =
  Alcotest.run "hsched"
    [
      Test_bigint.suite;
      Test_q.suite;
      Test_simplex.suite;
      Test_laminar.suite;
      Test_model.suite;
      Test_io.suite;
      Test_schedulers.suite;
      Test_pipeline.suite;
      Test_exact.suite;
      Test_memory.suite;
      Test_baselines.suite;
      Test_sim.suite;
      Test_workloads.suite;
      Test_realtime.suite;
      Test_edge_cases.suite;
      Test_consistency.suite;
      Test_faults.suite;
      Test_obs.suite;
      Test_exec.suite;
      Test_service.suite;
      Test_pushdown.suite;
      Test_differential.suite;
      Test_check.suite;
      Test_online.suite;
      Test_revised.suite;
    ]
