Independent certificate checker, end to end (DESIGN.md §12).  All seeds
fixed; outputs promoted from a verified run.

`hsched check FILE` re-runs the certified pipeline and re-validates every
paper invariant with the independent checkers — exact rationals for the
LP side, an event sweep for the schedule:

  $ ../../bin/hsched.exe generate --topology clustered --m 4 --jobs 3 --seed 5 -o inst.txt
  wrote inst.txt
  $ ../../bin/hsched.exe check inst.txt
  certificate: outcome — PASS
    [ok] laminar.members              7 sets non-empty within 4 machines
    [ok] laminar.nested-or-disjoint   every pair of sets is nested or disjoint
    [ok] instance.monotone            P_j(α) ≤ P_j(β) for all α ⊆ β
    [ok] ip2.well-formed              3 jobs on admissible in-range masks
    [ok] ip2.job-fits                 every assigned time ≤ horizon 8
    [ok] ip2.subtree-volume           subtree volumes fit |α|·8 on all 7 sets
    [ok] sched.segments               3 segments well-formed within [0,8)
    [ok] sched.affinity               segments stay on the assigned masks
    [ok] sched.machine-exclusive      no overlap (event sweep)
    [ok] sched.job-serial             no overlap (event sweep)
    [ok] sched.work-conserved         every job receives exactly its processing time
    [ok] outcome.makespan             schedule completes within reported makespan 8
    [ok] lp.feasible-at-t             (IP-3) relaxation feasible at T* = 5
    [ok] lp.vertex.shape              solution arrays match nvars = 15
    [ok] lp.vertex.nonbasic-at-bound  every nonbasic variable sits at its bound 0
    [ok] lp.vertex.support            basic support 5 ≤ 10 rows
    [ok] lp.vertex.feasible           x ≥ 0 and every constraint holds
    [ok] lp.vertex.objective          reported objective equals c·x
    [ok] lp.minimal                   T* − 1 = 4 certified infeasible (Farkas)
    [ok] thm-v2.bound                 makespan 8 ≤ 2·T* = 10

A hand-supplied assignment is certified against (IP-2) at the given
horizon; a violation pinpoints the invariant and the witness, exit 1:

  $ ../../bin/hsched.exe check inst.txt --assignment 2,2,2 --tmax 3
  certificate: assignment — FAIL
    [ok] laminar.members              7 sets non-empty within 4 machines
    [ok] laminar.nested-or-disjoint   every pair of sets is nested or disjoint
    [ok] instance.monotone            P_j(α) ≤ P_j(β) for all α ⊆ β
    [ok] ip2.well-formed              3 jobs on admissible in-range masks
    [FAIL] ip2.job-fits                 job 0 on set 2 needs 8 > horizon 3
    [FAIL] ip2.subtree-volume           set 2 carries subtree volume 20 > capacity 12
  [1]

The JSON rendering carries the same verdict for machines:

  $ ../../bin/hsched.exe check inst.txt --json > cert.json
  $ ../json_check.exe cert.json subject ok checked failed invariants
  cert.json: valid JSON; keys ok

`solve --check` certifies the outcome it just printed — the default
output is byte-identical to an uncertified solve, the certificate is
strictly additive:

  $ ../../bin/hsched.exe solve --file inst.txt --check | head -3
  LP lower bound T* = 5
  achieved makespan = 8  (guarantee: <= 10)
  fractional jobs rounded: 2 (matched 2)
  $ ../../bin/hsched.exe solve --file inst.txt --check | tail -3
    [ok] lp.vertex.objective          reported objective equals c·x
    [ok] lp.minimal                   T* − 1 = 4 certified infeasible (Farkas)
    [ok] thm-v2.bound                 makespan 8 ≤ 2·T* = 10

The float LP path is uncertified by design; combining it with --check is
a usage error (exit 2):

  $ ../../bin/hsched.exe solve --file inst.txt --check --float-lp
  hsched: --check certifies the exact pipeline; drop --float-lp
  [2]

`sweep --check` folds a one-line certification into each report:

  $ ../../bin/hsched.exe generate --topology semi --m 3 --jobs 4 --seed 7 -o inst2.txt
  wrote inst2.txt
  $ ../../bin/hsched.exe sweep inst.txt inst2.txt --check
  == inst.txt ==
  LP lower bound T* = 5
  achieved makespan = 8  (guarantee: <= 10)
  certified: 20 invariants re-verified
  == inst2.txt ==
  LP lower bound T* = 12
  achieved makespan = 20  (guarantee: <= 24)
  certified: 20 invariants re-verified
