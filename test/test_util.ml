(* Shared deterministic generators for the algorithm test suites.

   Properties take a seed (shrinkable, printable) and derive the instance
   from it with the library's own SplitMix64 stream, so every failure is
   reproducible from the printed seed alone. *)

open Hs_model
open Hs_workloads

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 1_000_000)

(* A random hierarchical instance over one of the paper's family shapes. *)
let random_instance ?(max_m = 6) ?(max_n = 8) seed =
  let rng = Rng.create seed in
  let m = 1 + Rng.int rng max_m in
  let n = 1 + Rng.int rng max_n in
  let lam =
    match Rng.int rng 5 with
    | 0 -> Hs_laminar.Topology.semi_partitioned m
    | 1 -> Hs_laminar.Topology.singletons m
    | 2 ->
        let clusters =
          let rec div d = if m mod d = 0 then d else div (d - 1) in
          div (Stdlib.max 1 (Stdlib.min 3 m))
        in
        Hs_laminar.Topology.clustered ~m ~clusters
    | 3 ->
        Hs_laminar.Topology.smp_cmp ~nodes:2 ~chips_per_node:2
          ~cores_per_chip:(Stdlib.max 1 (m / 4))
    | _ -> Generators.random_laminar rng ~m ()
  in
  Generators.hierarchical rng ~lam ~n ~base:(1, 8)
    ~heterogeneity:(1.0 +. Rng.float rng)
    ~overhead:(Rng.float rng *. 0.5) ()

(* Random (instance, assignment): arbitrary but well-formed; its
   min_makespan certifies (IP-2) feasibility at that horizon. *)
let random_assigned ?max_m ?max_n seed =
  let inst = random_instance ?max_m ?max_n seed in
  let rng = Rng.create (seed lxor 0x5bd1e95) in
  let lam = Instance.laminar inst in
  let nsets = Hs_laminar.Laminar.size lam in
  let a =
    Array.init (Instance.njobs inst) (fun j ->
        let finite =
          List.filter
            (fun s -> Ptime.is_fin (Instance.ptime inst ~job:j ~set:s))
            (List.init nsets (fun s -> s))
        in
        List.nth finite (Rng.int rng (List.length finite)))
  in
  (inst, a)

(* Random semi-partitioned (instance, assignment). *)
let random_semi_assigned ?(max_m = 6) ?(max_n = 10) seed =
  let rng = Rng.create seed in
  let m = 1 + Rng.int rng max_m in
  let lam = Hs_laminar.Topology.semi_partitioned m in
  let n = 1 + Rng.int rng max_n in
  let inst =
    Generators.hierarchical rng ~lam ~n ~base:(1, 8)
      ~heterogeneity:(1.0 +. Rng.float rng)
      ~overhead:(Rng.float rng *. 0.5) ()
  in
  let nsets = Hs_laminar.Laminar.size lam in
  let a = Array.init n (fun _ -> Rng.int rng nsets) in
  (inst, a)
