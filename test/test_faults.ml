(* Fault-injection harness (robustness tentpole).

   Three attack surfaces:
   - the parser: corrupted/malformed text must yield [Error], never raise;
   - the validators: structural mutations violating laminarity or
     monotonicity must be caught;
   - the solver pipeline: a budget exhaustion injected at any stage must
     either degrade to a re-certified 2-approximate schedule ([`Fallback])
     or surface as a typed [Budget_exhausted] error ([`Fail]).

   Everything is deterministic: the fuzz streams are SplitMix64 with
   fixed seeds, so a failure here reproduces exactly. *)

open Hs_model
open Hs_core
open Hs_workloads

(* Valid serialised instances used as fuzz bases, spanning all topology
   families of {!Test_util.random_instance}. *)
let base_texts =
  List.init 12 (fun i -> Instance_io.to_string (Test_util.random_instance (100 + i)))

let base_instances = List.init 12 (fun i -> Test_util.random_instance (200 + i))

(* ---- parser fuzzing -------------------------------------------------- *)

let test_parser_never_raises () =
  let rng = Rng.create 0xfa017 in
  let r = Mutators.fuzz_of_string rng ~iters:500 ~base:base_texts in
  Alcotest.(check int) "all inputs fed" 500 r.Mutators.total;
  match r.Mutators.escaped with
  | [] -> ()
  | (input, exn) :: _ ->
      Alcotest.failf "of_string raised %s on: %s" exn (String.escaped input)

let test_malformed_corpus_rejected () =
  List.iter
    (fun text ->
      match (try Ok (Instance_io.of_string text) with exn -> Error exn) with
      | Ok (Error _) -> ()
      | Ok (Ok _) -> Alcotest.failf "corpus input accepted: %s" (String.escaped text)
      | Error exn ->
          Alcotest.failf "of_string raised %s on corpus input: %s"
            (Printexc.to_string exn) (String.escaped text))
    Mutators.malformed_corpus

(* ---- validator fuzzing ----------------------------------------------- *)

let test_validators_catch_mutations () =
  let rng = Rng.create 0xfa018 in
  let r = Mutators.fuzz_validators rng ~iters:200 base_instances in
  Alcotest.(check int) "all mutations applied" 200 r.Mutators.total;
  (match r.Mutators.escaped with
  | [] -> ()
  | (label, exn) :: _ -> Alcotest.failf "validator raised %s on %s mutation" exn label);
  Alcotest.(check int) "no mutation slipped through" 0 r.Mutators.accepted

(* ---- pipeline fault injection ---------------------------------------- *)

(* A fixed mid-size instance: large enough that branch and bound needs
   many nodes, small enough that the LP path is instant. *)
let pipeline_instance =
  let rng = Rng.create 42 in
  let lam = Hs_laminar.Topology.clustered ~m:6 ~clusters:3 in
  Generators.hierarchical rng ~lam ~n:12 ~base:(1, 8) ~heterogeneity:1.8 ~overhead:0.3 ()

let check_valid_2approx ~what (o : Approx.robust_outcome) =
  (match Schedule.validate o.Approx.r_instance o.Approx.r_assignment o.Approx.r_schedule with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: schedule invalid: %s" what e);
  if o.Approx.r_makespan > 2 * o.Approx.r_lower_bound then
    Alcotest.failf "%s: makespan %d exceeds 2x lower bound %d" what o.Approx.r_makespan
      o.Approx.r_lower_bound

(* Injecting a fault into any LP-path stage must still end in a valid
   schedule: the Dantzig attempt absorbs the injection, Bland's rule
   finishes the job. *)
let test_inject_lp_stages () =
  List.iter
    (fun stage ->
      let what = "inject " ^ Hs_error.stage_name stage in
      match Approx.solve_robust ~inject:stage pipeline_instance with
      | Error e -> Alcotest.failf "%s: no fallback succeeded: %s" what (Hs_error.to_string e)
      | Ok o ->
          check_valid_2approx ~what o;
          (match o.Approx.r_provenance with
          | Approx.Lp_approx _ -> ()
          | Approx.Exact_optimal -> Alcotest.failf "%s: unexpected exact path" what);
          Alcotest.(check bool)
            (what ^ ": degradation recorded")
            true
            (o.Approx.r_fallbacks <> []))
    [ Hs_error.Search; Hs_error.Lp; Hs_error.Rounding ]

(* With a node budget configured the exact path runs first; injecting a
   fault there must degrade to the LP 2-approximation. *)
let test_inject_exact_stages () =
  let budget = Budget.v ~bb_nodes:10_000_000 () in
  List.iter
    (fun stage ->
      let what = "inject " ^ Hs_error.stage_name stage in
      match Approx.solve_robust ~budget ~inject:stage pipeline_instance with
      | Error e -> Alcotest.failf "%s: no fallback succeeded: %s" what (Hs_error.to_string e)
      | Ok o ->
          check_valid_2approx ~what o;
          (match o.Approx.r_provenance with
          | Approx.Lp_approx { pricing = `Dantzig; _ } -> ()
          | p -> Alcotest.failf "%s: expected Dantzig fallback, got %s" what
                   (Approx.provenance_to_string p));
          Alcotest.(check bool)
            (what ^ ": degradation recorded")
            true
            (o.Approx.r_fallbacks <> []))
    [ Hs_error.Bb; Hs_error.Sched ]

(* A genuinely exhausted node budget (no injection) takes the same
   fallback; the outcome records why. *)
let test_real_node_exhaustion () =
  match Approx.solve_robust ~budget:(Budget.v ~bb_nodes:50 ()) pipeline_instance with
  | Error e -> Alcotest.failf "fallback failed: %s" (Hs_error.to_string e)
  | Ok o ->
      check_valid_2approx ~what:"node exhaustion" o;
      (match o.Approx.r_provenance with
      | Approx.Lp_approx _ -> ()
      | Approx.Exact_optimal -> Alcotest.fail "50 nodes cannot prove this instance");
      (match o.Approx.r_fallbacks with
      | [ Hs_error.Budget_exhausted { stage = Hs_error.Bb; _ } ] -> ()
      | _ -> Alcotest.fail "expected exactly one branch-and-bound exhaustion record")

(* Under [`Fail] the same exhaustion surfaces as the typed error with
   the documented exit code. *)
let test_fail_mode_surfaces_error () =
  (match
     Approx.solve_robust
       ~budget:(Budget.v ~bb_nodes:50 ())
       ~on_exhausted:`Fail pipeline_instance
   with
  | Error (Hs_error.Budget_exhausted _ as e) ->
      Alcotest.(check int) "exit code" 4 (Hs_error.exit_code e)
  | Error e -> Alcotest.failf "wrong error: %s" (Hs_error.to_string e)
  | Ok _ -> Alcotest.fail "tiny node budget must not succeed in fail mode");
  (* A pivot budget too small for any LP attempt exhausts the whole
     chain even in fallback mode: the meter is shared across attempts. *)
  match Approx.solve_robust ~budget:(Budget.v ~lp_pivots:3 ()) pipeline_instance with
  | Error (Hs_error.Budget_exhausted _ as e) ->
      Alcotest.(check int) "exit code" 4 (Hs_error.exit_code e)
  | Error e -> Alcotest.failf "wrong error: %s" (Hs_error.to_string e)
  | Ok _ -> Alcotest.fail "3 pivots must not solve this instance"

(* Sanity: with no budget and no injection the robust path agrees with
   the plain pipeline contract. *)
let test_unlimited_clean_path () =
  match Approx.solve_robust pipeline_instance with
  | Error e -> Alcotest.failf "clean run failed: %s" (Hs_error.to_string e)
  | Ok o ->
      check_valid_2approx ~what:"clean" o;
      Alcotest.(check bool) "no degradation" true (o.Approx.r_fallbacks = [])

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  ( "faults",
    [
      u "parser survives 500 corrupted inputs" test_parser_never_raises;
      u "malformed corpus rejected" test_malformed_corpus_rejected;
      u "validators catch structural mutations" test_validators_catch_mutations;
      u "inject: LP-path stages degrade safely" test_inject_lp_stages;
      u "inject: exact-path stages degrade safely" test_inject_exact_stages;
      u "real node-budget exhaustion falls back" test_real_node_exhaustion;
      u "fail mode surfaces typed budget errors" test_fail_mode_surfaces_error;
      u "unlimited budget: clean path" test_unlimited_clean_path;
    ] )
