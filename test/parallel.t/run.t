Deterministic parallelism end to end (DESIGN.md section 10).

An experiment sweep sharded over 4 worker domains prints byte-identical
tables and byte-identical merged metrics to the sequential run:

  $ ../../bin/hsched.exe experiment t3 --quick --stats-json seq.json > seq.out
  $ ../../bin/hsched.exe experiment t3 --quick --jobs 4 --stats-json par.json > par.out
  $ cmp seq.out par.out && echo "tables identical"
  tables identical
  $ cmp seq.json par.json && echo "metrics identical"
  metrics identical

--jobs 0 means all cores and must agree too:

  $ ../../bin/hsched.exe experiment t3 --quick --jobs 0 > all.out
  $ cmp seq.out all.out && echo "identical at --jobs 0"
  identical at --jobs 0

The sweep subcommand batch-solves instance files with outcomes reported
in argument order at any job count:

  $ ../../bin/hsched.exe generate --seed 1 -n 5 -m 3 -o a.txt
  wrote a.txt
  $ ../../bin/hsched.exe generate --seed 2 -n 6 -m 4 -o b.txt
  wrote b.txt
  $ ../../bin/hsched.exe generate --seed 3 -n 4 -m 3 -o c.txt
  wrote c.txt
  $ ../../bin/hsched.exe sweep a.txt b.txt c.txt > sweep1.out
  $ ../../bin/hsched.exe sweep --jobs 4 a.txt b.txt c.txt > sweep4.out
  $ cmp sweep1.out sweep4.out && cat sweep4.out
  == a.txt ==
  LP lower bound T* = 13
  achieved makespan = 18  (guarantee: <= 26)
  == b.txt ==
  LP lower bound T* = 10
  achieved makespan = 10  (guarantee: <= 20)
  == c.txt ==
  LP lower bound T* = 8
  achieved makespan = 8  (guarantee: <= 16)

A failing file reports its typed error in place, the other files still
solve, and the exit code is that of the first failure — parse errors
exit 2 regardless of worker scheduling:

  $ echo "garbage" > bad.txt
  $ ../../bin/hsched.exe sweep --jobs 4 a.txt bad.txt c.txt
  == a.txt ==
  LP lower bound T* = 13
  achieved makespan = 18  (guarantee: <= 26)
  == bad.txt ==
  ERROR: parse error: expected 'machines <count>', got 'garbage'
  == c.txt ==
  LP lower bound T* = 8
  achieved makespan = 8  (guarantee: <= 16)
  [2]
