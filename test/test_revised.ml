(* Differential suite for the sparse revised simplex (lib/lp/revised.ml)
   against the dense tableau oracle, plus warm-start soundness, the
   degenerate/budget pins, and the Hs_check vertex invariant.

   The revised engine deliberately mirrors the dense pivot rules, so
   with exact arithmetic the two must agree not just on feasibility and
   the optimal objective but on the returned vertex and on the number
   of pivots consumed from a shared budget. *)

open Hs_lp
module Q = Hs_numeric.Q
module SQ = Simplex.Make (Field.Exact)
module RQ = Revised.Make (Field.Exact)
module E = Engine
module Ilp = Hs_core.Ilp.Make (Field.Exact)
module Oracle = Hs_workloads.Oracle
module Shrink = Hs_workloads.Shrink
module Rng = Hs_workloads.Rng

let q = Q.of_int
let qq = Q.of_ints
let c ?name terms rel rhs = Lp_problem.constr ?name terms rel rhs

let counter name =
  let s = Hs_obs.Metrics.snapshot () in
  Option.value ~default:0 (List.assoc_opt name s.Hs_obs.Metrics.counters)

let result_tag = function
  | SQ.Optimal _ -> "optimal"
  | SQ.Infeasible -> "infeasible"
  | SQ.Unbounded -> "unbounded"

(* Run the dispatching entry point under both engines and require the
   full mirror: same result constructor, same exact objective, same
   vertex, and both solutions basic feasible per Hs_check.Check.lp_vertex. *)
let differential ?(maximize = false) label p =
  let d = E.with_engine E.Dense (fun () -> SQ.solve ~maximize p) in
  let s = E.with_engine E.Sparse (fun () -> SQ.solve ~maximize p) in
  Alcotest.(check string)
    (label ^ ": result kind")
    (result_tag d) (result_tag s);
  match (d, s) with
  | SQ.Optimal ds, SQ.Optimal ss ->
      Alcotest.(check string)
        (label ^ ": objective")
        (Q.to_string ds.objective) (Q.to_string ss.objective);
      Array.iteri
        (fun v dv ->
          Alcotest.(check string)
            (Printf.sprintf "%s: x.(%d)" label v)
            (Q.to_string dv) (Q.to_string ss.x.(v)))
        ds.x;
      Alcotest.(check (array bool))
        (label ^ ": basic flags")
        ds.basic ss.basic;
      List.iter
        (fun (who, (sol : SQ.solution)) ->
          List.iter
            (fun (it : Hs_check.Verdict.item) ->
              if not it.ok then
                Alcotest.failf "%s: %s solution violates %s: %s" label who
                  it.invariant it.detail)
            (Hs_check.Check.lp_vertex p ~x:sol.x ~basic:sol.basic
               ~objective:sol.objective))
        [ ("dense", ds); ("sparse", ss) ]
  | _ -> ()

(* ---- fixtures carried over from test_simplex.ml ---------------------- *)

let fixtures =
  [
    ( "textbook max",
      true,
      Lp_problem.make ~nvars:2
        ~objective:[ (0, q 3); (1, q 5) ]
        [
          c [ (0, q 1) ] Le (q 4);
          c [ (1, q 2) ] Le (q 12);
          c [ (0, q 3); (1, q 2) ] Le (q 18);
        ] );
    ( "min with >=",
      false,
      Lp_problem.make ~nvars:2
        ~objective:[ (0, q 2); (1, q 3) ]
        [ c [ (0, q 1); (1, q 1) ] Ge (q 4); c [ (0, q 1) ] Ge (q 1) ] );
    ( "infeasible pair",
      false,
      Lp_problem.make ~nvars:2
        [ c [ (0, q 1); (1, q 1) ] Le (q 1); c [ (0, q 1); (1, q 1) ] Ge (q 3) ]
    );
    ( "unbounded ray",
      true,
      Lp_problem.make ~nvars:1 ~objective:[ (0, q 1) ] [ c [ (0, q 1) ] Ge (q 1) ]
    );
    ( "fractional vertex",
      true,
      Lp_problem.make ~nvars:2 ~objective:[ (0, q 1) ]
        [
          c [ (0, q 1); (1, q 1) ] Eq (q 1);
          c [ (0, q 2); (1, q 1) ] Le (qq 3 2);
        ] );
    ( "negative rhs",
      false,
      Lp_problem.make ~nvars:1 ~objective:[ (0, q 1) ]
        [ c [ (0, q (-1)) ] Le (q (-2)); c [ (0, q 1) ] Le (q 5) ] );
    ( "redundant equalities",
      false,
      Lp_problem.make ~nvars:2
        ~objective:[ (0, q 1); (1, q 1) ]
        [
          c [ (0, q 1); (1, q 1) ] Eq (q 2);
          c [ (0, q 2); (1, q 2) ] Eq (q 4);
          c [ (0, q 1) ] Le (q 2);
        ] );
    ( "duplicate terms",
      true,
      Lp_problem.make ~nvars:1 ~objective:[ (0, q 1) ]
        [ c [ (0, q 1); (0, q 1) ] Le (q 4) ] );
    ( "degenerate (Beale)",
      false,
      Lp_problem.make ~nvars:4
        ~objective:[ (0, qq (-3) 4); (1, q 150); (2, qq (-1) 50); (3, q 6) ]
        [
          c [ (0, qq 1 4); (1, q (-60)); (2, qq (-1) 25); (3, q 9) ] Le (q 0);
          c [ (0, qq 1 2); (1, q (-90)); (2, qq (-1) 50); (3, q 3) ] Le (q 0);
          c [ (2, q 1) ] Le (q 1);
        ] );
    ( "zero-variable row",
      false,
      Lp_problem.make ~nvars:1 [ c [] Le (q 3) ] );
  ]

let test_fixture_mirror () =
  List.iter (fun (label, maximize, p) -> differential ~maximize label p) fixtures

(* ---- 200+ seeded instances ------------------------------------------- *)

(* Deterministic mixed Le/Ge/Eq systems, feasible at a known point by
   construction except when the seed injects a contradictory pair.
   Minimising the all-ones objective over x ≥ 0 is always bounded. *)
let seeded_lp seed =
  let rng = Rng.create (0xD1F0 + seed) in
  let nvars = 1 + Rng.int rng 6 in
  let nrows = 1 + Rng.int rng 6 in
  let x0 = Array.init nvars (fun _ -> Rng.int rng 11) in
  let row () = Array.init nvars (fun _ -> Rng.int_range rng (-4) 6) in
  let dot r = Array.fold_left ( + ) 0 (Array.mapi (fun i a -> a * x0.(i)) r) in
  let terms r = Array.to_list (Array.mapi (fun i a -> (i, q a)) r) in
  let constrs =
    List.init nrows (fun _ ->
        let r = row () in
        match Rng.int rng 4 with
        | 0 -> c (terms r) Eq (q (dot r))
        | 1 -> c (terms r) Ge (q (dot r - Rng.int rng 5))
        | _ -> c (terms r) Le (q (dot r + Rng.int rng 6)))
  in
  let constrs =
    if seed mod 7 = 0 then
      (* contradictory pair: sum x <= 7 and sum x >= 8 + gap *)
      let all = List.init nvars (fun i -> (i, q 1)) in
      c all Le (q 7) :: c all Ge (q (8 + Rng.int rng 20)) :: constrs
    else constrs
  in
  Lp_problem.make ~nvars
    ~objective:(List.init nvars (fun i -> (i, q 1)))
    constrs

let test_seeded_mirror () =
  for seed = 0 to 209 do
    differential (Printf.sprintf "seed %d" seed) (seeded_lp seed)
  done

(* ---- warm-start soundness -------------------------------------------- *)

let feasible_seed seed = seeded_lp ((seed * 7) + 1) (* avoid the seed mod 7 = 0 injection *)

let test_warm_same_objective () =
  for seed = 0 to 24 do
    let p = feasible_seed seed in
    match RQ.solve p with
    | RQ.Optimal cold -> (
        let basis =
          match RQ.feasible_basis p with
          | Some (_, b) -> b
          | None -> Alcotest.failf "seed %d: optimal but not feasible?" seed
        in
        match RQ.solve ~warm:basis p with
        | RQ.Optimal warm ->
            Alcotest.(check string)
              (Printf.sprintf "seed %d: warm objective" seed)
              (Q.to_string cold.objective)
              (Q.to_string warm.objective)
        | _ -> Alcotest.failf "seed %d: warm solve lost feasibility" seed)
    | _ -> ()
  done

let test_corrupt_basis_repaired () =
  let p = feasible_seed 3 in
  let cold =
    match RQ.solve p with
    | RQ.Optimal s -> s
    | _ -> Alcotest.fail "expected optimal"
  in
  (* Garbage proposals: out-of-range variables, duplicates, auxiliaries
     of rows that do not exist, and a basis stolen from an unrelated
     problem.  All must be repaired or rejected — never trusted. *)
  let corrupt_proposals =
    [
      [ Basis.Var 0; Basis.Var 0; Basis.Var 9999; Basis.Aux 999; Basis.Aux (-1) ];
      List.init 40 (fun i -> Basis.Var i);
      (match RQ.feasible_basis (feasible_seed 11) with
      | Some (_, b) -> b
      | None -> []);
    ]
  in
  List.iteri
    (fun k proposal ->
      Hs_obs.Metrics.reset ();
      match RQ.solve ~warm:proposal p with
      | RQ.Optimal s ->
          Alcotest.(check string)
            (Printf.sprintf "corrupt %d: objective unchanged" k)
            (Q.to_string cold.objective)
            (Q.to_string s.objective);
          let hits = counter "lp.warm_start.hits" in
          let misses = counter "lp.warm_start.misses" in
          (* Out-of-range entries are dropped at translation, so a
             sanitised prefix may still load cleanly (a hit); what the
             metrics must never do is skip the accounting. *)
          Alcotest.(check bool)
            (Printf.sprintf "corrupt %d: warm attempt recorded" k)
            true
            (hits > 0 || misses > 0 || proposal = [])
      | _ -> Alcotest.failf "corrupt %d: lost feasibility" k)
    corrupt_proposals

let test_warm_store_round_trip () =
  let inst = Oracle.instance_of_seed ~max_m:4 ~max_n:8 5 in
  let store = Ilp.warm_store () in
  match Ilp.t_bounds inst with
  | None -> Alcotest.fail "oracle instance has no bounds"
  | Some (_, hi) ->
      let first = Ilp.lp_feasible_x ~warm:store inst ~tmax:hi in
      Alcotest.(check bool) "first probe feasible" true (first <> None);
      Alcotest.(check bool) "store populated" true (Ilp.warm_saved store > 0);
      Hs_obs.Metrics.reset ();
      let second = Ilp.lp_feasible_x ~warm:store inst ~tmax:hi in
      Alcotest.(check bool) "second probe feasible" true (second <> None);
      Alcotest.(check int) "identical re-solve is a pure hit" 1
        (counter "lp.warm_start.hits");
      Alcotest.(check int) "identical re-solve needs no pivots" 0
        (counter "simplex.pivots")

(* Warm-started binary search returns the same T* as cold; a failing
   seed is shrunk to a minimal instance before reporting. *)
let test_warm_search_same_horizon () =
  let disagrees inst =
    let cold = Option.map fst (Ilp.min_feasible_t inst) in
    let warm =
      Option.map fst (Ilp.min_feasible_t_x ~warm:(Ilp.warm_store ()) inst)
    in
    cold <> warm
  in
  for seed = 0 to 14 do
    let inst = Oracle.instance_of_seed ~max_m:4 ~max_n:7 seed in
    if disagrees inst then begin
      let minimal = Shrink.minimize ~still_failing:disagrees inst in
      let jobs, sets, vol = Shrink.measure minimal in
      Alcotest.failf
        "seed %d: warm binary search diverges; minimal counterexample has \
         %d jobs / %d sets / volume %d"
        seed jobs sets vol
    end
  done

(* ---- degenerate pins and budget parity -------------------------------- *)

let beale = List.assoc "degenerate (Beale)" (List.map (fun (l, _, p) -> (l, p)) fixtures)

let fully_degenerate =
  (* Every rhs zero: the only feasible point is the origin and every
     pivot is degenerate. *)
  Lp_problem.make ~nvars:3
    ~objective:[ (0, q (-1)); (1, q (-1)); (2, q (-1)) ]
    [
      c [ (0, q 1); (1, q (-1)) ] Le (q 0);
      c [ (1, q 1); (2, q (-1)) ] Le (q 0);
      c [ (2, q 1); (0, q (-1)) ] Le (q 0);
      c [ (0, q 1); (1, q 1); (2, q 1) ] Eq (q 0);
    ]

let solve_metered engine p =
  E.with_engine engine (fun () ->
      Hs_obs.Metrics.reset ();
      let r = SQ.solve p in
      (r, counter "simplex.pivots", counter "simplex.degenerate_pivots"))

let test_degenerate_pins () =
  List.iter
    (fun (label, p, expected) ->
      let rd, pd, dd = solve_metered E.Dense p in
      let rs, ps, ds = solve_metered E.Sparse p in
      (match (rd, rs) with
      | SQ.Optimal a, SQ.Optimal b ->
          Alcotest.(check string) (label ^ ": dense objective") expected
            (Q.to_string a.objective);
          Alcotest.(check string) (label ^ ": sparse objective") expected
            (Q.to_string b.objective)
      | _ -> Alcotest.failf "%s: expected optimal under both engines" label);
      Alcotest.(check int) (label ^ ": pivot parity") pd ps;
      Alcotest.(check int) (label ^ ": degenerate-pivot parity") dd ds)
    [
      ("Beale", beale, "-1/20");
      ("fully degenerate", fully_degenerate, "0");
    ]

let test_bland_fallback_agrees () =
  (* Forcing Bland from the start must still reach the same optimum as
     the Dantzig-with-fallback default, under both engines. *)
  List.iter
    (fun engine ->
      E.with_engine engine (fun () ->
          match (SQ.solve ~pricing:SQ.Bland beale, SQ.solve beale) with
          | SQ.Optimal a, SQ.Optimal b ->
              Alcotest.(check string)
                (E.to_string engine ^ ": Bland = Dantzig objective")
                (Q.to_string b.objective) (Q.to_string a.objective)
          | _ -> Alcotest.fail "expected optimal"))
    [ E.Dense; E.Sparse ]

let test_pivot_limit_parity () =
  (* Both engines must consume pivots identically: the same total on an
     unmetered run, and Pivot_limit at the same point when metered. *)
  let p = seeded_lp 42 in
  let consumed engine =
    E.with_engine engine (fun () ->
        let b = Simplex.budget 100_000 in
        ignore (SQ.solve ~budget:b p);
        Simplex.consumed b)
  in
  let full = consumed E.Dense in
  Alcotest.(check int) "unmetered consumption identical" full (consumed E.Sparse);
  Alcotest.(check bool) "fixture pivots at least once" true (full > 0);
  let limited engine k =
    E.with_engine engine (fun () ->
        let b = Simplex.budget k in
        match SQ.solve ~budget:b p with
        | exception Simplex.Pivot_limit -> (true, Simplex.consumed b)
        | _ -> (false, Simplex.consumed b))
  in
  for k = 1 to Stdlib.min 6 (full - 1) do
    let rd = limited E.Dense k and rs = limited E.Sparse k in
    Alcotest.(check (pair bool int))
      (Printf.sprintf "budget %d: same exhaustion point" k)
      rd rs;
    Alcotest.(check bool)
      (Printf.sprintf "budget %d: limit raised" k)
      true (fst rd)
  done

(* ---- the Hs_check vertex invariant blames corruption ------------------ *)

let test_lp_vertex_blames () =
  let p = List.nth fixtures 0 |> fun (_, _, p) -> p in
  let s =
    match E.with_engine E.Sparse (fun () -> SQ.solve ~maximize:true p) with
    | SQ.Optimal s -> s
    | _ -> Alcotest.fail "expected optimal"
  in
  let failed ~x ~basic ~objective =
    List.filter_map
      (fun (it : Hs_check.Verdict.item) ->
        if it.ok then None else Some it.invariant)
      (Hs_check.Check.lp_vertex p ~x ~basic ~objective)
  in
  Alcotest.(check (list string))
    "honest solution passes" []
    (failed ~x:s.x ~basic:s.basic ~objective:s.objective);
  (* A nonbasic variable pushed off its bound. *)
  let basic' = Array.copy s.basic in
  let v =
    match Array.to_list (Array.mapi (fun i b -> (i, b)) s.basic)
          |> List.find_opt (fun (i, b) -> b && Q.sign s.x.(i) <> 0)
    with
    | Some (i, _) -> i
    | None -> Alcotest.fail "no basic variable at a nonzero level"
  in
  basic'.(v) <- false;
  Alcotest.(check bool) "unflagged basic variable blamed" true
    (List.mem "lp.vertex.nonbasic-at-bound"
       (failed ~x:s.x ~basic:basic' ~objective:s.objective));
  (* A lying objective. *)
  Alcotest.(check bool) "wrong objective blamed" true
    (List.mem "lp.vertex.objective"
       (failed ~x:s.x ~basic:s.basic ~objective:(Q.add s.objective Q.one)));
  (* An infeasible point. *)
  let x' = Array.copy s.x in
  x'.(0) <- q 1000;
  Alcotest.(check bool) "violated constraint blamed" true
    (List.mem "lp.vertex.feasible"
       (failed ~x:x' ~basic:s.basic ~objective:s.objective));
  (* Shape mismatch. *)
  Alcotest.(check bool) "truncated arrays blamed" true
    (List.mem "lp.vertex.shape"
       (failed ~x:[| q 0 |] ~basic:s.basic ~objective:s.objective));
  (* Everything basic: support bound must trip (3 rows, both vars basic
     plus padding flags keeps support <= rows here, so widen instead:
     claim every variable basic on a 1-row problem). *)
  let tiny = Lp_problem.make ~nvars:3 [ c [ (0, q 1); (1, q 1); (2, q 1) ] Le (q 9) ] in
  let items =
    Hs_check.Check.lp_vertex tiny ~x:[| q 1; q 1; q 1 |]
      ~basic:[| true; true; true |] ~objective:Q.zero
  in
  Alcotest.(check bool) "oversized support blamed" true
    (List.exists
       (fun (it : Hs_check.Verdict.item) ->
         it.invariant = "lp.vertex.support" && not it.ok)
       items)

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  ( "revised",
    [
      u "fixture mirror (dense = sparse)" test_fixture_mirror;
      u "210 seeded instances mirror" test_seeded_mirror;
      u "warm solve = cold objective" test_warm_same_objective;
      u "corrupted bases repaired, never trusted" test_corrupt_basis_repaired;
      u "warm store round trip (0-pivot re-solve)" test_warm_store_round_trip;
      u "warm binary search = cold T* (shrinking)" test_warm_search_same_horizon;
      u "degenerate pins (pivot parity)" test_degenerate_pins;
      u "Bland fallback agrees" test_bland_fallback_agrees;
      u "Pivot_limit parity" test_pivot_limit_parity;
      u "lp_vertex blames corruption" test_lp_vertex_blames;
    ] )
