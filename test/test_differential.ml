(* Differential test of the Theorem V.2 pipeline against the exact
   branch-and-bound on seeded small instances: for every instance where
   the optimum is proven,

     t_lp <= OPT <= ALG <= 2 * t_lp   (hence ALG <= 2 * OPT)

   i.e. the approximation never beats the proven optimum (its schedule
   is real), never loses to the LP bound, and keeps the paper's factor-2
   guarantee with room to spare. *)

module T = Hs_laminar.Topology

let cases =
  (* (family, n, m, seed offset) small enough for proven optima *)
  List.concat_map
    (fun (name, lam_of) ->
      List.concat_map
        (fun (n, m) -> List.init 4 (fun k -> (name, lam_of, n, m, k)))
        [ (4, 3); (6, 3); (7, 4) ])
    [
      ("semi", fun ~rng:_ m -> T.semi_partitioned m);
      ("clustered", fun ~rng:_ m -> T.clustered ~m ~clusters:(if m mod 2 = 0 then 2 else 1));
      ("3-level", fun ~rng:_ m -> T.balanced [ 2; (m + 1) / 2 ]);
      ("random", fun ~rng m -> Hs_workloads.Generators.random_laminar rng ~m ());
    ]

let test_alg_between_lp_and_2opt () =
  let proven = ref 0 in
  List.iter
    (fun (name, lam_of, n, m, k) ->
      let label = Printf.sprintf "%s n=%d m=%d k=%d" name n m k in
      let rng = Hs_workloads.Rng.create (77001 + (997 * k) + n + (31 * m)) in
      let lam = lam_of ~rng m in
      let inst =
        Hs_workloads.Generators.hierarchical rng ~lam ~n ~base:(1, 9) ~heterogeneity:1.6
          ~overhead:0.25 ()
      in
      match Hs_core.Approx.Exact.solve inst with
      | Error e -> Alcotest.failf "%s: pipeline failed: %s" label e
      | Ok o -> (
          match Hs_core.Exact.optimal ~initial:(Array.map (fun _ -> 0) o.assignment, o.makespan) inst with
          | Some (_, opt, stats) when stats.proven ->
              incr proven;
              if not (o.t_lp <= opt) then
                Alcotest.failf "%s: LP bound %d above proven optimum %d" label o.t_lp opt;
              if not (opt <= o.makespan) then
                Alcotest.failf "%s: approximation %d beats proven optimum %d" label o.makespan opt;
              if not (o.makespan <= 2 * o.t_lp) then
                Alcotest.failf "%s: guarantee broken: ALG %d > 2*t_lp %d" label o.makespan
                  (2 * o.t_lp);
              if not (o.makespan <= 2 * opt) then
                Alcotest.failf "%s: ALG %d > 2*OPT %d" label o.makespan (2 * opt)
          | _ -> ()))
    cases;
  (* The sizes are chosen so branch and bound proves (almost) all of
     them; a drastic drop would silently hollow the test out. *)
  Alcotest.(check bool)
    (Printf.sprintf "enough proven optima (%d of %d)" !proven (List.length cases))
    true
    (!proven >= List.length cases / 2)

let test_float_lp_agrees_on_bound () =
  (* The float LP is uncertified but on small seeded instances its
     reported makespan must still be sandwiched the same way. *)
  for k = 0 to 5 do
    let rng = Hs_workloads.Rng.create (88100 + (53 * k)) in
    let inst =
      Hs_workloads.Generators.hierarchical rng ~lam:(T.semi_partitioned 3) ~n:5 ~base:(1, 9)
        ~heterogeneity:1.5 ~overhead:0.2 ()
    in
    match (Hs_core.Approx.Exact.solve inst, Hs_core.Approx.Fast.solve inst) with
    | Ok e, Ok f ->
        Alcotest.(check int) (Printf.sprintf "k=%d: same certified bound" k) e.t_lp f.t_lp;
        Alcotest.(check bool)
          (Printf.sprintf "k=%d: float path keeps the guarantee" k)
          true
          (f.makespan <= 2 * f.t_lp)
    | Error e, _ -> Alcotest.failf "k=%d: exact pipeline failed: %s" k e
    | _, Error e -> Alcotest.failf "k=%d: float pipeline failed: %s" k e
  done

let test_certifier_agrees_with_asserts () =
  (* The independent certifier must reach the same verdict as this
     file's inline inequality asserts — and stay sharper where the
     asserts cannot look: it recomputes the makespan from the schedule
     and re-proves LP minimality, so a tampered outcome record that
     still satisfies the sandwich is rejected. *)
  for k = 0 to 3 do
    let label = Printf.sprintf "k=%d" k in
    let rng = Hs_workloads.Rng.create (99200 + (71 * k)) in
    let inst =
      Hs_workloads.Generators.hierarchical rng ~lam:(T.semi_partitioned 3) ~n:5 ~base:(1, 9)
        ~heterogeneity:1.5 ~overhead:0.2 ()
    in
    match Hs_core.Approx.Exact.solve inst with
    | Error e -> Alcotest.failf "%s: pipeline failed: %s" label e
    | Ok o ->
        Alcotest.(check bool)
          (label ^ ": sandwich holds")
          true
          (o.t_lp <= o.makespan && o.makespan <= 2 * o.t_lp);
        Alcotest.(check bool)
          (label ^ ": certificate agrees")
          true
          (Hs_check.Verdict.ok (Hs_check.Certify.outcome o));
        (* Under-reporting the makespan keeps every inequality above
           intact; only recomputing it from the schedule catches it. *)
        let achieved = Hs_model.Schedule.makespan o.schedule in
        if achieved > 0 then begin
          let fudged = { o with Hs_core.Approx.Exact.makespan = achieved - 1 } in
          Alcotest.(check bool)
            (label ^ ": under-reported makespan caught")
            false
            (Hs_check.Verdict.ok (Hs_check.Certify.outcome fudged))
        end;
        (* An inflated lower bound would silently tighten the guarantee;
           minimality (Farkas at t_lp - 1) is what rejects it. *)
        let inflated = { o with Hs_core.Approx.Exact.t_lp = o.t_lp + 1 } in
        Alcotest.(check bool)
          (label ^ ": inflated lower bound caught")
          false
          (Hs_check.Verdict.ok (Hs_check.Certify.outcome inflated))
  done

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  ( "differential",
    [
      u "t_lp <= OPT <= ALG <= 2*t_lp" test_alg_between_lp_and_2opt;
      u "float LP sandwiched identically" test_float_lp_agrees_on_bound;
      u "certifier agrees with the asserts, and is sharper" test_certifier_agrees_with_asserts;
    ] )
