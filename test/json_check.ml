(* Cram-test helper: parse a JSON file with Hs_obs.Json and check that
   the given top-level keys are present.  Exit 0 and a one-line report
   on success; exit 1 with the reason otherwise. *)

let () =
  match Array.to_list Sys.argv with
  | _ :: file :: keys -> (
      let contents =
        let ic = open_in_bin file in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Hs_obs.Json.parse contents with
      | Error e ->
          Printf.eprintf "%s: invalid JSON: %s\n" file e;
          exit 1
      | Ok doc ->
          let missing = List.filter (fun k -> Hs_obs.Json.member k doc = None) keys in
          if missing <> [] then begin
            Printf.eprintf "%s: missing keys: %s\n" file (String.concat ", " missing);
            exit 1
          end;
          Printf.printf "%s: valid JSON; keys ok\n" file)
  | _ ->
      prerr_endline "usage: json_check FILE [KEY ...]";
      exit 2
