Persistent solver service end to end (DESIGN.md section 11): a
background daemon, a 200-request mixed sweep that must come back
byte-identical to the offline solver, pinned cache counters, and a
graceful drain on shutdown.

Generate a pool of five instances and capture offline ground truth:

  $ for s in 1 2 3 4 5; do
  >   ../../bin/hsched.exe generate --machines 4 --jobs 6 --seed $s --out i$s.inst
  >   ../../bin/hsched.exe solve -f i$s.inst > want$s.out
  > done
  wrote i1.inst
  wrote i2.inst
  wrote i3.inst
  wrote i4.inst
  wrote i5.inst

Start the daemon and wait for its socket:

  $ ../../bin/hsched.exe serve --socket d.sock > /dev/null 2> server.log &
  $ for i in $(seq 1 100); do [ -S d.sock ] && break; sleep 0.1; done

A second daemon cannot steal a live socket:

  $ ../../bin/hsched.exe serve --socket d.sock
  hsched: d.sock: a daemon is already serving
  [2]

The 200-request mixed sweep: 40 rounds over the 5-instance pool,
pipelined through one connection.  Every response must be byte-identical
to the offline run of the same instance:

  $ args=""
  $ for r in $(seq 1 40); do for s in 1 2 3 4 5; do args="$args i$s.inst"; done; done
  $ ../../bin/hsched.exe request --socket d.sock $args > got200.out
  $ for r in $(seq 1 40); do
  >   for s in 1 2 3 4 5; do echo "== i$s.inst =="; cat want$s.out; done
  > done > want200.out
  $ cmp got200.out want200.out && echo byte-identical
  byte-identical

Only the five first-seen instances were solved; the 195 repeats were
answered from the canonical-hash result cache (nonzero service.cache.hit):

  $ ../../bin/hsched.exe request --socket d.sock --server-stats
  service.cache.evict = 0
  service.cache.hit = 195
  service.cache.miss = 5
  service.deadline_miss = 0
  service.requests = 200
  service.shed = 0
  service.snapshot.loaded = 0
  service.snapshot.rejected = 0

A single request prints the body alone, byte-identical to `hsched solve`:

  $ ../../bin/hsched.exe request --socket d.sock i1.inst > got1.out
  $ cmp got1.out want1.out && echo byte-identical
  byte-identical

Liveness:

  $ ../../bin/hsched.exe request --socket d.sock --ping
  pong

Unusable input is a typed error carrying the CLI exit-code contract, and
the daemon survives it:

  $ echo "machines x" > bad.inst
  $ ../../bin/hsched.exe request --socket d.sock bad.inst
  ERROR: parse error: invalid machines count: x
  [2]
  $ ../../bin/hsched.exe request --socket d.sock --ping
  pong

A zero deadline always expires in the admission queue: the typed
status-6 response, deterministic by construction (DESIGN.md section 13):

  $ ../../bin/hsched.exe request --socket d.sock --deadline-ms 0 i1.inst
  ERROR: deadline exceeded [0 ms]: expired in the admission queue
  [6]
  $ ../../bin/hsched.exe request --socket d.sock --ping
  pong

Graceful drain: two solves and a shutdown pipelined together; the daemon
answers both solves before acknowledging the shutdown:

  $ ../../bin/hsched.exe request --socket d.sock --shutdown i1.inst i2.inst > drain.out
  $ head -1 drain.out
  == i1.inst ==
  $ tail -1 drain.out
  bye
  $ grep -c "drained 2 in-flight request(s)" server.log
  1
  $ wait

The daemon removed its socket on exit, so a second shutdown has nothing
to talk to:

  $ [ -e d.sock ] || echo socket removed
  socket removed
  $ ../../bin/hsched.exe shutdown --socket d.sock
  hsched: service unavailable: cannot connect to d.sock: No such file or directory
  [7]

Admission control (DESIGN.md section 13): a queue bound of zero sheds
every solve with the typed overloaded response, and the retry_after_ms
ladder climbs deterministically with the shed streak:

  $ ../../bin/hsched.exe serve --socket shed.sock --max-queue 0 > /dev/null 2> shed.log &
  $ for i in $(seq 1 100); do [ -S shed.sock ] && break; sleep 0.1; done
  $ ../../bin/hsched.exe request --socket shed.sock i1.inst
  ERROR: overloaded: admission queue is full, retry after 50 ms
  [5]
  $ ../../bin/hsched.exe request --socket shed.sock i1.inst i2.inst
  == i1.inst ==
  ERROR: overloaded: admission queue is full, retry after 100 ms
  == i2.inst ==
  ERROR: overloaded: admission queue is full, retry after 150 ms
  [5]

Client-side retries honor the ladder: two retries climb it twice more,
then surface the daemon's final answer unchanged:

  $ ../../bin/hsched.exe request --socket shed.sock --retries 2 i1.inst
  ERROR: overloaded: admission queue is full, retry after 300 ms
  [5]
  $ ../../bin/hsched.exe shutdown --socket shed.sock
  server shut down
  $ wait

Crash recovery (DESIGN.md section 13): a daemon with --snapshot writes
its cache to disk after draining, and a restarted daemon restores it —
the first request after the restart is a cache hit, byte-identical:

  $ ../../bin/hsched.exe serve --socket s.sock --snapshot snap.json > /dev/null 2> snap1.log &
  $ for i in $(seq 1 100); do [ -S s.sock ] && break; sleep 0.1; done
  $ ../../bin/hsched.exe request --socket s.sock i1.inst > snap1.out
  $ ../../bin/hsched.exe shutdown --socket s.sock
  server shut down
  $ wait
  $ grep -c "saved 1 cache entries to snap.json" snap1.log
  1
  $ ../../bin/hsched.exe serve --socket s.sock --snapshot snap.json > /dev/null 2> snap2.log &
  $ for i in $(seq 1 100); do [ -S s.sock ] && break; sleep 0.1; done
  $ grep -c "restored 1 cache entries from snap.json (0 rejected)" snap2.log
  1
  $ ../../bin/hsched.exe request --socket s.sock i1.inst > snap2.out
  $ cmp snap1.out snap2.out && echo byte-identical
  byte-identical
  $ ../../bin/hsched.exe request --socket s.sock --server-stats
  service.cache.evict = 0
  service.cache.hit = 1
  service.cache.miss = 0
  service.deadline_miss = 0
  service.requests = 1
  service.shed = 0
  service.snapshot.loaded = 1
  service.snapshot.rejected = 0
  $ ../../bin/hsched.exe shutdown --socket s.sock
  server shut down
  $ wait

A tampered snapshot entry fails its fingerprint re-verification on
restore and is rejected — the daemon starts with an empty cache instead
of serving corrupted bytes:

  $ sed -i 's/makespan/nakespan/' snap.json
  $ ../../bin/hsched.exe serve --socket s.sock --snapshot snap.json > /dev/null 2> snap3.log &
  $ for i in $(seq 1 100); do [ -S s.sock ] && break; sleep 0.1; done
  $ grep -c "restored 0 cache entries from snap.json (1 rejected)" snap3.log
  1
  $ ../../bin/hsched.exe request --socket s.sock i1.inst > snap3.out
  $ cmp snap1.out snap3.out && echo byte-identical
  byte-identical
  $ ../../bin/hsched.exe shutdown --socket s.sock
  server shut down
  $ wait
