Persistent solver service end to end (DESIGN.md section 11): a
background daemon, a 200-request mixed sweep that must come back
byte-identical to the offline solver, pinned cache counters, and a
graceful drain on shutdown.

Generate a pool of five instances and capture offline ground truth:

  $ for s in 1 2 3 4 5; do
  >   ../../bin/hsched.exe generate --machines 4 --jobs 6 --seed $s --out i$s.inst
  >   ../../bin/hsched.exe solve -f i$s.inst > want$s.out
  > done
  wrote i1.inst
  wrote i2.inst
  wrote i3.inst
  wrote i4.inst
  wrote i5.inst

Start the daemon and wait for its socket:

  $ ../../bin/hsched.exe serve --socket d.sock > /dev/null 2> server.log &
  $ for i in $(seq 1 100); do [ -S d.sock ] && break; sleep 0.1; done

A second daemon cannot steal a live socket:

  $ ../../bin/hsched.exe serve --socket d.sock
  hsched: d.sock: a daemon is already serving
  [2]

The 200-request mixed sweep: 40 rounds over the 5-instance pool,
pipelined through one connection.  Every response must be byte-identical
to the offline run of the same instance:

  $ args=""
  $ for r in $(seq 1 40); do for s in 1 2 3 4 5; do args="$args i$s.inst"; done; done
  $ ../../bin/hsched.exe request --socket d.sock $args > got200.out
  $ for r in $(seq 1 40); do
  >   for s in 1 2 3 4 5; do echo "== i$s.inst =="; cat want$s.out; done
  > done > want200.out
  $ cmp got200.out want200.out && echo byte-identical
  byte-identical

Only the five first-seen instances were solved; the 195 repeats were
answered from the canonical-hash result cache (nonzero service.cache.hit):

  $ ../../bin/hsched.exe request --socket d.sock --server-stats
  service.cache.evict = 0
  service.cache.hit = 195
  service.cache.miss = 5
  service.requests = 200

A single request prints the body alone, byte-identical to `hsched solve`:

  $ ../../bin/hsched.exe request --socket d.sock i1.inst > got1.out
  $ cmp got1.out want1.out && echo byte-identical
  byte-identical

Liveness:

  $ ../../bin/hsched.exe request --socket d.sock --ping
  pong

Unusable input is a typed error carrying the CLI exit-code contract, and
the daemon survives it:

  $ echo "machines x" > bad.inst
  $ ../../bin/hsched.exe request --socket d.sock bad.inst
  ERROR: parse error: invalid machines count: x
  [2]
  $ ../../bin/hsched.exe request --socket d.sock --ping
  pong

Graceful drain: two solves and a shutdown pipelined together; the daemon
answers both solves before acknowledging the shutdown:

  $ ../../bin/hsched.exe request --socket d.sock --shutdown i1.inst i2.inst > drain.out
  $ head -1 drain.out
  == i1.inst ==
  $ tail -1 drain.out
  bye
  $ grep -c "drained 2 in-flight request(s)" server.log
  1
  $ wait

The daemon removed its socket on exit, so a second shutdown has nothing
to talk to:

  $ [ -e d.sock ] || echo socket removed
  socket removed
  $ ../../bin/hsched.exe shutdown --socket d.sock
  hsched: cannot connect to d.sock: No such file or directory
  [1]
