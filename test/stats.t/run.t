End-to-end service observability (DESIGN.md section 14): a traced
request yields one merged client/server Chrome timeline, `hsched stats`
introspects a live daemon out of band, and the flight recorder replays
the last outcomes — including a deterministic shed with its retry hint.

  $ ../../bin/hsched.exe generate --machines 4 --jobs 6 --seed 1 --out i1.inst
  wrote i1.inst
  $ ../../bin/hsched.exe serve --socket d.sock > /dev/null 2> server.log &
  $ for i in $(seq 1 100); do [ -S d.sock ] && break; sleep 0.1; done

A traced request answers byte-identically to the offline solver and
writes the merged timeline:

  $ ../../bin/hsched.exe solve -f i1.inst > want.out
  $ ../../bin/hsched.exe request --socket d.sock --trace trace.json i1.inst > got.out
  $ cmp got.out want.out && echo byte-identical
  byte-identical
  $ ../json_check.exe trace.json traceEvents displayTimeUnit otherData
  trace.json: valid JSON; keys ok

One timeline, two processes: pid 1 carries the client phases, pid 2 the
daemon's — the queue wait, the batch solve, and the render are all
visible spans:

  $ grep -c '"name":"client.call"' trace.json
  1
  $ grep -c '"name":"service.queue.wait"' trace.json
  1
  $ grep -c '"name":"service.solve"' trace.json
  1
  $ grep -c '"name":"service.render"' trace.json
  1
  $ grep -c '"pid":2' trace.json
  1

The trace id is minted deterministically from the instance bytes, is
recorded in otherData, and tags every server-side span (so it appears
more than once):

  $ test $(grep -o 'a6c71dd04756fc8b4f71f2549383e046' trace.json | wc -l) -ge 2 && echo one shared trace id
  one shared trace id

Live introspection, answered out of band.  Uptime, byte counts and
bucket bounds are wall-clock-dependent, so they are masked; everything
else is deterministic after exactly one fresh solve:

  $ ../../bin/hsched.exe stats d.sock \
  >   | sed -E 's/^uptime: [0-9.]+s/uptime: Ts/; s/\([0-9]+ \/ [0-9]+ bytes\)/(I \/ O bytes)/; s/p50<=[0-9]+ p99<=[0-9]+/p50<=N p99<=N/'
  uptime: Ts
  queue depth: 0 (high water 1)
  connections: 1
  draining: false
  cache entries: 1
  requests: 1 (shed 0, deadline missed 0)
  cache: 0 hit(s) / 1 miss(es) (hit ratio 0.0%)
  frames: 2 in / 1 out (I / O bytes)
  phase latency (ms):
    queue  n=1 p50<=N p99<=N
    solve  n=1 p50<=N p99<=N
    render n=1 p50<=N p99<=N
    write  n=1 p50<=N p99<=N
  flight recorder: 1 outcome(s) recorded, last 1 held (capacity 256)

--prom renders the same snapshot in Prometheus text exposition format
(hsched_ namespace, TYPE headers, cumulative buckets closed by +Inf):

  $ ../../bin/hsched.exe stats d.sock --prom > prom.txt
  $ grep -c '^# TYPE hsched_service_requests counter$' prom.txt
  1
  $ grep '^hsched_service_requests ' prom.txt
  hsched_service_requests 1
  $ grep -c '^# TYPE hsched_service_phase_solve_ms histogram$' prom.txt
  1
  $ grep '^hsched_service_phase_solve_ms_bucket{le="+Inf"} ' prom.txt
  hsched_service_phase_solve_ms_bucket{le="+Inf"} 1
  $ grep '^hsched_service_phase_solve_ms_count ' prom.txt
  hsched_service_phase_solve_ms_count 1
  $ grep '^hsched_uptime_seconds ' prom.txt | wc -l
  1

Every exposition line is a TYPE header or a sample — nothing else:

  $ grep -cvE '^# TYPE [a-zA-Z_][a-zA-Z0-9_]* (counter|gauge|histogram)$|^[a-zA-Z_][a-zA-Z0-9_]*(\{le="[^"]+"\})? -?[0-9.e+-]+$' prom.txt
  0
  [1]

--json emits the raw introspection document:

  $ ../../bin/hsched.exe stats d.sock --json > intro.json
  $ ../json_check.exe intro.json schema uptime_s queue_depth connections draining cache_entries recorder metrics
  intro.json: valid JSON; keys ok

  $ ../../bin/hsched.exe shutdown --socket d.sock
  server shut down
  $ wait

The flight recorder replays a deterministic shed: an always-overloaded
daemon (queue bound 0) sheds the request with the first rung of the
retry ladder, and `stats --recent` — still answerable during overload,
introspection never queues — shows exactly that outcome:

  $ ../../bin/hsched.exe serve --socket shed.sock --max-queue 0 --recorder 4 > /dev/null 2> shed.log &
  $ for i in $(seq 1 100); do [ -S shed.sock ] && break; sleep 0.1; done
  $ ../../bin/hsched.exe request --socket shed.sock i1.inst
  ERROR: overloaded: admission queue is full, retry after 50 ms
  [5]
  $ ../../bin/hsched.exe stats shed.sock --recent | tail -3
  flight recorder: 1 outcome(s) recorded, last 1 held (capacity 4)
  recent outcomes (oldest first):
    #1 status=5 cached=false digest=- queue_ms=0 solve_ms=0 trace=- shed=queue_full retry_after_ms=50

The same ring is dumped to the server log on drain:

  $ ../../bin/hsched.exe shutdown --socket shed.sock
  server shut down
  $ wait
  $ grep -c 'flight recorder (last 1 of 1 outcome(s)):' shed.log
  1
  $ grep -c 'shed=queue_full retry_after_ms=50' shed.log
  1

A dead socket is the typed unavailable error:

  $ ../../bin/hsched.exe stats shed.sock
  hsched: service unavailable: cannot connect to shed.sock: No such file or directory
  [7]
