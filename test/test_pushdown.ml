(* Property test of the Lemma V.1 push-down, fuzzed over all four
   workload families: starting from the minimal-horizon LP solution,
   the top-down sweep must (1) leave weight on singletons only,
   (2) stay (IP-3)-feasible at the same horizon — which includes every
   per-machine load <= T constraint, (3) preserve each job's fractional
   mass exactly (rational arithmetic, no tolerance), and (4) never
   increase the total processed volume: the generator's processing
   times are monotone (a child set is never slower than its parent —
   the per-level overhead is clamped to >= 1 even at overhead 0), so
   moving weight downward can only shrink sum p_{sj} x_{sj}. *)

open Hs_model
open Hs_core
module Q = Hs_numeric.Q
module L = Hs_laminar.Laminar
module T = Hs_laminar.Topology
module I = Ilp.Make (Hs_lp.Field.Exact)
module P = Pushdown.Make (Hs_lp.Field.Exact)

let base_seed = 52017

let families = [ "semi"; "clustered"; "3-level"; "random" ]

let gen_instance ~family ~seed ~heterogeneity ~overhead =
  let rng = Hs_workloads.Rng.create seed in
  let n = 4 + Hs_workloads.Rng.int rng 5 in
  let m = 3 + Hs_workloads.Rng.int rng 4 in
  let lam =
    match family with
    | "semi" -> T.semi_partitioned m
    | "clustered" -> T.clustered ~m ~clusters:(if m mod 2 = 0 then 2 else 1)
    | "3-level" -> T.balanced [ 2; (m + 1) / 2 ]
    | _ -> Hs_workloads.Generators.random_laminar rng ~m ()
  in
  Hs_workloads.Generators.hierarchical rng ~lam ~n ~base:(1, 9) ~heterogeneity ~overhead ()

let job_mass (x : Q.t array array) j =
  Array.fold_left (fun acc row -> Q.add acc row.(j)) Q.zero x

(* Total processed volume sum_s sum_j p_{sj} x_{sj}; only defined where
   x puts weight on finite-ptime sets (feasibility guarantees that). *)
let volume inst (x : Q.t array array) =
  let acc = ref Q.zero in
  Array.iteri
    (fun s row ->
      Array.iteri
        (fun j v ->
          if Q.sign v <> 0 then
            match Instance.ptime inst ~job:j ~set:s with
            | Ptime.Fin p -> acc := Q.add !acc (Q.mul (Q.of_int p) v)
            | Ptime.Inf -> Alcotest.failf "weight on infeasible pair (set %d, job %d)" s j)
        row)
    x;
  !acc

let check_invariants ~label inst =
  let closed, _ = Instance.with_singletons inst in
  match I.min_feasible_t closed with
  | None -> Alcotest.failf "%s: no feasible horizon" label
  | Some (t, x) ->
      let x' = P.push_down closed ~tmax:t x in
      Alcotest.(check bool) (label ^ ": singletons only") true (P.singletons_only closed x');
      Alcotest.(check bool)
        (label ^ ": feasible at the same horizon")
        true
        (P.feasible closed ~tmax:t x');
      let njobs = Instance.njobs closed in
      for j = 0 to njobs - 1 do
        if not (Q.equal (job_mass x j) (job_mass x' j)) then
          Alcotest.failf "%s: job %d mass changed: %s -> %s" label j
            (Q.to_string (job_mass x j))
            (Q.to_string (job_mass x' j))
      done;
      if Q.gt (volume closed x') (volume closed x) then
        Alcotest.failf "%s: volume grew moving down: %s -> %s" label
          (Q.to_string (volume closed x))
          (Q.to_string (volume closed x'));
      (* Differential: the independent Lemma V.1 checker must agree with
         the producer predicates above — certifying the honest sweep and
         rejecting a tampered one that the producers also reject. *)
      let checker_ok after =
        List.for_all
          (fun i -> i.Hs_check.Verdict.ok)
          (Hs_check.Check.pushdown closed ~before:x ~after ~tmax:t)
      in
      Alcotest.(check bool) (label ^ ": checker certifies the sweep") true (checker_ok x');
      let nonzero =
        let found = ref None in
        Array.iteri
          (fun s row ->
            Array.iteri (fun j v -> if !found = None && Q.sign v <> 0 then found := Some (s, j)) row)
          x';
        !found
      in
      (match nonzero with
      | None -> ()
      | Some (s, j) ->
          let bad = Array.map Array.copy x' in
          bad.(s).(j) <- Q.add bad.(s).(j) (Q.of_int 1);
          Alcotest.(check bool)
            (label ^ ": checker rejects tampered mass")
            false (checker_ok bad);
          Alcotest.(check bool)
            (label ^ ": producer asserts agree on the tampering")
            false
            (P.feasible closed ~tmax:t bad && Q.equal (job_mass bad j) (job_mass x j)))

let test_pushdown_families () =
  List.iter
    (fun family ->
      for k = 0 to 5 do
        let seed = base_seed + (101 * k) in
        let inst = gen_instance ~family ~seed ~heterogeneity:1.6 ~overhead:0.25 in
        check_invariants ~label:(Printf.sprintf "%s seed=%d" family seed) inst
      done)
    families

let test_pushdown_homogeneous () =
  (* The degenerate corner — homogeneous speeds, minimal overhead — is
     where slack denominators are most likely to vanish (all children
     look alike); the invariants must survive the zero-slack fallback
     path of push_one too. *)
  List.iter
    (fun family ->
      for k = 0 to 3 do
        let seed = base_seed + 7 + (211 * k) in
        let inst = gen_instance ~family ~seed ~heterogeneity:1.0 ~overhead:0.0 in
        check_invariants ~label:(Printf.sprintf "%s(o=0) seed=%d" family seed) inst
      done)
    families

let test_push_one_is_local () =
  (* push_one touches only the chosen set's row and its children's rows. *)
  let inst = gen_instance ~family:"3-level" ~seed:(base_seed + 999) ~heterogeneity:1.4 ~overhead:0.2 in
  let closed, _ = Instance.with_singletons inst in
  match I.min_feasible_t closed with
  | None -> Alcotest.fail "no feasible horizon"
  | Some (t, x) ->
      let lam = Instance.laminar closed in
      let nonsingleton =
        let found = ref None in
        Array.iteri
          (fun s row ->
            if !found = None && L.card lam s > 1 && Array.exists (fun v -> Q.sign v <> 0) row
            then found := Some s)
          x;
        !found
      in
      (match nonsingleton with
      | None -> () (* LP already integral on singletons; nothing to test *)
      | Some eta ->
          let x' = Array.map Array.copy x in
          P.push_one closed x' ~tmax:t eta;
          Alcotest.(check bool) "emptied the pushed set" true
            (Array.for_all (fun v -> Q.sign v = 0) x'.(eta));
          Array.iteri
            (fun s row ->
              if s <> eta && not (L.subset lam s eta) then
                Array.iteri
                  (fun j v ->
                    if not (Q.equal v x.(s).(j)) then
                      Alcotest.failf "row %d (not under set %d) changed at job %d" s eta j)
                  row)
            x')

let suite =
  let u name f = Alcotest.test_case name `Quick f in
  ( "pushdown",
    [
      u "Lemma V.1 invariants across families" test_pushdown_families;
      u "invariants survive zero-slack corner" test_pushdown_homogeneous;
      u "push_one only moves weight downward" test_push_one_is_local;
    ] )
