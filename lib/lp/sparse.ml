(* Compressed sparse row matrices over a simplex field; see sparse.mli. *)

module Make (F : Field.S) = struct
  type t = {
    nrows : int;
    ncols : int;
    rptr : int array;  (* length nrows + 1 *)
    cidx : int array;  (* length nnz, column index per entry *)
    vals : F.t array;  (* length nnz *)
  }

  let nrows m = m.nrows
  let ncols m = m.ncols
  let nnz m = m.rptr.(m.nrows)

  (* Build from per-row term lists, summing duplicate column entries
     (the sparse twin of the dense solver's [densify]) and dropping the
     sums that vanish under the field's zero test. *)
  let of_rows ~nrows ~ncols rows =
    if Array.length rows <> nrows then invalid_arg "Sparse.of_rows: row count";
    let acc = Hashtbl.create 16 in
    let cleaned =
      Array.map
        (fun terms ->
          Hashtbl.reset acc;
          let order = ref [] in
          List.iter
            (fun (j, v) ->
              if j < 0 || j >= ncols then invalid_arg "Sparse.of_rows: column out of range";
              match Hashtbl.find_opt acc j with
              | None ->
                  Hashtbl.add acc j v;
                  order := j :: !order
              | Some prev -> Hashtbl.replace acc j (F.add prev v))
            terms;
          List.rev !order
          |> List.filter_map (fun j ->
                 let v = Hashtbl.find acc j in
                 if F.is_zero v then None else Some (j, v))
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b))
        rows
    in
    let rptr = Array.make (nrows + 1) 0 in
    Array.iteri (fun r terms -> rptr.(r + 1) <- rptr.(r) + List.length terms) cleaned;
    let total = rptr.(nrows) in
    let cidx = Array.make total 0 and vals = Array.make total F.zero in
    Array.iteri
      (fun r terms ->
        List.iteri
          (fun k (j, v) ->
            cidx.(rptr.(r) + k) <- j;
            vals.(rptr.(r) + k) <- v)
          terms)
      cleaned;
    { nrows; ncols; rptr; cidx; vals }

  let iter_row m r f =
    for k = m.rptr.(r) to m.rptr.(r + 1) - 1 do
      f m.cidx.(k) m.vals.(k)
    done

  let fold_row m r f init =
    let acc = ref init in
    iter_row m r (fun j v -> acc := f !acc j v);
    !acc

  let row_nnz m r = m.rptr.(r + 1) - m.rptr.(r)

  (* Dot product of row [r] with a dense vector. *)
  let dot_row m r (x : F.t array) =
    let acc = ref F.zero in
    iter_row m r (fun j v -> acc := F.add !acc (F.mul v x.(j)));
    !acc

  (* Two-pass CSR transpose: counting sort by column, stable within a
     column, so transposed rows come out sorted by (old) row index. *)
  let transpose m =
    let total = nnz m in
    let rptr = Array.make (m.ncols + 1) 0 in
    for k = 0 to total - 1 do
      rptr.(m.cidx.(k) + 1) <- rptr.(m.cidx.(k) + 1) + 1
    done;
    for j = 1 to m.ncols do
      rptr.(j) <- rptr.(j) + rptr.(j - 1)
    done;
    let fill = Array.copy rptr in
    let cidx = Array.make total 0 and vals = Array.make total F.zero in
    for r = 0 to m.nrows - 1 do
      for k = m.rptr.(r) to m.rptr.(r + 1) - 1 do
        let j = m.cidx.(k) in
        cidx.(fill.(j)) <- r;
        vals.(fill.(j)) <- m.vals.(k);
        fill.(j) <- fill.(j) + 1
      done
    done;
    { nrows = m.ncols; ncols = m.nrows; rptr; cidx; vals }

  (* Scatter row [r] into a dense vector (previously cleared). *)
  let scatter_row m r (d : F.t array) = iter_row m r (fun j v -> d.(j) <- v)
end
