(** Compressed-sparse-row matrices over a simplex {!Field.S}.

    The revised simplex stores the standard-form constraint matrix this
    way — once row-major (as built from the constraint list) and once
    transposed, so both row sweeps and column extraction are O(nnz of
    the slice).  IP-1/IP-3 relaxations are extremely sparse (each
    column touches one laminar chain), which is where the revised
    engine's per-pivot advantage over the dense tableau comes from. *)

module Make (F : Field.S) : sig
  type t

  val of_rows : nrows:int -> ncols:int -> (int * F.t) list array -> t
  (** Build from per-row [(column, coefficient)] lists.  Duplicate
      column entries are summed (like the dense solver's densify pass)
      and entries whose sum is zero under [F.is_zero] are dropped.
      Raises [Invalid_argument] on out-of-range columns. *)

  val nrows : t -> int
  val ncols : t -> int
  val nnz : t -> int

  val iter_row : t -> int -> (int -> F.t -> unit) -> unit
  (** Iterate one row's [(column, value)] entries in column order. *)

  val fold_row : t -> int -> ('a -> int -> F.t -> 'a) -> 'a -> 'a
  val row_nnz : t -> int -> int

  val dot_row : t -> int -> F.t array -> F.t
  (** Dot product of a row with a dense vector. *)

  val transpose : t -> t
  (** CSC view as the CSR of the transpose; entries of each transposed
      row are sorted by original row index. *)

  val scatter_row : t -> int -> F.t array -> unit
  (** Write one row's entries into a dense vector (caller clears). *)
end
