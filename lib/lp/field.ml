(** Ordered-field abstraction for the simplex solver.

    The solver is a functor over this signature so the same code runs in
    two regimes: certified exact arithmetic over {!Hs_numeric.Q} (used for
    all correctness-bearing results) and fast floating point with an
    epsilon tolerance (used only for timing comparisons, experiment F3). *)

module type S = sig
  type t

  val name : string
  (** Human-readable instance name ("exact-Q" / "float"). *)

  val zero : t
  val one : t

  val of_int : int -> t
  val of_q : Hs_numeric.Q.t -> t

  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t

  val div : t -> t -> t
  (** Raises [Division_by_zero] on a zero divisor. *)

  val neg : t -> t

  val compare : t -> t -> int
  (** Total order; exact for {!Exact}, tolerance-free for {!Float} (the
      tolerance enters only through {!sign} and {!is_zero}). *)

  val sign : t -> int
  (** [-1], [0] or [1]; zero within tolerance counts as [0]. *)

  val is_zero : t -> bool

  val to_float : t -> float
  val to_string : t -> string

  val exact : bool
  (** Whether arithmetic is exact.  Gates paths that are only sound when
      verification happens in the same field, e.g. promoting a float
      pre-solve's basis guess to an exact certification. *)
end

(** Exact rational instance: every comparison is certified. *)
module Exact : S with type t = Hs_numeric.Q.t = struct
  module Q = Hs_numeric.Q

  type t = Q.t

  let name = "exact-Q"
  let zero = Q.zero
  let one = Q.one
  let of_int = Q.of_int
  let of_q q = q
  let add = Q.add
  let sub = Q.sub
  let mul = Q.mul
  let div = Q.div
  let neg = Q.neg
  let compare = Q.compare
  let sign = Q.sign
  let is_zero = Q.is_zero
  let to_float = Q.to_float
  let to_string = Q.to_string
  let exact = true
end

(** Floating-point instance with a fixed absolute tolerance.  Only used
    for speed benchmarks; never for correctness claims. *)
module Float : S with type t = float = struct
  type t = float

  let name = "float"
  let eps = 1e-9
  let zero = 0.
  let one = 1.
  let of_int = float_of_int
  let of_q = Hs_numeric.Q.to_float
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )

  let div a b = if b = 0. then raise Division_by_zero else a /. b

  let neg x = -.x
  let compare = Float.compare
  let sign x = if Float.abs x <= eps then 0 else if x > 0. then 1 else -1
  let is_zero x = Float.abs x <= eps
  let to_float x = x
  let to_string = string_of_float
  let exact = false
end
