(** Process-wide LP engine selection.

    Two interchangeable simplex engines live in this library: the dense
    two-phase tableau ({!Simplex}, the historical implementation, kept
    as the differential oracle) and the sparse revised simplex
    ({!Revised}, the default).  Both run the same pivot rules over the
    same standard form, so with {!Field.Exact} they follow identical
    pivot trajectories on non-degenerate-row problems and return
    identical solutions — the CLI output is byte-identical either way.

    The selection is a process-wide default consulted by the public
    entry points of {!Simplex.Make}; the CLI's [--lp-engine] flag sets
    it once at startup. *)

type t = Dense | Sparse

val set : t -> unit
val get : unit -> t
(** The current engine; initially {!Sparse}. *)

val set_presolve : bool -> unit

val presolve_enabled : unit -> bool
(** Whether exact feasibility solves may first guess a basis with a
    floating-point revised simplex and promote it to exact Q (the guess
    is always re-verified exactly; a float "infeasible" is never
    trusted).  Off by default; the CLI's [--lp-presolve] enables it. *)

val to_string : t -> string

val of_string : string -> t option
(** ["dense"] / ["sparse"]. *)

val with_engine : t -> (unit -> 'a) -> 'a
(** Run a thunk under a temporary engine selection, restoring the
    previous one afterwards (exception-safe).  Used by the differential
    tests to query both engines side by side. *)
