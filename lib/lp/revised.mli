(** Sparse revised simplex over {!Sparse} CSR matrices with a
    product-form eta file and warm-startable bases.

    Pivot rules (standard form, entering/leaving selection, tie-breaks,
    degeneracy policy, budget charging) deliberately mirror the dense
    tableau in {!Simplex}: with {!Field.Exact} both engines walk the
    same pivot trajectory and return the same vertex, which is what the
    differential suite in [test/test_revised.ml] checks.  The addition
    over the dense oracle is the basis lifecycle: {!Make.feasible_basis}
    returns a structural {!Basis.t} descriptor that a later solve on a
    similar problem can pass back as [?warm].  Proposed bases are
    re-factorised and re-verified in the solver's own field — dependent
    or stale entries are repaired, infeasible proposals rejected — so a
    bad hint costs pivots, never correctness. *)

module Make (F : Field.S) : sig
  type solution = { x : F.t array; objective : F.t; basic : bool array }
  type result = Optimal of solution | Infeasible | Unbounded
  type pricing = Bland | Dantzig
  type feasibility = Feasible of solution | Infeasible_certificate of F.t array

  type certified = { primal : solution; duals : F.t array }

  type certified_result =
    | Certified_optimal of certified
    | Certified_infeasible of F.t array
    | Certified_unbounded

  val solve :
    ?pricing:pricing ->
    ?budget:Pivot_budget.t ->
    ?on_stall:[ `Bland | `Fail ] ->
    ?maximize:bool ->
    ?warm:Basis.t ->
    F.t Lp_problem.t ->
    result
  (** Two-phase revised simplex (minimising by default).  An accepted
      [?warm] basis skips phase 1; a rejected one falls back to a cold
      start.  May raise {!Pivot_budget.Pivot_limit} or
      {!Pivot_budget.Stall} exactly as the dense engine does. *)

  val feasible :
    ?pricing:pricing ->
    ?budget:Pivot_budget.t ->
    ?on_stall:[ `Bland | `Fail ] ->
    ?warm:Basis.t ->
    F.t Lp_problem.t ->
    solution option

  val feasible_basis :
    ?pricing:pricing ->
    ?budget:Pivot_budget.t ->
    ?on_stall:[ `Bland | `Fail ] ->
    ?warm:Basis.t ->
    F.t Lp_problem.t ->
    (solution * Basis.t) option
  (** Like {!feasible} but also returns the optimal basis as a
      field-independent descriptor for warm-starting later solves. *)

  val feasible_certified :
    ?pricing:pricing ->
    ?budget:Pivot_budget.t ->
    ?on_stall:[ `Bland | `Fail ] ->
    F.t Lp_problem.t ->
    feasibility
  (** Feasibility with a Farkas infeasibility certificate, mirroring
      the dense engine's [feasible_certified]. *)

  val solve_certified : F.t Lp_problem.t -> certified_result
  (** Unbudgeted certified solve (minimisation) returning optimal duals
      or a Farkas certificate. *)
end
