(** Two-phase primal simplex with Bland's anti-cycling rule.

    Functorised over {!Field.S}: with {!Field.Exact} every answer
    (feasible / infeasible / optimal value) is certified by exact rational
    arithmetic, which is what the binary search of Theorem V.2 and the
    iterative-rounding engine of Section VI rely on.

    Solutions returned are {e basic} feasible solutions (vertices of the
    standard-form polyhedron): the Lenstra–Shmoys–Tardos rounding step
    depends on this to bound the fractional support.

    Since the sparse revised engine landed, this module is the single
    dispatch point for both LP engines: every public solver entry
    consults {!Engine} and runs either the dense tableau below (the
    differential oracle) or {!Revised} (the default).  With
    {!Field.Exact} the engines follow identical pivot trajectories, so
    budgets, stalls and certificates behave the same either way. *)

type budget = Pivot_budget.t = {
  mutable pivots_left : int;
  total : int;  (** the initial allowance, for consumed-vs-allotted reporting *)
}
(** A deterministic pivot allowance, shared by every solver call that
    receives it: each pivot decrements the counter, and a solve attempted
    with an empty budget raises {!Pivot_limit}.  Field-independent, so
    one budget can meter a whole pipeline of LP solves. *)

val budget : int -> budget

val consumed : budget -> int
(** Pivots spent so far: [total - pivots_left]. *)

exception Pivot_limit
(** Raised mid-solve when the supplied {!budget} runs out. *)

exception Stall
(** Raised instead of the silent Bland fallback when a solve is run with
    [~on_stall:`Fail] and Dantzig pricing exceeds the degenerate-pivot
    threshold. *)

module Make (F : Field.S) : sig
  type solution = {
    x : F.t array;  (** values of the original decision variables *)
    objective : F.t;  (** objective value at [x] *)
    basic : bool array;  (** [basic.(v)] iff variable [v] is basic *)
  }

  type result = Optimal of solution | Infeasible | Unbounded

  type pricing =
    | Bland  (** smallest eligible index — anti-cycling, more pivots *)
    | Dantzig
        (** most negative reduced cost — the default; falls back to
            Bland permanently after a run of degenerate pivots, so
            termination is still guaranteed *)

  val solve :
    ?pricing:pricing ->
    ?budget:budget ->
    ?on_stall:[ `Bland | `Fail ] ->
    ?maximize:bool ->
    F.t Lp_problem.t ->
    result
  (** Minimises the objective by default.  [budget] meters pivots
      (raising {!Pivot_limit} when exhausted); [on_stall] selects the
      degeneracy response (default [`Bland], the silent rule switch). *)

  val feasible :
    ?pricing:pricing ->
    ?budget:budget ->
    ?on_stall:[ `Bland | `Fail ] ->
    F.t Lp_problem.t ->
    solution option
  (** Phase-1 only: [Some] basic feasible solution, or [None].  The
      problem's objective is ignored. *)

  val feasible_basis :
    ?pricing:pricing ->
    ?budget:budget ->
    ?on_stall:[ `Bland | `Fail ] ->
    ?warm:Basis.t ->
    F.t Lp_problem.t ->
    (solution * Basis.t) option
  (** Like {!feasible}, additionally returning the optimal basis as a
      structural {!Basis.t} descriptor.  Under the sparse engine a later
      solve on a similar problem can pass the descriptor back as
      [?warm]: the proposal is re-factorised and re-verified in the
      solver's field — accepted hints skip phase 1 entirely, stale or
      corrupted ones are repaired or rejected (never trusted), so the
      verdict and solution are unaffected by hint quality.  With
      [--lp-presolve] (see {!Engine.set_presolve}) an exact-field solve
      first runs a float revised solve and uses {e its} basis as the
      hint.  The dense oracle ignores [?warm] and always solves cold. *)

  type feasibility =
    | Feasible of solution
    | Infeasible_certificate of F.t array
        (** A Farkas witness [y], one entry per constraint in declaration
            order: [y] respects the row senses ([y_i ≤ 0] for ≤ rows,
            [y_i ≥ 0] for ≥ rows), prices every variable column
            non-positively and the right-hand side positively — so no
            [x ≥ 0] can satisfy the system.  With {!Field.Exact} this is
            a machine-checkable proof of infeasibility. *)

  val feasible_certified :
    ?pricing:pricing ->
    ?budget:budget ->
    ?on_stall:[ `Bland | `Fail ] ->
    F.t Lp_problem.t ->
    feasibility
  (** Like {!feasible} but returns the Farkas certificate on the
      infeasible side (recovered from the phase-1 duals). *)

  val check_farkas : F.t Lp_problem.t -> F.t array -> bool
  (** Independent verification of a certificate against the original
      problem statement. *)

  (** {1 Optimality certificates}

      With {!Field.Exact}, a [Certified_optimal] result is a
      machine-checkable proof: the primal point is feasible, the dual
      multipliers are dual-feasible, and strong duality [cᵀx = bᵀy]
      pins the value. *)

  type certified = {
    primal : solution;
    duals : F.t array;  (** one multiplier per constraint, in order *)
  }

  type certified_result =
    | Certified_optimal of certified
    | Certified_infeasible of F.t array  (** Farkas witness, as above *)
    | Certified_unbounded

  val solve_certified : F.t Lp_problem.t -> certified_result
  (** Minimisation only. *)

  val check_optimal : F.t Lp_problem.t -> certified -> bool
  (** Verify a {!certified} optimum against the original problem:
      primal feasibility, dual feasibility (row-sense signs and
      [Aᵀy ≤ c]) and strong duality. *)
end
