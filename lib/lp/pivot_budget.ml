(* Shared pivot metering and LP telemetry cells; see pivot_budget.mli. *)

type t = { mutable pivots_left : int; total : int }

let budget n = { pivots_left = n; total = n }
let consumed b = b.total - b.pivots_left

exception Pivot_limit
exception Stall

(* Telemetry (Hs_obs): metric cells are registered once here, outside
   every functor, so the exact and float instantiations of both engines
   share them. *)
module Obs = struct
  module M = Hs_obs.Metrics

  let pivots = M.counter "simplex.pivots"
  let degenerate = M.counter "simplex.degenerate_pivots"
  let solves = M.counter "simplex.solves"

  let pivots_per_solve =
    M.histogram ~buckets:[ 10; 30; 100; 300; 1_000; 10_000 ] "simplex.pivots_per_solve"

  (* Warm-start accounting of the revised engine: [hits] counts proposed
     bases accepted after exact re-verification (phase 1 skipped),
     [misses] proposals rejected (fell back to a cold phase 1), and
     [repairs] basis slots that had to be rebuilt — dropped dependent or
     out-of-range columns plus unit-column completions. *)
  let warm_hits = M.counter "lp.warm_start.hits"
  let warm_misses = M.counter "lp.warm_start.misses"
  let warm_repairs = M.counter "lp.warm_start.repairs"

  (* Float pre-solve runs feeding basis guesses to the exact engine. *)
  let presolve_guesses = M.counter "lp.presolve.guesses"
end

(* Charge one pivot: the metrics counter and the budget meter decrement
   at the same site, so `simplex.pivots` always equals the consumed
   allowance.  Both engines pivot through this function. *)
let charge budget =
  (match budget with
  | None -> ()
  | Some b ->
      if b.pivots_left <= 0 then raise Pivot_limit
      else b.pivots_left <- b.pivots_left - 1);
  Hs_obs.Metrics.incr Obs.pivots
