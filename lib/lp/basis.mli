(** Engine- and field-independent simplex basis descriptors.

    A basis is described structurally — by which columns of the
    standard form are basic — rather than numerically, so a descriptor
    saved from one solve can be proposed to a {e different} (but
    similar) problem: the revised engine re-factorises the proposed
    columns from scratch, silently drops entries that no longer exist
    or are linearly dependent, and completes the basis with unit
    columns (this is the repair path).  A corrupted or stale descriptor
    can therefore cost pivots but never correctness. *)

type entry =
  | Var of int  (** original decision variable [v] is basic *)
  | Aux of int
      (** the auxiliary (slack or surplus) column of constraint row [i]
          — in declaration order of the problem — is basic *)

type t = entry list
(** Basic columns of a standard-form basis, at most one per row.
    Artificial columns are never recorded: a redundant row whose
    artificial stayed basic at zero is simply omitted and re-repaired
    on load. *)

val normalize : t -> t
(** Sorted, duplicate-free form (load order is canonicalised anyway). *)

val to_string : t -> string
(** Diagnostic rendering, e.g. ["x0 x3 s1"]. *)
