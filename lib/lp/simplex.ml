(* Dense two-phase tableau simplex.

   Conventions:
   - columns [0 .. nvars-1]            original variables
   - columns [nvars .. art_start-1]    slack / surplus variables
   - columns [art_start .. ncols-1]    artificial variables (phase 1 only)
   - each row array has length ncols+1, the last entry being the rhs
   - the cost row has the same length; its last entry holds the negated
     current objective value and is updated by the same pivot operations.

   Pricing: Dantzig's rule (most negative reduced cost) by default, with
   a permanent switch to Bland's rule after a run of degenerate pivots;
   the leaving row always follows Bland's tie-breaking.  Since Bland's
   rule terminates from any basis, the combination terminates even on
   degenerate tableaus while keeping Dantzig's practical pivot counts. *)

(* Budgets, exceptions and metric cells live in {!Pivot_budget} so the
   sparse revised engine can share them; re-exported here under their
   historical names. *)
type budget = Pivot_budget.t = { mutable pivots_left : int; total : int }

let budget = Pivot_budget.budget
let consumed = Pivot_budget.consumed

exception Pivot_limit = Pivot_budget.Pivot_limit
exception Stall = Pivot_budget.Stall

module Obs = Pivot_budget.Obs

module Make (F : Field.S) = struct
  type solution = { x : F.t array; objective : F.t; basic : bool array }
  type result = Optimal of solution | Infeasible | Unbounded

  type tableau = {
    mutable rows : F.t array array;
    mutable basis : int array;
    ncols : int;
    nvars : int;
    art_start : int;
    row_info : row_info array;
        (* per original constraint, in declaration order: how it was
           normalised and which auxiliary columns it received — used to
           recover dual (Farkas) values from the phase-1 cost row *)
  }

  and row_info = {
    flipped : bool;  (* the row was negated to make its rhs non-negative *)
    surplus : int option;  (* column of a -1 slack (>= rows) *)
    slack : int option;  (* column of a +1 slack (<= rows) *)
    art : int option;  (* column of the artificial, if any *)
  }

  let pivot t cost ~row ~col =
    let prow = t.rows.(row) in
    let piv = prow.(col) in
    for j = 0 to t.ncols do
      prow.(j) <- F.div prow.(j) piv
    done;
    let eliminate r =
      if r != prow then begin
        let f = r.(col) in
        if F.sign f <> 0 then
          for j = 0 to t.ncols do
            r.(j) <- F.sub r.(j) (F.mul f prow.(j))
          done
      end
    in
    Array.iter eliminate t.rows;
    eliminate cost;
    t.basis.(row) <- col

  type pricing = Bland | Dantzig

  (* Entering rules over the allowed column range: Bland picks the
     smallest eligible index (anti-cycling), Dantzig the most negative
     reduced cost (fewer pivots in practice). *)
  let entering pricing cost ~max_col =
    match pricing with
    | Bland ->
        let rec go j =
          if j >= max_col then None
          else if F.sign cost.(j) < 0 then Some j
          else go (j + 1)
        in
        go 0
    | Dantzig ->
        let best = ref None in
        for j = 0 to max_col - 1 do
          if F.sign cost.(j) < 0 then
            match !best with
            | None -> best := Some j
            | Some b -> if F.compare cost.(j) cost.(b) < 0 then best := Some j
        done;
        !best

  (* Bland leaving rule: minimum ratio, ties by smallest basic column. *)
  let leaving t ~col =
    let best = ref None in
    Array.iteri
      (fun r row ->
        if F.sign row.(col) > 0 then begin
          let ratio = F.div row.(t.ncols) row.(col) in
          match !best with
          | None -> best := Some (r, ratio)
          | Some (br, bratio) ->
              let c = F.compare ratio bratio in
              if c < 0 || (c = 0 && t.basis.(r) < t.basis.(br)) then
                best := Some (r, ratio)
        end)
      t.rows;
    Option.map fst !best

  (* Dantzig pricing does not terminate on its own under degeneracy; we
     count consecutive zero-progress (degenerate) pivots and fall back to
     Bland's rule permanently once they exceed a threshold, which
     guarantees termination from any basis.  [on_stall] picks what
     happens at the threshold: [`Bland] switches rules silently (the
     historical behaviour), [`Fail] raises {!Stall} so the caller can
     restart the whole solve under Bland's rule explicitly.  [budget], if
     given, is decremented once per pivot across every call sharing it;
     {!Pivot_limit} is raised when it runs dry. *)
  let optimize ?(pricing = Dantzig) ?budget ?(on_stall = `Bland) t cost ~max_col =
    let charge () = Pivot_budget.charge budget in
    let degenerate_limit = (2 * t.ncols) + 16 in
    let rec go pricing degenerate =
      match entering pricing cost ~max_col with
      | None -> `Optimal
      | Some col -> (
          match leaving t ~col with
          | None -> `Unbounded
          | Some row ->
              let zero_progress = F.sign t.rows.(row).(t.ncols) = 0 in
              charge ();
              if zero_progress then Hs_obs.Metrics.incr Obs.degenerate;
              pivot t cost ~row ~col;
              if pricing = Bland then go Bland 0
              else if zero_progress then
                if degenerate + 1 > degenerate_limit then
                  match on_stall with `Bland -> go Bland 0 | `Fail -> raise Stall
                else go pricing (degenerate + 1)
              else go pricing 0)
    in
    go pricing 0

  (* Densify a sparse term list, summing duplicate variable entries. *)
  let densify nvars terms =
    let a = Array.make nvars F.zero in
    List.iter (fun (v, c) -> a.(v) <- F.add a.(v) c) terms;
    a

  let build (p : F.t Lp_problem.t) =
    let open Lp_problem in
    let nvars = p.nvars in
    let raw =
      List.map
        (fun c ->
          let coeffs = densify nvars c.terms in
          (* Ensure a non-negative rhs, flipping the relation as needed. *)
          if F.sign c.rhs < 0 then begin
            Array.iteri (fun i x -> coeffs.(i) <- F.neg x) coeffs;
            let rel = match c.rel with Le -> Ge | Ge -> Le | Eq -> Eq in
            (coeffs, rel, F.neg c.rhs, true)
          end
          else (coeffs, c.rel, c.rhs, false))
        p.constrs
    in
    let nrows = List.length raw in
    let nslack =
      List.fold_left
        (fun acc (_, rel, _, _) -> match rel with Le | Ge -> acc + 1 | Eq -> acc)
        0 raw
    in
    let nart =
      List.fold_left
        (fun acc (_, rel, _, _) -> match rel with Ge | Eq -> acc + 1 | Le -> acc)
        0 raw
    in
    let art_start = nvars + nslack in
    let ncols = art_start + nart in
    let rows = Array.init nrows (fun _ -> Array.make (ncols + 1) F.zero) in
    let basis = Array.make nrows (-1) in
    let row_info =
      Array.make nrows { flipped = false; surplus = None; slack = None; art = None }
    in
    let next_slack = ref nvars and next_art = ref art_start in
    List.iteri
      (fun r (coeffs, rel, rhs, flipped) ->
        let row = rows.(r) in
        Array.blit coeffs 0 row 0 nvars;
        row.(ncols) <- rhs;
        (match rel with
        | Lp_problem.Le ->
            row.(!next_slack) <- F.one;
            basis.(r) <- !next_slack;
            row_info.(r) <- { flipped; surplus = None; slack = Some !next_slack; art = None };
            incr next_slack
        | Lp_problem.Ge ->
            row.(!next_slack) <- F.neg F.one;
            row_info.(r) <- { flipped; surplus = Some !next_slack; slack = None; art = None };
            incr next_slack;
            row.(!next_art) <- F.one;
            basis.(r) <- !next_art;
            row_info.(r) <- { row_info.(r) with art = Some !next_art };
            incr next_art
        | Lp_problem.Eq ->
            row.(!next_art) <- F.one;
            basis.(r) <- !next_art;
            row_info.(r) <- { flipped; surplus = None; slack = None; art = Some !next_art };
            incr next_art))
      raw;
    { rows; basis; ncols; nvars; art_start; row_info }

  (* Phase 1: minimise the sum of artificial variables. *)
  let phase1 ?pricing ?budget ?on_stall t =
    let cost = Array.make (t.ncols + 1) F.zero in
    for j = t.art_start to t.ncols - 1 do
      cost.(j) <- F.one
    done;
    (* Canonicalise: basic artificial columns must have zero reduced cost. *)
    Array.iteri
      (fun r b ->
        if b >= t.art_start then
          let row = t.rows.(r) in
          for j = 0 to t.ncols do
            cost.(j) <- F.sub cost.(j) row.(j)
          done)
      t.basis;
    match optimize ?pricing ?budget ?on_stall t cost ~max_col:t.ncols with
    | `Unbounded ->
        (* The phase-1 objective is bounded below by zero. *)
        assert false
    | `Optimal ->
        (* Objective value is -cost.(ncols). *)
        (F.sign (F.neg cost.(t.ncols)) = 0, cost)

  (* Recover the phase-1 dual values (one per original constraint) from
     the final reduced-cost row: for slack/surplus columns the original
     cost is 0, so redcost = ∓y; for artificial columns it is 1, so
     redcost = 1 - y.  Flipped rows get their dual negated back.  When
     the phase-1 optimum is positive, this vector is a Farkas witness of
     primal infeasibility (weak duality gives yᵀb > 0). *)
  let farkas_of_phase1 t cost =
    Array.map
      (fun info ->
        let y =
          match (info.surplus, info.slack, info.art) with
          | Some col, _, _ -> cost.(col)
          | _, Some col, _ -> F.neg cost.(col)
          | _, _, Some col -> F.sub F.one cost.(col)
          | None, None, None -> assert false
        in
        if info.flipped then F.neg y else y)
      t.row_info

  (* Remove artificial variables from the basis; delete redundant rows. *)
  let drive_out_artificials t cost =
    let keep = Array.make (Array.length t.rows) true in
    Array.iteri
      (fun r b ->
        if b >= t.art_start then begin
          let row = t.rows.(r) in
          let rec find j =
            if j >= t.art_start then None
            else if F.sign row.(j) <> 0 then Some j
            else find (j + 1)
          in
          match find 0 with
          | Some col -> pivot t cost ~row:r ~col
          | None -> keep.(r) <- false (* redundant constraint *)
        end)
      t.basis;
    if Array.exists not keep then begin
      let rows = ref [] and basis = ref [] in
      Array.iteri
        (fun r row ->
          if keep.(r) then begin
            rows := row :: !rows;
            basis := t.basis.(r) :: !basis
          end)
        t.rows;
      t.rows <- Array.of_list (List.rev !rows);
      t.basis <- Array.of_list (List.rev !basis)
    end

  let extract t ~objective =
    let x = Array.make t.nvars F.zero in
    let basic = Array.make t.nvars false in
    Array.iteri
      (fun r b ->
        if b < t.nvars then begin
          x.(b) <- t.rows.(r).(t.ncols);
          basic.(b) <- true
        end)
      t.basis;
    { x; objective; basic }

  (* Per-solve telemetry: one span per public solver entry and the
     pivots-per-solve histogram (delta of the shared pivot counter).
     Exception-safe so an exhausted budget still records the partial
     solve. *)
  let instrumented ~what (p : F.t Lp_problem.t) f =
    Hs_obs.Metrics.incr Obs.solves;
    let before = Hs_obs.Metrics.value Obs.pivots in
    let observe () =
      Hs_obs.Metrics.observe Obs.pivots_per_solve (Hs_obs.Metrics.value Obs.pivots - before)
    in
    Hs_obs.Tracer.with_span ~cat:"simplex"
      ~args:
        [
          ("what", Hs_obs.Tracer.Str what);
          ("nvars", Hs_obs.Tracer.Int p.Lp_problem.nvars);
          ("rows", Hs_obs.Tracer.Int (List.length p.Lp_problem.constrs));
        ]
      "simplex.solve"
      (fun () -> Fun.protect ~finally:observe f)

  (* ---- sparse engine bridge ---------------------------------------

     Both engines sit behind the same public entry points; {!Engine}
     picks which one actually pivots.  All the instrumentation (spans,
     solve counters, pivot histograms) stays on this side of the
     dispatch so the two engines are observed identically. *)

  module R = Revised.Make (F)
  module RFloat = Revised.Make (Field.Float)

  let to_rpricing = function Bland -> R.Bland | Dantzig -> R.Dantzig

  let of_rsolution (s : R.solution) =
    { x = s.R.x; objective = s.R.objective; basic = s.R.basic }

  (* Float pre-solve: guess the optimal basis numerically and promote it
     to the exact field as a warm-start hint.  The guess is re-verified
     by the exact engine's warm loader, so float noise costs pivots,
     never correctness — in particular a float "infeasible" is never
     trusted (we just keep the caller's own hint). *)
  let presolve_hint (p : F.t Lp_problem.t) warm =
    Hs_obs.Metrics.incr Pivot_budget.Obs.presolve_guesses;
    let fp =
      {
        Lp_problem.nvars = p.Lp_problem.nvars;
        objective = [];
        constrs =
          List.map
            (fun (c : F.t Lp_problem.constr) ->
              {
                Lp_problem.cname = c.Lp_problem.cname;
                terms =
                  List.map (fun (v, k) -> (v, F.to_float k)) c.Lp_problem.terms;
                rel = c.Lp_problem.rel;
                rhs = F.to_float c.Lp_problem.rhs;
              })
            p.Lp_problem.constrs;
      }
    in
    match RFloat.feasible_basis ?warm fp with
    | Some (_, basis) -> Some basis
    | None -> warm
    | exception Division_by_zero -> warm

  let dense_solve ?pricing ?budget ?on_stall ~maximize (p : F.t Lp_problem.t) =
    let p =
      if maximize then
        { p with Lp_problem.objective = List.map (fun (v, c) -> (v, F.neg c)) p.Lp_problem.objective }
      else p
    in
    let t = build p in
    if not (fst (phase1 ?pricing ?budget ?on_stall t)) then Infeasible
    else begin
      let cost = Array.make (t.ncols + 1) F.zero in
      List.iter
        (fun (v, c) -> cost.(v) <- F.add cost.(v) c)
        p.Lp_problem.objective;
      (* Canonicalise with respect to the phase-1 basis. *)
      drive_out_artificials t cost;
      Array.iteri
        (fun r b ->
          if F.sign cost.(b) <> 0 then begin
            let row = t.rows.(r) in
            let f = cost.(b) in
            for j = 0 to t.ncols do
              cost.(j) <- F.sub cost.(j) (F.mul f row.(j))
            done
          end)
        t.basis;
      match optimize ?pricing ?budget ?on_stall t cost ~max_col:t.art_start with
      | `Unbounded -> Unbounded
      | `Optimal ->
          let obj = F.neg cost.(t.ncols) in
          let obj = if maximize then F.neg obj else obj in
          Optimal (extract t ~objective:obj)
    end

  let solve ?pricing ?budget ?on_stall ?(maximize = false) (p : F.t Lp_problem.t) =
    instrumented ~what:"solve" p @@ fun () ->
    match Engine.get () with
    | Engine.Dense -> dense_solve ?pricing ?budget ?on_stall ~maximize p
    | Engine.Sparse -> (
        match
          R.solve ?pricing:(Option.map to_rpricing pricing) ?budget ?on_stall
            ~maximize p
        with
        | R.Optimal s -> Optimal (of_rsolution s)
        | R.Infeasible -> Infeasible
        | R.Unbounded -> Unbounded)

  let feasible ?pricing ?budget ?on_stall p =
    match solve ?pricing ?budget ?on_stall { p with Lp_problem.objective = [] } with
    | Optimal s -> Some s
    | Infeasible -> None
    | Unbounded -> assert false

  (* Dense twin of the revised engine's basis descriptor: read the final
     basis off the tableau (redundant rows were deleted, artificials
     cannot remain basic at a nonzero level once feasible). *)
  let dense_feasible_basis ?pricing ?budget ?on_stall (p : F.t Lp_problem.t) =
    let p = { p with Lp_problem.objective = [] } in
    let t = build p in
    if not (fst (phase1 ?pricing ?budget ?on_stall t)) then None
    else begin
      let cost = Array.make (t.ncols + 1) F.zero in
      drive_out_artificials t cost;
      let aux_owner = Array.make (Stdlib.max 1 t.ncols) (-1) in
      Array.iteri
        (fun r info ->
          (match info.surplus with Some c -> aux_owner.(c) <- r | None -> ());
          match info.slack with Some c -> aux_owner.(c) <- r | None -> ())
        t.row_info;
      let basis =
        Array.to_list t.basis
        |> List.filter_map (fun b ->
               if b < t.nvars then Some (Basis.Var b)
               else if b < t.art_start then Some (Basis.Aux aux_owner.(b))
               else None)
      in
      Some (extract t ~objective:F.zero, basis)
    end

  let feasible_basis ?pricing ?budget ?on_stall ?warm (p : F.t Lp_problem.t) =
    instrumented ~what:"feasible_basis" p @@ fun () ->
    let warm = match warm with Some [] -> None | w -> w in
    match Engine.get () with
    | Engine.Dense ->
        (* The dense oracle ignores warm hints: it exists to pin down
           cold behaviour, and its phase 1 always runs in full. *)
        dense_feasible_basis ?pricing ?budget ?on_stall p
    | Engine.Sparse -> (
        let warm =
          if Engine.presolve_enabled () && F.exact then presolve_hint p warm
          else warm
        in
        match
          R.feasible_basis ?pricing:(Option.map to_rpricing pricing) ?budget
            ?on_stall ?warm p
        with
        | Some (s, basis) -> Some (of_rsolution s, basis)
        | None -> None)

  (* Recover the phase-2 dual values from the final reduced-cost row: in
     phase 2 every auxiliary column has zero original cost, so
     redcost(aux of row i) = ∓ y_i, with flipped rows negated back. *)
  let duals_of_phase2 t cost =
    Array.map
      (fun info ->
        let y =
          match (info.surplus, info.slack, info.art) with
          | Some col, _, _ -> cost.(col)
          | _, Some col, _ -> F.neg cost.(col)
          | _, _, Some col -> F.neg cost.(col)
          | None, None, None -> assert false
        in
        if info.flipped then F.neg y else y)
      t.row_info

  type certified = {
    primal : solution;
    duals : F.t array;  (** one multiplier per constraint, in order *)
  }

  type certified_result =
    | Certified_optimal of certified
    | Certified_infeasible of F.t array
    | Certified_unbounded

  (* Like [solve] (minimisation only) but also returning the dual values
     that certify optimality. *)
  let dense_solve_certified (p : F.t Lp_problem.t) =
    let t = build p in
    let ok, cost1 = phase1 t in
    if not ok then Certified_infeasible (farkas_of_phase1 t cost1)
    else begin
      let cost = Array.make (t.ncols + 1) F.zero in
      List.iter (fun (v, c) -> cost.(v) <- F.add cost.(v) c) p.Lp_problem.objective;
      drive_out_artificials t cost;
      Array.iteri
        (fun r b ->
          if F.sign cost.(b) <> 0 then begin
            let row = t.rows.(r) in
            let f = cost.(b) in
            for j = 0 to t.ncols do
              cost.(j) <- F.sub cost.(j) (F.mul f row.(j))
            done
          end)
        t.basis;
      match optimize t cost ~max_col:t.art_start with
      | `Unbounded -> Certified_unbounded
      | `Optimal ->
          let obj = F.neg cost.(t.ncols) in
          Certified_optimal
            { primal = extract t ~objective:obj; duals = duals_of_phase2 t cost }
    end

  let solve_certified (p : F.t Lp_problem.t) =
    instrumented ~what:"solve_certified" p @@ fun () ->
    match Engine.get () with
    | Engine.Dense -> dense_solve_certified p
    | Engine.Sparse -> (
        match R.solve_certified p with
        | R.Certified_optimal c ->
            Certified_optimal
              { primal = of_rsolution c.R.primal; duals = c.R.duals }
        | R.Certified_infeasible y -> Certified_infeasible y
        | R.Certified_unbounded -> Certified_unbounded)

  (* Independent verification of an optimality certificate for the
     minimisation problem: the primal point is feasible, the duals are
     feasible for the dual LP (sign conditions per row sense and
     Aᵀy ≤ c), and strong duality holds (cᵀx = bᵀy). *)
  let check_optimal (p : F.t Lp_problem.t) (c : certified) =
    let open Lp_problem in
    let constrs = Array.of_list p.constrs in
    let x = c.primal.x and y = c.duals in
    Array.length y = Array.length constrs
    && Array.length x = p.nvars
    && Array.for_all (fun v -> F.sign v >= 0) x
    (* primal feasibility *)
    && Array.for_all2
         (fun (ct : F.t constr) _ ->
           let lhs =
             List.fold_left (fun acc (v, a) -> F.add acc (F.mul a x.(v))) F.zero ct.terms
           in
           match ct.rel with
           | Le -> F.compare lhs ct.rhs <= 0
           | Ge -> F.compare lhs ct.rhs >= 0
           | Eq -> F.sign (F.sub lhs ct.rhs) = 0)
         constrs y
    (* dual sign conditions *)
    && Array.for_all2
         (fun (ct : F.t constr) yi ->
           match ct.rel with
           | Le -> F.sign yi <= 0
           | Ge -> F.sign yi >= 0
           | Eq -> true)
         constrs y
    &&
    (* dual feasibility Aᵀy ≤ c, and strong duality cᵀx = bᵀy *)
    let col = Array.make p.nvars F.zero in
    let yb = ref F.zero in
    Array.iteri
      (fun i (ct : F.t constr) ->
        List.iter (fun (v, a) -> col.(v) <- F.add col.(v) (F.mul y.(i) a)) ct.terms;
        yb := F.add !yb (F.mul y.(i) ct.rhs))
      constrs;
    let cvec = Array.make p.nvars F.zero in
    List.iter (fun (v, cv) -> cvec.(v) <- F.add cvec.(v) cv) p.objective;
    let dual_feasible =
      Array.for_all2 (fun colv cv -> F.compare colv cv <= 0) col cvec
    in
    let cx =
      Array.to_list (Array.mapi (fun v cv -> F.mul cv x.(v)) cvec)
      |> List.fold_left F.add F.zero
    in
    dual_feasible && F.sign (F.sub cx !yb) = 0 && F.sign (F.sub cx c.primal.objective) = 0

  type feasibility = Feasible of solution | Infeasible_certificate of F.t array

  let dense_feasible_certified ?pricing ?budget ?on_stall p =
    let p = { p with Lp_problem.objective = [] } in
    let t = build p in
    let ok, cost = phase1 ?pricing ?budget ?on_stall t in
    if not ok then Infeasible_certificate (farkas_of_phase1 t cost)
    else begin
      drive_out_artificials t cost;
      Feasible (extract t ~objective:F.zero)
    end

  let feasible_certified ?pricing ?budget ?on_stall p =
    instrumented ~what:"feasible_certified" p @@ fun () ->
    match Engine.get () with
    | Engine.Dense -> dense_feasible_certified ?pricing ?budget ?on_stall p
    | Engine.Sparse -> (
        match
          R.feasible_certified ?pricing:(Option.map to_rpricing pricing) ?budget
            ?on_stall p
        with
        | R.Feasible s -> Feasible (of_rsolution s)
        | R.Infeasible_certificate y -> Infeasible_certificate y)

  (* Independent verification of a Farkas certificate: y respects the
     row-sense sign conditions, prices every variable column
     non-positively, and prices the right-hand side positively — so no
     non-negative x can satisfy the system. *)
  let check_farkas (p : F.t Lp_problem.t) (y : F.t array) =
    let open Lp_problem in
    let constrs = Array.of_list p.constrs in
    Array.length y = Array.length constrs
    && Array.for_all2
         (fun (c : F.t constr) yi ->
           match c.rel with
           | Le -> F.sign yi <= 0
           | Ge -> F.sign yi >= 0
           | Eq -> true)
         constrs y
    &&
    let col = Array.make p.nvars F.zero in
    let rhs = ref F.zero in
    Array.iteri
      (fun i (c : F.t constr) ->
        List.iter (fun (v, a) -> col.(v) <- F.add col.(v) (F.mul y.(i) a)) c.terms;
        rhs := F.add !rhs (F.mul y.(i) c.rhs))
      constrs;
    Array.for_all (fun cv -> F.sign cv <= 0) col && F.sign !rhs > 0
end
