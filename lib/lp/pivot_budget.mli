(** Deterministic pivot allowances and the LP telemetry cells, shared by
    the dense tableau ({!Simplex}) and the sparse revised engine
    ({!Revised}).  {!Simplex} re-exports the type and exceptions under
    their historical names, so existing callers are unaffected. *)

type t = { mutable pivots_left : int; total : int }

val budget : int -> t
val consumed : t -> int

exception Pivot_limit
(** Raised mid-solve when the supplied budget runs out. *)

exception Stall
(** Raised under [~on_stall:`Fail] when Dantzig pricing exceeds the
    degenerate-pivot threshold. *)

(** Shared metric cells (counters registered once per process). *)
module Obs : sig
  val pivots : Hs_obs.Metrics.counter
  val degenerate : Hs_obs.Metrics.counter
  val solves : Hs_obs.Metrics.counter
  val pivots_per_solve : Hs_obs.Metrics.histogram
  val warm_hits : Hs_obs.Metrics.counter
  val warm_misses : Hs_obs.Metrics.counter
  val warm_repairs : Hs_obs.Metrics.counter
  val presolve_guesses : Hs_obs.Metrics.counter
end

val charge : t option -> unit
(** Spend one pivot from the allowance (raising {!Pivot_limit} on an
    empty one) and bump the shared [simplex.pivots] counter — the single
    decrement site both engines use, preserving the invariant that the
    counter equals the consumed allowance. *)
