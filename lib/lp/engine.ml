(* Process-wide LP engine selection; interface documentation in engine.mli. *)

type t = Dense | Sparse

let current = ref Sparse
let presolve = ref false

let set e = current := e
let get () = !current

let set_presolve b = presolve := b
let presolve_enabled () = !presolve

let to_string = function Dense -> "dense" | Sparse -> "sparse"

let of_string = function
  | "dense" -> Some Dense
  | "sparse" -> Some Sparse
  | _ -> None

let with_engine e f =
  let saved = !current in
  current := e;
  Fun.protect ~finally:(fun () -> current := saved) f
