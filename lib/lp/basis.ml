(* Engine-independent simplex basis descriptors; see basis.mli. *)

type entry =
  | Var of int
  | Aux of int

type t = entry list

let compare_entry (a : entry) (b : entry) = Stdlib.compare a b

let normalize (b : t) = List.sort_uniq compare_entry b

let entry_to_string = function
  | Var v -> Printf.sprintf "x%d" v
  | Aux i -> Printf.sprintf "s%d" i

let to_string b = String.concat " " (List.map entry_to_string b)
