(* Sparse revised simplex with a product-form-of-the-inverse eta file.

   The pivot RULES here deliberately mirror lib/lp/simplex.ml line for
   line: the same standard form and column numbering, the same rhs
   normalisation, the same Dantzig/Bland entering rules, the same
   minimum-ratio leaving rule with ties broken by the smallest basic
   column, the same degenerate-stall accounting, and the same
   artificial drive-out at the phase boundary.  With {!Field.Exact} the
   two engines therefore walk the SAME pivot trajectory and return the
   same vertex — only the per-pivot data structure differs: instead of
   eliminating over a dense (rows × cols) tableau, each iteration does
   one BTRAN (pricing duals through the eta file), one reduced-cost
   sweep over the sparse columns, and one FTRAN (the entering
   direction), all O(nnz)-ish.  The test suite leans on the mirror:
   test/test_revised.ml compares the engines pivot for pivot.

   What the dense oracle does not have is the basis lifecycle: a solve
   can start from a structural {!Basis.t} descriptor saved from a
   previous (similar) problem.  The proposed columns are re-factorised
   from scratch; dependent or vanished entries are dropped, missing
   slots filled with unit columns, and columns basic at a negative
   value dropped and re-factored until the point is primal feasible —
   so a stale or corrupted descriptor costs pivots, never correctness.
   A recovered basis with every artificial at zero is a feasibility
   WITNESS (phase 1 is skipped entirely); one with positive artificials
   left is a warm phase-1 start that only has to drive those few out. *)

module Make (F : Field.S) = struct
  module S = Sparse.Make (F)

  type solution = { x : F.t array; objective : F.t; basic : bool array }
  type result = Optimal of solution | Infeasible | Unbounded
  type pricing = Bland | Dantzig
  type feasibility = Feasible of solution | Infeasible_certificate of F.t array

  type certified = { primal : solution; duals : F.t array }

  type certified_result =
    | Certified_optimal of certified
    | Certified_infeasible of F.t array
    | Certified_unbounded

  type row_info = {
    flipped : bool;
    surplus : int option;
    slack : int option;
    art : int option;
  }

  (* One elementary pivot matrix: applying it to a vector divides the
     pivot row by [e_piv] and eliminates the off-row entries. *)
  type eta = { e_row : int; e_piv : F.t; e_off : (int * F.t) array }

  type core = {
    cols : S.t;
        (* CSR of Aᵀ over the FULL standard form (aux and artificial
           columns included): row [j] of [cols] is column [j] of A. *)
    nrows : int;
    nvars : int;
    art_start : int;
    ncols : int;
    b : F.t array;  (* normalised (non-negative) right-hand sides *)
    row_info : row_info array;
    init_basic : int array;  (* row → its natural unit column *)
    aux_owner : int array;  (* aux column → owning row, -1 elsewhere *)
    basis : int array;  (* row → basic column *)
    in_basis : bool array;
    redundant : bool array;
        (* rows whose artificial could not be driven out — the sparse
           twin of the dense engine's row deletion; their direction
           component is identically zero in exact arithmetic, so they
           never block a ratio test *)
    xb : F.t array;  (* row → value of the basic variable *)
    mutable etas : eta array;  (* eta file, oldest first, [0, neta) live *)
    mutable neta : int;
  }

  (* ---- eta file --------------------------------------------------- *)

  let push_eta core e =
    if core.neta = Array.length core.etas then begin
      let cap = Stdlib.max 8 (2 * core.neta) in
      let bigger = Array.make cap e in
      Array.blit core.etas 0 bigger 0 core.neta;
      core.etas <- bigger
    end;
    core.etas.(core.neta) <- e;
    core.neta <- core.neta + 1

  (* FTRAN: v ← B⁻¹ v, applying the etas oldest first. *)
  let ftran core (v : F.t array) =
    for k = 0 to core.neta - 1 do
      let e = core.etas.(k) in
      let t = F.div v.(e.e_row) e.e_piv in
      v.(e.e_row) <- t;
      if F.sign t <> 0 then
        Array.iter (fun (i, dv) -> v.(i) <- F.sub v.(i) (F.mul dv t)) e.e_off
    done

  (* BTRAN: w ← B⁻ᵀ w, applying the etas newest first (transposed). *)
  let btran core (w : F.t array) =
    for k = core.neta - 1 downto 0 do
      let e = core.etas.(k) in
      let acc = ref w.(e.e_row) in
      Array.iter
        (fun (i, dv) ->
          if F.sign w.(i) <> 0 then acc := F.sub !acc (F.mul dv w.(i)))
        e.e_off;
      w.(e.e_row) <- F.div !acc e.e_piv
    done

  (* The entering column's direction d = B⁻¹ A_col. *)
  let direction core col =
    let d = Array.make core.nrows F.zero in
    S.scatter_row core.cols col d;
    ftran core d;
    d

  (* Simplex multipliers for a cost vector: y = B⁻ᵀ c_B, so that the
     reduced cost of column j is c_j − y·A_j — the quantity the dense
     tableau maintains in its cost row. *)
  let btran_costs core (cost : F.t array) =
    let y = Array.init core.nrows (fun r -> cost.(core.basis.(r))) in
    btran core y;
    y

  let reduced_cost core cost (y : F.t array) j =
    F.sub cost.(j) (S.dot_row core.cols j y)

  (* c·x at the current basis (nonbasic variables are zero). *)
  let objective_value core (cost : F.t array) =
    let acc = ref F.zero in
    for r = 0 to core.nrows - 1 do
      let c = cost.(core.basis.(r)) in
      if F.sign c <> 0 then acc := F.add !acc (F.mul c core.xb.(r))
    done;
    !acc

  (* ---- build (the dense engine's standard form, verbatim) ---------- *)

  let build (p : F.t Lp_problem.t) =
    let open Lp_problem in
    let nvars = p.nvars in
    let raw =
      List.map
        (fun c ->
          (* Ensure a non-negative rhs, flipping the relation as needed. *)
          if F.sign c.rhs < 0 then
            ( List.map (fun (v, k) -> (v, F.neg k)) c.terms,
              (match c.rel with Le -> Ge | Ge -> Le | Eq -> Eq),
              F.neg c.rhs,
              true )
          else (c.terms, c.rel, c.rhs, false))
        p.constrs
    in
    let nrows = List.length raw in
    let nslack =
      List.fold_left
        (fun acc (_, rel, _, _) -> match rel with Le | Ge -> acc + 1 | Eq -> acc)
        0 raw
    in
    let nart =
      List.fold_left
        (fun acc (_, rel, _, _) -> match rel with Ge | Eq -> acc + 1 | Le -> acc)
        0 raw
    in
    let art_start = nvars + nslack in
    let ncols = art_start + nart in
    let rows = Array.make nrows [] in
    let b = Array.make nrows F.zero in
    let row_info =
      Array.make nrows { flipped = false; surplus = None; slack = None; art = None }
    in
    let init_basic = Array.make nrows (-1) in
    let next_slack = ref nvars and next_art = ref art_start in
    List.iteri
      (fun r (terms, rel, rhs, flipped) ->
        b.(r) <- rhs;
        let aux =
          match rel with
          | Lp_problem.Le ->
              let s = !next_slack in
              incr next_slack;
              init_basic.(r) <- s;
              row_info.(r) <- { flipped; surplus = None; slack = Some s; art = None };
              [ (s, F.one) ]
          | Lp_problem.Ge ->
              let s = !next_slack in
              incr next_slack;
              let a = !next_art in
              incr next_art;
              init_basic.(r) <- a;
              row_info.(r) <- { flipped; surplus = Some s; slack = None; art = Some a };
              [ (s, F.neg F.one); (a, F.one) ]
          | Lp_problem.Eq ->
              let a = !next_art in
              incr next_art;
              init_basic.(r) <- a;
              row_info.(r) <- { flipped; surplus = None; slack = None; art = Some a };
              [ (a, F.one) ]
        in
        rows.(r) <- terms @ aux)
      raw;
    let a = S.of_rows ~nrows ~ncols rows in
    let cols = S.transpose a in
    let aux_owner = Array.make (Stdlib.max 1 ncols) (-1) in
    Array.iteri
      (fun r info ->
        (match info.surplus with Some c -> aux_owner.(c) <- r | None -> ());
        match info.slack with Some c -> aux_owner.(c) <- r | None -> ())
      row_info;
    let in_basis = Array.make (Stdlib.max 1 ncols) false in
    Array.iter (fun c -> in_basis.(c) <- true) init_basic;
    {
      cols;
      nrows;
      nvars;
      art_start;
      ncols;
      b;
      row_info;
      init_basic;
      aux_owner;
      basis = Array.copy init_basic;
      in_basis;
      redundant = Array.make (Stdlib.max 1 nrows) false;
      xb = Array.copy b;
      etas = [||];
      neta = 0;
    }

  let reset_cold core =
    core.neta <- 0;
    Array.blit core.init_basic 0 core.basis 0 core.nrows;
    Array.fill core.in_basis 0 (Array.length core.in_basis) false;
    Array.iter (fun c -> core.in_basis.(c) <- true) core.init_basic;
    Array.fill core.redundant 0 (Array.length core.redundant) false;
    Array.blit core.b 0 core.xb 0 core.nrows

  (* ---- pivoting (rules identical to the dense engine) -------------- *)

  (* Entering rules: Bland picks the smallest eligible index, Dantzig
     the most negative reduced cost with ties to the earlier column
     (strict comparison, like the dense engine).  Basic columns are
     skipped — their reduced cost is exactly zero, so the dense engine
     never selects them either. *)
  let entering pricing core cost (y : F.t array) ~max_col =
    match pricing with
    | Bland ->
        let rec go j =
          if j >= max_col then None
          else if (not core.in_basis.(j)) && F.sign (reduced_cost core cost y j) < 0
          then Some j
          else go (j + 1)
        in
        go 0
    | Dantzig ->
        let best = ref None and bestv = ref F.zero in
        for j = 0 to max_col - 1 do
          if not core.in_basis.(j) then begin
            let v = reduced_cost core cost y j in
            if F.sign v < 0 then
              match !best with
              | None ->
                  best := Some j;
                  bestv := v
              | Some _ ->
                  if F.compare v !bestv < 0 then begin
                    best := Some j;
                    bestv := v
                  end
          end
        done;
        !best

  (* Bland leaving rule: minimum ratio, ties by smallest basic column.
     Redundant rows are skipped — their direction component is zero in
     exact arithmetic anyway (the row is a combination of the others),
     matching the dense engine's row deletion. *)
  let leaving core (d : F.t array) =
    let best = ref None in
    for r = 0 to core.nrows - 1 do
      if (not core.redundant.(r)) && F.sign d.(r) > 0 then begin
        let ratio = F.div core.xb.(r) d.(r) in
        match !best with
        | None -> best := Some (r, ratio)
        | Some (br, bratio) ->
            let c = F.compare ratio bratio in
            if c < 0 || (c = 0 && core.basis.(r) < core.basis.(br)) then
              best := Some (r, ratio)
      end
    done;
    Option.map fst !best

  let pivot core ~row ~col (d : F.t array) =
    let t = F.div core.xb.(row) d.(row) in
    let off = ref [] in
    for i = core.nrows - 1 downto 0 do
      if i <> row && F.sign d.(i) <> 0 then begin
        off := (i, d.(i)) :: !off;
        if F.sign t <> 0 then core.xb.(i) <- F.sub core.xb.(i) (F.mul d.(i) t)
      end
    done;
    push_eta core { e_row = row; e_piv = d.(row); e_off = Array.of_list !off };
    core.xb.(row) <- t;
    core.in_basis.(core.basis.(row)) <- false;
    core.in_basis.(col) <- true;
    core.basis.(row) <- col

  (* The optimisation loop, with the dense engine's degeneracy policy:
     count consecutive zero-progress pivots under Dantzig pricing and
     fall back to Bland's rule permanently past the threshold ([`Bland])
     or raise {!Pivot_budget.Stall} ([`Fail]).  The budget is charged at
     the same point in the iteration as the dense engine charges. *)
  let optimize ?(pricing = Dantzig) ?budget ?(on_stall = `Bland) core cost ~max_col =
    let degenerate_limit = (2 * core.ncols) + 16 in
    let rec go pricing degenerate =
      let y = btran_costs core cost in
      match entering pricing core cost y ~max_col with
      | None -> `Optimal
      | Some col -> (
          let d = direction core col in
          match leaving core d with
          | None -> `Unbounded
          | Some row ->
              let zero_progress = F.sign core.xb.(row) = 0 in
              Pivot_budget.charge budget;
              if zero_progress then
                Hs_obs.Metrics.incr Pivot_budget.Obs.degenerate;
              pivot core ~row ~col d;
              if pricing = Bland then go Bland 0
              else if zero_progress then
                if degenerate + 1 > degenerate_limit then
                  match on_stall with
                  | `Bland -> go Bland 0
                  | `Fail -> raise Pivot_budget.Stall
                else go pricing (degenerate + 1)
              else go pricing 0)
    in
    go pricing 0

  (* Phase 1: minimise the sum of artificial variables.  Returns the
     feasibility verdict and the simplex multipliers at the optimum (the
     Farkas witness when infeasible). *)
  let phase1 ?pricing ?budget ?on_stall core =
    let cost = Array.make (Stdlib.max 1 core.ncols) F.zero in
    for j = core.art_start to core.ncols - 1 do
      cost.(j) <- F.one
    done;
    match optimize ?pricing ?budget ?on_stall core cost ~max_col:core.ncols with
    | `Unbounded ->
        (* The phase-1 objective is bounded below by zero. *)
        assert false
    | `Optimal ->
        let feasible = F.sign (objective_value core cost) = 0 in
        (feasible, btran_costs core cost)

  (* The per-row dual value with the rhs-flip undone — used both for the
     Farkas witness (phase-1 multipliers) and the optimality certificate
     (phase-2 multipliers); the dense engine recovers the same numbers
     from its final cost row. *)
  let row_duals core (y : F.t array) =
    Array.mapi
      (fun r info -> if info.flipped then F.neg y.(r) else y.(r))
      core.row_info

  (* Remove artificial variables from the basis, mirroring the dense
     engine's procedure row by row: pivot on the first structural/aux
     column with a nonzero transformed entry, else mark the row
     redundant (the dense engine deletes it).  These exchange pivots are
     free — the dense engine does not charge them either. *)
  let drive_out core =
    for r = 0 to core.nrows - 1 do
      if (not core.redundant.(r)) && core.basis.(r) >= core.art_start then begin
        let beta = Array.make core.nrows F.zero in
        beta.(r) <- F.one;
        btran core beta;
        (* beta·A_j = entry (r, j) of the current tableau *)
        let rec find j =
          if j >= core.art_start then None
          else if F.sign (S.dot_row core.cols j beta) <> 0 then Some j
          else find (j + 1)
        in
        match find 0 with
        | Some col ->
            let d = direction core col in
            pivot core ~row:r ~col d
        | None -> core.redundant.(r) <- true
      end
    done

  let extract core ~objective =
    let x = Array.make core.nvars F.zero in
    let basic = Array.make core.nvars false in
    for r = 0 to core.nrows - 1 do
      let bcol = core.basis.(r) in
      if bcol < core.nvars then begin
        x.(bcol) <- core.xb.(r);
        basic.(bcol) <- true
      end
    done;
    { x; objective; basic }

  (* ---- basis lifecycle -------------------------------------------- *)

  let describe core : Basis.t =
    let acc = ref [] in
    for r = core.nrows - 1 downto 0 do
      let bcol = core.basis.(r) in
      if bcol < core.nvars then acc := Basis.Var bcol :: !acc
      else if bcol < core.art_start then
        acc := Basis.Aux core.aux_owner.(bcol) :: !acc
    done;
    !acc

  (* Re-factorise a proposed column set from scratch: FTRAN each column
     through the partial eta file, pivot it at the unassigned row with
     the largest magnitude (ties to the smallest row), drop columns that
     come out dependent, then complete the remaining rows with their
     natural unit columns.  Because the placed columns are nonsingular
     on their pivot rows, the unit columns of the unassigned rows always
     span the rest — completion cannot fail in exact arithmetic (float
     tolerance can make it fail, in which case the caller goes cold).
     Returns [(success, repaired_slots)]. *)
  let try_basis core cols =
    core.neta <- 0;
    let assigned = Array.make (Stdlib.max 1 core.nrows) false in
    let nbasis = Array.make (Stdlib.max 1 core.nrows) (-1) in
    let placed = ref 0 in
    let place col =
      let d = Array.make core.nrows F.zero in
      S.scatter_row core.cols col d;
      ftran core d;
      let best = ref (-1) and bestm = ref 0.0 in
      for r = 0 to core.nrows - 1 do
        if (not assigned.(r)) && F.sign d.(r) <> 0 then begin
          let m = Float.abs (F.to_float d.(r)) in
          if !best < 0 || m > !bestm then begin
            best := r;
            bestm := m
          end
        end
      done;
      if !best < 0 then false
      else begin
        let r = !best in
        let off = ref [] in
        for i = core.nrows - 1 downto 0 do
          if i <> r && F.sign d.(i) <> 0 then off := (i, d.(i)) :: !off
        done;
        push_eta core { e_row = r; e_piv = d.(r); e_off = Array.of_list !off };
        assigned.(r) <- true;
        nbasis.(r) <- col;
        incr placed;
        true
      end
    in
    List.iter (fun col -> ignore (place col)) cols;
    let repairs = core.nrows - !placed in
    let progress = ref true in
    while !placed < core.nrows && !progress do
      progress := false;
      for r = 0 to core.nrows - 1 do
        if not assigned.(r) then
          if place core.init_basic.(r) then progress := true
      done
    done;
    if !placed < core.nrows then (false, repairs)
    else begin
      Array.blit nbasis 0 core.basis 0 core.nrows;
      Array.fill core.in_basis 0 (Array.length core.in_basis) false;
      Array.iter (fun c -> core.in_basis.(c) <- true) core.basis;
      Array.fill core.redundant 0 (Array.length core.redundant) false;
      Array.blit core.b 0 core.xb 0 core.nrows;
      ftran core core.xb;
      (true, repairs)
    end

  (* What a loaded basis is good for.  [Warm_witness]: x_B ≥ 0 with
     every basic artificial at zero — the basis proves feasibility
     outright and phase 1 is skipped entirely.  [Warm_start]: x_B ≥ 0
     but some artificial sits basic at a positive level (typically the
     rows a replayed event added since the basis was saved) — a legal
     primal-feasible start for phase 1, which then only has to drive
     out those few artificials instead of all of them.  [Warm_cold]:
     no primal-feasible point could be recovered from the proposal even
     after repair, and the solve falls back to the all-artificial cold
     basis. *)
  type warm_status = Warm_witness | Warm_start | Warm_cold

  let warm_classify core =
    let neg = ref false and art = ref false in
    for r = 0 to core.nrows - 1 do
      let s = F.sign core.xb.(r) in
      if s < 0 then neg := true
      else if s <> 0 && core.basis.(r) >= core.art_start then art := true
    done;
    if !neg then Warm_cold else if !art then Warm_start else Warm_witness

  (* Load a proposal, repairing it towards primal feasibility: when the
     factored basis carries negative basic values (the rhs moved under
     it — e.g. a binary-search probe at a different horizon re-scales
     the capacity rows, and B⁻¹b need not stay non-negative), drop the
     proposal columns basic at the negative rows and re-factor, letting
     those rows fall back to their natural unit columns.  Each round
     removes at least one column, and the empty proposal degenerates to
     the cold all-artificial basis with x_B = b̄ ≥ 0, so the loop always
     terminates — usually after one or two rounds, with only the few
     repaired rows left for phase 1 to clean up. *)
  let rec load_repairing core cols ~dropped =
    let ok, unplaced = try_basis core cols in
    if not ok then (Warm_cold, dropped + unplaced)
    else
      match warm_classify core with
      | (Warm_witness | Warm_start) as status -> (status, dropped + unplaced)
      | Warm_cold ->
          let offending = ref [] in
          for r = 0 to core.nrows - 1 do
            if F.sign core.xb.(r) < 0 then offending := core.basis.(r) :: !offending
          done;
          let keep = List.filter (fun c -> not (List.mem c !offending)) cols in
          if List.compare_lengths keep cols = 0 then (Warm_cold, dropped + unplaced)
          else
            load_repairing core keep
              ~dropped:(dropped + List.length cols - List.length keep)

  let try_warm core warm =
    match warm with
    | None | Some [] -> Warm_cold
    | Some proposal ->
        let cols =
          List.filter_map
            (function
              | Basis.Var v -> if v >= 0 && v < core.nvars then Some v else None
              | Basis.Aux i ->
                  if i < 0 || i >= core.nrows then None
                  else (
                    match core.row_info.(i) with
                    | { slack = Some c; _ } -> Some c
                    | { surplus = Some c; _ } -> Some c
                    | _ -> None))
            proposal
          |> List.sort_uniq Int.compare
        in
        if cols = [] then begin
          Hs_obs.Metrics.incr Pivot_budget.Obs.warm_misses;
          Warm_cold
        end
        else begin
          match load_repairing core cols ~dropped:0 with
          | (Warm_witness | Warm_start) as status, repairs ->
              Hs_obs.Metrics.incr Pivot_budget.Obs.warm_hits;
              if repairs > 0 then
                Hs_obs.Metrics.add Pivot_budget.Obs.warm_repairs repairs;
              status
          | Warm_cold, _ ->
              reset_cold core;
              Hs_obs.Metrics.incr Pivot_budget.Obs.warm_misses;
              Warm_cold
        end

  (* Feasibility via the warm proposal when it is an outright witness,
     else phase 1 — run from the warm basis when it was at least a
     valid start, from the cold all-artificial basis otherwise. *)
  let warm_or_phase1 ?pricing ?budget ?on_stall core warm =
    match try_warm core warm with
    | Warm_witness -> true
    | Warm_start | Warm_cold -> fst (phase1 ?pricing ?budget ?on_stall core)

  (* ---- public entry points ----------------------------------------- *)

  let costs_of core (objective : (int * F.t) list) =
    let cost = Array.make (Stdlib.max 1 core.ncols) F.zero in
    List.iter (fun (v, c) -> cost.(v) <- F.add cost.(v) c) objective;
    cost

  let solve ?pricing ?budget ?on_stall ?(maximize = false) ?warm
      (p : F.t Lp_problem.t) =
    let p =
      if maximize then
        {
          p with
          Lp_problem.objective =
            List.map (fun (v, c) -> (v, F.neg c)) p.Lp_problem.objective;
        }
      else p
    in
    let core = build p in
    if not (warm_or_phase1 ?pricing ?budget ?on_stall core warm) then Infeasible
    else begin
      let cost = costs_of core p.Lp_problem.objective in
      drive_out core;
      match optimize ?pricing ?budget ?on_stall core cost ~max_col:core.art_start with
      | `Unbounded -> Unbounded
      | `Optimal ->
          let obj = objective_value core cost in
          let obj = if maximize then F.neg obj else obj in
          Optimal (extract core ~objective:obj)
    end

  let feasible_basis ?pricing ?budget ?on_stall ?warm (p : F.t Lp_problem.t) =
    let p = { p with Lp_problem.objective = [] } in
    let core = build p in
    if not (warm_or_phase1 ?pricing ?budget ?on_stall core warm) then None
    else begin
      drive_out core;
      Some (extract core ~objective:F.zero, describe core)
    end

  let feasible ?pricing ?budget ?on_stall ?warm p =
    Option.map fst (feasible_basis ?pricing ?budget ?on_stall ?warm p)

  let feasible_certified ?pricing ?budget ?on_stall (p : F.t Lp_problem.t) =
    let p = { p with Lp_problem.objective = [] } in
    let core = build p in
    let ok, y = phase1 ?pricing ?budget ?on_stall core in
    if not ok then Infeasible_certificate (row_duals core y)
    else begin
      drive_out core;
      Feasible (extract core ~objective:F.zero)
    end

  let solve_certified (p : F.t Lp_problem.t) =
    let core = build p in
    let ok, y1 = phase1 core in
    if not ok then Certified_infeasible (row_duals core y1)
    else begin
      let cost = costs_of core p.Lp_problem.objective in
      drive_out core;
      match optimize core cost ~max_col:core.art_start with
      | `Unbounded -> Certified_unbounded
      | `Optimal ->
          let y = btran_costs core cost in
          Certified_optimal
            {
              primal = extract core ~objective:(objective_value core cost);
              duals = row_duals core y;
            }
    end
end
