(** Multicore sweep engine: a fixed-size [Domain] pool with a
    {e deterministic} parallel map.

    The experiment tables, the fuzz sweeps and the CLI batch solver are
    embarrassingly parallel — independent seeded work items — yet the
    output must not depend on scheduling.  {!parmap} guarantees that:

    - work items are tagged by submission index and pulled from a shared
      chunked queue (an atomic cursor), so domains load-balance freely;
    - results are reassembled {e in submission order}, so the returned
      list is identical at any job count;
    - an exception raised by [f] is captured with its backtrace and the
      raising item's index; after the sweep the {e lowest-index} failure
      is re-raised (exactly the exception sequential [List.map] would
      have surfaced first).  {!try_parmap} instead returns every
      per-item outcome, with worker provenance on the failures;
    - each worker domain accumulates {!Hs_obs} metrics and trace spans
      into its own domain-local buffers; when the pool drains, counters
      and histograms are summed into the caller's registry
      ({!Hs_obs.Metrics.merge}) and spans are absorbed tagged with the
      worker's [domain.id] ({!Hs_obs.Tracer.absorb}).  Because every
      solve threads an explicit budget and seeded RNG, a parallel
      sweep's merged snapshot is byte-identical to the sequential one.

    Jobs semantics everywhere in the CLI/bench stack: [1] (default)
    stays on the calling domain, [0] means
    [Domain.recommended_domain_count ()], [k > 1] spawns [min k n]
    workers.  Nested calls (a worker invoking {!parmap}) degrade to the
    sequential path rather than oversubscribing. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val resolve_jobs : int -> int
(** [0 → recommended_jobs ()], [k ≥ 1 → k]; raises [Invalid_argument]
    on negative values. *)

type worker_error = {
  index : int;  (** submission index of the failing item *)
  worker : int;  (** 1-based worker slot that ran it; [0] = caller *)
  exn : exn;
  backtrace : Printexc.raw_backtrace;
}

val parmap : ?chunk:int -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parmap ~jobs f items] = [List.map f items], computed on
    [min jobs (length items)] domains.  [chunk] (default 1) is the
    number of consecutive items a worker claims per queue round-trip —
    raise it for very cheap items.  If any [f] raised, the lowest-index
    exception is re-raised with its original backtrace once all workers
    have drained (telemetry of completed items is still merged). *)

val try_parmap :
  ?chunk:int -> jobs:int -> ('a -> 'b) -> 'a list -> ('b, worker_error) result list
(** Like {!parmap} but total: every item's outcome is returned in
    submission order, failures carrying worker provenance.  The
    sequential path ([jobs ≤ 1]) also evaluates every item. *)
