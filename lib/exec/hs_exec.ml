(** Deterministic domain-pool [parmap]; see the interface for the
    contract.

    Implementation notes.  The queue is an [Atomic.t] cursor over the
    item array: a worker claims [chunk] consecutive indices per
    [fetch_and_add] and writes each result into its own slot of a shared
    results array.  No slot is written twice and the main domain only
    reads after [Domain.join], whose happens-before edge publishes the
    plain (non-atomic) writes.  Determinism therefore never depends on
    scheduling: scheduling only decides {e who} computes a slot, never
    {e what} ends up in it. *)

type worker_error = {
  index : int;
  worker : int;
  exn : exn;
  backtrace : Printexc.raw_backtrace;
}

let recommended_jobs () = Domain.recommended_domain_count ()

let resolve_jobs = function
  | 0 -> recommended_jobs ()
  | k when k > 0 -> k
  | k -> invalid_arg (Printf.sprintf "Hs_exec.resolve_jobs: negative job count %d" k)

(* A worker calling back into the pool must not spawn domains of its
   own: [parmap] from inside a worker degrades to the sequential path. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let seq_try_map f items =
  List.mapi
    (fun i x ->
      match f x with
      | v -> Ok v
      | exception exn ->
          let backtrace = Printexc.get_raw_backtrace () in
          Error { index = i; worker = 0; exn; backtrace })
    items

(* Run the pool: [min jobs n] domains drain the chunked queue, then each
   returns its telemetry (metrics snapshot + trace spans) for the main
   domain to merge in worker order. *)
let run_pool ~chunk ~jobs f (input : 'a array) :
    ('b, worker_error) result option array =
  let n = Array.length input in
  let nworkers = Stdlib.min jobs n in
  let out = Array.make n None in
  let next = Atomic.make 0 in
  let tracing = Hs_obs.Tracer.enabled () in
  let cfg = Hs_obs.Tracer.config () in
  let body wid () =
    Domain.DLS.set in_worker true;
    if tracing then Hs_obs.Tracer.set_config cfg;
    let rec drain () =
      let start = Atomic.fetch_and_add next chunk in
      if start < n then begin
        let stop = Stdlib.min n (start + chunk) in
        for i = start to stop - 1 do
          out.(i) <-
            Some
              (match f input.(i) with
              | v -> Ok v
              | exception exn ->
                  let backtrace = Printexc.get_raw_backtrace () in
                  Error { index = i; worker = wid; exn; backtrace })
        done;
        drain ()
      end
    in
    drain ();
    (Hs_obs.Metrics.snapshot (), if tracing then Hs_obs.Tracer.spans () else [])
  in
  let domains = List.init nworkers (fun w -> Domain.spawn (body (w + 1))) in
  (* Join in spawn order and merge every worker's telemetry before any
     error handling, so even a failing sweep keeps its counters. *)
  let telemetry = List.map Domain.join domains in
  List.iteri
    (fun w (snap, spans) ->
      Hs_obs.Metrics.merge snap;
      if spans <> [] then Hs_obs.Tracer.absorb ~domain:(w + 1) spans)
    telemetry;
  out

let try_parmap ?(chunk = 1) ~jobs f items =
  let jobs = resolve_jobs jobs in
  let chunk = Stdlib.max 1 chunk in
  let n = List.length items in
  if jobs <= 1 || n <= 1 || Domain.DLS.get in_worker then seq_try_map f items
  else
    run_pool ~chunk ~jobs f (Array.of_list items)
    |> Array.to_list
    |> List.map (function
         | Some r -> r
         | None ->
             (* Unreachable: the cursor covers every index and join
                waited for all workers. *)
             assert false)

let parmap ?(chunk = 1) ~jobs f items =
  let jobs = resolve_jobs jobs in
  let chunk = Stdlib.max 1 chunk in
  let n = List.length items in
  if jobs <= 1 || n <= 1 || Domain.DLS.get in_worker then List.map f items
  else begin
    let out = run_pool ~chunk ~jobs f (Array.of_list items) in
    (* Surface the same exception a sequential run would have hit
       first: the lowest submission index wins, regardless of which
       worker or wall-clock order produced it. *)
    Array.iter
      (function
        | Some (Error e) -> Printexc.raise_with_backtrace e.exn e.backtrace
        | _ -> ())
      out;
    Array.to_list (Array.map (function Some (Ok v) -> v | _ -> assert false) out)
  end
