(** Execution simulator for SMP-CMP-style hierarchies (experiment F5).

    The paper folds migration overheads into the processing-time
    functions; this simulator replays a schedule against an explicit
    latency model to check the folding is conservative.  Every migration
    of a job from machine [a] to [b] stalls it for [latency a b] units;
    realised times are the longest-path relaxation of the segment
    precedence graph (machine order + job order).  With zero latencies
    the realised schedule equals the input. *)

open Hs_model

type result = {
  model_makespan : int;  (** makespan of the input schedule *)
  realised_makespan : int;  (** after charging migration latencies *)
  total_stall : int;  (** sum of charged latencies *)
  migrations_by_level : (int * int) list;
      (** (LCA height, count) aggregated; needs [~lam] *)
}

val latency_of_levels : Hs_laminar.Laminar.t -> int array -> int -> int -> int
(** [latency_of_levels lam table a b]: migrating between machines whose
    least common ancestor has height [h] costs [table.(h)] (clamped to
    the last entry); 0 for [a = b]. *)

val run :
  ?lam:Hs_laminar.Laminar.t -> Schedule.t -> latency:(int -> int -> int) -> result
(** Replay; [lam] enables the per-level migration counts. *)

(** {1 Online migration stalls}

    The online replay ({!Hs_online.Replay}) reports every migration as a
    level — the height of the smallest family set spanning the job's old
    and new homes — in its per-step [move_levels].  These fold a latency
    table over such levels, so [hsched online --latencies] charges moves
    under the same model as {!latency_of_levels}. *)

val stall_of_levels : table:int array -> int list -> int
(** Total stall: [table.(level)] per move, clamped to the last entry;
    [0] on an empty table. *)

val count_by_level : int list -> (int * int) list
(** [(level, count)] aggregation, sorted by level. *)
