(** Execution simulator for SMP-CMP-style hierarchies.

    The paper folds migration overheads into the processing-time
    functions; this simulator plays a schedule back against an explicit
    latency model to check that folding is conservative and to expose the
    paper's motivating effect (intra-CMP < inter-CMP < inter-node costs,
    experiment F5).

    Model: every migration of a job from machine [a] to machine [b]
    stalls the job for [latency a b] time units before its next segment
    may start.  Machines stay work-conserving but never reorder segments.
    Realised times are the longest-path relaxation of the precedence
    graph whose nodes are segments and whose edges are (i) consecutive
    segments on one machine and (ii) consecutive segments of one job,
    weighted by the migration latency.  With all latencies zero the
    realised schedule equals the input. *)

open Hs_model

type result = {
  model_makespan : int;  (** makespan of the input schedule *)
  realised_makespan : int;  (** after charging migration latencies *)
  total_stall : int;  (** sum of charged latencies *)
  migrations_by_level : (int * int) list;
      (** (LCA height, count) for each migration, aggregated *)
}

(** [latency_of_levels lam table] builds a latency function for a laminar
    topology: migrating between machines whose least common ancestor set
    has height [h] costs [table h] (clamped to the last entry). *)
let latency_of_levels lam (table : int array) a b =
  if a = b then 0
  else
    match Hs_laminar.Laminar.lca_level lam a b with
    | None -> (if Array.length table = 0 then 0 else table.(Array.length table - 1))
    | Some h ->
        if Array.length table = 0 then 0
        else table.(Stdlib.min h (Array.length table - 1))

let run ?(lam : Hs_laminar.Laminar.t option) (sched : Schedule.t) ~latency =
  let sched = Schedule.coalesce sched in
  let segs = Array.of_list (Schedule.segments sched) in
  let ns = Array.length segs in
  let by_start a b = compare (segs.(a).Schedule.start, a) (segs.(b).Schedule.start, b) in
  let idx = Array.init ns (fun k -> k) in
  Array.sort by_start idx;
  (* Predecessors: previous segment on the machine, previous segment of
     the job (with latency weight). *)
  let prev_on_machine = Hashtbl.create 16 and prev_of_job = Hashtbl.create 16 in
  let machine_pred = Array.make ns None and job_pred = Array.make ns None in
  Array.iter
    (fun k ->
      let s = segs.(k) in
      (match Hashtbl.find_opt prev_on_machine s.Schedule.machine with
      | Some p -> machine_pred.(k) <- Some p
      | None -> ());
      Hashtbl.replace prev_on_machine s.Schedule.machine k;
      (match Hashtbl.find_opt prev_of_job s.Schedule.job with
      | Some p -> job_pred.(k) <- Some p
      | None -> ());
      Hashtbl.replace prev_of_job s.Schedule.job k)
    idx;
  (* Longest-path start times in topological (start-time) order. *)
  let realised_stop = Array.make ns 0 in
  let total_stall = ref 0 in
  let migrations = Hashtbl.create 8 in
  Array.iter
    (fun k ->
      let s = segs.(k) in
      let ready_machine =
        match machine_pred.(k) with None -> 0 | Some p -> realised_stop.(p)
      in
      let ready_job =
        match job_pred.(k) with
        | None -> 0
        | Some p ->
            let q = segs.(p) in
            let lat =
              if q.Schedule.machine = s.Schedule.machine then 0
              else begin
                let l = latency q.Schedule.machine s.Schedule.machine in
                total_stall := !total_stall + l;
                (match lam with
                | Some lam -> (
                    match
                      Hs_laminar.Laminar.lca_level lam q.Schedule.machine s.Schedule.machine
                    with
                    | Some h ->
                        Hashtbl.replace migrations h
                          (1 + Option.value ~default:0 (Hashtbl.find_opt migrations h))
                    | None -> ())
                | None -> ());
                l
              end
            in
            realised_stop.(p) + lat
      in
      (* Segments may not start before their nominal start either (the
         scheduler's plan is a release time). *)
      let start = Stdlib.max s.Schedule.start (Stdlib.max ready_machine ready_job) in
      realised_stop.(k) <- start + (s.Schedule.stop - s.Schedule.start))
    idx;
  {
    model_makespan = Schedule.makespan sched;
    realised_makespan = Array.fold_left Stdlib.max 0 realised_stop;
    total_stall = !total_stall;
    migrations_by_level =
      Hashtbl.fold (fun h c acc -> (h, c) :: acc) migrations [] |> List.sort compare;
  }

(* Online-replay stall accounting: the per-step [move_levels] of an
   online replay already carry each migration's level (the height of the
   smallest family set spanning the old and new homes), so charging a
   latency table is a fold — no segment graph needed.  Clamping matches
   [latency_of_levels]. *)
let stall_of_levels ~table levels =
  let n = Array.length table in
  List.fold_left
    (fun acc h -> if n = 0 then acc else acc + table.(Stdlib.min h (n - 1)))
    0 levels

let count_by_level levels =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun h -> Hashtbl.replace tbl h (1 + Option.value ~default:0 (Hashtbl.find_opt tbl h)))
    levels;
  Hashtbl.fold (fun h c acc -> (h, c) :: acc) tbl [] |> List.sort compare
