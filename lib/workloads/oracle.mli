(** Property-based oracle: certified solves over seeded random
    instances, with shrinking to minimal counterexamples.

    Deterministic at any parallelism: the sweep decomposes into a fixed
    number of shards whose seeds derive from the global iteration index,
    so counts, failing seeds and shrunk witnesses are identical at any
    [jobs] level. *)

open Hs_model

val instance_of_seed : ?max_m:int -> ?max_n:int -> int -> Instance.t
(** The oracle corpus: one of the paper's topologies plus a monotone
    hierarchical fill, reproducible from the seed alone. *)

type violation = { invariant : string; witness : string }

type status =
  | Certified  (** solved and every invariant re-validated *)
  | Infeasible  (** the pipeline reported (certified) infeasibility *)
  | Violated of violation
      (** solve failed unexpectedly, or a certificate check did *)

val certify_solve : ?lp:bool -> Instance.t -> status
(** Run the exact Theorem V.2 pipeline and certify the outcome with
    {!Hs_check.Certify.outcome}. *)

type failure = {
  seed : int;
  violation : violation;  (** re-checked on the shrunk witness *)
  original : Instance.t;
  shrunk : Instance.t;  (** locally minimal, same invariant violated *)
}

type report = {
  iterations : int;
  certified : int;
  infeasible : int;
  failures : failure list;  (** in seed order, regardless of [jobs] *)
}

val run :
  ?lp:bool ->
  ?max_m:int ->
  ?max_n:int ->
  iters:int ->
  jobs:int ->
  seed:int ->
  unit ->
  report

val pp_failure : Format.formatter -> failure -> unit
