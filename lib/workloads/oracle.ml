(** The property-based oracle: solve seeded random instances with the
    exact pipeline and certify every outcome with {!Hs_check}.

    Every success is certified (the checker re-derives the invariants
    independently of the pipeline); every failure is shrunk to a locally
    minimal counterexample before being reported.  The sweep decomposes
    into a {e fixed} number of shards with seeds derived from the shard
    index, so the outcome — counts, failing seeds, shrunk witnesses — is
    identical at any [--jobs] level. *)

open Hs_model
module Certify = Hs_check.Certify
module Verdict = Hs_check.Verdict

(* Mirrors the corpus of shapes the algorithm test suites draw from:
   one of the paper's topologies, then a monotone hierarchical fill. *)
let instance_of_seed ?(max_m = 6) ?(max_n = 8) seed =
  let rng = Rng.create seed in
  let m = 1 + Rng.int rng max_m in
  let n = 1 + Rng.int rng max_n in
  let lam =
    match Rng.int rng 5 with
    | 0 -> Hs_laminar.Topology.semi_partitioned m
    | 1 -> Hs_laminar.Topology.singletons m
    | 2 ->
        let clusters =
          let rec div d = if m mod d = 0 then d else div (d - 1) in
          div (Stdlib.max 1 (Stdlib.min 3 m))
        in
        Hs_laminar.Topology.clustered ~m ~clusters
    | 3 ->
        Hs_laminar.Topology.smp_cmp ~nodes:2 ~chips_per_node:2
          ~cores_per_chip:(Stdlib.max 1 (m / 4))
    | _ -> Generators.random_laminar rng ~m ()
  in
  Generators.hierarchical rng ~lam ~n ~base:(1, 8)
    ~heterogeneity:(1.0 +. Rng.float rng)
    ~overhead:(Rng.float rng *. 0.5) ()

type violation = { invariant : string; witness : string }

type status =
  | Certified  (** solved and every invariant re-validated *)
  | Infeasible  (** the pipeline reported (certified) infeasibility *)
  | Violated of violation  (** solve failed unexpectedly, or a certificate check did *)

let certify_solve ?(lp = true) inst =
  match Hs_core.Approx.Exact.solve_checked inst with
  | Ok o -> (
      let verdict = Certify.outcome ~lp o in
      match Verdict.first_failure verdict with
      | None -> Certified
      | Some { Verdict.invariant; detail; _ } ->
          Violated { invariant; witness = detail })
  | Error (Hs_core.Hs_error.Infeasible _) -> Infeasible
  | Error e ->
      Violated { invariant = "pipeline"; witness = Hs_core.Hs_error.to_string e }

type failure = {
  seed : int;
  violation : violation;
  original : Instance.t;
  shrunk : Instance.t;
}

type report = {
  iterations : int;
  certified : int;
  infeasible : int;
  failures : failure list;  (** in seed order, regardless of [--jobs] *)
}

(* Shrink against the *same* invariant: a candidate that fails some
   other check is a different bug and must not hijack the witness. *)
let shrink_failure ~lp ~seed ~violation inst =
  let still_failing c =
    match certify_solve ~lp c with
    | Violated v -> v.invariant = violation.invariant
    | Certified | Infeasible -> false
  in
  let shrunk = Shrink.minimize ~still_failing inst in
  let violation =
    match certify_solve ~lp shrunk with Violated v -> v | _ -> violation
  in
  { seed; violation; original = inst; shrunk }

let nshards = 16

let run ?(lp = true) ?(max_m = 6) ?(max_n = 8) ~iters ~jobs ~seed () =
  (* Fixed shard decomposition: shard s owns global iterations
     i ≡ s (mod nshards); seeds depend only on the base seed and the
     global iteration index, never on the job count. *)
  let shard s =
    let rec go i acc =
      if i >= iters then List.rev acc
      else
        let it_seed = seed + (0x9e3779b9 * i) in
        let inst = instance_of_seed ~max_m ~max_n it_seed in
        let outcome =
          match certify_solve ~lp inst with
          | Certified -> `Certified
          | Infeasible -> `Infeasible
          | Violated violation ->
              `Failure (shrink_failure ~lp ~seed:it_seed ~violation inst)
        in
        go (i + nshards) (outcome :: acc)
    in
    go s []
  in
  let shards =
    Hs_exec.parmap ~jobs shard (List.init (Stdlib.min nshards iters) (fun s -> s))
  in
  (* Merge back into global iteration order. *)
  let arr = Array.make iters `Certified in
  List.iteri
    (fun s outcomes ->
      List.iteri (fun k o -> arr.((k * nshards) + s) <- o) outcomes)
    shards;
  let certified = ref 0 and infeasible = ref 0 and failures = ref [] in
  Array.iter
    (function
      | `Certified -> incr certified
      | `Infeasible -> incr infeasible
      | `Failure f -> failures := f :: !failures)
    arr;
  {
    iterations = iters;
    certified = !certified;
    infeasible = !infeasible;
    failures = List.rev !failures;
  }

let pp_failure fmt f =
  let n, k, p = Shrink.measure f.shrunk in
  Format.fprintf fmt
    "seed %d: [%s] %s@\n  shrunk to %d jobs / %d sets / volume %d:@\n%a" f.seed
    f.violation.invariant f.violation.witness n k p Instance.pp f.shrunk
