(** Synthetic workload generators for the experiment suite (DESIGN.md §4).

    All constructions are monotone by design and validated by
    {!Hs_model.Instance.make}; all randomness flows through {!Rng}, so
    any instance is reproducible from its seed. *)

open Hs_model
open Hs_laminar
module Q = Hs_numeric.Q

val unrelated :
  Rng.t ->
  n:int ->
  m:int ->
  pmin:int ->
  pmax:int ->
  ?correlation:float ->
  unit ->
  Instance.t
(** Random unrelated-machines matrix; [correlation] interpolates between
    machine-independent (0.0) and machine-correlated (1.0) times. *)

val hierarchical :
  Rng.t ->
  lam:Laminar.t ->
  n:int ->
  base:int * int ->
  ?heterogeneity:float ->
  ?overhead:float ->
  unit ->
  Instance.t
(** Hierarchical instance over a singleton-complete family: per-job base
    length, per-machine speed in [[1, heterogeneity]], and a per-level
    migration overhead of [⌈overhead · base⌉] — the paper's model of
    processing times growing with the mask. *)

val random_laminar : Rng.t -> m:int -> ?arity:int -> unit -> Laminar.t
(** Random recursive contiguous partition of [0..m); includes the root,
    all intermediate groups and the singletons. *)

val semi_partitioned_load :
  Rng.t ->
  m:int ->
  load:float ->
  pmin:int ->
  pmax:int ->
  ?premium:float ->
  unit ->
  Instance.t
(** Semi-partitioned instance at a target load factor; global times carry
    a migration [premium] over the worst local time. *)

val trace :
  seed:int ->
  lam:Laminar.t ->
  events:int ->
  base:int * int ->
  ?heterogeneity:float ->
  ?overhead:float ->
  ?departures:float ->
  ?drains:int ->
  ?restricted:float ->
  ?max_live:int ->
  unit ->
  Hs_online.Trace.t
(** Seeded online trace over a singleton-complete family: a pure
    function of [seed] (each event draws from its own derived stream —
    the oracle's shard recipe).  [departures] is the probability an
    event departs a live job ([max_live] forces one at the cap);
    [drains] distinct machines leave at evenly spaced positions, never
    emptying the machine set; a [restricted] fraction of arrivals is
    confined to a subtree intersecting the never-drained machines, so
    the trace satisfies {!Hs_online.Trace.make}'s lifetime admissibility
    by construction.  Rows follow the {!hierarchical} cost model. *)

val model1_payload :
  Rng.t -> Instance.t -> smax:int -> slack:float -> Hs_core.Memory.model1
(** Per-machine budgets and per-(job, machine) space requirements;
    [slack > 1] loosens the budgets. *)

val model2_payload : Rng.t -> Instance.t -> mu:Q.t -> Hs_core.Memory.model2
(** Job sizes in (0, 1] and the capacity scale µ. *)
