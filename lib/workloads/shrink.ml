(** Greedy instance shrinking for the oracle harness.

    Given a failing instance and a predicate that re-checks the failure,
    {!minimize} walks a deterministic candidate order — drop a job, drop
    a set, halve one job's processing times — accepting the first
    candidate that still fails, until no candidate does.  Every
    candidate is strictly smaller under {!measure} and is re-validated
    through {!Hs_model.Instance.make}, so shrinking terminates and never
    produces an ill-formed instance. *)

open Hs_model
open Hs_laminar

let measure inst =
  let lam = Instance.laminar inst in
  let total = ref 0 in
  for j = 0 to Instance.njobs inst - 1 do
    for s = 0 to Laminar.size lam - 1 do
      match Ptime.value (Instance.ptime inst ~job:j ~set:s) with
      | Some p -> total := !total + p
      | None -> ()
    done
  done;
  (Instance.njobs inst, Laminar.size lam, !total)

let size inst =
  let n, k, p = measure inst in
  n + k + p

let smaller a b = size a < size b

let ptimes inst =
  let lam = Instance.laminar inst in
  Array.init (Instance.njobs inst) (fun j ->
      Array.init (Laminar.size lam) (fun s -> Instance.ptime inst ~job:j ~set:s))

(* Candidates in deterministic order, all strictly smaller. *)
let candidates inst =
  let lam = Instance.laminar inst in
  let m = Laminar.m lam in
  let nsets = Laminar.size lam in
  let n = Instance.njobs inst in
  let p = ptimes inst in
  let acc = ref [] in
  let emit = function
    | Ok c -> acc := c :: !acc
    | Error _ -> ()
  in
  (* Drop one job (keep at least one). *)
  if n > 1 then
    for j = n - 1 downto 0 do
      let p' = Array.init (n - 1) (fun k -> p.(if k < j then k else k + 1)) in
      emit (Instance.make lam p')
    done;
  (* Drop one set, provided every job keeps a finite mask.  Any
     sub-family of a laminar family is laminar, so only non-emptiness
     needs re-checking (of_sets validates anyway). *)
  if nsets > 1 then begin
    let sets = Array.of_list (Laminar.sets lam) in
    for s = nsets - 1 downto 0 do
      let keeps_finite j =
        let ok = ref false in
        for s' = 0 to nsets - 1 do
          if s' <> s && Ptime.is_fin p.(j).(s') then ok := true
        done;
        !ok
      in
      let all_ok = ref true in
      for j = 0 to n - 1 do
        if not (keeps_finite j) then all_ok := false
      done;
      if !all_ok then
        let remaining =
          List.filteri (fun k _ -> k <> s) (Array.to_list sets)
        in
        match Laminar.of_sets ~m remaining with
        | Error _ -> ()
        | Ok lam' ->
            let p' =
              Array.map
                (fun row ->
                  Array.init (nsets - 1) (fun k -> row.(if k < s then k else k + 1)))
                p
            in
            emit (Instance.make lam' p')
    done
  end;
  (* Halve one job's processing times (⌈p/2⌉ preserves monotonicity);
     only when it actually shrinks something. *)
  for j = n - 1 downto 0 do
    if Array.exists (function Ptime.Fin v -> v >= 2 | Ptime.Inf -> false) p.(j)
    then begin
      let p' = Array.map Array.copy p in
      p'.(j) <-
        Array.map
          (function Ptime.Fin v -> Ptime.Fin ((v + 1) / 2) | Ptime.Inf -> Ptime.Inf)
          p.(j);
      emit (Instance.make lam p')
    end
  done;
  List.filter (fun c -> smaller c inst) (List.rev !acc)

let minimize ~still_failing inst =
  (* Greedy descent: take the first candidate that still fails.  The
     measure strictly decreases, so this terminates; the explicit cap is
     a backstop against a pathological predicate. *)
  let rec go budget inst =
    if budget = 0 then inst
    else
      match List.find_opt still_failing (candidates inst) with
      | Some c -> go (budget - 1) c
      | None -> inst
  in
  go 10_000 inst

(* {1 Online traces} *)

module Trace = Hs_online.Trace

let trace_measure t =
  let vol = ref 0 in
  List.iter
    (fun (_, ev) ->
      match ev with
      | Trace.Arrive { ptimes } ->
          Array.iter
            (function Ptime.Fin v -> vol := !vol + v | Ptime.Inf -> ())
            ptimes
      | _ -> ())
    (Trace.events t);
  (Trace.length t, !vol)

let trace_smaller a b = trace_measure a < trace_measure b

(* Candidates in deterministic order, all strictly smaller and
   re-validated through Trace.make: drop one event (an arrival takes its
   departure with it — a dangling departure would be rejected anyway),
   halve one arrival's row.  Invalid shrinks (e.g. a drop that strands a
   later drain's bookkeeping) are skipped, not repaired. *)
let trace_candidates t =
  let lam = Trace.laminar t in
  let evs = Trace.events t in
  let acc = ref [] in
  let emit evs' =
    match Trace.make lam evs' with Ok c -> acc := c :: !acc | Error _ -> ()
  in
  List.iter
    (fun (id, ev) ->
      let drops (id', ev') =
        id' = id
        || match (ev, ev') with
           | Trace.Arrive _, Trace.Depart { job } -> job = id
           | _ -> false
      in
      emit (List.filter (fun e -> not (drops e)) evs))
    evs;
  List.iter
    (fun (id, ev) ->
      match ev with
      | Trace.Arrive { ptimes }
        when Array.exists
               (function Ptime.Fin v -> v >= 2 | Ptime.Inf -> false)
               ptimes ->
          let halved =
            Array.map
              (function
                | Ptime.Fin v -> Ptime.Fin ((v + 1) / 2) | Ptime.Inf -> Ptime.Inf)
              ptimes
          in
          emit
            (List.map
               (fun (id', ev') ->
                 if id' = id then (id', Trace.Arrive { ptimes = halved })
                 else (id', ev'))
               evs)
      | _ -> ())
    evs;
  List.filter (fun c -> trace_smaller c t) (List.rev !acc)

let minimize_trace ~still_failing t =
  let rec go budget t =
    if budget = 0 then t
    else
      match List.find_opt still_failing (trace_candidates t) with
      | Some c -> go (budget - 1) c
      | None -> t
  in
  go 10_000 t
