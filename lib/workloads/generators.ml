(** Synthetic workload generators for the experiment suite.

    The paper has no empirical section, so these generators define the
    evaluation workloads (DESIGN.md §4): random unrelated matrices,
    hierarchical instances whose processing-time functions are built
    bottom-up from per-machine speeds plus per-level migration overheads
    (monotone by construction), random laminar topologies, and the
    memory payloads of Section VI. *)

open Hs_model
open Hs_laminar
module Q = Hs_numeric.Q

(** Random unrelated-machines instance. [correlation] interpolates
    between machine-independent uniform times (0.0) and strongly
    machine-correlated times (1.0), the two standard regimes of the
    R||Cmax literature. *)
let unrelated rng ~n ~m ~pmin ~pmax ?(correlation = 0.0) () =
  if n <= 0 || m <= 0 || pmin < 0 || pmax < pmin then invalid_arg "Generators.unrelated";
  let speed = Array.init m (fun _ -> 0.5 +. Rng.float rng) in
  let times =
    Array.init n (fun _ ->
        let base = Rng.int_range rng pmin pmax in
        Array.init m (fun i ->
            let uncorrelated = Rng.int_range rng pmin pmax in
            let correlated =
              Stdlib.max pmin
                (Stdlib.min pmax (int_of_float (float_of_int base *. speed.(i))))
            in
            let v =
              int_of_float
                ((correlation *. float_of_int correlated)
                +. ((1. -. correlation) *. float_of_int uncorrelated))
            in
            Ptime.fin (Stdlib.max 1 v)))
  in
  Instance.unrelated times

(** Hierarchical instance over an arbitrary singleton-complete laminar
    topology.  Per job: a base length in [base]; per machine a speed in
    [[1, heterogeneity]]; singleton times are [⌈base·speed⌉]; a set's
    time is the max over its children plus a migration overhead of
    [⌈overhead·base⌉] per level climbed.  Monotone by construction. *)
let hierarchical rng ~lam ~n ~base:(blo, bhi) ?(heterogeneity = 1.0) ?(overhead = 0.1) () =
  if n <= 0 || blo <= 0 || bhi < blo then invalid_arg "Generators.hierarchical";
  if heterogeneity < 1.0 || overhead < 0.0 then invalid_arg "Generators.hierarchical";
  let m = Laminar.m lam in
  let speed =
    Array.init m (fun _ -> 1.0 +. (Rng.float rng *. (heterogeneity -. 1.0)))
  in
  let nsets = Laminar.size lam in
  let p =
    Array.init n (fun _ ->
        let b = Rng.int_range rng blo bhi in
        let row = Array.make nsets Ptime.Inf in
        let ov = Stdlib.max 1 (int_of_float (ceil (overhead *. float_of_int b))) in
        let rec fill set =
          let v =
            match Laminar.children lam set with
            | [] ->
                (* leaf: must be a singleton in a closed family *)
                let i = (Laminar.members lam set).(0) in
                int_of_float (ceil (float_of_int b *. speed.(i)))
            | children -> List.fold_left (fun acc c -> Stdlib.max acc (fill c)) 0 children + ov
          in
          row.(set) <- Ptime.fin v;
          v
        in
        List.iter (fun r -> ignore (fill r)) (Laminar.roots lam);
        row)
  in
  Instance.make_exn lam p

(** Random laminar topology: recursively partition [0..m) into 2..arity
    contiguous groups until singletons; includes the root and all
    intermediate groups. *)
let random_laminar rng ~m ?(arity = 3) () =
  if m <= 0 || arity < 2 then invalid_arg "Generators.random_laminar";
  let sets = ref [] in
  let rec go lo hi =
    (* [lo, hi) *)
    let width = hi - lo in
    sets := List.init width (fun k -> lo + k) :: !sets;
    if width > 1 then begin
      let parts = Stdlib.min width (2 + Rng.int rng (arity - 1)) in
      (* choose parts-1 distinct cut points *)
      let cuts = Array.init (width - 1) (fun k -> lo + 1 + k) in
      Rng.shuffle rng cuts;
      let chosen = Array.sub cuts 0 (parts - 1) in
      Array.sort compare chosen;
      let bounds = Array.concat [ [| lo |]; chosen; [| hi |] ] in
      for k = 0 to Array.length bounds - 2 do
        go bounds.(k) bounds.(k + 1)
      done
    end
  in
  go 0 m;
  Laminar.of_sets_exn ~m (List.sort_uniq compare !sets)

(** Semi-partitioned instance controlled by a target load factor
    [load = (Σ_j mean local time) / (m · pmax)]: local times are uniform
    in [[pmin, pmax]], global times add a migration premium of
    [premium] (≥ 0) percent.  Used by experiment F2. *)
let semi_partitioned_load rng ~m ~load ~pmin ~pmax ?(premium = 0.2) () =
  if m <= 0 || load <= 0.0 || pmin <= 0 || pmax < pmin then
    invalid_arg "Generators.semi_partitioned_load";
  let mean = float_of_int (pmin + pmax) /. 2.0 in
  let n = Stdlib.max 1 (int_of_float (load *. float_of_int m *. float_of_int pmax /. mean)) in
  let local =
    Array.init n (fun _ ->
        Array.init m (fun _ -> Ptime.fin (Rng.int_range rng pmin pmax)))
  in
  let global =
    Array.init n (fun j ->
        let worst =
          Array.fold_left
            (fun acc pt -> Stdlib.max acc (Option.get (Ptime.value pt)))
            0 local.(j)
        in
        Ptime.fin (int_of_float (ceil (float_of_int worst *. (1.0 +. premium)))))
  in
  Instance.semi_partitioned ~global ~local

(** Seeded online trace over a singleton-complete family (DESIGN.md §15).

    Deterministic shard split: event [e] draws from its own SplitMix64
    stream derived from [(seed, e)] (the oracle's recipe), so the trace
    is a pure function of the seed regardless of how callers batch or
    parallelise around the generator.  Arrival rows reuse the
    {!hierarchical} fill (per-machine speeds from the trace-level
    stream, per-level overhead); a [restricted] fraction of jobs is
    confined to a random subtree that intersects the never-drained
    machines, so every trace passes {!Hs_online.Trace.make}'s lifetime
    admissibility by construction.  Drains hit distinct machines at
    evenly spaced positions and never empty the machine set. *)
let trace ~seed ~lam ~events:nevents ~base:(blo, bhi) ?(heterogeneity = 1.0)
    ?(overhead = 0.1) ?(departures = 0.3) ?(drains = 0) ?(restricted = 0.3)
    ?max_live () =
  let m = Laminar.m lam in
  if nevents < 0 || blo <= 0 || bhi < blo then invalid_arg "Generators.trace";
  if heterogeneity < 1.0 || overhead < 0.0 then invalid_arg "Generators.trace";
  if departures < 0.0 || departures > 1.0 || restricted < 0.0 || restricted > 1.0
  then invalid_arg "Generators.trace";
  if drains < 0 || drains >= m then invalid_arg "Generators.trace";
  (match max_live with
  | Some k when k < 1 -> invalid_arg "Generators.trace"
  | _ -> ());
  let nsets = Laminar.size lam in
  let rng0 = Rng.create seed in
  let speed =
    Array.init m (fun _ -> 1.0 +. (Rng.float rng0 *. (heterogeneity -. 1.0)))
  in
  let drained_machines =
    let order = Array.init m (fun i -> i) in
    Rng.shuffle rng0 order;
    Array.sub order 0 drains
  in
  let survives i = not (Array.exists (fun d -> d = i) drained_machines) in
  (* Sets a restricted job may be confined to: subtrees that keep a
     surviving machine (so the job stays admissible through all drains). *)
  let safe_sets =
    List.filter
      (fun s -> Array.exists survives (Laminar.members lam s))
      (List.init nsets Fun.id)
  in
  let drain_at =
    (* evenly spaced, strictly increasing, never at index 0 (an empty
       system has nothing to re-seat, which would waste the drain);
       positions pushed past the end are dropped *)
    let at = Array.make drains 0 in
    let prev = ref 0 in
    for k = 0 to drains - 1 do
      let p = Stdlib.max (!prev + 1) ((k + 1) * nevents / (drains + 1)) in
      at.(k) <- p;
      prev := p
    done;
    at
  in
  let drain_index e =
    let found = ref None in
    Array.iteri (fun k pos -> if pos = e && !found = None then found := Some k) drain_at;
    !found
  in
  let live = ref [] in
  let evs = ref [] in
  for e = 0 to nevents - 1 do
    let rng = Rng.create (seed + (0x9e3779b9 * (e + 1))) in
    let over_cap =
      match max_live with Some k -> List.length !live >= k | None -> false
    in
    match drain_index e with
    | Some k ->
        evs := (e, Hs_online.Trace.Drain { machine = drained_machines.(k) }) :: !evs
    | None ->
        if !live <> [] && (over_cap || Rng.bool rng departures) then begin
          let victims = Array.of_list (List.sort compare !live) in
          let job = Rng.choose rng victims in
          live := List.filter (fun j -> j <> job) !live;
          evs := (e, Hs_online.Trace.Depart { job }) :: !evs
        end
        else begin
          let b = Rng.int_range rng blo bhi in
          let ov = Stdlib.max 1 (int_of_float (ceil (overhead *. float_of_int b))) in
          let row = Array.make nsets Ptime.Inf in
          let rec fill set =
            let v =
              match Laminar.children lam set with
              | [] ->
                  let i = (Laminar.members lam set).(0) in
                  int_of_float (ceil (float_of_int b *. speed.(i)))
              | children ->
                  List.fold_left (fun acc c -> Stdlib.max acc (fill c)) 0 children
                  + ov
            in
            row.(set) <- Ptime.fin v;
            v
          in
          (if Rng.bool rng restricted && safe_sets <> [] then
             ignore (fill (Rng.choose rng (Array.of_list safe_sets)))
           else List.iter (fun r -> ignore (fill r)) (Laminar.roots lam));
          live := e :: !live;
          evs := (e, Hs_online.Trace.Arrive { ptimes = row }) :: !evs
        end
  done;
  Hs_online.Trace.make_exn lam (List.rev !evs)

(** Memory payload for Model 1: per-machine budgets and per-(job,machine)
    space requirements with a feasibility [slack] factor (> 1 loosens the
    budgets). *)
let model1_payload rng inst ~smax ~slack =
  if smax <= 0 || slack <= 0.0 then invalid_arg "Generators.model1_payload";
  let n = Instance.njobs inst in
  let m = Instance.nmachines inst in
  let space = Array.init n (fun _ -> Array.init m (fun _ -> Rng.int_range rng 1 smax)) in
  let total = Array.fold_left (fun acc row -> acc + Array.fold_left Stdlib.max 0 row) 0 space in
  let budget =
    Stdlib.max smax (int_of_float (ceil (slack *. float_of_int total /. float_of_int m)))
  in
  { Hs_core.Memory.budgets = Array.make m budget; space }

(** Memory payload for Model 2: job sizes are rationals in (0, 1]. *)
let model2_payload rng inst ~mu =
  let n = Instance.njobs inst in
  let sizes = Array.init n (fun _ -> Q.of_ints (1 + Rng.int rng 16) 16) in
  { Hs_core.Memory.mu; sizes }
