(** Fault-injection mutators for the robustness harness.

    Two families of faults, both deterministic given the {!Rng} stream:

    - {e textual} corruption of instance files, to drive
      {!Hs_model.Instance_io.of_string} with malformed input (the parser
      must report [Error], never raise), and
    - {e structural} mutations of valid instances that violate the model
      invariants — laminarity of the family, monotonicity of the
      processing times — which the validators ({!Hs_laminar.Laminar.of_sets},
      {!Hs_model.Instance.make}) must catch. *)

open Hs_model
open Hs_laminar

(* ---- textual corruption --------------------------------------------- *)

let garbage_tokens =
  [| "-1"; "x"; ""; "inf"; "99999999999999999999"; "NaN"; "#"; "machines"; "1e9"; "0x10" |]

let garbage_lines =
  [| "machines -3"; "sets x"; "0 0 0 0 0 0 0 0"; "jobs"; "   "; "1 2 3 oops"; "\x00\x01\x02" |]

(* One random textual mutation.  The result is usually malformed; when a
   mutation happens to preserve validity (e.g. duplicating a comment)
   that is fine — the harness only asserts the parser never raises. *)
let corrupt_once rng text =
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let nl = Array.length lines in
  let rebuild () = String.concat "\n" (Array.to_list lines) in
  match Rng.int rng 9 with
  | 0 ->
      (* truncate at a random byte *)
      if String.length text <= 1 then "" else String.sub text 0 (Rng.int rng (String.length text))
  | 1 ->
      (* drop a random line *)
      if nl <= 1 then ""
      else begin
        let i = Rng.int rng nl in
        String.concat "\n"
          (List.filteri (fun k _ -> k <> i) (Array.to_list lines))
      end
  | 2 ->
      (* duplicate a random line *)
      let i = Rng.int rng (Stdlib.max 1 nl) in
      String.concat "\n"
        (List.concat_map
           (fun k -> if k = i then [ lines.(k); lines.(k) ] else [ lines.(k) ])
           (List.init nl (fun k -> k)))
  | 3 ->
      (* swap two random lines *)
      if nl >= 2 then begin
        let i = Rng.int rng nl and j = Rng.int rng nl in
        let t = lines.(i) in
        lines.(i) <- lines.(j);
        lines.(j) <- t
      end;
      rebuild ()
  | 4 ->
      (* replace a random token on a random line *)
      if nl = 0 then text
      else begin
        let i = Rng.int rng nl in
        let toks = Array.of_list (String.split_on_char ' ' lines.(i)) in
        if Array.length toks > 0 then
          toks.(Rng.int rng (Array.length toks)) <- Rng.choose rng garbage_tokens;
        lines.(i) <- String.concat " " (Array.to_list toks);
        rebuild ()
      end
  | 5 ->
      (* flip a random byte *)
      if String.length text = 0 then text
      else begin
        let b = Bytes.of_string text in
        Bytes.set b (Rng.int rng (Bytes.length b)) (Char.chr (32 + Rng.int rng 95));
        Bytes.to_string b
      end
  | 6 ->
      (* perturb a header count *)
      Array.iteri
        (fun i l ->
          match String.split_on_char ' ' l with
          | [ key; v ] when List.mem key [ "machines"; "sets"; "jobs" ] -> (
              match int_of_string_opt v with
              | Some k when Rng.bool rng 0.5 ->
                  lines.(i) <- Printf.sprintf "%s %d" key (k + Rng.int_range rng (-3) 3)
              | _ -> ())
          | _ -> ())
        lines;
      rebuild ()
  | 7 ->
      (* insert a garbage line at a random position *)
      let i = Rng.int rng (nl + 1) in
      let g = Rng.choose rng garbage_lines in
      String.concat "\n"
        (List.concat_map
           (fun k ->
             if k = i then [ g ] else if k < nl then [ lines.(k) ] else [])
           (List.init (nl + 1) (fun k -> k)))
  | _ -> String.sub text (Rng.int rng (Stdlib.max 1 (String.length text / 2))) 0 ^ text ^ "\njobs 1"

(* Stack 1–3 mutations for deeper corruption. *)
let corrupt_text rng text =
  let rec go k text = if k = 0 then text else go (k - 1) (corrupt_once rng text) in
  go (1 + Rng.int rng 3) text

(* A handwritten corpus of malformed inputs covering every parser branch:
   each of these must yield [Error]. *)
let malformed_corpus =
  [
    "";
    "   \n  \n";
    "machines\n";
    "machines x\n";
    "machines -1\n";
    "machines 2\n";
    "machines 2\nsets\n";
    "machines 2\nsets 1\n";
    "machines 2\nsets 1\n0 1\n";
    "machines 2\nsets 1\n0 1\njobs x\n";
    "machines 2\nsets 1\n0 1\njobs 1\n";
    "machines 2\nsets 1\n0 1\njobs 1\n3 4\n";
    "machines 2\nsets 1\n0 1\njobs 1\n-3\n";
    "machines 2\nsets 1\n0 1\njobs 1\nx\n";
    "machines 2\nsets 1\n0 1\njobs 1\n3\nextra\n";
    "machines 2\nsets 1\n0 9\njobs 1\n3\n";
    "machines 2\nsets 2\n0 1\n0 1\njobs 1\n3 3\n";
    "machines 2\nsets 2\n0 1\n0 2\njobs 1\n3 2\n";
    "machines 2\nsets 2\n0 1\n0\njobs 1\n3 9\n";
    "machines 2\nsets 1\n0 1\njobs 1\n99999999999999999999999999\n";
    "machines 1\nsets 1\n0\njobs 1\ninf inf\n";
    "machines 0\nsets 0\njobs 1\n\n";
  ]

(* ---- wire-level corruption ------------------------------------------ *)

(* The service frame format (lib/service/frame.ml, DESIGN.md §11) is
   [hex{8} '\n' payload].  The encoder is restated here rather than
   imported: hs_workloads must stay usable without the service stack,
   and an independent spelling of the grammar is exactly what a
   fault-injection corpus wants. *)
let frame payload = Printf.sprintf "%08x\n%s" (String.length payload) payload

(* One random wire-level mutation of an encoded frame.  Every branch
   yields a byte string the daemon must answer with a typed protocol
   error (or reject at EOF) — never a crash, never a hang. *)
let corrupt_frame rng encoded =
  let n = String.length encoded in
  match Rng.int rng 7 with
  | 0 ->
      (* truncated length prefix: chop inside the 9-byte header *)
      String.sub encoded 0 (Rng.int rng (Stdlib.min n 9))
  | 1 ->
      (* truncated payload: header intact, body cut short *)
      if n <= 10 then String.sub encoded 0 (Stdlib.max 0 (n - 1))
      else String.sub encoded 0 (9 + Rng.int rng (n - 10))
  | 2 ->
      (* oversized declared length: larger than any accepted payload *)
      Printf.sprintf "%08x\n%s" (0x1000000 + Rng.int rng 0xefffffff)
        (String.sub encoded (Stdlib.min 9 n) (Stdlib.max 0 (n - 9)))
  | 3 ->
      (* non-hex garbage in the header *)
      let b = Bytes.of_string encoded in
      if n > 0 then
        Bytes.set b (Rng.int rng (Stdlib.min 9 n)) (Rng.choose rng [| 'g'; 'Z'; '-'; ' '; '\x00' |]);
      Bytes.to_string b
  | 4 ->
      (* flip a payload byte: frame stays well-formed, JSON may not *)
      let b = Bytes.of_string encoded in
      if n > 9 then
        Bytes.set b (9 + Rng.int rng (n - 9)) (Char.chr (32 + Rng.int rng 95));
      Bytes.to_string b
  | 5 ->
      (* malicious giant prefix: a ~2 GB declared length must be
         rejected at header-parse time, never allocated *)
      Printf.sprintf "%08x\n%s"
        (0x7fffffff - Rng.int rng 0x1000)
        (String.sub encoded (Stdlib.min 9 n) (Stdlib.max 0 (n - 9)))
  | _ ->
      (* declared length disagrees with the actual payload *)
      if n <= 9 then frame "x"
      else
        Printf.sprintf "%08x\n%s"
          (Stdlib.max 0 (n - 9 + 1 + Rng.int rng 16))
          (String.sub encoded 9 (n - 9))

(* Handwritten wire corpus: each entry, written alone to a fresh
   connection and followed by EOF, must produce either a typed error
   response or a clean close — the daemon survives all of them. *)
let malformed_frames =
  [
    (* truncated length prefix *)
    "";
    "0000";
    "0000001";
    (* header not hex / not terminated by '\n' *)
    "zzzzzzzz\n{}";
    "0000000g\n{}";
    "00000002X{}";
    "-0000002\n{}";
    (* oversized frame: one past the 16 MiB payload cap *)
    "01000001\n";
    "ffffffff\n";
    (* malicious ~2 GB prefix, with and without trailing bytes: the
       typed protocol error must arrive without any payload allocation *)
    "7fffffff\n";
    "7fffffff\n{\"hsched.rpc\":1,\"id\":0,\"verb\":\"ping\"}";
    (* truncated payload after a valid header *)
    "00000010\n{\"hsched.rp";
    (* well-formed frame, malformed JSON payload *)
    frame "";
    frame "{";
    frame "not json at all";
    frame "{\"hsched.rpc\":1,\"id\":0,";
    frame "[1,2,3]";
    (* well-formed JSON, not a valid request *)
    frame "{}";
    frame "{\"hsched.rpc\":99,\"id\":0,\"verb\":\"ping\"}";
    frame "{\"hsched.rpc\":1,\"id\":0,\"verb\":\"frobnicate\"}";
    frame "{\"hsched.rpc\":1,\"id\":0,\"verb\":\"solve\"}";
    frame "{\"hsched.rpc\":1,\"id\":\"zero\",\"verb\":\"ping\"}";
  ]

(* ---- structural mutations ------------------------------------------- *)

(** Violate monotonicity: raise the time of a proper subset strictly
    above its parent's, so [α ⊆ β] no longer implies [P(α) ≤ P(β)].
    Returns the laminar family plus the corrupted matrix, or [None] when
    the instance has no finite (child, parent) pair to pervert. *)
let break_monotonicity rng inst =
  let lam = Instance.laminar inst in
  let n = Instance.njobs inst in
  let candidates = ref [] in
  for s = 0 to Laminar.size lam - 1 do
    match Laminar.parent lam s with
    | None -> ()
    | Some b ->
        for j = 0 to n - 1 do
          if Ptime.is_fin (Instance.ptime inst ~job:j ~set:b) then
            candidates := (j, s, b) :: !candidates
        done
  done;
  match !candidates with
  | [] -> None
  | cs ->
      let j, s, b = List.nth cs (Rng.int rng (List.length cs)) in
      let parent_time = Ptime.value_exn (Instance.ptime inst ~job:j ~set:b) in
      let p =
        Array.init n (fun j' ->
            Array.init (Laminar.size lam) (fun s' ->
                if j' = j && s' = s then Ptime.fin (parent_time + 1 + Rng.int rng 5)
                else Instance.ptime inst ~job:j' ~set:s'))
      in
      Some (lam, p)

(** Violate laminarity: add a set that partially overlaps an existing
    non-singleton set (shares one member, adds an outside machine).
    Returns [(m, sets)] for {!Hs_laminar.Laminar.of_sets}, or [None]
    when the family has no non-root, non-singleton set to cut across. *)
let break_laminarity rng lam =
  let m = Laminar.m lam in
  let sets = Laminar.sets lam in
  let candidates =
    List.filter
      (fun members -> List.length members >= 2 && List.length members < m)
      sets
  in
  match candidates with
  | [] -> None
  | cs ->
      let s = List.nth cs (Rng.int rng (List.length cs)) in
      let inside = List.nth s (Rng.int rng (List.length s)) in
      let outside_pool =
        List.filter (fun i -> not (List.mem i s)) (List.init m (fun i -> i))
      in
      let outside = List.nth outside_pool (Rng.int rng (List.length outside_pool)) in
      let overlap = [ inside; outside ] in
      let k = Rng.int rng (List.length sets + 1) in
      let mutated =
        List.concat
          (List.mapi (fun i st -> if i = k then [ overlap; st ] else [ st ]) sets)
        @ (if k = List.length sets then [ overlap ] else [])
      in
      Some (m, mutated)

(* ---- fuzz drivers ---------------------------------------------------- *)

type fuzz_report = {
  total : int;
  rejected : int;  (** inputs the parser/validator reported as [Error] *)
  accepted : int;  (** mutations that happened to stay valid *)
  escaped : (string * string) list;
      (** (input, exception) pairs — uncaught exceptions; must be [] *)
}

let empty_report = { total = 0; rejected = 0; accepted = 0; escaped = [] }

let record report input outcome =
  match outcome with
  | `Rejected -> { report with total = report.total + 1; rejected = report.rejected + 1 }
  | `Accepted -> { report with total = report.total + 1; accepted = report.accepted + 1 }
  | `Raised exn ->
      {
        report with
        total = report.total + 1;
        escaped = (input, exn) :: report.escaped;
      }

(** Feed [iters] corrupted variants of the [base] texts through
    {!Hs_model.Instance_io.of_string}; the parser must never raise. *)
let fuzz_of_string rng ~iters ~base =
  (* Fuzzing must not disturb the process-global tracer (or flood its
     sink when a caller left tracing on): force it off for the sweep. *)
  Hs_obs.Tracer.with_disabled @@ fun () ->
  let base = Array.of_list base in
  let rec go k report =
    if k = 0 then report
    else
      let input = corrupt_text rng (Rng.choose rng base) in
      let outcome =
        try match Instance_io.of_string input with Ok _ -> `Accepted | Error _ -> `Rejected
        with exn -> `Raised (Printexc.to_string exn)
      in
      go (k - 1) (record report input outcome)
  in
  go iters empty_report

(** Apply [iters] structural mutations to the given valid instances; the
    validators must reject every one ([accepted] counts misses). *)
let fuzz_validators rng ~iters instances =
  Hs_obs.Tracer.with_disabled @@ fun () ->
  let instances = Array.of_list instances in
  let rec go k report =
    if k = 0 then report
    else
      let inst = Rng.choose rng instances in
      let outcome, label =
        if Rng.bool rng 0.5 then
          match break_monotonicity rng inst with
          | None -> (`Rejected, "no-candidate")
          | Some (lam, p) -> (
              ( (try
                   match Instance.make lam p with Ok _ -> `Accepted | Error _ -> `Rejected
                 with exn -> `Raised (Printexc.to_string exn)),
                "monotonicity" ))
        else
          match break_laminarity rng (Instance.laminar inst) with
          | None -> (`Rejected, "no-candidate")
          | Some (m, sets) -> (
              ( (try
                   match Laminar.of_sets ~m sets with Ok _ -> `Accepted | Error _ -> `Rejected
                 with exn -> `Raised (Printexc.to_string exn)),
                "laminarity" ))
      in
      go (k - 1) (record report label outcome)
  in
  go iters empty_report
