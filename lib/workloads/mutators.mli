(** Fault-injection mutators for the robustness harness.

    Deterministic (given the {!Rng} stream) generators of bad input:
    textual corruption for the parser, structural invariant violations
    for the model validators, plus fuzz drivers that tally outcomes. *)

open Hs_model
open Hs_laminar

val corrupt_text : Rng.t -> string -> string
(** Apply 1–3 random textual mutations (truncation, line drop/dup/swap,
    token garbage, byte flips, header-count tampering, garbage-line
    insertion) to an instance text. *)

val malformed_corpus : string list
(** Handwritten inputs covering every parser failure branch; each must
    be rejected with [Error] by {!Hs_model.Instance_io.of_string}. *)

val corrupt_frame : Rng.t -> string -> string
(** Apply one random wire-level mutation to an encoded service frame
    (truncated length prefix, truncated payload, oversized or lying
    declared length, non-hex header bytes, payload byte flips).  The
    daemon must answer every variant with a typed protocol error —
    never crash, never hang. *)

val malformed_frames : string list
(** Handwritten wire corpus covering every frame/codec failure branch:
    truncated prefixes, non-hex headers, oversized frames, truncated
    payloads, malformed JSON, and well-formed JSON that is not a valid
    request.  Each entry, sent alone and followed by EOF, must yield a
    typed error response or a clean close. *)

val break_monotonicity : Rng.t -> Instance.t -> (Laminar.t * Ptime.t array array) option
(** Raise the processing time of a proper subset strictly above its
    parent's, violating monotonicity.  The result must be rejected by
    {!Hs_model.Instance.make}.  [None] when the instance has no finite
    (child, parent) pair to corrupt. *)

val break_laminarity : Rng.t -> Laminar.t -> (int * int list list) option
(** Add a set that cuts across an existing non-singleton set (shares one
    member, adds an outside machine).  The result must be rejected by
    {!Hs_laminar.Laminar.of_sets}.  [None] when the family has no
    non-root, non-singleton set. *)

type fuzz_report = {
  total : int;
  rejected : int;  (** inputs reported as [Error] *)
  accepted : int;  (** mutations that happened to stay valid *)
  escaped : (string * string) list;
      (** (input, exception) pairs — uncaught exceptions; must be [] *)
}

val fuzz_of_string : Rng.t -> iters:int -> base:string list -> fuzz_report
(** Feed [iters] corrupted variants of the [base] texts through
    {!Hs_model.Instance_io.of_string}; the parser must never raise.
    Runs under {!Hs_obs.Tracer.with_disabled}: the sweep neither
    observes nor perturbs the process-global tracing state. *)

val fuzz_validators : Rng.t -> iters:int -> Instance.t list -> fuzz_report
(** Apply [iters] structural mutations (alternating monotonicity and
    laminarity breakers) to the given valid instances; the validators
    must reject every one ([accepted] counts misses).  Tracing is
    forced off for the sweep, as in {!fuzz_of_string}. *)
