(** Greedy instance shrinking to minimal counterexamples.

    Deterministic: candidate order is a pure function of the instance,
    so a given failure always shrinks to the same minimal instance. *)

open Hs_model

val measure : Instance.t -> int * int * int
(** (jobs, sets, total finite processing time) — the shrink order. *)

val size : Instance.t -> int
(** Sum of the three {!measure} components; every candidate produced by
    {!candidates} is strictly smaller under this. *)

val candidates : Instance.t -> Instance.t list
(** Strictly smaller well-formed variants, in a deterministic order:
    drop one job, drop one set (only when every job keeps a finite
    mask), halve one job's processing times ([⌈p/2⌉], monotone). *)

val minimize : still_failing:(Instance.t -> bool) -> Instance.t -> Instance.t
(** Greedy descent: repeatedly move to the first candidate on which
    [still_failing] holds, until none does.  The result is locally
    minimal: no single candidate step reproduces the failure. *)
