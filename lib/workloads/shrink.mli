(** Greedy instance shrinking to minimal counterexamples.

    Deterministic: candidate order is a pure function of the instance,
    so a given failure always shrinks to the same minimal instance. *)

open Hs_model

val measure : Instance.t -> int * int * int
(** (jobs, sets, total finite processing time) — the shrink order. *)

val size : Instance.t -> int
(** Sum of the three {!measure} components; every candidate produced by
    {!candidates} is strictly smaller under this. *)

val candidates : Instance.t -> Instance.t list
(** Strictly smaller well-formed variants, in a deterministic order:
    drop one job, drop one set (only when every job keeps a finite
    mask), halve one job's processing times ([⌈p/2⌉], monotone). *)

val minimize : still_failing:(Instance.t -> bool) -> Instance.t -> Instance.t
(** Greedy descent: repeatedly move to the first candidate on which
    [still_failing] holds, until none does.  The result is locally
    minimal: no single candidate step reproduces the failure. *)

(** {1 Online traces} *)

val trace_measure : Hs_online.Trace.t -> int * int
(** (events, total finite arrival volume) — the trace shrink order. *)

val trace_candidates : Hs_online.Trace.t -> Hs_online.Trace.t list
(** Strictly smaller valid traces, deterministic order: drop one event
    (an arrival takes its departure with it), halve one arrival's row
    ([⌈p/2⌉], monotone).  Every candidate re-passes
    {!Hs_online.Trace.make}. *)

val minimize_trace :
  still_failing:(Hs_online.Trace.t -> bool) -> Hs_online.Trace.t -> Hs_online.Trace.t
(** Greedy descent over {!trace_candidates}, as {!minimize}. *)
