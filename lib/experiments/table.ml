(** Minimal fixed-width table/series printer for the experiment harness.

    Output is plain text so that `dune exec bench/main.exe | tee` produces
    the artefacts recorded in EXPERIMENTS.md verbatim. *)

type t = { title : string; header : string list; mutable rows : string list list }

let create ~title ~header = { title; header; rows = [] }
let add_row t row = t.rows <- row :: t.rows

let cell_int = string_of_int
let cell_float ?(digits = 3) v = Printf.sprintf "%.*f" digits v
let cell_q v = Hs_numeric.Q.to_string v

let cell_q_float ?(digits = 3) v = Printf.sprintf "%.*f" digits (Hs_numeric.Q.to_float v)

(* Optional in-process sink: when set, {!print} appends to the buffer
   instead of stdout.  The parallel bench uses it to byte-compare the
   tables produced at different job counts without forking. *)
let sink : Buffer.t option ref = ref None
let redirect b = sink := b

let out s = match !sink with Some b -> Buffer.add_string b s | None -> print_string s

let print t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.fold_left (fun acc r -> Stdlib.max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some s -> Stdlib.max acc (String.length s)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let line row =
    String.concat "  "
      (List.mapi
         (fun c s ->
           let w = List.nth widths c in
           s ^ String.make (w - String.length s) ' ')
         (row @ List.init (ncols - List.length row) (fun _ -> "")))
  in
  out (Printf.sprintf "\n== %s ==\n" t.title);
  out (line t.header ^ "\n");
  out (String.make (String.length (line t.header)) '-' ^ "\n");
  List.iter (fun r -> out (line r ^ "\n")) rows;
  out "\n"
