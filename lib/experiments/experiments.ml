(** The evaluation suite (DESIGN.md §4).

    The paper is theory-only, so each experiment here validates one of
    its formal claims empirically; EXPERIMENTS.md records the outcomes.
    Every experiment is deterministic (seeds are fixed and printed) and
    prints a plain-text table — `dune exec bench/main.exe` regenerates
    all of them.

    [quick] runs smaller sweeps (used by the CI-ish default); the full
    sizes stay laptop-scale because the exact-arithmetic LP and the
    branch-and-bound are exponential-ish in nature.

    [jobs] shards the per-trial solves across an {!Hs_exec} domain pool
    (DESIGN.md §10).  Each experiment builds its work-item list
    identically at any job count — one item per seeded trial, every item
    carrying its own [Rng] — maps it through {!Hs_exec.parmap} (results
    return in submission order) and folds the ordered results exactly as
    the old sequential loops did, so the printed tables are
    byte-identical at any [jobs].  The wall-clock experiments F3/A3 and
    the single-instance F5 stay sequential: sharing cores would distort
    the very times they measure. *)

open Hs_model
open Hs_core
open Hs_workloads
module Q = Hs_numeric.Q
module L = Hs_laminar.Laminar
module T = Hs_laminar.Topology

let base_seed = 20170529 (* IPDPS'17 *)

(* One item per seeded trial through the domain pool. *)
let sweep ~jobs f items = Hs_exec.parmap ~jobs f items

(* Replay the original `ref []`-accumulator order: trials were
   {e prepended} in ascending-k order, so folds ran over descending k. *)
let rev_successes results = List.rev (List.filter_map Fun.id results)

(* Slice the ordered result list back into per-cell groups of [width]. *)
let slices results ~width =
  let arr = Array.of_list results in
  fun cell_idx -> List.init width (fun k -> arr.((cell_idx * width) + k))

(* Families used across experiments. *)
let family_instances ~rng ~n ~m = function
  | `Semi -> Generators.hierarchical rng ~lam:(T.semi_partitioned m) ~n ~base:(1, 9) ~heterogeneity:1.6 ~overhead:0.25 ()
  | `Clustered ->
      let clusters = if m mod 2 = 0 then 2 else 1 in
      Generators.hierarchical rng ~lam:(T.clustered ~m ~clusters) ~n ~base:(1, 9) ~heterogeneity:1.6 ~overhead:0.25 ()
  | `Three_level ->
      Generators.hierarchical rng
        ~lam:(T.balanced [ 2; (m + 1) / 2 ])
        ~n ~base:(1, 9) ~heterogeneity:1.6 ~overhead:0.25 ()
  | `Random ->
      Generators.hierarchical rng ~lam:(Generators.random_laminar rng ~m ()) ~n ~base:(1, 9)
        ~heterogeneity:1.6 ~overhead:0.25 ()

let family_name = function
  | `Semi -> "semi-partitioned"
  | `Clustered -> "clustered"
  | `Three_level -> "3-level"
  | `Random -> "random-laminar"

let all_families = [ `Semi; `Clustered; `Three_level; `Random ]

(** {b T1} — Theorem V.2: the measured approximation ratio of the LP
    rounding pipeline against the branch-and-bound optimum. *)
let t1 ?(quick = false) ?(jobs = 1) () =
  let tbl =
    Table.create ~title:"T1: approximation ratio of the 2-approximation (Theorem V.2)"
      ~header:[ "family"; "n"; "m"; "inst"; "mean ALG/OPT"; "max ALG/OPT"; "max ALG/LP"; "bound" ]
  in
  let trials = if quick then 3 else 8 in
  let sizes = if quick then [ (5, 3) ] else [ (5, 3); (8, 4); (10, 4) ] in
  let cells =
    List.concat
      (List.mapi
         (fun fam_idx family -> List.map (fun (n, m) -> (fam_idx, family, n, m)) sizes)
         all_families)
  in
  let items = List.concat_map (fun cell -> List.init trials (fun k -> (cell, k))) cells in
  let results =
    sweep ~jobs
      (fun ((fam_idx, family, n, m), k) ->
        let rng = Rng.create (base_seed + (77777 * fam_idx) + (1000 * k) + n + (17 * m)) in
        let inst = family_instances ~rng ~n ~m family in
        match Approx.Exact.solve inst with
        | Error _ -> None
        | Ok o -> (
            match
              Exact.optimal ~initial:(Array.map (fun _ -> 0) o.assignment, o.makespan) inst
            with
            | Some (_, opt, stats) when stats.proven && opt > 0 ->
                Some
                  ( float_of_int o.makespan /. float_of_int opt,
                    float_of_int o.makespan /. float_of_int o.t_lp )
            | _ -> None))
      items
  in
  let slice = slices results ~width:trials in
  let mean l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
  let mx l = List.fold_left Float.max 0. l in
  List.iteri
    (fun ci (_, family, n, m) ->
      let succ = rev_successes (slice ci) in
      let ratios = List.map fst succ and lp_ratios = List.map snd succ in
      if ratios <> [] then
        Table.add_row tbl
          [
            family_name family;
            Table.cell_int n;
            Table.cell_int m;
            Table.cell_int (List.length ratios);
            Table.cell_float (mean ratios);
            Table.cell_float (mx ratios);
            Table.cell_float (mx lp_ratios);
            "2.000";
          ])
    cells;
  Table.print tbl

(** {b T2} — Theorems III.1 / IV.3: the schedulers turn every feasible
    assignment into a valid schedule of the predicted makespan. *)
let t2 ?(quick = false) ?(jobs = 1) () =
  let tbl =
    Table.create ~title:"T2: scheduler validity on random feasible assignments"
      ~header:[ "family"; "instances"; "valid"; "makespan=T"; "max load/T" ]
  in
  let trials = if quick then 50 else 300 in
  let items =
    List.concat_map (fun family -> List.init trials (fun k -> (family, k))) all_families
  in
  let results =
    sweep ~jobs
      (fun (family, k) ->
        let rng = Rng.create (base_seed + k) in
        let m = 2 + Rng.int rng 5 in
        let n = 2 + Rng.int rng 8 in
        let inst = family_instances ~rng ~n ~m family in
        let lam = Instance.laminar inst in
        let a = Array.init n (fun _ -> Rng.int rng (L.size lam)) in
        let t = Assignment.min_makespan inst a in
        match Hierarchical.schedule inst a ~tmax:t with
        | Error _ -> None
        | Ok sched ->
            let util = ref 0.0 in
            for i = 0 to m - 1 do
              let u =
                float_of_int (Schedule.machine_load sched i) /. float_of_int (Stdlib.max 1 t)
              in
              if u > !util then util := u
            done;
            Some (Schedule.is_valid inst a sched, Schedule.makespan sched <= t, !util))
      items
  in
  let slice = slices results ~width:trials in
  List.iteri
    (fun ci family ->
      let valid = ref 0 and tight = ref 0 and worst_util = ref 0.0 in
      List.iter
        (function
          | None -> ()
          | Some (v, tgt, u) ->
              if v then incr valid;
              if tgt then incr tight;
              if u > !worst_util then worst_util := u)
        (slice ci);
      Table.add_row tbl
        [
          family_name family;
          Table.cell_int trials;
          Table.cell_int !valid;
          Table.cell_int !tight;
          Table.cell_float !worst_util;
        ])
    all_families;
  Table.print tbl

(** {b T3} — Proposition III.2: tape-order migrations ≤ m-1 and total
    stops ≤ 2m-2 for Algorithm 1. *)
let t3 ?(quick = false) ?(jobs = 1) () =
  let tbl =
    Table.create ~title:"T3: Proposition III.2 migration/preemption bounds (Algorithm 1)"
      ~header:
        [ "m"; "instances"; "max migr"; "bound m-1"; "max stops"; "bound 2m-2" ]
  in
  let trials = if quick then 60 else 400 in
  let ms = if quick then [ 2; 4; 8 ] else [ 2; 3; 4; 6; 8; 12 ] in
  let items = List.concat_map (fun m -> List.init trials (fun k -> (m, k))) ms in
  let results =
    sweep ~jobs
      (fun (m, k) ->
        let rng = Rng.create (base_seed + (31 * k) + m) in
        let n = 2 + Rng.int rng 12 in
        let inst =
          Generators.hierarchical rng ~lam:(T.semi_partitioned m) ~n ~base:(1, 9)
            ~heterogeneity:1.5 ~overhead:0.3 ()
        in
        let lam = Instance.laminar inst in
        let a = Array.init n (fun _ -> Rng.int rng (L.size lam)) in
        let t = Assignment.min_makespan inst a in
        match Semi_partitioned.schedule_stats inst a ~tmax:t with
        | Error _ -> None
        | Ok (_, stats) -> Some (stats.Tape.migrations, Tape.stops stats))
      items
  in
  let slice = slices results ~width:trials in
  List.iteri
    (fun ci m ->
      let max_migr = ref 0 and max_stops = ref 0 and cnt = ref 0 in
      List.iter
        (function
          | None -> ()
          | Some (migr, stops) ->
              incr cnt;
              if migr > !max_migr then max_migr := migr;
              if stops > !max_stops then max_stops := stops)
        (slice ci);
      Table.add_row tbl
        [
          Table.cell_int m;
          Table.cell_int !cnt;
          Table.cell_int !max_migr;
          Table.cell_int (m - 1);
          Table.cell_int !max_stops;
          Table.cell_int ((2 * m) - 2);
        ])
    ms;
  Table.print tbl

(** {b F1} — Example V.1: the integral gap between the reduced unrelated
    instance and the hierarchical instance approaches 2. *)
let f1 ?(quick = false) ?(jobs = 1) () =
  let tbl =
    Table.create
      ~title:"F1: Example V.1 integral gap, unrelated / hierarchical (-> 2)"
      ~header:[ "n"; "m"; "hier OPT"; "unrel OPT"; "gap"; "(2n-3)/(n-1)" ]
  in
  let ns = if quick then [ 3; 6; 12 ] else [ 3; 4; 6; 8; 12; 16; 24; 40 ] in
  let rows =
    sweep ~jobs
      (fun n ->
        let inst = Families.example_v1 n in
        (* Closed forms, verified by branch and bound on the small sizes. *)
        let hier = Families.example_v1_hierarchical_opt n in
        let unrel = Families.example_v1_unrelated_opt n in
        let hier =
          if n <= 9 then
            match Exact.optimal inst with Some (_, o, _) -> o | None -> hier
          else hier
        in
        let unrel =
          if n <= 9 then
            match Hs_baselines.Unrelated_reduction.optimal_reduced inst with
            | Some o -> o
            | None -> unrel
          else unrel
        in
        [
          Table.cell_int n;
          Table.cell_int (n - 1);
          Table.cell_int hier;
          Table.cell_int unrel;
          Table.cell_float (float_of_int unrel /. float_of_int hier);
          Table.cell_float (float_of_int ((2 * n) - 3) /. float_of_int (n - 1));
        ])
      ns
  in
  List.iter (Table.add_row tbl) rows;
  Table.print tbl

(** {b F2} — The capacity loss of pure partitioning: optimal makespans of
    partitioned vs semi-partitioned scheduling vs the global preemptive
    bound, as the migratory load grows.  Each machine carries one pinned
    job of random length (uneven steps, Example V.1 style: pinned jobs
    have no other finite mask) and a varying number of flexible jobs
    that may run anywhere, globally at a 20% migration premium.  Pure
    partitioning must stack flexible jobs onto machines whole;
    semi-partitioned scheduling threads them through the idle steps. *)
let f2 ?(quick = false) ?(jobs = 1) () =
  let tbl =
    Table.create
      ~title:"F2: partitioned vs semi-partitioned vs global, by flexible load"
      ~header:
        [ "load"; "inst"; "partitioned/LB"; "semi-part OPT/LB"; "2-approx/LB"; "global-only/LB" ]
  in
  let m = 4 in
  let trials = if quick then 3 else 6 in
  let loads = if quick then [ 0.5; 1.25 ] else [ 0.25; 0.5; 0.75; 1.0; 1.25; 1.5 ] in
  let items = List.concat_map (fun load -> List.init trials (fun k -> (load, k))) loads in
  let results =
    sweep ~jobs
      (fun (load, k) ->
        let rng = Rng.create (base_seed + (97 * k) + int_of_float (load *. 100.)) in
        let nflex = Stdlib.max 1 (int_of_float (load *. float_of_int m)) in
        let n = m + nflex in
        let local =
          Array.init n (fun j ->
              if j < m then begin
                (* pinned job on machine j only *)
                let p = 2 + Rng.int rng 8 in
                Array.init m (fun i -> if i = j then Ptime.fin p else Ptime.Inf)
              end
              else begin
                let p = 2 + Rng.int rng 5 in
                Array.make m (Ptime.fin p)
              end)
        in
        let global =
          Array.mapi
            (fun j row ->
              if j < m then Ptime.Inf
              else
                let w =
                  Array.fold_left
                    (fun acc pt ->
                      match pt with Ptime.Fin v -> Stdlib.max acc v | Ptime.Inf -> acc)
                    0 row
                in
                Ptime.fin (int_of_float (ceil (float_of_int w *. 1.2))))
            local
        in
        let semi = Instance.semi_partitioned ~global ~local in
        let unrel = Instance.unrelated local in
        match (Exact.optimal semi, Exact.optimal unrel, Approx.Exact.solve semi) with
        | Some (_, semi_opt, s1), Some (_, part_opt, s2), Ok o when s1.proven && s2.proven ->
            (* "global-only" policy: every flexible job migrates freely
               (paying the premium), pinned jobs stay put. *)
            let glob =
              let lam = Instance.laminar semi in
              let full = Option.get (L.full_set lam) in
              let a =
                Array.init n (fun j ->
                    if j < m then Option.get (L.singleton lam j) else full)
              in
              Assignment.min_makespan semi a
            in
            let lb = float_of_int o.t_lp in
            Some
              ( float_of_int part_opt /. lb,
                float_of_int semi_opt /. lb,
                float_of_int o.makespan /. lb,
                float_of_int glob /. lb )
        | _ -> None)
      items
  in
  let slice = slices results ~width:trials in
  List.iteri
    (fun ci load ->
      let acc_part = ref 0. and acc_semi = ref 0. and acc_alg = ref 0. and acc_glob = ref 0. in
      let cnt = ref 0 in
      List.iter
        (function
          | None -> ()
          | Some (part, semi, alg, glob) ->
              acc_part := !acc_part +. part;
              acc_semi := !acc_semi +. semi;
              acc_alg := !acc_alg +. alg;
              acc_glob := !acc_glob +. glob;
              incr cnt)
        (slice ci);
      if !cnt > 0 then begin
        let f x = Table.cell_float (x /. float_of_int !cnt) in
        Table.add_row tbl
          [
            Table.cell_float ~digits:2 load;
            Table.cell_int !cnt;
            f !acc_part;
            f !acc_semi;
            f !acc_alg;
            f !acc_glob;
          ]
      end)
    loads;
  Table.print tbl

(** {b F3} — scalability: wall time of the full pipeline, exact-rational
    vs floating-point LP.  Stays sequential at any [jobs]: it measures
    wall time, which a shared pool would distort. *)
let f3 ?(quick = false) () =
  let tbl =
    Table.create ~title:"F3: pipeline wall time, exact-Q vs float LP (seconds)"
      ~header:[ "n"; "m"; "sets"; "exact (s)"; "float (s)"; "exact/float" ]
  in
  let sizes = if quick then [ (6, 4); (12, 4) ] else [ (6, 4); (12, 4); (24, 6); (40, 6) ] in
  List.iter
    (fun (n, m) ->
      let rng = Rng.create (base_seed + n + m) in
      let inst =
        Generators.hierarchical rng ~lam:(T.semi_partitioned m) ~n ~base:(2, 20)
          ~heterogeneity:1.8 ~overhead:0.2 ()
      in
      let time f =
        let t0 = Sys.time () in
        ignore (f ());
        Sys.time () -. t0
      in
      let te = time (fun () -> Approx.Exact.solve inst) in
      let tf = time (fun () -> Approx.Fast.solve inst) in
      Table.add_row tbl
        [
          Table.cell_int n;
          Table.cell_int m;
          Table.cell_int (L.size (Instance.laminar inst));
          Table.cell_float ~digits:4 te;
          Table.cell_float ~digits:4 tf;
          Table.cell_float (te /. Float.max 1e-9 tf);
        ])
    sizes;
  Table.print tbl

(** {b T4} — Theorem VI.1 (memory Model 1): bicriteria factors against
    the (3T, 3B) bound. *)
let t4 ?(quick = false) ?(jobs = 1) () =
  let tbl =
    Table.create ~title:"T4: memory Model 1 bicriteria factors (Theorem VI.1: <= 3, 3)"
      ~header:
        [ "n"; "m"; "inst"; "max makespan/T"; "max mem/B"; "bound"; "fallback drops" ]
  in
  let trials = if quick then 4 else 10 in
  let sizes = if quick then [ (1, 3) ] else [ (1, 2); (1, 3); (2, 4) ] in
  let items = List.concat_map (fun sz -> List.init trials (fun k -> (sz, k))) sizes in
  let results =
    sweep ~jobs
      (fun ((nlo, m), k) ->
        let rng = Rng.create (base_seed + (11 * k) + m) in
        let inst = Generators.semi_partitioned_load rng ~m ~load:0.5 ~pmin:1 ~pmax:7 () in
        if Instance.njobs inst >= nlo then begin
          let payload = Generators.model1_payload rng inst ~smax:5 ~slack:1.4 in
          match Memory.solve_model1 inst payload with
          | Error _ -> None
          | Ok r -> Some (r.fallback_drops, r.makespan_factor, r.max_capacity_factor)
        end
        else None)
      items
  in
  let slice = slices results ~width:trials in
  List.iteri
    (fun ci (nlo, m) ->
      let mx_mk = ref Q.zero and mx_mem = ref Q.zero and cnt = ref 0 and fb = ref 0 in
      List.iter
        (function
          | None -> ()
          | Some (drops, mkf, memf) ->
              incr cnt;
              fb := !fb + drops;
              if Q.gt mkf !mx_mk then mx_mk := mkf;
              if Q.gt memf !mx_mem then mx_mem := memf)
        (slice ci);
      if !cnt > 0 then
        Table.add_row tbl
          [
            Table.cell_int nlo;
            Table.cell_int m;
            Table.cell_int !cnt;
            Table.cell_q_float !mx_mk;
            Table.cell_q_float !mx_mem;
            "3.000";
            Table.cell_int !fb;
          ])
    sizes;
  Table.print tbl

(** {b T5} — Theorem VI.3 (memory Model 2): σ = 2 + H_k by level count. *)
let t5 ?(quick = false) ?(jobs = 1) () =
  let tbl =
    Table.create ~title:"T5: memory Model 2 sigma factors (Theorem VI.3: sigma = 2 + H_k)"
      ~header:[ "k"; "m"; "inst"; "max makespan/T"; "max mem/cap"; "sigma bound" ]
  in
  let shapes =
    if quick then [ [ 4 ] ] else [ [ 4 ]; [ 2; 2 ]; [ 2; 2; 2 ]; [ 2; 2; 2; 2 ] ]
  in
  let trials = if quick then 3 else 6 in
  let items = List.concat_map (fun sh -> List.init trials (fun t -> (sh, t))) shapes in
  let results =
    sweep ~jobs
      (fun (fanouts, t) ->
        let lam = T.balanced fanouts in
        let k = L.nlevels lam in
        let rng = Rng.create (base_seed + (7 * t) + k) in
        let n = 3 + Rng.int rng 4 in
        let inst = Generators.hierarchical rng ~lam ~n ~base:(1, 5) ~overhead:0.2 () in
        let payload = Generators.model2_payload rng inst ~mu:(Q.of_int 2) in
        match Memory.solve_model2 inst payload with
        | Error _ -> None
        | Ok r -> Some (r.makespan_factor, r.max_capacity_factor))
      items
  in
  let slice = slices results ~width:trials in
  List.iteri
    (fun ci fanouts ->
      let lam = T.balanced fanouts in
      let k = L.nlevels lam in
      let mx_mk = ref Q.zero and mx_mem = ref Q.zero and cnt = ref 0 in
      List.iter
        (function
          | None -> ()
          | Some (mkf, memf) ->
              incr cnt;
              if Q.gt mkf !mx_mk then mx_mk := mkf;
              if Q.gt memf !mx_mem then mx_mem := memf)
        (slice ci);
      if !cnt > 0 then
        Table.add_row tbl
          [
            Table.cell_int k;
            Table.cell_int (L.m lam);
            Table.cell_int !cnt;
            Table.cell_q_float !mx_mk;
            Table.cell_q_float !mx_mem;
            Table.cell_q_float (Memory.sigma_bound ~k);
          ])
    shapes;
  Table.print tbl

(** {b T6} — the Section II reduction for general (non-laminar) masks:
    makespan within 8× of the reduced LP lower bound. *)
let t6 ?(quick = false) ?(jobs = 1) () =
  let tbl =
    Table.create ~title:"T6: general (non-laminar) masks, 8-approximation of Section II"
      ~header:[ "n"; "m"; "inst"; "mean ALG/LB"; "max ALG/LB"; "bound" ]
  in
  let trials = if quick then 5 else 15 in
  let sizes = if quick then [ (4, 3) ] else [ (4, 3); (6, 4); (8, 5) ] in
  let items = List.concat_map (fun sz -> List.init trials (fun k -> (sz, k))) sizes in
  let results =
    sweep ~jobs
      (fun ((n, m), k) ->
        let rng = Rng.create (base_seed + (13 * k) + n) in
        (* random overlapping (non-laminar) family: all contiguous windows
           of width 2 plus the singletons *)
        let sets =
          List.init (m - 1) (fun i -> [ i; i + 1 ]) @ List.init m (fun i -> [ i ])
        in
        let nsets = List.length sets in
        let p =
          Array.init n (fun _ ->
              let base = 1 + Rng.int rng 8 in
              let windows = Array.init (m - 1) (fun _ -> base + 1 + Rng.int rng 3) in
              Array.init nsets (fun s ->
                  if s < m - 1 then Ptime.fin windows.(s)
                  else
                    (* singleton {i}: at most the windows containing i *)
                    let i = s - (m - 1) in
                    let cap =
                      List.fold_left Stdlib.min 1000
                        (List.filteri (fun w _ -> w = i - 1 || w = i) (Array.to_list windows |> List.map (fun x -> x)))
                    in
                    Ptime.fin (Stdlib.min base (Stdlib.max 1 (cap - 1)))))
        in
        match General_instance.make ~m ~sets ~p with
        | Error _ -> None
        | Ok g -> (
            match Approx.solve_general g with
            | Error _ -> None
            | Ok o when o.lower_bound > 0 ->
                Some (float_of_int o.makespan /. float_of_int o.lower_bound)
            | Ok _ -> None))
      items
  in
  let slice = slices results ~width:trials in
  List.iteri
    (fun ci (n, m) ->
      let ratios = rev_successes (slice ci) in
      if ratios <> [] then begin
        let mean = List.fold_left ( +. ) 0. ratios /. float_of_int (List.length ratios) in
        let mx = List.fold_left Float.max 0. ratios in
        Table.add_row tbl
          [
            Table.cell_int n;
            Table.cell_int m;
            Table.cell_int (List.length ratios);
            Table.cell_float mean;
            Table.cell_float mx;
            "8.000";
          ]
      end)
    sizes;
  Table.print tbl

(** {b F4} — Lemma V.1: fractional mass by level before and after the
    push-down; after the sweep everything sits on level-max singletons. *)
let f4 ?(quick = false) ?(jobs = 1) () =
  let tbl =
    Table.create ~title:"F4: Lemma V.1 push-down, fractional mass by set cardinality"
      ~header:[ "seed"; "card"; "mass before"; "mass after"; "feasible after" ]
  in
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ] in
  let rows_by_seed =
    sweep ~jobs
      (fun seed ->
        let module I = Ilp.Make (Hs_lp.Field.Exact) in
        let module P = Pushdown.Make (Hs_lp.Field.Exact) in
        let rng = Rng.create (base_seed + seed) in
        let lam = T.smp_cmp ~nodes:2 ~chips_per_node:2 ~cores_per_chip:2 in
        let inst = Generators.hierarchical rng ~lam ~n:10 ~base:(2, 8) ~overhead:0.25 () in
        match I.min_feasible_t inst with
        | None -> []
        | Some (t, x) ->
            let x' = P.push_down inst ~tmax:t x in
            let lamc = Instance.laminar inst in
            let mass (z : Q.t array array) card =
              let acc = ref Q.zero in
              Array.iteri
                (fun s row ->
                  if L.card lamc s = card then Array.iter (fun v -> acc := Q.add !acc v) row)
                z;
              !acc
            in
            let feas = P.feasible inst ~tmax:t x' && P.singletons_only inst x' in
            List.filter_map
              (fun card ->
                let before = mass x card and after = mass x' card in
                if Q.sign before <> 0 || Q.sign after <> 0 then
                  Some
                    [
                      Table.cell_int seed;
                      Table.cell_int card;
                      Table.cell_q_float before;
                      Table.cell_q_float after;
                      (if feas then "yes" else "NO");
                    ]
                else None)
              [ 1; 2; 4; 8 ])
      seeds
  in
  List.iter (List.iter (Table.add_row tbl)) rows_by_seed;
  Table.print tbl

(** {b F5} — the motivating SMP-CMP effect: realised makespan under
    explicit per-level migration latencies vs the model's makespan.
    Single instance, sequential. *)
let f5 ?(quick = false) () =
  let tbl =
    Table.create
      ~title:"F5: realised/model makespan on a 2x2x2 SMP-CMP cluster, by latency scale"
      ~header:
        [ "latency (chip,node,inter)"; "realised/model"; "stall"; "migr intra"; "migr chip"; "migr node" ]
  in
  let lam = T.smp_cmp ~nodes:2 ~chips_per_node:2 ~cores_per_chip:2 in
  let rng = Rng.create base_seed in
  let inst = Generators.hierarchical rng ~lam ~n:16 ~base:(3, 9) ~overhead:0.15 () in
  match Approx.Exact.solve inst with
  | Error _ -> print_endline "F5: pipeline failed"
  | Ok o ->
      (* Migrations need a migratory schedule: use a random feasible
         hierarchical assignment rather than the (partitioned) rounding
         output. *)
      let lamc = Instance.laminar o.instance in
      let a =
        Array.init (Instance.njobs o.instance) (fun j ->
            if j mod 3 = 0 then List.hd (L.roots lamc) else o.assignment.(j))
      in
      let t = Assignment.min_makespan o.instance a in
      (match Hierarchical.schedule o.instance a ~tmax:t with
      | Error e -> Printf.printf "F5: scheduler failed: %s\n" e
      | Ok sched ->
          let scales = if quick then [ 0; 2; 8 ] else [ 0; 1; 2; 4; 8; 16 ] in
          List.iter
            (fun s ->
              let table = [| 0; s; 2 * s; 4 * s |] in
              let latency = Hs_sim.Simulator.latency_of_levels lam table in
              let r = Hs_sim.Simulator.run ~lam sched ~latency in
              let by_level h =
                Option.value ~default:0 (List.assoc_opt h r.migrations_by_level)
              in
              Table.add_row tbl
                [
                  Printf.sprintf "(%d,%d,%d)" s (2 * s) (4 * s);
                  Table.cell_float
                    (float_of_int r.realised_makespan /. float_of_int (Stdlib.max 1 r.model_makespan));
                  Table.cell_int r.total_stall;
                  Table.cell_int (by_level 1);
                  Table.cell_int (by_level 2);
                  Table.cell_int (by_level 3);
                ])
            scales);
      Table.print tbl

(** {b A1} (ablation) — value of the branch-and-bound warm start: nodes
    explored with the built-in greedy warm start vs. seeding with the
    2-approximation's solution. *)
let a1 ?(quick = false) ?(jobs = 1) () =
  let tbl =
    Table.create ~title:"A1 (ablation): B&B warm start, node counts to proven optimality"
      ~header:[ "n"; "m"; "inst"; "greedy-start nodes"; "approx-start nodes"; "ratio" ]
  in
  let trials = if quick then 3 else 8 in
  let sizes = if quick then [ (8, 4) ] else [ (8, 4); (10, 4); (12, 5) ] in
  let items = List.concat_map (fun sz -> List.init trials (fun k -> (sz, k))) sizes in
  let results =
    sweep ~jobs
      (fun ((n, m), k) ->
        let rng = Rng.create (base_seed + (41 * k) + n) in
        let inst =
          Generators.hierarchical rng ~lam:(T.semi_partitioned m) ~n ~base:(1, 9)
            ~heterogeneity:1.7 ~overhead:0.25 ()
        in
        match (Exact.optimal inst, Approx.Exact.solve inst) with
        | Some (_, _, sg), Ok o when sg.proven -> (
            match Exact.optimal ~initial:(o.assignment, o.makespan) inst with
            | Some (_, _, sa) when sa.proven -> Some (sg.nodes, sa.nodes)
            | _ -> None)
        | _ -> None)
      items
  in
  let slice = slices results ~width:trials in
  List.iteri
    (fun ci (n, m) ->
      let acc_g = ref 0 and acc_a = ref 0 and cnt = ref 0 in
      List.iter
        (function
          | None -> ()
          | Some (g, a) ->
              acc_g := !acc_g + g;
              acc_a := !acc_a + a;
              incr cnt)
        (slice ci);
      if !cnt > 0 then
        Table.add_row tbl
          [
            Table.cell_int n;
            Table.cell_int m;
            Table.cell_int !cnt;
            Table.cell_int (!acc_g / !cnt);
            Table.cell_int (!acc_a / !cnt);
            Table.cell_float (float_of_int !acc_a /. float_of_int (Stdlib.max 1 !acc_g));
          ])
    sizes;
  Table.print tbl

(** {b A2} (ablation) — why the pipeline re-solves the unrelated
    restriction before rounding: the pushed-down solution (Lemma V.1) is
    feasible but generally not a vertex, so rounding it directly needs
    the greedy fallback; re-solving always yields a perfect matching. *)
let a2 ?(quick = false) ?(jobs = 1) () =
  let tbl =
    Table.create
      ~title:"A2 (ablation): LST on pushed-down solutions vs re-solved vertices"
      ~header:
        [ "inst"; "frac jobs (pushdown)"; "unmatched (pushdown)"; "frac jobs (resolve)"; "unmatched (resolve)" ]
  in
  let trials = if quick then 10 else 40 in
  let results =
    sweep ~jobs
      (fun k ->
        let module I = Ilp.Make (Hs_lp.Field.Exact) in
        let module P = Pushdown.Make (Hs_lp.Field.Exact) in
        let module R = Lst_rounding.Make (Hs_lp.Field.Exact) in
        let rng = Rng.create (base_seed + (59 * k)) in
        let m = 3 + Rng.int rng 4 in
        let n = 4 + Rng.int rng 6 in
        let inst =
          Generators.hierarchical rng
            ~lam:(Generators.random_laminar rng ~m ())
            ~n ~base:(1, 9) ~heterogeneity:1.7 ~overhead:0.3 ()
        in
        let closed, _ = Instance.with_singletons inst in
        match I.min_feasible_t closed with
        | None -> None
        | Some (t, x) -> (
            let xd = P.push_down closed ~tmax:t x in
            let iu = Approx.Exact.unrelated_restriction closed in
            match (R.round closed xd, I.lp_feasible iu ~tmax:t) with
            | Ok (_, spd), Some xu -> (
                match R.round iu xu with
                | Ok (_, srs) ->
                    Some
                      ( spd.fractional_jobs,
                        spd.fractional_jobs - spd.matched,
                        srs.fractional_jobs,
                        srs.fractional_jobs - srs.matched )
                | Error _ -> None)
            | _ -> None))
      (List.init trials (fun k -> k))
  in
  let pd_frac = ref 0 and pd_unmatched = ref 0 in
  let rs_frac = ref 0 and rs_unmatched = ref 0 in
  let cnt = ref 0 in
  List.iter
    (function
      | None -> ()
      | Some (pf, pu, rf, ru) ->
          incr cnt;
          pd_frac := !pd_frac + pf;
          pd_unmatched := !pd_unmatched + pu;
          rs_frac := !rs_frac + rf;
          rs_unmatched := !rs_unmatched + ru)
    results;
  Table.add_row tbl
    [
      Table.cell_int !cnt;
      Table.cell_int !pd_frac;
      Table.cell_int !pd_unmatched;
      Table.cell_int !rs_frac;
      Table.cell_int !rs_unmatched;
    ];
  Table.print tbl

(** {b A3} (ablation) — simplex pricing: wall time of the exact (IP-3)
    relaxation under Bland's rule vs Dantzig with Bland fallback.
    Sequential at any [jobs] (wall-clock measurement). *)
let a3 ?(quick = false) () =
  let module I = Ilp.Make (Hs_lp.Field.Exact) in
  let module S = Hs_lp.Simplex.Make (Hs_lp.Field.Exact) in
  let tbl =
    Table.create ~title:"A3 (ablation): simplex pricing on the (IP-3) relaxation"
      ~header:[ "n"; "m"; "vars"; "Bland (s)"; "Dantzig (s)"; "speedup" ]
  in
  let sizes = if quick then [ (8, 4) ] else [ (8, 4); (16, 4); (24, 6); (32, 6) ] in
  List.iter
    (fun (n, m) ->
      let rng = Rng.create (base_seed + n + (3 * m)) in
      let inst =
        Generators.hierarchical rng ~lam:(T.semi_partitioned m) ~n ~base:(2, 15)
          ~heterogeneity:1.7 ~overhead:0.2 ()
      in
      let closed, _ = Instance.with_singletons inst in
      match I.min_feasible_t closed with
      | None -> ()
      | Some (t, _) -> (
          match I.relaxation closed ~tmax:t with
          | None -> ()
          | Some (lp, _) ->
              let time pricing =
                let t0 = Sys.time () in
                for _ = 1 to 3 do
                  ignore (S.feasible ~pricing lp)
                done;
                (Sys.time () -. t0) /. 3.
              in
              let tb = time S.Bland and td = time S.Dantzig in
              Table.add_row tbl
                [
                  Table.cell_int n;
                  Table.cell_int m;
                  Table.cell_int lp.Hs_lp.Lp_problem.nvars;
                  Table.cell_float ~digits:4 tb;
                  Table.cell_float ~digits:4 td;
                  Table.cell_float (tb /. Float.max 1e-9 td);
                ]))
    sizes;
  Table.print tbl

let all ?quick ?jobs () =
  t1 ?quick ?jobs ();
  t2 ?quick ?jobs ();
  t3 ?quick ?jobs ();
  t4 ?quick ?jobs ();
  t5 ?quick ?jobs ();
  t6 ?quick ?jobs ();
  f1 ?quick ?jobs ();
  f2 ?quick ?jobs ();
  f3 ?quick ();
  f4 ?quick ?jobs ();
  f5 ?quick ();
  a1 ?quick ?jobs ();
  a2 ?quick ?jobs ();
  a3 ?quick ()

let by_name name ?quick ?jobs () =
  match String.lowercase_ascii name with
  | "t1" -> t1 ?quick ?jobs ()
  | "t2" -> t2 ?quick ?jobs ()
  | "t3" -> t3 ?quick ?jobs ()
  | "t4" -> t4 ?quick ?jobs ()
  | "t5" -> t5 ?quick ?jobs ()
  | "t6" -> t6 ?quick ?jobs ()
  | "f1" -> f1 ?quick ?jobs ()
  | "f2" -> f2 ?quick ?jobs ()
  | "f3" -> f3 ?quick ()
  | "f4" -> f4 ?quick ?jobs ()
  | "f5" -> f5 ?quick ()
  | "a1" -> a1 ?quick ?jobs ()
  | "a2" -> a2 ?quick ?jobs ()
  | "a3" -> a3 ?quick ()
  | "all" -> all ?quick ?jobs ()
  | other -> Printf.eprintf "unknown experiment %s (T1-T6, F1-F5, A1-A3, all)\n" other

let names =
  [ "T1"; "T2"; "T3"; "T4"; "T5"; "T6"; "F1"; "F2"; "F3"; "F4"; "F5"; "A1"; "A2"; "A3" ]
