(** Concrete preemptive schedules and their validity checker.

    A schedule is a set of execution segments inside the horizon [0, T).
    The paper's validity conditions (Section II) are checked literally:
    every segment runs on a machine of the job's affinity mask, a machine
    runs at most one job at a time, a job never runs on two machines
    simultaneously, and every job receives exactly [P_j(mask)] units. *)

open Hs_laminar

type segment = {
  job : int;
  machine : int;
  start : int;
  stop : int;  (** half-open interval [start, stop) *)
}

type t = { horizon : int; segments : segment list }

let horizon t = t.horizon
let segments t = t.segments

let makespan t = List.fold_left (fun acc s -> Stdlib.max acc s.stop) 0 t.segments

let machine_load t machine =
  List.fold_left
    (fun acc s -> if s.machine = machine then acc + (s.stop - s.start) else acc)
    0 t.segments

let job_time t job =
  List.fold_left
    (fun acc s -> if s.job = job then acc + (s.stop - s.start) else acc)
    0 t.segments

(* Check that the sorted-by-start segment list has no overlap. *)
let rec no_overlap = function
  | a :: (b :: _ as rest) -> a.stop <= b.start && no_overlap rest
  | [ _ ] | [] -> true

let validate inst assignment t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let lam = Instance.laminar inst in
  let n = Instance.njobs inst in
  let m = Laminar.m lam in
  let exception Bad of string in
  try
    if Array.length assignment <> n then raise (Bad "assignment length mismatch");
    List.iter
      (fun s ->
        if s.job < 0 || s.job >= n then raise (Bad (Printf.sprintf "segment with bad job %d" s.job));
        if s.machine < 0 || s.machine >= m then
          raise (Bad (Printf.sprintf "segment with bad machine %d" s.machine));
        if s.start < 0 || s.stop > t.horizon || s.start >= s.stop then
          raise
            (Bad
               (Printf.sprintf "segment of job %d on machine %d has bad interval [%d,%d)"
                  s.job s.machine s.start s.stop));
        if not (Laminar.mem lam assignment.(s.job) s.machine) then
          raise
            (Bad
               (Printf.sprintf "job %d runs on machine %d outside its mask #%d" s.job
                  s.machine assignment.(s.job))))
      t.segments;
    (* Per-machine exclusivity. *)
    for i = 0 to m - 1 do
      let segs =
        List.filter (fun s -> s.machine = i) t.segments
        |> List.sort (fun a b -> compare a.start b.start)
      in
      if not (no_overlap segs) then raise (Bad (Printf.sprintf "machine %d runs two jobs at once" i))
    done;
    (* Per-job: no self-parallelism, and exact processing volume. *)
    for j = 0 to n - 1 do
      let segs =
        List.filter (fun s -> s.job = j) t.segments
        |> List.sort (fun a b -> compare a.start b.start)
      in
      if not (no_overlap segs) then
        raise (Bad (Printf.sprintf "job %d runs on two machines simultaneously" j));
      let total = List.fold_left (fun acc s -> acc + (s.stop - s.start)) 0 segs in
      let need = Ptime.value_exn (Instance.ptime inst ~job:j ~set:assignment.(j)) in
      if total <> need then
        raise (Bad (Printf.sprintf "job %d got %d units, needs %d" j total need))
    done;
    Ok ()
  with Bad msg -> err "%s" msg

let is_valid inst assignment t = Result.is_ok (validate inst assignment t)

(** Segments of [job] covering the wrap-around wall-clock interval
    [\[pos, pos+len) mod horizon] on [machine]; one or two segments. *)
let wrap_segments ~horizon ~job ~machine ~pos ~len =
  assert (len >= 0 && len <= horizon && pos >= 0 && pos < horizon);
  if len = 0 then []
  else if pos + len <= horizon then [ { job; machine; start = pos; stop = pos + len } ]
  else
    [
      { job; machine; start = pos; stop = horizon };
      { job; machine; start = 0; stop = pos + len - horizon };
    ]

(** Merge time-adjacent segments of the same job on the same machine;
    canonicalises scheduler output and makes metrics meaningful. *)
let coalesce t =
  let sorted =
    List.sort
      (fun a b -> compare (a.job, a.machine, a.start) (b.job, b.machine, b.start))
      t.segments
  in
  let rec go acc = function
    | a :: b :: rest when a.job = b.job && a.machine = b.machine && a.stop = b.start ->
        go acc ({ a with stop = b.stop } :: rest)
    | a :: rest -> go (a :: acc) rest
    | [] -> List.rev acc
  in
  { t with segments = go [] sorted }

type job_stats = { runs : int; migrations : int; preemptions : int }

type stats = {
  n_segments : int;
  jobs : job_stats array;
  total_migrations : int;
  total_preemptions : int;
  stops : int;
}

(* Chronological accounting: coalesce first so that only genuine run
   boundaries count; each boundary is a migration when the machine
   changes, a preemption otherwise.  See Hs_model.Metrics for how this
   relates to the paper's tape-order counts (Proposition III.2). *)
let stats ?(njobs = 0) t =
  let t = coalesce t in
  let n = List.fold_left (fun acc s -> Stdlib.max acc (s.job + 1)) njobs t.segments in
  let jobs =
    Array.init n (fun j ->
        let runs =
          List.filter (fun s -> s.job = j) t.segments
          |> List.sort (fun a b -> compare a.start b.start)
        in
        let rec walk migr preempt = function
          | a :: (b :: _ as rest) ->
              if a.machine <> b.machine then walk (migr + 1) preempt rest
              else walk migr (preempt + 1) rest
          | [ _ ] | [] -> (migr, preempt)
        in
        let migrations, preemptions = walk 0 0 runs in
        { runs = List.length runs; migrations; preemptions })
  in
  let total_migrations =
    Array.fold_left (fun acc (j : job_stats) -> acc + j.migrations) 0 jobs
  in
  let total_preemptions =
    Array.fold_left (fun acc (j : job_stats) -> acc + j.preemptions) 0 jobs
  in
  {
    n_segments = List.length t.segments;
    jobs;
    total_migrations;
    total_preemptions;
    stops = total_migrations + total_preemptions;
  }

let pp fmt t =
  Format.fprintf fmt "@[<v>schedule, horizon %d:" t.horizon;
  List.iter
    (fun s ->
      Format.fprintf fmt "@,  job %d on machine %d during [%d,%d)" s.job s.machine s.start
        s.stop)
    (List.sort (fun a b -> compare (a.machine, a.start) (b.machine, b.start)) t.segments);
  Format.fprintf fmt "@]"
