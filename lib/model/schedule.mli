(** Concrete preemptive schedules and their validity checker.

    A schedule is a multiset of execution segments in the horizon
    [[0, T)].  {!validate} checks the paper's Section II conditions
    literally: segments stay on machines of the job's affinity mask, a
    machine runs one job at a time, a job never runs on two machines
    simultaneously, and every job receives exactly [P_j(mask)] units. *)

type segment = {
  job : int;
  machine : int;
  start : int;
  stop : int;  (** half-open interval [start, stop) *)
}

type t = { horizon : int; segments : segment list }

val horizon : t -> int
val segments : t -> segment list

val makespan : t -> int
(** Latest completion over all segments (0 for the empty schedule). *)

val machine_load : t -> int -> int
(** Total busy time of a machine. *)

val job_time : t -> int -> int
(** Total processing received by a job. *)

val validate : Instance.t -> Assignment.t -> t -> (unit, string) result
(** All Section II validity conditions; the error message pinpoints the
    first violation. *)

val is_valid : Instance.t -> Assignment.t -> t -> bool

val wrap_segments :
  horizon:int -> job:int -> machine:int -> pos:int -> len:int -> segment list
(** Segments covering the wrap-around interval [[pos, pos+len) mod
    horizon] on one machine; one or two segments ([] when [len = 0]).
    Requires [0 ≤ pos < horizon] and [0 ≤ len ≤ horizon]. *)

val coalesce : t -> t
(** Merge time-adjacent segments of the same job on the same machine;
    canonicalises scheduler output and makes metrics meaningful. *)

type job_stats = { runs : int; migrations : int; preemptions : int }

type stats = {
  n_segments : int;  (** segments after {!coalesce} *)
  jobs : job_stats array;
  total_migrations : int;
  total_preemptions : int;
  stops : int;  (** migrations + preemptions — accounting-independent *)
}

val stats : ?njobs:int -> t -> stats
(** Chronological migration/preemption accounting (boundaries between a
    job's maximal contiguous runs).  Individual labels can differ from
    the tape-order counts of Proposition III.2 for jobs wrapping the
    horizon, but [stops] is identical under both accountings; see
    {!Metrics}.  [njobs] forces the length of [jobs] when trailing jobs
    have no segments. *)

val pp : Format.formatter -> t -> unit
