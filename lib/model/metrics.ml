(** Preemption and migration accounting from a concrete schedule.

    For each job, execution is sorted into maximal contiguous runs (same
    machine, time-adjacent); every boundary between consecutive runs is a
    {e stop}: a {e migration} when the next run is on a different
    machine, otherwise a {e preemption}.

    Note on Proposition III.2: the paper's [m-1] migration bound counts
    along the wrap-around {e tape}, where a block crossing the horizon is
    contiguous and its cut is a preemption.  Chronological counting (this
    module) is a rotation of tape order for wrapped jobs, so individual
    labels can shift between the migration and preemption buckets — the
    {e total} number of stops is identical under both accountings, and
    the tape-order split is reported by the schedulers themselves
    ([Hs_core.Tape.laid]). *)

type per_job = { runs : int; migrations : int; preemptions : int }

type t = {
  per_job : per_job array;
  migrations : int;  (** schedule-wide total *)
  preemptions : int;  (** schedule-wide total *)
  stops : int;  (** migrations + preemptions *)
}

(* The accounting itself lives in {!Schedule.stats}; this module keeps
   the historical record shape. *)
let of_schedule ?njobs (sched : Schedule.t) =
  let s = Schedule.stats ?njobs sched in
  let per_job =
    Array.map
      (fun (j : Schedule.job_stats) ->
        {
          runs = j.Schedule.runs;
          migrations = j.Schedule.migrations;
          preemptions = j.Schedule.preemptions;
        })
      s.Schedule.jobs
  in
  {
    per_job;
    migrations = s.Schedule.total_migrations;
    preemptions = s.Schedule.total_preemptions;
    stops = s.Schedule.stops;
  }

let pp fmt t =
  Format.fprintf fmt "migrations=%d preemptions=%d stops=%d" t.migrations t.preemptions
    t.stops
