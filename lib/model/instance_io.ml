(** Plain-text instance files.

    Format (comments start with [#], blank lines ignored):

    {v
    machines 4
    sets 6
    0 1 2 3
    0 1
    2 3
    0
    1
    2
    jobs 2
    9 7 7 4 5 inf
    6 6 inf 3 3 inf
    v}

    Each job line lists one processing time per set, in set order; [inf]
    marks an inadmissible mask.  The family must be laminar and times
    monotone, as validated by {!Instance.make}. *)

open Hs_laminar

let to_string inst =
  let lam = Instance.laminar inst in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "machines %d\n" (Laminar.m lam));
  Buffer.add_string buf (Printf.sprintf "sets %d\n" (Laminar.size lam));
  List.iter
    (fun members ->
      Buffer.add_string buf (String.concat " " (List.map string_of_int members));
      Buffer.add_char buf '\n')
    (Laminar.sets lam);
  Buffer.add_string buf (Printf.sprintf "jobs %d\n" (Instance.njobs inst));
  for j = 0 to Instance.njobs inst - 1 do
    let row =
      List.init (Laminar.size lam) (fun s ->
          Ptime.to_string (Instance.ptime inst ~job:j ~set:s))
    in
    Buffer.add_string buf (String.concat " " row);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* Canonical form: the same plain-text format, but with the family
   members listed in sorted order (lexicographic on the sorted machine
   lists) and each job row permuted to match.  Two instance files that
   differ only in whitespace, comments, or the order they list the sets
   in therefore canonicalise — and hash — identically.  [Laminar.sets]
   already returns each set's members sorted, so member order inside a
   line never varies. *)
let canonicalize inst =
  let lam = Instance.laminar inst in
  let nsets = Laminar.size lam in
  let sets = Array.of_list (Laminar.sets lam) in
  let order = Array.init nsets (fun s -> s) in
  Array.sort (fun a b -> compare sets.(a) sets.(b)) order;
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "machines %d\n" (Laminar.m lam));
  Buffer.add_string buf (Printf.sprintf "sets %d\n" nsets);
  Array.iter
    (fun s ->
      Buffer.add_string buf
        (String.concat " " (List.map string_of_int sets.(s)));
      Buffer.add_char buf '\n')
    order;
  Buffer.add_string buf (Printf.sprintf "jobs %d\n" (Instance.njobs inst));
  for j = 0 to Instance.njobs inst - 1 do
    let row =
      List.init nsets (fun k ->
          Ptime.to_string (Instance.ptime inst ~job:j ~set:order.(k)))
    in
    Buffer.add_string buf (String.concat " " row);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let digest inst = Digest.to_hex (Digest.string (canonicalize inst))

let of_string text =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  try
    (* Repeated spaces are as insignificant in headers as they are in
       set and job lines — "machines   4" must parse like "machines 4",
       or two semantically identical files would disagree on validity
       (and the canonical digest could never see the second one). *)
    let expect_header name = function
      | line :: rest -> (
          match
            String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
          with
          | [ key; v ] when key = name -> (
              match int_of_string_opt v with
              | Some k when k >= 0 -> (k, rest)
              | _ -> fail "invalid %s count: %s" name v)
          | _ -> fail "expected '%s <count>', got '%s'" name line)
      | [] -> fail "missing '%s <count>' header" name
    in
    let parse_ints line =
      String.split_on_char ' ' line
      |> List.filter (fun s -> s <> "")
      |> List.map (fun s ->
             match int_of_string_opt s with
             | Some v -> v
             | None -> fail "invalid integer '%s'" s)
    in
    let take k lines what =
      let rec go k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> fail "unexpected end of file reading %s" what
        | l :: rest -> go (k - 1) (l :: acc) rest
      in
      go k [] lines
    in
    let m, lines = expect_header "machines" lines in
    let nsets, lines = expect_header "sets" lines in
    let set_lines, lines = take nsets lines "sets" in
    let sets = List.map parse_ints set_lines in
    (* Duplicate ids are rejected here, not silently canonicalised away:
       [Laminar.of_sets] sorts-and-dedups its input, so "0 0 1" would
       otherwise parse as {0,1} and two identical set lines would
       collapse into whichever survives — the file and the parsed model
       must not disagree about what was written. *)
    List.iteri
      (fun k members ->
        let sorted = List.sort compare members in
        let rec dup = function
          | a :: (b :: _ as rest) -> if a = b then Some a else dup rest
          | _ -> None
        in
        match dup sorted with
        | Some machine -> fail "set %d lists machine %d more than once" k machine
        | None -> ())
      sets;
    (let seen = Hashtbl.create 16 in
     List.iteri
       (fun k members ->
         let key = List.sort compare members in
         match Hashtbl.find_opt seen key with
         | Some k0 -> fail "set %d duplicates set %d" k k0
         | None -> Hashtbl.add seen key k)
       sets);
    let njobs, lines = expect_header "jobs" lines in
    let job_lines, rest = take njobs lines "jobs" in
    if rest <> [] then fail "trailing content after job lines";
    let parse_time s =
      if s = "inf" then Ptime.Inf
      else
        match int_of_string_opt s with
        | Some v when v >= 0 -> Ptime.fin v
        | _ -> fail "invalid processing time '%s'" s
    in
    let p =
      List.map
        (fun line ->
          let cells = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
          if List.length cells <> nsets then
            fail "job line has %d entries, expected %d" (List.length cells) nsets;
          Array.of_list (List.map parse_time cells))
        job_lines
      |> Array.of_list
    in
    match Laminar.of_sets ~m sets with
    | Error e -> Error e
    | Ok lam -> Instance.make lam p
  with
  | Bad msg -> err "%s" msg
  (* Hard guarantee for untrusted input: of_string never raises.  The
     structured [Bad] failures above cover everything we anticipate; any
     other exception out of the validators is still a parse error, not a
     crash. *)
  | Stack_overflow -> err "input too deeply nested"
  | Division_by_zero | Invalid_argument _ | Failure _ | Not_found | Sys_error _ ->
      err "malformed instance text"

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> Error e

let save path inst =
  match
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (to_string inst))
  with
  | () -> Ok ()
  | exception Sys_error e -> Error e
