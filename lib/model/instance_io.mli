(** Plain-text instance files.

    Format (comments start with [#], blank lines ignored):

    {v
    machines 4
    sets 6
    0 1 2 3
    0 1
    2 3
    0
    1
    2
    jobs 2
    9 7 7 4 5 6
    6 6 6 3 3 5
    v}

    Each job line lists one processing time per set, in set order; [inf]
    marks an inadmissible mask.  The family must be laminar and times
    monotone ({!Instance.make} validates). *)

val to_string : Instance.t -> string
(** Serialise; {!of_string} of the result reproduces the instance. *)

val canonicalize : Instance.t -> string
(** The canonical serialisation: same format as {!to_string}, but sets
    are listed in sorted order (lexicographic on their sorted machine
    lists) with job rows permuted to match, whitespace normalised to
    single spaces and no comments.  Two semantically identical instances
    — same family, same processing-time function — canonicalise to the
    same bytes even when their source files listed the sets in different
    orders or used different spacing. *)

val digest : Instance.t -> string
(** Content hash (hex) of {!canonicalize} — the result-cache key of the
    solver service (DESIGN.md §11). *)

val of_string : string -> (Instance.t, string) result
(** Parse untrusted text.  Total: malformed input of any shape is
    reported as [Error], never as an exception.  A set line listing the
    same machine id twice, or two set lines describing the same set, is
    rejected here (the laminar constructor would otherwise canonicalise
    the duplicates away silently); callers at typed boundaries wrap the
    message as [Hs_error.Parse_error]. *)

val load : string -> (Instance.t, string) result
(** Read a file; IO errors are reported as [Error]. *)

val save : string -> Instance.t -> (unit, string) result
(** Write a file; IO errors (unwritable path, full disk) are reported as
    [Error], never raised. *)
