(** Plain-text instance files.

    Format (comments start with [#], blank lines ignored):

    {v
    machines 4
    sets 6
    0 1 2 3
    0 1
    2 3
    0
    1
    2
    jobs 2
    9 7 7 4 5 6
    6 6 6 3 3 5
    v}

    Each job line lists one processing time per set, in set order; [inf]
    marks an inadmissible mask.  The family must be laminar and times
    monotone ({!Instance.make} validates). *)

val to_string : Instance.t -> string
(** Serialise; {!of_string} of the result reproduces the instance. *)

val of_string : string -> (Instance.t, string) result
(** Parse untrusted text.  Total: malformed input of any shape is
    reported as [Error], never as an exception. *)

val load : string -> (Instance.t, string) result
(** Read a file; IO errors are reported as [Error]. *)

val save : string -> Instance.t -> (unit, string) result
(** Write a file; IO errors (unwritable path, full disk) are reported as
    [Error], never raised. *)
