(** Structured verification verdicts (DESIGN.md §12).

    One {!item} per paper invariant re-validated; failures carry a
    witness string pinpointing the first violation.  A verdict is never
    a bare boolean: the consumer sees {e which} invariant failed and
    {e where}, and can render the whole certificate as JSON. *)

type item = {
  invariant : string;  (** stable dotted name, e.g. ["ip2.subtree-volume"] *)
  ok : bool;
  detail : string;
      (** for passes: what was established; for failures: the witness *)
}

type t

val pass : invariant:string -> string -> item
val fail : invariant:string -> ('a, unit, string, item) format4 -> 'a

val check :
  invariant:string -> bool -> witness:string -> detail:string -> item
(** [check ~invariant cond ~witness ~detail] passes with [detail] or
    fails with [witness]. *)

val make : subject:string -> item list -> t
(** [subject] names the artifact checked (["assignment"],
    ["schedule"], ["outcome"], …). *)

val merge : subject:string -> t list -> t

val subject : t -> string
val items : t -> item list
val ok : t -> bool
val failures : t -> item list
val first_failure : t -> item option

val to_error : t -> Hs_core.Hs_error.t option
(** [Some (Verification _)] built from the first failure; [None] when
    the verdict passes. *)

val to_json : t -> Hs_obs.Json.t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
