(** Whole-artifact certificates (DESIGN.md §12).

    Bundle the per-invariant checkers of {!Check} into one verdict per
    artifact kind.  [?lp] (default [true]) controls the expensive part:
    re-deriving the certified LP lower bound with the exact simplex so
    the Theorem V.2 bound is checked against an independently recomputed
    T*, not the pipeline's own claim. *)

open Hs_model

val instance : Instance.t -> Verdict.t
(** Laminarity and monotonicity of a bare instance. *)

val assignment : Instance.t -> Assignment.t -> tmax:int -> Verdict.t
(** Instance well-formedness plus (IP-2) at [tmax]. *)

val schedule : Instance.t -> Assignment.t -> Schedule.t -> Verdict.t
(** Instance well-formedness, (IP-2) at the schedule's horizon, and
    Section II validity of the concrete schedule. *)

val outcome : ?lp:bool -> Hs_core.Approx.Exact.outcome -> Verdict.t
(** The full Theorem V.2 pipeline outcome: assignment and schedule
    checks against the singleton-closed instance, the reported makespan,
    the recomputed LP lower bound (feasible at T*, certified infeasible
    at T* − 1), and ALG ≤ 2·T*. *)

val online_step :
  ?lp:bool ->
  Instance.t ->
  Assignment.t ->
  Schedule.t ->
  makespan:int ->
  t_lp:int ->
  resolve_admitted:bool ->
  migrated:Hs_numeric.Q.t ->
  allowed:Hs_numeric.Q.t option ->
  Verdict.t
(** One intermediate state of the online scheduler (DESIGN.md §15):
    instance well-formedness, (IP-2) at the reported makespan, Section II
    schedule validity, and {!Check.online_step}'s accounting invariants.
    [?lp] (default [false] — this runs once {e per event}) additionally
    re-derives the step's fresh lower bound with the exact simplex. *)

val robust : ?lp:bool -> Hs_core.Approx.robust_outcome -> Verdict.t
(** A budgeted outcome: base checks plus provenance-specific ones — a
    claimed optimum must equal its lower bound and dominate the LP
    horizon; an LP-approx outcome must satisfy the recomputed-T*
    Theorem V.2 bound. *)
