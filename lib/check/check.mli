(** Independent per-invariant checkers (DESIGN.md §12).

    Each function re-derives one family of paper invariants from raw
    accessors — member lists, processing times, segment endpoints —
    without calling the predicates of the module that produced the
    artifact, and reports one {!Verdict.item} per condition.  Fractional
    arithmetic is exact ({!Hs_numeric.Q}). *)

open Hs_model

val laminar_family : Hs_laminar.Laminar.t -> Verdict.item list
(** Well-formedness: members non-empty and in range, every pair of sets
    nested or disjoint, no duplicates. *)

val monotonicity : Instance.t -> Verdict.item list
(** [α ⊆ β ⇒ P_j(α) ≤ P_j(β)] with ∞ as top element (§II). *)

val assignment : Instance.t -> Assignment.t -> tmax:int -> Verdict.item list
(** (IP-2) at horizon [tmax]: well-formedness, (2c) job fit, (2b)
    subtree volume vs. aggregate capacity. *)

val fractional :
  Instance.t -> Hs_numeric.Q.t array array -> tmax:int -> Verdict.item list
(** (IP-3) relaxation at [tmax], exactly: non-negativity, restriction to
    [R], per-job unit mass, (3a) capacity.  [x.(set).(job)]. *)

val pushdown :
  Instance.t ->
  before:Hs_numeric.Q.t array array ->
  after:Hs_numeric.Q.t array array ->
  tmax:int ->
  Verdict.item list
(** Lemma V.1: after push-down the mass sits only on singletons, per-job
    mass is preserved, and (IP-3) feasibility still holds. *)

val allocation :
  Instance.t ->
  Assignment.t ->
  Hs_core.Hierarchical.allocation ->
  tmax:int ->
  Verdict.item list
(** Algorithm 2 output: volume conservation, Lemma IV.1 (chain sums and
    horizon), Lemma IV.2 (unique shared machine per set). *)

val schedule : Instance.t -> Assignment.t -> Schedule.t -> Verdict.item list
(** Section II validity by event sweep: segment bounds, affinity,
    machine exclusivity, job seriality, exact work conservation. *)

val tape_bounds : m:int -> Hs_core.Tape.stats -> Verdict.item list
(** Proposition III.2: migrations ≤ m−1 and stops ≤ 2m−2. *)

val online_step :
  Instance.t ->
  Assignment.t ->
  makespan:int ->
  t_lp:int ->
  resolve_admitted:bool ->
  migrated:Hs_numeric.Q.t ->
  allowed:Hs_numeric.Q.t option ->
  Verdict.item list
(** Per-event invariants of the online scheduler (DESIGN.md §15) against
    the {e active} instance of the step: the reported makespan is exactly
    the Theorem IV.3 minimal horizon of the current assignment
    (re-derived from raw member arrays); the fresh LP lower bound [t_lp]
    is dominated (so the competitive ratio is ≥ 1); the cumulative
    voluntarily migrated volume [migrated] stays within [allowed] ([None]
    = unlimited, exact rationals); and when [resolve_admitted] — the
    migration budget admitted adopting the fresh re-solve — the makespan
    holds the Theorem V.2 envelope [≤ 2·t_lp]. *)

val lp_vertex :
  Hs_numeric.Q.t Hs_lp.Lp_problem.t ->
  x:Hs_numeric.Q.t array ->
  basic:bool array ->
  objective:Hs_numeric.Q.t ->
  Verdict.item list
(** Vertex-structure invariants for a solution the simplex engines claim
    is basic feasible: array shapes match [nvars]; every variable flagged
    nonbasic sits at its bound 0; the basic support has at most one
    variable per constraint row; the point is primal feasible ([x ≥ 0]
    and every constraint holds, in exact arithmetic); and the reported
    objective equals [c·x] recomputed from the problem statement.
    {!lp_lower_bound} runs these on its recomputed witness; tests feed
    deliberately corrupted solutions to check the blame messages. *)

val lp_lower_bound : Instance.t -> t_lp:int -> Verdict.item list
(** Recompute the certified lower bound: the (IP-3) relaxation is
    feasible at [t_lp] — with the recomputed witness held to the
    {!lp_vertex} contract — and certified infeasible (verified Farkas
    witness) at [t_lp − 1]. *)

val theorem_v2 : t_lp:int -> makespan:int -> Verdict.item list
(** The end-to-end bound ALG ≤ 2·T*. *)
