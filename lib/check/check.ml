(** Independent re-validation of the paper's invariants.

    Every checker here re-derives its condition from raw accessors —
    member lists, processing times, segment endpoints — deliberately
    avoiding the predicates of the modules that {e produced} the
    artifact, so a bug in a producer cannot hide inside its own checker.
    Fractional arithmetic is exact ({!Hs_numeric.Q}); schedule overlap
    is established by an event sweep rather than the sort-and-compare
    pass of {!Hs_model.Schedule.validate}. *)

open Hs_model
open Hs_laminar
module Q = Hs_numeric.Q
module V = Verdict

(* Subset test on raw sorted member arrays — independent of the forest
   structure Laminar materialised. *)
let subset_arr (a : int array) (b : int array) =
  let na = Array.length a and nb = Array.length b in
  let rec go i j =
    if i >= na then true
    else if j >= nb then false
    else if a.(i) = b.(j) then go (i + 1) (j + 1)
    else if a.(i) > b.(j) then go i (j + 1)
    else false
  in
  go 0 0

let members_of lam = Array.init (Laminar.size lam) (Laminar.members lam)

(* {1 Laminar family well-formedness} *)

let laminar_family lam =
  let m = Laminar.m lam in
  let sets = members_of lam in
  let nsets = Array.length sets in
  let bad_range = ref None in
  Array.iteri
    (fun s mem ->
      if Array.length mem = 0 then bad_range := Some (s, None)
      else
        Array.iter
          (fun i -> if i < 0 || i >= m then bad_range := Some (s, Some i))
          mem)
    sets;
  let range_item =
    match !bad_range with
    | None ->
        V.pass ~invariant:"laminar.members"
          (Printf.sprintf "%d sets non-empty within %d machines" nsets m)
    | Some (s, None) -> V.fail ~invariant:"laminar.members" "set %d is empty" s
    | Some (s, Some i) ->
        V.fail ~invariant:"laminar.members" "set %d lists machine %d outside [0,%d)"
          s i m
  in
  (* Pairwise: nested or disjoint, and no duplicates. *)
  let clash = ref None in
  for a = 0 to nsets - 1 do
    for b = a + 1 to nsets - 1 do
      if !clash = None then begin
        let sa = sets.(a) and sb = sets.(b) in
        if sa = sb then clash := Some (a, b, `Dup)
        else
          let meets =
            Array.exists (fun i -> Array.exists (fun j -> i = j) sb) sa
          in
          if meets && (not (subset_arr sa sb)) && not (subset_arr sb sa) then
            clash := Some (a, b, `Cross)
      end
    done
  done;
  let laminar_item =
    match !clash with
    | None ->
        V.pass ~invariant:"laminar.nested-or-disjoint"
          "every pair of sets is nested or disjoint"
    | Some (a, b, `Dup) ->
        V.fail ~invariant:"laminar.nested-or-disjoint" "sets %d and %d are equal" a b
    | Some (a, b, `Cross) ->
        V.fail ~invariant:"laminar.nested-or-disjoint"
          "sets %d and %d properly overlap" a b
  in
  [ range_item; laminar_item ]

(* {1 Monotonicity of processing times} *)

let monotonicity inst =
  let lam = Instance.laminar inst in
  let sets = members_of lam in
  let nsets = Array.length sets in
  let bad = ref None in
  for a = 0 to nsets - 1 do
    for b = 0 to nsets - 1 do
      if a <> b && subset_arr sets.(a) sets.(b) then
        for j = 0 to Instance.njobs inst - 1 do
          let pa = Instance.ptime inst ~job:j ~set:a
          and pb = Instance.ptime inst ~job:j ~set:b in
          if (not (Ptime.leq pa pb)) && !bad = None then bad := Some (j, a, b)
        done
    done
  done;
  match !bad with
  | None ->
      [ V.pass ~invariant:"instance.monotone" "P_j(α) ≤ P_j(β) for all α ⊆ β" ]
  | Some (j, a, b) ->
      [
        V.fail ~invariant:"instance.monotone"
          "job %d: P(set %d) > P(set %d) though set %d ⊆ set %d" j a b a b;
      ]

(* {1 (IP-2): integral assignment feasibility at a horizon} *)

let assignment inst (a : Assignment.t) ~tmax =
  let lam = Instance.laminar inst in
  let n = Instance.njobs inst and nsets = Laminar.size lam in
  let sets = members_of lam in
  if Array.length a <> n then
    [
      V.fail ~invariant:"ip2.well-formed" "assignment has %d entries, instance %d jobs"
        (Array.length a) n;
    ]
  else begin
    let bad = ref None in
    Array.iteri
      (fun j s ->
        if s < 0 || s >= nsets then bad := Some (V.fail ~invariant:"ip2.well-formed" "job %d assigned out-of-range set %d" j s)
        else if not (Ptime.is_fin (Instance.ptime inst ~job:j ~set:s)) then
          bad := Some (V.fail ~invariant:"ip2.well-formed" "job %d assigned inadmissible set %d" j s))
      a;
    match !bad with
    | Some item -> [ item ]
    | None ->
        let wf =
          V.pass ~invariant:"ip2.well-formed"
            (Printf.sprintf "%d jobs on admissible in-range masks" n)
        in
        (* (2c): every used processing time fits the horizon. *)
        let oversize = ref None in
        Array.iteri
          (fun j s ->
            let p = Ptime.value_exn (Instance.ptime inst ~job:j ~set:s) in
            if p > tmax && !oversize = None then oversize := Some (j, s, p))
          a;
        let fit =
          match !oversize with
          | None ->
              V.pass ~invariant:"ip2.job-fits"
                (Printf.sprintf "every assigned time ≤ horizon %d" tmax)
          | Some (j, s, p) ->
              V.fail ~invariant:"ip2.job-fits" "job %d on set %d needs %d > horizon %d"
                j s p tmax
        in
        (* (2b): subtree volume vs. aggregate capacity, re-derived from
           raw member arrays. *)
        let overflow = ref None in
        for alpha = 0 to nsets - 1 do
          let vol = ref 0 in
          Array.iteri
            (fun j s ->
              if subset_arr sets.(s) sets.(alpha) then
                vol := !vol + Ptime.value_exn (Instance.ptime inst ~job:j ~set:s))
            a;
          let cap = Array.length sets.(alpha) * tmax in
          if !vol > cap && !overflow = None then overflow := Some (alpha, !vol, cap)
        done;
        let cap_item =
          match !overflow with
          | None ->
              V.pass ~invariant:"ip2.subtree-volume"
                (Printf.sprintf "subtree volumes fit |α|·%d on all %d sets" tmax nsets)
          | Some (alpha, vol, cap) ->
              V.fail ~invariant:"ip2.subtree-volume"
                "set %d carries subtree volume %d > capacity %d" alpha vol cap
        in
        [ wf; fit; cap_item ]
  end

(* {1 (IP-3) relaxation: fractional feasibility in exact rationals} *)

let fractional inst (x : Q.t array array) ~tmax =
  let lam = Instance.laminar inst in
  let n = Instance.njobs inst and nsets = Laminar.size lam in
  let sets = members_of lam in
  if
    Array.length x <> nsets
    || Array.exists (fun row -> Array.length row <> n) x
  then
    [
      V.fail ~invariant:"ip3.shape" "solution is not a %d×%d set-by-job matrix" nsets
        n;
    ]
  else begin
    let neg = ref None and escaped = ref None in
    for s = 0 to nsets - 1 do
      for j = 0 to n - 1 do
        let v = x.(s).(j) in
        if Q.sign v < 0 && !neg = None then neg := Some (s, j);
        if (not (Q.is_zero v)) && not (Ptime.fits (Instance.ptime inst ~job:j ~set:s) ~tmax)
        then if !escaped = None then escaped := Some (s, j)
      done
    done;
    let nonneg =
      match !neg with
      | None -> V.pass ~invariant:"ip3.nonneg" "all x ≥ 0"
      | Some (s, j) ->
          V.fail ~invariant:"ip3.nonneg" "x[set %d][job %d] = %s < 0" s j
            (Q.to_string x.(s).(j))
    in
    let restricted =
      match !escaped with
      | None ->
          V.pass ~invariant:"ip3.restricted"
            (Printf.sprintf "weight only on pairs with p ≤ %d" tmax)
      | Some (s, j) ->
          V.fail ~invariant:"ip3.restricted"
            "x[set %d][job %d] = %s but p = %s exceeds horizon %d" s j
            (Q.to_string x.(s).(j))
            (Ptime.to_string (Instance.ptime inst ~job:j ~set:s))
            tmax
    in
    (* (3·assignment): each job's weights sum to one. *)
    let short = ref None in
    for j = 0 to n - 1 do
      let sum = ref Q.zero in
      for s = 0 to nsets - 1 do
        sum := Q.add !sum x.(s).(j)
      done;
      if (not (Q.equal !sum Q.one)) && !short = None then short := Some (j, !sum)
    done;
    let assigned =
      match !short with
      | None -> V.pass ~invariant:"ip3.assignment" "Σ_α x_{αj} = 1 for every job"
      | Some (j, sum) ->
          V.fail ~invariant:"ip3.assignment" "job %d total weight %s ≠ 1" j
            (Q.to_string sum)
    in
    (* (3a): subtree volume within aggregate capacity, exactly. *)
    let overflow = ref None in
    for alpha = 0 to nsets - 1 do
      let vol = ref Q.zero in
      for s = 0 to nsets - 1 do
        if subset_arr sets.(s) sets.(alpha) then
          for j = 0 to n - 1 do
            if not (Q.is_zero x.(s).(j)) then
              match Ptime.value (Instance.ptime inst ~job:j ~set:s) with
              | Some p -> vol := Q.add !vol (Q.mul_int x.(s).(j) p)
              | None -> ()
          done
      done;
      let cap = Q.of_int (Array.length sets.(alpha) * tmax) in
      if Q.gt !vol cap && !overflow = None then overflow := Some (alpha, !vol, cap)
    done;
    let capacity =
      match !overflow with
      | None ->
          V.pass ~invariant:"ip3.capacity"
            (Printf.sprintf "fractional subtree volumes fit |α|·%d" tmax)
      | Some (alpha, vol, cap) ->
          V.fail ~invariant:"ip3.capacity" "set %d carries volume %s > capacity %s"
            alpha (Q.to_string vol) (Q.to_string cap)
    in
    [ nonneg; restricted; assigned; capacity ]
  end

(* {1 Lemma V.1: push-down} *)

let pushdown inst ~before ~after ~tmax =
  let lam = Instance.laminar inst in
  let n = Instance.njobs inst and nsets = Laminar.size lam in
  let sets = members_of lam in
  (* Singleton-only mass: any weight on a set of cardinality > 1 is a
     violation. *)
  let stray = ref None in
  for s = 0 to nsets - 1 do
    if Array.length sets.(s) > 1 then
      for j = 0 to n - 1 do
        if (not (Q.is_zero after.(s).(j))) && !stray = None then stray := Some (s, j)
      done
  done;
  let singleton_item =
    match !stray with
    | None ->
        V.pass ~invariant:"lemma-v1.singleton-mass" "all weight on singleton sets"
    | Some (s, j) ->
        V.fail ~invariant:"lemma-v1.singleton-mass"
          "job %d keeps weight %s on non-singleton set %d" j
          (Q.to_string after.(s).(j))
          s
  in
  (* Per-job mass is preserved exactly. *)
  let drift = ref None in
  for j = 0 to n - 1 do
    let sum rows =
      let s = ref Q.zero in
      Array.iter (fun row -> s := Q.add !s row.(j)) rows;
      !s
    in
    let b = sum before and a = sum after in
    if (not (Q.equal b a)) && !drift = None then drift := Some (j, b, a)
  done;
  let mass_item =
    match !drift with
    | None -> V.pass ~invariant:"lemma-v1.mass-preserved" "per-job mass unchanged"
    | Some (j, b, a) ->
        V.fail ~invariant:"lemma-v1.mass-preserved" "job %d mass %s → %s" j
          (Q.to_string b) (Q.to_string a)
  in
  singleton_item :: mass_item :: fractional inst after ~tmax

(* {1 Lemmas IV.1 / IV.2: Algorithm 2 allocations} *)

let allocation inst (a : Assignment.t) (alloc : Hs_core.Hierarchical.allocation)
    ~tmax =
  let lam = Instance.laminar inst in
  let nsets = Laminar.size lam in
  let m = Laminar.m lam in
  let sets = members_of lam in
  let { Hs_core.Hierarchical.load; tot_load } = alloc in
  (* Volume conservation: Algorithm 2 splits exactly the direct volume
     of each set over its machines. *)
  let vol_bad = ref None in
  for s = 0 to nsets - 1 do
    let want = ref 0 in
    Array.iteri
      (fun j sj ->
        if sj = s then
          want := !want + Ptime.value_exn (Instance.ptime inst ~job:j ~set:s))
      a;
    let got = Array.fold_left ( + ) 0 load.(s) in
    if got <> !want && !vol_bad = None then vol_bad := Some (s, got, !want)
  done;
  let volume_item =
    match !vol_bad with
    | None ->
        V.pass ~invariant:"alg2.volume-conserved"
          "per-set load sums equal assigned volumes"
    | Some (s, got, want) ->
        V.fail ~invariant:"alg2.volume-conserved"
          "set %d: allocated %d units, assigned volume is %d" s got want
  in
  (* Lemma IV.1, re-derived: TOT-LOAD.(α).(i) is the chain sum of LOAD
     over the subsets of α containing machine i (Algorithm 2 fills
     bottom-up, so the cumulative load on i within α is what the subtree
     below α already placed there) and never exceeds the horizon. *)
  let chain_bad = ref None and over = ref None in
  for s = 0 to nsets - 1 do
    for i = 0 to m - 1 do
      let sum = ref 0 in
      for b = 0 to nsets - 1 do
        if subset_arr sets.(b) sets.(s) && Array.exists (fun k -> k = i) sets.(b)
        then sum := !sum + load.(b).(i)
      done;
      if tot_load.(s).(i) <> !sum && !chain_bad = None then
        chain_bad := Some (s, i, tot_load.(s).(i), !sum);
      if !sum > tmax && !over = None then over := Some (s, i, !sum)
    done
  done;
  let chain_item =
    match !chain_bad with
    | None ->
        V.pass ~invariant:"lemma-iv1.chain-sum"
          "TOT-LOAD equals the subtree chain sum of LOAD"
    | Some (s, i, got, want) ->
        V.fail ~invariant:"lemma-iv1.chain-sum"
          "set %d machine %d: TOT-LOAD %d ≠ chain sum %d" s i got want
  in
  let horizon_item =
    match !over with
    | None ->
        V.pass ~invariant:"lemma-iv1.horizon"
          (Printf.sprintf "cumulative loads ≤ horizon %d" tmax)
    | Some (s, i, v) ->
        V.fail ~invariant:"lemma-iv1.horizon"
          "set %d machine %d cumulative load %d > horizon %d" s i v tmax
  in
  (* Lemma IV.2, re-derived: within each set at most one machine is
     loaded both by the set and by a strict superset. *)
  let shared_bad = ref None in
  for s = 0 to nsets - 1 do
    let shared = ref 0 in
    Array.iter
      (fun i ->
        if load.(s).(i) > 0 then begin
          let above = ref 0 in
          for b = 0 to nsets - 1 do
            if
              b <> s
              && subset_arr sets.(s) sets.(b)
              && Array.exists (fun k -> k = i) sets.(b)
            then above := !above + load.(b).(i)
          done;
          if !above > 0 then incr shared
        end)
      sets.(s);
    if !shared > 1 && !shared_bad = None then shared_bad := Some (s, !shared)
  done;
  let shared_item =
    match !shared_bad with
    | None ->
        V.pass ~invariant:"lemma-iv2.unique-shared"
          "≤ 1 machine per set also loaded by a strict superset"
    | Some (s, k) ->
        V.fail ~invariant:"lemma-iv2.unique-shared"
          "set %d has %d machines loaded by strict supersets" s k
  in
  [ volume_item; chain_item; horizon_item; shared_item ]

(* {1 Section II: concrete schedule validity, by event sweep} *)

let schedule inst (a : Assignment.t) (sched : Schedule.t) =
  let lam = Instance.laminar inst in
  let horizon = Schedule.horizon sched in
  let segs = Schedule.segments sched in
  let n = Instance.njobs inst and m = Laminar.m lam in
  (* Bounds and affinity. *)
  let bounds_bad = ref None and aff_bad = ref None in
  List.iter
    (fun ({ Schedule.job; machine; start; stop } as _seg) ->
      if
        (job < 0 || job >= n || machine < 0 || machine >= m || start < 0
       || stop > horizon || start >= stop)
        && !bounds_bad = None
      then bounds_bad := Some (job, machine, start, stop)
      else if
        job >= 0 && job < n
        && not (Array.exists (fun i -> i = machine) (Laminar.members lam a.(job)))
        && !aff_bad = None
      then aff_bad := Some (job, machine))
    segs;
  let bounds_item =
    match !bounds_bad with
    | None ->
        V.pass ~invariant:"sched.segments"
          (Printf.sprintf "%d segments well-formed within [0,%d)" (List.length segs)
             horizon)
    | Some (j, i, s, e) ->
        V.fail ~invariant:"sched.segments"
          "segment job %d machine %d [%d,%d) escapes [0,%d)" j i s e horizon
  in
  let affinity_item =
    match !aff_bad with
    | None ->
        V.pass ~invariant:"sched.affinity" "segments stay on the assigned masks"
    | Some (j, i) ->
        V.fail ~invariant:"sched.affinity" "job %d runs on machine %d outside its mask"
          j i
  in
  match !bounds_bad with
  | Some _ -> [ bounds_item; affinity_item ]
  | None ->
      (* Event sweep: +1 at start, −1 at stop; a prefix sum above one is
         a double booking.  Run once per machine and once per job. *)
      let sweep key_of label =
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun seg ->
            let k = key_of seg in
            let evs = try Hashtbl.find tbl k with Not_found -> [] in
            Hashtbl.replace tbl k
              ((seg.Schedule.start, 1) :: (seg.Schedule.stop, -1) :: evs))
          segs;
        let clash = ref None in
        Hashtbl.iter
          (fun k evs ->
            let evs =
              List.sort
                (fun (t1, d1) (t2, d2) -> if t1 <> t2 then compare t1 t2 else compare d1 d2)
                evs
            in
            let depth = ref 0 in
            List.iter
              (fun (t, d) ->
                depth := !depth + d;
                if !depth > 1 && !clash = None then clash := Some (k, t))
              evs)
          tbl;
        match !clash with
        | None -> V.pass ~invariant:label "no overlap (event sweep)"
        | Some (k, t) ->
            V.fail ~invariant:label "%s %d double-booked at time %d"
              (if label = "sched.machine-exclusive" then "machine" else "job")
              k t
      in
      let machine_item = sweep (fun s -> s.Schedule.machine) "sched.machine-exclusive" in
      let job_item = sweep (fun s -> s.Schedule.job) "sched.job-serial" in
      (* Work conservation: every job receives exactly P_j(mask). *)
      let received = Array.make n 0 in
      List.iter
        (fun { Schedule.job; start; stop; _ } ->
          received.(job) <- received.(job) + (stop - start))
        segs;
      let short = ref None in
      for j = 0 to n - 1 do
        let want = Ptime.value_exn (Instance.ptime inst ~job:j ~set:a.(j)) in
        if received.(j) <> want && !short = None then short := Some (j, received.(j), want)
      done;
      let work_item =
        match !short with
        | None ->
            V.pass ~invariant:"sched.work-conserved"
              "every job receives exactly its processing time"
        | Some (j, got, want) ->
            V.fail ~invariant:"sched.work-conserved" "job %d receives %d of %d units" j
              got want
      in
      [ bounds_item; affinity_item; machine_item; job_item; work_item ]

(* {1 Proposition III.2: migration / preemption bounds} *)

let tape_bounds ~m (stats : Hs_core.Tape.stats) =
  let migrations = stats.Hs_core.Tape.migrations in
  let stops = Hs_core.Tape.stops stats in
  [
    V.check ~invariant:"prop-iii2.migrations"
      (migrations <= m - 1)
      ~witness:(Printf.sprintf "%d migrations > m−1 = %d" migrations (m - 1))
      ~detail:(Printf.sprintf "%d migrations ≤ m−1 = %d" migrations (m - 1));
    V.check ~invariant:"prop-iii2.stops"
      (stops <= (2 * m) - 2)
      ~witness:(Printf.sprintf "%d stops > 2m−2 = %d" stops ((2 * m) - 2))
      ~detail:(Printf.sprintf "%d stops ≤ 2m−2 = %d" stops ((2 * m) - 2));
  ]

(* {1 Online per-step invariants (DESIGN.md §15)} *)

let online_step inst (a : Assignment.t) ~makespan ~t_lp ~resolve_admitted
    ~migrated ~allowed =
  let lam = Instance.laminar inst in
  let sets = members_of lam in
  let nsets = Array.length sets in
  (* Theorem IV.3's closed form, re-derived from raw member arrays: the
     minimal horizon of a fixed set assignment is the larger of the
     biggest assigned time and the per-set ceiling of subtree volume
     over cardinality.  The online scheduler must report exactly it —
     neither an optimistic underbid nor slack it would hide behind. *)
  let tight =
    if Array.length a <> Instance.njobs inst then
      V.fail ~invariant:"online.makespan-tight"
        "assignment has %d entries, instance %d jobs" (Array.length a)
        (Instance.njobs inst)
    else begin
      let best = ref 0 in
      Array.iteri
        (fun j s ->
          let p = Ptime.value_exn (Instance.ptime inst ~job:j ~set:s) in
          if p > !best then best := p)
        a;
      for alpha = 0 to nsets - 1 do
        let vol = ref 0 in
        Array.iteri
          (fun j s ->
            if subset_arr sets.(s) sets.(alpha) then
              vol := !vol + Ptime.value_exn (Instance.ptime inst ~job:j ~set:s))
          a;
        let card = Array.length sets.(alpha) in
        let need = (!vol + card - 1) / card in
        if need > !best then best := need
      done;
      V.check ~invariant:"online.makespan-tight" (makespan = !best)
        ~witness:
          (Printf.sprintf "reported makespan %d ≠ minimal horizon %d" makespan
             !best)
        ~detail:
          (Printf.sprintf "reported makespan is the minimal horizon %d" !best)
    end
  in
  (* Any feasible assignment's makespan dominates OPT, which dominates
     the LP horizon — so the competitive ratio is well-defined (≥ 1). *)
  let lower =
    V.check ~invariant:"online.lower-bound" (t_lp <= makespan)
      ~witness:(Printf.sprintf "makespan %d below LP lower bound %d" makespan t_lp)
      ~detail:(Printf.sprintf "LP lower bound %d ≤ makespan %d" t_lp makespan)
  in
  let budget =
    match allowed with
    | None ->
        V.pass ~invariant:"online.budget"
          (Printf.sprintf "migrated volume %s under an unlimited budget"
             (Q.to_string migrated))
    | Some cap ->
        V.check ~invariant:"online.budget" (Q.leq migrated cap)
          ~witness:
            (Printf.sprintf "migrated volume %s > allowance %s"
               (Q.to_string migrated) (Q.to_string cap))
          ~detail:
            (Printf.sprintf "migrated volume %s ≤ allowance %s"
               (Q.to_string migrated) (Q.to_string cap))
  in
  (* Whenever the budget admitted the fresh re-solve, the scheduler holds
     the Theorem V.2 envelope against the fresh lower bound: it either
     adopted the 2-approximate candidate or kept a strictly better
     current assignment.  A budget-blocked step asserts nothing — the
     competitive-ratio harness reports how far those steps drift. *)
  let regression =
    if resolve_admitted then
      V.check ~invariant:"online.no-regression"
        (makespan <= 2 * t_lp)
        ~witness:
          (Printf.sprintf "makespan %d > 2·T* = %d after an admitted re-solve"
             makespan (2 * t_lp))
        ~detail:
          (Printf.sprintf "makespan %d ≤ 2·T* = %d against the fresh LP bound"
             makespan (2 * t_lp))
    else
      V.pass ~invariant:"online.no-regression"
        "re-solve not admitted by the migration budget; envelope not asserted"
  in
  [ tight; lower; budget; regression ]

(* {1 The LP lower bound, recomputed} *)

module Ilp_exact = Hs_core.Ilp.Make (Hs_lp.Field.Exact)

(* {1 LP vertex structure}

   simplex.mli promises basic feasible solutions (vertices), and the
   Lenstra–Shmoys–Tardos support bound rests on that promise; these
   checks hold a returned solution to it.  The [basic] flags must be
   consistent with [x] (a nonbasic variable sits at its bound 0), the
   basic support cannot exceed the row count (a basis has one column
   per row), the point must satisfy every constraint with [x ≥ 0], and
   the reported objective must equal [c·x] recomputed from the problem
   statement. *)
let lp_vertex (lp : Q.t Hs_lp.Lp_problem.t) ~x ~basic ~objective =
  let open Hs_lp.Lp_problem in
  let nv = Stdlib.min (Array.length x) (Array.length basic) in
  let shape =
    V.check ~invariant:"lp.vertex.shape"
      (Array.length x = lp.nvars && Array.length basic = lp.nvars)
      ~witness:
        (Printf.sprintf "|x| = %d and |basic| = %d against nvars = %d"
           (Array.length x) (Array.length basic) lp.nvars)
      ~detail:(Printf.sprintf "solution arrays match nvars = %d" lp.nvars)
  in
  let loose = ref None in
  for v = nv - 1 downto 0 do
    if (not basic.(v)) && Q.sign x.(v) <> 0 then loose := Some v
  done;
  let at_bound =
    match !loose with
    | None ->
        V.pass ~invariant:"lp.vertex.nonbasic-at-bound"
          "every nonbasic variable sits at its bound 0"
    | Some v ->
        V.fail ~invariant:"lp.vertex.nonbasic-at-bound"
          "variable %d is flagged nonbasic but x = %s ≠ 0 — not the claimed vertex"
          v (Q.to_string x.(v))
  in
  let support = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 basic in
  let rows = nconstrs lp in
  let support_ok =
    V.check ~invariant:"lp.vertex.support"
      (support <= rows)
      ~witness:
        (Printf.sprintf "%d basic variables exceed the %d constraint rows" support rows)
      ~detail:(Printf.sprintf "basic support %d ≤ %d rows" support rows)
  in
  let nonneg = ref true in
  Array.iter (fun xv -> if Q.sign xv < 0 then nonneg := false) x;
  let violated =
    List.find_opt
      (fun c ->
        let lhs =
          List.fold_left
            (fun acc (v, a) ->
              if v < Array.length x then Q.add acc (Q.mul a x.(v)) else acc)
            Q.zero c.terms
        in
        match c.rel with
        | Le -> Q.compare lhs c.rhs > 0
        | Ge -> Q.compare lhs c.rhs < 0
        | Eq -> Q.sign (Q.sub lhs c.rhs) <> 0)
      lp.constrs
  in
  let feasible_pt =
    match (!nonneg, violated) with
    | true, None ->
        V.pass ~invariant:"lp.vertex.feasible"
          "x ≥ 0 and every constraint holds"
    | false, _ -> V.fail ~invariant:"lp.vertex.feasible" "some x is negative"
    | _, Some c ->
        V.fail ~invariant:"lp.vertex.feasible" "constraint %s violated at x"
          (if c.cname = "" then "<unnamed>" else c.cname)
  in
  let cx =
    List.fold_left
      (fun acc (v, c) ->
        if v < Array.length x then Q.add acc (Q.mul c x.(v)) else acc)
      Q.zero lp.objective
  in
  let obj_ok =
    V.check ~invariant:"lp.vertex.objective"
      (Q.sign (Q.sub cx objective) = 0)
      ~witness:
        (Printf.sprintf "reported objective %s but c·x = %s" (Q.to_string objective)
           (Q.to_string cx))
      ~detail:"reported objective equals c·x"
  in
  [ shape; at_bound; support_ok; feasible_pt; obj_ok ]

let lp_lower_bound inst ~t_lp =
  let feasible, vertex =
    match Ilp_exact.relaxation inst ~tmax:t_lp with
    | None ->
        ( V.fail ~invariant:"lp.feasible-at-t"
            "(IP-3) relaxation infeasible at T* = %d" t_lp,
          [] )
    | Some (lp, _) -> (
        match Ilp_exact.Solver.feasible lp with
        | Some sol ->
            ( V.pass ~invariant:"lp.feasible-at-t"
                (Printf.sprintf "(IP-3) relaxation feasible at T* = %d" t_lp),
              (* The recomputed witness must itself be the vertex the
                 solver contract promises. *)
              lp_vertex lp ~x:sol.Ilp_exact.Solver.x
                ~basic:sol.Ilp_exact.Solver.basic
                ~objective:sol.Ilp_exact.Solver.objective )
        | None ->
            ( V.fail ~invariant:"lp.feasible-at-t"
                "(IP-3) relaxation infeasible at T* = %d" t_lp,
              [] ))
  in
  let minimal =
    if t_lp = 0 then V.pass ~invariant:"lp.minimal" "T* = 0 is trivially minimal"
    else if Ilp_exact.certified_infeasible inst ~tmax:(t_lp - 1) then
      V.pass ~invariant:"lp.minimal"
        (Printf.sprintf "T* − 1 = %d certified infeasible (Farkas)" (t_lp - 1))
    else
      V.fail ~invariant:"lp.minimal"
        "relaxation not certified infeasible at T* − 1 = %d — T* is not minimal"
        (t_lp - 1)
  in
  (feasible :: vertex) @ [ minimal ]

(* {1 Theorem V.2} *)

let theorem_v2 ~t_lp ~makespan =
  [
    V.check ~invariant:"thm-v2.bound"
      (makespan <= 2 * t_lp)
      ~witness:(Printf.sprintf "makespan %d > 2·T* = %d" makespan (2 * t_lp))
      ~detail:(Printf.sprintf "makespan %d ≤ 2·T* = %d" makespan (2 * t_lp));
  ]
