(** Whole-artifact certificates: bundle the per-invariant checkers of
    {!Check} into one verdict per artifact kind, including the pipeline
    outcomes of {!Hs_core.Approx}.  The expensive LP recomputation
    (re-deriving the certified lower bound with an exact simplex) is on
    by default and can be switched off for bulk verification. *)

open Hs_model
module A = Hs_core.Approx
module V = Verdict

let instance inst =
  V.make ~subject:"instance"
    (Check.laminar_family (Instance.laminar inst) @ Check.monotonicity inst)

let assignment inst a ~tmax =
  V.make ~subject:"assignment"
    (Check.laminar_family (Instance.laminar inst)
    @ Check.monotonicity inst
    @ Check.assignment inst a ~tmax)

let schedule inst a sched =
  let tmax = Schedule.horizon sched in
  V.make ~subject:"schedule"
    (Check.laminar_family (Instance.laminar inst)
    @ Check.monotonicity inst
    @ Check.assignment inst a ~tmax
    @ Check.schedule inst a sched)

(* The full Theorem V.2 pipeline outcome: the artifact is checked
   against the singleton-closed instance it refers to. *)
let outcome ?(lp = true) (o : A.Exact.outcome) =
  let inst = o.A.Exact.instance in
  let items =
    Check.laminar_family (Instance.laminar inst)
    @ Check.monotonicity inst
    @ Check.assignment inst o.assignment ~tmax:o.makespan
    @ Check.schedule inst o.assignment o.schedule
    @ [
        V.check ~invariant:"outcome.makespan"
          (Schedule.makespan o.schedule <= o.makespan
          && Schedule.horizon o.schedule <= o.makespan)
          ~witness:
            (Printf.sprintf "schedule runs to %d, reported makespan %d"
               (Schedule.makespan o.schedule) o.makespan)
          ~detail:
            (Printf.sprintf "schedule completes within reported makespan %d"
               o.makespan);
      ]
    @ (if lp then Check.lp_lower_bound inst ~t_lp:o.t_lp else [])
    @ Check.theorem_v2 ~t_lp:o.t_lp ~makespan:o.makespan
  in
  V.make ~subject:"outcome" items

(* One intermediate state of the online scheduler: the active instance,
   the current certified assignment and its realised schedule, plus the
   online-specific accounting invariants.  [?lp] re-derives the step's
   fresh lower bound with the exact simplex, as for [outcome]. *)
let online_step ?(lp = false) inst a sched ~makespan ~t_lp ~resolve_admitted
    ~migrated ~allowed =
  V.make ~subject:"online-step"
    (Check.laminar_family (Instance.laminar inst)
    @ Check.monotonicity inst
    @ Check.assignment inst a ~tmax:makespan
    @ Check.schedule inst a sched
    @ Check.online_step inst a ~makespan ~t_lp ~resolve_admitted ~migrated
        ~allowed
    @ if lp then Check.lp_lower_bound inst ~t_lp else [])

module Ilp_exact = Hs_core.Ilp.Make (Hs_lp.Field.Exact)

(* A robust (budgeted) outcome: the lower bound's meaning depends on the
   path that produced the artifact. *)
let robust ?(lp = true) (r : A.robust_outcome) =
  let inst = r.A.r_instance in
  let base =
    Check.laminar_family (Instance.laminar inst)
    @ Check.monotonicity inst
    @ Check.assignment inst r.r_assignment ~tmax:r.r_makespan
    @ Check.schedule inst r.r_assignment r.r_schedule
    @ [
        V.check ~invariant:"outcome.bound-order"
          (r.r_lower_bound <= r.r_makespan)
          ~witness:
            (Printf.sprintf "lower bound %d > makespan %d" r.r_lower_bound
               r.r_makespan)
          ~detail:
            (Printf.sprintf "lower bound %d ≤ makespan %d" r.r_lower_bound
               r.r_makespan);
      ]
  in
  let provenance =
    match r.r_provenance with
    | A.Exact_optimal ->
        [
          V.check ~invariant:"outcome.optimal"
            (r.r_lower_bound = r.r_makespan)
            ~witness:
              (Printf.sprintf "claimed optimal but bound %d ≠ makespan %d"
                 r.r_lower_bound r.r_makespan)
            ~detail:"proven optimum: lower bound equals makespan";
        ]
        @
        if lp then
          (* The LP horizon T* lower-bounds OPT; a proven optimum below
             a feasible T* would be a contradiction. *)
          match Ilp_exact.min_feasible_t inst with
          | Some (t_lp, _) ->
              [
                V.check ~invariant:"outcome.lp-consistent"
                  (t_lp <= r.r_makespan)
                  ~witness:
                    (Printf.sprintf "LP lower bound %d > claimed optimum %d" t_lp
                       r.r_makespan)
                  ~detail:
                    (Printf.sprintf "LP lower bound %d ≤ optimum %d" t_lp
                       r.r_makespan);
              ]
          | None ->
              [
                V.fail ~invariant:"outcome.lp-consistent"
                  "no LP-feasible horizon exists yet a schedule was produced";
              ]
        else []
    | A.Lp_approx _ ->
        (if lp then Check.lp_lower_bound inst ~t_lp:r.r_lower_bound else [])
        @ Check.theorem_v2 ~t_lp:r.r_lower_bound ~makespan:r.r_makespan
  in
  V.make ~subject:"outcome" (base @ provenance)
