(** Structured verification verdicts.

    A verdict is the result of re-validating one artifact against the
    paper's invariants: one {!item} per invariant checked, each either
    passing or failing with a witness string that pinpoints the first
    violation found.  Verdicts render to JSON for machine consumption
    and to an indented text report for humans; a failing verdict
    converts to the typed {!Hs_core.Hs_error.Verification} error so the
    CLI and the service surface it on their usual error paths. *)

type item = {
  invariant : string;  (** stable dotted name, e.g. ["ip2.subtree-volume"] *)
  ok : bool;
  detail : string;
      (** for passes: what was established; for failures: the witness
          pinpointing the first violation *)
}

type t = { subject : string; items : item list }

let pass ~invariant detail = { invariant; ok = true; detail }

let fail ~invariant fmt =
  Printf.ksprintf (fun detail -> { invariant; ok = false; detail }) fmt

(* [check ~invariant cond ~witness ~detail]: one boolean invariant. *)
let check ~invariant cond ~witness ~detail =
  if cond then pass ~invariant detail else { invariant; ok = false; detail = witness }

let make ~subject items = { subject; items }
let items t = t.items
let subject t = t.subject
let ok t = List.for_all (fun i -> i.ok) t.items
let failures t = List.filter (fun i -> not i.ok) t.items
let first_failure t = List.find_opt (fun i -> not i.ok) t.items

let to_error t =
  match first_failure t with
  | None -> None
  | Some { invariant; detail; _ } ->
      Some (Hs_core.Hs_error.Verification { invariant; witness = detail })

let merge ~subject ts = { subject; items = List.concat_map items ts }

let to_json t =
  let open Hs_obs.Json in
  Obj
    [
      ("subject", String t.subject);
      ("ok", Bool (ok t));
      ("checked", Int (List.length t.items));
      ("failed", Int (List.length (failures t)));
      ( "invariants",
        List
          (List.map
             (fun i ->
               Obj
                 [
                   ("invariant", String i.invariant);
                   ("ok", Bool i.ok);
                   ((if i.ok then "detail" else "witness"), String i.detail);
                 ])
             t.items) );
    ]

let pp fmt t =
  Format.fprintf fmt "certificate: %s — %s@\n" t.subject
    (if ok t then "PASS" else "FAIL");
  List.iter
    (fun i ->
      Format.fprintf fmt "  [%s] %-28s %s@\n"
        (if i.ok then "ok" else "FAIL")
        i.invariant i.detail)
    t.items

let to_string t = Format.asprintf "%a" pp t
