(* Intrusive doubly-linked LRU list + hash table: O(1) find/add/evict.
   The list is kept in recency order, head = most recent. *)

let hits = Hs_obs.Metrics.counter "service.cache.hit"
let misses = Hs_obs.Metrics.counter "service.cache.miss"
let evictions = Hs_obs.Metrics.counter "service.cache.evict"

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (** towards the head (more recent) *)
  mutable next : 'a node option;  (** towards the tail (less recent) *)
}

type 'a t = {
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  cap : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  { tbl = Hashtbl.create (2 * capacity); head = None; tail = None; cap = capacity }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None ->
      Hs_obs.Metrics.incr misses;
      None
  | Some n ->
      Hs_obs.Metrics.incr hits;
      unlink t n;
      push_front t n;
      Some n.value

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl n.key;
      Hs_obs.Metrics.incr evictions

(* Recency-ordered walk, head (most recent) first.  Raw traversal: it
   must not touch the hit/miss counters, it is for snapshots. *)
let to_list t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some n -> walk ((n.key, n.value) :: acc) n.next
  in
  walk [] t.head

let add t key value =
  (match Hashtbl.find_opt t.tbl key with
  | Some n ->
      n.value <- value;
      unlink t n;
      push_front t n
  | None ->
      let n = { key; value; prev = None; next = None } in
      Hashtbl.replace t.tbl key n;
      push_front t n);
  if Hashtbl.length t.tbl > t.cap then evict_lru t
