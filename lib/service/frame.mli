(** Length-prefixed wire frames for the solver service.

    Grammar (DESIGN.md §11): a frame is an 8-digit lowercase-hex payload
    length, a newline, and exactly that many payload bytes:

    {v
    frame   ::= header payload
    header  ::= hex{8} '\n'
    payload ::= byte{length}
    v}

    The header is fixed-width ASCII so a human can read a capture and a
    corrupted stream fails fast: a non-hex header byte or a declared
    length above {!max_payload} is detected as soon as the header is
    complete, before any payload is buffered.  The decoder is
    incremental (feed bytes as they arrive, pull complete frames) and
    {e total}: malformed input of any shape surfaces as a typed
    {!error}, never as an exception or an unbounded buffer.

    The buffer itself is bounded ({!max_buffer}): a malicious length
    prefix (say 2 GB) is rejected at header-parse time without any
    allocation, a peer that streams bytes without completing a frame is
    cut off with {!Overrun}, and once a decoder has failed it silently
    drops all further input — so one bad connection can never cost more
    than {!max_buffer} bytes of memory.

    Framing is also the wire-telemetry choke point: every encode/decode
    bumps the domain-local [frame.encoded] / [frame.decoded] /
    [frame.bytes.in] / [frame.bytes.out] / [frame.errors] counters
    ({!Hs_obs.Metrics}), which [hsched stats] reports as service
    throughput. *)

val max_payload : int
(** Upper bound on a payload (16 MiB).  Larger declared lengths are
    rejected without buffering. *)

val max_buffer : int
(** Default upper bound on a decoder's unconsumed buffer
    ({!max_payload} + the header width); {!feed} beyond it is the
    {!Overrun} error, not an allocation. *)

val encode : string -> string
(** [encode payload] is the wire form.  Raises [Invalid_argument] when
    the payload exceeds {!max_payload} — encoding oversized frames is a
    programming error, not an input condition. *)

type error =
  | Bad_header of string  (** header bytes are not 8 hex digits + newline *)
  | Oversized of int  (** declared length exceeds {!max_payload} *)
  | Truncated of int  (** EOF with this many unconsumed bytes buffered *)
  | Overrun of int
      (** this many bytes arrived without a complete frame inside the
          decoder's buffer bound *)

val error_to_string : error -> string

type decoder

val create : ?max_buffer:int -> unit -> decoder
(** [max_buffer] (default {!max_buffer}) bounds the unconsumed buffer;
    raises [Invalid_argument] when it cannot hold a header. *)

val feed : decoder -> string -> unit
(** Append raw bytes received from the peer.  Feeding past the buffer
    bound sets the sticky {!Overrun} error; feeding a failed decoder
    drops the bytes. *)

val next : decoder -> (string option, error) result
(** The next complete payload, [Ok None] when more bytes are needed.
    Decode errors are sticky: once the stream is malformed every
    subsequent call reports the same error. *)

val at_eof : decoder -> (unit, error) result
(** Call when the peer closed the connection: [Error (Truncated _)] when
    a partial frame (or a sticky decode error) is pending, [Ok ()] on a
    clean frame boundary. *)

val buffered : decoder -> int
(** Bytes received but not yet consumed as complete frames. *)
