(* JSON codec for the service protocol; see the interface for the
   grammar and the status-code contract. *)

module Json = Hs_obs.Json

type solve_params = {
  instance_text : string;
  budget : int option;
  deadline_ms : int option;
  trace_id : string option;
}

type online_params =
  | Online_open of { trace_text : string; beta : string option; check : bool }
  | Online_event of { session : int; event_text : string }
  | Online_close of { session : int }

type request =
  | Solve of solve_params
  | Online of online_params
  | Stats
  | Introspect of { recent : bool }
  | Ping
  | Shutdown

let version = 1

type response = {
  rid : int;
  status : int;
  cached : bool;
  body : string;
  error : string;
  retry_after_ms : int;
  spans : Json.t list;
}

let ok ~rid ?(cached = false) ?(spans = []) body =
  { rid; status = 0; cached; body; error = ""; retry_after_ms = 0; spans }

let err ~rid ~status ?(spans = []) error =
  { rid; status; cached = false; body = ""; error; retry_after_ms = 0; spans }

let overloaded ~rid ~retry_after_ms =
  let e = Hs_core.Hs_error.Overloaded { retry_after_ms } in
  {
    rid;
    status = Hs_core.Hs_error.exit_code e;
    cached = false;
    body = "";
    error = Hs_core.Hs_error.to_string e;
    retry_after_ms;
    spans = [];
  }

let status_of_error = Hs_core.Hs_error.exit_code

let request_to_json ~id req =
  let base = [ ("hsched.rpc", Json.Int version); ("id", Json.Int id) ] in
  let rest =
    match req with
    | Solve { instance_text; budget; deadline_ms; trace_id } ->
        [ ("verb", Json.String "solve"); ("instance", Json.String instance_text) ]
        @ (match budget with None -> [] | Some k -> [ ("budget", Json.Int k) ])
        @ (match deadline_ms with None -> [] | Some d -> [ ("deadline_ms", Json.Int d) ])
        @ (match trace_id with None -> [] | Some t -> [ ("trace_id", Json.String t) ])
    | Online (Online_open { trace_text; beta; check }) ->
        [ ("verb", Json.String "online"); ("op", Json.String "open");
          ("trace", Json.String trace_text) ]
        @ (match beta with None -> [] | Some b -> [ ("beta", Json.String b) ])
        @ if check then [ ("check", Json.Bool true) ] else []
    | Online (Online_event { session; event_text }) ->
        [
          ("verb", Json.String "online");
          ("op", Json.String "event");
          ("session", Json.Int session);
          ("event", Json.String event_text);
        ]
    | Online (Online_close { session }) ->
        [
          ("verb", Json.String "online");
          ("op", Json.String "close");
          ("session", Json.Int session);
        ]
    | Stats -> [ ("verb", Json.String "stats") ]
    | Introspect { recent } ->
        ("verb", Json.String "introspect")
        :: (if recent then [ ("recent", Json.Bool true) ] else [])
    | Ping -> [ ("verb", Json.String "ping") ]
    | Shutdown -> [ ("verb", Json.String "shutdown") ]
  in
  Json.Obj (base @ rest)

let int_member key json =
  match Json.member key json with Some (Json.Int v) -> Some v | _ -> None

let string_member key json =
  match Json.member key json with Some (Json.String v) -> Some v | _ -> None

let bool_member key json =
  match Json.member key json with Some (Json.Bool v) -> Some v | _ -> None

(* The id is recovered even from otherwise-malformed requests, so the
   error response can still be correlated by the client. *)
let request_of_json json =
  match json with
  | Json.Obj _ -> (
      let id = Option.value ~default:(-1) (int_member "id" json) in
      match int_member "hsched.rpc" json with
      | Some v when v <> version ->
          Error (id, Printf.sprintf "unsupported protocol version %d (want %d)" v version)
      | None -> Error (id, "missing integer \"hsched.rpc\" version")
      | Some _ when id < 0 -> Error (id, "missing or negative integer \"id\"")
      | Some _ -> (
      match string_member "verb" json with
      | None -> Error (id, "missing or non-string \"verb\"")
      | Some "solve" -> (
          match string_member "instance" json with
          | None -> Error (id, "solve needs a string \"instance\"")
          | Some instance_text -> (
              let budget =
                match Json.member "budget" json with
                | None -> Ok None
                | Some (Json.Int k) when k > 0 -> Ok (Some k)
                | Some _ -> Error "\"budget\" must be a positive integer"
              in
              let deadline_ms =
                match Json.member "deadline_ms" json with
                | None -> Ok None
                | Some (Json.Int d) when d >= 0 -> Ok (Some d)
                | Some _ -> Error "\"deadline_ms\" must be a non-negative integer"
              in
              let trace_id =
                match Json.member "trace_id" json with
                | None -> Ok None
                | Some (Json.String t) when t <> "" -> Ok (Some t)
                | Some _ -> Error "\"trace_id\" must be a non-empty string"
              in
              match (budget, deadline_ms, trace_id) with
              | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error (id, e)
              | Ok budget, Ok deadline_ms, Ok trace_id ->
                  Ok (id, Solve { instance_text; budget; deadline_ms; trace_id })))
      | Some "online" -> (
          match string_member "op" json with
          | None -> Error (id, "online needs a string \"op\"")
          | Some "open" -> (
              match string_member "trace" json with
              | None -> Error (id, "online open needs a string \"trace\"")
              | Some trace_text -> (
                  let beta =
                    match Json.member "beta" json with
                    | None -> Ok None
                    | Some (Json.String b) when b <> "" -> Ok (Some b)
                    | Some _ -> Error "\"beta\" must be a non-empty string"
                  in
                  match beta with
                  | Error e -> Error (id, e)
                  | Ok beta ->
                      let check =
                        Option.value ~default:false (bool_member "check" json)
                      in
                      Ok (id, Online (Online_open { trace_text; beta; check }))))
          | Some "event" -> (
              match (int_member "session" json, string_member "event" json) with
              | Some session, Some event_text when session >= 0 ->
                  Ok (id, Online (Online_event { session; event_text }))
              | _ ->
                  Error
                    ( id,
                      "online event needs a non-negative integer \"session\" and \
                       a string \"event\"" ))
          | Some "close" -> (
              match int_member "session" json with
              | Some session when session >= 0 ->
                  Ok (id, Online (Online_close { session }))
              | _ ->
                  Error (id, "online close needs a non-negative integer \"session\""))
          | Some op -> Error (id, Printf.sprintf "unknown online op %S" op))
      | Some "stats" -> Ok (id, Stats)
      | Some "introspect" ->
          Ok
            ( id,
              Introspect
                { recent = Option.value ~default:false (bool_member "recent" json) } )
      | Some "ping" -> Ok (id, Ping)
      | Some "shutdown" -> Ok (id, Shutdown)
      | Some verb -> Error (id, Printf.sprintf "unknown verb %S" verb)))
  | _ -> Error (-1, "request is not a JSON object")

let response_to_json r =
  Json.Obj
    ([
       ("hsched.rpc", Json.Int version);
       ("id", Json.Int r.rid);
       ("status", Json.Int r.status);
       ("cached", Json.Bool r.cached);
       ("body", Json.String r.body);
       ("error", Json.String r.error);
     ]
    @ (if r.retry_after_ms > 0 then [ ("retry_after_ms", Json.Int r.retry_after_ms) ]
       else [])
    @ if r.spans <> [] then [ ("spans", Json.List r.spans) ] else [])

let response_of_json json =
  match json with
  | Json.Obj _ -> (
      match (int_member "id" json, int_member "status" json) with
      | Some rid, Some status ->
          Ok
            {
              rid;
              status;
              cached = Option.value ~default:false (bool_member "cached" json);
              body = Option.value ~default:"" (string_member "body" json);
              error = Option.value ~default:"" (string_member "error" json);
              retry_after_ms =
                Stdlib.max 0
                  (Option.value ~default:0 (int_member "retry_after_ms" json));
              spans =
                (match Json.member "spans" json with
                | Some (Json.List l) -> l
                | _ -> []);
            }
      | _ -> Error "response needs integer \"id\" and \"status\"")
  | _ -> Error "response is not a JSON object"
