(** The daemon's table of live online-scheduling sessions.

    One {!entry} per [online open] (DESIGN.md §15): the server-side
    {!Hs_online.Replay.Session} plus the identity and accounting the
    flight recorder and introspection report.  The table is bounded —
    [open] beyond [capacity] is refused so a client cannot grow daemon
    state without limit (the admission-control stance of the solve
    queue, answered with the same typed overloaded response).

    Ids are never reused within one daemon lifetime, so a stale id after
    a [close] fails loudly instead of landing on a stranger's session. *)

type entry = {
  session : Hs_online.Replay.Session.t;
  digest : string;  (** trace digest from [open]; recorder correlation *)
  mutable events : int;  (** events applied, including those replayed at open *)
}

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : t -> int

val length : t -> int
(** Sessions currently open. *)

val opened : t -> int
(** Total sessions ever opened (monotone). *)

val open_ :
  t -> digest:string -> Hs_online.Replay.Session.t -> int option
(** Register a session and return its id; [None] when the table is at
    capacity. *)

val find : t -> int -> entry option
val close : t -> int -> entry option
(** Remove and return the session; [None] for an unknown (or already
    closed) id. *)
