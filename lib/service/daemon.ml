(* Select-loop daemon; see the interface for the architecture. *)

module Json = Hs_obs.Json
module Metrics = Hs_obs.Metrics

let c_batches = Metrics.counter "service.batches"
let h_batch = Metrics.histogram ~buckets:[ 1; 2; 4; 8; 16; 32; 64; 128 ] "service.batch.size"

type config = {
  socket_path : string;
  jobs : int;
  cache_capacity : int;
  default_budget : int option;
  max_batch : int;
  verify : bool;
  log : string -> unit;
}

let default_config ~socket_path =
  {
    socket_path;
    jobs = 1;
    cache_capacity = 128;
    default_budget = None;
    max_batch = 64;
    verify = false;
    log = ignore;
  }

type conn = {
  fd : Unix.file_descr;
  dec : Frame.decoder;
  mutable alive : bool;
}

type work = { w_conn : conn; w_rid : int; w_params : Protocol.solve_params }

type state = {
  cfg : config;
  listen_fd : Unix.file_descr;
  mutable conns : conn list;
  queue : work Queue.t;
  engine : Engine.t;  (** classification, cache, solving, verification *)
  mutable draining : (conn * int) option;  (** shutdown requester *)
}

(* ---- low-level IO ---------------------------------------------------- *)

let close_conn st c =
  if c.alive then begin
    c.alive <- false;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    st.conns <- List.filter (fun c' -> c' != c) st.conns
  end

(* Blocking-ish write on a nonblocking fd: wait for writability with a
   deadline so one stuck client cannot wedge the loop.  Failures just
   drop the connection — the daemon must outlive any client. *)
let write_all st c s =
  let n = String.length s in
  let pos = ref 0 in
  (try
     while c.alive && !pos < n do
       match Unix.write_substring c.fd s !pos (n - !pos) with
       | written -> pos := !pos + written
       | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> (
           match Unix.select [] [ c.fd ] [] 10.0 with
           | [], [], [] -> close_conn st c (* write deadline expired *)
           | _ -> ()
           | exception Unix.Unix_error (EINTR, _, _) -> ())
       | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
           close_conn st c
     done
   with Unix.Unix_error _ -> close_conn st c);
  c.alive

let send st c (r : Protocol.response) =
  ignore (write_all st c (Frame.encode (Json.to_string (Protocol.response_to_json r))))

(* ---- request handling ------------------------------------------------ *)

let protocol_err st c ~rid msg =
  send st c (Protocol.err ~rid ~status:2 ("protocol error: " ^ msg))

let stats_body () =
  let snap = Metrics.snapshot () in
  let v name = Option.value ~default:0 (Metrics.find_counter snap name) in
  Printf.sprintf
    "service.cache.evict = %d\nservice.cache.hit = %d\nservice.cache.miss = %d\nservice.requests = %d"
    (v "service.cache.evict") (v "service.cache.hit") (v "service.cache.miss")
    (v "service.requests")

let handle_payload st c payload =
  match Json.parse payload with
  | Error msg -> protocol_err st c ~rid:(-1) ("bad JSON: " ^ msg)
  | Ok json -> (
      match Protocol.request_of_json json with
      | Error (rid, msg) -> protocol_err st c ~rid msg
      | Ok (rid, Protocol.Ping) -> send st c (Protocol.ok ~rid "pong")
      | Ok (rid, Protocol.Stats) -> send st c (Protocol.ok ~rid (stats_body ()))
      | Ok (rid, Protocol.Shutdown) ->
          if st.draining = None then st.draining <- Some (c, rid)
      | Ok (rid, Protocol.Solve p) ->
          if st.draining <> None then
            send st c (Protocol.err ~rid ~status:2 "server is draining")
          else Queue.add { w_conn = c; w_rid = rid; w_params = p } st.queue)

let read_buf = Bytes.create 65536

let read_conn st c =
  let rec pull_frames () =
    if c.alive then
      match Frame.next c.dec with
      | Ok (Some payload) ->
          handle_payload st c payload;
          pull_frames ()
      | Ok None -> ()
      | Error e ->
          (* Frame sync is lost: answer once, typed, and hang up. *)
          protocol_err st c ~rid:(-1) (Frame.error_to_string e);
          close_conn st c
  in
  let rec read_loop () =
    if c.alive then
      match Unix.read c.fd read_buf 0 (Bytes.length read_buf) with
      | 0 ->
          (* EOF: a partial frame left behind is a typed fault too. *)
          (match Frame.at_eof c.dec with
          | Ok () -> ()
          | Error e -> protocol_err st c ~rid:(-1) (Frame.error_to_string e));
          close_conn st c
      | n ->
          Frame.feed c.dec (Bytes.sub_string read_buf 0 n);
          pull_frames ();
          if n = Bytes.length read_buf then read_loop ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> close_conn st c
  in
  read_loop ()

(* ---- the admission queue --------------------------------------------- *)

(* One batch: hand the admitted requests to the engine (which
   classifies against the cache, coalesces duplicates and solves the
   distinct misses on the pool), then respond in admission order. *)
let process_batch st =
  let batch = ref [] in
  while Queue.length st.queue > 0 && List.length !batch < st.cfg.max_batch do
    batch := Queue.pop st.queue :: !batch
  done;
  let batch = List.rev !batch in
  Metrics.incr c_batches;
  Metrics.observe h_batch (List.length batch);
  Hs_obs.Tracer.with_span ~cat:"service"
    ~args:[ ("batch.size", Hs_obs.Tracer.Int (List.length batch)) ]
    "service.batch"
  @@ fun () ->
  let answers = Engine.solve_batch st.engine (List.map (fun w -> w.w_params) batch) in
  List.iter2
    (fun w (a : Engine.answer) ->
      send st w.w_conn
        {
          Protocol.rid = w.w_rid;
          status = a.Engine.status;
          cached = a.Engine.cached;
          body = a.Engine.body;
          error = a.Engine.error;
        })
    batch answers

let drain_queue st =
  while not (Queue.is_empty st.queue) do
    process_batch st
  done

(* ---- socket setup ---------------------------------------------------- *)

(* A leftover socket file from a crashed daemon must not block restarts,
   but a live daemon must: probe with a connect. *)
let claim_socket_path path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then Error (Printf.sprintf "%s: a daemon is already serving" path)
    else (
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Ok ())
  end
  else Ok ()

let listen_on path =
  match claim_socket_path path with
  | Error _ as e -> e
  | Ok () -> (
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64;
        Unix.set_nonblock fd
      with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Printf.sprintf "cannot listen on %s: %s" path (Unix.error_message e)))

(* ---- main loop ------------------------------------------------------- *)

let accept_all st =
  let rec go () =
    match Unix.accept st.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        st.conns <- st.conns @ [ { fd; dec = Frame.create (); alive = true } ];
        go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let run cfg =
  if cfg.jobs < 1 then invalid_arg "Daemon.run: jobs must be >= 1";
  if cfg.max_batch < 1 then invalid_arg "Daemon.run: max_batch must be >= 1";
  (ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) : unit);
  match listen_on cfg.socket_path with
  | Error _ as e -> e
  | Ok listen_fd ->
      let st =
        {
          cfg;
          listen_fd;
          conns = [];
          queue = Queue.create ();
          engine =
            Engine.create ~verify:cfg.verify ~jobs:cfg.jobs
              ~cache_capacity:cfg.cache_capacity ~default_budget:cfg.default_budget
              ();
          draining = None;
        }
      in
      cfg.log
        (Printf.sprintf "listening on %s (jobs=%d, cache=%d, batch=%d)" cfg.socket_path
           cfg.jobs cfg.cache_capacity cfg.max_batch);
      let rec loop () =
        match st.draining with
        | Some (requester, rid) ->
            let in_flight = Queue.length st.queue in
            drain_queue st;
            cfg.log (Printf.sprintf "drained %d in-flight request(s)" in_flight);
            if requester.alive then send st requester (Protocol.ok ~rid "bye");
            cfg.log "bye"
        | None -> (
            let fds = st.listen_fd :: List.map (fun c -> c.fd) st.conns in
            match Unix.select fds [] [] (-1.0) with
            | exception Unix.Unix_error (EINTR, _, _) -> loop ()
            | ready, _, _ ->
                if List.mem st.listen_fd ready then accept_all st;
                List.iter
                  (fun c -> if List.mem c.fd ready then read_conn st c)
                  (* snapshot: read_conn mutates st.conns on close *)
                  (List.filter (fun c -> c.alive) st.conns);
                (* Run everything admitted this round; batches bound each
                   pool submission, and later batches see earlier
                   batches' cache entries. *)
                while not (Queue.is_empty st.queue) && st.draining = None do
                  process_batch st
                done;
                loop ())
      in
      loop ();
      List.iter (fun c -> close_conn st c) st.conns;
      (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
      (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
      Ok ()
