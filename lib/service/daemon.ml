(* Select-loop daemon; see the interface for the architecture. *)

module Json = Hs_obs.Json
module Metrics = Hs_obs.Metrics

(* Registration is idempotent and name-keyed, so this is the same cell
   [Cache] increments on a lookup hit. *)
let c_hit = Metrics.counter "service.cache.hit"
let c_requests = Metrics.counter "service.requests"
let c_batches = Metrics.counter "service.batches"
let h_batch = Metrics.histogram ~buckets:[ 1; 2; 4; 8; 16; 32; 64; 128 ] "service.batch.size"

type config = {
  socket_path : string;
  jobs : int;
  cache_capacity : int;
  default_budget : int option;
  max_batch : int;
  log : string -> unit;
}

let default_config ~socket_path =
  {
    socket_path;
    jobs = 1;
    cache_capacity = 128;
    default_budget = None;
    max_batch = 64;
    log = ignore;
  }

type conn = {
  fd : Unix.file_descr;
  dec : Frame.decoder;
  mutable alive : bool;
}

type work = { w_conn : conn; w_rid : int; w_params : Protocol.solve_params }

(* A cached answer is the full response payload modulo identity fields:
   replaying it only flips [cached]. *)
type answer = { a_status : int; a_body : string; a_error : string }

type state = {
  cfg : config;
  listen_fd : Unix.file_descr;
  mutable conns : conn list;
  queue : work Queue.t;
  cache : answer Cache.t;
  mutable draining : (conn * int) option;  (** shutdown requester *)
}

(* ---- low-level IO ---------------------------------------------------- *)

let close_conn st c =
  if c.alive then begin
    c.alive <- false;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    st.conns <- List.filter (fun c' -> c' != c) st.conns
  end

(* Blocking-ish write on a nonblocking fd: wait for writability with a
   deadline so one stuck client cannot wedge the loop.  Failures just
   drop the connection — the daemon must outlive any client. *)
let write_all st c s =
  let n = String.length s in
  let pos = ref 0 in
  (try
     while c.alive && !pos < n do
       match Unix.write_substring c.fd s !pos (n - !pos) with
       | written -> pos := !pos + written
       | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> (
           match Unix.select [] [ c.fd ] [] 10.0 with
           | [], [], [] -> close_conn st c (* write deadline expired *)
           | _ -> ()
           | exception Unix.Unix_error (EINTR, _, _) -> ())
       | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
           close_conn st c
     done
   with Unix.Unix_error _ -> close_conn st c);
  c.alive

let send st c (r : Protocol.response) =
  ignore (write_all st c (Frame.encode (Json.to_string (Protocol.response_to_json r))))

(* ---- request handling ------------------------------------------------ *)

let protocol_err st c ~rid msg =
  send st c (Protocol.err ~rid ~status:2 ("protocol error: " ^ msg))

let stats_body () =
  let snap = Metrics.snapshot () in
  let v name = Option.value ~default:0 (Metrics.find_counter snap name) in
  Printf.sprintf
    "service.cache.evict = %d\nservice.cache.hit = %d\nservice.cache.miss = %d\nservice.requests = %d"
    (v "service.cache.evict") (v "service.cache.hit") (v "service.cache.miss")
    (v "service.requests")

let handle_payload st c payload =
  match Json.parse payload with
  | Error msg -> protocol_err st c ~rid:(-1) ("bad JSON: " ^ msg)
  | Ok json -> (
      match Protocol.request_of_json json with
      | Error (rid, msg) -> protocol_err st c ~rid msg
      | Ok (rid, Protocol.Ping) -> send st c (Protocol.ok ~rid "pong")
      | Ok (rid, Protocol.Stats) -> send st c (Protocol.ok ~rid (stats_body ()))
      | Ok (rid, Protocol.Shutdown) ->
          if st.draining = None then st.draining <- Some (c, rid)
      | Ok (rid, Protocol.Solve p) ->
          if st.draining <> None then
            send st c (Protocol.err ~rid ~status:2 "server is draining")
          else Queue.add { w_conn = c; w_rid = rid; w_params = p } st.queue)

let read_buf = Bytes.create 65536

let read_conn st c =
  let rec pull_frames () =
    if c.alive then
      match Frame.next c.dec with
      | Ok (Some payload) ->
          handle_payload st c payload;
          pull_frames ()
      | Ok None -> ()
      | Error e ->
          (* Frame sync is lost: answer once, typed, and hang up. *)
          protocol_err st c ~rid:(-1) (Frame.error_to_string e);
          close_conn st c
  in
  let rec read_loop () =
    if c.alive then
      match Unix.read c.fd read_buf 0 (Bytes.length read_buf) with
      | 0 ->
          (* EOF: a partial frame left behind is a typed fault too. *)
          (match Frame.at_eof c.dec with
          | Ok () -> ()
          | Error e -> protocol_err st c ~rid:(-1) (Frame.error_to_string e));
          close_conn st c
      | n ->
          Frame.feed c.dec (Bytes.sub_string read_buf 0 n);
          pull_frames ();
          if n = Bytes.length read_buf then read_loop ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> close_conn st c
  in
  read_loop ()

(* ---- the admission queue --------------------------------------------- *)

(* One batch: classify sequentially against the cache (so duplicate
   requests coalesce deterministically regardless of how the stream was
   chopped into batches), solve the distinct misses on the pool, then
   respond in admission order. *)
let process_batch st =
  let batch = ref [] in
  while Queue.length st.queue > 0 && List.length !batch < st.cfg.max_batch do
    batch := Queue.pop st.queue :: !batch
  done;
  let batch = List.rev !batch in
  Metrics.incr c_batches;
  Metrics.observe h_batch (List.length batch);
  Hs_obs.Tracer.with_span ~cat:"service"
    ~args:[ ("batch.size", Hs_obs.Tracer.Int (List.length batch)) ]
    "service.batch"
  @@ fun () ->
  let pending : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let classified =
    List.map
      (fun w ->
        Metrics.incr c_requests;
        match Solver.prepare ~default_budget:st.cfg.default_budget w.w_params with
        | Error e ->
            ( w,
              `Done
                (Protocol.err ~rid:w.w_rid ~status:(Protocol.status_of_error e)
                   (Hs_core.Hs_error.to_string e)) )
        | Ok prep ->
            if Hashtbl.mem pending prep.Solver.key then begin
              (* Coalesced onto an identical request in this batch: the
                 answer is shared, so it counts as a cache hit. *)
              Metrics.incr c_hit;
              (w, `Follower prep.Solver.key)
            end
            else (
              match Cache.find st.cache prep.Solver.key with
              | Some a -> (w, `Hit a)
              | None ->
                  Hashtbl.replace pending prep.Solver.key ();
                  (w, `Leader prep)))
      batch
  in
  let leaders =
    List.filter_map (function _, `Leader p -> Some p | _ -> None) classified
  in
  let solved =
    Hs_exec.try_parmap ~jobs:st.cfg.jobs
      (fun prep ->
        match Solver.execute prep with
        | Ok body -> { a_status = 0; a_body = body; a_error = "" }
        | Error e ->
            {
              a_status = Protocol.status_of_error e;
              a_body = "";
              a_error = Hs_core.Hs_error.to_string e;
            })
      leaders
  in
  let answers : (string, answer) Hashtbl.t = Hashtbl.create 16 in
  List.iter2
    (fun (prep : Solver.prepared) outcome ->
      let a =
        match outcome with
        | Ok a -> a
        | Error (we : Hs_exec.worker_error) ->
            { a_status = 1; a_body = ""; a_error = Printexc.to_string we.exn }
      in
      Cache.add st.cache prep.Solver.key a;
      Hashtbl.replace answers prep.Solver.key a)
    leaders solved;
  let respond w (a : answer) ~cached =
    send st w.w_conn
      {
        Protocol.rid = w.w_rid;
        status = a.a_status;
        cached;
        body = a.a_body;
        error = a.a_error;
      }
  in
  List.iter
    (fun (w, cls) ->
      match cls with
      | `Done r -> send st w.w_conn r
      | `Hit a -> respond w a ~cached:true
      | `Follower key -> respond w (Hashtbl.find answers key) ~cached:true
      | `Leader prep -> respond w (Hashtbl.find answers prep.Solver.key) ~cached:false)
    classified

let drain_queue st =
  while not (Queue.is_empty st.queue) do
    process_batch st
  done

(* ---- socket setup ---------------------------------------------------- *)

(* A leftover socket file from a crashed daemon must not block restarts,
   but a live daemon must: probe with a connect. *)
let claim_socket_path path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then Error (Printf.sprintf "%s: a daemon is already serving" path)
    else (
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Ok ())
  end
  else Ok ()

let listen_on path =
  match claim_socket_path path with
  | Error _ as e -> e
  | Ok () -> (
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64;
        Unix.set_nonblock fd
      with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Printf.sprintf "cannot listen on %s: %s" path (Unix.error_message e)))

(* ---- main loop ------------------------------------------------------- *)

let accept_all st =
  let rec go () =
    match Unix.accept st.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        st.conns <- st.conns @ [ { fd; dec = Frame.create (); alive = true } ];
        go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let run cfg =
  if cfg.jobs < 1 then invalid_arg "Daemon.run: jobs must be >= 1";
  if cfg.max_batch < 1 then invalid_arg "Daemon.run: max_batch must be >= 1";
  (ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) : unit);
  match listen_on cfg.socket_path with
  | Error _ as e -> e
  | Ok listen_fd ->
      let st =
        {
          cfg;
          listen_fd;
          conns = [];
          queue = Queue.create ();
          cache = Cache.create ~capacity:cfg.cache_capacity;
          draining = None;
        }
      in
      cfg.log
        (Printf.sprintf "listening on %s (jobs=%d, cache=%d, batch=%d)" cfg.socket_path
           cfg.jobs cfg.cache_capacity cfg.max_batch);
      let rec loop () =
        match st.draining with
        | Some (requester, rid) ->
            let in_flight = Queue.length st.queue in
            drain_queue st;
            cfg.log (Printf.sprintf "drained %d in-flight request(s)" in_flight);
            if requester.alive then send st requester (Protocol.ok ~rid "bye");
            cfg.log "bye"
        | None -> (
            let fds = st.listen_fd :: List.map (fun c -> c.fd) st.conns in
            match Unix.select fds [] [] (-1.0) with
            | exception Unix.Unix_error (EINTR, _, _) -> loop ()
            | ready, _, _ ->
                if List.mem st.listen_fd ready then accept_all st;
                List.iter
                  (fun c -> if List.mem c.fd ready then read_conn st c)
                  (* snapshot: read_conn mutates st.conns on close *)
                  (List.filter (fun c -> c.alive) st.conns);
                (* Run everything admitted this round; batches bound each
                   pool submission, and later batches see earlier
                   batches' cache entries. *)
                while not (Queue.is_empty st.queue) && st.draining = None do
                  process_batch st
                done;
                loop ())
      in
      loop ();
      List.iter (fun c -> close_conn st c) st.conns;
      (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
      (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
      Ok ()
