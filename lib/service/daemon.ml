(* Select-loop daemon; see the interface for the architecture. *)

module Json = Hs_obs.Json
module Metrics = Hs_obs.Metrics
module E = Hs_core.Hs_error

let c_batches = Metrics.counter "service.batches"
let h_batch = Metrics.histogram ~buckets:[ 1; 2; 4; 8; 16; 32; 64; 128 ] "service.batch.size"

(* Shed / expired requests never reach the engine, so the daemon counts
   them into the same [service.requests] cell the engine increments:
   requests = every solve received, whatever its fate. *)
let c_requests = Metrics.counter "service.requests"
let c_shed = Metrics.counter "service.shed"
let c_deadline_miss = Metrics.counter "service.deadline_miss"
let g_queue = Metrics.gauge "service.queue.depth"

(* Online streaming ops ride the same admission queue but are counted
   apart: they are session steps, not solve requests, and must not skew
   the pinned [service.requests] accounting. *)
let c_online = Metrics.counter "service.online"

(* The event loop's two latency phases; solve/render live in Solver
   (worker domains) and share the same bucket ladder. *)
let h_queue_ms = Metrics.histogram ~buckets:Solver.ms_buckets "service.phase.queue_ms"
let h_write_ms = Metrics.histogram ~buckets:Solver.ms_buckets "service.phase.write_ms"

type config = {
  socket_path : string;
  jobs : int;
  cache_capacity : int;
  default_budget : int option;
  max_batch : int;
  max_queue : int;
  retry_hint_ms : int;
  deadline_units_per_ms : int;
  io_timeout_s : float;
  snapshot_path : string option;
  verify : bool;
  recorder_capacity : int;
  max_sessions : int;  (** bound on concurrently open online sessions *)
  log : string -> unit;
}

let default_config ~socket_path =
  {
    socket_path;
    jobs = 1;
    cache_capacity = 128;
    default_budget = None;
    max_batch = 64;
    max_queue = 256;
    retry_hint_ms = 50;
    deadline_units_per_ms = Solver.default_deadline_units_per_ms;
    io_timeout_s = 10.0;
    snapshot_path = None;
    verify = false;
    recorder_capacity = 256;
    max_sessions = 16;
    log = ignore;
  }

type conn = {
  fd : Unix.file_descr;
  dec : Frame.decoder;
  mutable alive : bool;
  mutable last_read : float;  (** for the partial-frame read deadline *)
}

(* The admission queue carries both workloads; online ops are session
   steps (stateful, processed inline and strictly in admission order),
   solves batch onto the worker pool between them. *)
type job =
  | Solve of Protocol.solve_params
  | Online of Protocol.online_params

type work = {
  w_conn : conn;
  w_rid : int;
  w_job : job;
  w_enq : float;  (** enqueue instant, for queue-expiry of deadlines *)
}

type state = {
  cfg : config;
  listen_fd : Unix.file_descr;
  started : float;  (** daemon start instant, for introspection uptime *)
  mutable conns : conn list;
  queue : work Queue.t;
  mutable shed_streak : int;
      (** consecutive sheds since the last admission; positions the
          deterministic [retry_after_ms] ladder *)
  engine : Engine.t;  (** classification, cache, solving, verification *)
  recorder : Recorder.t;  (** flight recorder of recent outcomes *)
  sessions : Sessions.t;  (** live online-scheduling sessions *)
  mutable draining : (conn * int) option;  (** shutdown requester *)
}

(* ---- low-level IO ---------------------------------------------------- *)

let close_conn st c =
  if c.alive then begin
    c.alive <- false;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    st.conns <- List.filter (fun c' -> c' != c) st.conns
  end

(* Blocking-ish write on a nonblocking fd: wait for writability with a
   deadline so one stuck client cannot wedge the loop.  Failures just
   drop the connection — the daemon must outlive any client. *)
let write_all st c s =
  let n = String.length s in
  let pos = ref 0 in
  (try
     while c.alive && !pos < n do
       match Unix.write_substring c.fd s !pos (n - !pos) with
       | written -> pos := !pos + written
       | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> (
           match Unix.select [] [ c.fd ] [] st.cfg.io_timeout_s with
           | [], [], [] -> close_conn st c (* write deadline expired *)
           | _ -> ()
           | exception Unix.Unix_error (EINTR, _, _) -> ())
       | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
           close_conn st c
     done
   with Unix.Unix_error _ -> close_conn st c);
  c.alive

let wall_ms t0 = int_of_float (((Unix.gettimeofday () -. t0) *. 1000.0) +. 0.5)

let send st c (r : Protocol.response) =
  let t0 = Unix.gettimeofday () in
  ignore (write_all st c (Frame.encode (Json.to_string (Protocol.response_to_json r))));
  Metrics.observe h_write_ms (wall_ms t0)

(* ---- request handling ------------------------------------------------ *)

let protocol_err st c ~rid msg =
  send st c (Protocol.err ~rid ~status:2 ("protocol error: " ^ msg))

(* Deterministic counters only (sorted by name): the queue-depth
   high-water gauge depends on read chunking, so it stays registry-only
   ([--stats-json]) and out of the pinned [stats] verb. *)
let stats_body () =
  let snap = Metrics.snapshot () in
  let v name = Option.value ~default:0 (Metrics.find_counter snap name) in
  String.concat "\n"
    (List.map
       (fun name -> Printf.sprintf "%s = %d" name (v name))
       [
         "service.cache.evict";
         "service.cache.hit";
         "service.cache.miss";
         "service.deadline_miss";
         "service.requests";
         "service.shed";
         "service.snapshot.loaded";
         "service.snapshot.rejected";
       ])

let introspect_schema = "hsched.introspect/1"

(* The live-introspection document ("hsched.introspect/1").  Answered
   out-of-band — straight from the event loop, never via the admission
   queue — so it stays available during overload, which is exactly when
   it is needed.  Queue depth here is the instantaneous depth; the
   [service.queue.depth] gauge in [metrics] stays the high-water mark. *)
let introspect_body st ~recent =
  Json.to_string
    (Json.Obj
       ([
          ("schema", Json.String introspect_schema);
          ("uptime_s", Json.Float (Unix.gettimeofday () -. st.started));
          ("queue_depth", Json.Int (Queue.length st.queue));
          ("connections", Json.Int (List.length st.conns));
          ("draining", Json.Bool (st.draining <> None));
          ("cache_entries", Json.Int (Engine.cache_length st.engine));
          ( "online_sessions",
            Json.Obj
              [
                ("open", Json.Int (Sessions.length st.sessions));
                ("capacity", Json.Int (Sessions.capacity st.sessions));
                ("opened", Json.Int (Sessions.opened st.sessions));
              ] );
          ( "recorder",
            Json.Obj
              [
                ("capacity", Json.Int (Recorder.capacity st.recorder));
                ("recorded", Json.Int (Recorder.recorded st.recorder));
              ] );
          ("metrics", Metrics.to_json (Metrics.snapshot ()));
        ]
       @ if recent then [ ("recent", Recorder.to_json st.recorder) ] else []))

let handle_payload st c payload =
  match Json.parse payload with
  | Error msg -> protocol_err st c ~rid:(-1) ("bad JSON: " ^ msg)
  | Ok json -> (
      match Protocol.request_of_json json with
      | Error (rid, msg) -> protocol_err st c ~rid msg
      | Ok (rid, Protocol.Ping) -> send st c (Protocol.ok ~rid "pong")
      | Ok (rid, Protocol.Stats) -> send st c (Protocol.ok ~rid (stats_body ()))
      | Ok (rid, Protocol.Introspect { recent }) ->
          send st c (Protocol.ok ~rid (introspect_body st ~recent))
      | Ok (rid, Protocol.Shutdown) ->
          if st.draining = None then st.draining <- Some (c, rid)
      | Ok (rid, ((Protocol.Solve _ | Protocol.Online _) as req)) ->
          let job, trace_id =
            match req with
            | Protocol.Solve p -> (Solve p, p.Protocol.trace_id)
            | Protocol.Online p ->
                Metrics.incr c_online;
                (Online p, None)
            | _ -> assert false
          in
          if st.draining <> None then
            send st c (Protocol.err ~rid ~status:2 "server is draining")
          else if Queue.length st.queue >= st.cfg.max_queue then begin
            (* Admission control: shed, don't buffer.  The hint climbs
               linearly with the shed position so simultaneous rejects
               spread their retries instead of stampeding back. *)
            (match job with
            | Solve _ -> Metrics.incr c_requests
            | Online _ -> ());
            Metrics.incr c_shed;
            st.shed_streak <- st.shed_streak + 1;
            let retry_after_ms = st.cfg.retry_hint_ms * st.shed_streak in
            Recorder.record st.recorder ~digest:""
              ~status:(Protocol.status_of_error (E.Overloaded { retry_after_ms }))
              ?trace_id ~shed_reason:"queue_full" ~retry_after_ms ();
            send st c (Protocol.overloaded ~rid ~retry_after_ms)
          end
          else begin
            st.shed_streak <- 0;
            Queue.add
              { w_conn = c; w_rid = rid; w_job = job; w_enq = Unix.gettimeofday () }
              st.queue;
            Metrics.set g_queue
              (Stdlib.max (Metrics.gauge_value g_queue) (Queue.length st.queue))
          end)

let read_buf = Bytes.create 65536

let read_conn st c =
  let rec pull_frames () =
    if c.alive then
      match Frame.next c.dec with
      | Ok (Some payload) ->
          handle_payload st c payload;
          pull_frames ()
      | Ok None -> ()
      | Error e ->
          (* Frame sync is lost: answer once, typed, and hang up. *)
          protocol_err st c ~rid:(-1) (Frame.error_to_string e);
          close_conn st c
  in
  let rec read_loop () =
    if c.alive then
      match Unix.read c.fd read_buf 0 (Bytes.length read_buf) with
      | 0 ->
          (* EOF: a partial frame left behind is a typed fault too. *)
          (match Frame.at_eof c.dec with
          | Ok () -> ()
          | Error e -> protocol_err st c ~rid:(-1) (Frame.error_to_string e));
          close_conn st c
      | n ->
          c.last_read <- Unix.gettimeofday ();
          Frame.feed c.dec (Bytes.sub_string read_buf 0 n);
          pull_frames ();
          if n = Bytes.length read_buf then read_loop ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> close_conn st c
  in
  read_loop ()

(* A client sitting on a partial frame past the read deadline is cut
   off with a typed response; connections idle at a frame boundary cost
   nothing and may idle forever. *)
let cull_slow_readers st now =
  List.iter
    (fun c ->
      if
        c.alive
        && Frame.buffered c.dec > 0
        && now -. c.last_read >= st.cfg.io_timeout_s
      then begin
        protocol_err st c ~rid:(-1)
          (Printf.sprintf "read timed out with a partial frame (%d bytes buffered)"
             (Frame.buffered c.dec));
        close_conn st c
      end)
    (List.filter (fun c -> c.alive) st.conns)

(* ---- the admission queue --------------------------------------------- *)

(* Trace stitching (DESIGN.md §14).  When a batch contains at least one
   traced request the daemon makes sure its tracer is live for the
   batch's duration — on a wall clock, so client- and server-side
   timestamps share a timeline (same machine; the socket is Unix-domain)
   — and isolates the spans recorded during the batch by remembering the
   sink length beforehand.  A daemon that was not already tracing is
   returned to its untraced state afterwards, so tracing one request
   costs nothing once its response is out. *)
module Tracer = Hs_obs.Tracer

let wall_clock_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let drop_prefix n l =
  let rec go n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> go (n - 1) t in
  go n l

(* Wire form of the server-side spans for one traced response: every
   batch span, tagged with the request's trace id at encode time (the
   sink itself stays trace-agnostic — one batch can serve requests of
   several traces). *)
let spans_for ~trace_id batch_spans =
  List.map
    (fun (sp : Tracer.span) ->
      Tracer.span_to_json
        { sp with args = sp.args @ [ ("trace_id", Tracer.Str trace_id) ] })
    batch_spans

(* ---- online sessions -------------------------------------------------- *)

module Replay = Hs_online.Replay
module Trace_io = Hs_online.Trace_io

(* The migration-budget coefficient comes over the wire as text so the
   codec stays rational-agnostic; "inf" and absence both mean unlimited. *)
let beta_of_string = function
  | None | Some "inf" -> Ok None
  | Some s -> (
      match Hs_numeric.Q.of_string s with
      | q when Hs_numeric.Q.sign q >= 0 -> Ok (Some q)
      | _ -> Error (Printf.sprintf "migration budget %S is negative" s)
      | exception _ -> Error (Printf.sprintf "unparsable migration budget %S" s))

(* One online op, inline on the event loop (sessions are stateful and
   strictly ordered; the per-event work is one small re-solve).  Every
   op leaves a flight-recorder entry keyed by the session's trace
   digest, so a post-mortem can tell the streams apart. *)
let process_online st (w : work) p =
  let t0 = Unix.gettimeofday () in
  let respond ?(digest = "") (r : Protocol.response) =
    Recorder.record st.recorder ~digest ~status:r.Protocol.status
      ~queue_ms:(wall_ms w.w_enq) ~solve_ms:(wall_ms t0) ();
    send st w.w_conn r
  in
  let rid = w.w_rid in
  match p with
  | Protocol.Online_open { trace_text; beta; check } -> (
      match beta_of_string beta with
      | Error e -> respond (Protocol.err ~rid ~status:2 e)
      | Ok beta -> (
          match Trace_io.of_string trace_text with
          | Error e -> respond (Protocol.err ~rid ~status:2 ("bad trace: " ^ e))
          | Ok trace -> (
              let digest = Trace_io.digest trace in
              match
                Replay.Session.create ?beta ~check
                  (Hs_online.Trace.laminar trace)
              with
              | Error e -> respond ~digest (Protocol.err ~rid ~status:2 e)
              | Ok session -> (
                  match Sessions.open_ st.sessions ~digest session with
                  | None ->
                      (* The session table is the admission bound here:
                         same typed overloaded answer as a full queue. *)
                      Metrics.incr c_shed;
                      Recorder.record st.recorder ~digest
                        ~status:
                          (Protocol.status_of_error
                             (E.Overloaded
                                { retry_after_ms = st.cfg.retry_hint_ms }))
                        ~shed_reason:"sessions_full"
                        ~retry_after_ms:st.cfg.retry_hint_ms ();
                      send st w.w_conn
                        (Protocol.overloaded ~rid
                           ~retry_after_ms:st.cfg.retry_hint_ms)
                  | Some sid -> (
                      (* Events already in the document replay at open;
                         they passed Trace.make, so a failure here is an
                         internal fault, not a client error. *)
                      let entry = Option.get (Sessions.find st.sessions sid) in
                      let rec replay = function
                        | [] -> Ok ()
                        | ev :: rest -> (
                            match Replay.Session.step session ev with
                            | Error e -> Error e
                            | Ok _ ->
                                entry.Sessions.events <-
                                  entry.Sessions.events + 1;
                                replay rest)
                      in
                      match replay (Hs_online.Trace.events trace) with
                      | Error e ->
                          ignore (Sessions.close st.sessions sid);
                          respond ~digest
                            (Protocol.err ~rid ~status:1
                               ("replay failed at open: " ^ e))
                      | Ok () ->
                          respond ~digest
                            (Protocol.ok ~rid
                               (Json.to_string
                                  (Json.Obj
                                     [
                                       ( "schema",
                                         Json.String "hsched.online.open/1" );
                                       ("session", Json.Int sid);
                                       ("digest", Json.String digest);
                                       ( "events",
                                         Json.Int entry.Sessions.events );
                                     ]))))))))
  | Protocol.Online_event { session = sid; event_text } -> (
      match Sessions.find st.sessions sid with
      | None ->
          respond
            (Protocol.err ~rid ~status:2
               (Printf.sprintf "unknown online session %d" sid))
      | Some entry -> (
          match Trace_io.event_of_line event_text with
          | Error e ->
              respond ~digest:entry.Sessions.digest
                (Protocol.err ~rid ~status:2 ("bad event: " ^ e))
          | Ok ev -> (
              match Replay.Session.step entry.Sessions.session ev with
              | Error e ->
                  (* Dynamic validation failed; the session survives. *)
                  respond ~digest:entry.Sessions.digest
                    (Protocol.err ~rid ~status:2 ("rejected event: " ^ e))
              | Ok step ->
                  entry.Sessions.events <- entry.Sessions.events + 1;
                  let failed =
                    match step.Replay.verdict with
                    | Some v -> not (Hs_check.Verdict.ok v)
                    | None -> false
                  in
                  respond ~digest:entry.Sessions.digest
                    {
                      Protocol.rid;
                      status = (if failed then 1 else 0);
                      cached = false;
                      body = Json.to_string (Replay.step_to_json step);
                      error =
                        (if failed then "online step failed certification"
                         else "");
                      retry_after_ms = 0;
                      spans = [];
                    })))
  | Protocol.Online_close { session = sid } -> (
      match Sessions.close st.sessions sid with
      | None ->
          respond
            (Protocol.err ~rid ~status:2
               (Printf.sprintf "unknown online session %d" sid))
      | Some entry ->
          respond ~digest:entry.Sessions.digest
            (Protocol.ok ~rid
               (Json.to_string
                  (Replay.summary_to_json
                     (Replay.Session.summary entry.Sessions.session)))))

(* One batch: expire overdue deadlines at dispatch, hand the solves to
   the engine (which classifies against the cache, coalesces duplicates
   and solves the distinct misses on the pool) with online session ops
   interleaved inline at their admitted positions, then respond in
   admission order. *)
let process_batch st =
  let now = Unix.gettimeofday () in
  let taken = ref 0 and batch = ref [] and expired = ref [] in
  while Queue.length st.queue > 0 && !taken < st.cfg.max_batch do
    incr taken;
    let w = Queue.pop st.queue in
    let overdue =
      (* Online ops carry no deadline: a session step is cheap and
         skipping one would corrupt the stream. *)
      match w.w_job with
      | Solve { Protocol.deadline_ms = Some d; _ } ->
          (now -. w.w_enq) *. 1000.0 >= float_of_int d
      | Solve _ | Online _ -> false
    in
    if overdue then expired := w :: !expired else batch := w :: !batch
  done;
  List.iter
    (fun w ->
      let p = match w.w_job with Solve p -> p | Online _ -> assert false in
      Metrics.incr c_requests;
      Metrics.incr c_deadline_miss;
      let queue_ms = wall_ms w.w_enq in
      Metrics.observe h_queue_ms queue_ms;
      let deadline_ms = Option.value ~default:0 p.Protocol.deadline_ms in
      let e =
        E.Deadline_exceeded { deadline_ms; detail = "expired in the admission queue" }
      in
      Recorder.record st.recorder ~digest:"" ~status:(Protocol.status_of_error e)
        ~queue_ms ?trace_id:p.Protocol.trace_id ~shed_reason:"queue_deadline" ();
      send st w.w_conn
        (Protocol.err ~rid:w.w_rid ~status:(Protocol.status_of_error e)
           (E.to_string e)))
    (List.rev !expired);
  (* Walk the admitted work in order: runs of solves form engine
     batches, online ops run inline between them, so every response
     still leaves in admission order. *)
  let flush_solves batch = if batch <> [] then begin
    Metrics.incr c_batches;
    Metrics.observe h_batch (List.length batch);
    let sp w = match w.w_job with Solve p -> p | Online _ -> assert false in
    let traced =
      List.exists (fun w -> (sp w).Protocol.trace_id <> None) batch
    in
    let was_tracing = Tracer.enabled () in
    if traced && not was_tracing then begin
      Tracer.set_clock wall_clock_ns;
      Tracer.enable ()
    end;
    let spans_before = if traced then List.length (Tracer.spans ()) else 0 in
    (* The queue wait is over by the time it is measurable: measure it
       once at dispatch, record it as an after-the-fact span for traced
       requests, and keep it for the flight-recorder entry. *)
    let queue_waits =
      List.map
        (fun w ->
          let queue_ms = wall_ms w.w_enq in
          Metrics.observe h_queue_ms queue_ms;
          if (sp w).Protocol.trace_id <> None then
            Tracer.record_span ~cat:"service"
              ~args:[ ("rid", Tracer.Int w.w_rid) ]
              ~start_ns:(Int64.of_float (w.w_enq *. 1e9))
              ~dur_ns:(Int64.of_float (float_of_int queue_ms *. 1e6))
              "service.queue.wait";
          queue_ms)
        batch
    in
    let answers =
      Hs_obs.Tracer.with_span ~cat:"service"
        ~args:[ ("batch.size", Hs_obs.Tracer.Int (List.length batch)) ]
        "service.batch"
        (fun () ->
          Engine.solve_batch st.engine (List.map sp batch))
    in
    let batch_spans =
      if traced then drop_prefix spans_before (Tracer.spans ()) else []
    in
    List.iter2
      (fun (w, queue_ms) (a : Engine.answer) ->
        Recorder.record st.recorder ~digest:a.Engine.key ~status:a.Engine.status
          ~cached:a.Engine.cached ~queue_ms ~solve_ms:a.Engine.solve_ms
          ?trace_id:(sp w).Protocol.trace_id ();
        let spans =
          match (sp w).Protocol.trace_id with
          | Some t -> spans_for ~trace_id:t batch_spans
          | None -> []
        in
        send st w.w_conn
          {
            Protocol.rid = w.w_rid;
            status = a.Engine.status;
            cached = a.Engine.cached;
            body = a.Engine.body;
            error = a.Engine.error;
            retry_after_ms = 0;
            spans;
          })
      (List.combine batch queue_waits)
      answers;
    if traced && not was_tracing then begin
      (* Forget the batch's spans along with the borrowed tracer: an
         untraced daemon must not accumulate span memory across its
         lifetime. *)
      Tracer.disable ();
      Tracer.clear ()
    end
  end
  in
  let rec walk pending = function
    | [] -> flush_solves (List.rev pending)
    | w :: rest -> (
        match w.w_job with
        | Solve _ -> walk (w :: pending) rest
        | Online p ->
            flush_solves (List.rev pending);
            process_online st w p;
            walk [] rest)
  in
  walk [] (List.rev !batch)

let drain_queue st =
  while not (Queue.is_empty st.queue) do
    process_batch st
  done

(* ---- socket setup ---------------------------------------------------- *)

(* A leftover socket file from a crashed daemon must not block restarts,
   but a live daemon must: probe with a connect. *)
let claim_socket_path path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then Error (Printf.sprintf "%s: a daemon is already serving" path)
    else (
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Ok ())
  end
  else Ok ()

let listen_on path =
  match claim_socket_path path with
  | Error _ as e -> e
  | Ok () -> (
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64;
        Unix.set_nonblock fd
      with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Printf.sprintf "cannot listen on %s: %s" path (Unix.error_message e)))

(* ---- main loop ------------------------------------------------------- *)

let accept_all st =
  let rec go () =
    match Unix.accept st.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        st.conns <-
          st.conns
          @ [ { fd; dec = Frame.create (); alive = true; last_read = Unix.gettimeofday () } ];
        go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let restore_snapshot st =
  match st.cfg.snapshot_path with
  | Some path when Sys.file_exists path -> (
      match Engine.load_snapshot st.engine path with
      | Ok (loaded, rejected) ->
          st.cfg.log
            (Printf.sprintf "restored %d cache entries from %s (%d rejected)" loaded
               path rejected)
      | Error e -> st.cfg.log (Printf.sprintf "snapshot not restored: %s" e))
  | _ -> ()

let persist_snapshot st =
  match st.cfg.snapshot_path with
  | None -> ()
  | Some path -> (
      match Engine.save_snapshot st.engine path with
      | Ok n -> st.cfg.log (Printf.sprintf "saved %d cache entries to %s" n path)
      | Error e -> st.cfg.log (Printf.sprintf "snapshot not saved: %s" e))

let run cfg =
  if cfg.jobs < 1 then invalid_arg "Daemon.run: jobs must be >= 1";
  if cfg.max_batch < 1 then invalid_arg "Daemon.run: max_batch must be >= 1";
  if cfg.max_queue < 0 then invalid_arg "Daemon.run: max_queue must be >= 0";
  if cfg.retry_hint_ms < 1 then invalid_arg "Daemon.run: retry_hint_ms must be >= 1";
  if cfg.io_timeout_s <= 0.0 then invalid_arg "Daemon.run: io_timeout_s must be > 0";
  if cfg.recorder_capacity < 1 then
    invalid_arg "Daemon.run: recorder_capacity must be >= 1";
  if cfg.max_sessions < 1 then invalid_arg "Daemon.run: max_sessions must be >= 1";
  (ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) : unit);
  match listen_on cfg.socket_path with
  | Error _ as e -> e
  | Ok listen_fd ->
      let st =
        {
          cfg;
          listen_fd;
          started = Unix.gettimeofday ();
          conns = [];
          queue = Queue.create ();
          shed_streak = 0;
          engine =
            Engine.create ~verify:cfg.verify
              ~deadline_units_per_ms:cfg.deadline_units_per_ms ~jobs:cfg.jobs
              ~cache_capacity:cfg.cache_capacity ~default_budget:cfg.default_budget
              ();
          recorder = Recorder.create ~capacity:cfg.recorder_capacity;
          sessions = Sessions.create ~capacity:cfg.max_sessions;
          draining = None;
        }
      in
      restore_snapshot st;
      cfg.log
        (Printf.sprintf "listening on %s (jobs=%d, cache=%d, batch=%d, queue=%d)"
           cfg.socket_path cfg.jobs cfg.cache_capacity cfg.max_batch cfg.max_queue);
      let rec loop () =
        match st.draining with
        | Some (requester, rid) ->
            let in_flight = Queue.length st.queue in
            drain_queue st;
            cfg.log (Printf.sprintf "drained %d in-flight request(s)" in_flight);
            (* The last flight before landing: dump the recorder so a
               post-mortem has the recent request history even when
               nobody thought to ask for it while the daemon was up. *)
            if Recorder.recorded st.recorder > 0 then begin
              cfg.log
                (Printf.sprintf "flight recorder (last %d of %d outcome(s)):"
                   (Recorder.length st.recorder)
                   (Recorder.recorded st.recorder));
              List.iter
                (fun e -> cfg.log ("  " ^ Recorder.entry_to_line e))
                (Recorder.entries st.recorder)
            end;
            persist_snapshot st;
            if requester.alive then send st requester (Protocol.ok ~rid "bye");
            cfg.log "bye"
        | None -> (
            let fds = st.listen_fd :: List.map (fun c -> c.fd) st.conns in
            (* Block indefinitely only when no connection holds a partial
               frame; otherwise wake up in time to enforce the read
               deadline. *)
            let timeout =
              if List.exists (fun c -> Frame.buffered c.dec > 0) st.conns then
                cfg.io_timeout_s
              else -1.0
            in
            match Unix.select fds [] [] timeout with
            | exception Unix.Unix_error (EINTR, _, _) -> loop ()
            | ready, _, _ ->
                if List.mem st.listen_fd ready then accept_all st;
                List.iter
                  (fun c -> if List.mem c.fd ready then read_conn st c)
                  (* snapshot: read_conn mutates st.conns on close *)
                  (List.filter (fun c -> c.alive) st.conns);
                cull_slow_readers st (Unix.gettimeofday ());
                (* Run everything admitted this round; batches bound each
                   pool submission, and later batches see earlier
                   batches' cache entries. *)
                while not (Queue.is_empty st.queue) && st.draining = None do
                  process_batch st
                done;
                loop ())
      in
      loop ();
      List.iter (fun c -> close_conn st c) st.conns;
      (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
      (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
      Ok ()
