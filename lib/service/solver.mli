(** The daemon's compute path: parse a solve request, derive its cache
    key, run the same pipeline the CLI runs, render the same report.

    Splitting parse/key derivation ({!prepare}) from the solve
    ({!execute}) lets the admission queue consult the cache — and
    coalesce duplicate requests within a batch — before any solver work
    is scheduled on the {!Hs_exec} pool. *)

type prepared = {
  instance : Hs_model.Instance.t;
  budget : int option;  (** effective per-request budget (request or default) *)
  key : string;  (** cache key: content digest + option tag *)
}

val cache_key : digest:string -> budget:int option -> string
(** The cache key argument (DESIGN.md §11): the canonical-content digest
    of the instance, extended with every option that changes the
    rendered answer — today only the budget. *)

val prepare :
  default_budget:int option ->
  Protocol.solve_params ->
  (prepared, Hs_core.Hs_error.t) result
(** Parse the instance text and derive the cache key.  Malformed text is
    a [Parse_error] (protocol status 2), as in the CLI. *)

val execute : ?verify:bool -> prepared -> (string, Hs_core.Hs_error.t) result
(** Solve and render.  Without a budget this is
    [Approx.Exact.solve_checked] + {!Render.exact_outcome} (the default
    [hsched solve] path); with one it is [Approx.solve_robust] +
    {!Render.robust_outcome} ([hsched solve --budget K]).  With
    [~verify:true] (default [false]) the structured outcome is
    re-validated by the independent checker ({!Hs_check.Certify}) before
    rendering; the first violated invariant surfaces as the typed
    [Verification] error.  Runs inside a ["service.solve"] tracer span;
    stray exceptions surface as [Internal], never escape. *)
