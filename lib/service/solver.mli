(** The daemon's compute path: parse a solve request, derive its cache
    key, run the same pipeline the CLI runs, render the same report.

    Splitting parse/key derivation ({!prepare}) from the solve
    ({!execute}) lets the admission queue consult the cache — and
    coalesce duplicate requests within a batch — before any solver work
    is scheduled on the {!Hs_exec} pool. *)

val default_deadline_units_per_ms : int
(** Default exchange rate of the deadline-to-budget conversion
    ({!Hs_core.Budget.of_deadline_ms}): 100 units per millisecond. *)

val ms_buckets : int list
(** The shared bucket ladder (1 ms .. 10 s) of every
    [service.phase.*_ms] latency histogram, so the daemon's queue/write
    phases and the solver's solve/render phases line up in [hsched
    stats] and the Prometheus exposition. *)

type prepared = {
  instance : Hs_model.Instance.t;
  budget : int option;
      (** effective per-request budget: the tighter of the
          requested/default budget and the deadline-derived cap *)
  deadline_ms : int option;  (** as sent by the client, for queue expiry *)
  deadline_capped : bool;
      (** the deadline supplied the binding budget cap, so exhaustion is
          answered as [Deadline_exceeded] (status 6), not
          [Budget_exhausted] (status 4) *)
  key : string;  (** cache key: content digest + option tags *)
}

val cache_key : digest:string -> budget:int option -> deadline_capped:bool -> string
(** The cache key argument (DESIGN.md §11/§13): the canonical-content
    digest of the instance, extended with every option that changes the
    rendered answer — the effective budget, and whether a deadline
    supplied it (the two differ in how exhaustion is typed). *)

val prepare :
  ?deadline_units_per_ms:int ->
  default_budget:int option ->
  Protocol.solve_params ->
  (prepared, Hs_core.Hs_error.t) result
(** Parse the instance text, fold the optional deadline into the budget
    at [deadline_units_per_ms] (saturating), and derive the cache key.
    Malformed text is a [Parse_error] (protocol status 2), as in the
    CLI.  Raises [Invalid_argument] when [deadline_units_per_ms < 1]. *)

val execute : ?verify:bool -> prepared -> (string, Hs_core.Hs_error.t) result
(** Solve and render.  Without a budget this is
    [Approx.Exact.solve_checked] + {!Render.exact_outcome} (the default
    [hsched solve] path); with one it is [Approx.solve_robust] +
    {!Render.robust_outcome} ([hsched solve --budget K]).  With
    [~verify:true] (default [false]) the structured outcome is
    re-validated by the independent checker ({!Hs_check.Certify}) before
    rendering; the first violated invariant surfaces as the typed
    [Verification] error.  When the prepared request is
    [deadline_capped], budget exhaustion surfaces as the typed
    [Deadline_exceeded] instead.

    Observability: runs inside a ["service.solve"] tracer span with the
    rendering step nested as ["service.render"], and observes both
    phases' wall milliseconds into the [service.phase.solve_ms] /
    [service.phase.render_ms] histograms (worker-domain cells, merged
    back by {!Hs_exec}).  Stray exceptions surface as [Internal], never
    escape. *)

val execute_timed :
  ?verify:bool -> prepared -> (string, Hs_core.Hs_error.t) result * int
(** {!execute} plus the solve's wall milliseconds (the same value
    observed into [service.phase.solve_ms]) — the engine threads it to
    the daemon's flight recorder. *)
