module Json = Hs_obs.Json

type t = {
  fd : Unix.file_descr;
  dec : Frame.decoder;
  mutable next_id : int;
  mutable eof : bool;
}

let connect ?(retries = 20) path =
  let rec go attempt =
    if not (Sys.file_exists path) then
      Error (Printf.sprintf "cannot connect to %s: No such file or directory" path)
    else
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> Ok { fd; dec = Frame.create (); next_id = 0; eof = false }
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          if attempt < retries && (e = Unix.ECONNREFUSED || e = Unix.ENOENT) then begin
            ignore (Unix.select [] [] [] 0.05);
            go (attempt + 1)
          end
          else
            Error (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))
  in
  go 0

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let n = String.length s in
  let rec go pos =
    if pos >= n then Ok ()
    else
      match Unix.write_substring fd s pos (n - pos) with
      | written -> go (pos + written)
      | exception Unix.Unix_error (EINTR, _, _) -> go pos
      | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "write failed: %s" (Unix.error_message e))
  in
  go 0

let send_raw t s = write_all t.fd s

let read_response ?(timeout_s = 60.0) t =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let buf = Bytes.create 65536 in
  let rec next_frame () =
    match Frame.next t.dec with
    | Error e -> Error ("response " ^ Frame.error_to_string e)
    | Ok (Some payload) -> (
        match Json.parse payload with
        | Error e -> Error ("undecodable response: " ^ e)
        | Ok json -> (
            match Protocol.response_of_json json with
            | Error e -> Error ("undecodable response: " ^ e)
            | Ok r -> Ok (Some r)))
    | Ok None ->
        if t.eof then
          match Frame.at_eof t.dec with
          | Ok () -> Ok None
          | Error e -> Error ("response " ^ Frame.error_to_string e)
        else
          let remaining = deadline -. Unix.gettimeofday () in
          if remaining <= 0.0 then Error "timed out waiting for a response"
          else begin
            match Unix.select [ t.fd ] [] [] remaining with
            | [], _, _ -> Error "timed out waiting for a response"
            | _ -> (
                match Unix.read t.fd buf 0 (Bytes.length buf) with
                | 0 ->
                    t.eof <- true;
                    next_frame ()
                | n ->
                    Frame.feed t.dec (Bytes.sub_string buf 0 n);
                    next_frame ()
                | exception Unix.Unix_error (EINTR, _, _) -> next_frame ()
                | exception Unix.Unix_error (e, _, _) ->
                    Error (Printf.sprintf "read failed: %s" (Unix.error_message e)))
            | exception Unix.Unix_error (EINTR, _, _) -> next_frame ()
          end
  in
  next_frame ()

let call_many ?(timeout_s = 60.0) t reqs =
  let ids_reqs = List.map (fun r -> let id = t.next_id in t.next_id <- id + 1; (id, r)) reqs in
  let wire = Buffer.create 1024 in
  List.iter
    (fun (id, r) ->
      Buffer.add_string wire
        (Frame.encode (Json.to_string (Protocol.request_to_json ~id r))))
    ids_reqs;
  match write_all t.fd (Buffer.contents wire) with
  | Error _ as e -> e
  | Ok () ->
      let want = List.length ids_reqs in
      let got : (int, Protocol.response) Hashtbl.t = Hashtbl.create want in
      let rec collect () =
        if Hashtbl.length got >= want then Ok ()
        else
          match read_response ~timeout_s t with
          | Error _ as e -> e
          | Ok None ->
              Error
                (Printf.sprintf "server closed the connection after %d of %d responses"
                   (Hashtbl.length got) want)
          | Ok (Some r) ->
              (* Unsolicited ids are ignored rather than fatal. *)
              if List.exists (fun (id, _) -> id = r.Protocol.rid) ids_reqs then
                Hashtbl.replace got r.Protocol.rid r;
              collect ()
      in
      (match collect () with
      | Error e -> Error e
      | Ok () -> Ok (List.map (fun (id, _) -> Hashtbl.find got id) ids_reqs))

let call ?timeout_s t req =
  match call_many ?timeout_s t [ req ] with
  | Ok [ r ] -> Ok r
  | Ok _ -> Error "protocol invariant broken: one request, not one response"
  | Error e -> Error e
