module Json = Hs_obs.Json
module Tracer = Hs_obs.Tracer

let c_retries = Hs_obs.Metrics.counter "service.retries"

type t = {
  fd : Unix.file_descr;
  dec : Frame.decoder;
  mutable next_id : int;
  mutable eof : bool;
}

(* Client-side phases of a traced request.  Free when the tracer is
   disabled (with_span is then a direct call), so they stay in
   permanently. *)
let connect ?(retries = 20) path =
  Tracer.with_span ~cat:"client" "client.connect" @@ fun () ->
  let rec go attempt =
    if not (Sys.file_exists path) then
      Error (Printf.sprintf "cannot connect to %s: No such file or directory" path)
    else
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> Ok { fd; dec = Frame.create (); next_id = 0; eof = false }
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          if attempt < retries && (e = Unix.ECONNREFUSED || e = Unix.ENOENT) then begin
            ignore (Unix.select [] [] [] 0.05);
            go (attempt + 1)
          end
          else
            Error (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))
  in
  go 0

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let n = String.length s in
  let rec go pos =
    if pos >= n then Ok ()
    else
      match Unix.write_substring fd s pos (n - pos) with
      | written -> go (pos + written)
      | exception Unix.Unix_error (EINTR, _, _) -> go pos
      | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "write failed: %s" (Unix.error_message e))
  in
  go 0

let send_raw t s = write_all t.fd s

let read_response ?(timeout_s = 60.0) t =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let buf = Bytes.create 65536 in
  let rec next_frame () =
    match Frame.next t.dec with
    | Error e -> Error ("response " ^ Frame.error_to_string e)
    | Ok (Some payload) -> (
        match Json.parse payload with
        | Error e -> Error ("undecodable response: " ^ e)
        | Ok json -> (
            match Protocol.response_of_json json with
            | Error e -> Error ("undecodable response: " ^ e)
            | Ok r -> Ok (Some r)))
    | Ok None ->
        if t.eof then
          match Frame.at_eof t.dec with
          | Ok () -> Ok None
          | Error e -> Error ("response " ^ Frame.error_to_string e)
        else
          let remaining = deadline -. Unix.gettimeofday () in
          if remaining <= 0.0 then Error "timed out waiting for a response"
          else begin
            match Unix.select [ t.fd ] [] [] remaining with
            | [], _, _ -> Error "timed out waiting for a response"
            | _ -> (
                match Unix.read t.fd buf 0 (Bytes.length buf) with
                | 0 ->
                    t.eof <- true;
                    next_frame ()
                | n ->
                    Frame.feed t.dec (Bytes.sub_string buf 0 n);
                    next_frame ()
                | exception Unix.Unix_error (EINTR, _, _) -> next_frame ()
                | exception Unix.Unix_error (e, _, _) ->
                    Error (Printf.sprintf "read failed: %s" (Unix.error_message e)))
            | exception Unix.Unix_error (EINTR, _, _) -> next_frame ()
          end
  in
  next_frame ()

let call_many ?(timeout_s = 60.0) t reqs =
  Tracer.with_span ~cat:"client"
    ~args:[ ("requests", Tracer.Int (List.length reqs)) ]
    "client.call"
  @@ fun () ->
  let ids_reqs = List.map (fun r -> let id = t.next_id in t.next_id <- id + 1; (id, r)) reqs in
  let wire = Buffer.create 1024 in
  List.iter
    (fun (id, r) ->
      Buffer.add_string wire
        (Frame.encode (Json.to_string (Protocol.request_to_json ~id r))))
    ids_reqs;
  match Tracer.with_span ~cat:"client" "client.send" (fun () ->
            write_all t.fd (Buffer.contents wire))
  with
  | Error _ as e -> e
  | Ok () ->
      Tracer.with_span ~cat:"client" "client.await" @@ fun () ->
      let want = List.length ids_reqs in
      let got : (int, Protocol.response) Hashtbl.t = Hashtbl.create want in
      let rec collect () =
        if Hashtbl.length got >= want then Ok ()
        else
          match read_response ~timeout_s t with
          | Error _ as e -> e
          | Ok None ->
              Error
                (Printf.sprintf "server closed the connection after %d of %d responses"
                   (Hashtbl.length got) want)
          | Ok (Some r) ->
              (* Unsolicited ids are ignored rather than fatal. *)
              if List.exists (fun (id, _) -> id = r.Protocol.rid) ids_reqs then
                Hashtbl.replace got r.Protocol.rid r;
              collect ()
      in
      (match collect () with
      | Error e -> Error e
      | Ok () -> Ok (List.map (fun (id, _) -> Hashtbl.find got id) ids_reqs))

let call ?timeout_s t req =
  match call_many ?timeout_s t [ req ] with
  | Ok [ r ] -> Ok r
  | Ok _ -> Error "protocol invariant broken: one request, not one response"
  | Error e -> Error e

(* ---- resilience: deterministic backoff + retry ----------------------- *)

let overloaded_status =
  Protocol.status_of_error (Hs_core.Hs_error.Overloaded { retry_after_ms = 0 })

(* Exponential in the attempt, floored by the server's [retry_after_ms]
   hint, plus a jitter that is a pure function of [(salt, attempt)] —
   reproducible runs need reproducible waits, and distinct salts keep a
   burst of rejected clients from retrying in lockstep. *)
let backoff_ms ?(base_ms = 10) ?(cap_ms = 2000) ~attempt ~retry_after_ms ~salt () =
  let base_ms = Stdlib.max 1 base_ms in
  let cap_ms = Stdlib.max base_ms cap_ms in
  let attempt = Stdlib.max 0 attempt in
  let expo =
    if attempt >= 20 then cap_ms else Stdlib.min cap_ms (base_ms * (1 lsl attempt))
  in
  let floor_ms = Stdlib.max expo (Stdlib.max 0 retry_after_ms) in
  let h = (1103515245 * (salt + (31 * attempt)) + 12345) land 0x3FFFFFFF in
  floor_ms + (h mod ((floor_ms / 4) + 1))

let default_sleep ms =
  if ms > 0 then ignore (Unix.select [] [] [] (float_of_int ms /. 1000.0))

let call_with_retry ?timeout_s ?(retries = 0) ?base_ms ?cap_ms
    ?(sleep = default_sleep) t req =
  let salt = t.next_id in
  let rec go attempt =
    match call ?timeout_s t req with
    | Error _ as e -> e
    | Ok r when r.Protocol.status = overloaded_status && attempt < retries ->
        Hs_obs.Metrics.incr c_retries;
        sleep
          (backoff_ms ?base_ms ?cap_ms ~attempt
             ~retry_after_ms:r.Protocol.retry_after_ms ~salt ());
        go (attempt + 1)
    | Ok r -> Ok r
  in
  go 0
