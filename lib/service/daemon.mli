(** The persistent solver daemon.

    A single-threaded [select] event loop owns the Unix-domain listen
    socket, every connection's incremental {!Frame} decoder, the LRU
    {!Cache} and the admission queue; solver work is the only thing that
    leaves the loop, batched onto an {!Hs_exec} domain pool.  The loop
    per iteration:

    + accept pending connections, read every readable one, decode
      complete frames into requests ([ping]/[stats] answered inline,
      [solve] admitted to the queue, wire-level faults answered with a
      typed status-2 response — the daemon never crashes or hangs on
      malformed input);
    + drain the admission queue in batches of at most [max_batch]:
      each request is parsed, keyed ({!Solver.cache_key}) and either
      served from the cache, coalesced onto an identical request already
      in the batch, or solved on the pool under its per-request budget;
      responses go out in admission order.

    Batching bounds the pool submission (one huge instance occupies one
    worker while the rest of the batch proceeds) and per-request budgets
    bound each solve itself; both are admission-time knobs, not solver
    changes.

    Shutdown ([hsched shutdown] or a pipelined [shutdown] frame) is
    graceful: the daemon stops admitting, finishes every queued request,
    flushes their responses, acknowledges the shutdown, removes the
    socket and returns. *)

type config = {
  socket_path : string;
  jobs : int;  (** worker domains per batch (resolved, >= 1) *)
  cache_capacity : int;  (** LRU entries, >= 1 *)
  default_budget : int option;
      (** budget applied to requests that carry none; [None] = the
          unbudgeted certified pipeline, exactly like plain
          [hsched solve] *)
  max_batch : int;  (** max requests per pool submission *)
  verify : bool;
      (** certify every answer before responding: fresh solves run the
          independent {!Hs_check.Certify} re-validation, cache hits are
          fingerprint-checked ({!Engine}); violations surface as typed
          status-1 verification errors *)
  log : string -> unit;  (** server-side log sink *)
}

val default_config : socket_path:string -> config
(** jobs 1, cache 128, no default budget, batches of 64, no
    verification, silent log. *)

val run : config -> (unit, string) result
(** Serve until a shutdown request arrives.  [Error] covers startup
    failures (socket in use, unbindable path) and nothing else: once
    listening, every fault is handled inside the loop. *)
