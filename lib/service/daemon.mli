(** The persistent solver daemon.

    A single-threaded [select] event loop owns the Unix-domain listen
    socket, every connection's incremental {!Frame} decoder, the LRU
    {!Cache} and the admission queue; solver work is the only thing that
    leaves the loop, batched onto an {!Hs_exec} domain pool.  The loop
    per iteration:

    + accept pending connections, read every readable one, decode
      complete frames into requests ([ping]/[stats]/[introspect]
      answered inline — introspection is out-of-band by construction, so
      it stays available during overload —, [solve] and [online]
      admitted to the queue, wire-level faults answered with a typed
      status-2 response — the daemon never crashes or hangs on malformed
      input);
    + cut off clients that sat on a partial frame past [io_timeout_s]
      (typed status-2 response, then close) — an idle connection at a
      frame boundary costs nothing and may idle forever;
    + drain the admission queue in batches of at most [max_batch]:
      requests whose deadline expired while queued are answered with the
      typed status-6 response at dispatch; each survivor is parsed,
      keyed ({!Solver.cache_key}) and either served from the cache,
      coalesced onto an identical request already in the batch, or
      solved on the pool under its per-request budget — the tighter of
      the requested budget and the deadline-derived cap
      ({!Hs_core.Budget.of_deadline_ms}); responses go out in admission
      order.

    {b Online sessions} (DESIGN.md §15): the [online] verb streams
    events into a persistent server-side {!Hs_online.Replay.Session},
    held in a bounded {!Sessions} table ([max_sessions]; opening beyond
    the bound is answered with the same typed status-5 overloaded
    response as a full queue).  Online ops share the admission queue
    with solves — they are shed under the same [max_queue] bound — but
    run inline on the event loop at their admitted positions, strictly
    in admission order (sessions are stateful), with runs of solves
    batched onto the pool between them.  Every op leaves a
    flight-recorder entry keyed by the session's trace digest.  Online
    ops carry no deadline.  Sessions die with the daemon — they are
    scheduler state, not cache, and are deliberately not snapshotted.

    {b Admission control} (DESIGN.md §13): the queue is bounded by
    [max_queue].  A solve arriving at a full queue is shed immediately
    with the typed status-5 response; its [retry_after_ms] hint is
    deterministic — [retry_hint_ms] times the request's position in the
    current shed streak — so a burst of rejected clients spreads its
    retries instead of stampeding back.  [max_queue = 0] sheds every
    solve, which the tests use as a deterministic always-overloaded
    mode.

    {b Crash recovery}: with [snapshot_path] set, the daemon restores
    the cache from the snapshot on startup (each entry re-proves its
    fingerprint; tampered entries are rejected and counted) and writes
    the cache back after draining on shutdown ({!Engine.save_snapshot}).

    {b Observability} (DESIGN.md §14): every solve outcome — completed,
    shed, or queue-expired — lands in a {!Recorder} ring of
    [recorder_capacity] entries, served by [introspect {recent = true}]
    and dumped to [log] on drain; queue-wait and response-write times
    feed the [service.phase.queue_ms]/[service.phase.write_ms]
    histograms.  A batch containing traced requests runs with the tracer
    live on a wall clock: each traced request gets an after-the-fact
    [service.queue.wait] span, and the whole batch's spans ride back on
    each traced response ([spans], tagged with that request's trace id)
    for client-side stitching into one merged timeline.  A daemon that
    was not already tracing returns to its untraced state after the
    batch.

    Shutdown ([hsched shutdown] or a pipelined [shutdown] frame) is
    graceful: the daemon stops admitting, finishes every queued request,
    flushes their responses, persists the snapshot, acknowledges the
    shutdown, removes the socket and returns. *)

type config = {
  socket_path : string;
  jobs : int;  (** worker domains per batch (resolved, >= 1) *)
  cache_capacity : int;  (** LRU entries, >= 1 *)
  default_budget : int option;
      (** budget applied to requests that carry none; [None] = the
          unbudgeted certified pipeline, exactly like plain
          [hsched solve] *)
  max_batch : int;  (** max requests per pool submission *)
  max_queue : int;
      (** admission bound: solves beyond this many queued are shed with
          the typed status-5 response; [0] sheds everything *)
  retry_hint_ms : int;
      (** slope of the deterministic [retry_after_ms] ladder *)
  deadline_units_per_ms : int;
      (** deadline-to-budget exchange rate
          ({!Solver.default_deadline_units_per_ms}) *)
  io_timeout_s : float;
      (** per-connection read deadline on partial frames, and the write
          deadline on responses *)
  snapshot_path : string option;
      (** cache snapshot file: restored (fingerprint-gated) on startup,
          written after drain on shutdown *)
  verify : bool;
      (** certify every answer before responding: fresh solves run the
          independent {!Hs_check.Certify} re-validation, cache hits are
          fingerprint-checked ({!Engine}); violations surface as typed
          status-1 verification errors *)
  recorder_capacity : int;
      (** flight-recorder ring size: the last this-many request outcomes
          are kept for [introspect]/post-mortem, >= 1 *)
  max_sessions : int;
      (** bound on concurrently open online sessions, >= 1; opens beyond
          it are answered with the typed status-5 overloaded response *)
  log : string -> unit;  (** server-side log sink *)
}

val default_config : socket_path:string -> config
(** jobs 1, cache 128, no default budget, batches of 64, queue bound
    256, retry hint 50 ms, deadline rate 100 units/ms, 10 s IO timeout,
    no snapshot, no verification, a 256-entry flight recorder, 16
    online sessions, silent log. *)

val run : config -> (unit, string) result
(** Serve until a shutdown request arrives.  [Error] covers startup
    failures (socket in use, unbindable path) and nothing else: once
    listening, every fault is handled inside the loop.  Raises
    [Invalid_argument] on out-of-range config values ([jobs],
    [max_batch], [retry_hint_ms], [max_sessions] < 1; [max_queue] < 0;
    [io_timeout_s] <= 0). *)
