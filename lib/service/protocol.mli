(** Request/response codec of the solver service.

    One JSON object per {!Frame} payload (DESIGN.md §11):

    {v
    request  ::= {"hsched.rpc": 1, "id": int, "verb": verb, ...}
    verb     ::= "solve" | "online" | "stats" | "introspect" | "ping"
               | "shutdown"
    solve    ::= ... "instance": string  ["budget": int]
                 ["deadline_ms": int>=0]  ["trace_id": string]
    online   ::= ... "op": "open"  "trace": string
                 ["beta": string] ["check": bool]
               | ... "op": "event" "session": int  "event": string
               | ... "op": "close" "session": int
    introspect ::= ... ["recent": bool]
    response ::= {"hsched.rpc": 1, "id": int, "status": int,
                  "cached": bool, "body": string, "error": string
                  ["retry_after_ms": int] ["spans": [span...]]}
    v}

    Status codes mirror the CLI exit-code contract (README.md): [0]
    success, [1] internal failure, [2] unusable input — including every
    wire-level fault: bad frame, bad JSON, unknown verb —, [3]
    infeasible instance, [4] budget exhausted, [5] overloaded (the
    admission queue shed the request; [retry_after_ms] carries the
    deterministic backoff hint), [6] deadline exceeded, [7] unavailable
    (only ever produced client-side — the daemon cannot answer when it
    is absent).  A client can therefore [exit status] and behave exactly
    like the offline [hsched solve].

    The codec is total in both directions: [of_json] never raises on
    untrusted input, and unknown object keys are ignored so the protocol
    can grow compatibly. *)

type solve_params = {
  instance_text : string;  (** Instance_io format, parsed server-side *)
  budget : int option;  (** per-request [Budget.of_units] knob *)
  deadline_ms : int option;
      (** per-request deadline: expires in the admission queue by wall
          clock, and caps the solver budget deterministically via
          [Budget.of_deadline_ms] (see DESIGN.md section 13) *)
  trace_id : string option;
      (** trace-context id minted by the client; the daemon tags its
          spans with it and carries them back in [response.spans] so the
          client can stitch one merged timeline (DESIGN.md section 14) *)
}

(** One streaming online-scheduling session (DESIGN.md §15): [open]
    parses a {!Hs_online.Trace_io} document, creates a server-side
    {!Hs_online.Replay.Session} (replaying any events the document
    already carries) and answers a session id; [event] applies one event
    line and answers the step as JSON; [close] answers the summary and
    frees the session. *)
type online_params =
  | Online_open of {
      trace_text : string;  (** Trace_io format; embedded events replay at open *)
      beta : string option;
          (** migration-budget coefficient, an exact rational or decimal
              literal parsed server-side; [None] (or ["inf"]) = unlimited *)
      check : bool;  (** certify every step inline ({!Hs_check.Certify}) *)
    }
  | Online_event of { session : int; event_text : string (** one Trace_io event line *) }
  | Online_close of { session : int }

type request =
  | Solve of solve_params
  | Online of online_params
  | Stats  (** service counters, one ["name = value"] line each *)
  | Introspect of { recent : bool }
      (** live JSON introspection ("hsched.introspect/1": uptime, queue
          depth, metrics snapshot; [recent] adds the flight recorder's
          ring).  Answered out-of-band — never enters the admission
          queue. *)
  | Ping
  | Shutdown  (** drain queued work, acknowledge, exit *)

val version : int
(** Wire version, [1]; carried as ["hsched.rpc"] in every object. *)

type response = {
  rid : int;  (** echoed request id; [-1] when the request had none *)
  status : int;  (** CLI exit-code contract, see above *)
  cached : bool;  (** body served from (or coalesced into) the cache *)
  body : string;  (** rendered result when [status = 0] *)
  error : string;  (** diagnostic when [status <> 0] *)
  retry_after_ms : int;
      (** deterministic backoff hint on status 5 (overloaded); [0]
          otherwise *)
  spans : Hs_obs.Json.t list;
      (** server-side spans ({!Hs_obs.Tracer.span_to_json} shape) for a
          traced solve; [[]] otherwise.  Kept as raw JSON in the codec —
          the client decodes with [span_of_json] and absorbs what it can,
          so a span it cannot parse degrades, never faults, the call. *)
}

val ok : rid:int -> ?cached:bool -> ?spans:Hs_obs.Json.t list -> string -> response
val err : rid:int -> status:int -> ?spans:Hs_obs.Json.t list -> string -> response

val overloaded : rid:int -> retry_after_ms:int -> response
(** The admission-control shed reply: status 5, the
    [Hs_error.Overloaded] diagnostic, and the backoff hint. *)

val status_of_error : Hs_core.Hs_error.t -> int
(** [Hs_core.Hs_error.exit_code], restated here as the protocol-status
    mapping. *)

val request_to_json : id:int -> request -> Hs_obs.Json.t

(** Decoded request with its id.  Errors also carry the id ([-1] when
    absent or non-integer), so a malformed request still gets a
    correlatable error response. *)
val request_of_json : Hs_obs.Json.t -> (int * request, int * string) result
val response_to_json : response -> Hs_obs.Json.t
val response_of_json : Hs_obs.Json.t -> (response, string) result
