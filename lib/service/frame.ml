(* Length-prefixed frames; see the interface for the grammar.

   The decoder keeps one growing buffer and a consumed-bytes offset.
   [next] never copies more than the returned payload, and the buffer is
   compacted once the consumed prefix dominates, so a long-lived
   connection does not grow its buffer beyond the largest in-flight
   frame.

   The buffer is bounded: a peer that streams bytes without ever
   completing a frame (or declares a huge length and dribbles payload)
   trips the [Overrun] error at [max_buffer] bytes instead of growing
   the buffer without limit, and a sticky-failed decoder drops all
   further input — one malicious connection costs at most [max_buffer]
   bytes, ever. *)

let max_payload = 16 * 1024 * 1024
let header_len = 9 (* 8 hex digits + '\n' *)
let max_buffer = header_len + max_payload

(* Wire-level telemetry: framing is where every byte of service traffic
   passes, so these four counters are the ground truth that [hsched
   stats] reports as throughput.  Registration is idempotent and the
   cells are domain-local (merged like all other metrics). *)
module Metrics = Hs_obs.Metrics

let c_encoded = Metrics.counter "frame.encoded"
let c_decoded = Metrics.counter "frame.decoded"
let c_bytes_in = Metrics.counter "frame.bytes.in"
let c_bytes_out = Metrics.counter "frame.bytes.out"
let c_errors = Metrics.counter "frame.errors"

let encode payload =
  let n = String.length payload in
  if n > max_payload then
    invalid_arg (Printf.sprintf "Frame.encode: payload of %d bytes exceeds %d" n max_payload);
  Metrics.incr c_encoded;
  Metrics.add c_bytes_out (header_len + n);
  Printf.sprintf "%08x\n%s" n payload

type error =
  | Bad_header of string
  | Oversized of int
  | Truncated of int
  | Overrun of int

let error_to_string = function
  | Bad_header h -> Printf.sprintf "malformed frame header %S (want 8 hex digits + newline)" h
  | Oversized n -> Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n max_payload
  | Truncated n -> Printf.sprintf "connection closed mid-frame (%d buffered bytes)" n
  | Overrun n ->
      Printf.sprintf "read buffer overrun (%d bytes buffered without a complete frame; limit %d)"
        n max_buffer

type decoder = {
  mutable buf : Bytes.t;
  mutable len : int;  (** valid bytes in [buf] *)
  mutable pos : int;  (** consumed prefix *)
  mutable failed : error option;  (** sticky decode error *)
  limit : int;  (** max buffered (unconsumed) bytes *)
}

let create ?(max_buffer = max_buffer) () =
  if max_buffer < header_len then
    invalid_arg "Frame.create: max_buffer must hold at least a header";
  { buf = Bytes.create 4096; len = 0; pos = 0; failed = None; limit = max_buffer }

let buffered d = d.len - d.pos

let compact d =
  if d.pos > 0 && (d.pos = d.len || d.pos > Bytes.length d.buf / 2) then begin
    Bytes.blit d.buf d.pos d.buf 0 (d.len - d.pos);
    d.len <- d.len - d.pos;
    d.pos <- 0
  end

let feed d s =
  (* A failed decoder never buffers another byte: the caller is about to
     hang up, and a flooding peer must not grow the buffer meanwhile. *)
  if d.failed = None then begin
    let n = String.length s in
    Metrics.add c_bytes_in n;
    if buffered d + n > d.limit then begin
      d.failed <- Some (Overrun (buffered d + n));
      Metrics.incr c_errors
    end
    else begin
      compact d;
      if d.len + n > Bytes.length d.buf then begin
        let cap = ref (Bytes.length d.buf) in
        while d.len + n > !cap do
          cap := !cap * 2
        done;
        let bigger = Bytes.create !cap in
        Bytes.blit d.buf 0 bigger 0 d.len;
        d.buf <- bigger
      end;
      Bytes.blit_string s 0 d.buf d.len n;
      d.len <- d.len + n
    end
  end

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

let parse_header d =
  (* Caller guarantees [buffered d >= header_len]. *)
  let h = Bytes.sub_string d.buf d.pos header_len in
  let ok = ref (h.[8] = '\n') in
  let v = ref 0 in
  for i = 0 to 7 do
    let c = h.[i] in
    if is_hex c then
      v := (!v * 16) + if c <= '9' then Char.code c - Char.code '0' else Char.code c - Char.code 'a' + 10
    else ok := false
  done;
  if not !ok then
    Error (Bad_header (if h.[8] = '\n' then String.sub h 0 8 else h))
  else if !v > max_payload then Error (Oversized !v)
  else Ok !v

let next d =
  match d.failed with
  | Some e -> Error e
  | None ->
      if buffered d < header_len then Ok None
      else begin
        match parse_header d with
        | Error e ->
            d.failed <- Some e;
            Metrics.incr c_errors;
            Error e
        | Ok n ->
            if buffered d < header_len + n then Ok None
            else begin
              let payload = Bytes.sub_string d.buf (d.pos + header_len) n in
              d.pos <- d.pos + header_len + n;
              compact d;
              Metrics.incr c_decoded;
              Ok (Some payload)
            end
      end

let at_eof d =
  match d.failed with
  | Some e -> Error e
  | None -> if buffered d = 0 then Ok () else Error (Truncated (buffered d))
