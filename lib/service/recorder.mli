(** Flight recorder: a bounded ring buffer of the last N request
    outcomes, kept by the daemon so a post-mortem after a shed storm or
    a crash can replay what just happened without re-running load
    (DESIGN.md §14).

    Every solve outcome — completed, shed at admission, or expired in
    the queue — becomes one {!entry}; once the ring is full the oldest
    entry is overwritten.  [seq] is the 1-based admission number since
    daemon start and keeps counting past the ring's capacity, so a dump
    shows both {e what} happened and {e how far back} it reaches.

    The recorder is single-writer by construction (only the daemon's
    event loop records) and costs one array store per request. *)

type entry = {
  seq : int;  (** 1-based outcome number since daemon start *)
  digest : string;  (** cache key; [""] when shed before parsing *)
  status : int;  (** protocol status / CLI exit-code contract *)
  cached : bool;
  queue_ms : int;  (** admission-queue wait, milliseconds *)
  solve_ms : int;  (** solver wall time, milliseconds; [0] for hits *)
  trace_id : string;  (** [""] = untraced request *)
  shed_reason : string;
      (** [""] for completed requests; ["queue_full"] (admission shed)
          or ["queue_deadline"] (expired while queued) otherwise *)
  retry_after_ms : int;  (** backoff hint sent with a shed; [0] otherwise *)
}

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : t -> int

val recorded : t -> int
(** Total outcomes ever recorded (monotone; exceeds {!capacity} once
    the ring has wrapped). *)

val length : t -> int
(** Entries currently held: [min recorded capacity]. *)

val record :
  t ->
  ?cached:bool ->
  ?queue_ms:int ->
  ?solve_ms:int ->
  ?trace_id:string ->
  ?shed_reason:string ->
  ?retry_after_ms:int ->
  digest:string ->
  status:int ->
  unit ->
  unit

val entries : t -> entry list
(** Currently held entries, oldest first. *)

val entry_to_line : entry -> string
(** One fixed-field text line
    ([#seq status=.. cached=.. digest=.. queue_ms=.. solve_ms=..
    trace=.. shed=..] plus [retry_after_ms=..] on sheds), used by the
    drain dump and [hsched stats --recent]. *)

val entry_to_json : entry -> Hs_obs.Json.t
val entry_of_json : Hs_obs.Json.t -> (entry, string) result

val to_json : t -> Hs_obs.Json.t
(** The held entries oldest-first as a JSON list, embedded in the
    ["hsched.introspect/1"] document. *)
