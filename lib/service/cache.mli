(** LRU result cache of the solver service.

    Keys are canonical-content hashes ({!Hs_model.Instance_io.digest}
    plus the solver options that shape the answer — see
    {!Solver.cache_key}), so two textually different files of the same
    instance share an entry.  Every lookup and eviction is counted in
    the {!Hs_obs.Metrics} registry as [service.cache.hit] /
    [service.cache.miss] / [service.cache.evict], which the [stats] verb
    and [BENCH_service.json] report.

    Not thread-safe by design: the daemon owns its cache from the event
    loop; worker domains only compute, they never touch the cache. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : _ t -> int
val length : _ t -> int

val find : 'a t -> string -> 'a option
(** Counts a hit (refreshing the entry's recency) or a miss. *)

val to_list : 'a t -> (string * 'a) list
(** Entries in recency order, most recent first.  A raw traversal for
    snapshots: neither recency nor the hit/miss counters change. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or overwrite; the least-recently-used entry is evicted (and
    counted) when the capacity is exceeded. *)
