(** Textual reports of solver outcomes, shared by the CLI and the
    daemon.

    The daemon's acceptance contract is byte-identity: a [solve] request
    answered over the wire must print exactly what the offline
    [hsched solve] prints for the same instance.  Both therefore render
    through these functions; the CLI keeps only its extras (the optional
    schedule dump and Gantt chart) on its side. *)

val exact_outcome : Hs_core.Approx.Exact.outcome -> string
(** The default [hsched solve] report (no [--budget]): LP bound,
    makespan with its 2·T* guarantee, rounding stats, per-job
    assignment, validation verdict. *)

val robust_outcome :
  budget:Hs_core.Budget.t -> Hs_core.Approx.robust_outcome -> string
(** The [hsched solve --budget K] report: provenance, degradations,
    budget consumption, bounds, re-certification verdict. *)
