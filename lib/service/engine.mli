(** The daemon's batch pipeline, factored out of the event loop so it
    can be driven (and corrupted) directly by tests.

    A batch of solve requests is classified sequentially against the LRU
    cache — duplicate requests coalesce onto one leader —, the distinct
    misses are solved on an {!Hs_exec} pool, and answers come back in
    admission order with their [cached] flags.

    With [verify = true] every answer is certified before it leaves the
    engine: fresh solves run the full {!Hs_check.Certify} re-validation
    of the outcome ({!Solver.execute} with [~verify:true]), and cache
    hits are replayed only after their stored fingerprint re-checks —
    a tampered entry is answered with the typed
    [Hs_error.Verification] error (protocol status 1), never replayed. *)

type t

type answer = {
  status : int;  (** protocol status / CLI exit-code contract *)
  cached : bool;  (** replayed from (or coalesced into) the cache *)
  body : string;
  error : string;
}

val create :
  ?verify:bool ->
  jobs:int ->
  cache_capacity:int ->
  default_budget:int option ->
  unit ->
  t
(** [verify] defaults to [false] — byte-identical behaviour to the
    pre-verification engine.  Raises [Invalid_argument] when
    [jobs < 1]. *)

val verifying : t -> bool

val solve_batch : t -> Protocol.solve_params list -> answer list
(** One admission batch, answers in admission order.  Later batches see
    this batch's cache entries. *)

val cache_length : t -> int

val poison_cache : t -> key:string -> bool
(** Test hook: flip a byte of the cached body for [key] while keeping
    its recorded fingerprint, simulating cache corruption.  Returns
    [false] when the key is not cached.  A verifying engine detects the
    mismatch on the next hit ([service.cache.tampered] counter). *)
