(** The daemon's batch pipeline, factored out of the event loop so it
    can be driven (and corrupted) directly by tests.

    A batch of solve requests is classified sequentially against the LRU
    cache — duplicate requests coalesce onto one leader —, the distinct
    misses are solved on an {!Hs_exec} pool, and answers come back in
    admission order with their [cached] flags.

    With [verify = true] every answer is certified before it leaves the
    engine: fresh solves run the full {!Hs_check.Certify} re-validation
    of the outcome ({!Solver.execute} with [~verify:true]), and cache
    hits are replayed only after their stored fingerprint re-checks —
    a tampered entry is answered with the typed
    [Hs_error.Verification] error (protocol status 1), never replayed.

    For crash recovery the cache round-trips through disk
    ({!save_snapshot} / {!load_snapshot}); the same per-entry
    fingerprints gate the restore, so a snapshot edited on disk loses
    exactly its tampered entries. *)

type t

type answer = {
  status : int;  (** protocol status / CLI exit-code contract *)
  cached : bool;  (** replayed from (or coalesced into) the cache *)
  body : string;
  error : string;
  key : string;
      (** cache key ({!Solver.cache_key}) the answer was computed or
          replayed under; [""] when the request failed to parse — the
          flight recorder uses it as the request digest *)
  solve_ms : int;
      (** wall milliseconds of the fresh solve ({!Solver.execute_timed});
          [0] for cache hits, coalesced followers and parse failures *)
}

val create :
  ?verify:bool ->
  ?deadline_units_per_ms:int ->
  jobs:int ->
  cache_capacity:int ->
  default_budget:int option ->
  unit ->
  t
(** [verify] defaults to [false] — byte-identical behaviour to the
    pre-verification engine.  [deadline_units_per_ms] (default
    {!Solver.default_deadline_units_per_ms}) is the deterministic
    deadline-to-budget exchange rate passed to {!Solver.prepare}.
    Raises [Invalid_argument] when [jobs < 1] or
    [deadline_units_per_ms < 1]. *)

val verifying : t -> bool

val solve_batch : t -> Protocol.solve_params list -> answer list
(** One admission batch, answers in admission order.  Later batches see
    this batch's cache entries. *)

val cache_length : t -> int

(** {1 Crash recovery} *)

val snapshot_schema : string
(** ["hsched.service.snapshot/1"], pinned in the snapshot file. *)

val save_snapshot : t -> string -> (int, string) result
(** Write the cache to [path] (via [path ^ ".tmp"] and an atomic
    rename), entries in recency order, most recent first, each with its
    stored fingerprint.  Returns the number of entries written. *)

val load_snapshot : t -> string -> (int * int, string) result
(** Restore a snapshot into the cache: [(loaded, rejected)].  Every
    entry re-proves its fingerprint before it is trusted; entries that
    fail (tampered on disk) or are malformed are counted as [rejected]
    and skipped, and the count lands on the [service.snapshot.rejected]
    counter ([service.snapshot.loaded] for the rest).  At most
    [capacity] of the most recent entries are restored, oldest inserted
    first, so recency survives the round trip.  A missing or unreadable
    file, unparsable JSON, or a wrong schema tag is the [Error]. *)

(** {1 Fault injection} *)

val chaos_crash_hook : (Solver.prepared -> unit) option ref
(** When installed, runs inside the worker closure immediately before
    each solve; an exception it raises follows the real worker-crash
    path ({!Hs_exec.try_parmap} [worker_error] → typed status-1
    answer).  [None] (the default) costs one ref read per solve. *)

val chaos_budget : int
(** Reserved budget value ([424242]) that trips the stock sentinel. *)

val install_chaos_sentinel : unit -> unit
(** Arm {!chaos_crash_hook} with the stock sentinel: any request whose
    effective budget is {!chaos_budget} crashes its worker.  Test-only
    — wired to [hsched serve --chaos]. *)

val poison_cache : t -> key:string -> bool
(** Test hook: flip a byte of the cached body for [key] while keeping
    its recorded fingerprint, simulating cache corruption.  Returns
    [false] when the key is not cached.  A verifying engine detects the
    mismatch on the next hit ([service.cache.tampered] counter). *)
