open Hs_model
module E = Hs_core.Hs_error
module Metrics = Hs_obs.Metrics

let default_deadline_units_per_ms = 100

(* Per-phase service latency, in wall-clock milliseconds.  Unlike the
   algorithmic counters these are intentionally nondeterministic — they
   answer "where did this request spend its time", which only wall time
   can.  Observed in the worker domain and merged back by Hs_exec. *)
let ms_buckets = Metrics.ms_buckets
let h_solve_ms = Metrics.histogram ~buckets:ms_buckets "service.phase.solve_ms"
let h_render_ms = Metrics.histogram ~buckets:ms_buckets "service.phase.render_ms"

let wall_ms t0 = int_of_float (((Unix.gettimeofday () -. t0) *. 1000.0) +. 0.5)

type prepared = {
  instance : Instance.t;
  budget : int option;
  deadline_ms : int option;
  deadline_capped : bool;
  key : string;
}

let cache_key ~digest ~budget ~deadline_capped =
  let base =
    match budget with
    | None -> digest ^ ":solve"
    | Some k -> Printf.sprintf "%s:solve:b%d" digest k
  in
  (* A deadline-capped solve answers exhaustion as Deadline_exceeded
     where a plain budget answers Budget_exhausted, so the two must not
     share a cache line even at equal effective units. *)
  if deadline_capped then base ^ ":d" else base

let prepare ?(deadline_units_per_ms = default_deadline_units_per_ms)
    ~default_budget (p : Protocol.solve_params) =
  if deadline_units_per_ms < 1 then
    invalid_arg "Solver.prepare: deadline_units_per_ms must be >= 1";
  match Instance_io.of_string p.instance_text with
  | Error e -> Error (E.Parse_error e)
  | Ok instance ->
      let requested =
        match p.budget with Some _ as b -> b | None -> default_budget
      in
      (* The deadline buys budget units at a fixed, deterministic rate
         (Budget.of_deadline_ms); the effective budget is the meet (the
         tighter cap per dimension) of the requested and
         deadline-derived budgets.  [of_units]/[of_deadline_ms] put the
         unit count in every capped dimension, so reading [lp_pivots]
         back recovers it. *)
      let module B = Hs_core.Budget in
      let requested_b =
        match requested with None -> B.unlimited | Some k -> B.of_units k
      in
      let effective_b =
        match p.deadline_ms with
        | None -> requested_b
        | Some d ->
            B.meet requested_b
              (B.of_deadline_ms ~units_per_ms:deadline_units_per_ms d)
      in
      let budget = effective_b.B.lp_pivots in
      let deadline_capped =
        match (requested, budget) with
        | _, None | None, Some _ -> p.deadline_ms <> None
        | Some k, Some e -> e < k
      in
      Ok
        {
          instance;
          budget;
          deadline_ms = p.deadline_ms;
          deadline_capped;
          key =
            cache_key ~digest:(Instance_io.digest instance) ~budget
              ~deadline_capped;
        }

(* With [verify] the structured outcome is re-validated by the
   independent checker before it is rendered; the first violated
   invariant surfaces as the typed [Verification] error. *)
let certified verdict render =
  match Hs_check.Verdict.to_error verdict with
  | Some e -> Error e
  | None -> Ok (render ())

(* Rendering is its own observable phase: a span nested under
   [service.solve] plus the [service.phase.render_ms] histogram, so a
   merged trace (and [hsched stats]) can split "computing the schedule"
   from "formatting the report". *)
let rendering f =
  Hs_obs.Tracer.with_span ~cat:"service" "service.render" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> Metrics.observe h_render_ms (wall_ms t0)) f

let execute_timed ?(verify = false)
    { instance; budget; deadline_ms; deadline_capped; _ } =
  let t0 = Unix.gettimeofday () in
  Hs_obs.Tracer.with_span ~cat:"service" "service.solve" @@ fun () ->
  let outcome =
    try
      match budget with
      | None -> (
          match Hs_core.Approx.Exact.solve_checked instance with
          | Error e -> Error e
          | Ok o ->
              if verify then
                certified (Hs_check.Certify.outcome o) (fun () ->
                    rendering (fun () -> Render.exact_outcome o))
              else Ok (rendering (fun () -> Render.exact_outcome o)))
      | Some k -> (
          let budget = Hs_core.Budget.of_units k in
          match Hs_core.Approx.solve_robust ~budget ~on_exhausted:`Fallback instance with
          | Error e -> Error e
          | Ok r ->
              if verify then
                certified (Hs_check.Certify.robust r) (fun () ->
                    rendering (fun () -> Render.robust_outcome ~budget r))
              else Ok (rendering (fun () -> Render.robust_outcome ~budget r)))
    with
    | E.Error e -> Error e
    | exn -> Error (E.Internal (Printexc.to_string exn))
  in
  let solve_ms = wall_ms t0 in
  Metrics.observe h_solve_ms solve_ms;
  (* When the deadline supplied the binding cap, exhaustion is the
     deadline's fault: surface the typed deadline error (status 6), not
     a budget one (status 4). *)
  let outcome =
    match outcome with
    | Error (E.Budget_exhausted { stage; detail }) when deadline_capped ->
        Error
          (E.Deadline_exceeded
             {
               deadline_ms = Option.value ~default:0 deadline_ms;
               detail =
                 Printf.sprintf "deadline-derived budget ran out [%s]: %s"
                   (E.stage_name stage) detail;
             })
    | o -> o
  in
  (outcome, solve_ms)

let execute ?verify prep = fst (execute_timed ?verify prep)
