open Hs_model
module E = Hs_core.Hs_error

type prepared = { instance : Instance.t; budget : int option; key : string }

let cache_key ~digest ~budget =
  match budget with
  | None -> digest ^ ":solve"
  | Some k -> Printf.sprintf "%s:solve:b%d" digest k

let prepare ~default_budget (p : Protocol.solve_params) =
  match Instance_io.of_string p.instance_text with
  | Error e -> Error (E.Parse_error e)
  | Ok instance ->
      let budget = match p.budget with Some _ as b -> b | None -> default_budget in
      Ok { instance; budget; key = cache_key ~digest:(Instance_io.digest instance) ~budget }

(* With [verify] the structured outcome is re-validated by the
   independent checker before it is rendered; the first violated
   invariant surfaces as the typed [Verification] error. *)
let certified verdict render =
  match Hs_check.Verdict.to_error verdict with
  | Some e -> Error e
  | None -> Ok (render ())

let execute ?(verify = false) { instance; budget; _ } =
  Hs_obs.Tracer.with_span ~cat:"service" "service.solve" @@ fun () ->
  try
    match budget with
    | None -> (
        match Hs_core.Approx.Exact.solve_checked instance with
        | Error e -> Error e
        | Ok o ->
            if verify then
              certified (Hs_check.Certify.outcome o) (fun () -> Render.exact_outcome o)
            else Ok (Render.exact_outcome o))
    | Some k -> (
        let budget = Hs_core.Budget.of_units k in
        match Hs_core.Approx.solve_robust ~budget ~on_exhausted:`Fallback instance with
        | Error e -> Error e
        | Ok r ->
            if verify then
              certified (Hs_check.Certify.robust r) (fun () ->
                  Render.robust_outcome ~budget r)
            else Ok (Render.robust_outcome ~budget r))
  with
  | E.Error e -> Error e
  | exn -> Error (E.Internal (Printexc.to_string exn))
