(* Solver-outcome reports; moved here from bin/hsched.ml so the daemon
   and the CLI cannot drift apart (byte-identity is pinned by
   test/service.t). *)

open Hs_model
module L = Hs_laminar.Laminar

let exact_outcome (o : Hs_core.Approx.Exact.outcome) =
  let buf = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "LP lower bound T* = %d\n" o.t_lp;
  pr "achieved makespan = %d  (guarantee: <= %d)\n" o.makespan (2 * o.t_lp);
  pr "fractional jobs rounded: %d (matched %d)\n" o.rounding.fractional_jobs
    o.rounding.matched;
  let lam = Instance.laminar o.instance in
  Array.iteri
    (fun j s ->
      pr "  job %d -> {%s} (p=%s)\n" j
        (String.concat ","
           (List.map string_of_int (Array.to_list (L.members lam s))))
        (Ptime.to_string (Instance.ptime o.instance ~job:j ~set:s)))
    o.assignment;
  (match Schedule.validate o.instance o.assignment o.schedule with
  | Ok () -> pr "schedule: VALID, horizon %d\n" (Schedule.horizon o.schedule)
  | Error e -> pr "schedule: INVALID (%s)\n" e);
  Buffer.contents buf

let robust_outcome ~(budget : Hs_core.Budget.t) (r : Hs_core.Approx.robust_outcome) =
  let buf = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "path: %s\n" (Hs_core.Approx.provenance_to_string r.r_provenance);
  List.iter
    (fun e -> pr "degraded: %s\n" (Hs_core.Hs_error.to_string e))
    r.r_fallbacks;
  (match (budget.Hs_core.Budget.lp_pivots, r.r_consumed.Hs_core.Budget.lp_pivots) with
  | Some limit, Some used -> pr "budget: used %d of %d pivots\n" used limit
  | _ -> ());
  (match (budget.Hs_core.Budget.search_iters, r.r_consumed.Hs_core.Budget.search_iters) with
  | Some limit, Some used -> pr "budget: used %d of %d probes\n" used limit
  | _ -> ());
  pr "lower bound = %d\n" r.r_lower_bound;
  pr "achieved makespan = %d  (guarantee: <= %d)\n" r.r_makespan (2 * r.r_lower_bound);
  pr "schedule: VALID (re-certified), horizon %d\n" (Schedule.horizon r.r_schedule);
  Buffer.contents buf
