(* Flight recorder: a bounded ring of recent request outcomes; see the
   interface.  Plain circular array — the daemon records from its single
   event-loop thread, so no synchronisation is needed. *)

module Json = Hs_obs.Json

type entry = {
  seq : int;
  digest : string;
  status : int;
  cached : bool;
  queue_ms : int;
  solve_ms : int;
  trace_id : string;
  shed_reason : string;
  retry_after_ms : int;
}

type t = {
  ring : entry option array;
  mutable recorded : int;  (* total ever; next entry's 1-based seq *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Recorder.create: capacity must be >= 1";
  { ring = Array.make capacity None; recorded = 0 }

let capacity t = Array.length t.ring
let recorded t = t.recorded
let length t = Stdlib.min t.recorded (capacity t)

let record t ?(cached = false) ?(queue_ms = 0) ?(solve_ms = 0) ?(trace_id = "")
    ?(shed_reason = "") ?(retry_after_ms = 0) ~digest ~status () =
  let seq = t.recorded + 1 in
  t.recorded <- seq;
  t.ring.((seq - 1) mod capacity t) <-
    Some
      {
        seq;
        digest;
        status;
        cached;
        queue_ms;
        solve_ms;
        trace_id;
        shed_reason;
        retry_after_ms;
      }

let entries t =
  let cap = capacity t in
  let n = length t in
  List.init n (fun i ->
      match t.ring.((t.recorded - n + i) mod cap) with
      | Some e -> e
      | None -> assert false (* slots below [length] are always filled *))

(* One pinnable line per entry: fixed field order, "-" for absent
   digest/trace/shed so every line parses the same way, the retry hint
   only when the entry is a shed (it is the hint the post-mortem is
   after). *)
let entry_to_line e =
  Printf.sprintf "#%d status=%d cached=%b digest=%s queue_ms=%d solve_ms=%d trace=%s shed=%s%s"
    e.seq e.status e.cached
    (if e.digest = "" then "-" else e.digest)
    e.queue_ms e.solve_ms
    (if e.trace_id = "" then "-" else e.trace_id)
    (if e.shed_reason = "" then "-" else e.shed_reason)
    (if e.retry_after_ms > 0 then Printf.sprintf " retry_after_ms=%d" e.retry_after_ms
     else "")

let entry_to_json e =
  Json.Obj
    ([
       ("seq", Json.Int e.seq);
       ("digest", Json.String e.digest);
       ("status", Json.Int e.status);
       ("cached", Json.Bool e.cached);
       ("queue_ms", Json.Int e.queue_ms);
       ("solve_ms", Json.Int e.solve_ms);
     ]
    @ (if e.trace_id <> "" then [ ("trace_id", Json.String e.trace_id) ] else [])
    @ (if e.shed_reason <> "" then [ ("shed_reason", Json.String e.shed_reason) ]
       else [])
    @
    if e.retry_after_ms > 0 then [ ("retry_after_ms", Json.Int e.retry_after_ms) ]
    else [])

let entry_of_json j =
  let str k d =
    match Json.member k j with Some (Json.String s) -> s | _ -> d
  in
  let int k d = match Json.member k j with Some (Json.Int i) -> i | _ -> d in
  match (Json.member "seq" j, Json.member "status" j) with
  | Some (Json.Int seq), Some (Json.Int status) ->
      Ok
        {
          seq;
          digest = str "digest" "";
          status;
          cached =
            (match Json.member "cached" j with Some (Json.Bool b) -> b | _ -> false);
          queue_ms = int "queue_ms" 0;
          solve_ms = int "solve_ms" 0;
          trace_id = str "trace_id" "";
          shed_reason = str "shed_reason" "";
          retry_after_ms = int "retry_after_ms" 0;
        }
  | _ -> Error "recorder entry needs integer \"seq\" and \"status\""

let to_json t = Json.List (List.map entry_to_json (entries t))
