(* Bounded table of live online sessions; see the interface. *)

type entry = {
  session : Hs_online.Replay.Session.t;
  digest : string;
  mutable events : int;
}

type t = {
  cap : int;
  tbl : (int, entry) Hashtbl.t;
  mutable next : int;  (* ids are monotone, never reused *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Sessions.create: capacity must be >= 1";
  { cap = capacity; tbl = Hashtbl.create 8; next = 0 }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl
let opened t = t.next

let open_ t ~digest session =
  if Hashtbl.length t.tbl >= t.cap then None
  else begin
    let id = t.next in
    t.next <- id + 1;
    Hashtbl.replace t.tbl id { session; digest; events = 0 };
    Some id
  end

let find t id = Hashtbl.find_opt t.tbl id

let close t id =
  match Hashtbl.find_opt t.tbl id with
  | None -> None
  | Some e ->
      Hashtbl.remove t.tbl id;
      Some e
