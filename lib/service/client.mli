(** Client side of the service protocol.

    Thin and blocking: connect to the daemon's Unix-domain socket, send
    framed requests (pipelined — all frames in one write, so a batch
    lands in the daemon's admission queue together), read framed
    responses.  Request ids are assigned sequentially; responses are
    matched by id, so the daemon is free to answer [ping]/[stats] out of
    band. *)

type t

val connect : ?retries:int -> string -> (t, string) result
(** Connect to a socket path.  [retries] (default 20) covers the
    bind-to-listen startup race with a 50 ms pause between attempts —
    but only while the socket file exists and refuses connections; a
    missing path fails immediately. *)

val close : t -> unit

val call : ?timeout_s:float -> t -> Protocol.request -> (Protocol.response, string) result
(** One request, one response (default timeout 60 s). *)

val call_many :
  ?timeout_s:float ->
  t ->
  Protocol.request list ->
  (Protocol.response list, string) result
(** Pipelined round-trip: every request is framed into a single write,
    then responses are collected until each id has answered (or the
    peer closes / the per-read timeout expires).  Responses are returned
    in request order. *)

(** {1 Test hooks (fault-injection harness)} *)

val send_raw : t -> string -> (unit, string) result
(** Write raw bytes — corrupted frames — straight to the socket. *)

val read_response :
  ?timeout_s:float -> t -> (Protocol.response option, string) result
(** Next response frame; [Ok None] on clean EOF.  [Error] covers
    timeouts (the daemon-never-hangs assertion) and undecodable
    responses. *)
