(** Client side of the service protocol.

    Thin and blocking: connect to the daemon's Unix-domain socket, send
    framed requests (pipelined — all frames in one write, so a batch
    lands in the daemon's admission queue together), read framed
    responses.  Request ids are assigned sequentially; responses are
    matched by id, so the daemon is free to answer [ping]/[stats] out of
    band.

    When the calling domain's tracer is enabled, {!connect} and the
    calls record client-side spans ([client.connect], [client.call]
    with [client.send]/[client.await] nested) — the client half of a
    merged client/server trace (DESIGN.md §14).  Disabled, the spans
    cost nothing. *)

type t

val connect : ?retries:int -> string -> (t, string) result
(** Connect to a socket path.  [retries] (default 20) covers the
    bind-to-listen startup race with a 50 ms pause between attempts —
    but only while the socket file exists and refuses connections; a
    missing path fails immediately. *)

val close : t -> unit

val call : ?timeout_s:float -> t -> Protocol.request -> (Protocol.response, string) result
(** One request, one response (default timeout 60 s). *)

val call_many :
  ?timeout_s:float ->
  t ->
  Protocol.request list ->
  (Protocol.response list, string) result
(** Pipelined round-trip: every request is framed into a single write,
    then responses are collected until each id has answered (or the
    peer closes / the per-read timeout expires).  Responses are returned
    in request order. *)

(** {1 Resilience} *)

val backoff_ms :
  ?base_ms:int ->
  ?cap_ms:int ->
  attempt:int ->
  retry_after_ms:int ->
  salt:int ->
  unit ->
  int
(** The wait before retry number [attempt] (0-based): exponential
    ([base_ms * 2^attempt], default base 10 ms, capped at [cap_ms],
    default 2 s), floored by the server's [retry_after_ms] hint, plus a
    jitter in [\[0, floor/4\]] that is a pure function of
    [(salt, attempt)].  Fully deterministic — reproducible runs need
    reproducible waits — while distinct salts keep a burst of rejected
    clients from retrying in lockstep. *)

val call_with_retry :
  ?timeout_s:float ->
  ?retries:int ->
  ?base_ms:int ->
  ?cap_ms:int ->
  ?sleep:(int -> unit) ->
  t ->
  Protocol.request ->
  (Protocol.response, string) result
(** {!call}, retrying up to [retries] (default 0) extra times when the
    daemon sheds the request with the typed overloaded response
    (status 5), waiting {!backoff_ms} between attempts (the connection's
    next request id salts the jitter).  Every other response — including
    the final overloaded one when retries run out — is returned as-is.
    Each retry counts on the [service.retries] counter.  [sleep]
    (default a [select]-based millisecond sleep) is a test hook. *)

(** {1 Test hooks (fault-injection harness)} *)

val send_raw : t -> string -> (unit, string) result
(** Write raw bytes — corrupted frames — straight to the socket. *)

val read_response :
  ?timeout_s:float -> t -> (Protocol.response option, string) result
(** Next response frame; [Ok None] on clean EOF.  [Error] covers
    timeouts (the daemon-never-hangs assertion) and undecodable
    responses. *)
