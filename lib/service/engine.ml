(* Socket-free batch pipeline of the daemon; see the interface. *)

module Metrics = Hs_obs.Metrics
module Json = Hs_obs.Json
module E = Hs_core.Hs_error

(* Same name-keyed cells the daemon and Cache increment. *)
let c_hit = Metrics.counter "service.cache.hit"
let c_requests = Metrics.counter "service.requests"
let c_tampered = Metrics.counter "service.cache.tampered"
let c_snap_loaded = Metrics.counter "service.snapshot.loaded"
let c_snap_rejected = Metrics.counter "service.snapshot.rejected"

(* A cached answer is the full response payload modulo identity fields,
   plus a fingerprint binding it to its key so a verifying engine can
   prove a replay untampered before sending it. *)
type entry = {
  e_status : int;
  e_body : string;
  e_error : string;
  e_integrity : string;
}

type answer = {
  status : int;
  cached : bool;
  body : string;
  error : string;
  key : string;
  solve_ms : int;
}

type t = {
  jobs : int;
  default_budget : int option;
  deadline_units_per_ms : int;
  verify : bool;
  cache : entry Cache.t;
}

let create ?(verify = false)
    ?(deadline_units_per_ms = Solver.default_deadline_units_per_ms) ~jobs
    ~cache_capacity ~default_budget () =
  if jobs < 1 then invalid_arg "Engine.create: jobs must be >= 1";
  if deadline_units_per_ms < 1 then
    invalid_arg "Engine.create: deadline_units_per_ms must be >= 1";
  {
    jobs;
    default_budget;
    deadline_units_per_ms;
    verify;
    cache = Cache.create ~capacity:cache_capacity;
  }

let verifying t = t.verify

let fingerprint ~key ~status ~body ~error =
  Digest.to_hex
    (Digest.string (Printf.sprintf "%s|%d|%d:%s|%d:%s" key status
       (String.length body) body (String.length error) error))

let entry ~key ~status ~body ~error =
  {
    e_status = status;
    e_body = body;
    e_error = error;
    e_integrity = fingerprint ~key ~status ~body ~error;
  }

let intact ~key e =
  fingerprint ~key ~status:e.e_status ~body:e.e_body ~error:e.e_error
  = e.e_integrity

let of_entry ~key ?(solve_ms = 0) ~cached e =
  { status = e.e_status; cached; body = e.e_body; error = e.e_error; key; solve_ms }

let of_error e =
  {
    status = Protocol.status_of_error e;
    cached = false;
    body = "";
    error = E.to_string e;
    key = "";
    solve_ms = 0;
  }

(* Chaos hook (DESIGN.md §13): when installed, it runs inside the worker
   closure right before the solve, so a raise takes the same road a real
   worker crash would — out of the closure, into {!Hs_exec.try_parmap}'s
   per-item [worker_error], back as a typed status-1 answer.  The stock
   sentinel trips on a reserved budget value so the chaos harness can
   crash workers on demand from across the wire. *)
let chaos_crash_hook : (Solver.prepared -> unit) option ref = ref None
let chaos_budget = 424242

let install_chaos_sentinel () =
  chaos_crash_hook :=
    Some
      (fun (prep : Solver.prepared) ->
        if prep.Solver.budget = Some chaos_budget then
          failwith "chaos: injected worker crash")

(* Replay a cache hit.  A verifying engine recomputes the fingerprint
   first: a mismatch means the stored answer no longer matches what was
   computed for this key — surfaced as a typed verification error, never
   replayed. *)
let replay t ~key e =
  if t.verify && not (intact ~key e) then begin
    Metrics.incr c_tampered;
    of_error
      (E.Verification
         { invariant = "cache.integrity"; witness = "cached entry for " ^ key ^ " does not match its fingerprint" })
  end
  else of_entry ~key ~cached:true e

let solve_batch t params =
  (* Classify sequentially against the cache so duplicate requests
     coalesce deterministically regardless of batch boundaries. *)
  let pending : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let classified =
    List.map
      (fun p ->
        Metrics.incr c_requests;
        match
          Solver.prepare ~deadline_units_per_ms:t.deadline_units_per_ms
            ~default_budget:t.default_budget p
        with
        | Error e -> `Done (of_error e)
        | Ok prep -> (
            if Hashtbl.mem pending prep.Solver.key then begin
              (* Coalesced onto an identical request in this batch: the
                 answer is shared, so it counts as a cache hit. *)
              Metrics.incr c_hit;
              `Follower prep.Solver.key
            end
            else
              match Cache.find t.cache prep.Solver.key with
              | Some e -> `Done (replay t ~key:prep.Solver.key e)
              | None ->
                  Hashtbl.replace pending prep.Solver.key ();
                  `Leader prep))
      params
  in
  let leaders =
    List.filter_map (function `Leader p -> Some p | _ -> None) classified
  in
  let solved =
    Hs_exec.try_parmap ~jobs:t.jobs
      (fun prep ->
        (match !chaos_crash_hook with Some f -> f prep | None -> ());
        match Solver.execute_timed ~verify:t.verify prep with
        | Ok body, solve_ms -> (0, body, "", solve_ms)
        | Error e, solve_ms -> (Protocol.status_of_error e, "", E.to_string e, solve_ms))
      leaders
  in
  let answers : (string, entry * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter2
    (fun (prep : Solver.prepared) outcome ->
      let status, body, error, solve_ms =
        match outcome with
        | Ok a -> a
        | Error (we : Hs_exec.worker_error) -> (1, "", Printexc.to_string we.exn, 0)
      in
      let e = entry ~key:prep.Solver.key ~status ~body ~error in
      Cache.add t.cache prep.Solver.key e;
      Hashtbl.replace answers prep.Solver.key (e, solve_ms))
    leaders solved;
  List.map
    (function
      | `Done a -> a
      | `Follower key ->
          let e, _ = Hashtbl.find answers key in
          of_entry ~key ~cached:true e
      | `Leader (prep : Solver.prepared) ->
          let key = prep.Solver.key in
          let e, solve_ms = Hashtbl.find answers key in
          of_entry ~key ~solve_ms ~cached:false e)
    classified

let cache_length t = Cache.length t.cache

(* ---- Crash recovery: cache snapshots (DESIGN.md §13) ---------------- *)

let snapshot_schema = "hsched.service.snapshot/1"

let snapshot_json t =
  let entries =
    List.map
      (fun (key, e) ->
        Json.Obj
          [
            ("key", Json.String key);
            ("status", Json.Int e.e_status);
            ("body", Json.String e.e_body);
            ("error", Json.String e.e_error);
            ("integrity", Json.String e.e_integrity);
          ])
      (Cache.to_list t.cache)
  in
  Json.Obj
    [ ("schema", Json.String snapshot_schema); ("entries", Json.List entries) ]

let save_snapshot t path =
  let tmp = path ^ ".tmp" in
  try
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (Json.to_string (snapshot_json t));
        output_char oc '\n');
    Sys.rename tmp path;
    Ok (Cache.length t.cache)
  with Sys_error e -> Error e

let entry_of_json j =
  let str k =
    match Json.member k j with Some (Json.String s) -> Some s | _ -> None
  in
  let int k =
    match Json.member k j with Some (Json.Int i) -> Some i | _ -> None
  in
  match
    (str "key", int "status", str "body", str "error", str "integrity")
  with
  | Some key, Some status, Some body, Some error, Some integrity ->
      Some
        ( key,
          { e_status = status; e_body = body; e_error = error; e_integrity = integrity } )
  | _ -> None

let load_snapshot t path =
  let read () =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
    with Sys_error e -> Error e
  in
  match read () with
  | Error e -> Error e
  | Ok text -> (
      match Json.parse text with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok json -> (
          match (Json.member "schema" json, Json.member "entries" json) with
          | Some (Json.String s), _ when s <> snapshot_schema ->
              Error
                (Printf.sprintf "%s: unsupported snapshot schema %S (want %S)"
                   path s snapshot_schema)
          | Some (Json.String _), Some (Json.List entries) ->
              (* Every entry must re-prove its fingerprint before it is
                 trusted: a snapshot edited on disk is data, not an
                 answer.  Rejected entries are counted and skipped — a
                 partially tampered snapshot still restores its intact
                 remainder. *)
              let rejected = ref 0 in
              let keep =
                List.filter_map
                  (fun j ->
                    match entry_of_json j with
                    | Some (key, e) when intact ~key e -> Some (key, e)
                    | Some _ | None ->
                        incr rejected;
                        None)
                  entries
              in
              (* Most-recent-first on disk; keep at most [capacity] of
                 the most recent and insert oldest-first so recency
                 survives the round trip without spurious evictions. *)
              let cap = Cache.capacity t.cache in
              let keep = List.filteri (fun i _ -> i < cap) keep in
              List.iter (fun (key, e) -> Cache.add t.cache key e) (List.rev keep);
              let loaded = List.length keep in
              Metrics.add c_snap_loaded loaded;
              Metrics.add c_snap_rejected !rejected;
              Ok (loaded, !rejected)
          | _ -> Error (Printf.sprintf "%s: not an hsched service snapshot" path)))

(* Test hook (DESIGN.md §12): simulate memory corruption or a buggy
   eviction path by flipping a byte of a cached body while keeping the
   recorded fingerprint. *)
let poison_cache t ~key =
  match Cache.find t.cache key with
  | None -> false
  | Some e ->
      let body = Bytes.of_string e.e_body in
      if Bytes.length body = 0 then
        Cache.add t.cache key { e with e_body = "poisoned" }
      else begin
        Bytes.set body 0 (Char.chr (Char.code (Bytes.get body 0) lxor 1));
        Cache.add t.cache key { e with e_body = Bytes.to_string body }
      end;
      true
