(* Socket-free batch pipeline of the daemon; see the interface. *)

module Metrics = Hs_obs.Metrics
module E = Hs_core.Hs_error

(* Same name-keyed cells the daemon and Cache increment. *)
let c_hit = Metrics.counter "service.cache.hit"
let c_requests = Metrics.counter "service.requests"
let c_tampered = Metrics.counter "service.cache.tampered"

(* A cached answer is the full response payload modulo identity fields,
   plus a fingerprint binding it to its key so a verifying engine can
   prove a replay untampered before sending it. *)
type entry = {
  e_status : int;
  e_body : string;
  e_error : string;
  e_integrity : string;
}

type answer = { status : int; cached : bool; body : string; error : string }

type t = {
  jobs : int;
  default_budget : int option;
  verify : bool;
  cache : entry Cache.t;
}

let create ?(verify = false) ~jobs ~cache_capacity ~default_budget () =
  if jobs < 1 then invalid_arg "Engine.create: jobs must be >= 1";
  { jobs; default_budget; verify; cache = Cache.create ~capacity:cache_capacity }

let verifying t = t.verify

let fingerprint ~key ~status ~body ~error =
  Digest.to_hex
    (Digest.string (Printf.sprintf "%s|%d|%d:%s|%d:%s" key status
       (String.length body) body (String.length error) error))

let entry ~key ~status ~body ~error =
  {
    e_status = status;
    e_body = body;
    e_error = error;
    e_integrity = fingerprint ~key ~status ~body ~error;
  }

let intact ~key e =
  fingerprint ~key ~status:e.e_status ~body:e.e_body ~error:e.e_error
  = e.e_integrity

let of_entry ~cached e =
  { status = e.e_status; cached; body = e.e_body; error = e.e_error }

let of_error e =
  { status = Protocol.status_of_error e; cached = false; body = ""; error = E.to_string e }

(* Replay a cache hit.  A verifying engine recomputes the fingerprint
   first: a mismatch means the stored answer no longer matches what was
   computed for this key — surfaced as a typed verification error, never
   replayed. *)
let replay t ~key e =
  if t.verify && not (intact ~key e) then begin
    Metrics.incr c_tampered;
    of_error
      (E.Verification
         { invariant = "cache.integrity"; witness = "cached entry for " ^ key ^ " does not match its fingerprint" })
  end
  else of_entry ~cached:true e

let solve_batch t params =
  (* Classify sequentially against the cache so duplicate requests
     coalesce deterministically regardless of batch boundaries. *)
  let pending : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let classified =
    List.map
      (fun p ->
        Metrics.incr c_requests;
        match Solver.prepare ~default_budget:t.default_budget p with
        | Error e -> `Done (of_error e)
        | Ok prep -> (
            if Hashtbl.mem pending prep.Solver.key then begin
              (* Coalesced onto an identical request in this batch: the
                 answer is shared, so it counts as a cache hit. *)
              Metrics.incr c_hit;
              `Follower prep.Solver.key
            end
            else
              match Cache.find t.cache prep.Solver.key with
              | Some e -> `Done (replay t ~key:prep.Solver.key e)
              | None ->
                  Hashtbl.replace pending prep.Solver.key ();
                  `Leader prep))
      params
  in
  let leaders =
    List.filter_map (function `Leader p -> Some p | _ -> None) classified
  in
  let solved =
    Hs_exec.try_parmap ~jobs:t.jobs
      (fun prep ->
        match Solver.execute ~verify:t.verify prep with
        | Ok body -> (0, body, "")
        | Error e -> (Protocol.status_of_error e, "", E.to_string e))
      leaders
  in
  let answers : (string, entry) Hashtbl.t = Hashtbl.create 16 in
  List.iter2
    (fun (prep : Solver.prepared) outcome ->
      let status, body, error =
        match outcome with
        | Ok a -> a
        | Error (we : Hs_exec.worker_error) -> (1, "", Printexc.to_string we.exn)
      in
      let e = entry ~key:prep.Solver.key ~status ~body ~error in
      Cache.add t.cache prep.Solver.key e;
      Hashtbl.replace answers prep.Solver.key e)
    leaders solved;
  List.map
    (function
      | `Done a -> a
      | `Follower key -> of_entry ~cached:true (Hashtbl.find answers key)
      | `Leader (prep : Solver.prepared) ->
          of_entry ~cached:false (Hashtbl.find answers prep.Solver.key))
    classified

let cache_length t = Cache.length t.cache

(* Test hook (DESIGN.md §12): simulate memory corruption or a buggy
   eviction path by flipping a byte of a cached body while keeping the
   recorded fingerprint. *)
let poison_cache t ~key =
  match Cache.find t.cache key with
  | None -> false
  | Some e ->
      let body = Bytes.of_string e.e_body in
      if Bytes.length body = 0 then
        Cache.add t.cache key { e with e_body = "poisoned" }
      else begin
        Bytes.set body 0 (Char.chr (Char.code (Bytes.get body 0) lxor 1));
        Cache.add t.cache key { e with e_body = Bytes.to_string body }
      end;
      true
