(** Generic iterative rounding for assignment + packing LPs (Section VI).

    This implements the engine behind both memory extensions:

    - Theorem VI.1 (Model 1) uses the classic Shmoys–Tardos-style rule of
      dropping a packing constraint once few fractional variables remain
      in its support ({!Support_at_most}), and
    - Lemma VI.2 (Model 2) drops a constraint once the {e normalised
      weight} of its fractional support is at most [ρ·b_l]
      ({!Weight_at_most}), which bounds the final violation by
      [(1 + ρ)·b_l] while the assignment constraints hold {e exactly}.

    The loop re-solves the residual LP to a vertex (exact arithmetic),
    freezes integral variables, and otherwise drops one relaxable
    packing row; every step makes progress, so it terminates after at
    most [#variables + #rows] rounds. *)

module Q = Hs_numeric.Q
module LP = Hs_lp.Lp_problem
module Solver = Hs_lp.Simplex.Make (Hs_lp.Field.Exact)

type var = {
  job : int;
  opt : int;  (** caller-side option identifier *)
  col : (int * Q.t) list;  (** sparse packing coefficients (row, a_lq ≥ 0) *)
}

type problem = {
  njobs : int;
  vars : var list;
  bounds : Q.t array;  (** b_l > 0 *)
  names : string array;  (** one label per packing row *)
}

type policy =
  | Support_at_most of int
      (** drop a row whose fractional support has at most k variables *)
  | Weight_at_most of Q.t
      (** drop a row l with Σ_{q ∈ support} a_lq ≤ ρ·b_l (Lemma VI.2) *)

type outcome = {
  choice : int array;  (** job → chosen option id *)
  usage : Q.t array;  (** final left-hand sides a_l·z̄ *)
  dropped : int list;  (** rows dropped during rounding *)
  rounds : int;
  fallback_drops : int;
      (** rows dropped without satisfying the policy (should stay 0; a
          positive count flags that the structural guarantee failed) *)
}

let solve_checked ?pivots ?(fail_on_stall = false) (p : problem) (policy : policy) :
    (outcome, Hs_error.t) result =
  let err fmt = Printf.ksprintf (fun s -> Error (Hs_error.Internal s)) fmt in
  let on_stall = if fail_on_stall then `Fail else `Bland in
  let nrows = Array.length p.bounds in
  if Array.exists (fun b -> Q.sign b <= 0) p.bounds then
    Error (Hs_error.Invalid_instance "iterative_rounding: bounds must be positive")
  else begin
    let choice = Array.make p.njobs (-1) in
    let active_rows = Array.make nrows true in
    let residual = Array.copy p.bounds in
    let dropped = ref [] and rounds = ref 0 and fallback = ref 0 in
    let fix v =
      choice.(v.job) <- v.opt;
      List.iter (fun (l, a) -> residual.(l) <- Q.sub residual.(l) a) v.col
    in
    let vars = ref p.vars in
    let exception Fail of string in
    try
      while Array.exists (fun c -> c < 0) choice do
        incr rounds;
        if !rounds > (List.length p.vars + nrows + p.njobs) * 2 + 8 then
          raise (Fail "iterative_rounding: no progress (internal)");
        let live = List.filter (fun v -> choice.(v.job) < 0) !vars in
        (* Jobs reduced to a single option are forced. *)
        let counts = Array.make p.njobs 0 in
        List.iter (fun v -> counts.(v.job) <- counts.(v.job) + 1) live;
        let forced =
          List.filter (fun v -> counts.(v.job) = 1) live
        in
        if forced <> [] then List.iter fix forced
        else begin
          let jobs_live =
            List.sort_uniq compare (List.map (fun v -> v.job) live)
          in
          List.iter
            (fun j -> if counts.(j) = 0 then raise (Fail (Printf.sprintf "job %d has no options left" j)))
            jobs_live;
          if jobs_live = [] then ()
          else begin
            (* Residual LP over the live variables. *)
            let arr = Array.of_list live in
            let nv = Array.length arr in
            let job_terms = Hashtbl.create 16 in
            Array.iteri
              (fun idx v ->
                let cur = Option.value ~default:[] (Hashtbl.find_opt job_terms v.job) in
                Hashtbl.replace job_terms v.job ((idx, Q.one) :: cur))
              arr;
            let assign_cs =
              List.map
                (fun j ->
                  LP.constr ~name:(Printf.sprintf "assign(%d)" j)
                    (Hashtbl.find job_terms j) LP.Eq Q.one)
                jobs_live
            in
            let pack_cs =
              List.filter_map
                (fun l ->
                  if not active_rows.(l) then None
                  else begin
                    let terms = ref [] in
                    Array.iteri
                      (fun idx v ->
                        match List.assoc_opt l v.col with
                        | Some a when Q.sign a > 0 -> terms := (idx, a) :: !terms
                        | _ -> ())
                      arr;
                    Some (LP.constr ~name:p.names.(l) !terms LP.Le residual.(l))
                  end)
                (List.init nrows (fun l -> l))
            in
            let sol =
              try Solver.feasible ?budget:pivots ~on_stall (LP.make ~nvars:nv (assign_cs @ pack_cs))
              with
              | Hs_lp.Simplex.Pivot_limit ->
                  Hs_error.raise_
                    (Budget_exhausted
                       {
                         stage = Rounding;
                         detail = "simplex pivot budget ran out in a residual LP";
                       })
              | Hs_lp.Simplex.Stall -> Hs_error.raise_ (Lp_stall { pricing = "dantzig" })
            in
            match sol with
            | None -> raise (Fail "iterative_rounding: residual LP infeasible")
            | Some sol ->
                let progress = ref false in
                let kept = ref [] in
                Array.iteri
                  (fun idx v ->
                    let z = sol.x.(idx) in
                    if Q.is_zero z then progress := true (* option eliminated *)
                    else if Q.equal z Q.one then begin
                      if choice.(v.job) < 0 then fix v;
                      progress := true
                    end
                    else kept := v :: !kept)
                  arr;
                (* Keep only surviving options of still-open jobs. *)
                vars :=
                  List.filter (fun v -> choice.(v.job) < 0 && List.memq v !kept) !vars;
                if not !progress then begin
                  (* Vertex fully fractional: drop one packing row. *)
                  let support l =
                    List.fold_left
                      (fun (cnt, w) v ->
                        match List.assoc_opt l v.col with
                        | Some a when Q.sign a > 0 -> (cnt + 1, Q.add w a)
                        | _ -> (cnt, w))
                      (0, Q.zero) !vars
                  in
                  let candidate =
                    List.init nrows (fun l -> l)
                    |> List.filter (fun l -> active_rows.(l))
                    |> List.filter_map (fun l ->
                           let cnt, w = support l in
                           let ok =
                             match policy with
                             | Support_at_most k -> cnt <= k
                             | Weight_at_most rho -> Q.leq w (Q.mul rho p.bounds.(l))
                           in
                           if ok then Some (l, w) else None)
                  in
                  match candidate with
                  | (l, _) :: _ ->
                      active_rows.(l) <- false;
                      dropped := l :: !dropped
                  | [] ->
                      (* Structural guarantee failed: drop the row with the
                         smallest normalised support weight and record it. *)
                      incr fallback;
                      let worst = ref None in
                      List.iteri
                        (fun l active ->
                          if active then begin
                            let _, w = support l in
                            let ratio = Q.div w p.bounds.(l) in
                            match !worst with
                            | None -> worst := Some (l, ratio)
                            | Some (_, r) -> if Q.lt ratio r then worst := Some (l, ratio)
                          end)
                        (Array.to_list active_rows);
                      (match !worst with
                      | Some (l, _) ->
                          active_rows.(l) <- false;
                          dropped := l :: !dropped
                      | None -> raise (Fail "iterative_rounding: nothing to drop"))
                end
          end
        end
      done;
      let usage = Array.make nrows Q.zero in
      Array.iteri
        (fun job opt ->
          List.iter
            (fun v ->
              if v.job = job && v.opt = opt then
                List.iter (fun (l, a) -> usage.(l) <- Q.add usage.(l) a) v.col)
            p.vars)
        choice;
      Ok
        {
          choice;
          usage;
          dropped = List.rev !dropped;
          rounds = !rounds;
          fallback_drops = !fallback;
        }
    with
    | Fail msg -> err "%s" msg
    | Hs_error.Error e -> Error e
  end

let solve ?pivots (p : problem) (policy : policy) : (outcome, string) result =
  Result.map_error Hs_error.to_string (solve_checked ?pivots p policy)
