(** Exact optimal makespans by branch and bound.

    The paper proves hardness (Proposition II.1), so exact solving is
    exponential; we use it only on small instances to {e measure} the
    empirical approximation ratios of experiment T1.  Thanks to
    Theorem IV.3, the makespan of an integral assignment is a closed
    form ({!Hs_model.Assignment.min_makespan}), so the search space is
    just the assignment lattice: jobs (largest first) × admissible sets
    (cheapest first).  The bound accumulated along a branch is the max of
    every aggregate-volume bound seen so far (volumes only grow down a
    branch), the largest processing time committed, the largest remaining
    minimum time, and a total-volume bound over the remaining jobs. *)

open Hs_model
open Hs_laminar

type stats = { nodes : int; pruned : int; proven : bool }

(* Telemetry: cumulative branch-and-bound counters. *)
module Obs = struct
  module M = Hs_obs.Metrics

  let nodes = M.counter "bb.nodes"
  let pruned = M.counter "bb.pruned"
  let incumbents = M.counter "bb.incumbents"
end

let optimal ?(node_limit = 20_000_000) ?initial inst : (Assignment.t * int * stats) option =
  Hs_obs.Tracer.with_span ~cat:"bb"
    ~args:
      [
        ("jobs", Hs_obs.Tracer.Int (Instance.njobs inst));
        ("node_limit", Hs_obs.Tracer.Int node_limit);
      ]
    "bb.optimal"
  @@ fun () ->
  let lam = Instance.laminar inst in
  let n = Instance.njobs inst in
  let nsets = Laminar.size lam in
  let p j s = Ptime.value (Instance.ptime inst ~job:j ~set:s) in
  (* Candidate sets per job, cheapest first (ties: smaller set first, so
     singletons are explored before their supersets). *)
  let candidates =
    Array.init n (fun j ->
        List.init nsets (fun s -> s)
        |> List.filter_map (fun s -> Option.map (fun v -> (s, v)) (p j s))
        |> List.sort (fun (s1, a) (s2, b) ->
               compare (a, Laminar.card lam s1) (b, Laminar.card lam s2)))
  in
  if n > 0 && Array.exists (fun c -> c = []) candidates then None
  else begin
    let min_p = Array.map (function (_, v) :: _ -> v | [] -> 0) candidates in
    (* Job order: decreasing minimum processing time. *)
    let order =
      List.init n (fun j -> j) |> List.sort (fun a b -> compare min_p.(b) min_p.(a))
    in
    let order = Array.of_list order in
    let suffix_min_vol = Array.make (n + 1) 0 in
    for k = n - 1 downto 0 do
      suffix_min_vol.(k) <- suffix_min_vol.(k + 1) + min_p.(order.(k))
    done;
    let suffix_max_minp = Array.make (n + 1) 0 in
    for k = n - 1 downto 0 do
      suffix_max_minp.(k) <- Stdlib.max suffix_max_minp.(k + 1) min_p.(order.(k))
    done;
    let machines_covered =
      List.fold_left (fun acc r -> acc + Laminar.card lam r) 0 (Laminar.roots lam)
    in
    let subtree_vol = Array.make nsets 0 in
    let assignment = Array.make n 0 in
    let best = Array.make n 0 in
    let best_span = ref max_int in
    (* Warm start: caller-provided bound, else greedy earliest-completion
       over masks (choose the mask minimising the resulting partial bound). *)
    (match initial with
    | Some (a, span) when Array.length a = n ->
        Array.blit a 0 best 0 n;
        best_span := span
    | _ ->
        let greedy = Array.make n (-1) in
        let vol = Array.make nsets 0 in
        Array.iter
          (fun j ->
            let bset = ref (-1) and bcost = ref max_int in
            List.iter
              (fun (s, v) ->
                let cost =
                  List.fold_left
                    (fun acc a ->
                      let c = Laminar.card lam a in
                      Stdlib.max acc ((vol.(a) + v + c - 1) / c))
                    v (Laminar.ancestors lam s)
                in
                if cost < !bcost then begin
                  bcost := cost;
                  bset := s
                end)
              candidates.(j);
            greedy.(j) <- !bset;
            List.iter
              (fun a -> vol.(a) <- vol.(a) + Option.get (p j !bset))
              (Laminar.ancestors lam !bset))
          order;
        if n = 0 || Assignment.well_formed inst greedy then begin
          Array.blit greedy 0 best 0 n;
          best_span := if n = 0 then 0 else Assignment.min_makespan inst greedy
        end);
    let nodes = ref 0 and pruned = ref 0 in
    let exception Limit in
    let rec dfs k lb_path =
      incr nodes;
      if !nodes > node_limit then raise Limit;
      if k = n then begin
        (* lb_path is exact here: it includes every aggregate bound. *)
        if lb_path < !best_span then begin
          best_span := lb_path;
          Hs_obs.Metrics.incr Obs.incumbents;
          Array.blit assignment 0 best 0 n
        end
      end
      else begin
        let j = order.(k) in
        List.iter
          (fun (s, v) ->
            assignment.(j) <- s;
            let ancestors = Laminar.ancestors lam s in
            List.iter (fun a -> subtree_vol.(a) <- subtree_vol.(a) + v) ancestors;
            let lb_sets =
              List.fold_left
                (fun acc a ->
                  let c = Laminar.card lam a in
                  Stdlib.max acc ((subtree_vol.(a) + c - 1) / c))
                lb_path ancestors
            in
            let assigned_total =
              List.fold_left (fun acc r -> acc + subtree_vol.(r)) 0 (Laminar.roots lam)
            in
            let lb_total =
              (assigned_total + suffix_min_vol.(k + 1) + machines_covered - 1)
              / machines_covered
            in
            let lb =
              Stdlib.max lb_sets
                (Stdlib.max lb_total (Stdlib.max v suffix_max_minp.(k + 1)))
            in
            if lb < !best_span then dfs (k + 1) lb else incr pruned;
            List.iter (fun a -> subtree_vol.(a) <- subtree_vol.(a) - v) ancestors)
          candidates.(j)
      end
    in
    let proven = try dfs 0 0; true with Limit -> false in
    Hs_obs.Metrics.add Obs.nodes !nodes;
    Hs_obs.Metrics.add Obs.pruned !pruned;
    Hs_obs.Tracer.add_args
      [
        ("nodes", Hs_obs.Tracer.Int !nodes);
        ("pruned", Hs_obs.Tracer.Int !pruned);
        ("proven", Hs_obs.Tracer.Bool proven);
      ];
    if !best_span = max_int then None
    else Some (Array.copy best, !best_span, { nodes = !nodes; pruned = !pruned; proven })
  end

let optimal_makespan ?node_limit ?initial inst =
  Option.map (fun (_, span, _) -> span) (optimal ?node_limit ?initial inst)

(** Typed, budget-aware front end: the node allowance comes from
    [budget.bb_nodes] (falling back to the historical default), and an
    unproven result is reported as {!Hs_error.Budget_exhausted} instead
    of being silently returned — callers that can degrade (for example
    {!Approx.solve_robust}) catch exactly that case. *)
let optimal_checked ?(budget = Budget.unlimited) ?initial inst :
    (Assignment.t * int * stats, Hs_error.t) result =
  let node_limit = Option.value budget.Budget.bb_nodes ~default:20_000_000 in
  match optimal ~node_limit ?initial inst with
  | None ->
      Error
        (Hs_error.Infeasible
           { reason = "some job has no admissible mask"; certified = false })
  | Some (a, span, st) ->
      if st.proven then Ok (a, span, st)
      else
        Error
          (Hs_error.Budget_exhausted
             {
               stage = Hs_error.Bb;
               detail =
                 Printf.sprintf
                   "node budget ran out (used %d of %d nodes); incumbent makespan %d unproven"
                   (Stdlib.min st.nodes node_limit) node_limit span;
             })

(** Exhaustive enumeration, for cross-checking the branch and bound on
    tiny instances. *)
let brute_force inst : (Assignment.t * int) option =
  let lam = Instance.laminar inst in
  let n = Instance.njobs inst in
  let nsets = Laminar.size lam in
  let assignment = Array.make n 0 in
  let best = ref None in
  let rec go j =
    if j = n then begin
      if Assignment.well_formed inst assignment then begin
        let span = Assignment.min_makespan inst assignment in
        match !best with
        | Some (_, b) when b <= span -> ()
        | _ -> best := Some (Array.copy assignment, span)
      end
    end
    else
      for s = 0 to nsets - 1 do
        if Ptime.is_fin (Instance.ptime inst ~job:j ~set:s) then begin
          assignment.(j) <- s;
          go (j + 1)
        end
      done
  in
  if n = 0 then Some ([||], 0)
  else begin
    go 0;
    !best
  end
