(** The (IP-1)/(IP-2)/(IP-3) formulations and their LP relaxations.

    (IP-3) is the decision form used by Section V: for a fixed horizon
    [T], variables [x_{αj}] exist only for pairs in
    [R = {(α,j) : p_{αj} ≤ T}] (the pruning that eliminates constraints
    (2c)), each job picks one mask (2a), and every set's subtree volume
    fits its aggregate capacity (2b)/(3a).

    The module is a functor over the coefficient field so the same code
    provides the certified exact path and the fast floating-point path. *)

open Hs_model
open Hs_laminar
module LP = Hs_lp.Lp_problem

(* Telemetry cells, shared by the exact and float instantiations. *)
module Obs = struct
  module M = Hs_obs.Metrics

  let probes = M.counter "search.probes"
  let feasible_probes = M.counter "search.feasible_probes"
  let lp_solves = M.counter "search.lp_relaxations"
end

module Make (F : Hs_lp.Field.S) = struct
  module Solver = Hs_lp.Simplex.Make (F)

  type frac = F.t array array
  (** [x.(set).(job)] — a (fractional) solution of the (IP-3) relaxation. *)

  (** The restricted pair set [R] at horizon [tmax]:
      [pairs.(set).(job)] iff [p_{set,job} ≤ tmax]. *)
  let restricted inst ~tmax =
    let lam = Instance.laminar inst in
    Array.init (Laminar.size lam) (fun s ->
        Array.init (Instance.njobs inst) (fun j ->
            Ptime.fits (Instance.ptime inst ~job:j ~set:s) ~tmax))

  (** Build the LP relaxation of (IP-3) for horizon [tmax].  Returns the
      problem plus the variable numbering, or [None] when some job has an
      empty row of [R] (trivially infeasible). *)
  let relaxation inst ~tmax =
    let lam = Instance.laminar inst in
    let n = Instance.njobs inst in
    let nsets = Laminar.size lam in
    let r = restricted inst ~tmax in
    let var_of = Array.make_matrix nsets n (-1) in
    let vars = ref [] and nvars = ref 0 in
    for s = 0 to nsets - 1 do
      for j = 0 to n - 1 do
        if r.(s).(j) then begin
          var_of.(s).(j) <- !nvars;
          vars := (s, j) :: !vars;
          incr nvars
        end
      done
    done;
    let job_covered = Array.make n false in
    List.iter (fun (_, j) -> job_covered.(j) <- true) !vars;
    if not (Array.for_all (fun c -> c) job_covered) && n > 0 then None
    else begin
      let pt s j = F.of_int (Ptime.value_exn (Instance.ptime inst ~job:j ~set:s)) in
      let assign_constraints =
        List.init n (fun j ->
            let terms =
              List.filter_map
                (fun s -> if r.(s).(j) then Some (var_of.(s).(j), F.one) else None)
                (List.init nsets (fun s -> s))
            in
            LP.constr ~name:(Printf.sprintf "assign(j=%d)" j) terms LP.Eq F.one)
      in
      let capacity_constraints =
        List.map
          (fun alpha ->
            let terms =
              List.concat_map
                (fun beta ->
                  List.filter_map
                    (fun j ->
                      if r.(beta).(j) then Some (var_of.(beta).(j), pt beta j) else None)
                    (List.init n (fun j -> j)))
                (Laminar.descendants lam alpha)
            in
            LP.constr
              ~name:(Printf.sprintf "cap(a=%d)" alpha)
              terms LP.Le
              (F.of_int (Laminar.card lam alpha * tmax)))
          (Laminar.bottom_up lam)
      in
      Some
        ( LP.make ~nvars:!nvars (assign_constraints @ capacity_constraints),
          var_of )
    end

  (** Warm-start bookkeeping.  A basis returned by one LP probe is
      remembered under {e semantic} keys — a decision variable is its
      [(set, job)] pair, an auxiliary row is the job of its assignment
      constraint or the set of its capacity constraint — so the hint
      survives re-probing at a different horizon (where the variable
      numbering shifts with the restricted pair set) and event-to-event
      drift in a replay.  Keys that no longer translate are simply
      dropped: the solver repairs or rejects imperfect proposals, so a
      stale store costs pivots, never correctness. *)
  type warm_key = Wvar of int * int | Wassign of int | Wcap of int

  type warm_store = { mutable saved : warm_key list }

  let warm_store () = { saved = [] }
  let warm_saved store = List.length store.saved

  (* Capacity rows are emitted in [Laminar.bottom_up] order after the
     [n] assignment rows; translate row index ↔ set through it. *)
  let keys_of_basis inst (var_of : int array array) (basis : Hs_lp.Basis.t) =
    let lam = Instance.laminar inst in
    let n = Instance.njobs inst in
    let nsets = Laminar.size lam in
    let pairs = Hashtbl.create 64 in
    for s = 0 to nsets - 1 do
      for j = 0 to n - 1 do
        if var_of.(s).(j) >= 0 then Hashtbl.replace pairs var_of.(s).(j) (s, j)
      done
    done;
    let caps = Array.of_list (Laminar.bottom_up lam) in
    List.filter_map
      (function
        | Hs_lp.Basis.Var v ->
            Option.map (fun (s, j) -> Wvar (s, j)) (Hashtbl.find_opt pairs v)
        | Hs_lp.Basis.Aux i ->
            if i < n then Some (Wassign i)
            else
              let k = i - n in
              if k < Array.length caps then Some (Wcap caps.(k)) else None)
      basis

  let basis_of_keys inst (var_of : int array array) keys : Hs_lp.Basis.t =
    let lam = Instance.laminar inst in
    let n = Instance.njobs inst in
    let nsets = Laminar.size lam in
    let cap_row = Array.make (Stdlib.max 1 nsets) (-1) in
    List.iteri
      (fun k alpha -> if alpha < nsets then cap_row.(alpha) <- n + k)
      (Laminar.bottom_up lam);
    List.filter_map
      (function
        | Wvar (s, j) ->
            if s >= 0 && s < nsets && j >= 0 && j < n && var_of.(s).(j) >= 0 then
              Some (Hs_lp.Basis.Var var_of.(s).(j))
            else None
        | Wassign j -> if j >= 0 && j < n then Some (Hs_lp.Basis.Aux j) else None
        | Wcap alpha ->
            if alpha >= 0 && alpha < nsets && cap_row.(alpha) >= 0 then
              Some (Hs_lp.Basis.Aux cap_row.(alpha))
            else None)
      keys

  (** Budget-aware LP feasibility of (IP-3) at horizon [tmax].  Raises
      {!Hs_error.Error} on pivot-budget exhaustion or (under
      [~on_stall:`Fail]) on a Dantzig pricing stall; [trip] is the
      fault-injection hook, called on entry with {!Hs_error.Lp}.  With
      [?warm] the solve is attempted from the store's saved basis and the
      store is updated with the optimal basis of every feasible solve;
      without it the cold path is untouched. *)
  let lp_feasible_x ?pricing ?pivots ?(on_stall = `Bland) ?warm
      ?(trip = fun (_ : Hs_error.stage) -> ()) inst ~tmax : frac option =
    trip Hs_error.Lp;
    Hs_obs.Metrics.incr Obs.lp_solves;
    Hs_obs.Tracer.with_span ~cat:"lp" ~args:[ ("T", Hs_obs.Tracer.Int tmax) ] "lp.feasible"
    @@ fun () ->
    match relaxation inst ~tmax with
    | None -> None
    | Some (lp, var_of) -> (
        let sol =
          try
            match warm with
            | None when not (Hs_lp.Engine.presolve_enabled ()) ->
                Solver.feasible ?pricing ?budget:pivots ~on_stall lp
            | _ ->
                (* Warm store and/or float pre-solve: go through the
                   basis-returning entry (same pivot charges as the cold
                   path when the hint is rejected or absent). *)
                let hint =
                  match warm with
                  | None -> []
                  | Some store -> basis_of_keys inst var_of store.saved
                in
                (match
                   Solver.feasible_basis ?pricing ?budget:pivots ~on_stall
                     ~warm:hint lp
                 with
                | Some (sol, basis) ->
                    (match warm with
                    | Some store -> store.saved <- keys_of_basis inst var_of basis
                    | None -> ());
                    Some sol
                | None -> None)
          with
          | Hs_lp.Simplex.Pivot_limit ->
              Hs_error.raise_
                (Budget_exhausted
                   {
                     stage = Lp;
                     detail =
                       Printf.sprintf "simplex pivot budget ran out at T=%d%s" tmax
                         (match pivots with
                         | Some b ->
                             Printf.sprintf " (used %d of %d pivots)"
                               (Hs_lp.Simplex.consumed b) b.Hs_lp.Simplex.total
                         | None -> "");
                   })
          | Hs_lp.Simplex.Stall -> Hs_error.raise_ (Lp_stall { pricing = "dantzig" })
        in
        match sol with
        | None -> None
        | Some sol ->
            let lam = Instance.laminar inst in
            Some
              (Array.init (Laminar.size lam) (fun s ->
                   Array.init (Instance.njobs inst) (fun j ->
                       if var_of.(s).(j) >= 0 then sol.x.(var_of.(s).(j)) else F.zero))))

  (** LP feasibility of (IP-3) at horizon [tmax]; [Some] basic fractional
      solution or [None].  Unlimited budget — never raises. *)
  let lp_feasible inst ~tmax : frac option = lp_feasible_x inst ~tmax

  (** Search bounds for the minimal feasible horizon: the max of the
      per-job minimum processing times is a certain lower bound (below it
      some job has no admissible mask), and the total minimum volume is a
      feasible upper bound. Returns [None] when some job has no finite
      mask at all. *)
  let t_bounds inst =
    let n = Instance.njobs inst in
    let rec go j lo hi =
      if j >= n then Some (lo, hi)
      else
        match Ptime.value (Instance.min_ptime inst j) with
        | None -> None
        | Some v -> go (j + 1) (Stdlib.max lo v) (hi + v)
    in
    go 0 0 0

  (** Certified infeasibility of the relaxation at a horizon: either some
      job has no admissible mask at all (trivially infeasible), or the
      simplex produces a Farkas witness that passes independent
      verification.  Used to certify the lower side of the binary
      search. *)
  let certified_infeasible inst ~tmax =
    match relaxation inst ~tmax with
    | None -> true
    | Some (lp, _) -> (
        match Solver.feasible_certified lp with
        | Solver.Feasible _ -> false
        | Solver.Infeasible_certificate y -> Solver.check_farkas lp y)

  (** Budget-aware binary search for the minimal LP-feasible horizon.
      Each probe charges one search iteration (raising on exhaustion) and
      fires the [trip] hook with {!Hs_error.Search}; the pivot budget and
      stall policy are threaded into every probe's LP solve. *)
  let min_feasible_t_x ?pricing ?pivots ?on_stall ?warm ?iters
      ?(trip = fun (_ : Hs_error.stage) -> ()) inst : (int * frac) option =
    let charge_iter () =
      match iters with
      | None -> ()
      | Some (c : Budget.counted) ->
          if c.left <= 0 then
            Hs_error.raise_
              (Budget_exhausted
                 {
                   stage = Search;
                   detail =
                     Printf.sprintf "binary-search iteration budget ran out (used %d of %d probes)"
                       (c.total - c.left) c.total;
                 })
          else c.left <- c.left - 1
    in
    match t_bounds inst with
    | None -> None
    | Some (lo, hi) ->
        let rec search lo hi best =
          if lo > hi then best
          else begin
            charge_iter ();
            trip Hs_error.Search;
            let mid = (lo + hi) / 2 in
            Hs_obs.Metrics.incr Obs.probes;
            let probe =
              Hs_obs.Tracer.with_span ~cat:"search"
                ~args:[ ("T", Hs_obs.Tracer.Int mid) ]
                "search.probe"
                (fun () ->
                  let r = lp_feasible_x ?pricing ?pivots ?on_stall ?warm ~trip inst ~tmax:mid in
                  Hs_obs.Tracer.add_args
                    [ ("feasible", Hs_obs.Tracer.Bool (Option.is_some r)) ];
                  r)
            in
            match probe with
            | Some x ->
                Hs_obs.Metrics.incr Obs.feasible_probes;
                search lo (mid - 1) (Some (mid, x))
            | None -> search (mid + 1) hi best
          end
        in
        search lo hi None

  (** Minimal integer horizon with a feasible LP relaxation, together
      with a basic fractional solution at that horizon.  This is the
      binary search of Section V: the result lower-bounds the integral
      optimum.  Unlimited budget — never raises. *)
  let min_feasible_t inst : (int * frac) option = min_feasible_t_x inst
end

(** Integral feasibility of (IP-2) — constraints (2a)–(2c) — for a given
    assignment and horizon; field-independent. *)
let integral_feasible inst assignment ~tmax = Assignment.feasible inst assignment ~tmax
