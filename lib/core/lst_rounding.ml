(** Lenstra–Shmoys–Tardos rounding of a fractional unrelated-machines
    assignment (the rounding step inside Theorem V.2).

    The input is a basic feasible solution supported on singleton sets.
    Jobs whose weight is already integral keep their machine.  The
    remaining {e fractional} jobs span a bipartite graph (job, machine)
    with one edge per positive fractional variable; because the solution
    is a vertex, every connected component is a pseudoforest, which
    guarantees a perfect matching of the fractional jobs into machines.
    Each machine then receives at most one extra whole job of processing
    time at most [T], yielding the factor-2 bound. *)

open Hs_model
open Hs_laminar
module Log = (val Logs.src_log (Logs.Src.create "hs.lst") : Logs.LOG)

(* Telemetry: rounding outcome counts (shared across field instances). *)
module Obs = struct
  let fractional = Hs_obs.Metrics.counter "lst.fractional_jobs"
  let matched = Hs_obs.Metrics.counter "lst.matched"
  let fallbacks = Hs_obs.Metrics.counter "lst.greedy_fallbacks"
end

module Make (F : Hs_lp.Field.S) = struct
  type stats = {
    fractional_jobs : int;
    matched : int;  (** matched by augmenting paths; rest fall back greedily *)
  }

  (** [round inst x] rounds a singleton-supported fractional solution to
      an integral assignment (job → singleton set id). *)
  let round inst (x : F.t array array) : (Assignment.t * stats, string) result =
    Hs_obs.Tracer.with_span ~cat:"rounding" "round.lst" @@ fun () ->
    let lam = Instance.laminar inst in
    let n = Instance.njobs inst in
    let m = Laminar.m lam in
    let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
    let machine_of_set = Array.make (Laminar.size lam) (-1) in
    let bad = ref None in
    Array.iteri
      (fun s row ->
        if Laminar.is_singleton lam s then machine_of_set.(s) <- (Laminar.members lam s).(0)
        else Array.iteri (fun j v -> if F.sign v <> 0 then bad := Some (s, j)) row)
      x;
    match !bad with
    | Some (s, j) -> err "lst: job %d has weight on non-singleton set #%d" j s
    | None -> begin
        let assignment = Array.make n (-1) in
        (* Edges of the fractional bipartite graph, per job. *)
        let edges = Array.make n [] in
        for j = 0 to n - 1 do
          for s = 0 to Laminar.size lam - 1 do
            let v = x.(s).(j) in
            if F.sign v > 0 then
              if F.sign (F.sub v F.one) = 0 then assignment.(j) <- s
              else edges.(j) <- (machine_of_set.(s), s, v) :: edges.(j)
          done
        done;
        let fractional =
          List.init n (fun j -> j) |> List.filter (fun j -> assignment.(j) = -1)
        in
        match List.find_opt (fun j -> edges.(j) = []) fractional with
        | Some j -> err "lst: job %d has no weight at all" j
        | None ->
        (* Kuhn's augmenting-path matching: machine -> job. *)
        let matched_job = Array.make m (-1) in
        let rec augment j visited =
          List.exists
            (fun (i, _, _) ->
              if visited.(i) then false
              else begin
                visited.(i) <- true;
                if matched_job.(i) = -1 || augment matched_job.(i) visited then begin
                  matched_job.(i) <- j;
                  true
                end
                else false
              end)
            edges.(j)
        in
        let matched = ref 0 in
        let unmatched = ref [] in
        List.iter
          (fun j ->
            if augment j (Array.make m false) then incr matched else unmatched := j :: !unmatched)
          fractional;
        Array.iteri
          (fun i j ->
            if j >= 0 then
              match Laminar.singleton lam i with
              | Some s -> assignment.(j) <- s
              | None -> assert false)
          matched_job;
        (* A vertex solution always matches perfectly; the fallback only
           triggers on non-basic inputs and is logged. *)
        List.iter
          (fun j ->
            Hs_obs.Metrics.incr Obs.fallbacks;
            Log.warn (fun f ->
                f "fractional job %d unmatched; falling back to heaviest machine" j);
            let _, s, _ =
              List.fold_left
                (fun ((_, _, bv) as best) ((_, _, v) as e) ->
                  if F.compare v bv > 0 then e else best)
                (List.hd edges.(j)) (List.tl edges.(j))
            in
            assignment.(j) <- s)
          !unmatched;
        let nfrac = List.length fractional in
        Hs_obs.Metrics.add Obs.fractional nfrac;
        Hs_obs.Metrics.add Obs.matched !matched;
        Hs_obs.Tracer.add_args
          [
            ("fractional_jobs", Hs_obs.Tracer.Int nfrac);
            ("matched", Hs_obs.Tracer.Int !matched);
          ];
        Ok (assignment, { fractional_jobs = nfrac; matched = !matched })
      end
end
