(** Algorithms 2 and 3: the scheduler for hierarchical assignments (§IV).

    Phase 1 ({!allocate}, Algorithm 2) walks the laminar family bottom-up
    and greedily splits each set's volume over its machines, filling a
    machine to the horizon before touching the next.  Phase 2
    (Algorithm 3, inside {!schedule_stats}) walks top-down and lays each
    set's jobs on a wrap-around tape starting right after the unique
    machine (Lemma IV.2) already loaded by an ancestor set.

    Theorem IV.3: for any assignment satisfying (IP-2) at horizon [tmax],
    the produced schedule is valid in [[0, tmax]]. *)

open Hs_model
open Hs_laminar

(** Telemetry shared by both schedulers: [record] adds a produced
    schedule's segment count and its tape-order migration/preemption
    totals to the [sched.*] counters. *)
module Obs : sig
  val record : Schedule.t -> Tape.stats -> unit
end

type allocation = {
  load : int array array;  (** [load.(set).(machine)] — Algorithm 2's LOAD *)
  tot_load : int array array;  (** Algorithm 2's TOT-LOAD *)
}

val allocate :
  Instance.t -> Assignment.t -> tmax:int -> (allocation, string) result
(** Algorithm 2 alone; fails on (2b)/(2c) violations. *)

val lemma_iv1_holds : Laminar.t -> allocation -> tmax:int -> bool
(** Checkable Lemma IV.1: cumulative loads never exceed the horizon and
    are consistent chain sums. *)

val lemma_iv2_holds : Laminar.t -> allocation -> bool
(** Checkable Lemma IV.2: per set, at most one machine carries positive
    load for both the set and a strict superset. *)

val schedule_stats :
  Instance.t -> Assignment.t -> tmax:int -> (Schedule.t * Tape.stats, string) result
(** Algorithms 2 + 3 with tape-order migration/preemption counts. *)

val schedule : Instance.t -> Assignment.t -> tmax:int -> (Schedule.t, string) result
