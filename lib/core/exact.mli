(** Exact optimal makespans by branch and bound.

    The problem is NP-hard (Proposition II.1); this solver exists to
    {e measure} empirical approximation ratios on small instances
    (experiment T1).  Thanks to Theorem IV.3 the makespan of an integral
    assignment is a closed form, so the search is over the assignment
    lattice with aggregate-volume lower bounds accumulated along each
    branch. *)

open Hs_model

type stats = {
  nodes : int;  (** search nodes visited *)
  pruned : int;  (** branches cut by the bound *)
  proven : bool;  (** false iff the node limit was hit *)
}

val optimal :
  ?node_limit:int ->
  ?initial:Assignment.t * int ->
  Instance.t ->
  (Assignment.t * int * stats) option
(** Best assignment found, its makespan, and search statistics; [None]
    when some job has no finite mask.  [initial] seeds the incumbent
    (e.g. with the 2-approximation's solution); otherwise a greedy
    earliest-completion warm start is used.  When [stats.proven] the
    value is the optimum. *)

val optimal_makespan :
  ?node_limit:int -> ?initial:Assignment.t * int -> Instance.t -> int option

val optimal_checked :
  ?budget:Budget.t ->
  ?initial:Assignment.t * int ->
  Instance.t ->
  (Assignment.t * int * stats, Hs_error.t) result
(** Typed front end: the node allowance comes from [budget.bb_nodes];
    hitting it yields [Error (Budget_exhausted {stage = Bb; _})] instead
    of a silently unproven incumbent, and an instance with a maskless job
    yields [Error (Infeasible _)]. *)

val brute_force : Instance.t -> (Assignment.t * int) option
(** Exhaustive enumeration; for cross-checking on tiny instances. *)
