(** Typed errors for the solver pipeline.

    Every failure the pipeline can report is one of these variants, so
    callers (the CLI, the fault-injection harness, a future service
    front end) can branch on the {e kind} of failure instead of matching
    error strings, and each kind maps to a stable process exit code. *)

type stage =
  | Parse  (** reading an instance from text *)
  | Validate  (** laminarity / monotonicity validation *)
  | Search  (** the binary search over LP-feasible horizons *)
  | Lp  (** a simplex solve *)
  | Rounding  (** LST or iterative rounding *)
  | Bb  (** branch-and-bound node expansion *)
  | Sched  (** realising the assignment as a schedule *)

type t =
  | Parse_error of string  (** malformed instance text *)
  | Invalid_instance of string  (** well-formed text, invalid model *)
  | Lp_stall of { pricing : string }
      (** Dantzig pricing hit the degenerate-pivot threshold under
          [~on_stall:`Fail]; restarting under Bland's rule terminates *)
  | Budget_exhausted of { stage : stage; detail : string }
      (** a deterministic resource budget ran out at [stage] *)
  | Infeasible of { reason : string; certified : bool }
      (** the instance admits no schedule; [certified] when backed by a
          verified Farkas witness *)
  | Verification of { invariant : string; witness : string }
      (** an independent certificate check ([lib/check]) rejected a
          produced or cached artifact; [invariant] names the first
          violated paper condition, [witness] pinpoints it *)
  | Overloaded of { retry_after_ms : int }
      (** the service admission queue is full; the request was shed, not
          queued — retry after the (deterministic) hinted delay *)
  | Deadline_exceeded of { deadline_ms : int; detail : string }
      (** a per-request deadline expired before a result could be
          produced (in the admission queue, or as a deadline-derived
          budget exhausted mid-solve) *)
  | Unavailable of string
      (** the service endpoint is absent or refusing connections — no
          daemon at the socket, connection refused, peer vanished *)
  | Internal of string  (** an invariant the paper guarantees was broken *)

exception Error of t

let raise_ e = raise (Error e)

let stage_name = function
  | Parse -> "parse"
  | Validate -> "validate"
  | Search -> "horizon-search"
  | Lp -> "lp"
  | Rounding -> "rounding"
  | Bb -> "branch-and-bound"
  | Sched -> "schedule"

let to_string = function
  | Parse_error msg -> Printf.sprintf "parse error: %s" msg
  | Invalid_instance msg -> Printf.sprintf "invalid instance: %s" msg
  | Lp_stall { pricing } -> Printf.sprintf "lp stall: %s pricing made no progress" pricing
  | Budget_exhausted { stage; detail } ->
      Printf.sprintf "budget exhausted [%s]: %s" (stage_name stage) detail
  | Infeasible { reason; certified } ->
      Printf.sprintf "infeasible%s: %s" (if certified then " (certified)" else "") reason
  | Verification { invariant; witness } ->
      Printf.sprintf "verification failed [%s]: %s" invariant witness
  | Overloaded { retry_after_ms } ->
      Printf.sprintf "overloaded: admission queue is full, retry after %d ms"
        retry_after_ms
  | Deadline_exceeded { deadline_ms; detail } ->
      Printf.sprintf "deadline exceeded [%d ms]: %s" deadline_ms detail
  | Unavailable msg -> Printf.sprintf "service unavailable: %s" msg
  | Internal msg -> Printf.sprintf "internal error: %s" msg

let pp fmt e = Format.pp_print_string fmt (to_string e)

(* Exit-code contract of the CLI: 2 unusable input, 3 infeasible,
   4 budget exhausted, 5 overloaded, 6 deadline exceeded, 7 service
   unavailable, 1 anything else. *)
let exit_code = function
  | Parse_error _ | Invalid_instance _ -> 2
  | Infeasible _ -> 3
  | Budget_exhausted _ -> 4
  | Overloaded _ -> 5
  | Deadline_exceeded _ -> 6
  | Unavailable _ -> 7
  | Lp_stall _ | Verification _ | Internal _ -> 1

(** Run [f], turning a raised {!Error} into [Error]. *)
let guard f = try Ok (f ()) with Error e -> Error e
